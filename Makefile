# ccAI reproduction — standard targets.

GO ?= go

.PHONY: all build test race stress bench bench-smoke soak-smoke telemetry-smoke llm-smoke cover fuzz vet fmt fmt-check experiments profile clean ci

all: build test

# Everything a merge gate needs: formatting and static checks, the full
# suite, the race detector over the concurrent retry paths, the
# multi-tenant stress matrix, a one-iteration pass over every benchmark
# (so they can't rot), the smoke soak byte-diffed against its committed
# scorecard, and a short fuzz pass over the attacker-facing parsers
# (fault plans included), and the telemetry-plane smoke: live scrape,
# token isolation, audit-chain tamper evidence.
ci: fmt-check vet test race stress bench-smoke soak-smoke telemetry-smoke llm-smoke
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=10s ./internal/pcie/
	$(GO) test -fuzz=FuzzFaultPlan -fuzztime=10s ./internal/fault/
# The deterministic allocation ceilings (64 KiB protected task and the
# D2H read path) run as named tests so a breach points at the exact
# budget, not a benchmark diff.
	$(GO) test -run 'TestTaskAllocBudget|TestReadAllocBudget' ./ ./internal/adaptor/
# Wall-clock regressions and the ccAI/vanilla overhead-ratio band stay
# a soft gate (shared-CI timing is noisy); the allocation ceiling is
# deterministic, so exit code 3 from -check-allocs fails the merge
# outright.
	@$(GO) run ./cmd/ccai-bench -only micro -out /tmp/ccai-bench-ci.json -compare BENCH_results.json -check-allocs; \
	st=$$?; \
	if [ $$st -eq 3 ]; then \
		echo "FAIL: task/ccAI/64KiB allocs/op breached the hard ceiling"; exit 1; \
	elif [ $$st -ne 0 ]; then \
		echo "WARNING: micro-benchmarks regressed vs BENCH_results.json (soft gate; timing on shared CI is noisy)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The multi-tenant concurrency stress matrix (N tenants × fault classes
# × seeds) plus the shared-layer concurrency tests, run twice under the
# race detector so scheduling varies between passes.
stress:
	$(GO) test -race -count=2 -run 'TestConcurrencyStressMatrix|TestConcurrentMultiTenantServing|TestSameTenantConcurrentCallsSerialize|Concurrent' ./ ./internal/core/ ./internal/secmem/

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (listing the files) when anything is not gofmt-clean.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# The CI soak: the smoke storm preset (seconds of wall clock), its
# scorecard byte-diffed against the committed baseline — deterministic
# virtual-time numbers get an exact gate, unlike the wall-clock micros.
soak-smoke:
	$(GO) run ./cmd/ccai-bench -only soak -soak smoke -out "" -soak-compare BENCH_results.json

# The LLM-serving smoke: the streaming-session happy path, the
# staged-once KV invariant (the PCIe tap proof that decode never
# re-stages the cache), and the multi-session decode determinism check —
# the §16 serving story's merge gate, in seconds.
llm-smoke:
	$(GO) test -count=1 -run 'TestLLMSessionStreamsExpectedTokens|TestKVStagedOncePerSession|TestDecodeDeterminism' .

# The telemetry-plane smoke: boot a two-tenant chassis with the live
# telemetry plane on an ephemeral port, fire the fault matrix (rekey,
# fail-closed teardown, re-trust, rogue filtering, seal tamper), scrape
# the endpoints through the token-auth matrix, and verify the audit
# hash chain — including that a flipped byte and a truncation are
# detected.
telemetry-smoke:
	$(GO) run ./cmd/ccai-trace -audit

# One testing.B benchmark per paper table/figure, plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Compile and run every benchmark exactly once — a smoke test that
# keeps benchmark code building and passing without paying for timing.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Coverage summary across the module.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Short fuzz campaigns over every attacker-facing parser.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=15s ./internal/pcie/
	$(GO) test -fuzz=FuzzUnmarshalRule -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzUnmarshalDescriptor -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzUnmarshalBlob -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzUnmarshalRekeyCommand -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzControllerControlWindow -fuzztime=15s ./internal/core/
	$(GO) test -fuzz=FuzzFaultPlan -fuzztime=15s ./internal/fault/

# CPU and allocation profiles of the end-to-end protected 64 KiB task —
# the workload the DESIGN.md §10 datapath work optimizes. Inspect with
# `go tool pprof profiles/cpu.out` (or mem.out).
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkProtectedTask64KiB$$' -benchtime 200x \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out -o profiles/ccai.test .

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/ccai-bench

clean:
	$(GO) clean ./...
