package ccai_test

import (
	"fmt"
	"log"

	"ccai"
	"ccai/internal/xpu"
)

// ExampleNewPlatform shows the minimal confidential-task flow: build a
// protected platform, establish trust, run a task through the
// unmodified driver, tear down.
func ExampleNewPlatform() {
	plat, err := ccai.NewPlatform(ccai.Config{XPU: xpu.A100, Mode: ccai.Protected})
	if err != nil {
		log.Fatal(err)
	}
	defer plat.Close()
	if err := plat.EstablishTrust(); err != nil {
		log.Fatal(err)
	}
	out, err := plat.RunTask(ccai.Task{Input: []byte("abc"), Kernel: ccai.KernelAdd, Param: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", out)
	// Output: bcd
}

// ExampleNewMultiPlatform shows the §9 multi-tenant extension: two
// tenants, two devices, one PCIe-SC chassis.
func ExampleNewMultiPlatform() {
	mp, err := ccai.NewMultiPlatform([]xpu.Profile{xpu.A100, xpu.N150d})
	if err != nil {
		log.Fatal(err)
	}
	defer mp.Close()
	for _, tenant := range mp.Tenants {
		if err := tenant.EstablishTrust(); err != nil {
			log.Fatal(err)
		}
		out, err := tenant.RunTask(ccai.Task{Input: []byte("hi"), Kernel: ccai.KernelXOR, Param: 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %d on %s: %s\n", tenant.Index, tenant.Device.Profile().Name, out)
	}
	// Output:
	// tenant 0 on A100: hi
	// tenant 1 on N150d: hi
}

// ExamplePlatform_RunTask demonstrates that vanilla and protected modes
// compute identical results — the transparency property.
func ExamplePlatform_RunTask() {
	input := []byte("same bytes in")
	for _, mode := range []ccai.Mode{ccai.Vanilla, ccai.Protected} {
		plat, err := ccai.NewPlatform(ccai.Config{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		if err := plat.EstablishTrust(); err != nil {
			log.Fatal(err)
		}
		out, err := plat.RunTask(ccai.Task{Input: input, Kernel: ccai.KernelAdd, Param: 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", mode, out)
		plat.Close()
	}
	// Output:
	// vanilla: same bytes in
	// ccAI: same bytes in
}
