package ccai_test

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"testing"

	"ccai/internal/attest"
	"ccai/internal/hrot"
)

// runAttestationRound executes the complete Figure 6 protocol once; it
// backs BenchmarkFigure6Attestation and the end-to-end trust test.
func runAttestationRound(tb testing.TB) {
	tb.Helper()
	ca, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		tb.Fatal(err)
	}
	blade, err := hrot.NewBlade(ca)
	if err != nil {
		tb.Fatal(err)
	}
	content := []byte("bitstream v1")
	sig, err := hrot.SignImage(ca, content)
	if err != nil {
		tb.Fatal(err)
	}
	err = blade.SecureBoot(&ca.PublicKey, []hrot.BootImage{
		{Name: "bitstream", PCR: hrot.PCRBitstream, Content: content, Signature: sig},
	})
	if err != nil {
		tb.Fatal(err)
	}

	platform, err := attest.NewPlatform(blade)
	if err != nil {
		tb.Fatal(err)
	}
	verifier, err := attest.NewVerifier(&ca.PublicKey)
	if err != nil {
		tb.Fatal(err)
	}
	if err := platform.Establish(verifier.Hello()); err != nil {
		tb.Fatal(err)
	}
	if err := verifier.Establish(platform.Hello()); err != nil {
		tb.Fatal(err)
	}
	if err := verifier.ValidateCertificates(platform.Certificates()); err != nil {
		tb.Fatal(err)
	}
	sel := []int{hrot.PCRBitstream}
	verifier.Expected = [][]byte{blade.PCRs().Snapshot(sel)}
	ch, err := verifier.NewChallenge(1, sel)
	if err != nil {
		tb.Fatal(err)
	}
	quote, err := platform.Respond(ch)
	if err != nil {
		tb.Fatal(err)
	}
	if err := verifier.Verify(ch, quote); err != nil {
		tb.Fatal(err)
	}
	bundle := attest.NewKeyBundle([]string{"h2d", "d2h", "config", "mmio"})
	sealed, err := verifier.Seal(bundle)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := platform.OpenBundle(sealed); err != nil {
		tb.Fatal(err)
	}
}

// TestFullTrustEstablishmentRound keeps the benchmark's path covered by
// `go test` as well.
func TestFullTrustEstablishmentRound(t *testing.T) {
	runAttestationRound(t)
}
