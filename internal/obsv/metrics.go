// Package obsv is the dependency-free observability layer of the ccAI
// reproduction: an atomic metrics registry (counters, gauges,
// fixed-bucket histograms), per-task span tracing on the virtual clock,
// and a Chrome trace-event exporter so a protected task's timeline can
// be inspected in chrome://tracing or Perfetto.
//
// Two rules govern everything here:
//
//  1. Confidentiality: metric names, labels and span attributes carry
//     only metadata — stream names, packet kinds, sizes, actions,
//     counters — never payload bytes. A timeline export of a protected
//     task must be publishable without leaking the task.
//  2. Zero cost when off: every handle type (*Counter, *Gauge,
//     *Histogram, *Tracer, *ActiveSpan) is nil-safe, so instrumented
//     components hold possibly-nil handles and the disabled hot path
//     pays only a nil check.
package obsv

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reports the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways (queue depths, live
// regions). A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative allowed).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reports the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// edges in ascending order; one implicit overflow bucket catches the
// rest. A nil *Histogram is a no-op.
//
// Each bucket carries one exemplar slot: the span/task reference and
// value of the latest sample recorded into it via ObserveExemplar, so
// a tail bucket on a scrape page links directly to the timeline span
// that produced it. The ref and value are separate atomics — a reader
// racing a writer may pair a ref with the previous value, which is
// acceptable skew for monitoring output and keeps the hot path
// allocation-free.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sum     atomic.Int64
	exRefs  []atomic.Uint64 // len(bounds)+1; 0 = no exemplar yet
	exVals  []atomic.Int64
}

// SizeBuckets is the default byte-size bucket layout (64 B .. 1 MiB).
func SizeBuckets() []int64 {
	return []int64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
}

// DurationBuckets is the default virtual-nanosecond bucket layout
// (100 ns .. 10 ms).
func DurationBuckets() []int64 {
	return []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}
}

// WaitBuckets is the queue-wait bucket layout (1 ms .. 10 s, virtual
// nanoseconds). Scheduler waits under load sit in the ms–100 ms range,
// far above DurationBuckets' 10 ms ceiling; without these bounds every
// wait lands in the overflow bucket and quantile estimates degenerate.
func WaitBuckets() []int64 {
	return []int64{
		1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000,
		250_000_000, 500_000_000, 1_000_000_000, 5_000_000_000, 10_000_000_000,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one sample and stamps the sample's bucket
// with ref (a span/task ID) as the bucket's current exemplar. ref 0
// means "no reference" and behaves exactly like Observe.
func (h *Histogram) ObserveExemplar(v int64, ref uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if ref != 0 {
		h.exVals[i].Store(v)
		h.exRefs[i].Store(ref)
	}
}

// Count reports total samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named-metric table. Lookups are get-or-create and safe
// for concurrent use; handles are cached by the instrumented component
// so the hot path never touches the map. A nil *Registry hands out nil
// handles, which is how "observability off" costs nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Name composes a metric name with label pairs in a stable, rendered
// form: Name("x.y", "stream", "h2d") == `x.y{stream=h2d}`.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Bounds
// are fixed at creation; a later call with different bounds returns the
// original histogram unchanged.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{
			bounds:  b,
			buckets: make([]atomic.Uint64, len(b)+1),
			exRefs:  make([]atomic.Uint64, len(b)+1),
			exVals:  make([]atomic.Int64, len(b)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Exemplar links one histogram bucket to the span/task that most
// recently landed in it.
type Exemplar struct {
	Bucket int    `json:"bucket"` // index into Buckets
	Ref    uint64 `json:"ref"`    // span/task ID
	Value  int64  `json:"value"`  // the sample that set it
}

// HistValue is one histogram in a snapshot.
type HistValue struct {
	Name      string     `json:"name"`
	Count     uint64     `json:"count"`
	Sum       int64      `json:"sum"`
	Bounds    []int64    `json:"bounds"`
	Buckets   []uint64   `json:"buckets"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts using Prometheus-style linear interpolation within the
// bucket that holds the target rank. Samples in the overflow bucket
// are reported as the last finite bound (the estimate saturates
// there, it cannot extrapolate). An empty histogram reports 0.
func (h HistValue) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, n := range h.Buckets {
		prev := cum
		cum += float64(n)
		if cum < rank || n == 0 {
			continue
		}
		if i >= len(h.Bounds) { // overflow bucket: saturate
			return float64(h.Bounds[len(h.Bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(h.Bounds[i-1])
		}
		hi := float64(h.Bounds[i])
		return lo + (hi-lo)*(rank-prev)/float64(n)
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// Snapshot is a consistent-enough copy of the registry for rendering:
// each value is read atomically (cross-metric skew is acceptable for
// monitoring output).
type Snapshot struct {
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]int64  `json:"gauges"`
	Hists    []HistValue       `json:"histograms"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Counters: make(map[string]uint64), Gauges: make(map[string]int64)}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		hv := HistValue{Name: name, Count: h.count.Load(), Sum: h.sum.Load(),
			Bounds: append([]int64(nil), h.bounds...)}
		for i := range h.buckets {
			hv.Buckets = append(hv.Buckets, h.buckets[i].Load())
		}
		for i := range h.exRefs {
			if ref := h.exRefs[i].Load(); ref != 0 {
				hv.Exemplars = append(hv.Exemplars,
					Exemplar{Bucket: i, Ref: ref, Value: h.exVals[i].Load()})
			}
		}
		snap.Hists = append(snap.Hists, hv)
	}
	return snap
}

// RenderText renders the snapshot as sorted, aligned text for CLIs.
func (s Snapshot) RenderText() string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-56s %12d\n", k, s.Counters[k])
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-56s %12d (gauge)\n", k, s.Gauges[k])
	}
	for _, h := range s.Hists {
		fmt.Fprintf(&b, "%-56s count=%d sum=%d", h.Name, h.Count, h.Sum)
		if h.Count > 0 {
			fmt.Fprintf(&b, " p50=%.0f p99=%.0f", h.Quantile(0.50), h.Quantile(0.99))
		}
		b.WriteByte('\n')
		ex := make(map[int]Exemplar, len(h.Exemplars))
		for _, e := range h.Exemplars {
			ex[e.Bucket] = e
		}
		for i, n := range h.Buckets {
			if n == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, "  le %-10d %12d", h.Bounds[i], n)
			} else {
				fmt.Fprintf(&b, "  le +inf       %12d", n)
			}
			if e, ok := ex[i]; ok {
				fmt.Fprintf(&b, "  # {task=%d} %d", e.Ref, e.Value)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderText renders the registry's current state as text.
func (r *Registry) RenderText() string { return r.Snapshot().RenderText() }

// JSON renders the registry's current state as a JSON document.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
