package obsv

import (
	"strconv"
	"sync"
	"sync/atomic"

	"ccai/internal/sim"
)

// attrKind discriminates an Attr's stored value. Numeric kinds keep the
// raw number and render on export only — the recording hot path never
// formats strings.
type attrKind uint8

const (
	attrStr attrKind = iota
	attrU64
	attrI64
	attrHex
	attrBool
)

// Attr is one span attribute: metadata only (stream names, sizes,
// register offsets, actions) — never payload bytes. Build with the
// typed constructors; read with Val. Numeric attributes are stored
// unformatted so recording them costs no allocation.
type Attr struct {
	Key  string
	str  string
	num  uint64
	kind attrKind
}

// Str builds a string attribute. Values should be low-cardinality
// (names, actions, states): the tracer interns them for the lifetime
// of the process, so unbounded-cardinality values would leak table
// space — encode those as numbers instead.
func Str(k, v string) Attr { return Attr{Key: k, str: v} }

// U64 builds an unsigned integer attribute.
func U64(k string, v uint64) Attr { return Attr{Key: k, num: v, kind: attrU64} }

// I64 builds a signed integer attribute.
func I64(k string, v int64) Attr { return Attr{Key: k, num: uint64(v), kind: attrI64} }

// Hex builds a hexadecimal address attribute.
func Hex(k string, v uint64) Attr { return Attr{Key: k, num: v, kind: attrHex} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	var n uint64
	if v {
		n = 1
	}
	return Attr{Key: k, num: n, kind: attrBool}
}

// Val renders the attribute value.
func (a Attr) Val() string {
	switch a.kind {
	case attrU64:
		return strconv.FormatUint(a.num, 10)
	case attrI64:
		return strconv.FormatInt(int64(a.num), 10)
	case attrHex:
		return "0x" + strconv.FormatUint(a.num, 16)
	case attrBool:
		return strconv.FormatBool(a.num != 0)
	}
	return a.str
}

// maxSpanAttrs bounds attributes per span. They live inline in the
// record so recording never heap-allocates; extras are dropped.
const maxSpanAttrs = 6

// Span is one finished interval (or, when End == Start and Instant is
// set, a point event) on a named track, as materialized by Spans().
type Span struct {
	Track   string
	Name    string
	Task    uint64 // 0 = outside any task
	Start   sim.Time
	End     sim.Time
	Instant bool

	nattrs uint8
	attrs  [maxSpanAttrs]Attr
}

// Attrs returns the span's attributes.
func (s *Span) Attrs() []Attr { return s.attrs[:s.nattrs] }

// sym is an interned-string handle. Records store syms instead of
// string headers so the retained span buffer carries no pointers and
// the garbage collector never scans it.
type sym uint32

// symtab interns strings. Lookup of an already-known string is a
// single lock-free sync.Map load; the write path (first sighting of a
// string, ~dozens over a process lifetime) takes the mutex.
type symtab struct {
	ids   sync.Map // string → sym
	mu    sync.Mutex
	names []string
}

func (st *symtab) sym(s string) sym {
	if v, ok := st.ids.Load(s); ok {
		return v.(sym)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if v, ok := st.ids.Load(s); ok {
		return v.(sym)
	}
	id := sym(len(st.names))
	st.names = append(st.names, s)
	st.ids.Store(s, id)
	return id
}

// name resolves a sym; only snapshot paths call it.
func (st *symtab) name(id sym) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	if int(id) < len(st.names) {
		return st.names[id]
	}
	return ""
}

// recAttr is the in-buffer attribute: for attrStr the num field holds
// the value's sym, otherwise the raw number. Pointer-free.
type recAttr struct {
	key  sym
	num  uint64
	kind attrKind
}

// rec is the in-buffer span record. It contains no pointers, so a
// []rec is allocated in a no-scan region: a full buffer of retained
// history costs the garbage collector nothing per cycle. Strings are
// rebuilt from the symbol table when Spans() materializes records.
type rec struct {
	track   sym
	name    sym
	task    uint64
	start   sim.Time
	end     sim.Time
	instant bool
	nattrs  uint8
	attrs   [maxSpanAttrs]recAttr
}

func (r *rec) addAttrs(st *symtab, attrs []Attr) {
	for _, a := range attrs {
		if r.nattrs >= maxSpanAttrs {
			return
		}
		ra := recAttr{key: st.sym(a.Key), num: a.num, kind: a.kind}
		if a.kind == attrStr {
			ra.num = uint64(st.sym(a.str))
		}
		r.attrs[r.nattrs] = ra
		r.nattrs++
	}
}

// spanBuf is one fixed-capacity recording epoch: records are written
// in place at fetch-add slots until full, then are counted as dropped.
// Reset swaps the whole buffer, so recording never takes a lock.
type spanBuf struct {
	next    atomic.Uint64
	dropped atomic.Uint64
	buf     []rec
}

// Tracer collects spans on the virtual clock. Without an attached
// clock it falls back to a deterministic synthetic tick (fallbackTick
// virtual nanoseconds per timestamp sample), so exported timelines stay
// ordered and replayable even on the purely functional path, which
// never advances a sim.Engine. A nil *Tracer is a no-op.
//
// The hot path is lock- and allocation-free: timestamps and task scope
// are atomics, attributes live inline in the record, and Begin
// reserves a preallocated buffer slot at a fetch-add index and writes
// the span in place — End only stamps the finish time. Records hold
// interned-symbol handles instead of strings, so the retained buffer
// is invisible to the garbage collector. Only Reset/SetLimit (buffer
// swaps) and snapshot reads take the mutex.
type Tracer struct {
	clock   atomic.Pointer[func() sim.Time]
	tick    atomic.Int64
	taskSeq atomic.Uint64
	curTask atomic.Uint64
	cur     atomic.Pointer[spanBuf]
	syms    symtab

	mu    sync.Mutex // serializes buffer swaps against each other
	limit int
}

// fallbackTick is the synthetic-clock step per timestamp sample.
const fallbackTick = 20 * sim.Nanosecond

// DefaultSpanLimit bounds retained spans so long-running sessions do
// not grow without bound; older spans are kept, newer ones dropped and
// counted. The buffer is preallocated (~150 B per slot, pointer-free),
// so the limit is also a memory budget — the default holds a few
// dozen tasks of history in well under a MiB. Raise it with SetLimit
// before capturing long sessions.
const DefaultSpanLimit = 1 << 12

// NewTracer returns a tracer on the synthetic clock.
func NewTracer() *Tracer {
	t := &Tracer{limit: DefaultSpanLimit}
	t.cur.Store(&spanBuf{buf: make([]rec, DefaultSpanLimit)})
	return t
}

// SetClock attaches a virtual-time source (typically sim.Engine.Now);
// nil reverts to the synthetic tick.
func (t *Tracer) SetClock(fn func() sim.Time) {
	if t == nil {
		return
	}
	if fn == nil {
		t.clock.Store(nil)
		return
	}
	t.clock.Store(&fn)
}

// SetLimit caps retained spans (≤0 resets to the default). The change
// discards already-recorded spans.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultSpanLimit
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.limit = n
	t.cur.Store(&spanBuf{buf: make([]rec, n)})
}

// now samples the clock.
func (t *Tracer) now() sim.Time {
	if fn := t.clock.Load(); fn != nil {
		return (*fn)()
	}
	return sim.Time(t.tick.Add(int64(fallbackTick)))
}

// StartTask opens a new task scope: spans begun until EndTask carry the
// returned task ID.
func (t *Tracer) StartTask() uint64 {
	if t == nil {
		return 0
	}
	id := t.taskSeq.Add(1)
	t.curTask.Store(id)
	return id
}

// EndTask closes the current task scope.
func (t *Tracer) EndTask() {
	if t != nil {
		t.curTask.Store(0)
	}
}

// ActiveSpan is an open interval; End finishes it. The zero value
// (from a nil tracer, or when the buffer is full) ignores every call,
// so callers never branch on enablement.
type ActiveSpan struct {
	t *Tracer
	r *rec
}

// reserve claims the current buffer's next slot, counting a drop (and
// returning nil) when full. Buffers are never reused, so a claimed
// slot is zero-valued and written exactly once.
func (t *Tracer) reserve() *rec {
	b := t.cur.Load()
	// Saturated fast path: once full, skip the fetch-add — a plain
	// load keeps the steady-state cost of a capped buffer at two
	// loads and one increment per span.
	if b.next.Load() >= uint64(len(b.buf)) {
		b.dropped.Add(1)
		return nil
	}
	i := b.next.Add(1) - 1
	if i >= uint64(len(b.buf)) {
		b.dropped.Add(1)
		return nil
	}
	return &b.buf[i]
}

// Begin opens a span on the given track. The record is written in
// place in its preallocated buffer slot, so the common
// sp := Begin(...); defer sp.End() pattern does not heap-allocate or
// copy. An unfinished span exports with End == 0.
func (t *Tracer) Begin(track, name string, attrs ...Attr) ActiveSpan {
	if t == nil {
		return ActiveSpan{}
	}
	r := t.reserve()
	if r == nil {
		return ActiveSpan{}
	}
	r.track, r.name = t.syms.sym(track), t.syms.sym(name)
	r.task = t.curTask.Load()
	r.start = t.now()
	r.addAttrs(&t.syms, attrs)
	return ActiveSpan{t: t, r: r}
}

// Attr appends attributes to an open span.
func (a *ActiveSpan) Attr(attrs ...Attr) {
	if a == nil || a.r == nil {
		return
	}
	a.r.addAttrs(&a.t.syms, attrs)
}

// End closes the span.
func (a *ActiveSpan) End() {
	if a == nil || a.r == nil {
		return
	}
	a.r.end = a.t.now()
}

// Instant records a point event (fault firings, teardowns).
func (t *Tracer) Instant(track, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	r := t.reserve()
	if r == nil {
		return
	}
	at := t.now()
	r.track, r.name, r.task = t.syms.sym(track), t.syms.sym(name), t.curTask.Load()
	r.start, r.end, r.instant = at, at, true
	r.addAttrs(&t.syms, attrs)
}

// Spans materializes a copy of all recorded spans in begin order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	b := t.cur.Load()
	n := b.next.Load()
	if n > uint64(len(b.buf)) {
		n = uint64(len(b.buf))
	}
	recs := append([]rec(nil), b.buf[:n]...)
	t.mu.Unlock()

	spans := make([]Span, len(recs))
	for i := range recs {
		r := &recs[i]
		s := &spans[i]
		s.Track = t.syms.name(r.track)
		s.Name = t.syms.name(r.name)
		s.Task, s.Start, s.End, s.Instant = r.task, r.start, r.end, r.instant
		s.nattrs = r.nattrs
		for j := 0; j < int(r.nattrs); j++ {
			ra := r.attrs[j]
			a := Attr{Key: t.syms.name(ra.key), num: ra.num, kind: ra.kind}
			if ra.kind == attrStr {
				a.str = t.syms.name(sym(ra.num))
				a.num = 0
			}
			s.attrs[j] = a
		}
	}
	return spans
}

// Dropped reports spans lost to the retention cap since the last Reset.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.cur.Load().dropped.Load()
}

// Reset clears recorded spans and the drop counter (task numbering
// continues, so task IDs stay unique across a session).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur.Store(&spanBuf{buf: make([]rec, t.limit)})
}
