package obsv

import (
	"math"
	"strings"
	"testing"
)

// TestQuantileKnownDistribution feeds a uniform 1..40 distribution
// into bounds {10,20,30,40} (10 samples per bucket) where the
// interpolated quantiles have closed forms.
func TestQuantileKnownDistribution(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.uniform", []int64{10, 20, 30, 40})
	for v := int64(1); v <= 40; v++ {
		h.Observe(v)
	}
	hv := r.Snapshot().Hists[0]
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 0},       // rank 0 interpolates to the bucket floor
		{0.25, 10},   // rank 10 = exactly the le-10 boundary
		{0.5, 20},    // rank 20 = exactly the le-20 boundary
		{0.75, 30},   // rank 30 = exactly the le-30 boundary
		{0.99, 39.6}, // rank 39.6, 9.6/10 into the (30,40] bucket
		{1, 40},
	} {
		if got := hv.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileSkewedDistribution(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.skew", []int64{100, 1000, 10000})
	// 90 fast samples, 9 medium, 1 slow: a classic latency tail.
	for i := 0; i < 90; i++ {
		h.Observe(50)
	}
	for i := 0; i < 9; i++ {
		h.Observe(500)
	}
	h.Observe(5000)
	hv := r.Snapshot().Hists[0]
	// p50: rank 50 inside the first bucket (0,100] → 100*50/90 ≈ 55.6.
	if got, want := hv.Quantile(0.5), 100.0*50/90; math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p99: rank 99, first bucket holds 90, second holds 9 (cum 99) →
	// exactly the le-1000 boundary.
	if got := hv.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %v, want 1000", got)
	}
	// p100 lands in the overflow-adjacent last bucket's sample.
	if got := hv.Quantile(1); got != 10000 {
		t.Errorf("p100 = %v, want 10000", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistValue
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}

	r := NewRegistry()
	h := r.Histogram("q.overflow", []int64{10, 20})
	h.Observe(1000) // overflow bucket only
	hv := r.Snapshot().Hists[0]
	// Overflow saturates at the last finite bound.
	if got := hv.Quantile(0.5); got != 20 {
		t.Errorf("overflow Quantile = %v, want 20 (saturated)", got)
	}
	// Out-of-range q clamps.
	if got := hv.Quantile(-1); got != 20 {
		t.Errorf("Quantile(-1) = %v", got)
	}
	if got := hv.Quantile(2); got != 20 {
		t.Errorf("Quantile(2) = %v", got)
	}
}

func TestObserveExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.ex", []int64{10, 100})
	h.ObserveExemplar(5, 0) // ref 0: counts, but stamps no exemplar
	h.ObserveExemplar(7, 41)
	h.ObserveExemplar(9, 42)  // same bucket: latest wins
	h.ObserveExemplar(50, 77) // second bucket
	h.Observe(200)            // overflow, no exemplar

	hv := r.Snapshot().Hists[0]
	if hv.Count != 5 {
		t.Fatalf("count = %d, want 5", hv.Count)
	}
	if len(hv.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want 2", hv.Exemplars)
	}
	if e := hv.Exemplars[0]; e.Bucket != 0 || e.Ref != 42 || e.Value != 9 {
		t.Errorf("bucket-0 exemplar = %+v, want {0 42 9}", e)
	}
	if e := hv.Exemplars[1]; e.Bucket != 1 || e.Ref != 77 || e.Value != 50 {
		t.Errorf("bucket-1 exemplar = %+v, want {1 77 50}", e)
	}

	text := r.RenderText()
	if !strings.Contains(text, "# {task=42} 9") {
		t.Errorf("RenderText missing exemplar annotation:\n%s", text)
	}
	if !strings.Contains(text, "p50=") || !strings.Contains(text, "p99=") {
		t.Errorf("RenderText missing quantile summary:\n%s", text)
	}

	// Nil safety: the observability-off contract extends to exemplars.
	var nilH *Histogram
	nilH.ObserveExemplar(1, 1)
}
