package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ccai/internal/sim"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x.ops")
	b := r.Counter("x.ops")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("x.ops").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("x.depth")
	g.Set(5)
	g.Add(-2)
	if got := r.Gauge("x.depth").Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestName(t *testing.T) {
	if got := Name("x.y"); got != "x.y" {
		t.Fatalf("Name no-labels = %q", got)
	}
	if got := Name("x.y", "stream", "h2d", "side", "sc"); got != "x.y{stream=h2d,side=sc}" {
		t.Fatalf("Name = %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.bytes", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1026 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Hists) != 1 {
		t.Fatalf("snapshot has %d histograms", len(snap.Hists))
	}
	hv := snap.Hists[0]
	// 5 and 10 land in le-10; 11 in le-100; 1000 in overflow.
	want := []uint64{2, 1, 1}
	for i, n := range want {
		if hv.Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hv.Buckets[i], n, hv.Buckets)
		}
	}
}

func TestSnapshotRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.ops").Inc()
	r.Gauge("a.depth").Set(7)
	r.Histogram("a.bytes", SizeBuckets()).Observe(128)
	text := r.RenderText()
	for _, want := range []string{"a.ops", "a.depth", "a.bytes", "(gauge)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("RenderText missing %q:\n%s", want, text)
		}
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if snap.Counters["a.ops"] != 1 || snap.Gauges["a.depth"] != 7 {
		t.Fatalf("round-tripped snapshot wrong: %+v", snap)
	}
}

// TestNilSafety covers the "observability off" contract: every handle
// type must ignore calls on nil receivers.
func TestNilSafety(t *testing.T) {
	var h *Hub
	h.Reg().Counter("x").Inc()
	h.Reg().Counter("x").Add(3)
	h.Reg().Gauge("y").Set(1)
	h.Reg().Histogram("z", SizeBuckets()).Observe(1)
	if h.Reg().Counter("x").Value() != 0 {
		t.Fatal("nil counter reported a value")
	}
	snap := h.Reg().Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	tr := h.T()
	tr.SetClock(nil)
	tr.SetLimit(1)
	if id := tr.StartTask(); id != 0 {
		t.Fatalf("nil tracer task id = %d", id)
	}
	sp := tr.Begin(TrackTask, "noop")
	sp.Attr(Str("k", "v"))
	sp.End()
	tr.Instant(TrackTask, "noop")
	tr.EndTask()
	tr.Reset()
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
}

func TestTracerTaskScopes(t *testing.T) {
	tr := NewTracer()
	id1 := tr.StartTask()
	sp := tr.Begin(TrackSC, "inside")
	sp.End()
	tr.EndTask()
	out := tr.Begin(TrackSC, "outside")
	out.End()
	id2 := tr.StartTask()
	tr.Instant(TrackFault, "inside2")
	tr.EndTask()
	if id1 != 1 || id2 != 2 {
		t.Fatalf("task ids = %d, %d", id1, id2)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans", len(spans))
	}
	if spans[0].Task != id1 || spans[1].Task != 0 || spans[2].Task != id2 {
		t.Fatalf("task tags wrong: %d %d %d", spans[0].Task, spans[1].Task, spans[2].Task)
	}
	if spans[1].End < spans[1].Start {
		t.Fatal("synthetic clock not monotonic")
	}
}

func TestTracerVirtualClock(t *testing.T) {
	tr := NewTracer()
	var now sim.Time
	tr.SetClock(func() sim.Time { return now })
	sp := tr.Begin(TrackXPU, "dma")
	now = 500 * sim.Nanosecond
	sp.End()
	spans := tr.Spans()
	if spans[0].Start != 0 || spans[0].End != 500*sim.Nanosecond {
		t.Fatalf("span times %v..%v", spans[0].Start, spans[0].End)
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(3)
	for i := 0; i < 5; i++ {
		tr.Instant(TrackSC, "e")
	}
	if len(tr.Spans()) != 3 {
		t.Fatalf("retained %d spans, want 3", len(tr.Spans()))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	tr.StartTask()
	sp := tr.Begin(TrackFilter, "classify", Str("kind", "MWr"))
	sp.Attr(Str("action", "A3_write_protect"))
	sp.End()
	tr.Instant(TrackFault, "fault_injected", Str("class", "CorruptTLP"))
	tr.EndTask()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var haveX, haveI, haveMeta bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			haveX = true
			if ev.Name != "classify" || ev.Args["action"] != "A3_write_protect" {
				t.Fatalf("complete event wrong: %+v", ev)
			}
		case "i":
			haveI = true
		case "M":
			haveMeta = true
		}
	}
	if !haveX || !haveI || !haveMeta {
		t.Fatalf("export missing event kinds: X=%v i=%v M=%v", haveX, haveI, haveMeta)
	}
}
