package obsv

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export: the JSON format chrome://tracing and
// Perfetto load directly. Each tracer track becomes a named thread
// under one process; spans are complete ("X") events, instants are "i"
// events, and every event carries its task ID plus the span attributes
// in args. Timestamps are virtual microseconds.
//
// Reference: the Trace Event Format document (Google, catapult
// project). Only the subset needed by the viewers is emitted.

type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every recorded span as a Chrome trace-event
// JSON document. Attributes are emitted verbatim into args — they are
// metadata by construction (the layer never records payload bytes).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

// WriteChromeTrace exports an explicit span list.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	// Stable track → tid assignment, sorted by name so exports of the
	// same run are byte-identical.
	trackSet := make(map[string]bool)
	for _, s := range spans {
		trackSet[s.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for tr := range trackSet {
		tracks = append(tracks, tr)
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	for i, tr := range tracks {
		tid[tr] = i + 1
	}

	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "ccai"},
	})
	for _, tr := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid[tr],
			Args: map[string]string{"name": tr},
		})
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Track,
			TS:   float64(s.Start) / 1e3, // virtual ns → µs
			PID:  1,
			TID:  tid[s.Track],
			Args: make(map[string]string, len(s.Attrs())+1),
		}
		if s.Task != 0 {
			ev.Args["task"] = U64("task", s.Task).Val()
		}
		for _, a := range s.Attrs() {
			ev.Args[a.Key] = a.Val()
		}
		if s.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			dur := float64(s.End-s.Start) / 1e3
			ev.Dur = &dur
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
