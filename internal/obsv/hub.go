package obsv

// Hub bundles the metrics registry and the span tracer that one
// platform's components share. A nil *Hub (observability off) hands out
// nil handles everywhere, so instrumentation sites never branch on
// enablement themselves.
type Hub struct {
	Metrics *Registry
	Tracer  *Tracer
}

// NewHub builds an enabled hub.
func NewHub() *Hub {
	return &Hub{Metrics: NewRegistry(), Tracer: NewTracer()}
}

// Reg returns the registry (nil when the hub is nil).
func (h *Hub) Reg() *Registry {
	if h == nil {
		return nil
	}
	return h.Metrics
}

// T returns the tracer (nil when the hub is nil).
func (h *Hub) T() *Tracer {
	if h == nil {
		return nil
	}
	return h.Tracer
}

// Canonical track names, one per pipeline stage owner. Keeping them
// here (rather than scattered string literals) is what lets the
// timeline tests assert full pipeline coverage.
const (
	TrackTask    = "task"
	TrackAdaptor = "tvm/adaptor"
	TrackDriver  = "tvm/driver"
	TrackSC      = "pcie-sc"
	TrackFilter  = "pcie-sc/filter"
	TrackCrypto  = "crypto"
	TrackXPU     = "xpu"
	TrackFault   = "fault"
	TrackSched   = "sched"
)
