package obsv

import (
	"fmt"
	"sync/atomic"
)

// Security event kinds emitted through Hub.Event. They are the audit
// vocabulary of the telemetry plane: every trust-lifecycle transition
// an operator must be able to reconstruct after the fact. Kinds are
// metadata; details carry only names, counters and reasons — never
// payload or key bytes.
const (
	// EvAttest: a session established trust (device attestation + key
	// provisioning) for the first time.
	EvAttest = "attest"
	// EvRetrust: a previously torn-down session re-established trust
	// under a fresh generation (keys are re-derived, never reused).
	EvRetrust = "re-trust"
	// EvRekey: a protected stream rotated its key/IV material.
	EvRekey = "rekey"
	// EvFailClosed: the recovery ladder exhausted and the session was
	// torn down rather than weaken an invariant.
	EvFailClosed = "fail-closed"
	// EvRogue: the PCIe-SC filter dropped unauthorized traffic.
	EvRogue = "rogue-filtered"
	// EvSealSensor: a chassis physical-integrity sensor left its sealed
	// envelope.
	EvSealSensor = "seal-sensor"
	// EvSLOAlert / EvSLOClear: a rolling SLO burn-rate alert fired or
	// resolved.
	EvSLOAlert = "slo-alert"
	EvSLOClear = "slo-clear"
)

// EventSink receives security events; the telemetry plane's audit log
// implements it. Sinks must be safe for concurrent use.
type EventSink func(kind, tenant, detail string)

// Hub bundles the metrics registry and the span tracer that one
// platform's components share. A nil *Hub (observability off) hands out
// nil handles everywhere, so instrumentation sites never branch on
// enablement themselves.
type Hub struct {
	Metrics *Registry
	Tracer  *Tracer

	sink atomic.Pointer[EventSink]
}

// NewHub builds an enabled hub.
func NewHub() *Hub {
	return &Hub{Metrics: NewRegistry(), Tracer: NewTracer()}
}

// Reg returns the registry (nil when the hub is nil).
func (h *Hub) Reg() *Registry {
	if h == nil {
		return nil
	}
	return h.Metrics
}

// T returns the tracer (nil when the hub is nil).
func (h *Hub) T() *Tracer {
	if h == nil {
		return nil
	}
	return h.Tracer
}

// SetEventSink installs the security-event receiver (nil clears it).
// With no sink installed, Event/Eventf are a nil check — the audit
// stream costs nothing until a telemetry plane attaches.
func (h *Hub) SetEventSink(s EventSink) {
	if h == nil {
		return
	}
	if s == nil {
		h.sink.Store(nil)
		return
	}
	h.sink.Store(&s)
}

// EventsOn reports whether a sink is installed — hot paths use it to
// skip building detail strings.
func (h *Hub) EventsOn() bool {
	return h != nil && h.sink.Load() != nil
}

// Event forwards one security event to the sink, if any.
func (h *Hub) Event(kind, tenant, detail string) {
	if h == nil {
		return
	}
	if s := h.sink.Load(); s != nil {
		(*s)(kind, tenant, detail)
	}
}

// Eventf is Event with deferred formatting: the detail string is only
// built when a sink is installed.
func (h *Hub) Eventf(kind, tenant, format string, args ...any) {
	if h == nil {
		return
	}
	if s := h.sink.Load(); s != nil {
		(*s)(kind, tenant, fmt.Sprintf(format, args...))
	}
}

// Canonical track names, one per pipeline stage owner. Keeping them
// here (rather than scattered string literals) is what lets the
// timeline tests assert full pipeline coverage.
const (
	TrackTask    = "task"
	TrackAdaptor = "tvm/adaptor"
	TrackDriver  = "tvm/driver"
	TrackSC      = "pcie-sc"
	TrackFilter  = "pcie-sc/filter"
	TrackCrypto  = "crypto"
	TrackXPU     = "xpu"
	TrackFault   = "fault"
	TrackSched   = "sched"
)
