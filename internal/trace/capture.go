package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ccai/internal/arena"
	"ccai/internal/pcie"
	"ccai/internal/sim"
)

// Capture file format: a pcap-style dump of TLPs crossing a segment,
// for offline inspection and replay into test fixtures.
//
//	header : magic(4) version(2) reserved(2)
//	record : timestamp(8) length(4) tlp-bytes(length)
//
// All integers little-endian. TLP bytes are pcie.Packet.Marshal output,
// so a capture round-trips through pcie.Unmarshal exactly.

const (
	captureMagic   = 0x63634149 // "ccAI"
	captureVersion = 1
)

// Record is one captured packet with its virtual-time stamp.
type Record struct {
	At     sim.Time
	Packet *pcie.Packet
}

// Writer streams capture records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count int
}

// NewWriter emits the capture header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], captureMagic)
	binary.LittleEndian.PutUint16(hdr[4:], captureVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. The wire bytes are staged in an arena
// buffer (released after the bufio copy), so steady-state capture of a
// busy segment does not allocate per packet.
func (w *Writer) Write(rec Record) error {
	buf := arena.Get(rec.Packet.MarshalSize())
	body := rec.Packet.SerializeInto(buf)
	var pre [12]byte
	binary.LittleEndian.PutUint64(pre[0:], uint64(rec.At))
	binary.LittleEndian.PutUint32(pre[8:], uint32(len(body)))
	if _, err := w.w.Write(pre[:]); err != nil {
		arena.Put(buf)
		return err
	}
	_, err := w.w.Write(body)
	arena.Put(buf)
	if err != nil {
		return err
	}
	w.count++
	return nil
}

// Count reports records written.
func (w *Writer) Count() int { return w.count }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// ReadCapture parses a complete capture stream.
func ReadCapture(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short capture header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != captureMagic {
		return nil, fmt.Errorf("trace: bad capture magic")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != captureVersion {
		return nil, fmt.Errorf("trace: unsupported capture version %d", v)
	}
	var out []Record
	for {
		var pre [12]byte
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: truncated record header: %w", err)
		}
		n := binary.LittleEndian.Uint32(pre[8:])
		if n > 1<<20 {
			return nil, fmt.Errorf("trace: implausible record size %d", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("trace: truncated record body: %w", err)
		}
		pkt, err := pcie.Unmarshal(body)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		out = append(out, Record{At: sim.Time(binary.LittleEndian.Uint64(pre[0:])), Packet: pkt})
	}
}

// CaptureTap adapts a Writer into a pcie.Tap stamping records with a
// caller-supplied clock (virtual or monotonic-counter).
type CaptureTap struct {
	W     *Writer
	Clock func() sim.Time
	errs  int
}

// Tap implements pcie.Tap.
func (c *CaptureTap) Tap(p *pcie.Packet) *pcie.Packet {
	var at sim.Time
	if c.Clock != nil {
		at = c.Clock()
	}
	if err := c.W.Write(Record{At: at, Packet: p}); err != nil {
		c.errs++
	}
	return p
}

// Errors reports failed writes.
func (c *CaptureTap) Errors() int { return c.errs }
