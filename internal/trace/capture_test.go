package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"ccai/internal/pcie"
	"ccai/internal/sim"
)

func TestCaptureRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	packets := []*pcie.Packet{
		pcie.NewMemWrite(pcie.MakeID(0, 1, 0), 0x1000, []byte("first payload")),
		pcie.NewMemRead(pcie.MakeID(2, 0, 0), 0x8000_0000, 256, 7),
		pcie.NewMessage(pcie.MakeID(2, 0, 0), 0x19, []byte{1, 2}),
	}
	for i, p := range packets {
		if err := w.Write(Record{At: sim.Time(i) * sim.Microsecond, Packet: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}

	recs, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, rec := range recs {
		if rec.At != sim.Time(i)*sim.Microsecond {
			t.Fatalf("record %d timestamp = %v", i, rec.At)
		}
		if rec.Packet.Kind != packets[i].Kind || rec.Packet.Address != packets[i].Address {
			t.Fatalf("record %d header mismatch", i)
		}
		if !bytes.Equal(rec.Packet.Payload, packets[i].Payload) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

func TestCaptureRejectsGarbage(t *testing.T) {
	if _, err := ReadCapture(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("short header accepted")
	}
	bad := make([]byte, 8)
	if _, err := ReadCapture(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Record{Packet: pcie.NewMemWrite(pcie.MakeID(0, 1, 0), 0x1, []byte{1})})
	_ = w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadCapture(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestCaptureTapStampsAndPasses(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(42 * sim.Millisecond)
	tap := &CaptureTap{W: w, Clock: func() sim.Time { return now }}
	p := pcie.NewMemWrite(pcie.MakeID(0, 1, 0), 0x1000, []byte("x"))
	if got := tap.Tap(p); got != p {
		t.Fatal("tap must pass packets through")
	}
	_ = w.Flush()
	recs, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].At != now {
		t.Fatalf("recs = %+v", recs)
	}
	if tap.Errors() != 0 {
		t.Fatal("spurious write errors")
	}
}

// Property: arbitrary memory writes survive the capture round trip.
func TestCaptureRoundTripProperty(t *testing.T) {
	f := func(addr uint64, payload []byte, at uint32) bool {
		if len(payload) == 0 || len(payload) > pcie.MaxPayload {
			return true
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		p := pcie.NewMemWrite(pcie.MakeID(0, 3, 1), addr, payload)
		if err := w.Write(Record{At: sim.Time(at), Packet: p}); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		recs, err := ReadCapture(&buf)
		if err != nil || len(recs) != 1 {
			return false
		}
		return recs[0].At == sim.Time(at) &&
			recs[0].Packet.Address == addr &&
			bytes.Equal(recs[0].Packet.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
