// Package trace captures and summarizes PCIe traffic crossing a bus
// segment. It backs cmd/ccai-trace and the evaluation's traffic
// accounting: per-kind packet counts, payload volumes, per-requester
// breakdowns, and an entropy probe that distinguishes ciphertext-like
// payloads from structured plaintext — a quick visual check that the
// protected path really carries no cleartext.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"ccai/internal/pcie"
)

// Recorder is a pcie.Tap accumulating traffic statistics. It is safe
// for concurrent use.
type Recorder struct {
	mu sync.Mutex

	byKind      map[pcie.Kind]*kindStats
	byRequester map[pcie.ID]*requesterStats
	packets     uint64
	payload     uint64

	// keep optionally retains full packets for inspection.
	keep     bool
	retained []*pcie.Packet
	limit    int
}

type kindStats struct {
	count   uint64
	payload uint64
}

// requesterStats is one requester's traffic volume: packets and the
// payload bytes they carried (posted writes and completions; requests
// without payload count packets only).
type requesterStats struct {
	count   uint64
	payload uint64
}

// NewRecorder returns a statistics-only recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		byKind:      make(map[pcie.Kind]*kindStats),
		byRequester: make(map[pcie.ID]*requesterStats),
	}
}

// Retain makes the recorder keep up to limit full packets.
func (r *Recorder) Retain(limit int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keep = true
	r.limit = limit
}

// Tap implements pcie.Tap.
func (r *Recorder) Tap(p *pcie.Packet) *pcie.Packet {
	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.byKind[p.Kind]
	if ks == nil {
		ks = &kindStats{}
		r.byKind[p.Kind] = ks
	}
	ks.count++
	ks.payload += uint64(len(p.Payload))
	rs := r.byRequester[p.Requester]
	if rs == nil {
		rs = &requesterStats{}
		r.byRequester[p.Requester] = rs
	}
	rs.count++
	rs.payload += uint64(len(p.Payload))
	r.packets++
	r.payload += uint64(len(p.Payload))
	if r.keep && len(r.retained) < r.limit {
		r.retained = append(r.retained, p.Clone())
	}
	return p
}

// Packets reports total packets observed.
func (r *Recorder) Packets() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.packets
}

// PayloadBytes reports total payload bytes observed.
func (r *Recorder) PayloadBytes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.payload
}

// RequesterStats reports one requester's packet and payload-byte
// totals.
func (r *Recorder) RequesterStats(id pcie.ID) (packets, payloadBytes uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.byRequester[id]
	if rs == nil {
		return 0, 0
	}
	return rs.count, rs.payload
}

// Retained returns the kept packets.
func (r *Recorder) Retained() []*pcie.Packet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*pcie.Packet(nil), r.retained...)
}

// Entropy estimates the mean Shannon entropy (bits/byte) over all
// retained payloads. AES-GCM ciphertext sits near 8.0; structured
// plaintext (code, text, tensors of small values) sits well below.
func (r *Recorder) Entropy() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entropyLocked()
}

// Summary renders the per-kind and per-requester breakdown.
func (r *Recorder) Summary(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "segment %q: %d packets, %d payload bytes\n", name, r.packets, r.payload)

	kinds := make([]pcie.Kind, 0, len(r.byKind))
	for k := range r.byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		ks := r.byKind[k]
		fmt.Fprintf(&b, "  %-5s %8d pkts %12d bytes\n", k, ks.count, ks.payload)
	}

	reqs := make([]pcie.ID, 0, len(r.byRequester))
	for id := range r.byRequester {
		reqs = append(reqs, id)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
	for _, id := range reqs {
		rs := r.byRequester[id]
		fmt.Fprintf(&b, "  requester %v: %d pkts %12d bytes\n", id, rs.count, rs.payload)
	}
	if r.keep && len(r.retained) > 0 {
		fmt.Fprintf(&b, "  payload entropy: %.2f bits/byte (ciphertext ~8.0)\n", r.entropyLocked())
	}
	return b.String()
}

func (r *Recorder) entropyLocked() float64 {
	var hist [256]int
	total := 0
	for _, p := range r.retained {
		for _, b := range p.Payload {
			hist[b]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		f := float64(c) / float64(total)
		h -= f * math.Log2(f)
	}
	return h
}

// Reset clears all statistics and retained packets.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byKind = make(map[pcie.Kind]*kindStats)
	r.byRequester = make(map[pcie.ID]*requesterStats)
	r.packets = 0
	r.payload = 0
	r.retained = nil
}
