package trace

import (
	"strings"
	"testing"

	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

func TestRecorderCountsTraffic(t *testing.T) {
	r := NewRecorder()
	a := pcie.MakeID(0, 1, 0)
	b := pcie.MakeID(2, 0, 0)
	r.Tap(pcie.NewMemWrite(a, 0x1000, make([]byte, 100)))
	r.Tap(pcie.NewMemWrite(a, 0x1100, make([]byte, 50)))
	r.Tap(pcie.NewMemRead(b, 0x2000, 64, 0))
	if r.Packets() != 3 {
		t.Fatalf("packets = %d", r.Packets())
	}
	if r.PayloadBytes() != 150 {
		t.Fatalf("payload = %d", r.PayloadBytes())
	}
	sum := r.Summary("host")
	for _, want := range []string{"MWr", "MRd", "00:01.0", "02:00.0", "3 packets"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRecorderRetainLimit(t *testing.T) {
	r := NewRecorder()
	r.Retain(2)
	for i := 0; i < 5; i++ {
		r.Tap(pcie.NewMemWrite(pcie.MakeID(0, 1, 0), 0x1000, []byte{byte(i)}))
	}
	if got := len(r.Retained()); got != 2 {
		t.Fatalf("retained = %d, want 2", got)
	}
	if r.Packets() != 5 {
		t.Fatal("stats must still cover all packets")
	}
}

func TestEntropyDistinguishesCiphertext(t *testing.T) {
	// Structured plaintext: low entropy.
	plain := NewRecorder()
	plain.Retain(100)
	text := []byte(strings.Repeat("model weights block AAAA ", 40))
	plain.Tap(pcie.NewMemWrite(pcie.MakeID(0, 1, 0), 0x1000, text))

	// Real AES-GCM ciphertext: near 8 bits/byte.
	cipher := NewRecorder()
	cipher.Retain(100)
	s, err := secmem.NewStream(secmem.FreshKey(), secmem.FreshNonce())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := s.Seal(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	cipher.Tap(pcie.NewMemWrite(pcie.MakeID(0, 1, 0), 0x1000, sealed.Ciphertext))

	pe, ce := plain.Entropy(), cipher.Entropy()
	if pe >= 6 {
		t.Fatalf("plaintext entropy %.2f too high", pe)
	}
	if ce < 7.0 {
		t.Fatalf("ciphertext entropy %.2f too low", ce)
	}
	if ce <= pe {
		t.Fatal("entropy probe cannot distinguish ciphertext from plaintext")
	}
}

func TestEntropyEmpty(t *testing.T) {
	r := NewRecorder()
	if r.Entropy() != 0 {
		t.Fatal("empty recorder has nonzero entropy")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.Retain(10)
	r.Tap(pcie.NewMemWrite(pcie.MakeID(0, 1, 0), 0x1000, []byte{1, 2, 3}))
	r.Reset()
	if r.Packets() != 0 || r.PayloadBytes() != 0 || len(r.Retained()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRecorderDoesNotMutatePackets(t *testing.T) {
	r := NewRecorder()
	p := pcie.NewMemWrite(pcie.MakeID(0, 1, 0), 0x1000, []byte{9})
	if got := r.Tap(p); got != p {
		t.Fatal("recorder must pass packets through unchanged")
	}
}
