package attest

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"testing"

	"ccai/internal/hrot"
	"ccai/internal/secmem"
)

func testBlade(t *testing.T) (*hrot.Blade, *ecdsa.PrivateKey) {
	t.Helper()
	ca, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hrot.NewBlade(ca)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("bitstream v1")
	sig, err := hrot.SignImage(ca, content)
	if err != nil {
		t.Fatal(err)
	}
	chain := []hrot.BootImage{{Name: "bitstream", PCR: hrot.PCRBitstream, Content: content, Signature: sig}}
	if err := b.SecureBoot(&ca.PublicKey, chain); err != nil {
		t.Fatal(err)
	}
	return b, ca
}

func handshake(t *testing.T) (*Platform, *Verifier) {
	t.Helper()
	blade, ca := testBlade(t)
	p, err := NewPlatform(blade)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(&ca.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Establish(v.Hello()); err != nil {
		t.Fatal(err)
	}
	if err := v.Establish(p.Hello()); err != nil {
		t.Fatal(err)
	}
	return p, v
}

func TestDHKEAgreement(t *testing.T) {
	p, v := handshake(t)
	if !bytes.Equal(p.SessionKey(), v.SessionKey()) {
		t.Fatal("session keys diverge")
	}
	if len(p.SessionKey()) != secmem.KeySize {
		t.Fatalf("session key length = %d", len(p.SessionKey()))
	}
}

func TestDHKERejectsGarbageShare(t *testing.T) {
	p, _ := handshake(t)
	if err := p.Establish(Hello{Pub: []byte("not a point")}); err == nil {
		t.Fatal("garbage key share accepted")
	}
}

func TestFullProtocolHappyPath(t *testing.T) {
	p, v := handshake(t)
	if err := v.ValidateCertificates(p.Certificates()); err != nil {
		t.Fatal(err)
	}
	sel := []int{hrot.PCRBitstream}
	v.Expected = [][]byte{p.Blade.PCRs().Snapshot(sel)}
	ch, err := v.NewChallenge(1, sel)
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(ch, q); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolRejectsForeignCA(t *testing.T) {
	p, _ := handshake(t)
	malloryCA, _ := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	v2, _ := NewVerifier(&malloryCA.PublicKey)
	if err := v2.ValidateCertificates(p.Certificates()); !errors.Is(err, ErrCertChain) {
		t.Fatalf("foreign CA chain accepted: %v", err)
	}
}

func TestProtocolRejectsSwappedAK(t *testing.T) {
	p, v := handshake(t)
	other, _ := testBlade(t)
	certs := p.Certificates()
	certs.AKPub = other.AKPub() // substitution attack
	if err := v.ValidateCertificates(certs); !errors.Is(err, ErrCertChain) {
		t.Fatalf("swapped AK accepted: %v", err)
	}
}

func TestProtocolRejectsUnexpectedPCRs(t *testing.T) {
	p, v := handshake(t)
	if err := v.ValidateCertificates(p.Certificates()); err != nil {
		t.Fatal(err)
	}
	sel := []int{hrot.PCRBitstream}
	v.Expected = [][]byte{bytes.Repeat([]byte{0xaa}, 36)} // not the real platform
	ch, _ := v.NewChallenge(1, sel)
	q, _ := p.Respond(ch)
	if err := v.Verify(ch, q); !errors.Is(err, ErrReport) {
		t.Fatalf("wrong platform state accepted: %v", err)
	}
}

func TestProtocolRejectsReplayedReport(t *testing.T) {
	p, v := handshake(t)
	if err := v.ValidateCertificates(p.Certificates()); err != nil {
		t.Fatal(err)
	}
	sel := []int{hrot.PCRBitstream}
	v.Expected = [][]byte{p.Blade.PCRs().Snapshot(sel)}
	ch1, _ := v.NewChallenge(1, sel)
	q1, _ := p.Respond(ch1)
	if err := v.Verify(ch1, q1); err != nil {
		t.Fatal(err)
	}
	// New challenge, old report.
	ch2, _ := v.NewChallenge(1, sel)
	if err := v.Verify(ch2, q1); !errors.Is(err, ErrReport) {
		t.Fatalf("replayed report accepted: %v", err)
	}
}

func TestProtocolRequiresCertValidationFirst(t *testing.T) {
	p, v := handshake(t)
	ch, _ := v.NewChallenge(1, []int{0})
	q, _ := p.Respond(ch)
	if err := v.Verify(ch, q); !errors.Is(err, ErrReport) {
		t.Fatalf("verification without certificates: %v", err)
	}
}

func TestKeyBundleDelivery(t *testing.T) {
	p, v := handshake(t)
	kb := NewKeyBundle([]string{"h2d", "d2h", "config", "mmio"})
	sealed, err := v.Seal(kb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.OpenBundle(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Streams) != 4 {
		t.Fatalf("delivered %d streams", len(got.Streams))
	}
	for name, m := range kb.Streams {
		g, ok := got.Streams[name]
		if !ok || !bytes.Equal(g.Key, m.Key) || !bytes.Equal(g.Nonce, m.Nonce) {
			t.Fatalf("stream %q material corrupted", name)
		}
	}
}

func TestKeyBundleRejectsEavesdropperTamper(t *testing.T) {
	p, v := handshake(t)
	kb := NewKeyBundle([]string{"h2d"})
	sealed, _ := v.Seal(kb)
	sealed.Ciphertext[0] ^= 1
	if _, err := p.OpenBundle(sealed); err == nil {
		t.Fatal("tampered key bundle accepted")
	}
}

func TestKeyBundleUnreadableWithoutSession(t *testing.T) {
	_, v := handshake(t)
	blade2, _ := testBlade(t)
	stranger, _ := NewPlatform(blade2) // never completed the handshake
	kb := NewKeyBundle([]string{"h2d"})
	sealed, _ := v.Seal(kb)
	if _, err := stranger.OpenBundle(sealed); err == nil {
		t.Fatal("bundle opened without the session key")
	}
}

func TestBundleMarshalRejectsTruncation(t *testing.T) {
	if _, err := unmarshalBundle([]byte{5, 'a'}); err == nil {
		t.Fatal("truncated bundle parsed")
	}
}
