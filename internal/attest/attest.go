// Package attest implements ccAI's remote attestation protocol
// (Figure 6) and the workload key exchange built on top of it. The
// four steps: ① ECDH key exchange yields a SessionKey encrypting all
// subsequent messages; ② the verifier fetches the AK/EK certificates
// and validates them against the vendor root CA; ③ the verifier sends
// a challenge (key id, PCR selection, nonce); ④ the platform returns
// the signed report, which the verifier checks against nonce, signature
// chain and expected PCR values. On success the session key carries the
// workload stream keys to the TVM and the PCIe-SC.
package attest

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"ccai/internal/hrot"
	"ccai/internal/secmem"
)

// Errors surfaced by the protocol.
var (
	ErrCertChain = errors.New("attest: certificate chain invalid")
	ErrReport    = errors.New("attest: attestation report invalid")
)

// Platform is the ccAI side of the protocol: the machine owner's view
// of blade + session state.
type Platform struct {
	Blade   *hrot.Blade
	dh      *ecdh.PrivateKey
	sessKey []byte
}

// Verifier is the remote user's side.
type Verifier struct {
	VendorCA *ecdsa.PublicKey
	dh       *ecdh.PrivateKey
	sessKey  []byte
	akPub    *ecdsa.PublicKey
	// Expected is the whitelist of acceptable PCR snapshots (golden
	// measurements published by the platform operator).
	Expected [][]byte
}

// Hello carries each side's ephemeral ECDH public key (step ①).
type Hello struct {
	Pub []byte
}

// NewPlatform wraps a booted blade.
func NewPlatform(b *hrot.Blade) (*Platform, error) {
	if !b.Booted() {
		return nil, hrot.ErrNotBooted
	}
	key, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Platform{Blade: b, dh: key}, nil
}

// NewVerifier builds a verifier trusting the given vendor root CA.
func NewVerifier(vendorCA *ecdsa.PublicKey) (*Verifier, error) {
	key, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Verifier{VendorCA: vendorCA, dh: key}, nil
}

// Hello emits the platform's key-share.
func (p *Platform) Hello() Hello { return Hello{Pub: p.dh.PublicKey().Bytes()} }

// Hello emits the verifier's key-share.
func (v *Verifier) Hello() Hello { return Hello{Pub: v.dh.PublicKey().Bytes()} }

func deriveSession(priv *ecdh.PrivateKey, peer []byte) ([]byte, error) {
	pub, err := ecdh.P256().NewPublicKey(peer)
	if err != nil {
		return nil, fmt.Errorf("attest: bad peer key share: %w", err)
	}
	shared, err := priv.ECDH(pub)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(shared)
	return sum[:secmem.KeySize], nil
}

// Establish completes step ① on the platform.
func (p *Platform) Establish(peer Hello) error {
	key, err := deriveSession(p.dh, peer.Pub)
	if err != nil {
		return err
	}
	p.sessKey = key
	return nil
}

// Establish completes step ① on the verifier.
func (v *Verifier) Establish(peer Hello) error {
	key, err := deriveSession(v.dh, peer.Pub)
	if err != nil {
		return err
	}
	v.sessKey = key
	return nil
}

// SessionKey exposes the derived key (tests assert both sides agree).
func (p *Platform) SessionKey() []byte { return p.sessKey }

// SessionKey exposes the verifier's derived key.
func (v *Verifier) SessionKey() []byte { return v.sessKey }

// Certificates carries step ②'s S(AttestKey), S(EndorseKey).
type Certificates struct {
	EKPub  *ecdsa.PublicKey
	AKPub  *ecdsa.PublicKey
	EKCert []byte // vendor CA over EK
	AKCert []byte // EK over AK
}

// Certificates exports the platform's key hierarchy.
func (p *Platform) Certificates() Certificates {
	return Certificates{
		EKPub:  p.Blade.EKPub(),
		AKPub:  p.Blade.AKPub(),
		EKCert: p.Blade.EKCert(),
		AKCert: p.Blade.AKCert(),
	}
}

// ValidateCertificates performs step ②: EK endorsed by the vendor CA,
// AK endorsed by the EK.
func (v *Verifier) ValidateCertificates(c Certificates) error {
	if c.EKPub == nil || c.AKPub == nil {
		return fmt.Errorf("%w: missing keys", ErrCertChain)
	}
	if !hrot.VerifyPub(v.VendorCA, c.EKPub, c.EKCert) {
		return fmt.Errorf("%w: EK not endorsed by vendor CA", ErrCertChain)
	}
	if !hrot.VerifyPub(c.EKPub, c.AKPub, c.AKCert) {
		return fmt.Errorf("%w: AK not endorsed by EK", ErrCertChain)
	}
	v.akPub = c.AKPub
	return nil
}

// Challenge is step ③: KeyID selects the xPU set, PCRSel the registers,
// Nonce the freshness.
type Challenge struct {
	KeyID  uint32
	PCRSel []int
	Nonce  []byte
}

// NewChallenge draws a fresh nonce for the selection.
func (v *Verifier) NewChallenge(keyID uint32, sel []int) (Challenge, error) {
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		return Challenge{}, err
	}
	return Challenge{KeyID: keyID, PCRSel: append([]int(nil), sel...), Nonce: nonce}, nil
}

// Respond is step ④ platform-side: the TVM forwards the challenge to
// the HRoT, which signs the selected PCRs.
func (p *Platform) Respond(ch Challenge) (*hrot.Quote, error) {
	return p.Blade.GenerateQuote(ch.Nonce, ch.PCRSel)
}

// Verify is step ④ verifier-side: nonce, signature chain, and PCR
// whitelist.
func (v *Verifier) Verify(ch Challenge, q *hrot.Quote) error {
	if v.akPub == nil {
		return fmt.Errorf("%w: certificates not validated", ErrReport)
	}
	var match []byte
	for _, exp := range v.Expected {
		if string(exp) == string(q.PCRs) {
			match = exp
			break
		}
	}
	if v.Expected != nil && match == nil {
		return fmt.Errorf("%w: PCRs not in golden set", ErrReport)
	}
	if err := hrot.VerifyQuote(v.akPub, q, ch.Nonce, match); err != nil {
		return fmt.Errorf("%w: %v", ErrReport, err)
	}
	return nil
}

// --- workload key delivery -----------------------------------------------------

// KeyBundle is the post-attestation payload: the symmetric material for
// every protected stream, sealed under the session key.
type KeyBundle struct {
	Streams map[string]StreamMaterial
}

// StreamMaterial is one stream's key + nonce base.
type StreamMaterial struct {
	Key   []byte
	Nonce []byte
}

// NewKeyBundle draws fresh material for the standard stream set.
func NewKeyBundle(streams []string) KeyBundle {
	kb := KeyBundle{Streams: make(map[string]StreamMaterial, len(streams))}
	for _, s := range streams {
		kb.Streams[s] = StreamMaterial{Key: secmem.FreshKey(), Nonce: secmem.FreshNonce()}
	}
	return kb
}

// Seal encrypts the bundle under the session key for transport.
func (v *Verifier) Seal(kb KeyBundle) (*secmem.Sealed, error) {
	if v.sessKey == nil {
		return nil, errors.New("attest: no session key")
	}
	stream, err := secmem.NewStream(v.sessKey, fixedSessionNonce)
	if err != nil {
		return nil, err
	}
	return stream.Seal(marshalBundle(kb), nil)
}

// OpenBundle decrypts a delivered bundle on the platform.
func (p *Platform) OpenBundle(sealed *secmem.Sealed) (KeyBundle, error) {
	if p.sessKey == nil {
		return KeyBundle{}, errors.New("attest: no session key")
	}
	stream, err := secmem.NewStream(p.sessKey, fixedSessionNonce)
	if err != nil {
		return KeyBundle{}, err
	}
	pt, err := stream.Open(sealed, nil)
	if err != nil {
		return KeyBundle{}, err
	}
	return unmarshalBundle(pt)
}

// fixedSessionNonce: the session key is single-use (one bundle per
// handshake), so a fixed nonce base with counter 1 is safe; rekeying a
// session requires a fresh handshake.
var fixedSessionNonce = []byte{0x63, 0x63, 0x41, 0x49, 0x2d, 0x4b, 0x42, 0x31}

func marshalBundle(kb KeyBundle) []byte {
	var out []byte
	for name, m := range kb.Streams {
		out = append(out, byte(len(name)))
		out = append(out, name...)
		out = append(out, byte(len(m.Key)))
		out = append(out, m.Key...)
		out = append(out, byte(len(m.Nonce)))
		out = append(out, m.Nonce...)
	}
	return out
}

func unmarshalBundle(b []byte) (KeyBundle, error) {
	kb := KeyBundle{Streams: make(map[string]StreamMaterial)}
	for len(b) > 0 {
		read := func() ([]byte, error) {
			if len(b) < 1 {
				return nil, errors.New("attest: truncated bundle")
			}
			n := int(b[0])
			if len(b) < 1+n {
				return nil, errors.New("attest: truncated bundle field")
			}
			v := append([]byte(nil), b[1:1+n]...)
			b = b[1+n:]
			return v, nil
		}
		name, err := read()
		if err != nil {
			return KeyBundle{}, err
		}
		key, err := read()
		if err != nil {
			return KeyBundle{}, err
		}
		nonce, err := read()
		if err != nil {
			return KeyBundle{}, err
		}
		kb.Streams[string(name)] = StreamMaterial{Key: key, Nonce: nonce}
	}
	return kb, nil
}
