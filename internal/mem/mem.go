// Package mem models host physical memory as seen from the PCIe fabric:
// an address space carved into regions, a page-grained allocator, bounce
// buffers for ccAI's encrypted DMA staging, and an IOMMU that restricts
// which device may reach which pages.
//
// Buffers come in two fidelities (DESIGN.md §2): materialized buffers
// hold real bytes and flow through real AES-GCM; synthetic buffers track
// only a size + deterministic content seed so multi-gigabyte model
// weights don't require gigabytes of host RAM per benchmark iteration.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ccai/internal/sim"
)

// PageSize is the allocation granule, matching the 4 KiB host page size
// the paper's Adaptor maps bounce buffers with.
const PageSize = 4096

// Buffer is a contiguous span of host physical memory. A Buffer either
// materializes its bytes (data != nil) or is synthetic: size-only with a
// deterministic content generator, used for bulk tensors whose crypto
// cost is accounted analytically.
type Buffer struct {
	base uint64
	size int64
	data []byte // nil for synthetic buffers
	seed uint64 // content generator seed for synthetic buffers
	name string

	// pinned buffers survive Space.Free: KV-cache regions stay resident
	// (and their backing un-recycled) across decode steps until the
	// owning session unpins them at Close.
	pinned atomic.Bool
}

// Base reports the buffer's physical base address.
func (b *Buffer) Base() uint64 { return b.base }

// Size reports the buffer's length in bytes.
func (b *Buffer) Size() int64 { return b.size }

// Name reports the buffer's diagnostic label.
func (b *Buffer) Name() string { return b.name }

// Synthetic reports whether the buffer is size-only.
func (b *Buffer) Synthetic() bool { return b.data == nil }

// Seed reports the synthetic content seed (zero for materialized
// buffers).
func (b *Buffer) Seed() uint64 { return b.seed }

// Bytes exposes the materialized contents; it panics for synthetic
// buffers because code touching real bytes must never silently receive
// fabricated ones.
func (b *Buffer) Bytes() []byte {
	if b.data == nil {
		panic(fmt.Sprintf("mem: Bytes() on synthetic buffer %q", b.name))
	}
	return b.data
}

// Slice returns the materialized bytes in [off, off+n).
func (b *Buffer) Slice(off, n int64) []byte {
	if off < 0 || n < 0 || off+n > b.size {
		panic(fmt.Sprintf("mem: slice [%d,%d) outside buffer %q of size %d", off, off+n, b.name, b.size))
	}
	return b.Bytes()[off : off+n]
}

// SampleChunk deterministically materializes one chunk of a synthetic
// buffer (for spot-check integrity tests): chunk i of size n.
func (b *Buffer) SampleChunk(i int64, n int) []byte {
	out := make([]byte, n)
	r := sim.NewRand(b.seed ^ uint64(i)*0x9e3779b97f4a7c15)
	r.Bytes(out)
	return out
}

// Pin marks the buffer resident: Space.Free becomes a no-op until
// Unpin. This is the host-side half of KV-cache residency — the region
// backing a live inference session must never be reclaimed or recycled
// mid-decode.
func (b *Buffer) Pin() { b.pinned.Store(true) }

// Unpin clears residency; the next Free reclaims the buffer.
func (b *Buffer) Unpin() { b.pinned.Store(false) }

// Pinned reports residency.
func (b *Buffer) Pinned() bool { return b.pinned.Load() }

// Contains reports whether addr lies inside the buffer.
func (b *Buffer) Contains(addr uint64) bool {
	return addr >= b.base && addr < b.base+uint64(b.size)
}

// Space is a host physical address space with a bump+free-list page
// allocator per named region ("TVM private", "shared/bounce", ...).
//
// The allocator and buffer index are safe for concurrent use: lookups
// take a read lock, allocation/free take the write lock. Buffer byte
// contents are NOT arbitrated here — each tenant owns disjoint buffers,
// so concurrent DMA into the same buffer is a caller bug, exactly as
// with real host RAM.
type Space struct {
	mu      sync.RWMutex
	regions map[string]*regionAlloc
	// buffers indexes all live allocations by base address for DMA
	// resolution.
	buffers []*Buffer
	// spare retires the byte backings of freed materialized buffers,
	// keyed by exact capacity, so the steady-state task loop (alloc
	// bounce buffer, run, free) stops paying one large allocation per
	// task. Backings are zeroed at Free time — the same eager-zeroing
	// discipline as arena.PutZero, since a bounce buffer may have held
	// tenant plaintext — so Alloc's zeroed-memory contract holds for
	// recycled backings without further work.
	spare map[int][][]byte
}

type regionAlloc struct {
	base, size uint64
	next       uint64
	free       []span // coalesced free list, sorted by base
}

type span struct{ base, size uint64 }

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{regions: make(map[string]*regionAlloc)}
}

// AddRegion defines a named allocatable window. Windows must not
// overlap.
func (s *Space) AddRegion(name string, base, size uint64) error {
	if size == 0 {
		return fmt.Errorf("mem: empty region %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for n, r := range s.regions {
		if base < r.base+r.size && r.base < base+size {
			return fmt.Errorf("mem: region %q overlaps %q", name, n)
		}
	}
	s.regions[name] = &regionAlloc{base: base, size: size, next: base}
	return nil
}

func align(v uint64) uint64 { return (v + PageSize - 1) &^ (PageSize - 1) }

func (r *regionAlloc) alloc(size int64) (uint64, error) {
	need := align(uint64(size))
	// First-fit in the free list.
	for i, f := range r.free {
		if f.size >= need {
			base := f.base
			if f.size == need {
				r.free = append(r.free[:i], r.free[i+1:]...)
			} else {
				r.free[i] = span{base: f.base + need, size: f.size - need}
			}
			return base, nil
		}
	}
	if r.next+need > r.base+r.size {
		return 0, fmt.Errorf("mem: region exhausted (%d bytes requested)", size)
	}
	base := r.next
	r.next += need
	return base, nil
}

func (r *regionAlloc) release(base uint64, size int64) {
	need := align(uint64(size))
	r.free = append(r.free, span{base: base, size: need})
	sort.Slice(r.free, func(i, j int) bool { return r.free[i].base < r.free[j].base })
	// Coalesce adjacent spans.
	out := r.free[:0]
	for _, f := range r.free {
		if n := len(out); n > 0 && out[n-1].base+out[n-1].size == f.base {
			out[n-1].size += f.size
		} else {
			out = append(out, f)
		}
	}
	r.free = out
}

// spareCap bounds how many retired backings are kept per size class;
// beyond it the GC takes them, so a burst of odd-sized buffers cannot
// pin memory forever.
const spareCap = 8

// Alloc materializes a zeroed buffer of the given size in region,
// reusing a retired backing of the same capacity when one is spare.
func (s *Space) Alloc(region, name string, size int64) (*Buffer, error) {
	return s.allocCommon(region, name, size, func(b *Buffer) {
		// allocCommon holds s.mu, so the spare map needs no extra lock.
		if bs := s.spare[int(size)]; len(bs) > 0 {
			b.data = bs[len(bs)-1]
			s.spare[int(size)] = bs[:len(bs)-1]
			return
		}
		b.data = make([]byte, size)
	})
}

// AllocSynthetic reserves address space for a size-only buffer whose
// contents are generated deterministically from seed.
func (s *Space) AllocSynthetic(region, name string, size int64, seed uint64) (*Buffer, error) {
	return s.allocCommon(region, name, size, func(b *Buffer) {
		b.seed = seed
	})
}

// allocCommon reserves pages and publishes the buffer in the DMA index.
// init runs before publication so a buffer is never resolvable while
// half-initialized.
func (s *Space) allocCommon(region, name string, size int64, init func(*Buffer)) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: non-positive allocation %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.regions[region]
	if !ok {
		return nil, fmt.Errorf("mem: unknown region %q", region)
	}
	base, err := r.alloc(size)
	if err != nil {
		return nil, fmt.Errorf("mem: %q in %q: %w", name, region, err)
	}
	b := &Buffer{base: base, size: size, name: name}
	init(b)
	s.buffers = append(s.buffers, b)
	return b, nil
}

// Free releases a buffer's pages back to its region. Pinned buffers
// are left untouched — the owner must Unpin first (KV residency).
func (s *Space) Free(b *Buffer) {
	if b.Pinned() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, r := range s.regions {
		if b.base >= r.base && b.base < r.base+r.size {
			r.release(b.base, b.size)
			_ = name
			break
		}
	}
	for i, x := range s.buffers {
		if x == b {
			s.buffers = append(s.buffers[:i], s.buffers[i+1:]...)
			break
		}
	}
	if b.data != nil && int64(cap(b.data)) == b.size {
		if s.spare == nil {
			s.spare = make(map[int][][]byte)
		}
		if bs := s.spare[int(b.size)]; len(bs) < spareCap {
			d := b.data[:cap(b.data)]
			for i := range d {
				d[i] = 0 // eager zeroing: the backing may have held plaintext
			}
			s.spare[int(b.size)] = append(bs, d)
		}
	}
	b.data = nil
}

// Resolve finds the live buffer containing addr.
func (s *Space) Resolve(addr uint64) (*Buffer, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, b := range s.buffers {
		if b.Contains(addr) {
			return b, true
		}
	}
	return nil, false
}

// Write stores data at a physical address inside a materialized buffer.
func (s *Space) Write(addr uint64, data []byte) error {
	b, ok := s.Resolve(addr)
	if !ok {
		return fmt.Errorf("mem: write to unmapped address %#x", addr)
	}
	off := int64(addr - b.base)
	if off+int64(len(data)) > b.size {
		return fmt.Errorf("mem: write overruns buffer %q", b.name)
	}
	copy(b.Bytes()[off:], data)
	return nil
}

// Read loads n bytes from a physical address inside a materialized
// buffer.
func (s *Space) Read(addr uint64, n int64) ([]byte, error) {
	b, ok := s.Resolve(addr)
	if !ok {
		return nil, fmt.Errorf("mem: read from unmapped address %#x", addr)
	}
	off := int64(addr - b.base)
	if off+n > b.size {
		return nil, fmt.Errorf("mem: read overruns buffer %q", b.name)
	}
	return append([]byte(nil), b.Bytes()[off:off+n]...), nil
}

// ReadInto copies len(dst) bytes from a physical address into dst,
// letting a caller that owns a reusable buffer (the host bridge's
// pooled completion payloads) avoid Read's per-call allocation.
func (s *Space) ReadInto(addr uint64, dst []byte) error {
	b, ok := s.Resolve(addr)
	if !ok {
		return fmt.Errorf("mem: read from unmapped address %#x", addr)
	}
	off := int64(addr - b.base)
	if off+int64(len(dst)) > b.size {
		return fmt.Errorf("mem: read overruns buffer %q", b.name)
	}
	copy(dst, b.Bytes()[off:])
	return nil
}

// WriteUint64 stores a little-endian 64-bit value.
func (s *Space) WriteUint64(addr uint64, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return s.Write(addr, buf[:])
}

// ReadUint64 loads a little-endian 64-bit value.
func (s *Space) ReadUint64(addr uint64) (uint64, error) {
	b, err := s.Read(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
