package mem

import (
	"fmt"
	"sync"

	"ccai/internal/pcie"
)

// Perm is an IOMMU mapping permission mask.
type Perm uint8

const (
	// PermRead allows the device to DMA-read the range.
	PermRead Perm = 1 << iota
	// PermWrite allows the device to DMA-write the range.
	PermWrite
)

func (p Perm) String() string {
	switch p {
	case PermRead:
		return "r-"
	case PermWrite:
		return "-w"
	case PermRead | PermWrite:
		return "rw"
	}
	return "--"
}

// IOMMU restricts device-initiated accesses to host memory. The paper's
// threat model has the (untrusted) privileged software configure the
// IOMMU to keep devices out of TVM private memory; ccAI relies on that
// existing setting unchanged (§8.1 "ccAI follows existing IOMMU
// settings"). The TVM's private pages are simply never mapped for any
// device, while bounce buffers are mapped for the PCIe-SC only.
// Methods are safe for concurrent use; the exported Faults slice is
// guarded by the same mutex and should be read only after the traffic
// under test has quiesced (as the security tests do).
type IOMMU struct {
	mu   sync.RWMutex
	maps map[pcie.ID][]mapping
	// Faults records rejected accesses for the security tests.
	Faults []Fault
}

type mapping struct {
	base, size uint64
	perm       Perm
}

// Fault describes one blocked device access.
type Fault struct {
	Device pcie.ID
	Addr   uint64
	Write  bool
}

func (f Fault) String() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("iommu fault: %v %s @%#x", f.Device, op, f.Addr)
}

// NewIOMMU returns an IOMMU with no mappings (default-deny).
func NewIOMMU() *IOMMU {
	return &IOMMU{maps: make(map[pcie.ID][]mapping)}
}

// Map grants device access to [base, base+size) with the given
// permissions.
func (u *IOMMU) Map(dev pcie.ID, base, size uint64, perm Perm) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.maps[dev] = append(u.maps[dev], mapping{base: base, size: size, perm: perm})
}

// MapBuffer grants device access to a buffer's full span.
func (u *IOMMU) MapBuffer(dev pcie.ID, b *Buffer, perm Perm) {
	u.Map(dev, b.Base(), uint64(b.Size()), perm)
}

// Unmap revokes every mapping of dev that intersects [base, base+size).
func (u *IOMMU) Unmap(dev pcie.ID, base, size uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	kept := u.maps[dev][:0]
	for _, m := range u.maps[dev] {
		if base < m.base+m.size && m.base < base+size {
			continue
		}
		kept = append(kept, m)
	}
	u.maps[dev] = kept
}

// UnmapAll revokes all of a device's mappings (task teardown).
func (u *IOMMU) UnmapAll(dev pcie.ID) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.maps, dev)
}

// Check validates one device access and records a fault when denied.
// The grant path (every legitimate DMA) takes only the read lock; the
// write lock is taken solely to record a fault.
func (u *IOMMU) Check(dev pcie.ID, addr uint64, size int64, write bool) bool {
	need := PermRead
	if write {
		need = PermWrite
	}
	end := addr + uint64(size)
	u.mu.RLock()
	for _, m := range u.maps[dev] {
		if addr >= m.base && end <= m.base+m.size && m.perm&need != 0 {
			u.mu.RUnlock()
			return true
		}
	}
	u.mu.RUnlock()
	u.mu.Lock()
	u.Faults = append(u.Faults, Fault{Device: dev, Addr: addr, Write: write})
	u.mu.Unlock()
	return false
}

// FaultCount reports recorded faults under the lock.
func (u *IOMMU) FaultCount() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.Faults)
}

// Mappings reports how many live mappings a device holds.
func (u *IOMMU) Mappings(dev pcie.ID) int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.maps[dev])
}
