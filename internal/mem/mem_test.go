package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"ccai/internal/pcie"
)

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	s := NewSpace()
	if err := s.AddRegion("tvm", 0x1000_0000, 64<<20); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRegion("bounce", 0x8000_0000, 64<<20); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAllocReadWriteRoundTrip(t *testing.T) {
	s := newTestSpace(t)
	b, err := s.Alloc("tvm", "input", 8192)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("patient record #42: diagnosis pending")
	if err := s.Write(b.Base()+100, msg); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(b.Base()+100, int64(len(msg)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
}

func TestAllocPageAlignment(t *testing.T) {
	s := newTestSpace(t)
	a, _ := s.Alloc("tvm", "a", 100)
	b, _ := s.Alloc("tvm", "b", 100)
	if a.Base()%PageSize != 0 || b.Base()%PageSize != 0 {
		t.Fatal("allocations not page aligned")
	}
	if b.Base()-a.Base() != PageSize {
		t.Fatalf("sub-page alloc consumed %d bytes", b.Base()-a.Base())
	}
}

func TestAllocExhaustion(t *testing.T) {
	s := NewSpace()
	if err := s.AddRegion("tiny", 0x1000, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("tiny", "fits", 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("tiny", "overflow", 1); err == nil {
		t.Fatal("exhausted region still allocated")
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := NewSpace()
	if err := s.AddRegion("r", 0x1000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Alloc("r", "a", PageSize)
	bBuf, _ := s.Alloc("r", "b", PageSize)
	c, _ := s.Alloc("r", "c", 2*PageSize)
	_ = c
	s.Free(a)
	s.Free(bBuf)
	// Freed a+b coalesce into a 2-page span that a new 2-page alloc fits.
	d, err := s.Alloc("r", "d", 2*PageSize)
	if err != nil {
		t.Fatalf("coalesced reuse failed: %v", err)
	}
	if d.Base() != a.Base() {
		t.Fatalf("reuse at %#x, want %#x", d.Base(), a.Base())
	}
}

func TestResolveAfterFree(t *testing.T) {
	s := newTestSpace(t)
	b, _ := s.Alloc("tvm", "x", PageSize)
	addr := b.Base()
	s.Free(b)
	if _, ok := s.Resolve(addr); ok {
		t.Fatal("freed buffer still resolvable")
	}
	if err := s.Write(addr, []byte{1}); err == nil {
		t.Fatal("write to freed memory succeeded")
	}
}

func TestRegionOverlapRejected(t *testing.T) {
	s := NewSpace()
	if err := s.AddRegion("a", 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRegion("b", 0x1800, 0x1000); err == nil {
		t.Fatal("overlapping region accepted")
	}
}

func TestSyntheticBufferBehaviour(t *testing.T) {
	s := newTestSpace(t)
	if err := s.AddRegion("bulk", 0x100_0000_0000, 1<<40); err != nil {
		t.Fatal(err)
	}
	w, err := s.AllocSynthetic("bulk", "weights", 14<<30, 7) // 14 GB costs no RAM
	if err != nil {
		t.Fatal(err)
	}
	if !w.Synthetic() || w.Size() != 14<<30 {
		t.Fatal("synthetic buffer misdescribed")
	}
	// Sampling the same chunk twice is deterministic; different chunks differ.
	c0a, c0b := w.SampleChunk(0, 256), w.SampleChunk(0, 256)
	c1 := w.SampleChunk(1, 256)
	if !bytes.Equal(c0a, c0b) {
		t.Fatal("SampleChunk non-deterministic")
	}
	if bytes.Equal(c0a, c1) {
		t.Fatal("distinct chunks identical")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes() on synthetic buffer did not panic")
		}
	}()
	_ = w.Bytes()
}

func TestWriteOverrunRejected(t *testing.T) {
	s := newTestSpace(t)
	b, _ := s.Alloc("tvm", "small", PageSize)
	if err := s.Write(b.Base()+uint64(b.Size())-4, make([]byte, 8)); err == nil {
		t.Fatal("overrun write accepted")
	}
	if _, err := s.Read(b.Base()+uint64(b.Size())-4, 8); err == nil {
		t.Fatal("overrun read accepted")
	}
}

func TestUint64Helpers(t *testing.T) {
	s := newTestSpace(t)
	b, _ := s.Alloc("tvm", "regs", PageSize)
	if err := s.WriteUint64(b.Base()+16, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadUint64(b.Base() + 16)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("ReadUint64 = %#x, %v", v, err)
	}
}

// Property: allocations never overlap one another.
func TestAllocationsDisjointProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSpace()
		if err := s.AddRegion("r", 0, 1<<30); err != nil {
			return false
		}
		var bufs []*Buffer
		for _, sz := range sizes {
			b, err := s.Alloc("r", "x", int64(sz)+1)
			if err != nil {
				return false
			}
			bufs = append(bufs, b)
		}
		for i := range bufs {
			for j := i + 1; j < len(bufs); j++ {
				a, b := bufs[i], bufs[j]
				if a.Base() < b.Base()+uint64(b.Size()) && b.Base() < a.Base()+uint64(a.Size()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- IOMMU ----------------------------------------------------------------

func TestIOMMUDefaultDeny(t *testing.T) {
	u := NewIOMMU()
	dev := pcie.MakeID(2, 0, 0)
	if u.Check(dev, 0x1000, 64, false) {
		t.Fatal("unmapped read allowed")
	}
	if len(u.Faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(u.Faults))
	}
}

func TestIOMMUPermissionEnforcement(t *testing.T) {
	u := NewIOMMU()
	dev := pcie.MakeID(2, 0, 0)
	u.Map(dev, 0x1000, 0x1000, PermRead)
	if !u.Check(dev, 0x1800, 64, false) {
		t.Fatal("mapped read denied")
	}
	if u.Check(dev, 0x1800, 64, true) {
		t.Fatal("read-only mapping allowed a write")
	}
	// Range straddling the mapping edge must fail.
	if u.Check(dev, 0x1fff, 64, false) {
		t.Fatal("straddling access allowed")
	}
}

func TestIOMMUIsolationBetweenDevices(t *testing.T) {
	u := NewIOMMU()
	xpu := pcie.MakeID(2, 0, 0)
	rogue := pcie.MakeID(3, 0, 0)
	u.Map(xpu, 0x1000, 0x1000, PermRead|PermWrite)
	if u.Check(rogue, 0x1000, 16, true) {
		t.Fatal("another device reached the mapping")
	}
}

func TestIOMMUUnmap(t *testing.T) {
	u := NewIOMMU()
	dev := pcie.MakeID(2, 0, 0)
	u.Map(dev, 0x1000, 0x1000, PermRead|PermWrite)
	u.Map(dev, 0x8000, 0x1000, PermRead)
	u.Unmap(dev, 0x1000, 0x1000)
	if u.Check(dev, 0x1000, 16, false) {
		t.Fatal("unmapped range still accessible")
	}
	if !u.Check(dev, 0x8000, 16, false) {
		t.Fatal("unrelated mapping lost")
	}
	u.UnmapAll(dev)
	if u.Mappings(dev) != 0 || u.Check(dev, 0x8000, 16, false) {
		t.Fatal("UnmapAll incomplete")
	}
}

func TestIOMMUMapBuffer(t *testing.T) {
	s := newTestSpace(t)
	b, _ := s.Alloc("bounce", "h2d", 8*PageSize)
	u := NewIOMMU()
	sc := pcie.MakeID(4, 0, 0)
	u.MapBuffer(sc, b, PermRead)
	if !u.Check(sc, b.Base()+100, 256, false) {
		t.Fatal("buffer mapping not honoured")
	}
}

func TestAccessorsAndSlice(t *testing.T) {
	s := newTestSpace(t)
	b, err := s.Alloc("tvm", "named", 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "named" {
		t.Fatalf("name = %q", b.Name())
	}
	copy(b.Bytes()[100:], []byte("window"))
	if string(b.Slice(100, 6)) != "window" {
		t.Fatal("Slice returned wrong view")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Slice did not panic")
		}
	}()
	b.Slice(2*PageSize-2, 8)
}

func TestSyntheticSeedAccessor(t *testing.T) {
	s := newTestSpace(t)
	b, err := s.AllocSynthetic("tvm", "syn", PageSize, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seed() != 1234 {
		t.Fatalf("seed = %d", b.Seed())
	}
}

func TestPermAndFaultStrings(t *testing.T) {
	for _, p := range []Perm{PermRead, PermWrite, PermRead | PermWrite, 0} {
		if p.String() == "" {
			t.Fatal("empty perm string")
		}
	}
	f := Fault{Device: pcie.MakeID(3, 0, 0), Addr: 0x1234, Write: true}
	if f.String() == "" {
		t.Fatal("empty fault string")
	}
	fr := Fault{Device: pcie.MakeID(3, 0, 0), Addr: 0x1234, Write: false}
	if f.String() == fr.String() {
		t.Fatal("read/write faults indistinguishable")
	}
}

func TestPinnedBufferSurvivesFree(t *testing.T) {
	s := newTestSpace(t)
	b, err := s.Alloc("tvm", "kv", 8192)
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Bytes(), []byte("kv-cache-resident"))
	b.Pin()
	if !b.Pinned() {
		t.Fatal("Pin did not stick")
	}
	s.Free(b) // must be a no-op while pinned
	if b.Synthetic() {
		t.Fatal("pinned buffer lost its backing on Free")
	}
	if _, ok := s.Resolve(b.Base()); !ok {
		t.Fatal("pinned buffer unresolvable after Free")
	}
	if got := string(b.Slice(0, 17)); got != "kv-cache-resident" {
		t.Fatalf("pinned contents clobbered: %q", got)
	}
	b.Unpin()
	s.Free(b)
	if _, ok := s.Resolve(b.Base()); ok {
		t.Fatal("buffer still resolvable after Unpin+Free")
	}
}
