package adaptor

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ccai/internal/core"
	"ccai/internal/mem"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

// rig is a compact Adaptor⇄PCIe-SC harness: a host bus with a memory
// bridge, the controller, and an adaptor sharing provisioned keys. The
// xPU side is a scriptable stub on the internal bus.
type rig struct {
	space   *mem.Space
	host    *pcie.Bus
	inner   *pcie.Bus
	sc      *core.Controller
	adaptor *Adaptor
	iommu   *mem.IOMMU
}

const (
	tvmID    = 0x0008 // 00:01.0
	scBar    = 0xd010_0000
	xpuBar   = 0xd000_0000
	shBase   = 0x8000_0000
	shSize   = 32 << 20
	rigDevID = 0x1000 // 02:00.0... computed below instead
)

type memBridge struct {
	space *mem.Space
	iommu *mem.IOMMU
}

func (m *memBridge) DeviceID() pcie.ID { return pcie.MakeID(0, 0, 0) }
func (m *memBridge) Handle(p *pcie.Packet) *pcie.Packet {
	switch p.Kind {
	case pcie.MRd:
		if !m.iommu.Check(p.Requester, p.Address, int64(p.Length), false) {
			return pcie.NewCompletion(p, m.DeviceID(), pcie.CplCA, nil)
		}
		data, err := m.space.Read(p.Address, int64(p.Length))
		if err != nil {
			return pcie.NewCompletion(p, m.DeviceID(), pcie.CplUR, nil)
		}
		return pcie.NewCompletion(p, m.DeviceID(), pcie.CplSuccess, data)
	case pcie.MWr:
		if m.iommu.Check(p.Requester, p.Address, int64(len(p.Payload)), true) {
			_ = m.space.Write(p.Address, p.Payload)
		}
	}
	return nil
}

// stubXPU answers MMIO on the internal bus and exposes helpers that
// issue DMA through the SC like a real device.
type stubXPU struct {
	id   pcie.ID
	regs map[uint64]uint64
	up   func(p *pcie.Packet) *pcie.Packet
}

func (s *stubXPU) DeviceID() pcie.ID { return s.id }
func (s *stubXPU) Handle(p *pcie.Packet) *pcie.Packet {
	switch p.Kind {
	case pcie.MWr:
		var tmp [8]byte
		copy(tmp[:], p.Payload)
		s.regs[p.Address-xpuBar] = binary.LittleEndian.Uint64(tmp[:])
		return nil
	case pcie.MRd:
		buf := make([]byte, p.Length)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], s.regs[p.Address-xpuBar])
		copy(buf, tmp[:])
		return pcie.NewCompletion(p, s.id, pcie.CplSuccess, buf)
	}
	return nil
}

func (s *stubXPU) dmaRead(addr uint64, n int64) ([]byte, bool) {
	out := make([]byte, 0, n)
	for n > 0 {
		chunk := int64(pcie.MaxPayload)
		if n < chunk {
			chunk = n
		}
		cpl := s.up(pcie.NewMemRead(s.id, addr, uint32(chunk), 0))
		if cpl == nil || cpl.Status != pcie.CplSuccess {
			return nil, false
		}
		out = append(out, cpl.Payload...)
		addr += uint64(chunk)
		n -= chunk
	}
	return out, true
}

func (s *stubXPU) dmaWrite(addr uint64, data []byte) {
	for len(data) > 0 {
		chunk := pcie.MaxPayload
		if len(data) < chunk {
			chunk = len(data)
		}
		s.up(pcie.NewMemWrite(s.id, addr, data[:chunk]))
		addr += uint64(chunk)
		data = data[chunk:]
	}
}

func newRig(t testing.TB, opts Options) (*rig, *stubXPU) {
	t.Helper()
	space := mem.NewSpace()
	if err := space.AddRegion(SharedRegion, shBase, shSize); err != nil {
		t.Fatal(err)
	}
	iommu := mem.NewIOMMU()
	host := pcie.NewBus("host")
	inner := pcie.NewBus("internal")
	tvm := pcie.MakeID(0, 1, 0)
	scID := pcie.MakeID(1, 0, 0)
	xpuID := pcie.MakeID(2, 0, 0)

	bridge := &memBridge{space: space, iommu: iommu}
	host.Attach(bridge)
	if err := host.Claim(bridge.DeviceID(), pcie.Region{Base: shBase, Size: shSize, Name: "shared"}); err != nil {
		t.Fatal(err)
	}
	iommu.Map(scID, shBase, shSize, mem.PermRead|mem.PermWrite)

	scKeys := secmem.NewKeyStore()
	sc := core.NewController(scID, pcie.Region{Base: scBar, Size: core.SCBarSize}, scKeys)
	if err := sc.AttachHostBus(host, pcie.Region{Base: xpuBar, Size: 0x1000, Name: "xpu-window"}); err != nil {
		t.Fatal(err)
	}
	sc.AttachInternalBus(inner, xpuID)
	sc.SetAuthorizedTVM(tvm)

	dev := &stubXPU{id: xpuID, regs: make(map[uint64]uint64)}
	inner.Attach(dev)
	if err := inner.Claim(xpuID, pcie.Region{Base: xpuBar, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	dev.up = sc.HandleFromDevice

	// Boot rules: TVM control traffic + xPU DMA.
	for _, r := range core.L1Screen(1, tvm) {
		sc.Filter().InstallL1(r)
	}
	for _, r := range core.L1Screen(10, xpuID) {
		sc.Filter().InstallL1(r)
	}
	sc.Filter().InstallL2(core.Rule{ID: 20, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MWr, Requester: tvm, AddrLo: xpuBar, AddrHi: xpuBar + 0x1000, Action: core.ActionWriteProtect})
	sc.Filter().InstallL2(core.Rule{ID: 21, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MRd, Requester: tvm, AddrLo: xpuBar, AddrHi: xpuBar + 0x1000, Action: core.ActionPassThrough})
	for _, k := range []pcie.Kind{pcie.MRd, pcie.MWr} {
		sc.Filter().InstallL2(core.Rule{ID: 22, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
			Kind: k, Requester: xpuID, AddrLo: shBase, AddrHi: shBase + shSize, Action: core.ActionWriteReadProtect})
	}

	// Shared key material.
	tvmKeys := secmem.NewKeyStore()
	for _, s := range []string{core.StreamH2D, core.StreamD2H, core.StreamConfig, core.StreamMMIO} {
		key, nonce := secmem.FreshKey(), secmem.FreshNonce()
		if err := scKeys.Install(s, key, nonce); err != nil {
			t.Fatal(err)
		}
		if err := tvmKeys.Install(s, key, nonce); err != nil {
			t.Fatal(err)
		}
		if s != core.StreamMMIO {
			if err := sc.Params().Activate(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	a := New(tvm, host, space, tvmKeys, scBar, xpuBar, opts)
	if err := a.HWInit(); err != nil {
		t.Fatal(err)
	}
	return &rig{space: space, host: host, inner: inner, sc: sc, adaptor: a, iommu: iommu}, dev
}

func TestStageH2DDeviceReadsPlaintext(t *testing.T) {
	r, dev := newRig(t, Optimized())
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 11)
	}
	region, err := r.adaptor.StageH2D("weights", data)
	if err != nil {
		t.Fatal(err)
	}
	// The bounce buffer must hold ciphertext, not the data.
	if bytes.Contains(region.Buf.Bytes(), data[:64]) {
		t.Fatal("bounce buffer holds plaintext")
	}
	got, ok := dev.dmaRead(region.Buf.Base(), int64(len(data)))
	if !ok {
		t.Fatal("device DMA read failed")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("device received wrong plaintext")
	}
	if r.sc.Stats().DecryptedChunks != 4 {
		t.Fatalf("decrypted chunks = %d, want 4", r.sc.Stats().DecryptedChunks)
	}
}

func TestD2HRoundTrip(t *testing.T) {
	r, dev := newRig(t, Optimized())
	region, err := r.adaptor.PrepareD2H("results", 600)
	if err != nil {
		t.Fatal(err)
	}
	result := make([]byte, 600)
	for i := range result {
		result[i] = byte(255 - i)
	}
	dev.dmaWrite(region.Buf.Base(), result)
	got, err := r.adaptor.CollectD2H(region, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, result) {
		t.Fatal("collected result mismatch")
	}
	// Bounce buffer itself must hold ciphertext.
	if bytes.Contains(region.Buf.Bytes(), result[:64]) {
		t.Fatal("result plaintext visible in host memory")
	}
}

func TestD2HProgressMetadataBatching(t *testing.T) {
	r, dev := newRig(t, Optimized())
	region, err := r.adaptor.PrepareD2H("res", 512)
	if err != nil {
		t.Fatal(err)
	}
	readsBefore := r.adaptor.IO().MMIOReads
	if got := r.adaptor.D2HProgress(region, r.sc); got != 0 {
		t.Fatalf("progress = %d before any write", got)
	}
	dev.dmaWrite(region.Buf.Base(), make([]byte, 512))
	if got := r.adaptor.D2HProgress(region, r.sc); got != 2 {
		t.Fatalf("progress = %d, want 2 chunks", got)
	}
	// Batched metadata: both progress checks were plain memory reads.
	if r.adaptor.IO().MMIOReads != readsBefore {
		t.Fatal("optimized mode used MMIO polling")
	}
}

func TestD2HProgressNoOptPolls(t *testing.T) {
	r, dev := newRig(t, NoOpt())
	region, err := r.adaptor.PrepareD2H("res", 512)
	if err != nil {
		t.Fatal(err)
	}
	dev.dmaWrite(region.Buf.Base(), make([]byte, 512))
	readsBefore := r.adaptor.IO().MMIOReads
	if got := r.adaptor.D2HProgress(region, r.sc); got != 2 {
		t.Fatalf("progress = %d", got)
	}
	if r.adaptor.IO().MMIOReads != readsBefore+1 {
		t.Fatal("no-opt mode did not pay the I/O read")
	}
}

func TestGuardedWriteReachesDevice(t *testing.T) {
	r, dev := newRig(t, Optimized())
	if err := r.adaptor.GuardedWrite(0x10, 0xabcd); err != nil {
		t.Fatal(err)
	}
	if dev.regs[0x10] != 0xabcd {
		t.Fatalf("device register = %#x", dev.regs[0x10])
	}
	if r.sc.Stats().VerifiedChunks != 1 {
		t.Fatal("MAC verification not recorded")
	}
	v, err := r.adaptor.DeviceRead(0x10)
	if err != nil || v != 0xabcd {
		t.Fatalf("DeviceRead = %#x, %v", v, err)
	}
}

func TestGuardedWriteSequenceDiscipline(t *testing.T) {
	r, dev := newRig(t, Optimized())
	for i := uint64(0); i < 5; i++ {
		if err := r.adaptor.GuardedWrite(0x20+8*i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		if dev.regs[0x20+8*i] != i {
			t.Fatalf("register %d = %d", i, dev.regs[0x20+8*i])
		}
	}
	if r.sc.MMIOSeq() != 5 {
		t.Fatalf("SC sequence = %d", r.sc.MMIOSeq())
	}
}

func TestInstallRuleTakesEffect(t *testing.T) {
	r, _ := newRig(t, Optimized())
	_, l2Before := r.sc.Filter().RuleCount()
	err := r.adaptor.InstallRule(core.Rule{
		ID: 99, Mask: core.MatchKind | core.MatchRequester,
		Kind: pcie.MWr, Requester: pcie.MakeID(0, 1, 0), Action: core.ActionPassThrough,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, l2After := r.sc.Filter().RuleCount(); l2After != l2Before+1 {
		t.Fatal("sealed rule not installed")
	}
	if r.sc.Stats().ConfigRejects != 0 {
		t.Fatal("legitimate rule rejected")
	}
}

func TestVerifiedRegionSync(t *testing.T) {
	r, dev := newRig(t, Optimized())
	region, err := r.adaptor.StageVerified("ring", 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(region.Buf.Bytes()[64:], []byte("command entry 1 payload here....padded to sixty-four bytes....."))
	if err := r.adaptor.SyncVerified(region, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	got, ok := dev.dmaRead(region.Buf.Base()+64, 64)
	if !ok {
		t.Fatal("verified read failed")
	}
	if !bytes.Equal(got, region.Buf.Bytes()[64:128]) {
		t.Fatal("verified read returned wrong bytes")
	}
	// One-shot MACs: a second read of the same chunk must fail.
	if _, ok := dev.dmaRead(region.Buf.Base()+64, 64); ok {
		t.Fatal("MAC record replayable")
	}
	// Unsynced chunks are unreadable.
	if _, ok := dev.dmaRead(region.Buf.Base(), 64); ok {
		t.Fatal("unsynced chunk readable")
	}
}

func TestTagBatchingReducesWrites(t *testing.T) {
	data := make([]byte, 16*256) // 16 chunks => 16 tag records
	run := func(opts Options) uint64 {
		r, _ := newRig(t, opts)
		before := r.adaptor.IO().MMIOWrites
		if _, err := r.adaptor.StageH2D("x", data); err != nil {
			t.Fatal(err)
		}
		return r.adaptor.IO().MMIOWrites - before
	}
	batched := run(Optimized())
	perRecord := run(NoOpt())
	if perRecord < batched+10 {
		t.Fatalf("batching ineffective: %d vs %d writes", batched, perRecord)
	}
}

func TestReleaseRegionFreesAndDeregisters(t *testing.T) {
	r, dev := newRig(t, Optimized())
	region, err := r.adaptor.StageH2D("tmp", make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	base := region.Buf.Base()
	if r.sc.Regions() != 1 {
		t.Fatalf("regions = %d", r.sc.Regions())
	}
	r.adaptor.ReleaseRegion(region)
	if r.sc.Regions() != 0 {
		t.Fatal("SC still tracks the region")
	}
	if _, ok := dev.dmaRead(base, 256); ok {
		t.Fatal("released region still readable")
	}
}

func TestTeardownDestroysKeysAndRegions(t *testing.T) {
	r, _ := newRig(t, Optimized())
	if _, err := r.adaptor.StageH2D("x", make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	r.adaptor.Teardown()
	if r.sc.Params().Active() != 0 || r.sc.Regions() != 0 {
		t.Fatal("teardown incomplete on SC")
	}
	if _, err := r.adaptor.StageH2D("y", make([]byte, 256)); err == nil {
		t.Fatal("adaptor usable after teardown")
	}
}

func TestHWInitRequiresKeys(t *testing.T) {
	space := mem.NewSpace()
	if err := space.AddRegion(SharedRegion, shBase, shSize); err != nil {
		t.Fatal(err)
	}
	a := New(pcie.MakeID(0, 1, 0), pcie.NewBus("h"), space, secmem.NewKeyStore(), scBar, xpuBar, Optimized())
	if err := a.HWInit(); err == nil {
		t.Fatal("HWInit succeeded without key material")
	}
}

func TestSCStatusReadable(t *testing.T) {
	r, _ := newRig(t, Optimized())
	if st := r.adaptor.SCStatus(); st&core.SCStatusReady == 0 {
		t.Fatalf("SC status = %#x", st)
	}
}

func TestRekeyStreamBumpsEpochBothEnds(t *testing.T) {
	r, dev := newRig(t, Optimized())
	// Traffic before rotation works.
	region1, err := r.adaptor.StageH2D("pre", make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dev.dmaRead(region1.Buf.Base(), 512); !ok {
		t.Fatal("pre-rekey read failed")
	}
	if err := r.adaptor.RekeyStream(core.StreamH2D); err != nil {
		t.Fatal(err)
	}
	scStream, err := r.sc.Params().Stream(core.StreamH2D)
	if err != nil {
		t.Fatal(err)
	}
	if scStream.Epoch() != 1 {
		t.Fatalf("SC epoch = %d after rekey", scStream.Epoch())
	}
	if r.sc.Stats().ConfigRejects != 0 {
		t.Fatal("legitimate rekey rejected")
	}
	// Traffic after rotation works under the new key.
	data := []byte("post-rekey payload, fresh epoch!")
	region2, err := r.adaptor.StageH2D("post", data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := dev.dmaRead(region2.Buf.Base(), int64(len(data)))
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("post-rekey read failed")
	}
}

func TestMaybeRekeyTriggersNearExhaustion(t *testing.T) {
	r, dev := newRig(t, Optimized())
	// Drive the send counter to the threshold region.
	r.adaptor.h2d.ForceCounter(^uint32(0) - RekeyThreshold/2)
	// The SC replica must agree on the counter for in-order opens, but
	// a rotation resets both sides anyway; stage triggers it.
	rotated, err := r.adaptor.MaybeRekey()
	if err != nil {
		t.Fatal(err)
	}
	if len(rotated) != 1 || rotated[0] != core.StreamH2D {
		t.Fatalf("rotated = %v", rotated)
	}
	// End-to-end traffic continues after the implicit rotation.
	data := []byte("still flowing")
	region, err := r.adaptor.StageH2D("x", data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := dev.dmaRead(region.Buf.Base(), int64(len(data)))
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("traffic broken after auto-rekey")
	}
}

func TestRekeyCannotRotateConfigStream(t *testing.T) {
	r, _ := newRig(t, Optimized())
	if err := r.adaptor.RekeyStream(core.StreamConfig); err == nil {
		t.Fatal("config self-rekey accepted by adaptor")
	}
}

func TestForgedRekeyRejected(t *testing.T) {
	r, _ := newRig(t, Optimized())
	// An attacker (without the config key) uploads a plaintext rekey
	// command to take over the h2d stream.
	evil := core.RekeyCommand{Stream: core.StreamH2D, Key: secmem.FreshKey(), Nonce: secmem.FreshNonce()}
	r.host.Route(pcie.NewMemWrite(pcie.MakeID(0, 1, 0), scBar+core.RegRekeyWindow, evil.Marshal()))
	r.host.Route(pcie.NewMemWrite(pcie.MakeID(0, 1, 0), scBar+core.RegRekeyDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	if r.sc.Stats().ConfigRejects == 0 {
		t.Fatal("forged rekey not rejected")
	}
	scStream, _ := r.sc.Params().Stream(core.StreamH2D)
	if scStream.Epoch() != 0 {
		t.Fatal("forged rekey rotated the stream")
	}
}

func TestOptionsAccessor(t *testing.T) {
	r, _ := newRig(t, NoOpt())
	if r.adaptor.Options().BatchTags {
		t.Fatal("options accessor wrong")
	}
}

func TestCollectD2HOversizeRejected(t *testing.T) {
	r, _ := newRig(t, Optimized())
	region, err := r.adaptor.PrepareD2H("res", 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.adaptor.CollectD2H(region, 512); err == nil {
		t.Fatal("oversize collect accepted")
	}
}

func TestPrepareD2HAfterTeardownRejected(t *testing.T) {
	r, _ := newRig(t, Optimized())
	r.adaptor.Teardown()
	if _, err := r.adaptor.PrepareD2H("res", 256); err == nil {
		t.Fatal("PrepareD2H after teardown accepted")
	}
}
