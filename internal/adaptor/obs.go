package adaptor

import (
	"ccai/internal/core"
	"ccai/internal/obsv"
)

// adaptorObs caches the Adaptor's observability handles. The zero value
// (all-nil handles) is the uninstrumented state: every increment and
// Begin/End call is nil-safe, so the hot path never branches on
// enablement. Counters mirror RecoveryStats one-for-one so the fault
// matrix's exactly-once assertions hold for the metrics too.
type adaptorObs struct {
	tracer *obsv.Tracer

	mmioWrites, mmioReads *obsv.Counter
	rekeys                *obsv.Counter

	ringEntries, ringDoorbells, ringFlushes *obsv.Counter

	timeouts, retries, recovered *obsv.Counter
	staleSuppressed              *obsv.Counter
	cryptoRetries                *obsv.Counter
	reposts, resyncs             *obsv.Counter
	exhausted, failClosed        *obsv.Counter
}

// SetObserver instruments the Adaptor and its active stream replicas;
// streams activated later (HWInit) inherit the hub. A nil hub clears
// everything.
func (a *Adaptor) SetObserver(h *obsv.Hub) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.hub = h
	track := obsv.TrackCrypto + "/adaptor"
	if a.h2d != nil {
		a.h2d.SetObserver(h, track, core.StreamH2D)
	}
	if a.d2h != nil {
		a.d2h.SetObserver(h, track, core.StreamD2H)
	}
	if a.config != nil {
		a.config.SetObserver(h, track, core.StreamConfig)
	}
	if h == nil {
		a.obs = adaptorObs{}
		return
	}
	reg := h.Reg()
	a.obs = adaptorObs{
		tracer:          h.T(),
		mmioWrites:      reg.Counter("adaptor.mmio.writes"),
		mmioReads:       reg.Counter("adaptor.mmio.reads"),
		rekeys:          reg.Counter("adaptor.rekeys"),
		ringEntries:     reg.Counter("adaptor.ring.entries"),
		ringDoorbells:   reg.Counter("adaptor.ring.doorbells"),
		ringFlushes:     reg.Counter("adaptor.ring.flushes"),
		timeouts:        reg.Counter("adaptor.recovery.timeouts"),
		retries:         reg.Counter("adaptor.recovery.retries"),
		recovered:       reg.Counter("adaptor.recovery.recovered"),
		staleSuppressed: reg.Counter("adaptor.recovery.stale_suppressed"),
		cryptoRetries:   reg.Counter("adaptor.recovery.crypto_retries"),
		reposts:         reg.Counter("adaptor.recovery.reposts"),
		resyncs:         reg.Counter("adaptor.recovery.resyncs"),
		exhausted:       reg.Counter("adaptor.recovery.exhausted"),
		failClosed:      reg.Counter("adaptor.recovery.fail_closed"),
	}
}
