package adaptor

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ccai/internal/core"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
	"ccai/internal/sim"
)

// RetryPolicy bounds the Adaptor's recovery behaviour. Every retryable
// operation gets at most 1+MaxRetries attempts with exponential backoff
// charged to the virtual clock; when attempts run out the Adaptor does
// not limp along — it reports the failure so the caller can fail closed
// (teardown through the environment guard), because a confidential
// session in an unknown state is worth less than no session.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try.
	MaxRetries int
	// Backoff is the wait before the first retry.
	Backoff sim.Time
	// Multiplier scales the wait between consecutive retries (≥1).
	Multiplier int
}

// DefaultRetryPolicy matches PCIe completion-timeout practice scaled to
// the simulation: four retries starting at 5µs, doubling.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, Backoff: 5 * sim.Microsecond, Multiplier: 2}
}

// RecoveryStats counts fault-recovery activity. The fault matrix
// asserts on these to prove recovery actually exercised the injected
// path rather than silently passing.
type RecoveryStats struct {
	// Timeouts counts non-posted requests that saw no completion.
	Timeouts uint64
	// Retries counts re-issued requests (all causes).
	Retries uint64
	// Recovered counts operations that failed at least once and then
	// succeeded.
	Recovered uint64
	// StaleSuppressed counts completions discarded because their
	// transaction tag did not match the outstanding request.
	StaleSuppressed uint64
	// CryptoRetries counts crypto ops re-run after secmem.ErrTransient.
	CryptoRetries uint64
	// Reposts counts tag-table re-uploads after suspected tag loss.
	Reposts uint64
	// Resyncs counts A3 MMIO sequence re-synchronisations that actually
	// moved the local sequence number.
	Resyncs uint64
	// Exhausted counts operations that ran out of retries.
	Exhausted uint64
	// FailClosed counts fail-closed teardowns.
	FailClosed uint64
	// LastFailure describes the most recent fail-closed cause.
	LastFailure string
}

// SetRetryPolicy installs the recovery policy (zero value = no
// retries).
func (a *Adaptor) SetRetryPolicy(p RetryPolicy) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.policy = p
}

// SetClock attaches the virtual clock that backoff waits are charged
// to. Without a clock retries are immediate (still bounded).
func (a *Adaptor) SetClock(clk *sim.Engine) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.clock = clk
}

// Recovery reports a snapshot of the recovery counters.
func (a *Adaptor) Recovery() RecoveryStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rec
}

// backoff charges one wait to the virtual clock and scales the delay.
// Callers hold a.mu.
func (a *Adaptor) backoff(d *sim.Time) {
	if a.clock != nil && *d > 0 {
		a.clock.RunUntil(a.clock.Now() + *d)
	}
	m := a.policy.Multiplier
	if m < 1 {
		m = 1
	}
	*d *= sim.Time(m)
}

// readWithRetry issues a non-posted read with a fresh transaction tag
// per attempt, retrying on completion timeout and suppressing stale
// completions (tag mismatch) without accepting their data. A UR/CA
// completion is a definitive policy answer and is never retried.
// Callers hold a.mu.
func (a *Adaptor) readWithRetry(addr uint64) (*pcie.Packet, error) {
	// Non-posted ordering: a read must not pass writes still pending in
	// the submission ring.
	if err := a.flushRingLocked(); err != nil {
		return nil, err
	}
	delay := a.policy.Backoff
	for attempt := 0; ; attempt++ {
		tag := a.nextTag
		a.nextTag++
		a.io.MMIOReads++
		a.obs.mmioReads.Inc()
		cpl := a.bus.Route(pcie.NewMemRead(a.id, addr, 8, tag))
		if cpl != nil && cpl.Tag != tag {
			// A completion for a request we no longer have outstanding:
			// stale or duplicated in flight. Accepting it would hand the
			// caller another transaction's (possibly older) data, so it
			// is suppressed and the attempt treated as timed out.
			a.rec.StaleSuppressed++
			a.obs.staleSuppressed.Inc()
			a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.stale_suppressed", obsv.Hex("addr", addr))
			cpl = nil
		} else if cpl == nil {
			a.rec.Timeouts++
			a.obs.timeouts.Inc()
		}
		if cpl != nil {
			if cpl.Status != pcie.CplSuccess {
				return nil, fmt.Errorf("adaptor: read %#x rejected (%v)", addr, cpl.Status)
			}
			if attempt > 0 {
				a.rec.Recovered++
				a.obs.recovered.Inc()
			}
			return cpl, nil
		}
		if attempt >= a.policy.MaxRetries {
			a.rec.Exhausted++
			a.obs.exhausted.Inc()
			return nil, fmt.Errorf("adaptor: read %#x: no completion after %d attempts", addr, attempt+1)
		}
		a.rec.Retries++
		a.obs.retries.Inc()
		a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.retry",
			obsv.Hex("addr", addr), obsv.I64("attempt", int64(attempt+1)))
		a.backoff(&delay)
	}
}

// sealWithRetry runs Seal, retrying only on transient engine faults.
// ErrTransient fires before the stream consumes an IV counter, so the
// retry seals with the SAME counter the failed attempt would have used
// — a retransmit never reuses an IV because the failed attempt never
// allocated one. Callers hold a.mu.
func (a *Adaptor) sealWithRetry(s *secmem.Stream, pt, aad []byte) (*secmem.Sealed, error) {
	delay := a.policy.Backoff
	for attempt := 0; ; attempt++ {
		sealed, err := s.Seal(pt, aad)
		if !errors.Is(err, secmem.ErrTransient) {
			if err == nil && attempt > 0 {
				a.rec.Recovered++
				a.obs.recovered.Inc()
			}
			return sealed, err
		}
		if attempt >= a.policy.MaxRetries {
			a.rec.Exhausted++
			a.obs.exhausted.Inc()
			return nil, err
		}
		a.rec.CryptoRetries++
		a.obs.cryptoRetries.Inc()
		a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.crypto_retry", obsv.Str("op", "seal"))
		a.backoff(&delay)
	}
}

// sealBatchStreamWithRetry drives the streaming seal pipeline with the
// crypto-retry discipline. ErrTransient fires before any counter is
// reserved AND before any chunk reaches emit, so a retried attempt
// replays the identical batch with the identical counter range, and
// emit still observes every chunk exactly once, in submission order.
// Callers hold a.mu.
func (a *Adaptor) sealBatchStreamWithRetry(s *secmem.Stream, pts, aads [][]byte, emit func(i int, chunk *secmem.Sealed) error) error {
	delay := a.policy.Backoff
	for attempt := 0; ; attempt++ {
		err := s.SealBatchStream(pts, aads, a.pool, emit)
		if !errors.Is(err, secmem.ErrTransient) {
			if err == nil && attempt > 0 {
				a.rec.Recovered++
				a.obs.recovered.Inc()
			}
			return err
		}
		if attempt >= a.policy.MaxRetries {
			a.rec.Exhausted++
			a.obs.exhausted.Inc()
			return err
		}
		a.rec.CryptoRetries++
		a.obs.cryptoRetries.Inc()
		a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.crypto_retry", obsv.Str("op", "seal"))
		a.backoff(&delay)
	}
}

// openBatchIntoWithRetry is the in-place batch decrypt twin: only
// ErrTransient retries (it fires before any watermark movement); auth
// and replay failures are verdicts, and a failed batch leaves dst
// zeroed. Callers hold a.mu.
func (a *Adaptor) openBatchIntoWithRetry(s *secmem.Stream, dst []byte, sealed []secmem.Sealed, aads [][]byte) error {
	delay := a.policy.Backoff
	for attempt := 0; ; attempt++ {
		err := s.OpenBatchInto(dst, sealed, aads, a.pool)
		if !errors.Is(err, secmem.ErrTransient) {
			if err == nil && attempt > 0 {
				a.rec.Recovered++
				a.obs.recovered.Inc()
			}
			return err
		}
		if attempt >= a.policy.MaxRetries {
			a.rec.Exhausted++
			a.obs.exhausted.Inc()
			return err
		}
		a.rec.CryptoRetries++
		a.obs.cryptoRetries.Inc()
		a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.crypto_retry", obsv.Str("op", "open"))
		a.backoff(&delay)
	}
}

// openWithRetry is sealWithRetry for the decrypt side. Auth and replay
// failures are security verdicts, not faults — only ErrTransient
// retries. Callers hold a.mu.
func (a *Adaptor) openWithRetry(s *secmem.Stream, sealed *secmem.Sealed, aad []byte) ([]byte, error) {
	delay := a.policy.Backoff
	for attempt := 0; ; attempt++ {
		pt, err := s.Open(sealed, aad)
		if !errors.Is(err, secmem.ErrTransient) {
			if err == nil && attempt > 0 {
				a.rec.Recovered++
				a.obs.recovered.Inc()
			}
			return pt, err
		}
		if attempt >= a.policy.MaxRetries {
			a.rec.Exhausted++
			a.obs.exhausted.Inc()
			return nil, err
		}
		a.rec.CryptoRetries++
		a.obs.cryptoRetries.Inc()
		a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.crypto_retry", obsv.Str("op", "open"))
		a.backoff(&delay)
	}
}

// RepostTags re-uploads a region's retained tag records after suspected
// tag-packet loss. The SC re-verifies already-consumed chunks through
// its duplicate-read cache, so reposting is idempotent and never
// weakens the replay discipline.
func (a *Adaptor) RepostTags(r *Region) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(r.Recs) == 0 {
		return
	}
	a.rec.Reposts++
	a.obs.reposts.Inc()
	a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.repost_tags",
		obsv.U64("region", uint64(r.Desc.ID)), obsv.I64("records", int64(len(r.Recs))))
	if a.postTags(r.Recs) == nil {
		_ = a.flushRingLocked()
	}
}

// ResyncMMIO re-aligns the A3 guarded-write sequence number with the
// SC's expectation (exposed read-only at RegMMIOSeq). A guarded write
// lost on the link desynchronises the two counters permanently —
// every subsequent write would fail verification — so recovery reads
// the authoritative value back.
func (a *Adaptor) ResyncMMIO() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.config == nil {
		return fmt.Errorf("adaptor: session not established")
	}
	cpl, err := a.readWithRetry(a.scBar + core.RegMMIOSeq)
	if err != nil {
		return err
	}
	seq := uint32(binary.LittleEndian.Uint64(cpl.Payload))
	if seq != a.mmioSeq {
		a.rec.Resyncs++
		a.obs.resyncs.Inc()
		a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.resync_mmio", obsv.U64("seq", uint64(seq)))
		a.mmioSeq = seq
	}
	return nil
}

// MMIOSeq reports the local A3 sequence number (test observability).
func (a *Adaptor) MMIOSeq() uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mmioSeq
}

// FailClosed tears the session down in response to unrecoverable
// faults: keys zeroized on both ends, device cleaned through the
// environment guard (via the SC teardown path). Confidentiality is
// preserved by construction — nothing that was protected becomes less
// protected because the session died.
func (a *Adaptor) FailClosed(reason string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rec.FailClosed++
	a.rec.LastFailure = reason
	a.obs.failClosed.Inc()
	a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.fail_closed", obsv.Str("reason", reason))
	a.hub.Eventf(obsv.EvFailClosed, "", "reason=%s", reason)
	a.teardownLocked()
}

// InstallCryptoFault threads a transient-fault hook into every stream
// replica the Adaptor seals/opens with (fault-injection wiring).
func (a *Adaptor) InstallCryptoFault(fn func(op string) error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range []*secmem.Stream{a.h2d, a.d2h, a.config} {
		if s != nil {
			s.SetFaultHook(fn)
		}
	}
}

// AuditIVs installs an (epoch, counter) observer on the Adaptor's
// seal-side streams — the oracle behind the "no IV reuse under any
// fault" matrix invariant.
func (a *Adaptor) AuditIVs(stream string, fn func(epoch, counter uint32)) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, err := a.streamLocked(stream)
	if err != nil {
		return err
	}
	s.SetIVAudit(fn)
	return nil
}

// ForceStreamCounter positions a stream's send counter (exhaustion and
// wraparound testing).
func (a *Adaptor) ForceStreamCounter(stream string, c uint32) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, err := a.streamLocked(stream)
	if err != nil {
		return err
	}
	s.ForceCounter(c)
	return nil
}

// streamLocked resolves a stream replica by name. Callers hold a.mu.
func (a *Adaptor) streamLocked(stream string) (*secmem.Stream, error) {
	var s *secmem.Stream
	switch stream {
	case core.StreamH2D:
		s = a.h2d
	case core.StreamD2H:
		s = a.d2h
	case core.StreamConfig:
		s = a.config
	}
	if s == nil {
		return nil, fmt.Errorf("adaptor: no stream replica %q", stream)
	}
	return s, nil
}
