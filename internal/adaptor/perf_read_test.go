package adaptor

import (
	"runtime"
	"testing"

	"ccai/internal/core"
)

// readAllocCeiling is the hard allocs-per-collect budget for the 64 KiB
// D2H read path (ISSUE 9 satellite): CollectD2H assembles the sealed
// batch from per-stream scratch, decrypts straight into the result
// buffer, and must allocate essentially nothing beyond that
// caller-escaping buffer.
const readAllocCeiling = 24

// TestReadAllocBudget pins the steady-state allocation count of the
// D2H read path: per 64 KiB CollectD2H after warm-up, measured around
// the collect call alone (region setup and device writes excluded).
func TestReadAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short harnesses")
	}
	r, dev := newRig(t, Optimized())
	const size = 64 << 10
	result := make([]byte, size)
	for i := range result {
		result[i] = byte(i * 31)
	}

	cycle := func() uint64 {
		region, err := r.adaptor.PrepareD2H("res", size)
		if err != nil {
			t.Fatal(err)
		}
		dev.dmaWrite(region.Buf.Base(), result)
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		got, err := r.adaptor.CollectD2H(region, size)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != result[0] || got[size-1] != result[size-1] {
			t.Fatal("collected result corrupt")
		}
		r.adaptor.ReleaseRegion(region)
		return ms1.Mallocs - ms0.Mallocs
	}

	cycle() // warm-up: scratch slices sized, pools primed
	const iters = 8
	var total uint64
	for i := 0; i < iters; i++ {
		total += cycle()
	}
	perCollect := total / iters
	t.Logf("D2H read path: %d allocs per 64 KiB CollectD2H (ceiling %d, %d chunks)",
		perCollect, readAllocCeiling, size/core.ChunkSize)
	if perCollect > readAllocCeiling {
		t.Fatalf("CollectD2H allocates %d/op for 64 KiB; budget is %d", perCollect, readAllocCeiling)
	}
}
