// Package adaptor implements ccAI's TVM-side software component (§3,
// §7.1): a kernel module that gives the unmodified native xPU driver a
// confidential path to the device. It stages sensitive payloads through
// encrypted bounce buffers (de/encrypt_data), uploads Packet Filter
// policies and transfer descriptors to the PCIe-SC through sealed
// configuration windows (pkt_filter_manage), posts authentication-tag
// records, and wraps control MMIO with the A3 integrity protocol — all
// without touching the driver or the application.
package adaptor

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"ccai/internal/arena"
	"ccai/internal/core"
	"ccai/internal/mem"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
	"ccai/internal/sim"
)

// Options select the §5 optimizations. The defaults (all on) are the
// ccAI configuration; Figure 11's "No Opt" ablation clears them.
type Options struct {
	// BatchTags packs many tag records into each upload packet instead
	// of one I/O write per record.
	BatchTags bool
	// BatchedMetadata reads DMA progress from the TVM-resident metadata
	// buffer instead of polling SC registers with I/O reads.
	BatchedMetadata bool
	// HWCrypto uses AES-NI-class hardware instructions for
	// de/encryption (timing model; the functional bytes are identical).
	HWCrypto bool
	// ParallelCrypto spreads crypto across extra CPU threads: chunk
	// seal/open within one region fans out over a bounded worker pool
	// (the paper's "allocate additional CPU threads" optimization).
	ParallelCrypto bool
	// CryptoWorkers bounds the parallel-crypto pool. Zero means auto:
	// min(GOMAXPROCS, 8) when ParallelCrypto is set, otherwise 1
	// (serial).
	CryptoWorkers int
	// SubmitRing batches control-path operations (descriptor installs,
	// tag uploads, releases, notifies, A3 guarded writes) into a shared
	// submission ring published with one doorbell MMIO per burst
	// instead of one MMIO write per operation.
	SubmitRing bool
	// CompletionReap serves device command-head polls from the
	// submission ring's completion word — DMA-written by the SC after
	// every forwarded doorbell — instead of one guarded MMIO read per
	// task. Requires SubmitRing; without it Head() falls back to MMIO.
	CompletionReap bool
}

// Optimized is the full ccAI optimization set.
func Optimized() Options {
	return Options{BatchTags: true, BatchedMetadata: true, HWCrypto: true, ParallelCrypto: true, SubmitRing: true, CompletionReap: true}
}

// NoOpt is the Figure 11 ablation configuration.
func NoOpt() Options { return Options{} }

// IOStats counts the Adaptor's MMIO interactions with the PCIe-SC —
// the quantity §5's optimizations exist to reduce.
type IOStats struct {
	MMIOWrites uint64
	MMIOReads  uint64
}

// Region is one staged transfer: the bounce buffer, its descriptor as
// registered with the SC, and (for D2H) the tag table.
type Region struct {
	Desc     core.Descriptor
	Buf      *mem.Buffer
	TagBuf   *mem.Buffer
	PlainLen int64
	// Recs retains the posted tag records so recovery can repost them
	// after tag-packet loss (RepostTags).
	Recs []core.TagRecord
}

// Adaptor is the TVM-side component instance. It owns the TVM replicas
// of the protected streams (negotiated during trust establishment) and
// the staging memory in the shared region.
type Adaptor struct {
	// mu serializes all session state: stream replicas, sequence
	// numbers, recovery counters. Retry paths run under it, so
	// concurrent staging/collect calls cannot interleave half-recovered
	// state.
	mu sync.Mutex

	id    pcie.ID
	bus   *pcie.Bus
	space *mem.Space
	keys  *secmem.KeyStore

	scBar   uint64
	xpuBar  uint64
	region  string // staging region name within the space
	opts    Options
	mmioSeq uint32
	nextID  uint32
	nextTag uint8 // transaction tag for non-posted requests; fresh per attempt

	h2d    *secmem.Stream // seal side
	d2h    *secmem.Stream // open side
	config *secmem.Stream // seal side

	metaBuf *mem.Buffer

	// ringBuf is the submission-ring backing memory (allocated once,
	// survives teardown); ring is the live producer state, nil when the
	// ring optimization is off or the session is torn down.
	ringBuf *mem.Buffer
	ring    *submitRing

	// lastCplHead is the highest device command head accepted by
	// CompletionHead this session — the monotonicity floor that rejects
	// regressed or replayed completion-word writebacks.
	lastCplHead uint64

	io     IOStats
	policy RetryPolicy
	clock  *sim.Engine
	rec    RecoveryStats
	pool   *secmem.Pool // per-chunk crypto fan-out

	// Per-call scratch reused across staging/collect batches (guarded by
	// mu): the slice-header tables for seal/open fan-out. Plaintext
	// aliases are cleared before the call returns so the Adaptor never
	// retains references into a caller's buffer.
	scratchPts    [][]byte
	scratchAADs   [][]byte
	scratchSealed []secmem.Sealed

	// hub propagates observability to streams activated in HWInit; obs
	// holds the cached handles (zero value = uninstrumented).
	hub *obsv.Hub
	obs adaptorObs
}

// SharedRegion is the mem.Space region name the Adaptor stages bounce
// buffers in; the platform must create it and IOMMU-map it for the SC.
const SharedRegion = "shared"

// New constructs an Adaptor for a TVM with requester ID id, talking to
// a PCIe-SC whose control BAR is at scBar and whose guarded xPU window
// starts at xpuBar. Staging memory comes from the default SharedRegion.
func New(id pcie.ID, bus *pcie.Bus, space *mem.Space, keys *secmem.KeyStore, scBar, xpuBar uint64, opts Options) *Adaptor {
	return NewScoped(id, bus, space, keys, scBar, xpuBar, SharedRegion, opts)
}

// NewScoped is New with an explicit staging-region name; multi-tenant
// platforms give each tenant its own shared window.
func NewScoped(id pcie.ID, bus *pcie.Bus, space *mem.Space, keys *secmem.KeyStore, scBar, xpuBar uint64, region string, opts Options) *Adaptor {
	w := opts.CryptoWorkers
	if w <= 0 {
		w = 1
		if opts.ParallelCrypto {
			if w = runtime.GOMAXPROCS(0); w > 8 {
				w = 8
			}
		}
	}
	return &Adaptor{
		id: id, bus: bus, space: space, keys: keys,
		scBar: scBar, xpuBar: xpuBar, region: region, opts: opts, nextID: 1,
		nextTag: 1, policy: DefaultRetryPolicy(), pool: secmem.NewPool(w),
	}
}

// CryptoWorkers reports the resolved parallel-crypto pool width.
func (a *Adaptor) CryptoWorkers() int { return a.pool.Workers() }

// Options reports the active optimization set.
func (a *Adaptor) Options() Options { return a.opts }

// IO reports cumulative MMIO interaction counts.
func (a *Adaptor) IO() IOStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.io
}

// HWInit activates the Adaptor's stream replicas from negotiated key
// material and programs the metadata batch buffer (§7.1 hw_init).
func (a *Adaptor) HWInit() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var err error
	if a.h2d, err = a.keys.Stream(core.StreamH2D); err != nil {
		return fmt.Errorf("adaptor: %w", err)
	}
	if a.d2h, err = a.keys.Stream(core.StreamD2H); err != nil {
		return fmt.Errorf("adaptor: %w", err)
	}
	if a.config, err = a.keys.Stream(core.StreamConfig); err != nil {
		return fmt.Errorf("adaptor: %w", err)
	}
	track := obsv.TrackCrypto + "/adaptor"
	a.h2d.SetObserver(a.hub, track, core.StreamH2D)
	a.d2h.SetObserver(a.hub, track, core.StreamD2H)
	a.config.SetObserver(a.hub, track, core.StreamConfig)
	if a.opts.BatchedMetadata {
		buf, err := a.space.Alloc(a.region, "dma-metadata", mem.PageSize)
		if err != nil {
			return fmt.Errorf("adaptor: metadata buffer: %w", err)
		}
		a.metaBuf = buf
		a.mmioWrite64(core.RegMetaBase, buf.Base())
		a.mmioWrite64(core.RegMetaSize, uint64(buf.Size()))
	}
	if a.opts.SubmitRing {
		if a.ringBuf == nil {
			buf, err := a.space.Alloc(a.region, "dma-submitring", int64(core.RingHdrSize+ringSlots*core.RingSlotSize))
			if err != nil {
				return fmt.Errorf("adaptor: submission ring: %w", err)
			}
			a.ringBuf = buf
		} else {
			// Re-established session: scrub the head/status words the SC
			// wrote last session before re-arming.
			hdr := a.ringBuf.Bytes()[:core.RingHdrSize]
			for i := range hdr {
				hdr[i] = 0
			}
		}
		a.ring = &submitRing{buf: a.ringBuf, slots: ringSlots}
		a.lastCplHead = 0
		a.mmioWrite64(core.RegRingBase, a.ringBuf.Base())
		a.mmioWrite64(core.RegRingSize, ringSlots)
	}
	return nil
}

// --- raw SC MMIO -------------------------------------------------------------

func (a *Adaptor) mmioWrite(off uint64, payload []byte) {
	a.io.MMIOWrites++
	a.obs.mmioWrites.Inc()
	a.bus.Route(pcie.NewMemWrite(a.id, a.scBar+off, payload))
}

func (a *Adaptor) mmioWrite64(off uint64, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	a.mmioWrite(off, buf[:])
}

// SCStatus reads the controller's status register (an I/O read with
// the full retry discipline).
func (a *Adaptor) SCStatus() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	cpl, err := a.readWithRetry(a.scBar + core.RegSCStatus)
	if err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(cpl.Payload)
}

// --- pkt_filter_manage --------------------------------------------------------

// InstallRule seals a Packet Filter policy under the config stream and
// uploads it through the rule window (§4.1's encrypted configuration).
func (a *Adaptor) InstallRule(r core.Rule) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.config == nil {
		return fmt.Errorf("adaptor: session not established (HWInit) or already torn down")
	}
	sealed, err := a.sealWithRetry(a.config, r.Marshal(), nil)
	if err != nil {
		return fmt.Errorf("adaptor: seal rule: %w", err)
	}
	if err := a.sendBlob(core.RingOpRule, core.RegRuleWindow, core.RegRuleDoorbell, core.MarshalBlob(sealed)); err != nil {
		return err
	}
	return a.flushRingLocked()
}

func (a *Adaptor) registerDescriptor(d core.Descriptor) error {
	sealed, err := a.sealWithRetry(a.config, d.Marshal(), nil)
	if err != nil {
		return fmt.Errorf("adaptor: seal descriptor: %w", err)
	}
	// No flush here: staging callers batch the descriptor with the tag
	// and notify entries that follow it and publish once.
	return a.sendBlob(core.RingOpDesc, core.RegDescWindow, core.RegDescDoorbell, core.MarshalBlob(sealed))
}

// ReleaseRegion drops a transfer region on the SC and frees its staging
// memory.
func (a *Adaptor) ReleaseRegion(r *Region) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sendRelease(r.Desc.ID) == nil {
		// A desync inside the push already tore the session down (the SC
		// wipes its regions); only a delivered release needs publishing.
		_ = a.flushRingLocked()
	}
	if r.Buf != nil {
		a.space.Free(r.Buf)
	}
	if r.TagBuf != nil {
		a.space.Free(r.TagBuf)
	}
}

// --- tag uploads ---------------------------------------------------------------

// postTags uploads tag records; batched mode packs as many as fit one
// TLP payload, non-optimized mode issues one I/O write per record.
func (a *Adaptor) postTags(recs []core.TagRecord) error {
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "post_tags",
		obsv.I64("records", int64(len(recs))))
	defer sp.End()
	if !a.opts.BatchTags {
		var one [core.TagRecordSize]byte
		for _, r := range recs {
			if err := a.sendTags(r.AppendMarshal(one[:0])); err != nil {
				return err
			}
		}
		return nil
	}
	// One reused arena buffer per upload burst: both sendTags paths copy
	// the payload (into the ring slot or the MemWrite), so the buffer is
	// free to refill immediately.
	perPacket := pcie.MaxPayload / core.TagRecordSize
	payload := arena.Get(perPacket * core.TagRecordSize)[:0]
	for len(recs) > 0 {
		n := perPacket
		if len(recs) < n {
			n = len(recs)
		}
		payload = payload[:0]
		for _, r := range recs[:n] {
			payload = r.AppendMarshal(payload)
		}
		if err := a.sendTags(payload); err != nil {
			arena.Put(payload)
			return err
		}
		recs = recs[n:]
	}
	arena.Put(payload) // wire-format tags: public bytes
	return nil
}

// postTag uploads a single record directly (never via the ring) — the
// guarded-MMIO path, where the record must reach the SC before the A3
// write that immediately follows it on the bus.
func (a *Adaptor) postTag(r core.TagRecord) {
	var one [core.TagRecordSize]byte
	a.mmioWrite(core.RegTagWindow, r.AppendMarshal(one[:0]))
}

// --- encrypt_data / staging ------------------------------------------------------

// StageH2D encrypts data into a fresh bounce region chunk-by-chunk
// (consuming consecutive IV counters), posts the chunk tags, registers
// the region with the SC, and sends the single region-ready notify.
// The returned region's bounce address is what the native driver's DMA
// descriptors point at.
func (a *Adaptor) StageH2D(name string, data []byte) (*Region, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.h2d == nil {
		return nil, fmt.Errorf("adaptor: session not established (HWInit) or already torn down")
	}
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "stage_h2d",
		obsv.Str("region", name), obsv.I64("bytes", int64(len(data))))
	defer sp.End()
	if _, err := a.maybeRekeyLocked(); err != nil {
		return nil, err
	}
	buf, err := a.space.Alloc(a.region, name, int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("adaptor: bounce alloc: %w", err)
	}
	first := a.h2d.SendCounter() + 1
	desc := core.Descriptor{
		ID: a.nextID, Dir: core.DirH2D, Class: core.ActionWriteReadProtect,
		Base: buf.Base(), Len: uint64(len(data)),
		ChunkSize: core.ChunkSize, FirstCounter: first,
	}
	a.nextID++

	// Register the descriptor up front so the tag packets the pipeline
	// flushes below land against a known region; a failed pipeline
	// releases it again.
	if err := a.registerDescriptor(desc); err != nil {
		a.space.Free(buf)
		return nil, err
	}

	// Chunk the payload. Counters are reserved contiguously under the
	// stream lock (matching desc.FirstCounter), the AES-GCM work fans
	// out over the crypto pool (§5 parallel-crypto optimization), and
	// AADs share one backing array instead of one alloc per chunk.
	nChunks := (len(data) + core.ChunkSize - 1) / core.ChunkSize
	if cap(a.scratchPts) < nChunks {
		a.scratchPts = make([][]byte, nChunks)
	}
	if cap(a.scratchAADs) < nChunks {
		a.scratchAADs = make([][]byte, nChunks)
	}
	pts := a.scratchPts[:nChunks]
	aads := a.scratchAADs[:nChunks]
	aadAll := arena.Get(8 * nChunks)
	for i := 0; i < nChunks; i++ {
		off := i * core.ChunkSize
		end := off + core.ChunkSize
		if end > len(data) {
			end = len(data)
		}
		pts[i] = data[off:end]
		ab := aadAll[i*8 : i*8+8 : i*8+8]
		desc.PutAAD((*[8]byte)(ab), uint32(i))
		aads[i] = ab
	}

	// Streaming pipeline (DESIGN.md §10): the crypto pool delivers
	// sealed chunks in submission order while this emit stage copies
	// each into the bounce buffer and flushes full tag packets — DMA
	// staging for chunk i overlaps the sealing of chunks > i. The
	// chunk's arena-backed ciphertext is only valid inside emit, so it
	// is copied out before returning.
	recs := make([]core.TagRecord, 0, nChunks)
	out := buf.Bytes()
	perPacket := pcie.MaxPayload / core.TagRecordSize
	tagPayload := arena.Get(perPacket * core.TagRecordSize)[:0]
	emit := func(i int, chunk *secmem.Sealed) error {
		copy(out[i*core.ChunkSize:], chunk.Ciphertext)
		recs = append(recs, core.TagRecord{
			Stream: core.StreamH2D, Chunk: chunk.Counter, Epoch: chunk.Epoch, Tag: chunk.Tag,
		})
		r := &recs[len(recs)-1]
		if a.opts.BatchTags {
			tagPayload = r.AppendMarshal(tagPayload)
			if len(tagPayload) >= perPacket*core.TagRecordSize {
				if err := a.sendTags(tagPayload); err != nil {
					return err
				}
				tagPayload = tagPayload[:0]
			}
		} else {
			var one [core.TagRecordSize]byte
			return a.sendTags(r.AppendMarshal(one[:0]))
		}
		return nil
	}
	err = a.sealBatchStreamWithRetry(a.h2d, pts, aads, emit)
	if err == nil && len(tagPayload) > 0 {
		err = a.sendTags(tagPayload)
	}
	arena.Put(tagPayload) // wire-format tags: public bytes
	arena.PutZero(aadAll) // AAD scratch follows the secret-adjacent discipline
	for i := range pts {  // drop plaintext aliases before returning
		pts[i], aads[i] = nil, nil
	}
	if err == nil {
		// One region-ready notify, then one doorbell publishes the whole
		// burst: descriptor, tag packets, notify (the batched I/O of §5).
		err = a.sendNotify(desc.ID)
	}
	if err == nil {
		err = a.flushRingLocked()
	}
	if err != nil {
		if a.sendRelease(desc.ID) == nil {
			_ = a.flushRingLocked()
		}
		a.space.Free(buf)
		return nil, fmt.Errorf("adaptor: encrypt_data: %w", err)
	}
	return &Region{Desc: desc, Buf: buf, PlainLen: int64(len(data)), Recs: recs}, nil
}

// StageVerified stages plaintext the device may read under action A3
// (e.g. the command ring): the data sits in the clear but each chunk
// carries a one-shot MAC record keyed to its region position.
func (a *Adaptor) StageVerified(name string, size int64, chunkSize uint32) (*Region, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.config == nil {
		return nil, fmt.Errorf("adaptor: session not established (HWInit) or already torn down")
	}
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "stage_verified",
		obsv.Str("region", name), obsv.I64("bytes", size))
	defer sp.End()
	buf, err := a.space.Alloc(a.region, name, size)
	if err != nil {
		return nil, fmt.Errorf("adaptor: verified alloc: %w", err)
	}
	desc := core.Descriptor{
		ID: a.nextID, Dir: core.DirH2D, Class: core.ActionWriteProtect,
		Base: buf.Base(), Len: uint64(size), ChunkSize: chunkSize,
	}
	a.nextID++
	if err := a.registerDescriptor(desc); err != nil {
		a.space.Free(buf)
		return nil, err
	}
	if err := a.flushRingLocked(); err != nil {
		a.space.Free(buf)
		return nil, err
	}
	return &Region{Desc: desc, Buf: buf, PlainLen: size}, nil
}

// SyncVerified recomputes and posts MAC records for the given chunk
// indices of an A3 region; the driver (via the platform hook) calls
// this right before ringing a doorbell that will make the device read
// those chunks.
func (a *Adaptor) SyncVerified(r *Region, chunks []uint32) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "sync_verified",
		obsv.U64("region", uint64(r.Desc.ID)), obsv.I64("chunks", int64(len(chunks))))
	defer sp.End()
	recs := make([]core.TagRecord, 0, len(chunks))
	var aad [8]byte
	for _, c := range chunks {
		off := int64(c) * int64(r.Desc.ChunkSize)
		data := r.Buf.Slice(off, int64(r.Desc.ChunkSize))
		r.Desc.PutAAD(&aad, c)
		mac, err := a.keys.MACSum(core.StreamMMIO, aad[:], data)
		if err != nil {
			return fmt.Errorf("adaptor: %w", err)
		}
		rec := core.TagRecord{Stream: core.StreamMMIO, Chunk: r.Desc.ID<<16 | c}
		copy(rec.Tag[:], mac[:secmem.TagSize])
		recs = append(recs, rec)
	}
	if err := a.postTags(recs); err != nil {
		return err
	}
	return a.flushRingLocked()
}

// PrepareD2H allocates a result bounce region plus its tag table and
// registers both with the SC.
func (a *Adaptor) PrepareD2H(name string, size int64) (*Region, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.d2h == nil {
		return nil, fmt.Errorf("adaptor: session not established (HWInit) or already torn down")
	}
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "prepare_d2h",
		obsv.Str("region", name), obsv.I64("bytes", size))
	defer sp.End()
	buf, err := a.space.Alloc(a.region, name, size)
	if err != nil {
		return nil, fmt.Errorf("adaptor: d2h alloc: %w", err)
	}
	chunks := (size + core.ChunkSize - 1) / core.ChunkSize
	tagBuf, err := a.space.Alloc(a.region, name+"-tags", chunks*core.TagRecordSize)
	if err != nil {
		a.space.Free(buf)
		return nil, fmt.Errorf("adaptor: tag table alloc: %w", err)
	}
	desc := core.Descriptor{
		ID: a.nextID, Dir: core.DirD2H, Class: core.ActionWriteReadProtect,
		Base: buf.Base(), Len: uint64(size), TagBase: tagBuf.Base(),
		ChunkSize: core.ChunkSize,
	}
	a.nextID++
	if err := a.registerDescriptor(desc); err != nil {
		a.space.Free(buf)
		a.space.Free(tagBuf)
		return nil, err
	}
	if err := a.flushRingLocked(); err != nil {
		a.space.Free(buf)
		a.space.Free(tagBuf)
		return nil, err
	}
	return &Region{Desc: desc, Buf: buf, TagBuf: tagBuf, PlainLen: size}, nil
}

// D2HProgress reports how many chunks the SC has completed for a D2H
// region — from the TVM metadata buffer when batched (a memory read),
// otherwise by polling the SC over MMIO (the §5 anti-pattern, counted
// as an I/O read).
func (a *Adaptor) D2HProgress(r *Region, sc *core.Controller) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Ordering safety: anything still pending in the ring (tag records,
	// a notify) must reach the SC before progress is interpreted.
	if err := a.flushRingLocked(); err != nil {
		return 0
	}
	if a.opts.BatchedMetadata && a.metaBuf != nil {
		v, err := a.space.ReadUint64(a.metaBuf.Base() + uint64(r.Desc.ID)*8)
		if err != nil {
			return 0
		}
		return v
	}
	a.io.MMIOReads++
	a.obs.mmioReads.Inc()
	return sc.D2HProgress(r.Desc.ID)
}

// CollectD2H authenticates and decrypts a completed result region
// (decrypt_data): ciphertext from the bounce buffer, tags from the tag
// table, counters enforced in order by the d2h stream replica.
func (a *Adaptor) CollectD2H(r *Region, n int64) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.d2h == nil {
		return nil, fmt.Errorf("adaptor: session not established (HWInit) or already torn down")
	}
	if n > r.PlainLen {
		return nil, fmt.Errorf("adaptor: collect %d bytes from %d-byte region", n, r.PlainLen)
	}
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "collect_d2h",
		obsv.U64("region", uint64(r.Desc.ID)), obsv.I64("bytes", n))
	defer sp.End()
	if err := a.flushRingLocked(); err != nil {
		return nil, err
	}
	// Assemble the batch from the bounce buffer + tag table (records by
	// value, AADs sharing one backing array), then authenticate and
	// decrypt straight into the result buffer on the crypto pool; the
	// stream replica enforces the strictly-increasing counter
	// discipline across the whole batch, and a failed batch comes back
	// zeroed rather than partially decrypted.
	nChunks := int((n + core.ChunkSize - 1) / core.ChunkSize)
	if cap(a.scratchSealed) < nChunks {
		a.scratchSealed = make([]secmem.Sealed, nChunks)
	}
	if cap(a.scratchAADs) < nChunks {
		a.scratchAADs = make([][]byte, nChunks)
	}
	sealedChunks := a.scratchSealed[:nChunks]
	aads := a.scratchAADs[:nChunks]
	aadAll := arena.Get(8 * nChunks)
	for i := 0; i < nChunks; i++ {
		off := int64(i) * core.ChunkSize
		end := off + core.ChunkSize
		if end > n {
			end = n
		}
		recBytes := r.TagBuf.Slice(int64(i)*core.TagRecordSize, core.TagRecordSize)
		sealedChunks[i] = secmem.Sealed{
			Counter:    binary.LittleEndian.Uint32(recBytes[4:]),
			Epoch:      binary.LittleEndian.Uint32(recBytes[8:]),
			Ciphertext: r.Buf.Slice(off, end-off),
		}
		copy(sealedChunks[i].Tag[:], recBytes[12:])
		ab := aadAll[i*8 : i*8+8 : i*8+8]
		r.Desc.PutAAD((*[8]byte)(ab), uint32(i))
		aads[i] = ab
	}
	out := make([]byte, n) // escapes to the caller: a real allocation
	err := a.openBatchIntoWithRetry(a.d2h, out, sealedChunks, aads)
	arena.PutZero(aadAll)
	for i := range sealedChunks { // drop bounce-buffer aliases
		sealedChunks[i].Ciphertext, aads[i] = nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("adaptor: decrypt_data: %w", err)
	}
	return out, nil
}

// --- control MMIO -----------------------------------------------------------------

// GuardedWrite performs an A3-protected MMIO write to a device
// register: post the MAC record for the upcoming sequence number, then
// issue the write through the SC's shadow window.
func (a *Adaptor) GuardedWrite(reg uint64, value uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "guarded_write", obsv.Hex("reg", reg))
	defer sp.End()
	// A3 stays on the direct MMIO path: each write is already
	// individually MACed and sequence-bound, and batching it would hide
	// the very TLPs the per-write integrity protocol protects. Pending
	// ring entries (tag syncs, notifies) are published first so the
	// guarded write cannot pass them.
	if err := a.flushRingLocked(); err != nil {
		return err
	}
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], value)
	var hdr [16]byte
	core.PutMACHeader(&hdr, a.mmioSeq, a.xpuBar+reg, uint32(len(payload)))
	mac, err := a.keys.MACSum(core.StreamMMIO, hdr[:], payload[:])
	if err != nil {
		return fmt.Errorf("adaptor: %w", err)
	}
	rec := core.TagRecord{Stream: core.StreamMMIO, Chunk: a.mmioSeq}
	copy(rec.Tag[:], mac[:secmem.TagSize])
	a.postTag(rec)
	a.mmioSeq++

	a.io.MMIOWrites++
	a.bus.Route(pcie.NewMemWrite(a.id, a.xpuBar+reg, payload[:]))
	return nil
}

// CompletionHead reads the device's command-head register, serving it
// from the submission ring's completion word (a host-memory read) when
// batched reaping is active. The word is accepted only when it carries
// the RingCplValid tag and is monotonic against the session floor;
// anything else — never posted, scrubbed, regressed, or corrupted —
// falls back to the guarded MMIO read, which is authoritative. A stale
// word is safe by construction: the SC only writes heads it just read
// from the device, so a lost writeback makes the producer see an old
// (smaller) head and re-kick, never a fabricated completion.
func (a *Adaptor) CompletionHead(reg uint64) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "completion_head", obsv.Hex("reg", reg))
	defer sp.End()
	if a.opts.CompletionReap && a.ring != nil {
		// Ordering: anything pending in the ring (tag syncs, notifies)
		// must be published before the completion word is interpreted —
		// the SC reaps on the far side of the doorbell.
		if err := a.flushRingLocked(); err != nil {
			return 0, err
		}
		if w, err := a.space.ReadUint64(a.ring.buf.Base() + core.RingHdrCplOff); err == nil && w&core.RingCplValid != 0 {
			head := w &^ uint64(core.RingCplValid)
			if head >= a.lastCplHead {
				a.lastCplHead = head
				return head, nil
			}
			// Regressed completion word: a delayed or tampered writeback.
			// Fall through to the MMIO read rather than hand the driver a
			// head that moved backwards.
		}
	}
	cpl, err := a.readWithRetry(a.xpuBar + reg)
	if err != nil {
		return 0, err
	}
	head := binary.LittleEndian.Uint64(cpl.Payload)
	if head >= a.lastCplHead {
		a.lastCplHead = head
	}
	return head, nil
}

// DeviceRead performs a pass-through (A4) read of a device register
// through the SC window, with bounded retry on completion timeout and
// stale-completion suppression.
func (a *Adaptor) DeviceRead(reg uint64) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sp := a.obs.tracer.Begin(obsv.TrackAdaptor, "device_read", obsv.Hex("reg", reg))
	defer sp.End()
	cpl, err := a.readWithRetry(a.xpuBar + reg)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(cpl.Payload), nil
}

// --- key rotation ------------------------------------------------------------

// RekeyThreshold is the remaining-counter level that triggers proactive
// rotation: rotating well before the 2³²-chunk exhaustion point keeps
// GCM IVs unique even with pipelined traffic in flight (§6).
const RekeyThreshold = 1 << 16

// RekeyStream rotates one protected stream: fresh material is sealed
// under the config stream, uploaded through the rekey window, and
// installed on both ends with a bumped epoch.
func (a *Adaptor) RekeyStream(stream string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rekeyStreamLocked(stream)
}

func (a *Adaptor) rekeyStreamLocked(stream string) error {
	if a.config == nil {
		return fmt.Errorf("adaptor: session not established")
	}
	key, nonce := secmem.FreshKey(), secmem.FreshNonce()
	cmd := core.RekeyCommand{Stream: stream, Key: key, Nonce: nonce}
	sealed, err := a.sealWithRetry(a.config, cmd.Marshal(), nil)
	if err != nil {
		return fmt.Errorf("adaptor: seal rekey: %w", err)
	}
	if err := a.sendBlob(core.RingOpRekey, core.RegRekeyWindow, core.RegRekeyDoorbell, core.MarshalBlob(sealed)); err != nil {
		return err
	}
	// Publish before the TVM-side mirror rotates: the SC must never lag
	// an epoch behind its peer.
	if err := a.flushRingLocked(); err != nil {
		return err
	}
	a.obs.rekeys.Inc()
	a.obs.tracer.Instant(obsv.TrackAdaptor, "rekey", obsv.Str("stream", stream))
	a.hub.Eventf(obsv.EvRekey, "", "stream=%s", stream)

	// Mirror on the TVM side.
	if err := a.keys.Install(stream, key, nonce); err != nil {
		return err
	}
	switch stream {
	case core.StreamH2D:
		return a.h2d.Rekey(key, nonce)
	case core.StreamD2H:
		return a.d2h.Rekey(key, nonce)
	case core.StreamMMIO:
		return nil // raw MAC key; Install above is the whole rotation
	default:
		return fmt.Errorf("adaptor: stream %q not rotatable", stream)
	}
}

// H2DFence pins the H2D stream's current key epoch. Long-lived sealed
// state (a session's device-resident KV-cache) holds the fence across
// decode steps; a tripped fence marks a mid-session rekey — the
// resident ciphertext is still the fenced epoch's and stays valid in
// device memory, but nothing may be re-sealed under it.
func (a *Adaptor) H2DFence() secmem.Fence {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.h2d.Fence()
}

// StreamEpoch reports the named data stream's current key epoch.
func (a *Adaptor) StreamEpoch(stream string) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch stream {
	case core.StreamH2D:
		return a.h2d.Epoch()
	case core.StreamD2H:
		return a.d2h.Epoch()
	}
	return 0
}

// MaybeRekey rotates any data stream approaching IV exhaustion and
// reports which streams were rotated. Call it between transfers; the
// staging helpers call it implicitly.
func (a *Adaptor) MaybeRekey() ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maybeRekeyLocked()
}

func (a *Adaptor) maybeRekeyLocked() ([]string, error) {
	var rotated []string
	if a.h2d != nil && a.h2d.Remaining() < RekeyThreshold {
		if err := a.rekeyStreamLocked(core.StreamH2D); err != nil {
			return rotated, err
		}
		rotated = append(rotated, core.StreamH2D)
	}
	if a.d2h != nil && a.d2h.Remaining() < RekeyThreshold {
		if err := a.rekeyStreamLocked(core.StreamD2H); err != nil {
			return rotated, err
		}
		rotated = append(rotated, core.StreamD2H)
	}
	return rotated, nil
}

// Teardown destroys the session: the SC wipes keys/regions and cleans
// the device; the TVM side zeroizes its own replicas.
func (a *Adaptor) Teardown() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.teardownLocked()
}

func (a *Adaptor) teardownLocked() {
	a.obs.tracer.Instant(obsv.TrackAdaptor, "teardown")
	// Pending ring entries die with the session; teardown itself stays a
	// direct MMIO write so it cannot depend on ring health.
	a.ring = nil
	a.mmioWrite64(core.RegTeardown, 1)
	a.keys.DestroyAll()
	a.h2d, a.d2h, a.config = nil, nil, nil
	a.mmioSeq = 0
}
