package adaptor

// Recovery-path tests: IV-counter discipline as a machine-checked
// property (any interleaving of staging, transient crypto faults,
// rekeys and duplicate device reads keeps IVs strictly monotonic per
// epoch), and the MaybeRekey boundary at counter max−1 / max /
// wraparound, including concurrent in-flight seals.

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"ccai/internal/core"
	"ccai/internal/secmem"
)

// ivLedger enforces the seal-side IV contract as the audit hook sees
// it: within an epoch counters strictly increase, epochs never go
// backwards, and no (epoch, counter) pair ever repeats.
type ivLedger struct {
	mu        sync.Mutex
	last      map[uint32]uint32 // epoch -> highest counter seen
	maxEpoch  uint32
	violation string
}

func (l *ivLedger) hook(epoch, counter uint32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last == nil {
		l.last = make(map[uint32]uint32)
	}
	if epoch < l.maxEpoch {
		l.violation = "epoch went backwards"
		return
	}
	l.maxEpoch = epoch
	if prev, ok := l.last[epoch]; ok && counter <= prev {
		l.violation = "counter not strictly monotonic (reuse or replay)"
		return
	}
	l.last[epoch] = counter
}

func (l *ivLedger) bad() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.violation
}

// TestIVMonotonicProperty drives random op sequences against a live
// Adaptor⇄SC rig — staging (seals), one-shot transient crypto faults
// (retries), explicit and threshold rekeys, counter jumps toward
// exhaustion, and duplicate device reads (duplicate-completion
// analogue) — and requires the h2d seal audit to stay monotonic
// throughout. A retry after ErrTransient must reuse the counter the
// failed attempt never consumed, not burn or repeat one.
func TestIVMonotonicProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r, dev := newRig(t, Optimized())
		ledger := &ivLedger{}
		if err := r.adaptor.AuditIVs(core.StreamH2D, ledger.hook); err != nil {
			t.Fatal(err)
		}

		var pending int // one-shot transient faults armed
		r.adaptor.InstallCryptoFault(func(op string) error {
			if op == "seal" && pending > 0 {
				pending--
				return secmem.ErrTransient
			}
			return nil
		})

		var lastBase uint64
		var lastLen int64
		for i, b := range ops {
			switch b % 5 {
			case 0: // stage a payload (consumes IVs, possibly chunked)
				data := bytes.Repeat([]byte{b}, 64+int(b&0x7f))
				region, err := r.adaptor.StageH2D("prop", data)
				if err != nil {
					return false
				}
				lastBase, lastLen = region.Buf.Base(), int64(len(data))
			case 1: // jump the counter toward exhaustion (forward only)
				target := ^uint32(0) - uint32(b%7) - 1
				if r.adaptor.h2d.SendCounter() < target {
					if err := r.adaptor.ForceStreamCounter(core.StreamH2D, target); err != nil {
						return false
					}
				}
			case 2: // explicit rotation
				if err := r.adaptor.RekeyStream(core.StreamH2D); err != nil {
					return false
				}
			case 3: // arm a transient fault for the next seal
				pending = 1 + int(b%2)
			case 4: // duplicate device read of the last staged region
				if lastLen > 0 {
					dev.dmaRead(lastBase, lastLen)
					dev.dmaRead(lastBase, lastLen) // duplicate: OpenStateless path
				}
			}
			if v := ledger.bad(); v != "" {
				t.Logf("op %d (%d): %s", i, b, v)
				return false
			}
		}

		// The stream must still carry traffic end to end.
		final := []byte("post-sequence payload")
		region, err := r.adaptor.StageH2D("final", final)
		if err != nil {
			return false
		}
		got, ok := dev.dmaRead(region.Buf.Base(), int64(len(final)))
		return ok && bytes.Equal(got, final) && ledger.bad() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMaybeRekeyBoundary pins the rotation trigger at the exact counter
// edges: max−1 and max must rotate, exactly-at-threshold must not, and
// an exhausted counter must refuse to seal rather than wrap.
func TestMaybeRekeyBoundary(t *testing.T) {
	t.Run("max-1 rotates", func(t *testing.T) {
		r, dev := newRig(t, Optimized())
		if err := r.adaptor.ForceStreamCounter(core.StreamH2D, ^uint32(0)-1); err != nil {
			t.Fatal(err)
		}
		rotated, err := r.adaptor.MaybeRekey()
		if err != nil {
			t.Fatal(err)
		}
		if len(rotated) != 1 || rotated[0] != core.StreamH2D {
			t.Fatalf("rotated = %v", rotated)
		}
		if e := r.adaptor.h2d.Epoch(); e != 1 {
			t.Fatalf("epoch = %d after boundary rotation", e)
		}
		data := []byte("alive at max-1")
		region, err := r.adaptor.StageH2D("x", data)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := dev.dmaRead(region.Buf.Base(), int64(len(data))); !ok || !bytes.Equal(got, data) {
			t.Fatal("traffic broken after rotation")
		}
	})

	t.Run("max refuses to seal, then rotates", func(t *testing.T) {
		r, _ := newRig(t, Optimized())
		if err := r.adaptor.ForceStreamCounter(core.StreamH2D, ^uint32(0)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.adaptor.h2d.Seal([]byte("x"), nil); !errors.Is(err, secmem.ErrIVExhausted) {
			t.Fatalf("seal at exhausted counter: err = %v, want ErrIVExhausted", err)
		}
		// No wraparound: the counter holds at max rather than cycling
		// back into used IV space.
		if c := r.adaptor.h2d.SendCounter(); c != ^uint32(0) {
			t.Fatalf("counter wrapped to %d", c)
		}
		if _, err := r.adaptor.MaybeRekey(); err != nil {
			t.Fatal(err)
		}
		if c := r.adaptor.h2d.SendCounter(); c != 0 {
			t.Fatalf("counter = %d after rotation", c)
		}
		if e := r.adaptor.h2d.Epoch(); e != 1 {
			t.Fatalf("epoch = %d after rotation", e)
		}
	})

	t.Run("exactly at threshold does not rotate", func(t *testing.T) {
		r, _ := newRig(t, Optimized())
		if err := r.adaptor.ForceStreamCounter(core.StreamH2D, ^uint32(0)-RekeyThreshold); err != nil {
			t.Fatal(err)
		}
		rotated, err := r.adaptor.MaybeRekey()
		if err != nil {
			t.Fatal(err)
		}
		if len(rotated) != 0 {
			t.Fatalf("rotated %v with a full threshold of headroom left", rotated)
		}
	})

	t.Run("concurrent in-flight seals at the edge", func(t *testing.T) {
		// N counter values left, 4N goroutines sealing: exactly N must
		// succeed with N distinct counters, the rest must see
		// ErrIVExhausted — never a duplicate, never a wrap.
		const headroom = 16
		r, _ := newRig(t, Optimized())
		ledger := &ivLedger{}
		if err := r.adaptor.AuditIVs(core.StreamH2D, ledger.hook); err != nil {
			t.Fatal(err)
		}
		if err := r.adaptor.ForceStreamCounter(core.StreamH2D, ^uint32(0)-headroom); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := make([]error, 4*headroom)
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, results[i] = r.adaptor.h2d.Seal([]byte("in-flight"), nil)
			}(i)
		}
		wg.Wait()
		okCount, exhausted := 0, 0
		for _, err := range results {
			switch {
			case err == nil:
				okCount++
			case errors.Is(err, secmem.ErrIVExhausted):
				exhausted++
			default:
				t.Fatalf("unexpected seal error: %v", err)
			}
		}
		if okCount != headroom || exhausted != len(results)-headroom {
			t.Fatalf("%d sealed / %d exhausted, want %d / %d", okCount, exhausted, headroom, len(results)-headroom)
		}
		if v := ledger.bad(); v != "" {
			t.Fatalf("IV discipline violated under concurrency: %s", v)
		}
	})
}
