package adaptor

import (
	"errors"
	"fmt"

	"ccai/internal/core"
	"ccai/internal/mem"
	"ccai/internal/obsv"
)

// Submission-ring producer (§5 batched I/O): the Adaptor appends
// control-path operations — sealed rule/descriptor/rekey blobs, packed
// tag records, region releases, notifies, A3 guarded writes — into a
// ring it owns in TVM memory and publishes each burst with a single
// MMIO doorbell carrying the new absolute tail. Every legacy
// per-operation MMIO write becomes a plain memory write plus its share
// of one doorbell, which is where the §5 I/O-reduction comes from. The
// SC consumes synchronously on the doorbell, DMA-writes its head back
// into the ring header, and raises the header status word on framing
// desync — which the producer treats as unrecoverable and fails closed.

// ErrRingDesync reports that the SC declared the submission ring
// inconsistent; the session has been torn down (fail closed).
var ErrRingDesync = errors.New("adaptor: submission ring desync; session torn down")

// ringSlots is the submission-ring depth. A 64 KiB staged transfer
// needs ~32 entries (2 descriptors, ~29 tag packets, 1 notify), so a
// whole task normally publishes with one doorbell and never wraps
// mid-burst.
const ringSlots = 64

// submitRing is the producer view: the ring buffer plus the absolute
// tail index and the count of entries not yet confirmed consumed.
type submitRing struct {
	buf      *mem.Buffer
	slots    uint64
	tail     uint64 // absolute index of the next entry to write
	pend     uint64 // entries published-or-pending since the last confirmed flush
	lastHead uint64 // highest SC head ever confirmed; regression = fail closed
}

// ringPush appends one entry. If the ring is full the pending burst is
// flushed first (the SC consumes synchronously, so one flush always
// frees every slot). Plain memory writes only — the bus is not
// touched. Callers hold a.mu and have checked a.ring != nil.
func (a *Adaptor) ringPush(op uint8, arg uint64, payload []byte) error {
	r := a.ring
	if len(payload) > core.RingMaxData {
		return fmt.Errorf("adaptor: ring entry payload %d exceeds %d", len(payload), core.RingMaxData)
	}
	if r.pend == r.slots {
		if err := a.flushRingLocked(); err != nil {
			return err
		}
	}
	slot := r.tail % r.slots
	dst := r.buf.Bytes()[core.RingHdrSize+slot*core.RingSlotSize:]
	var hdr [core.RingEntryHdrSize]byte
	core.PutRingEntry(&hdr, op, uint16(len(payload)), uint32(r.tail), arg)
	copy(dst, hdr[:])
	copy(dst[core.RingEntryHdrSize:core.RingSlotSize], payload)
	r.tail++
	r.pend++
	a.obs.ringEntries.Inc()
	return nil
}

// flushRingLocked publishes the pending burst: one doorbell MMIO write
// with the absolute tail, then the ring header is inspected for the
// outcome. A raised status word means the SC saw corrupted framing —
// that is not retryable, the session fails closed. A head that did not
// reach the tail means the doorbell (or the SC's span fetch) was lost;
// the doorbell is re-issued under the standard retry ladder, which is
// safe because the SC consumes [head, tail) idempotently from its own
// head. Callers hold a.mu. A nil or empty ring is a no-op.
func (a *Adaptor) flushRingLocked() error {
	r := a.ring
	if r == nil || r.pend == 0 {
		return nil
	}
	a.obs.ringFlushes.Inc()
	delay := a.policy.Backoff
	for attempt := 0; ; attempt++ {
		a.obs.ringDoorbells.Inc()
		a.mmioWrite64(core.RegRingDoorbell, r.tail)
		if status, err := a.space.ReadUint64(r.buf.Base() + 8); err == nil && status != 0 {
			a.rec.FailClosed++
			a.rec.LastFailure = "submission ring desync"
			a.obs.failClosed.Inc()
			a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.fail_closed", obsv.Str("reason", "ring-desync"))
			a.hub.Eventf(obsv.EvFailClosed, "", "reason=ring-desync")
			a.teardownLocked()
			return ErrRingDesync
		}
		head, err := a.space.ReadUint64(r.buf.Base())
		if err == nil && head == r.tail {
			r.pend = 0
			r.lastHead = head
			if attempt > 0 {
				a.rec.Recovered++
				a.obs.recovered.Inc()
			}
			return nil
		}
		// An implausible head — past the published tail, or behind a value
		// the SC already confirmed — is not yet a verdict: a link bit
		// error in the head writeback looks exactly like this, and the SC
		// rewrites the true head on every re-doorbell, so the retry ladder
		// gets a chance to correct it. Only a regression that survives the
		// whole ladder means the header is lying about history, and a
		// producer that cannot trust its own consumption record must stop.
		implausible := err == nil && (head > r.tail || head < r.lastHead)
		if attempt >= a.policy.MaxRetries {
			if implausible {
				a.rec.FailClosed++
				a.rec.LastFailure = "submission ring head regression"
				a.obs.failClosed.Inc()
				a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.fail_closed", obsv.Str("reason", "ring-head-regression"))
				a.hub.Eventf(obsv.EvFailClosed, "", "reason=ring-head-regression")
				a.teardownLocked()
				return ErrRingDesync
			}
			a.rec.Exhausted++
			a.obs.exhausted.Inc()
			return fmt.Errorf("adaptor: ring flush: head %d never reached tail %d", head, r.tail)
		}
		a.rec.Retries++
		a.obs.retries.Inc()
		a.obs.tracer.Instant(obsv.TrackAdaptor, "recovery.retry",
			obsv.Str("op", "ring-doorbell"), obsv.I64("attempt", int64(attempt+1)))
		a.backoff(&delay)
	}
}

// sendBlob routes one sealed configuration blob: a ring entry when the
// ring is active and the blob fits a slot, otherwise the legacy
// window-write + doorbell pair. Callers hold a.mu.
func (a *Adaptor) sendBlob(op uint8, window, doorbell uint64, blob []byte) error {
	if a.ring != nil && len(blob) <= core.RingMaxData {
		return a.ringPush(op, 0, blob)
	}
	a.mmioWrite(window, blob)
	a.mmioWrite64(doorbell, 1)
	return nil
}

// sendTags routes one packed tag payload (≤ one TLP worth of records).
// Callers hold a.mu.
func (a *Adaptor) sendTags(payload []byte) error {
	if a.ring != nil {
		return a.ringPush(core.RingOpTags, 0, payload)
	}
	a.mmioWrite(core.RegTagWindow, payload)
	return nil
}

// sendRelease routes one region release. Callers hold a.mu.
func (a *Adaptor) sendRelease(id uint32) error {
	if a.ring != nil {
		return a.ringPush(core.RingOpRelease, uint64(id), nil)
	}
	a.mmioWrite64(core.RegDescRelease, uint64(id))
	return nil
}

// sendNotify routes one region-ready notify. Callers hold a.mu.
func (a *Adaptor) sendNotify(id uint32) error {
	if a.ring != nil {
		return a.ringPush(core.RingOpNotify, uint64(id), nil)
	}
	a.mmioWrite64(core.RegNotify, uint64(id))
	return nil
}
