package adaptor

// Tests for the streaming staging pipeline (DESIGN.md §10) as seen
// from the wire: tag uploads must track the crypto pool's emit order,
// and a parallel pipeline must stage byte-identical regions to a
// serial one.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"ccai/internal/core"
	"ccai/internal/pcie"
)

// tagWindowCounters parses every H2D tag record seen in RegTagWindow
// writes, in wire order.
type tagWindowTap struct {
	mu       sync.Mutex
	counters []uint32
}

func (tw *tagWindowTap) Tap(p *pcie.Packet) *pcie.Packet {
	if p.Kind == pcie.MWr && p.Address == scBar+core.RegTagWindow {
		tw.mu.Lock()
		for off := 0; off+core.TagRecordSize <= len(p.Payload); off += core.TagRecordSize {
			tw.counters = append(tw.counters, binary.LittleEndian.Uint32(p.Payload[off+4:]))
		}
		tw.mu.Unlock()
	}
	return p
}

// TestStageH2DTagOrderUnderParallelCrypto taps the host bus during a
// parallel-crypto StageH2D and asserts the tag counters hit the wire
// strictly ascending: the pool may seal chunks out of order, but the
// emit stage must serialize them back before anything escapes the
// Adaptor. A reordered tag upload would break the SC's contiguous
// tag-span batching and, worse, decouple tag position from chunk
// identity.
func TestStageH2DTagOrderUnderParallelCrypto(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r, _ := newRig(t, Options{BatchTags: true, ParallelCrypto: true, CryptoWorkers: workers})
			tap := &tagWindowTap{}
			r.host.AddTap(tap)

			data := make([]byte, 64<<10) // 256 chunks through the pipeline
			for i := range data {
				data[i] = byte(i * 31)
			}
			reg, err := r.adaptor.StageH2D("ordered", data)
			if err != nil {
				t.Fatal(err)
			}
			r.host.ClearTaps()

			tap.mu.Lock()
			counters := append([]uint32(nil), tap.counters...)
			tap.mu.Unlock()
			nChunks := (len(data) + core.ChunkSize - 1) / core.ChunkSize
			if len(counters) != nChunks {
				t.Fatalf("saw %d tag records on the wire, want %d", len(counters), nChunks)
			}
			first := reg.Desc.FirstCounter
			for i, c := range counters {
				if c != first+uint32(i) {
					t.Fatalf("tag %d carries counter %d, want %d (reordered upload)", i, c, first+uint32(i))
				}
			}
		})
	}
}

// TestStageH2DParallelMatchesSerial stages the same plaintext through
// a 1-worker and a 4-worker pipeline (each rig has its own keys, so
// ciphertext differs) and requires the device to read back identical
// plaintext with identically structured tag records: pipeline width is
// a scheduling detail, never a protocol-visible one.
func TestStageH2DParallelMatchesSerial(t *testing.T) {
	data := make([]byte, 20<<10)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	stage := func(workers int) []core.TagRecord {
		r, dev := newRig(t, Options{BatchTags: true, ParallelCrypto: true, CryptoWorkers: workers})
		reg, err := r.adaptor.StageH2D("w", data)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := dev.dmaRead(reg.Desc.Base, int64(len(data)))
		if !ok {
			t.Fatalf("device read of staged region failed (workers=%d)", workers)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("device read back wrong plaintext (workers=%d)", workers)
		}
		return reg.Recs
	}
	serialRecs := stage(1)
	parRecs := stage(4)
	if len(serialRecs) != len(parRecs) {
		t.Fatalf("record counts diverge: %d vs %d", len(serialRecs), len(parRecs))
	}
	for i := range serialRecs {
		if serialRecs[i].Chunk != parRecs[i].Chunk || serialRecs[i].Epoch != parRecs[i].Epoch {
			t.Fatalf("tag record %d structure diverges between widths", i)
		}
	}
}

// TestStagedRegionSpanReadable drives the full new read path: a
// staged 64 KiB region consumed by the stub device in MaxReadReq-sized
// span reads must come back as the original plaintext, chunk batching
// and all.
func TestStagedRegionSpanReadable(t *testing.T) {
	r, dev := newRig(t, Options{BatchTags: true})
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i ^ (i >> 8))
	}
	reg, err := r.adaptor.StageH2D("span", data)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, len(data))
	for off := 0; off < len(data); off += pcie.MaxReadReq {
		n := pcie.MaxReadReq
		if len(data)-off < n {
			n = len(data) - off
		}
		cpl := dev.up(pcie.NewMemRead(dev.id, reg.Desc.Base+uint64(off), uint32(n), 0))
		if cpl == nil || cpl.Status != pcie.CplSuccess {
			t.Fatalf("span read at %d rejected", off)
		}
		got = append(got, cpl.Payload...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("span reads reassembled wrong plaintext")
	}
	if n := r.sc.Stats().DecryptedChunks; n != 256 {
		t.Fatalf("DecryptedChunks = %d, want 256", n)
	}
}

// BenchmarkStageH2D64KiB times the hot staging path in isolation:
// seal 256 chunks, write the bounce buffer, upload tags. allocs/op is
// the number the arena work targets — the CI gate tracks it via
// `ccai-bench -compare`.
func BenchmarkStageH2D64KiB(b *testing.B) {
	r, _ := newRig(b, Optimized())
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := r.adaptor.StageH2D("bench", data)
		if err != nil {
			b.Fatal(err)
		}
		r.adaptor.ReleaseRegion(reg)
	}
}
