package fault

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ccai/internal/core"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// Firing is one log entry: which event fired, at which per-class match
// index, and when on the virtual clock (0 without a clock).
type Firing struct {
	Class Class
	Index uint64
	At    sim.Time
}

func (f Firing) String() string {
	return fmt.Sprintf("%v@%d t=%v", f.Class, f.Index, f.At)
}

// Stats counts injected faults per class.
type Stats struct {
	Fired map[Class]uint64
	// Opportunities counts matching packets/hook calls seen per class,
	// fired or not — the denominator of the injection rate.
	Opportunities map[Class]uint64
}

// eventState is the runtime counter for one plan event.
type eventState struct {
	Event
	fired uint16
}

// Injector executes a Plan against the simulated stack. It is a
// pcie.Tap for link-level faults and exposes hook adapters for the
// device (DeviceFault), crypto engine (CryptoFault) and tag manager
// (TagFault) injection points. All decisions are deterministic: for a
// fixed plan and a fixed traffic sequence the same packets are faulted
// the same way, byte for byte.
type Injector struct {
	mu     sync.Mutex
	events []*eventState
	rand   *sim.Rand

	// clock, when set, gates At-scheduled events and timestamps the
	// firing log.
	clock *sim.Engine
	// match, when set, scopes link-level faults (Corrupt/Drop/Truncate/
	// completion classes) to packets it accepts; other packets are not
	// even counted as opportunities.
	match func(p *pcie.Packet) bool

	idx   map[Class]uint64
	stats Stats
	log   []Firing

	// stash holds the delayed completion of a StaleCompletion in
	// progress.
	stash *pcie.Packet
	// cplStash holds the withheld completion-word writeback of a
	// DuplicateCplBurst in progress.
	cplStash *pcie.Packet

	// obsTracer/obsReg record each firing as an instant event and a
	// per-class counter. Firings are rare, so the registry lookup per
	// firing is acceptable and spares a 9-handle cache.
	obsTracer *obsv.Tracer
	obsReg    *obsv.Registry
}

// SetObserver instruments the injector; a nil hub clears it.
func (inj *Injector) SetObserver(h *obsv.Hub) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.obsTracer = h.T()
	inj.obsReg = h.Reg()
}

// NewInjector builds an injector for the plan. Payload mutations
// (which bit flips, where a truncation cuts) derive from the plan seed.
func NewInjector(p Plan) *Injector {
	inj := &Injector{
		rand:  sim.NewRand(p.Seed ^ 0x9e3779b97f4a7c15),
		idx:   make(map[Class]uint64),
		stats: Stats{Fired: make(map[Class]uint64), Opportunities: make(map[Class]uint64)},
	}
	for _, e := range p.Events {
		ev := e
		if ev.Count == 0 {
			ev.Count = 1
		}
		inj.events = append(inj.events, &eventState{Event: ev})
	}
	return inj
}

// SetClock attaches the virtual clock used for At gating and log
// timestamps.
func (inj *Injector) SetClock(clk *sim.Engine) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.clock = clk
}

// SetMatch scopes link-level faults to packets fn accepts. Device,
// crypto and tag hooks are unaffected.
func (inj *Injector) SetMatch(fn func(p *pcie.Packet) bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.match = fn
}

// now reports virtual time, or 0 without a clock.
func (inj *Injector) now() sim.Time {
	if inj.clock == nil {
		return 0
	}
	return inj.clock.Now()
}

// fires decides — under inj.mu — whether class fires at this
// opportunity, advancing the per-class match index either way.
func (inj *Injector) fires(class Class) bool {
	i := inj.idx[class]
	inj.idx[class] = i + 1
	inj.stats.Opportunities[class]++
	for _, ev := range inj.events {
		if ev.Class != class || ev.fired >= ev.Count {
			continue
		}
		if uint64(ev.Skip) > i {
			continue
		}
		if ev.At > 0 && inj.clock != nil && inj.now() < sim.Time(ev.At)*sim.Microsecond {
			continue
		}
		ev.fired++
		inj.stats.Fired[class]++
		inj.log = append(inj.log, Firing{Class: class, Index: i, At: inj.now()})
		inj.obsReg.Counter(obsv.Name("fault.fired", "class", class.String())).Inc()
		inj.obsTracer.Instant(obsv.TrackFault, "fault_injected",
			obsv.Str("class", class.String()), obsv.U64("index", i))
		return true
	}
	return false
}

// Tap implements pcie.Tap: it applies link-level fault classes to
// packets crossing the bus segment it is installed on. Install it on
// the untrusted host segment to model link errors between the TVM and
// the PCIe-SC.
func (inj *Injector) Tap(p *pcie.Packet) *pcie.Packet {
	if p == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.match != nil && !inj.match(p) {
		return p
	}

	// Completion-word writebacks (batched reaping, ring.go): the SC's
	// 8-byte RingCplValid-tagged MWr into the submission-ring header.
	// No other 8-byte write on the segment carries the top bit — device
	// heads, metadata counters and doorbell values are all small counts.
	if p.Kind == pcie.MWr && len(p.Payload) == 8 &&
		binary.LittleEndian.Uint64(p.Payload)&uint64(core.RingCplValid) != 0 {
		if inj.fires(HeadWritebackLoss) {
			return nil
		}
		if inj.fires(HeadRegress) {
			q := p.Clone()
			head := binary.LittleEndian.Uint64(q.Payload) &^ uint64(core.RingCplValid)
			if head > 0 {
				head--
			}
			binary.LittleEndian.PutUint64(q.Payload, head|uint64(core.RingCplValid))
			return q
		}
		if inj.fires(DuplicateCplBurst) {
			// Withhold this writeback; deliver the previously withheld
			// one (if any) in its place — the producer reaps a duplicate
			// of a completion it already saw while real progress hides.
			prev := inj.cplStash
			inj.cplStash = p.Clone()
			return prev
		}
	}

	if p.Kind == pcie.Cpl || p.Kind == pcie.CplD {
		if inj.fires(DropCompletion) {
			return nil
		}
		if inj.fires(StaleCompletion) {
			// Delay this completion; deliver the previously delayed one
			// (if any) in its place. The requester sees either a timeout
			// (first firing) or a completion whose transaction tag
			// belongs to an older request (subsequent firings).
			prev := inj.stash
			inj.stash = p.Clone()
			return prev
		}
	} else {
		if inj.fires(DropTLP) {
			return nil
		}
	}

	if p.Kind.HasPayload() && len(p.Payload) > 0 {
		if inj.fires(TruncateTLP) {
			q := p.Clone()
			cut := inj.rand.Intn(len(q.Payload))
			q.Payload = q.Payload[:cut]
			q.Length = uint32(cut)
			return q
		}
		if inj.fires(CorruptTLP) {
			q := p.Clone()
			bit := inj.rand.Intn(len(q.Payload) * 8)
			q.Payload[bit/8] ^= 1 << (bit % 8)
			return q
		}
	}
	return p
}

// DeviceFault is the xpu.FaultHook adapter: doorbell hangs and MSI
// loss.
func (inj *Injector) DeviceFault(point string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	switch point {
	case xpu.FaultDoorbell:
		return inj.fires(DoorbellHang)
	case xpu.FaultMSI:
		return inj.fires(DropMSI)
	}
	return false
}

// CryptoFault is the secmem fault-hook adapter: transient engine
// errors. It fires per engine operation (seal or open).
func (inj *Injector) CryptoFault(string) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.fires(CryptoTransient) {
		return secmem.ErrTransient
	}
	return nil
}

// Scheduler fault-hook points (see SchedFault).
const (
	// SchedPointDequeue is probed once per dispatcher claim; firing
	// SchedStall there requeues the request.
	SchedPointDequeue = "dequeue"
	// SchedPointCancel is probed at the claim boundary; firing
	// CancelRace there cancels the request as if its context fired at
	// that instant.
	SchedPointCancel = "cancel"
)

// SchedFault is the serving-scheduler fault-hook adapter: mid-queue
// stalls and claim-boundary cancellation races.
func (inj *Injector) SchedFault(point string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	switch point {
	case SchedPointDequeue:
		return inj.fires(SchedStall)
	case SchedPointCancel:
		return inj.fires(CancelRace)
	}
	return false
}

// TagFault is the core.TagManager fault-hook adapter: authentication
// tag packets lost in flight.
func (inj *Injector) TagFault(core.TagRecord) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fires(TagLoss)
}

// Fired reports how many times class has fired.
func (inj *Injector) Fired(class Class) uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats.Fired[class]
}

// TotalFired reports firings across all classes.
func (inj *Injector) TotalFired() uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var n uint64
	for _, v := range inj.stats.Fired {
		n += v
	}
	return n
}

// Log returns a copy of the firing log in order.
func (inj *Injector) Log() []Firing {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Firing(nil), inj.log...)
}

// Exhausted reports whether every plan event has fired to completion.
func (inj *Injector) Exhausted() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, ev := range inj.events {
		if ev.fired < ev.Count {
			return false
		}
	}
	return true
}
