package fault

import (
	"bytes"
	"reflect"
	"testing"

	"ccai/internal/pcie"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

func TestPlanRoundTrip(t *testing.T) {
	for _, p := range []Plan{
		{Seed: 0},
		{Seed: 42, Events: []Event{{Class: CorruptTLP, Skip: 3, Count: 2, At: 17}}},
		Generate(7, 12),
		Generate(0xdeadbeef, MaxEvents),
		Single(9, TagLoss, 1, 4),
	} {
		got, err := UnmarshalPlan(p.Marshal())
		if err != nil {
			t.Fatalf("unmarshal(%v): %v", p, err)
		}
		// Count==0 normalizes to 1 on decode.
		want := p
		want.Events = append([]Event(nil), p.Events...)
		for i := range want.Events {
			if want.Events[i].Count == 0 {
				want.Events[i].Count = 1
			}
		}
		if got.Seed != want.Seed || !reflect.DeepEqual(got.Events, want.Events) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	good := Single(1, DropTLP, 0, 1).Marshal()
	cases := map[string][]byte{
		"empty":        nil,
		"short":        good[:8],
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"bad version":  func() []byte { b := bytes.Clone(good); b[4] = 99; return b }(),
		"bad class":    func() []byte { b := bytes.Clone(good); b[15] = 0; return b }(),
		"class high":   func() []byte { b := bytes.Clone(good); b[15] = byte(numClasses); return b }(),
		"body surplus": append(bytes.Clone(good), 0xff),
		"count claim": func() []byte {
			b := bytes.Clone(good)
			b[13], b[14] = 0xff, 0xff // claim 65535 events, supply one
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := UnmarshalPlan(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(1234, 16), Generate(1234, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := Generate(1235, 16)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	for _, e := range a.Events {
		if !e.Class.Valid() {
			t.Fatalf("generated invalid class in %v", e)
		}
	}
}

func trafficMWr(i int) *pcie.Packet {
	return pcie.NewMemWrite(pcie.MakeID(0, 8, 0), 0x8000_0000+uint64(i)*64, bytes.Repeat([]byte{byte(i)}, 64))
}

func TestInjectorSkipCountSemantics(t *testing.T) {
	inj := NewInjector(Single(5, DropTLP, 2, 2))
	var dropped []int
	for i := 0; i < 8; i++ {
		if inj.Tap(trafficMWr(i)) == nil {
			dropped = append(dropped, i)
		}
	}
	// Skip=2: packets 0,1 pass; Count=2: packets 2,3 dropped; rest pass.
	if !reflect.DeepEqual(dropped, []int{2, 3}) {
		t.Fatalf("dropped %v, want [2 3]", dropped)
	}
	if !inj.Exhausted() {
		t.Fatal("plan should be exhausted")
	}
	if inj.Fired(DropTLP) != 2 || inj.TotalFired() != 2 {
		t.Fatalf("fired=%d total=%d, want 2/2", inj.Fired(DropTLP), inj.TotalFired())
	}
}

func TestInjectorDeterministicReplay(t *testing.T) {
	plan := Generate(99, 10, CorruptTLP, TruncateTLP, DropTLP)
	run := func() ([][]byte, []Firing) {
		inj := NewInjector(plan)
		var out [][]byte
		for i := 0; i < 40; i++ {
			p := inj.Tap(trafficMWr(i))
			if p == nil {
				out = append(out, nil)
				continue
			}
			out = append(out, bytes.Clone(p.Payload))
		}
		return out, inj.Log()
	}
	o1, l1 := run()
	o2, l2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("same plan + same traffic produced different packet mutations")
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("firing logs differ:\n%v\n%v", l1, l2)
	}
	if len(l1) == 0 {
		t.Fatal("plan never fired")
	}
}

func TestInjectorCorruptFlipsExactlyOneBit(t *testing.T) {
	inj := NewInjector(Single(3, CorruptTLP, 0, 1))
	orig := trafficMWr(0)
	got := inj.Tap(orig.Clone())
	if got == nil {
		t.Fatal("corrupt must not drop")
	}
	diff := 0
	for i := range orig.Payload {
		x := orig.Payload[i] ^ got.Payload[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
}

func TestInjectorTruncateShortens(t *testing.T) {
	inj := NewInjector(Single(8, TruncateTLP, 0, 1))
	got := inj.Tap(trafficMWr(0))
	if got == nil {
		t.Fatal("truncate must not drop")
	}
	if len(got.Payload) >= 64 || got.Length != uint32(len(got.Payload)) {
		t.Fatalf("payload %d bytes (len field %d), want shorter than 64 and consistent", len(got.Payload), got.Length)
	}
}

func TestInjectorCompletionClasses(t *testing.T) {
	req := pcie.NewMemRead(pcie.MakeID(0, 8, 0), 0x8000_0000, 64, 7)
	mk := func(tag uint8, fill byte) *pcie.Packet {
		r := req.Clone()
		r.Tag = tag
		return pcie.NewCompletion(r, pcie.MakeID(0, 2, 0), pcie.CplSuccess, bytes.Repeat([]byte{fill}, 64))
	}

	inj := NewInjector(Single(1, DropCompletion, 0, 1))
	if inj.Tap(mk(1, 0xaa)) != nil {
		t.Fatal("drop-completion should delete the completion")
	}
	if inj.Tap(mk(2, 0xbb)) == nil {
		t.Fatal("only one completion should be dropped")
	}

	inj = NewInjector(Single(1, StaleCompletion, 0, 2))
	if got := inj.Tap(mk(1, 0xaa)); got != nil {
		t.Fatal("first stale firing should delay (deliver nothing)")
	}
	got := inj.Tap(mk(2, 0xbb))
	if got == nil || got.Tag != 1 || got.Payload[0] != 0xaa {
		t.Fatalf("second firing should deliver the stale completion (tag 1), got %v", got)
	}
	if got := inj.Tap(mk(3, 0xcc)); got == nil || got.Tag != 3 {
		t.Fatalf("after plan exhausted completions flow untouched, got %v", got)
	}
}

func TestInjectorDeviceAndMatchScoping(t *testing.T) {
	inj := NewInjector(Plan{Seed: 2, Events: []Event{
		{Class: DoorbellHang, Count: 1},
		{Class: DropMSI, Count: 1},
	}})
	if !inj.DeviceFault(xpu.FaultDoorbell) || inj.DeviceFault(xpu.FaultDoorbell) {
		t.Fatal("doorbell hang should fire exactly once")
	}
	if !inj.DeviceFault(xpu.FaultMSI) || inj.DeviceFault(xpu.FaultMSI) {
		t.Fatal("msi drop should fire exactly once")
	}
	if inj.DeviceFault("unknown-point") {
		t.Fatal("unknown hook points never fire")
	}

	// Match scoping: only packets to 0x9000_0000+ are eligible.
	inj = NewInjector(Single(4, DropTLP, 0, 1))
	inj.SetMatch(func(p *pcie.Packet) bool { return p.Address >= 0x9000_0000 })
	if inj.Tap(trafficMWr(0)) == nil {
		t.Fatal("non-matching packet must pass untouched")
	}
	hit := pcie.NewMemWrite(pcie.MakeID(0, 8, 0), 0x9000_0000, []byte{1})
	if inj.Tap(hit) != nil {
		t.Fatal("matching packet should be dropped")
	}
}

func TestInjectorClockGating(t *testing.T) {
	clk := sim.NewEngine()
	inj := NewInjector(Plan{Seed: 1, Events: []Event{{Class: DropTLP, Count: 1, At: 5}}})
	inj.SetClock(clk)
	if inj.Tap(trafficMWr(0)) == nil {
		t.Fatal("event gated at t=5µs must not fire at t=0")
	}
	clk.RunUntil(5 * sim.Microsecond)
	if inj.Tap(trafficMWr(1)) != nil {
		t.Fatal("event should fire once the clock reaches its At instant")
	}
	log := inj.Log()
	if len(log) != 1 || log[0].At != 5*sim.Microsecond {
		t.Fatalf("firing log %v, want one firing at 5µs", log)
	}
}

func TestInjectorCryptoTransient(t *testing.T) {
	inj := NewInjector(Single(6, CryptoTransient, 1, 1))
	if err := inj.CryptoFault("seal"); err != nil {
		t.Fatalf("skip=1: first op must pass, got %v", err)
	}
	if err := inj.CryptoFault("seal"); err == nil {
		t.Fatal("second op should hit the transient fault")
	}
	if err := inj.CryptoFault("open"); err != nil {
		t.Fatalf("plan exhausted, got %v", err)
	}
}
