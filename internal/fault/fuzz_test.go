package fault

import (
	"bytes"
	"reflect"
	"testing"

	"ccai/internal/pcie"
)

// FuzzFaultPlan fuzzes the plan codec and drives every decodable plan
// through an injector against fixed traffic. Properties: the decoder
// never panics and never yields an out-of-bounds plan; decode→encode→
// decode is a fixed point; and injection is deterministic — two
// injectors built from the same decoded plan mutate identical traffic
// identically.
func FuzzFaultPlan(f *testing.F) {
	f.Add(Plan{Seed: 1}.Marshal())
	f.Add(Single(2, CorruptTLP, 0, 1).Marshal())
	f.Add(Single(3, StaleCompletion, 1, 2).Marshal())
	f.Add(Generate(4, 8).Marshal())
	f.Add(Generate(5, MaxEvents).Marshal())
	f.Add([]byte("FPLN"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPlan(data)
		if err != nil {
			return
		}
		if len(p.Events) > MaxEvents {
			t.Fatalf("decoder exceeded MaxEvents: %d", len(p.Events))
		}
		for _, e := range p.Events {
			if !e.Class.Valid() || e.Count == 0 || e.Count > MaxCount || e.Skip > MaxSkip || e.At > MaxAt {
				t.Fatalf("decoder admitted out-of-bounds event %v", e)
			}
		}
		reenc := p.Marshal()
		p2, err := UnmarshalPlan(reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded plan failed: %v", err)
		}
		if p2.Seed != p.Seed || !reflect.DeepEqual(p2.Events, p.Events) {
			t.Fatalf("decode/encode not a fixed point:\n %+v\n %+v", p, p2)
		}

		run := func() [][]byte {
			inj := NewInjector(p)
			var out [][]byte
			for i := 0; i < 24; i++ {
				var pkt *pcie.Packet
				if i%3 == 2 {
					req := pcie.NewMemRead(pcie.MakeID(0, 8, 0), 0x8000_0000, 32, uint8(i))
					pkt = pcie.NewCompletion(req, pcie.MakeID(0, 2, 0), pcie.CplSuccess, bytes.Repeat([]byte{byte(i)}, 32))
				} else {
					pkt = pcie.NewMemWrite(pcie.MakeID(0, 8, 0), 0x8000_0000+uint64(i)*32, bytes.Repeat([]byte{byte(i)}, 32))
				}
				got := inj.Tap(pkt)
				if got == nil {
					out = append(out, nil)
					continue
				}
				out = append(out, bytes.Clone(got.Payload))
			}
			return out
		}
		if !reflect.DeepEqual(run(), run()) {
			t.Fatal("same plan produced nondeterministic injection")
		}
	})
}
