// Package fault is the deterministic fault-injection layer of the
// simulated ccAI stack. The paper's threat model (§8.2) covers an
// active adversary; this package covers the *benign* failures a
// production PCIe-SC must also survive — link bit errors, lost TLPs,
// completion timeouts, device hangs, lost interrupts, transient crypto
// engine errors, tag-packet loss — without ever weakening the security
// invariants of DESIGN.md §6. A fault may cost retries and latency; it
// must never cost confidentiality, integrity, or freshness.
//
// Everything is seed-replayable: a Plan is either decoded from bytes or
// generated from a seed, an Injector fires the plan's events at
// deterministic match indices (optionally gated on the internal/sim
// virtual clock), and the firing log records exactly what happened so a
// chaos scenario can be replayed bit-for-bit in CI.
package fault

import (
	"encoding/binary"
	"fmt"

	"ccai/internal/sim"
)

// Class identifies one fault class. The zero value is invalid so a
// zeroed Event can never fire.
type Class uint8

const (
	// CorruptTLP flips one payload bit of a matching packet on the
	// untrusted link segment (link bit error below the LCRC residual).
	CorruptTLP Class = iota + 1
	// DropTLP deletes a matching posted packet in flight.
	DropTLP
	// TruncateTLP cuts a matching packet's payload short (malformed
	// TLP; the filter and handlers must fail closed).
	TruncateTLP
	// DropCompletion deletes a completion in flight — the requester
	// observes a completion timeout and must retry or fail closed.
	DropCompletion
	// StaleCompletion delays a completion and delivers it in place of a
	// later one, so the requester sees a completion whose transaction
	// tag does not match its outstanding request (duplicate/stale
	// completion). Accepting it would be a freshness violation.
	StaleCompletion
	// DoorbellHang makes the xPU swallow doorbell rings: the command
	// queue stalls with no error indication (firmware scheduler hang).
	DoorbellHang
	// DropMSI loses the MSI write of an interrupt the device latched.
	DropMSI
	// CryptoTransient injects a recoverable crypto-engine error
	// (secmem.ErrTransient); no IV counter is consumed by the failed
	// operation.
	CryptoTransient
	// TagLoss drops an authentication-tag record on arrival at the
	// Authentication Tag Manager, orphaning its data chunk until the
	// Adaptor reposts the tag table.
	TagLoss
	// SchedStall makes the serving scheduler balk at a dequeue: the
	// claimed request is requeued at the head of its tenant's queue
	// (deficit refunded) and dispatch retries — a scheduling hiccup
	// mid-queue. The request must still execute exactly once, in
	// order, with only added wait time.
	SchedStall
	// CancelRace cancels a request at the exact claim boundary — the
	// adversarial interleaving of a caller's ctx firing the same
	// instant the dispatcher dequeues. The scheduler must settle the
	// race cleanly: the request either completes with a cancellation
	// error without occupying a pipeline slot, or not at all — and
	// neither outcome may perturb any other request's stream state.
	CancelRace
	// HeadWritebackLoss drops the SC's completion-word writeback (the
	// RingCplValid-tagged MWr into the submission-ring header), so the
	// producer reaps a stale head and must re-kick or fall back to the
	// authoritative MMIO read.
	HeadWritebackLoss
	// HeadRegress rewrites a completion-word writeback to carry an
	// older (smaller) head with the valid tag intact — a delayed or
	// reordered writeback. The reaper's monotonicity check must refuse
	// to move backwards and fall through to the MMIO read.
	HeadRegress
	// DuplicateCplBurst holds a completion-word writeback back and
	// re-delivers it in place of a later one — a burst of duplicated
	// completions. The stale duplicate hides device progress; it must
	// cost only re-polls, never a fabricated completion.
	DuplicateCplBurst

	numClasses
)

var classNames = [...]string{
	"invalid", "corrupt-tlp", "drop-tlp", "truncate-tlp", "drop-completion",
	"stale-completion", "doorbell-hang", "drop-msi", "crypto-transient", "tag-loss",
	"sched-stall", "cancel-race",
	"head-writeback-loss", "head-regress", "duplicate-cpl-burst",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c names a real fault class.
func (c Class) Valid() bool { return c >= CorruptTLP && c < numClasses }

// Classes lists every fault class in declaration order.
func Classes() []Class {
	out := make([]Class, 0, int(numClasses)-1)
	for c := CorruptTLP; c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// Event is one scheduled fault: after Skip matching opportunities pass,
// fire Count times on consecutive opportunities, but not before virtual
// instant At (when the injector has a clock).
type Event struct {
	Class Class
	// Skip is the number of matching opportunities to let pass
	// unharmed before the event arms.
	Skip uint16
	// Count is how many times the event fires; 0 decodes as 1.
	Count uint16
	// At gates the event on the virtual clock: it stays dormant until
	// sim.Time(At)*sim.Microsecond. Ignored when the injector has no
	// clock.
	At uint32
}

func (e Event) String() string {
	return fmt.Sprintf("%v{skip=%d count=%d at=%dµs}", e.Class, e.Skip, e.Count, e.At)
}

// Decoder hard limits: plans are attacker-adjacent input (they ride in
// CI config and fuzz corpora), so the decoder bounds everything.
const (
	// MaxEvents bounds a plan's event list.
	MaxEvents = 64
	// MaxSkip bounds Event.Skip.
	MaxSkip = 4096
	// MaxCount bounds Event.Count.
	MaxCount = 256
	// MaxAt bounds Event.At (µs of virtual time).
	MaxAt = 10_000_000
)

// Plan is a reproducible chaos scenario: a seed (provenance + payload
// randomness) and an ordered event list.
type Plan struct {
	Seed   uint64
	Events []Event
}

// planMagic/planVersion frame the serialized form.
var planMagic = [4]byte{'F', 'P', 'L', 'N'}

const planVersion = 1

// eventWireSize is the serialized size of one event.
const eventWireSize = 1 + 2 + 2 + 4

// Marshal serializes the plan.
func (p Plan) Marshal() []byte {
	buf := make([]byte, 0, 4+1+8+2+len(p.Events)*eventWireSize)
	buf = append(buf, planMagic[:]...)
	buf = append(buf, planVersion)
	buf = binary.LittleEndian.AppendUint64(buf, p.Seed)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Events)))
	for _, e := range p.Events {
		buf = append(buf, byte(e.Class))
		buf = binary.LittleEndian.AppendUint16(buf, e.Skip)
		buf = binary.LittleEndian.AppendUint16(buf, e.Count)
		buf = binary.LittleEndian.AppendUint32(buf, e.At)
	}
	return buf
}

// UnmarshalPlan parses a serialized plan, validating every structural
// invariant; malformed input yields an error, never a partial plan.
func UnmarshalPlan(data []byte) (Plan, error) {
	var p Plan
	if len(data) < 4+1+8+2 {
		return p, fmt.Errorf("fault: plan truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != planMagic {
		return p, fmt.Errorf("fault: bad plan magic %q", data[:4])
	}
	if data[4] != planVersion {
		return p, fmt.Errorf("fault: unsupported plan version %d", data[4])
	}
	p.Seed = binary.LittleEndian.Uint64(data[5:13])
	n := int(binary.LittleEndian.Uint16(data[13:15]))
	if n > MaxEvents {
		return Plan{}, fmt.Errorf("fault: %d events exceeds limit %d", n, MaxEvents)
	}
	body := data[15:]
	if len(body) != n*eventWireSize {
		return Plan{}, fmt.Errorf("fault: event section is %d bytes, want %d", len(body), n*eventWireSize)
	}
	if n > 0 {
		p.Events = make([]Event, 0, n)
	}
	for i := 0; i < n; i++ {
		off := i * eventWireSize
		e := Event{
			Class: Class(body[off]),
			Skip:  binary.LittleEndian.Uint16(body[off+1:]),
			Count: binary.LittleEndian.Uint16(body[off+3:]),
			At:    binary.LittleEndian.Uint32(body[off+5:]),
		}
		if !e.Class.Valid() {
			return Plan{}, fmt.Errorf("fault: event %d has invalid class %d", i, body[off])
		}
		if e.Count == 0 {
			e.Count = 1
		}
		if e.Skip > MaxSkip || e.Count > MaxCount || e.At > MaxAt {
			return Plan{}, fmt.Errorf("fault: event %d out of bounds (%v)", i, e)
		}
		p.Events = append(p.Events, e)
	}
	return p, nil
}

// Generate builds a deterministic chaos plan from a seed: n events
// drawn from the given classes (all classes when none are named), with
// small skips and counts so scenarios stay fast. The same seed always
// yields the same plan.
func Generate(seed uint64, n int, classes ...Class) Plan {
	if n <= 0 {
		n = 4
	}
	if n > MaxEvents {
		n = MaxEvents
	}
	if len(classes) == 0 {
		classes = Classes()
	}
	r := sim.NewRand(seed)
	p := Plan{Seed: seed}
	for i := 0; i < n; i++ {
		p.Events = append(p.Events, Event{
			Class: classes[r.Intn(len(classes))],
			Skip:  uint16(r.Intn(8)),
			Count: uint16(r.Intn(3) + 1),
		})
	}
	return p
}

// Single is the one-event plan: the workhorse of the fault×invariant
// matrix, where each cell injects exactly one class deterministically.
func Single(seed uint64, class Class, skip, count int) Plan {
	return Plan{Seed: seed, Events: []Event{{
		Class: class, Skip: uint16(skip), Count: uint16(count),
	}}}
}
