// Package tvm models the Trusted VM side of the platform: guest
// memory split into TVM-private and shared (bounce) regions, and the
// *unmodified* native xPU driver stack. ccAI's compatibility promise
// (G1) is that this driver issues exactly the same register writes and
// command-ring traffic whether it runs vanilla or behind the PCIe-SC;
// the only difference is which Port implementation carries its MMIO and
// which allocator hands out its DMA buffers. Both indirections exist in
// real kernels (ioremap'd accessors and dma_map_ops), which is how the
// paper's Adaptor hooks in without driver changes.
package tvm

import (
	"fmt"

	"ccai/internal/mem"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/xpu"
)

// Port carries the driver's MMIO accesses to device BAR0 registers.
type Port interface {
	WriteReg(reg uint64, v uint64) error
	ReadReg(reg uint64) (uint64, error)
}

// DirectPort is the vanilla implementation: raw TLPs on the host bus.
type DirectPort struct {
	ID   pcie.ID
	Bus  *pcie.Bus
	BAR0 uint64
}

// WriteReg issues a posted MMIO write.
func (p *DirectPort) WriteReg(reg uint64, v uint64) error {
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	p.Bus.Route(pcie.NewMemWrite(p.ID, p.BAR0+reg, buf))
	return nil
}

// ReadReg issues a non-posted MMIO read.
func (p *DirectPort) ReadReg(reg uint64) (uint64, error) {
	cpl := p.Bus.Route(pcie.NewMemRead(p.ID, p.BAR0+reg, 8, 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess {
		return 0, fmt.Errorf("tvm: MMIO read of %#x failed", reg)
	}
	var v uint64
	for i := 0; i < 8 && i < len(cpl.Payload); i++ {
		v |= uint64(cpl.Payload[i]) << (8 * i)
	}
	return v, nil
}

// Guest is one TVM's memory environment.
type Guest struct {
	ID    pcie.ID
	Space *mem.Space
}

// Region names inside a guest's address space.
const (
	// PrivateRegion is TVM-encrypted memory no device can reach.
	PrivateRegion = "private"
	// SharedRegion is the bounce-buffer window (same name the Adaptor
	// uses); the IOMMU maps it for the PCIe-SC only.
	SharedRegion = "shared"
)

// NewGuest builds a guest with private and shared windows.
func NewGuest(id pcie.ID, privateBase, privateSize, sharedBase, sharedSize uint64) (*Guest, error) {
	s := mem.NewSpace()
	if err := s.AddRegion(PrivateRegion, privateBase, privateSize); err != nil {
		return nil, err
	}
	if err := s.AddRegion(SharedRegion, sharedBase, sharedSize); err != nil {
		return nil, err
	}
	return &Guest{ID: id, Space: s}, nil
}

// Driver is the native xPU driver model. Its logic is identical for
// every device in the fleet (the functional register map is shared) and
// for every deployment (vanilla or ccAI).
type Driver struct {
	port Port
	// ring is the command ring's host memory. Under ccAI this is a
	// bounce region the Adaptor registered as Write Protected (A3);
	// vanilla it is ordinary DMA-able memory.
	ring     *mem.Buffer
	space    *mem.Space
	ringSize uint64
	tail     uint64
	// preDoorbell runs just before the doorbell write with the ring
	// chunk indices about to be consumed; ccAI's platform glue uses it
	// to post MAC records. Vanilla leaves it nil.
	preDoorbell func(chunks []uint32) error

	obs driverObs
}

// driverObs caches the driver's observability handles; the zero value
// is the uninstrumented state.
type driverObs struct {
	tracer  *obsv.Tracer
	submits *obsv.Counter
	kicks   *obsv.Counter
}

// SetObserver instruments the driver; a nil hub clears it.
func (d *Driver) SetObserver(h *obsv.Hub) {
	if h == nil {
		d.obs = driverObs{}
		return
	}
	d.obs = driverObs{
		tracer:  h.T(),
		submits: h.Reg().Counter("driver.submits"),
		kicks:   h.Reg().Counter("driver.kicks"),
	}
}

// NewDriver initializes the driver against a port and a ring buffer of
// entries command slots.
func NewDriver(port Port, space *mem.Space, ring *mem.Buffer, entries uint64) (*Driver, error) {
	if uint64(ring.Size()) < entries*xpu.CmdSize {
		return nil, fmt.Errorf("tvm: ring buffer too small for %d entries", entries)
	}
	d := &Driver{port: port, ring: ring, space: space, ringSize: entries}
	if err := port.WriteReg(xpu.RegCmdBase, ring.Base()); err != nil {
		return nil, err
	}
	if err := port.WriteReg(xpu.RegCmdSize, entries); err != nil {
		return nil, err
	}
	return d, nil
}

// SetPreDoorbell installs the ccAI ring-sync hook.
func (d *Driver) SetPreDoorbell(fn func(chunks []uint32) error) { d.preDoorbell = fn }

// ConfigureMSI points the device's interrupt writes at the given host
// address/payload.
func (d *Driver) ConfigureMSI(addr uint64, data uint32) error {
	if err := d.port.WriteReg(xpu.RegMSIAddr, addr); err != nil {
		return err
	}
	return d.port.WriteReg(xpu.RegMSIData, uint64(data))
}

// Submit writes commands into the ring and rings the doorbell.
func (d *Driver) Submit(cmds ...xpu.Command) error {
	sp := d.obs.tracer.Begin(obsv.TrackDriver, "submit", obsv.I64("cmds", int64(len(cmds))))
	defer sp.End()
	d.obs.submits.Inc()
	chunks := make([]uint32, 0, len(cmds))
	for _, c := range cmds {
		slot := d.tail % d.ringSize
		addr := d.ring.Base() + slot*xpu.CmdSize
		if err := d.space.Write(addr, c.Marshal()); err != nil {
			return fmt.Errorf("tvm: ring write: %w", err)
		}
		chunks = append(chunks, uint32(slot))
		d.tail++
	}
	if d.preDoorbell != nil {
		if err := d.preDoorbell(chunks); err != nil {
			return err
		}
	}
	if err := d.port.WriteReg(xpu.RegCmdTail, d.tail); err != nil {
		return err
	}
	return d.port.WriteReg(xpu.RegDoorbell, 1)
}

// Kick recovers a stalled submission: it re-reads the device's head,
// re-runs the pre-doorbell hook for every not-yet-consumed slot (ccAI's
// ring MAC records are one-shot, so a re-fetch after a lost doorbell
// needs fresh ones), rewrites the tail register and rings the doorbell
// again. Safe when nothing is pending — the device ignores a doorbell
// with head == tail.
func (d *Driver) Kick() error {
	sp := d.obs.tracer.Begin(obsv.TrackDriver, "kick", obsv.U64("tail", d.tail))
	defer sp.End()
	d.obs.kicks.Inc()
	head, err := d.Head()
	if err != nil {
		return fmt.Errorf("tvm: kick: %w", err)
	}
	if d.preDoorbell != nil && head < d.tail {
		chunks := make([]uint32, 0, d.tail-head)
		for i := head; i < d.tail; i++ {
			chunks = append(chunks, uint32(i%d.ringSize))
		}
		if err := d.preDoorbell(chunks); err != nil {
			return fmt.Errorf("tvm: kick: %w", err)
		}
	}
	if err := d.port.WriteReg(xpu.RegCmdTail, d.tail); err != nil {
		return err
	}
	return d.port.WriteReg(xpu.RegDoorbell, 1)
}

// Head reads the device's consumption index.
func (d *Driver) Head() (uint64, error) { return d.port.ReadReg(xpu.RegCmdHead) }

// Status reads the device status register.
func (d *Driver) Status() (uint64, error) { return d.port.ReadReg(xpu.RegStatus) }

// IntStatus reads pending interrupt causes.
func (d *Driver) IntStatus() (uint64, error) { return d.port.ReadReg(xpu.RegIntStatus) }

// AckInterrupt clears interrupt causes (write-1-to-clear).
func (d *Driver) AckInterrupt(mask uint64) error {
	return d.port.WriteReg(xpu.RegIntStatus, mask)
}

// Reset issues a device reset of the given kind.
func (d *Driver) Reset(kind uint64) error { return d.port.WriteReg(xpu.RegReset, kind) }

// Tail reports the driver-side production index.
func (d *Driver) Tail() uint64 { return d.tail }
