package tvm

import (
	"encoding/binary"
	"testing"

	"ccai/internal/mem"
	"ccai/internal/pcie"
	"ccai/internal/xpu"
)

func newGuestWithDevice(t *testing.T) (*Guest, *xpu.Device, *pcie.Bus) {
	t.Helper()
	g, err := NewGuest(pcie.MakeID(0, 1, 0), 0x1000_0000, 16<<20, 0x8000_0000, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	bus := pcie.NewBus("host")
	dev := xpu.NewDevice(xpu.A100, pcie.MakeID(2, 0, 0), 0xd000_0000, 1<<16)
	bus.Attach(dev)
	if err := bus.Claim(dev.DeviceID(), dev.BAR0()); err != nil {
		t.Fatal(err)
	}
	// Bridge for device DMA into guest shared memory.
	bridge := &testBridge{space: g.Space}
	bus.Attach(bridge)
	if err := bus.Claim(bridge.DeviceID(), pcie.Region{Base: 0x8000_0000, Size: 16 << 20, Name: "shared"}); err != nil {
		t.Fatal(err)
	}
	dev.SetUpstream(func(p *pcie.Packet) *pcie.Packet { return bus.Route(p) })
	return g, dev, bus
}

type testBridge struct{ space *mem.Space }

func (b *testBridge) DeviceID() pcie.ID { return pcie.MakeID(0, 0, 0) }
func (b *testBridge) Handle(p *pcie.Packet) *pcie.Packet {
	switch p.Kind {
	case pcie.MRd:
		data, err := b.space.Read(p.Address, int64(p.Length))
		if err != nil {
			return pcie.NewCompletion(p, b.DeviceID(), pcie.CplUR, nil)
		}
		return pcie.NewCompletion(p, b.DeviceID(), pcie.CplSuccess, data)
	case pcie.MWr:
		_ = b.space.Write(p.Address, p.Payload)
	}
	return nil
}

func newTestDriver(t *testing.T) (*Driver, *Guest, *xpu.Device) {
	t.Helper()
	g, dev, bus := newGuestWithDevice(t)
	ring, err := g.Space.Alloc(SharedRegion, "ring", 32*xpu.CmdSize)
	if err != nil {
		t.Fatal(err)
	}
	port := &DirectPort{ID: g.ID, Bus: bus, BAR0: 0xd000_0000}
	d, err := NewDriver(port, g.Space, ring, 32)
	if err != nil {
		t.Fatal(err)
	}
	return d, g, dev
}

func TestGuestRegions(t *testing.T) {
	g, err := NewGuest(pcie.MakeID(0, 1, 0), 0x1000, 0x10000, 0x100000, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Space.Alloc(PrivateRegion, "p", 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Space.Alloc(SharedRegion, "s", 4096); err != nil {
		t.Fatal(err)
	}
	// Overlapping windows rejected.
	if _, err := NewGuest(pcie.MakeID(0, 1, 0), 0x1000, 0x10000, 0x2000, 0x10000); err == nil {
		t.Fatal("overlapping guest windows accepted")
	}
}

func TestDirectPortReadWrite(t *testing.T) {
	_, dev, bus := newGuestWithDevice(t)
	port := &DirectPort{ID: pcie.MakeID(0, 1, 0), Bus: bus, BAR0: 0xd000_0000}
	if err := port.WriteReg(xpu.RegScratch, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := port.ReadReg(xpu.RegScratch)
	if err != nil || v != 0x1122334455667788 {
		t.Fatalf("ReadReg = %#x, %v", v, err)
	}
	_ = dev
	// Reads outside any claim fail cleanly.
	bad := &DirectPort{ID: pcie.MakeID(0, 1, 0), Bus: bus, BAR0: 0xdead_0000}
	if _, err := bad.ReadReg(0); err == nil {
		t.Fatal("unclaimed read succeeded")
	}
}

func TestDriverBringUpProgramsRing(t *testing.T) {
	d, _, dev := newTestDriver(t)
	_ = d
	// The device's ring registers must match the driver's buffer.
	cpl := dev.Handle(pcie.NewMemRead(pcie.MakeID(0, 1, 0), 0xd000_0000+xpu.RegCmdSize, 8, 0))
	if binary.LittleEndian.Uint64(cpl.Payload) != 32 {
		t.Fatal("ring size not programmed")
	}
}

func TestDriverSubmitExecutes(t *testing.T) {
	d, g, dev := newTestDriver(t)
	src, _ := g.Space.Alloc(SharedRegion, "in", 4096)
	copy(src.Bytes(), []byte("driver path"))
	if err := d.Submit(
		xpu.Command{Op: xpu.OpCopyH2D, Src: src.Base(), Dst: 0, Len: 11},
	); err != nil {
		t.Fatal(err)
	}
	if string(dev.DevMem()[:11]) != "driver path" {
		t.Fatalf("device memory = %q", dev.DevMem()[:11])
	}
	head, err := d.Head()
	if err != nil || head != 1 {
		t.Fatalf("head = %d, %v", head, err)
	}
	if d.Tail() != 1 {
		t.Fatalf("tail = %d", d.Tail())
	}
}

func TestDriverRingWraps(t *testing.T) {
	d, _, dev := newTestDriver(t)
	for i := 0; i < 40; i++ { // > 32 entries
		if err := d.Submit(xpu.Command{Op: xpu.OpNop}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	head, _ := d.Head()
	if head != 40 {
		t.Fatalf("head = %d, want 40", head)
	}
	if dev.Faults() != 0 {
		t.Fatalf("faults = %d", dev.Faults())
	}
}

func TestDriverPreDoorbellHookSeesChunks(t *testing.T) {
	d, _, _ := newTestDriver(t)
	var got [][]uint32
	d.SetPreDoorbell(func(chunks []uint32) error {
		got = append(got, append([]uint32(nil), chunks...))
		return nil
	})
	if err := d.Submit(xpu.Command{Op: xpu.OpNop}, xpu.Command{Op: xpu.OpNop}); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(xpu.Command{Op: xpu.OpNop}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || got[0][0] != 0 || got[0][1] != 1 || got[1][0] != 2 {
		t.Fatalf("hook chunks = %v", got)
	}
}

func TestDriverInterruptFlow(t *testing.T) {
	d, _, _ := newTestDriver(t)
	if err := d.Submit(xpu.Command{Op: xpu.OpFence}); err != nil {
		t.Fatal(err)
	}
	st, err := d.IntStatus()
	if err != nil || st&xpu.IntCmdDone == 0 {
		t.Fatalf("int status = %#x, %v", st, err)
	}
	if err := d.AckInterrupt(xpu.IntCmdDone); err != nil {
		t.Fatal(err)
	}
	st, _ = d.IntStatus()
	if st&xpu.IntCmdDone != 0 {
		t.Fatal("ack did not clear")
	}
}

func TestDriverResetRoundTrip(t *testing.T) {
	d, _, dev := newTestDriver(t)
	if err := d.Submit(xpu.Command{Op: xpu.OpNop}); err != nil {
		t.Fatal(err)
	}
	if err := d.Reset(xpu.ResetEnv); err != nil {
		t.Fatal(err)
	}
	if dev.EnvResets() != 1 {
		t.Fatalf("env resets = %d", dev.EnvResets())
	}
}

func TestNewDriverValidatesRingSize(t *testing.T) {
	g, _, bus := newGuestWithDevice(t)
	tiny, _ := g.Space.Alloc(SharedRegion, "tiny", xpu.CmdSize)
	port := &DirectPort{ID: g.ID, Bus: bus, BAR0: 0xd000_0000}
	if _, err := NewDriver(port, g.Space, tiny, 16); err == nil {
		t.Fatal("undersized ring accepted")
	}
}

func TestDriverStatusAndMSI(t *testing.T) {
	d, _, dev := newTestDriver(t)
	st, err := d.Status()
	if err != nil || st&xpu.StatusReady == 0 {
		t.Fatalf("status = %#x, %v", st, err)
	}
	if err := d.ConfigureMSI(0xfee0_0000, 0x99); err != nil {
		t.Fatal(err)
	}
	cpl := dev.Handle(pcie.NewMemRead(pcie.MakeID(0, 1, 0), 0xd000_0000+xpu.RegMSIData, 8, 0))
	if cpl.Payload[0] != 0x99 {
		t.Fatal("MSI data not programmed")
	}
}
