// Package hrot implements ccAI's hardware root of trust: the
// HRoT-Blade (§6), a TPM-compatible trust module on the PCIe-SC board.
// It provides a SHA-256 PCR bank with extend semantics, the secure-boot
// measurement chain over the controller's bitstream and firmware, the
// endorsement/attestation key hierarchy, quote generation for remote
// attestation, and the chassis sealing loop that folds physical-sensor
// status into a PCR.
package hrot

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"ccai/internal/obsv"
)

// PCRCount is the size of the PCR bank.
const PCRCount = 16

// Well-known PCR indices used by the ccAI boot chain.
const (
	// PCRBitstream measures the PCIe-SC bitstream (Packet Filter,
	// Packet Handlers, crypto engines).
	PCRBitstream = 0
	// PCRFirmware measures the HRoT-Blade / controller firmware.
	PCRFirmware = 1
	// PCRPolicy measures the static boot-time Packet Filter policy.
	PCRPolicy = 2
	// PCRXPU measures the attached xPU's firmware identity.
	PCRXPU = 3
	// PCRSealing accumulates chassis physical-sensor status (§6
	// "Sealing").
	PCRSealing = 4
	// PCRAdaptor measures the TVM-side Adaptor module (CPU-side chain).
	PCRAdaptor = 5
)

// Digest is a SHA-256 measurement.
type Digest = [32]byte

// PCRBank is a bank of platform configuration registers with
// TPM-style extend-only semantics.
type PCRBank struct {
	regs [PCRCount]Digest
	// log records every extend for audit (the TPM event log analogue).
	log []ExtendEvent
}

// ExtendEvent is one entry of the measurement log.
type ExtendEvent struct {
	Index int
	Value Digest
	Desc  string
}

// Extend folds a measurement into PCR[i]: new = H(old || value).
func (b *PCRBank) Extend(i int, value Digest, desc string) error {
	if i < 0 || i >= PCRCount {
		return fmt.Errorf("hrot: PCR index %d out of range", i)
	}
	h := sha256.New()
	h.Write(b.regs[i][:])
	h.Write(value[:])
	copy(b.regs[i][:], h.Sum(nil))
	b.log = append(b.log, ExtendEvent{Index: i, Value: value, Desc: desc})
	return nil
}

// Read returns PCR[i]'s current value.
func (b *PCRBank) Read(i int) Digest { return b.regs[i] }

// Log returns the measurement log.
func (b *PCRBank) Log() []ExtendEvent { return b.log }

// Snapshot serializes selected PCRs for signing.
func (b *PCRBank) Snapshot(sel []int) []byte {
	out := make([]byte, 0, len(sel)*(4+32))
	for _, i := range sel {
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		out = append(out, idx[:]...)
		out = append(out, b.regs[i][:]...)
	}
	return out
}

// Blade is the HRoT-Blade trust module.
type Blade struct {
	pcrs PCRBank
	// ek is the endorsement key, pre-installed by the vendor during
	// manufacturing; ak is the attestation key, generated at boot.
	ek *ecdsa.PrivateKey
	ak *ecdsa.PrivateKey
	// ekCert is the vendor CA's signature over the EK public key.
	ekCert []byte
	// akCert is the EK's endorsement of the AK.
	akCert []byte
	booted bool

	sensors []Sensor
	hub     *obsv.Hub
}

// SetObserver wires the blade into the observability hub so
// out-of-envelope sensor polls surface as seal-sensor audit events.
func (b *Blade) SetObserver(h *obsv.Hub) { b.hub = h }

// Sensor is a chassis physical-integrity sensor polled over the I²C
// bus (pressure, temperature, intrusion switch).
type Sensor interface {
	Name() string
	// Sample reports the current reading and whether it is within the
	// sealed envelope.
	Sample() (value float64, ok bool)
}

// NewBlade manufactures a blade: the vendor generates and certifies the
// EK with its root CA.
func NewBlade(vendorCA *ecdsa.PrivateKey) (*Blade, error) {
	ek, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	b := &Blade{ek: ek}
	b.ekCert, err = signPub(vendorCA, &ek.PublicKey)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func signPub(priv *ecdsa.PrivateKey, pub *ecdsa.PublicKey) ([]byte, error) {
	sum := sha256.Sum256(elliptic.Marshal(elliptic.P256(), pub.X, pub.Y))
	return ecdsa.SignASN1(rand.Reader, priv, sum[:])
}

// VerifyPub checks a signature binding pub to the signer.
func VerifyPub(signer *ecdsa.PublicKey, pub *ecdsa.PublicKey, cert []byte) bool {
	sum := sha256.Sum256(elliptic.Marshal(elliptic.P256(), pub.X, pub.Y))
	return ecdsa.VerifyASN1(signer, sum[:], cert)
}

// BootImage is one component measured during secure boot. Encrypted
// bitstreams are decrypted by the blade before measurement (the flash
// holds them sealed); here Content is the decrypted image.
type BootImage struct {
	Name    string
	PCR     int
	Content []byte
	// Signature is the vendor's signature over the content hash;
	// required for the boot to proceed.
	Signature []byte
}

// ErrBootRejected reports a secure-boot verification failure.
var ErrBootRejected = errors.New("hrot: secure boot rejected component")

// SecureBoot measures the component chain in order, verifying each
// vendor signature, extending the matching PCR, and generating the AK.
// Any failure leaves the blade unbooted (fail closed).
func (b *Blade) SecureBoot(vendor *ecdsa.PublicKey, chain []BootImage) error {
	for _, img := range chain {
		sum := sha256.Sum256(img.Content)
		if !ecdsa.VerifyASN1(vendor, sum[:], img.Signature) {
			return fmt.Errorf("%w: %s", ErrBootRejected, img.Name)
		}
		if err := b.pcrs.Extend(img.PCR, sum, img.Name); err != nil {
			return err
		}
	}
	ak, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return err
	}
	b.ak = ak
	if b.akCert, err = signPub(b.ek, &ak.PublicKey); err != nil {
		return err
	}
	b.booted = true
	return nil
}

// SignImage is the vendor-side helper producing a BootImage signature.
func SignImage(vendor *ecdsa.PrivateKey, content []byte) ([]byte, error) {
	sum := sha256.Sum256(content)
	return ecdsa.SignASN1(rand.Reader, vendor, sum[:])
}

// Booted reports whether secure boot completed.
func (b *Blade) Booted() bool { return b.booted }

// PCRs exposes the bank (read/extend) for platform measurement hooks.
func (b *Blade) PCRs() *PCRBank { return &b.pcrs }

// EKPub/AKPub expose the public halves for certificate validation.
func (b *Blade) EKPub() *ecdsa.PublicKey { return &b.ek.PublicKey }

// AKPub returns the attestation public key (nil before boot).
func (b *Blade) AKPub() *ecdsa.PublicKey {
	if b.ak == nil {
		return nil
	}
	return &b.ak.PublicKey
}

// EKCert returns the vendor CA's endorsement certificate.
func (b *Blade) EKCert() []byte { return b.ekCert }

// AKCert returns the EK's signature over the AK.
func (b *Blade) AKCert() []byte { return b.akCert }

// Quote is a signed attestation report r = (nonce, PCRs, S(PCRs)) per
// Figure 6.
type Quote struct {
	Nonce    []byte
	Selected []int
	PCRs     []byte // Snapshot(Selected)
	SigPCRs  []byte // S(PCRs) = Sign_AK(PCRs)
	SigR     []byte // S(r)    = Sign_AK(nonce || PCRs || S(PCRs))
}

// ErrNotBooted reports quote requests before secure boot.
var ErrNotBooted = errors.New("hrot: blade not booted")

// GenerateQuote signs the selected PCRs and the full report with the
// AK (steps ③–④ of Figure 6, blade side).
func (b *Blade) GenerateQuote(nonce []byte, sel []int) (*Quote, error) {
	if !b.booted {
		return nil, ErrNotBooted
	}
	snap := b.pcrs.Snapshot(sel)
	sumP := sha256.Sum256(snap)
	sigP, err := ecdsa.SignASN1(rand.Reader, b.ak, sumP[:])
	if err != nil {
		return nil, err
	}
	r := reportBytes(nonce, snap, sigP)
	sumR := sha256.Sum256(r)
	sigR, err := ecdsa.SignASN1(rand.Reader, b.ak, sumR[:])
	if err != nil {
		return nil, err
	}
	return &Quote{Nonce: append([]byte(nil), nonce...), Selected: append([]int(nil), sel...), PCRs: snap, SigPCRs: sigP, SigR: sigR}, nil
}

func reportBytes(nonce, snap, sigP []byte) []byte {
	out := make([]byte, 0, len(nonce)+len(snap)+len(sigP))
	out = append(out, nonce...)
	out = append(out, snap...)
	out = append(out, sigP...)
	return out
}

// VerifyQuote validates a quote against an attestation public key,
// the expected nonce, and expected PCR values (verifier side of
// Figure 6 step ④).
func VerifyQuote(ak *ecdsa.PublicKey, q *Quote, nonce []byte, expected []byte) error {
	if string(q.Nonce) != string(nonce) {
		return errors.New("hrot: nonce mismatch (replayed report?)")
	}
	sumP := sha256.Sum256(q.PCRs)
	if !ecdsa.VerifyASN1(ak, sumP[:], q.SigPCRs) {
		return errors.New("hrot: PCR signature invalid")
	}
	sumR := sha256.Sum256(reportBytes(q.Nonce, q.PCRs, q.SigPCRs))
	if !ecdsa.VerifyASN1(ak, sumR[:], q.SigR) {
		return errors.New("hrot: report signature invalid")
	}
	if expected != nil && string(q.PCRs) != string(expected) {
		return errors.New("hrot: PCR values do not match expected platform state")
	}
	return nil
}

// --- sealing -----------------------------------------------------------------

// AddSensor registers a chassis sensor on the I²C poll loop.
func (b *Blade) AddSensor(s Sensor) { b.sensors = append(b.sensors, s) }

// PollSensors samples every sensor and extends PCRSealing with the
// combined status. A healthy poll extends a well-known "intact" record
// (keeping the PCR on the expected trajectory); any out-of-envelope
// reading extends a tamper record, permanently diverging the PCR so the
// next attestation fails (§6 "Sealing").
func (b *Blade) PollSensors() (intact bool) {
	intact = true
	h := sha256.New()
	for _, s := range b.sensors {
		_, ok := s.Sample()
		if !ok {
			intact = false
			fmt.Fprintf(h, "TAMPER:%s;", s.Name())
			b.hub.Eventf(obsv.EvSealSensor, "", "sensor=%s", s.Name())
		}
	}
	var rec Digest
	if intact {
		rec = sha256.Sum256([]byte("chassis-intact"))
	} else {
		copy(rec[:], h.Sum(nil))
	}
	_ = b.pcrs.Extend(PCRSealing, rec, "sensor-poll")
	return intact
}

// IntactSealingPCR computes the expected PCRSealing value after n
// healthy polls (what the verifier whitelists).
func IntactSealingPCR(n int) Digest {
	var pcr Digest
	rec := sha256.Sum256([]byte("chassis-intact"))
	for i := 0; i < n; i++ {
		h := sha256.New()
		h.Write(pcr[:])
		h.Write(rec[:])
		copy(pcr[:], h.Sum(nil))
	}
	return pcr
}
