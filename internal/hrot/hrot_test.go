package hrot

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"testing"
)

func newCA(t *testing.T) *ecdsa.PrivateKey {
	t.Helper()
	ca, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func bootChain(t *testing.T, vendor *ecdsa.PrivateKey) []BootImage {
	t.Helper()
	var chain []BootImage
	images := []struct {
		name string
		pcr  int
		data string
	}{
		{"packet-filter-bitstream", PCRBitstream, "bitstream v1: L1/L2 tables, handlers, AES-GCM-SHA engine"},
		{"hrot-firmware", PCRFirmware, "hrot-blade fw 1.0"},
		{"boot-policy", PCRPolicy, "static L1/L2 rules"},
		{"xpu-firmware", PCRXPU, "A100 fw 550.90.07"},
	}
	for _, im := range images {
		sig, err := SignImage(vendor, []byte(im.data))
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, BootImage{Name: im.name, PCR: im.pcr, Content: []byte(im.data), Signature: sig})
	}
	return chain
}

func bootedBlade(t *testing.T) (*Blade, *ecdsa.PrivateKey) {
	t.Helper()
	ca := newCA(t)
	b, err := NewBlade(ca)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SecureBoot(&ca.PublicKey, bootChain(t, ca)); err != nil {
		t.Fatal(err)
	}
	return b, ca
}

func TestPCRExtendSemantics(t *testing.T) {
	var bank PCRBank
	zero := bank.Read(0)
	v := sha256.Sum256([]byte("m1"))
	if err := bank.Extend(0, v, "m1"); err != nil {
		t.Fatal(err)
	}
	once := bank.Read(0)
	if once == zero {
		t.Fatal("extend did not change PCR")
	}
	// Extending with the same value again changes it further (chaining).
	if err := bank.Extend(0, v, "m1-again"); err != nil {
		t.Fatal(err)
	}
	if bank.Read(0) == once {
		t.Fatal("extend not chained")
	}
	// Order matters.
	var a, b PCRBank
	v2 := sha256.Sum256([]byte("m2"))
	_ = a.Extend(1, v, "x")
	_ = a.Extend(1, v2, "y")
	_ = b.Extend(1, v2, "y")
	_ = b.Extend(1, v, "x")
	if a.Read(1) == b.Read(1) {
		t.Fatal("extend order-insensitive")
	}
	if err := bank.Extend(PCRCount, v, "oob"); err == nil {
		t.Fatal("out-of-range PCR accepted")
	}
	if len(bank.Log()) != 2 {
		t.Fatalf("log entries = %d", len(bank.Log()))
	}
}

func TestSecureBootHappyPath(t *testing.T) {
	b, _ := bootedBlade(t)
	if !b.Booted() {
		t.Fatal("blade not booted")
	}
	if b.AKPub() == nil {
		t.Fatal("AK not generated at boot")
	}
	var zero Digest
	for _, pcr := range []int{PCRBitstream, PCRFirmware, PCRPolicy, PCRXPU} {
		if b.PCRs().Read(pcr) == zero {
			t.Fatalf("PCR %d unmeasured", pcr)
		}
	}
}

func TestSecureBootRejectsTamperedImage(t *testing.T) {
	ca := newCA(t)
	b, err := NewBlade(ca)
	if err != nil {
		t.Fatal(err)
	}
	chain := bootChain(t, ca)
	chain[0].Content = append(chain[0].Content, []byte(" backdoor")...)
	if err := b.SecureBoot(&ca.PublicKey, chain); err == nil {
		t.Fatal("tampered bitstream booted")
	}
	if b.Booted() {
		t.Fatal("blade booted after rejection")
	}
	if _, err := b.GenerateQuote([]byte("n"), []int{0}); err == nil {
		t.Fatal("unbooted blade produced a quote")
	}
}

func TestSecureBootRejectsWrongVendor(t *testing.T) {
	ca := newCA(t)
	mallory := newCA(t)
	b, _ := NewBlade(ca)
	chain := bootChain(t, mallory) // signed by the wrong key
	if err := b.SecureBoot(&ca.PublicKey, chain); err == nil {
		t.Fatal("foreign-signed firmware booted")
	}
}

func TestTamperedFirmwareChangesPCR(t *testing.T) {
	ca := newCA(t)
	good, _ := NewBlade(ca)
	if err := good.SecureBoot(&ca.PublicKey, bootChain(t, ca)); err != nil {
		t.Fatal(err)
	}
	// A different (but validly signed) firmware produces different PCRs
	// — the verifier's golden-value check catches it.
	evil, _ := NewBlade(ca)
	chain := bootChain(t, ca)
	evilFW := []byte("hrot-blade fw 1.0-evil")
	sig, _ := SignImage(ca, evilFW)
	chain[1] = BootImage{Name: "hrot-firmware", PCR: PCRFirmware, Content: evilFW, Signature: sig}
	if err := evil.SecureBoot(&ca.PublicKey, chain); err != nil {
		t.Fatal(err)
	}
	if good.PCRs().Read(PCRFirmware) == evil.PCRs().Read(PCRFirmware) {
		t.Fatal("different firmware measured equal")
	}
}

func TestQuoteVerifyHappyPath(t *testing.T) {
	b, _ := bootedBlade(t)
	nonce := []byte("fresh-nonce-123")
	sel := []int{PCRBitstream, PCRFirmware}
	q, err := b.GenerateQuote(nonce, sel)
	if err != nil {
		t.Fatal(err)
	}
	expected := b.PCRs().Snapshot(sel)
	if err := VerifyQuote(b.AKPub(), q, nonce, expected); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteRejectsWrongNonce(t *testing.T) {
	b, _ := bootedBlade(t)
	q, _ := b.GenerateQuote([]byte("nonce-A"), []int{0})
	if err := VerifyQuote(b.AKPub(), q, []byte("nonce-B"), nil); err == nil {
		t.Fatal("stale nonce accepted")
	}
}

func TestQuoteRejectsTamperedPCRs(t *testing.T) {
	b, _ := bootedBlade(t)
	nonce := []byte("n")
	q, _ := b.GenerateQuote(nonce, []int{0})
	q.PCRs[5] ^= 1
	if err := VerifyQuote(b.AKPub(), q, nonce, nil); err == nil {
		t.Fatal("tampered PCR snapshot accepted")
	}
}

func TestQuoteRejectsForeignKey(t *testing.T) {
	b, _ := bootedBlade(t)
	other, _ := bootedBlade(t)
	nonce := []byte("n")
	q, _ := b.GenerateQuote(nonce, []int{0})
	if err := VerifyQuote(other.AKPub(), q, nonce, nil); err == nil {
		t.Fatal("quote verified under foreign AK")
	}
}

func TestQuoteRejectsUnexpectedPCRValues(t *testing.T) {
	b, _ := bootedBlade(t)
	nonce := []byte("n")
	sel := []int{PCRBitstream}
	q, _ := b.GenerateQuote(nonce, sel)
	wrong := make([]byte, len(q.PCRs))
	if err := VerifyQuote(b.AKPub(), q, nonce, wrong); err == nil {
		t.Fatal("unexpected platform state accepted")
	}
}

func TestCertificateHelpers(t *testing.T) {
	b, ca := bootedBlade(t)
	if !VerifyPub(&ca.PublicKey, b.EKPub(), b.EKCert()) {
		t.Fatal("EK cert invalid")
	}
	if !VerifyPub(b.EKPub(), b.AKPub(), b.AKCert()) {
		t.Fatal("AK cert invalid")
	}
	mallory := newCA(t)
	if VerifyPub(&mallory.PublicKey, b.EKPub(), b.EKCert()) {
		t.Fatal("EK cert verified under wrong CA")
	}
}

// fakeSensor implements Sensor for sealing tests.
type fakeSensor struct {
	name string
	ok   bool
}

func (f *fakeSensor) Name() string            { return f.name }
func (f *fakeSensor) Sample() (float64, bool) { return 1.0, f.ok }

func TestSealingIntactTrajectory(t *testing.T) {
	b, _ := bootedBlade(t)
	b.AddSensor(&fakeSensor{name: "pressure", ok: true})
	b.AddSensor(&fakeSensor{name: "temperature", ok: true})
	for i := 0; i < 3; i++ {
		if !b.PollSensors() {
			t.Fatal("healthy sensors reported tamper")
		}
	}
	if b.PCRs().Read(PCRSealing) != IntactSealingPCR(3) {
		t.Fatal("sealing PCR off the intact trajectory")
	}
}

func TestSealingTamperDivergesPCR(t *testing.T) {
	b, _ := bootedBlade(t)
	lid := &fakeSensor{name: "chassis-lid", ok: true}
	b.AddSensor(lid)
	b.PollSensors()
	lid.ok = false // adversary opens the chassis
	if b.PollSensors() {
		t.Fatal("tamper not detected")
	}
	lid.ok = true // close it again — too late
	b.PollSensors()
	if b.PCRs().Read(PCRSealing) == IntactSealingPCR(3) {
		t.Fatal("sealing PCR recovered after physical tamper")
	}
}
