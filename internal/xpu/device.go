package xpu

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ccai/internal/arena"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
)

// Register offsets inside BAR0. The layout is deliberately generic —
// every device in the fleet exposes the same functional surface, which
// is what lets one unmodified "native driver" model and one PCIe-SC rule
// set drive all of them.
const (
	RegID        = 0x000 // RO: device/vendor identity
	RegStatus    = 0x008 // RO: status bits
	RegDoorbell  = 0x010 // WO: ring to fetch commands
	RegCmdBase   = 0x018 // RW: host address of command ring
	RegCmdSize   = 0x020 // RW: ring entry count
	RegCmdHead   = 0x028 // RO: device consumption index
	RegCmdTail   = 0x030 // RW: driver production index
	RegIntStatus = 0x038 // RW1C: interrupt cause bits
	RegMSIAddr   = 0x040 // RW: MSI target address
	RegMSIData   = 0x048 // RW: MSI payload
	RegPageTable = 0x050 // RW: device page table base (guarded by ccAI)
	RegReset     = 0x058 // WO: soft reset / environment clean
	RegFWVersion = 0x060 // RO: firmware version hash prefix
	// RegAttestNonce/RegAttestResp implement the §6 software-based
	// attestation fallback for xPUs without their own HRoT: the
	// PCIe-SC writes a challenge nonce, the device firmware computes a
	// digest over (firmware identity ‖ nonce), the SC compares against
	// the measurement it holds for the golden firmware.
	RegAttestNonce = 0x068 // WO: challenge nonce
	RegAttestResp  = 0x070 // RO: response digest
	RegScratch     = 0x100 // RW: driver scratch area (64 bytes)
	BAR0Size       = 0x1000
)

// Status bits.
const (
	StatusReady = 1 << 0
	StatusBusy  = 1 << 1
	StatusFault = 1 << 2
)

// Interrupt cause bits.
const (
	IntCmdDone = 1 << 0
	IntFault   = 1 << 1
)

// Reset command values for RegReset.
const (
	ResetSoft = 1 // clear queues + scratch
	ResetEnv  = 2 // environment clean: memory, registers, caches/TLB
	ResetCold = 3 // full cold boot
)

// Command opcodes. The command ring lives in host memory; each entry is
// 64 bytes.
const (
	OpNop = iota
	// OpCopyH2D copies Src (host) -> Dst (device), Len bytes.
	OpCopyH2D
	// OpCopyD2H copies Src (device) -> Dst (host), Len bytes.
	OpCopyD2H
	// OpKernel runs a compute kernel: Param selects the kernel, Src/Dst
	// are device buffers.
	OpKernel
	// OpFence raises IntCmdDone when all prior commands are complete.
	OpFence
)

// Kernel identifiers for the functional compute path (correctness
// tests): real LLM math is the timing model's job, but small reference
// kernels prove data actually flows end to end through ccAI.
const (
	KernelVecAddConst = 1 // dst[i] = src[i] + param byte-wise
	KernelChecksum    = 2 // dst[0:8] = FNV-1a(src)
	KernelXORMask     = 3 // dst[i] = src[i] ^ param
	// KernelMatVecRelu computes an int8 fully-connected layer:
	// dst[r] = relu(Σ_c W[r,c]·x[c] >> 6) for an RxC weight matrix
	// followed by the C-element input vector in src. Param's low 16
	// bits carry C; R is derived from Len (the output length). This is
	// the functional stand-in for real model math: small neural
	// networks run byte-for-byte through the protected path.
	KernelMatVecRelu = 4
)

// CmdSize is the size of one ring entry in bytes.
const CmdSize = 64

// Command is one ring entry.
type Command struct {
	Op    uint32
	Param uint32
	Src   uint64
	Dst   uint64
	Len   uint64
}

// Marshal encodes a command into a 64-byte ring entry.
func (c Command) Marshal() []byte {
	buf := make([]byte, CmdSize)
	binary.LittleEndian.PutUint32(buf[0:], c.Op)
	binary.LittleEndian.PutUint32(buf[4:], c.Param)
	binary.LittleEndian.PutUint64(buf[8:], c.Src)
	binary.LittleEndian.PutUint64(buf[16:], c.Dst)
	binary.LittleEndian.PutUint64(buf[24:], c.Len)
	return buf
}

// UnmarshalCommand decodes a ring entry.
func UnmarshalCommand(buf []byte) (Command, error) {
	if len(buf) < CmdSize {
		return Command{}, fmt.Errorf("xpu: short command entry (%d bytes)", len(buf))
	}
	return Command{
		Op:    binary.LittleEndian.Uint32(buf[0:]),
		Param: binary.LittleEndian.Uint32(buf[4:]),
		Src:   binary.LittleEndian.Uint64(buf[8:]),
		Dst:   binary.LittleEndian.Uint64(buf[16:]),
		Len:   binary.LittleEndian.Uint64(buf[24:]),
	}, nil
}

// Upstream is the device's path toward the host: DMA requests and MSI
// writes leave through it. In a ccAI deployment this is the PCIe-SC's
// internal bus; in a vanilla deployment it is the host bus directly.
type Upstream func(p *pcie.Packet) *pcie.Packet

// Fault-injection points a FaultHook is consulted at. These model
// benign device failures — firmware scheduler stalls and interrupt
// delivery loss — not adversarial behaviour; the security invariants
// must hold regardless.
const (
	// FaultDoorbell: a true return makes the device ignore this
	// doorbell ring (command-queue hang). The driver's stall-recovery
	// path re-rings it.
	FaultDoorbell = "doorbell"
	// FaultMSI: a true return loses the MSI write for an interrupt the
	// device just latched in RegIntStatus. Drivers that poll (or
	// re-read IntStatus on timeout) recover.
	FaultMSI = "msi"
)

// FaultHook is consulted at each fault point; returning true makes the
// fault fire. A nil hook means a perfectly reliable device.
type FaultHook func(point string) bool

// Device is the functional accelerator model. One mutex serializes all
// packet handling: each tenant owns its own Device, so the lock is
// uncontended in steady state and simply makes cross-goroutine
// interleavings (teardown vs. in-flight MMIO) safe. The lock IS held
// across upstream DMA — no upstream path routes back into the same
// device, so this cannot self-deadlock.
type Device struct {
	mu      sync.Mutex
	profile Profile
	id      pcie.ID
	cfg     *pcie.ConfigSpace
	bar0    uint64
	regs    map[uint64]uint64
	scratch [64]byte

	// Device memory: a byte arena sized far below MemBytes for the
	// functional path (bulk tensors never materialize here).
	devMem []byte

	upstream Upstream

	// cplRecycle, when non-nil and returning true, authorizes returning
	// upstream completion payloads to the shared arena after their bytes
	// are copied out: the device is the payload's terminal consumer, and
	// the hook (wired by the platform to the upstream bus's Untapped
	// check, evaluated AFTER the route returned) proves no tap retained
	// the packet. wrRecycle likewise authorizes staging outbound MWr
	// payloads from the arena instead of the never-reused slab; it is
	// wired only when the upstream consumer takes ownership of the bytes
	// and returns them to the arena itself (the protected-mode SC's
	// write-span pipeline). Nil hooks preserve the allocate-and-forget
	// behavior, which is the only safe choice on a tapped bus.
	cplRecycle func() bool
	wrRecycle  func() bool

	faultHook FaultHook

	// Execution log for tests and the environment guard.
	executed   []Command
	faults     int
	coldBoots  int
	envResets  int
	hangs      int
	msiDropped int

	// slab/pkts bump-allocate DMA payloads and TLP structs: one heap
	// allocation per block instead of one per 256-byte chunk. Carved
	// memory is never recycled, so handing it to buses whose taps retain
	// packets is as safe as a fresh make.
	slab arena.Slab
	pkts pcie.PacketArena

	obs deviceObs
}

// deviceObs caches the device's observability handles; the zero value
// is the uninstrumented state.
type deviceObs struct {
	tracer     *obsv.Tracer
	doorbells  *obsv.Counter
	hangs      *obsv.Counter
	msiDropped *obsv.Counter
	faults     *obsv.Counter
	commands   *obsv.Counter
}

// SetObserver instruments the device model; a nil hub clears it.
func (d *Device) SetObserver(h *obsv.Hub) {
	if h == nil {
		d.obs = deviceObs{}
		return
	}
	reg := h.Reg()
	d.obs = deviceObs{
		tracer:     h.T(),
		doorbells:  reg.Counter("xpu.doorbells"),
		hangs:      reg.Counter("xpu.doorbell_hangs"),
		msiDropped: reg.Counter("xpu.msi_dropped"),
		faults:     reg.Counter("xpu.faults"),
		commands:   reg.Counter("xpu.commands"),
	}
}

// opName renders a command opcode as a span attribute value.
func opName(op uint32) string {
	switch op {
	case OpNop:
		return "nop"
	case OpCopyH2D:
		return "copy_h2d"
	case OpCopyD2H:
		return "copy_d2h"
	case OpKernel:
		return "kernel"
	case OpFence:
		return "fence"
	}
	return fmt.Sprintf("op%d", op)
}

// NewDevice instantiates a device model at the given bus ID with BAR0
// mapped at bar0.
func NewDevice(profile Profile, id pcie.ID, bar0 uint64, functionalMem int) *Device {
	if functionalMem <= 0 {
		functionalMem = 1 << 20
	}
	d := &Device{
		profile: profile,
		id:      id,
		cfg:     pcie.NewConfigSpace(profile.VendorID, profile.DeviceID, 0x030200),
		bar0:    bar0,
		regs:    make(map[uint64]uint64),
		devMem:  make([]byte, functionalMem),
	}
	d.cfg.SetBAR(0, bar0)
	d.cfg.EnableMaster(true)
	d.regs[RegID] = uint64(profile.DeviceID)<<16 | uint64(profile.VendorID)
	d.regs[RegStatus] = StatusReady
	d.regs[RegFWVersion] = fwHash(profile.FirmwareVersion)
	return d
}

// AttestDigest is the challenge-response function of the software
// attestation protocol: a keyless digest over the firmware identity
// and the fresh nonce. Both the device firmware and the verifier (the
// PCIe-SC, which measured the golden firmware at secure boot) compute
// it independently.
func AttestDigest(firmware string, nonce uint64) uint64 {
	h := fwHash(firmware)
	for i := 0; i < 8; i++ {
		h ^= (nonce >> (8 * i)) & 0xff
		h *= 0x100000001b3
	}
	return h
}

func fwHash(v string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= 0x100000001b3
	}
	return h
}

// Profile reports the device's performance profile.
func (d *Device) Profile() Profile { return d.profile }

// DeviceID implements pcie.Endpoint.
func (d *Device) DeviceID() pcie.ID { return d.id }

// Config exposes the device's configuration space.
func (d *Device) Config() *pcie.ConfigSpace { return d.cfg }

// BAR0 reports the device's register window.
func (d *Device) BAR0() pcie.Region {
	return pcie.Region{Base: d.bar0, Size: BAR0Size, Name: d.profile.Name + "/bar0"}
}

// SetUpstream wires the device's host-facing path.
func (d *Device) SetUpstream(u Upstream) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.upstream = u
}

// SetPayloadRecycling wires the arena-recycling gates for DMA payloads:
// cpl authorizes pooling upstream completion payloads once copied out,
// wr authorizes staging outbound MWr payloads from the arena (only
// sound when the upstream consumer owns and recycles them). Both hooks
// are consulted per transfer, so a tap installed mid-run shuts the
// recycling down from that packet on (Bus.Untapped is sticky).
func (d *Device) SetPayloadRecycling(cpl, wr func() bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cplRecycle, d.wrRecycle = cpl, wr
}

// SetFaultHook wires the benign-failure injection layer (nil clears).
func (d *Device) SetFaultHook(h FaultHook) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faultHook = h
}

// Hangs reports doorbell rings the device swallowed under fault.
func (d *Device) Hangs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hangs
}

// MSIDropped reports interrupts whose MSI write was lost under fault.
func (d *Device) MSIDropped() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.msiDropped
}

// DevMem exposes functional device memory for test assertions; read it
// only while the device is quiescent.
func (d *Device) DevMem() []byte { return d.devMem }

// Executed reports commands completed since the last reset.
func (d *Device) Executed() []Command {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Command(nil), d.executed...)
}

// ColdBoots reports how many cold resets the device performed.
func (d *Device) ColdBoots() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.coldBoots
}

// EnvResets reports soft environment cleans performed.
func (d *Device) EnvResets() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.envResets
}

// Handle implements pcie.Endpoint for MMIO and config traffic.
func (d *Device) Handle(p *pcie.Packet) *pcie.Packet {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch p.Kind {
	case pcie.CfgRd:
		v := d.cfg.Read32(uint16(p.Address))
		buf := make([]byte, 4)
		binary.LittleEndian.PutUint32(buf, v)
		return pcie.NewCompletion(p, d.id, pcie.CplSuccess, buf)
	case pcie.CfgWr:
		if len(p.Payload) >= 4 {
			d.cfg.Write32(uint16(p.Address), binary.LittleEndian.Uint32(p.Payload))
		}
		return pcie.NewCompletion(p, d.id, pcie.CplSuccess, nil)
	case pcie.MRd:
		return d.mmioRead(p)
	case pcie.MWr:
		d.mmioWrite(p)
		return nil
	case pcie.Msg, pcie.MsgD:
		return nil // power management etc.: absorbed
	}
	return pcie.NewCompletion(p, d.id, pcie.CplUR, nil)
}

func (d *Device) mmioRead(p *pcie.Packet) *pcie.Packet {
	off := p.Address - d.bar0
	if off >= BAR0Size {
		return pcie.NewCompletion(p, d.id, pcie.CplUR, nil)
	}
	buf := d.slab.Take(int(p.Length))
	if off >= RegScratch && off < RegScratch+64 {
		copy(buf, d.scratch[off-RegScratch:])
	} else {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], d.regs[off&^7])
		copy(buf, tmp[:])
	}
	// buf is never reused, so the completion takes ownership instead of copying.
	return d.pkts.CompletionOwned(p, d.id, pcie.CplSuccess, buf)
}

func (d *Device) mmioWrite(p *pcie.Packet) {
	off := p.Address - d.bar0
	if off >= BAR0Size || len(p.Payload) == 0 {
		return
	}
	if off >= RegScratch && off < RegScratch+64 {
		copy(d.scratch[off-RegScratch:], p.Payload)
		return
	}
	var tmp [8]byte
	copy(tmp[:], p.Payload)
	v := binary.LittleEndian.Uint64(tmp[:])
	reg := off &^ 7
	switch reg {
	case RegDoorbell:
		d.regs[RegDoorbell] = v
		d.obs.doorbells.Inc()
		if d.faultHook != nil && d.faultHook(FaultDoorbell) {
			d.hangs++ // command queue hang: ring swallowed, no progress
			d.obs.hangs.Inc()
			d.obs.tracer.Instant(obsv.TrackXPU, "doorbell_hang")
			return
		}
		d.pump()
	case RegAttestNonce:
		d.regs[RegAttestNonce] = v
		d.regs[RegAttestResp] = AttestDigest(d.profile.FirmwareVersion, v)
	case RegIntStatus:
		d.regs[RegIntStatus] &^= v // write-1-to-clear
	case RegReset:
		d.reset(v)
	case RegID, RegStatus, RegCmdHead, RegFWVersion, RegAttestResp:
		// read-only: ignore
	default:
		d.regs[reg] = v
	}
}

func (d *Device) reset(kind uint64) {
	switch kind {
	case ResetSoft:
		d.regs[RegCmdHead] = 0
		d.regs[RegCmdTail] = 0
		d.scratch = [64]byte{}
	case ResetEnv:
		if !d.profile.SupportsSoftReset {
			// Devices without soft reset treat this as a cold boot —
			// exactly the environment-guard fallback in §4.2.
			d.reset(ResetCold)
			return
		}
		d.envResets++
		d.wipe()
	case ResetCold:
		d.coldBoots++
		d.wipe()
		d.regs = map[uint64]uint64{
			RegID:        uint64(d.profile.DeviceID)<<16 | uint64(d.profile.VendorID),
			RegStatus:    StatusReady,
			RegFWVersion: fwHash(d.profile.FirmwareVersion),
		}
	}
}

func (d *Device) wipe() {
	for i := range d.devMem {
		d.devMem[i] = 0
	}
	d.scratch = [64]byte{}
	d.executed = nil
	d.regs[RegCmdHead] = 0
	d.regs[RegCmdTail] = 0
	d.regs[RegPageTable] = 0
}

// pump drains the command ring: DMA-read each pending entry from host
// memory, execute it, raise completion.
func (d *Device) pump() {
	if d.upstream == nil {
		d.fault()
		return
	}
	base := d.regs[RegCmdBase]
	size := d.regs[RegCmdSize]
	if size == 0 || size > 4096 {
		d.fault()
		return
	}
	head := d.regs[RegCmdHead]
	tail := d.regs[RegCmdTail]
	sp := d.obs.tracer.Begin(obsv.TrackXPU, "pump",
		obsv.U64("head", head), obsv.U64("tail", tail))
	defer sp.End()
	for head != tail {
		entryAddr := base + (head%size)*CmdSize
		data, ok := d.dmaRead(entryAddr, CmdSize)
		if !ok {
			d.fault()
			return
		}
		cmd, err := UnmarshalCommand(data)
		if err != nil {
			d.fault()
			return
		}
		if !d.execute(cmd) {
			d.fault()
			return
		}
		head++
		d.regs[RegCmdHead] = head
	}
	d.raiseInterrupt(IntCmdDone)
}

func (d *Device) fault() {
	d.faults++
	d.obs.faults.Inc()
	d.obs.tracer.Instant(obsv.TrackXPU, "device_fault")
	d.regs[RegStatus] |= StatusFault
	d.raiseInterrupt(IntFault)
}

// Faults reports command/DMA failures observed.
func (d *Device) Faults() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

func (d *Device) raiseInterrupt(cause uint64) {
	d.regs[RegIntStatus] |= cause
	msiAddr := d.regs[RegMSIAddr]
	if msiAddr == 0 || d.upstream == nil {
		return
	}
	if d.faultHook != nil && d.faultHook(FaultMSI) {
		d.msiDropped++ // cause bit stays latched; polling still observes it
		d.obs.msiDropped.Inc()
		d.obs.tracer.Instant(obsv.TrackXPU, "msi_dropped")
		return
	}
	data := d.slab.Take(4)
	binary.LittleEndian.PutUint32(data, uint32(d.regs[RegMSIData]))
	d.upstream(d.pkts.MemWrite(d.id, msiAddr, data))
}

// dmaRead issues chunked MRd requests upstream and concatenates
// completions. Read requests carry no payload, so they chunk at
// MaxReadReq rather than MaxPayload — one request covers a whole span
// of cipher chunks, which the SC batch-decrypts (DESIGN.md §10).
func (d *Device) dmaRead(addr uint64, n int64) ([]byte, bool) {
	sp := d.obs.tracer.Begin(obsv.TrackXPU, "dma_read",
		obsv.Hex("addr", addr), obsv.I64("bytes", n))
	defer sp.End()
	out := d.slab.Take(int(n))[:0]
	for n > 0 {
		chunk := int64(pcie.MaxReadReq)
		if n < chunk {
			chunk = n
		}
		req := d.pkts.MemRead(d.id, addr, uint32(chunk), 0)
		cpl := d.upstream(req)
		if cpl == nil || cpl.Status != pcie.CplSuccess {
			return nil, false
		}
		out = append(out, cpl.Payload...)
		if d.cplRecycle != nil && d.cplRecycle() {
			arena.PutZero(cpl.Payload) // may carry tenant plaintext
		}
		addr += uint64(chunk)
		n -= chunk
	}
	return out, true
}

// dmaReadInto issues chunked MRd requests upstream, copying each
// completion straight into dst — the zero-intermediate-buffer path for
// bulk H2D copies into device memory.
func (d *Device) dmaReadInto(dst []byte, addr uint64) bool {
	sp := d.obs.tracer.Begin(obsv.TrackXPU, "dma_read",
		obsv.Hex("addr", addr), obsv.I64("bytes", int64(len(dst))))
	defer sp.End()
	for len(dst) > 0 {
		chunk := pcie.MaxReadReq
		if len(dst) < chunk {
			chunk = len(dst)
		}
		req := d.pkts.MemRead(d.id, addr, uint32(chunk), 0)
		cpl := d.upstream(req)
		if cpl == nil || cpl.Status != pcie.CplSuccess || len(cpl.Payload) < chunk {
			return false
		}
		copy(dst, cpl.Payload[:chunk])
		if d.cplRecycle != nil && d.cplRecycle() {
			arena.PutZero(cpl.Payload) // may carry tenant plaintext
		}
		addr += uint64(chunk)
		dst = dst[chunk:]
	}
	return true
}

// dmaWrite issues chunked MWr requests upstream. Writes carry their
// payload in the TLP, so they stay capped at MaxPayload.
func (d *Device) dmaWrite(addr uint64, data []byte) bool {
	sp := d.obs.tracer.Begin(obsv.TrackXPU, "dma_write",
		obsv.Hex("addr", addr), obsv.I64("bytes", int64(len(data))))
	defer sp.End()
	for len(data) > 0 {
		chunk := pcie.MaxPayload
		if len(data) < chunk {
			chunk = len(data)
		}
		// The packet must not alias devMem — a later kernel or wipe would
		// mutate a payload a tap may have retained — so stage each chunk
		// through the never-reused slab, or through the arena when the
		// upstream consumer owns and recycles the bytes (wrRecycle).
		var buf []byte
		if d.wrRecycle != nil && d.wrRecycle() {
			buf = arena.Get(chunk)
		} else {
			buf = d.slab.Take(chunk)
		}
		copy(buf, data[:chunk])
		d.upstream(d.pkts.MemWrite(d.id, addr, buf))
		addr += uint64(chunk)
		data = data[chunk:]
	}
	return true
}

func (d *Device) execute(cmd Command) bool {
	sp := d.obs.tracer.Begin(obsv.TrackXPU, "exec",
		obsv.Str("op", opName(cmd.Op)), obsv.I64("bytes", int64(cmd.Len)))
	defer sp.End()
	d.obs.commands.Inc()
	switch cmd.Op {
	case OpNop, OpFence:
	case OpCopyH2D:
		if cmd.Dst+cmd.Len > uint64(len(d.devMem)) {
			return false
		}
		if !d.dmaReadInto(d.devMem[cmd.Dst:cmd.Dst+cmd.Len], cmd.Src) {
			return false
		}
	case OpCopyD2H:
		if cmd.Src+cmd.Len > uint64(len(d.devMem)) {
			return false
		}
		if !d.dmaWrite(cmd.Dst, d.devMem[cmd.Src:cmd.Src+cmd.Len]) {
			return false
		}
	case OpKernel:
		if !d.kernel(cmd) {
			return false
		}
	default:
		return false
	}
	d.executed = append(d.executed, cmd)
	return true
}

func (d *Device) kernel(cmd Command) bool {
	if cmd.Src+cmd.Len > uint64(len(d.devMem)) || cmd.Dst+cmd.Len > uint64(len(d.devMem)) {
		return false
	}
	src := d.devMem[cmd.Src : cmd.Src+cmd.Len]
	dst := d.devMem[cmd.Dst : cmd.Dst+cmd.Len]
	switch cmd.Param >> 16 {
	case KernelVecAddConst:
		k := byte(cmd.Param)
		for i := range src {
			dst[i] = src[i] + k
		}
	case KernelChecksum:
		if cmd.Len < 8 {
			return false
		}
		var h uint64 = 0xcbf29ce484222325
		for _, b := range src {
			h ^= uint64(b)
			h *= 0x100000001b3
		}
		binary.LittleEndian.PutUint64(dst[:8], h)
	case KernelXORMask:
		k := byte(cmd.Param)
		for i := range src {
			dst[i] = src[i] ^ k
		}
	case KernelMatVecRelu:
		return d.matVecRelu(cmd)
	default:
		return false
	}
	return true
}

// matVecRelu runs the int8 fully-connected kernel. Layout at Src:
// R*C weight bytes followed by C input bytes; Dst receives R output
// bytes. All values are interpreted as int8; accumulation is int32
// with an arithmetic >>6 rescale and ReLU clamp to [0,127].
func (d *Device) matVecRelu(cmd Command) bool {
	cols := int(cmd.Param & 0xffff)
	rows := int(cmd.Len)
	if cols <= 0 || rows <= 0 {
		return false
	}
	wEnd := cmd.Src + uint64(rows*cols)
	xEnd := wEnd + uint64(cols)
	if xEnd > uint64(len(d.devMem)) || cmd.Dst+uint64(rows) > uint64(len(d.devMem)) {
		return false
	}
	weights := d.devMem[cmd.Src:wEnd]
	x := d.devMem[wEnd:xEnd]
	out := d.devMem[cmd.Dst : cmd.Dst+uint64(rows)]
	for r := 0; r < rows; r++ {
		var acc int32
		row := weights[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			acc += int32(int8(row[c])) * int32(int8(x[c]))
		}
		acc >>= 6
		if acc < 0 {
			acc = 0
		}
		if acc > 127 {
			acc = 127
		}
		out[r] = byte(acc)
	}
	return true
}

// MemResidue reports whether any non-zero byte remains in functional
// device memory — the environment guard's post-teardown check.
func (d *Device) MemResidue() bool {
	for _, b := range d.devMem {
		if b != 0 {
			return true
		}
	}
	return false
}
