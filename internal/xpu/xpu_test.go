package xpu

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ccai/internal/mem"
	"ccai/internal/pcie"
)

// hostHarness wires a device directly to a host memory space (no
// PCIe-SC), standing in for a vanilla deployment.
type hostHarness struct {
	space *mem.Space
	dev   *Device
	ring  *mem.Buffer
	tail  uint64
	msi   []uint32
}

func newHarness(t *testing.T, p Profile) *hostHarness {
	t.Helper()
	s := mem.NewSpace()
	if err := s.AddRegion("host", 0x1000_0000, 16<<20); err != nil {
		t.Fatal(err)
	}
	ring, err := s.Alloc("host", "cmdring", 64*CmdSize)
	if err != nil {
		t.Fatal(err)
	}
	h := &hostHarness{space: s, ring: ring}
	h.dev = NewDevice(p, pcie.MakeID(2, 0, 0), 0xf000_0000, 1<<16)
	h.dev.SetUpstream(func(pkt *pcie.Packet) *pcie.Packet {
		switch pkt.Kind {
		case pcie.MRd:
			data, err := s.Read(pkt.Address, int64(pkt.Length))
			if err != nil {
				return pcie.NewCompletion(pkt, 0, pcie.CplUR, nil)
			}
			return pcie.NewCompletion(pkt, 0, pcie.CplSuccess, data)
		case pcie.MWr:
			if pkt.Address == 0xfee0_0000 { // MSI window
				h.msi = append(h.msi, binary.LittleEndian.Uint32(pkt.Payload))
				return nil
			}
			_ = s.Write(pkt.Address, pkt.Payload)
			return nil
		}
		return nil
	})
	// Driver bring-up: program ring and MSI.
	h.mmio64(RegCmdBase, ring.Base())
	h.mmio64(RegCmdSize, 64)
	h.mmio64(RegMSIAddr, 0xfee0_0000)
	h.mmio64(RegMSIData, 0x41)
	return h
}

func (h *hostHarness) mmio64(off uint64, v uint64) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, v)
	h.dev.Handle(pcie.NewMemWrite(pcie.MakeID(0, 0, 0), 0xf000_0000+off, buf))
}

func (h *hostHarness) mmioRead64(off uint64) uint64 {
	cpl := h.dev.Handle(pcie.NewMemRead(pcie.MakeID(0, 0, 0), 0xf000_0000+off, 8, 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess {
		return ^uint64(0)
	}
	return binary.LittleEndian.Uint64(cpl.Payload)
}

func (h *hostHarness) submit(t *testing.T, cmds ...Command) {
	t.Helper()
	for _, c := range cmds {
		addr := h.ring.Base() + (h.tail%64)*CmdSize
		if err := h.space.Write(addr, c.Marshal()); err != nil {
			t.Fatal(err)
		}
		h.tail++
	}
	h.mmio64(RegCmdTail, h.tail)
	h.mmio64(RegDoorbell, 1)
}

func TestProfilesFleet(t *testing.T) {
	fleet := Fleet()
	if len(fleet) != 5 {
		t.Fatalf("fleet size = %d, want 5", len(fleet))
	}
	seen := map[string]bool{}
	for _, p := range fleet {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.MemBandwidth <= 0 || p.ComputeFLOPS <= 0 || p.MemBytes <= 0 {
			t.Fatalf("%s: non-positive performance numbers", p.Name)
		}
		if p.Link.Lanes <= 0 {
			t.Fatalf("%s: no PCIe link", p.Name)
		}
	}
	if _, err := ProfileByName("A100"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("H100"); err == nil {
		t.Fatal("unknown profile resolved")
	}
}

func TestCommandMarshalRoundTrip(t *testing.T) {
	c := Command{Op: OpCopyH2D, Param: 7, Src: 0x1234, Dst: 0x400, Len: 4096}
	got, err := UnmarshalCommand(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := UnmarshalCommand(make([]byte, 10)); err == nil {
		t.Fatal("short entry accepted")
	}
}

func TestDeviceIdentityRegisters(t *testing.T) {
	h := newHarness(t, A100)
	id := h.mmioRead64(RegID)
	if uint16(id) != A100.VendorID || uint16(id>>16) != A100.DeviceID {
		t.Fatalf("RegID = %#x", id)
	}
	if h.mmioRead64(RegStatus)&StatusReady == 0 {
		t.Fatal("device not ready after bring-up")
	}
}

func TestH2DCopyMovesRealBytes(t *testing.T) {
	h := newHarness(t, A100)
	src, _ := h.space.Alloc("host", "input", 4096)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	copy(src.Bytes(), payload)

	h.submit(t, Command{Op: OpCopyH2D, Src: src.Base(), Dst: 0x100, Len: uint64(len(payload))})
	if got := h.dev.DevMem()[0x100 : 0x100+len(payload)]; !bytes.Equal(got, payload) {
		t.Fatalf("device memory = %q", got)
	}
	if len(h.msi) == 0 || h.msi[0] != 0x41 {
		t.Fatal("completion MSI not delivered")
	}
}

func TestD2HCopyAndKernel(t *testing.T) {
	h := newHarness(t, T4)
	src, _ := h.space.Alloc("host", "in", 4096)
	dst, _ := h.space.Alloc("host", "out", 4096)
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	copy(src.Bytes(), data)

	h.submit(t,
		Command{Op: OpCopyH2D, Src: src.Base(), Dst: 0, Len: 256},
		Command{Op: OpKernel, Param: KernelXORMask<<16 | 0x5a, Src: 0, Dst: 0x1000, Len: 256},
		Command{Op: OpCopyD2H, Src: 0x1000, Dst: dst.Base(), Len: 256},
	)
	out := dst.Bytes()[:256]
	for i := range out {
		if out[i] != data[i]^0x5a {
			t.Fatalf("byte %d = %#x, want %#x", i, out[i], data[i]^0x5a)
		}
	}
}

func TestChecksumKernel(t *testing.T) {
	h := newHarness(t, S60)
	src, _ := h.space.Alloc("host", "in", 4096)
	dst, _ := h.space.Alloc("host", "out", 4096)
	copy(src.Bytes(), []byte("hello"))

	h.submit(t,
		Command{Op: OpCopyH2D, Src: src.Base(), Dst: 0, Len: 5},
		Command{Op: OpKernel, Param: KernelChecksum << 16, Src: 0, Dst: 0x100, Len: 8},
		Command{Op: OpCopyD2H, Src: 0x100, Dst: dst.Base(), Len: 8},
	)
	// FNV-1a over 5-byte "hello" but kernel hashes Len=8 bytes of src...
	// compute expected over the 8 bytes actually hashed.
	var want uint64 = 0xcbf29ce484222325
	for _, b := range h.dev.DevMem()[:8] {
		want ^= uint64(b)
		want *= 0x100000001b3
	}
	got := binary.LittleEndian.Uint64(dst.Bytes()[:8])
	if got != want {
		t.Fatalf("checksum = %#x, want %#x", got, want)
	}
}

func TestMultipleCommandsAdvanceHead(t *testing.T) {
	h := newHarness(t, A100)
	h.submit(t, Command{Op: OpNop}, Command{Op: OpNop}, Command{Op: OpFence})
	if head := h.mmioRead64(RegCmdHead); head != 3 {
		t.Fatalf("head = %d, want 3", head)
	}
	if len(h.dev.Executed()) != 3 {
		t.Fatalf("executed = %d", len(h.dev.Executed()))
	}
}

func TestFaultOnBadCommand(t *testing.T) {
	h := newHarness(t, A100)
	h.submit(t, Command{Op: 0xff})
	if h.dev.Faults() != 1 {
		t.Fatalf("faults = %d", h.dev.Faults())
	}
	if h.mmioRead64(RegStatus)&StatusFault == 0 {
		t.Fatal("fault bit not set")
	}
	if h.mmioRead64(RegIntStatus)&IntFault == 0 {
		t.Fatal("fault interrupt not raised")
	}
}

func TestFaultOnOutOfBoundsCopy(t *testing.T) {
	h := newHarness(t, A100)
	h.submit(t, Command{Op: OpCopyH2D, Src: 0x1000_0000, Dst: 1 << 40, Len: 16})
	if h.dev.Faults() == 0 {
		t.Fatal("out-of-bounds copy executed")
	}
}

func TestInterruptWrite1ToClear(t *testing.T) {
	h := newHarness(t, A100)
	h.submit(t, Command{Op: OpNop})
	if h.mmioRead64(RegIntStatus)&IntCmdDone == 0 {
		t.Fatal("done interrupt missing")
	}
	h.mmio64(RegIntStatus, IntCmdDone)
	if h.mmioRead64(RegIntStatus)&IntCmdDone != 0 {
		t.Fatal("W1C did not clear")
	}
}

func TestEnvResetWipesState(t *testing.T) {
	h := newHarness(t, A100) // supports soft reset
	src, _ := h.space.Alloc("host", "in", 4096)
	copy(src.Bytes(), []byte("residue"))
	h.submit(t, Command{Op: OpCopyH2D, Src: src.Base(), Dst: 0, Len: 7})
	if !h.dev.MemResidue() {
		t.Fatal("expected residue before reset")
	}
	h.mmio64(RegReset, ResetEnv)
	if h.dev.MemResidue() {
		t.Fatal("environment reset left residue")
	}
	if h.dev.EnvResets() != 1 || h.dev.ColdBoots() != 0 {
		t.Fatalf("envResets=%d coldBoots=%d", h.dev.EnvResets(), h.dev.ColdBoots())
	}
	if h.mmioRead64(RegPageTable) != 0 {
		t.Fatal("page table register survived reset")
	}
}

func TestEnvResetFallsBackToColdBoot(t *testing.T) {
	h := newHarness(t, N150d) // no soft reset support
	h.mmio64(RegReset, ResetEnv)
	if h.dev.ColdBoots() != 1 {
		t.Fatalf("coldBoots = %d, want 1 (fallback)", h.dev.ColdBoots())
	}
	if h.mmioRead64(RegStatus)&StatusReady == 0 {
		t.Fatal("device not ready after cold boot")
	}
}

func TestReadOnlyRegistersIgnoreWrites(t *testing.T) {
	h := newHarness(t, A100)
	before := h.mmioRead64(RegFWVersion)
	h.mmio64(RegFWVersion, 0xdeadbeef)
	if h.mmioRead64(RegFWVersion) != before {
		t.Fatal("firmware version register writable")
	}
	h.mmio64(RegID, 0)
	if h.mmioRead64(RegID) == 0 {
		t.Fatal("identity register writable")
	}
}

func TestMMIOOutsideBAR0Unsupported(t *testing.T) {
	h := newHarness(t, A100)
	cpl := h.dev.Handle(pcie.NewMemRead(pcie.MakeID(0, 0, 0), 0xf000_0000+BAR0Size+8, 8, 0))
	if cpl == nil || cpl.Status != pcie.CplUR {
		t.Fatalf("out-of-window read returned %v", cpl)
	}
}

func TestConfigSpaceAccessViaTLP(t *testing.T) {
	h := newHarness(t, A100)
	req := &pcie.Packet{Header: pcie.Header{Kind: pcie.CfgRd, Requester: pcie.MakeID(0, 0, 0), Completer: h.dev.DeviceID(), Address: pcie.CfgVendorID, Length: 4}}
	cpl := h.dev.Handle(req)
	if cpl == nil || cpl.Status != pcie.CplSuccess {
		t.Fatal("config read failed")
	}
	if v := binary.LittleEndian.Uint32(cpl.Payload); uint16(v) != A100.VendorID {
		t.Fatalf("vendor = %#x", v)
	}
}

func TestScratchRegion(t *testing.T) {
	h := newHarness(t, A100)
	h.dev.Handle(pcie.NewMemWrite(pcie.MakeID(0, 0, 0), 0xf000_0000+RegScratch, []byte("driver state")))
	cpl := h.dev.Handle(pcie.NewMemRead(pcie.MakeID(0, 0, 0), 0xf000_0000+RegScratch, 12, 0))
	if string(cpl.Payload) != "driver state" {
		t.Fatalf("scratch = %q", cpl.Payload)
	}
}
