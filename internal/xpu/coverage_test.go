package xpu

import (
	"strings"
	"testing"

	"ccai/internal/pcie"
)

func TestClassAndProfileStrings(t *testing.T) {
	if GPU.String() != "GPU" || NPU.String() != "NPU" || FPGAAcc.String() != "FPGA-Acc" {
		t.Fatal("class strings wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class empty")
	}
	if A100.String() != "A100" {
		t.Fatalf("profile string = %q", A100)
	}
}

func TestDeviceAccessors(t *testing.T) {
	d := NewDevice(T4, pcie.MakeID(2, 0, 0), 0xf000_0000, 0)
	if d.Profile().Name != "T4" {
		t.Fatal("profile lost")
	}
	if d.Config().VendorID() != T4.VendorID {
		t.Fatal("config identity wrong")
	}
	bar := d.BAR0()
	if bar.Base != 0xf000_0000 || bar.Size != BAR0Size {
		t.Fatalf("BAR0 = %+v", bar)
	}
	if !strings.Contains(bar.Name, "T4") {
		t.Fatalf("bar name = %q", bar.Name)
	}
	// functionalMem <= 0 defaults to 1 MiB.
	if len(d.DevMem()) != 1<<20 {
		t.Fatalf("default devmem = %d", len(d.DevMem()))
	}
}

func TestDeviceRejectsUnknownTLP(t *testing.T) {
	d := NewDevice(A100, pcie.MakeID(2, 0, 0), 0xf000_0000, 1<<16)
	bogus := &pcie.Packet{Header: pcie.Header{Kind: pcie.Cpl, Requester: pcie.MakeID(0, 0, 0)}}
	if cpl := d.Handle(bogus); cpl == nil || cpl.Status != pcie.CplUR {
		t.Fatalf("stray completion handled: %v", cpl)
	}
}

func TestDeviceAbsorbsMessages(t *testing.T) {
	d := NewDevice(A100, pcie.MakeID(2, 0, 0), 0xf000_0000, 1<<16)
	if cpl := d.Handle(pcie.NewMessage(pcie.MakeID(0, 0, 0), 0x19, nil)); cpl != nil {
		t.Fatal("message produced a completion")
	}
}

func TestDeviceConfigWriteViaTLP(t *testing.T) {
	d := NewDevice(A100, pcie.MakeID(2, 0, 0), 0xf000_0000, 1<<16)
	wr := &pcie.Packet{
		Header:  pcie.Header{Kind: pcie.CfgWr, Requester: pcie.MakeID(0, 0, 0), Completer: d.DeviceID(), Address: 0x40, Length: 4},
		Payload: []byte{0xef, 0xbe, 0xad, 0xde},
	}
	if cpl := d.Handle(wr); cpl == nil || cpl.Status != pcie.CplSuccess {
		t.Fatal("config write failed")
	}
	if d.Config().Read32(0x40) != 0xdeadbeef {
		t.Fatal("config write lost")
	}
}

func TestPumpWithoutUpstreamFaults(t *testing.T) {
	d := NewDevice(A100, pcie.MakeID(2, 0, 0), 0xf000_0000, 1<<16)
	// Ring a doorbell with no upstream wired: device must fault, not
	// crash.
	d.Handle(pcie.NewMemWrite(pcie.MakeID(0, 0, 0), 0xf000_0000+RegDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	if d.Faults() != 1 {
		t.Fatalf("faults = %d", d.Faults())
	}
}

func TestPumpBadRingGeometryFaults(t *testing.T) {
	d := NewDevice(A100, pcie.MakeID(2, 0, 0), 0xf000_0000, 1<<16)
	d.SetUpstream(func(p *pcie.Packet) *pcie.Packet { return nil })
	wr64 := func(reg, v uint64) {
		buf := make([]byte, 8)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		d.Handle(pcie.NewMemWrite(pcie.MakeID(0, 0, 0), 0xf000_0000+reg, buf))
	}
	wr64(RegCmdSize, 1<<20) // absurd ring size
	wr64(RegCmdTail, 1)
	wr64(RegDoorbell, 1)
	if d.Faults() == 0 {
		t.Fatal("bad ring geometry accepted")
	}
}

func TestSoftResetClearsIndices(t *testing.T) {
	d := NewDevice(A100, pcie.MakeID(2, 0, 0), 0xf000_0000, 1<<16)
	wr64 := func(reg, v uint64) {
		buf := make([]byte, 8)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		d.Handle(pcie.NewMemWrite(pcie.MakeID(0, 0, 0), 0xf000_0000+reg, buf))
	}
	wr64(RegCmdTail, 7)
	wr64(RegReset, ResetSoft)
	cpl := d.Handle(pcie.NewMemRead(pcie.MakeID(0, 0, 0), 0xf000_0000+RegCmdTail, 8, 0))
	for _, b := range cpl.Payload {
		if b != 0 {
			t.Fatal("soft reset left tail")
		}
	}
}

func TestColdBootRestoresIdentity(t *testing.T) {
	d := NewDevice(S60, pcie.MakeID(2, 0, 0), 0xf000_0000, 1<<16)
	wr64 := func(reg, v uint64) {
		buf := make([]byte, 8)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		d.Handle(pcie.NewMemWrite(pcie.MakeID(0, 0, 0), 0xf000_0000+reg, buf))
	}
	wr64(RegReset, ResetCold)
	cpl := d.Handle(pcie.NewMemRead(pcie.MakeID(0, 0, 0), 0xf000_0000+RegID, 8, 0))
	var id uint64
	for i := 0; i < 8; i++ {
		id |= uint64(cpl.Payload[i]) << (8 * i)
	}
	if uint16(id) != S60.VendorID {
		t.Fatalf("identity after cold boot = %#x", id)
	}
	if d.ColdBoots() != 1 {
		t.Fatal("cold boot not counted")
	}
}

func TestKernelBoundsChecks(t *testing.T) {
	d := NewDevice(A100, pcie.MakeID(2, 0, 0), 0xf000_0000, 4096)
	if d.kernel(Command{Op: OpKernel, Param: KernelVecAddConst << 16, Src: 4000, Dst: 0, Len: 200}) {
		t.Fatal("out-of-bounds kernel ran")
	}
	if d.kernel(Command{Op: OpKernel, Param: KernelChecksum << 16, Src: 0, Dst: 0, Len: 4}) {
		t.Fatal("checksum with <8-byte output ran")
	}
	if d.kernel(Command{Op: OpKernel, Param: 0x7f << 16, Src: 0, Dst: 0, Len: 8}) {
		t.Fatal("unknown kernel id ran")
	}
}
