// Package xpu models the accelerators ccAI protects. Each device has a
// driver-visible functional interface — BAR-mapped registers, a
// ring-buffer command queue, a DMA engine that masters the bus, device
// memory, MSI interrupts — and a performance profile (memory bandwidth,
// compute rate, PCIe link shape) used by the virtual-time workload
// runner. The functional surface is what the PCIe Security Controller
// interposes on, so it is deliberately identical across device types:
// that uniformity is the paper's compatibility argument (G1).
package xpu

import (
	"fmt"

	"ccai/internal/pcie"
	"ccai/internal/sim"
)

// Class is the accelerator category.
type Class int

const (
	// GPU is a graphics-lineage accelerator.
	GPU Class = iota
	// NPU is a neural processing unit.
	NPU
	// FPGAAcc is an FPGA-based accelerator.
	FPGAAcc
)

func (c Class) String() string {
	switch c {
	case GPU:
		return "GPU"
	case NPU:
		return "NPU"
	case FPGAAcc:
		return "FPGA-Acc"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Profile captures one device model's identity and performance envelope.
// The five entries below mirror the paper's evaluation fleet (§7); the
// throughput numbers are public spec-sheet values, which is all the
// shape of the figures depends on.
type Profile struct {
	Name   string
	Vendor string
	Class  Class

	// VendorID/DeviceID populate config space.
	VendorID, DeviceID uint16

	// MemBytes is device memory capacity.
	MemBytes int64
	// MemBandwidth is device memory bandwidth in bytes/second — the
	// decode-phase bottleneck for LLM inference.
	MemBandwidth float64
	// ComputeFLOPS is dense FP16/BF16 throughput in FLOP/s.
	ComputeFLOPS float64
	// Link is the device's PCIe connection.
	Link pcie.LinkConfig
	// KernelLaunch is the fixed host-visible cost of dispatching one
	// kernel (driver + doorbell + device scheduling).
	KernelLaunch sim.Time
	// StepOverhead is the per-inference-iteration framework overhead
	// (scheduler, sampling sync) independent of model size.
	StepOverhead sim.Time
	// SupportsSoftReset reports whether the device accepts MMIO-based
	// environment reset commands; otherwise the environment guard
	// falls back to a cold-boot reset (§4.2).
	SupportsSoftReset bool
	// FirmwareVersion participates in secure boot measurement.
	FirmwareVersion string
}

func (p Profile) String() string { return p.Name }

// Profiles for the paper's device fleet. Bandwidth/FLOPS are spec-sheet
// class numbers; launch/step overheads are calibration constants
// (DESIGN.md §5).
var (
	// A100 is the NVIDIA A100 40GB (PCIe Gen4 x16, 1555 GB/s HBM2e,
	// 312 TFLOPS FP16 tensor).
	A100 = Profile{
		Name: "A100", Vendor: "NVIDIA", Class: GPU,
		VendorID: 0x10de, DeviceID: 0x20b0,
		MemBytes:          40 << 30,
		MemBandwidth:      1555e9,
		ComputeFLOPS:      312e12,
		Link:              pcie.LinkConfig{Gen: pcie.Gen4, Lanes: 16, PropagationDelay: 250 * sim.Nanosecond},
		KernelLaunch:      6 * sim.Microsecond,
		StepOverhead:      250 * sim.Microsecond,
		SupportsSoftReset: true,
		FirmwareVersion:   "550.90.07",
	}

	// RTX4090Ti is the consumer Ada-class GPU from the paper's fleet
	// (Gen4 x16, ~1 TB/s GDDR6X, ~330 TFLOPS FP16 with sparsity off).
	RTX4090Ti = Profile{
		Name: "RTX4090Ti", Vendor: "NVIDIA", Class: GPU,
		VendorID: 0x10de, DeviceID: 0x2684,
		MemBytes:          24 << 30,
		MemBandwidth:      1008e9,
		ComputeFLOPS:      165e12,
		Link:              pcie.LinkConfig{Gen: pcie.Gen4, Lanes: 16, PropagationDelay: 250 * sim.Nanosecond},
		KernelLaunch:      7 * sim.Microsecond,
		StepOverhead:      300 * sim.Microsecond,
		SupportsSoftReset: true,
		FirmwareVersion:   "550.90.07",
	}

	// T4 is the NVIDIA T4 inference GPU (Gen3 x16, 320 GB/s GDDR6,
	// 65 TFLOPS FP16).
	T4 = Profile{
		Name: "T4", Vendor: "NVIDIA", Class: GPU,
		VendorID: 0x10de, DeviceID: 0x1eb8,
		MemBytes:          16 << 30,
		MemBandwidth:      320e9,
		ComputeFLOPS:      65e12,
		Link:              pcie.LinkConfig{Gen: pcie.Gen3, Lanes: 16, PropagationDelay: 250 * sim.Nanosecond},
		KernelLaunch:      8 * sim.Microsecond,
		StepOverhead:      350 * sim.Microsecond,
		SupportsSoftReset: true,
		FirmwareVersion:   "550.90.07",
	}

	// N150d is the Tenstorrent Wormhole n150d NPU (Gen4 x16, 288 GB/s
	// GDDR6, ~74 TFLOPS FP16-class).
	N150d = Profile{
		Name: "N150d", Vendor: "Tenstorrent", Class: NPU,
		VendorID: 0x1e52, DeviceID: 0x401e,
		MemBytes:          12 << 30,
		MemBandwidth:      288e9,
		ComputeFLOPS:      74e12,
		Link:              pcie.LinkConfig{Gen: pcie.Gen4, Lanes: 16, PropagationDelay: 300 * sim.Nanosecond},
		KernelLaunch:      10 * sim.Microsecond,
		StepOverhead:      400 * sim.Microsecond,
		SupportsSoftReset: false, // environment guard uses cold reset
		FirmwareVersion:   "ttkmd-1.29",
	}

	// S60 is the Enflame S60 inference GPU (Gen5 x16-class link,
	// ~768 GB/s, ~150 TFLOPS FP16-class).
	S60 = Profile{
		Name: "S60", Vendor: "Enflame", Class: GPU,
		VendorID: 0x1f36, DeviceID: 0x6001,
		MemBytes:          48 << 30,
		MemBandwidth:      768e9,
		ComputeFLOPS:      150e12,
		Link:              pcie.LinkConfig{Gen: pcie.Gen5, Lanes: 16, PropagationDelay: 250 * sim.Nanosecond},
		KernelLaunch:      7 * sim.Microsecond,
		StepOverhead:      300 * sim.Microsecond,
		SupportsSoftReset: true,
		FirmwareVersion:   "1.4.0.3",
	}
)

// Fleet returns the five evaluation devices in the paper's order.
func Fleet() []Profile { return []Profile{A100, T4, RTX4090Ti, S60, N150d} }

// ProfileByName resolves a fleet profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Fleet() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("xpu: unknown profile %q", name)
}
