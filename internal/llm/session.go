package llm

import "fmt"

// Session describes one inference run: which model, how many prompt and
// generated tokens, how many sequences in the batch, and any memory cap
// applied to the device (Figure 12b's KV-swap stress test).
type Session struct {
	Model ModelSpec
	// PromptTokens is the input length per sequence; the fix-batch
	// sweeps in Figure 8 vary this.
	PromptTokens int
	// GenTokens is the number of output tokens per sequence.
	GenTokens int
	// Batch is the number of concurrent sequences.
	Batch int
	// MemUtilCap limits usable device memory to this fraction of
	// capacity (0 = no cap). §8.6 sweeps 0.8/0.7/0.6 to force KV
	// swapping.
	MemUtilCap float64
	// PinnedKVBytes reserves a fixed KV region regardless of token
	// count, matching §8.6's "3 GB KV-cache" configuration.
	PinnedKVBytes int64
}

// Validate reports configuration errors.
func (s Session) Validate() error {
	if s.Model.Params <= 0 {
		return fmt.Errorf("llm: session has no model")
	}
	if s.PromptTokens <= 0 || s.GenTokens <= 0 || s.Batch <= 0 {
		return fmt.Errorf("llm: tokens/batch must be positive (prompt=%d gen=%d batch=%d)",
			s.PromptTokens, s.GenTokens, s.Batch)
	}
	if s.MemUtilCap < 0 || s.MemUtilCap > 1 {
		return fmt.Errorf("llm: memory cap %v outside [0,1]", s.MemUtilCap)
	}
	return nil
}

// Framework staging constants: the per-step host traffic a standard
// inference stack generates besides the model itself. Each decode step
// copies the logits row per sequence to the host for sampling (FP16)
// plus a small control/sync tensor, and sends sampled token ids back.
const (
	perStepSyncBytes = 4096 // scheduler/stopping-criteria sync per step
	tokenIDBytes     = 8    // sampled token id + metadata per sequence
	kernelsPerLayer  = 1    // fused transformer block launch
	extraStepKernels = 3    // embedding, head, sampling kernels
)

// Demand is the resource demand of one phase, in device-agnostic units.
// The runner converts it to time against a device profile and a
// protection configuration.
type Demand struct {
	// H2DBytes/D2HBytes are host<->device DMA payload bytes. Sensitive
	// is the portion classified Write-Read Protected (A2); the
	// remainder travels Write Protected (A3) or Full Accessible (A4).
	H2DBytes, D2HBytes int64
	SensitiveH2D       int64
	SensitiveD2H       int64
	// FLOPs is dense compute demand.
	FLOPs float64
	// DevMemBytes is device-memory traffic (weight streaming + KV).
	DevMemBytes int64
	// KernelLaunches is the number of MMIO doorbell sequences.
	KernelLaunches int
	// DMATransfers is the number of distinct DMA regions (each costs
	// one metadata/notify interaction under ccAI; the non-optimized
	// ablation pays per chunk instead).
	DMATransfers int
}

// Add accumulates another demand.
func (d *Demand) Add(o Demand) {
	d.H2DBytes += o.H2DBytes
	d.D2HBytes += o.D2HBytes
	d.SensitiveH2D += o.SensitiveH2D
	d.SensitiveD2H += o.SensitiveD2H
	d.FLOPs += o.FLOPs
	d.DevMemBytes += o.DevMemBytes
	d.KernelLaunches += o.KernelLaunches
	d.DMATransfers += o.DMATransfers
}

// Trace is the expanded execution plan of a session.
type Trace struct {
	Session Session
	// Load is the one-time model upload phase.
	Load Demand
	// Prefill processes the prompt and produces the first token.
	Prefill Demand
	// Step is one decode iteration (all sequences advance one token);
	// the session runs GenTokens-1 of these after prefill.
	Step Demand
	// StepSwapBytes is additional per-step PCIe traffic caused by
	// memory pressure (weight/KV spill), zero when everything fits.
	// This traffic is prefetchable: the runner overlaps it with
	// compute, so it only costs wall-clock once it exceeds the step's
	// compute time (the bandwidth-saturated regime of Figures 9/12a).
	StepSwapBytes int64
	// StepSwapSerial is per-step KV-cache swap traffic under the §8.6
	// pinned-KV configuration. Attention needs these bytes mid-kernel,
	// so they serialize with compute rather than overlapping.
	StepSwapSerial int64
	// Teardown is the result download + environment clean phase.
	Teardown Demand
}

// Steps reports the number of decode iterations after prefill.
func (t *Trace) Steps() int { return t.Session.GenTokens - 1 }

// Plan expands a session into its trace. The expansion is where the
// workload's PCIe footprint is decided, so every constant here is part
// of the calibration surface documented in EXPERIMENTS.md.
func Plan(s Session, devMemBytes int64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := s.Model
	t := &Trace{Session: s}

	// Model load: the whole quantized checkpoint crosses PCIe into
	// device memory. Weights are the proprietary asset ccAI protects,
	// so the full volume is sensitive (A2). Chunked into large
	// pinned-staging regions.
	w := m.WeightBytes()
	const stagingRegion = 256 << 20
	t.Load = Demand{
		H2DBytes:     w,
		SensitiveH2D: w,
		DevMemBytes:  w,
		DMATransfers: int((w + stagingRegion - 1) / stagingRegion),
	}

	// Prefill: upload the prompt (token ids; sensitive user input),
	// run one full forward over all prompt tokens, return the first
	// token + logits row per sequence.
	promptBytes := int64(s.Batch) * int64(s.PromptTokens) * 4
	logitsBytes := int64(s.Batch) * int64(m.Vocab) * 2
	kvPrefill := int64(s.Batch) * int64(s.PromptTokens) * m.KVBytesPerToken()
	t.Prefill = Demand{
		H2DBytes:       promptBytes,
		SensitiveH2D:   promptBytes,
		D2HBytes:       logitsBytes + int64(s.Batch)*tokenIDBytes,
		SensitiveD2H:   logitsBytes + int64(s.Batch)*tokenIDBytes,
		FLOPs:          float64(s.Batch) * float64(s.PromptTokens) * m.FLOPsPerToken(),
		DevMemBytes:    w + kvPrefill,
		KernelLaunches: m.Layers*kernelsPerLayer + extraStepKernels,
		DMATransfers:   3, // prompt in, logits out, token out
	}

	// Decode step: stream all weights once from device memory, attend
	// over the KV cache so far (approximated at its midpoint length),
	// sync logits + sampled ids with the host, feed next ids back.
	midKV := int64(s.PromptTokens) + int64(s.GenTokens)/2
	kvStep := int64(s.Batch) * midKV * m.KVBytesPerToken()
	t.Step = Demand{
		H2DBytes:       int64(s.Batch)*tokenIDBytes + perStepSyncBytes,
		SensitiveH2D:   int64(s.Batch) * tokenIDBytes,
		D2HBytes:       logitsBytes + int64(s.Batch)*tokenIDBytes + perStepSyncBytes,
		SensitiveD2H:   logitsBytes + int64(s.Batch)*tokenIDBytes,
		FLOPs:          float64(s.Batch) * m.FLOPsPerToken(),
		DevMemBytes:    w + kvStep,
		KernelLaunches: m.Layers*kernelsPerLayer + extraStepKernels,
		DMATransfers:   4, // logits out, ids out, ids in, sync
	}

	// Memory pressure: weights + KV + runtime must fit under the cap;
	// overflow spills and is re-fetched across PCIe each step. The
	// refetch factor reflects that only the spilled fraction's working
	// set moves per iteration, not the whole overflow every layer.
	const runtimeReserve = 2 << 30 // framework + activations
	capBytes := devMemBytes
	if s.MemUtilCap > 0 {
		capBytes = int64(float64(devMemBytes) * s.MemUtilCap)
	}
	if s.PinnedKVBytes > 0 && s.MemUtilCap > 0 {
		// §8.6 pinned-KV configuration: the utilization cap pushes a
		// fraction of the KV cache into host memory; each step's
		// attention touches a share of the host-resident part.
		const touchFactor = 0.2
		hostResident := float64(s.PinnedKVBytes) * (1 - s.MemUtilCap)
		t.StepSwapSerial = int64(hostResident * touchFactor)
	} else {
		kvTotal := int64(s.Batch) * (int64(s.PromptTokens) + int64(s.GenTokens)) * m.KVBytesPerToken()
		working := w + kvTotal + runtimeReserve
		if working > capBytes {
			overflow := working - capBytes
			// Only the spilled working set's hot share re-crosses PCIe
			// each step; the runtime prefetches it layer by layer.
			const refetchFactor = 0.15
			t.StepSwapBytes = int64(float64(overflow) * refetchFactor)
		}
	}

	// Teardown: final generated text (sensitive) comes home; the
	// environment guard wipes the device.
	outBytes := int64(s.Batch) * int64(s.GenTokens) * 4
	t.Teardown = Demand{
		D2HBytes:     outBytes,
		SensitiveD2H: outBytes,
		DMATransfers: 1,
	}
	return t, nil
}

// Total aggregates the whole session demand (load + prefill + steps +
// teardown), including swap traffic.
func (t *Trace) Total() Demand {
	var d Demand
	d.Add(t.Load)
	d.Add(t.Prefill)
	steps := int64(t.Steps())
	swap := t.StepSwapBytes + t.StepSwapSerial
	d.H2DBytes += steps * (t.Step.H2DBytes + swap/2)
	d.D2HBytes += steps * (t.Step.D2HBytes + swap/2)
	d.SensitiveH2D += steps * (t.Step.SensitiveH2D + swap/2)
	d.SensitiveD2H += steps * (t.Step.SensitiveD2H + swap/2)
	d.FLOPs += float64(steps) * t.Step.FLOPs
	d.DevMemBytes += steps * t.Step.DevMemBytes
	d.KernelLaunches += int(steps) * t.Step.KernelLaunches
	d.DMATransfers += int(steps) * t.Step.DMATransfers
	d.Add(t.Teardown)
	return d
}
