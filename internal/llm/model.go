// Package llm models the paper's evaluation workloads: large-language-
// model inference sessions whose DMA/MMIO traffic and compute demands
// drive the simulated platform. A ModelSpec captures the published
// architecture parameters of each benchmark model; Session expands a
// (model, tokens, batch) configuration into the phase-by-phase resource
// demands — bytes moved over PCIe, FLOPs executed, device-memory bytes
// streamed — that the virtual-time runner charges against a device
// profile and, when ccAI is enabled, against the protection cost model.
package llm

import "fmt"

// Quant is the weight quantization used by a benchmark entry (Figure 9
// mixes FP16/INT8/INT4/INT2 models).
type Quant int

const (
	// FP16 is 16-bit floating point weights.
	FP16 Quant = iota
	// INT8 is 8-bit integer quantization.
	INT8
	// INT4 is 4-bit integer quantization.
	INT4
	// INT2 is 2-bit integer quantization.
	INT2
)

// Bits reports the weight width in bits.
func (q Quant) Bits() int {
	switch q {
	case FP16:
		return 16
	case INT8:
		return 8
	case INT4:
		return 4
	case INT2:
		return 2
	}
	panic(fmt.Sprintf("llm: unknown quantization %d", int(q)))
}

func (q Quant) String() string {
	switch q {
	case FP16:
		return "FP16"
	case INT8:
		return "INT8"
	case INT4:
		return "INT4"
	case INT2:
		return "INT2"
	}
	return fmt.Sprintf("Quant(%d)", int(q))
}

// ModelSpec describes one benchmark LLM.
type ModelSpec struct {
	Name string
	// Params is the parameter count.
	Params int64
	// Layers, Hidden, Vocab are the architecture dimensions that size
	// KV-cache and per-step host traffic.
	Layers, Hidden, Vocab int
	// Quant fixes the bytes-per-weight for uploads and decode streaming.
	Quant Quant
}

// WeightBytes reports the total weight footprint.
func (m ModelSpec) WeightBytes() int64 {
	return m.Params * int64(m.Quant.Bits()) / 8
}

// KVBytesPerToken reports the KV-cache growth per token per sequence
// (keys + values, FP16, across all layers).
func (m ModelSpec) KVBytesPerToken() int64 {
	return 2 * int64(m.Layers) * int64(m.Hidden) * 2
}

// FLOPsPerToken reports dense forward FLOPs per generated token per
// sequence (the standard 2·params estimate).
func (m ModelSpec) FLOPsPerToken() float64 { return 2 * float64(m.Params) }

func (m ModelSpec) String() string { return fmt.Sprintf("%s (%s)", m.Name, m.Quant) }

// The benchmark catalogue mirrors §8.4's model list with published
// architecture numbers; Figure 9 annotates the quantization choices
// (INT8 for Deepseek-r1-32b, INT4 for the 70b models, INT2 for Babel).
var (
	OPT13B = ModelSpec{Name: "OPT-1.3b", Params: 1_300_000_000, Layers: 24, Hidden: 2048, Vocab: 50272, Quant: FP16}

	BLOOM3B = ModelSpec{Name: "BLOOM-3b", Params: 3_000_000_000, Layers: 30, Hidden: 2560, Vocab: 250880, Quant: FP16}

	DeepseekLLM7B = ModelSpec{Name: "Deepseek-llm-7b", Params: 7_000_000_000, Layers: 30, Hidden: 4096, Vocab: 102400, Quant: FP16}

	Llama2_7B = ModelSpec{Name: "Llama2-7b", Params: 6_740_000_000, Layers: 32, Hidden: 4096, Vocab: 32000, Quant: FP16}

	Llama3_8B = ModelSpec{Name: "Llama3-8b", Params: 8_030_000_000, Layers: 32, Hidden: 4096, Vocab: 128256, Quant: FP16}

	DeepseekR1_32B = ModelSpec{Name: "Deepseek-r1-32b", Params: 32_800_000_000, Layers: 64, Hidden: 5120, Vocab: 152064, Quant: INT8}

	DeepseekR1_70B = ModelSpec{Name: "Deepseek-r1-70b", Params: 70_600_000_000, Layers: 80, Hidden: 8192, Vocab: 128256, Quant: INT4}

	Llama3_70B = ModelSpec{Name: "Llama3-70b", Params: 70_600_000_000, Layers: 80, Hidden: 8192, Vocab: 128256, Quant: INT4}

	Babel83B = ModelSpec{Name: "Babel-83b", Params: 83_000_000_000, Layers: 80, Hidden: 8192, Vocab: 150000, Quant: INT2}
)

// Catalogue returns the Figure 9 model list in the paper's order.
func Catalogue() []ModelSpec {
	return []ModelSpec{
		OPT13B, BLOOM3B, DeepseekLLM7B, Llama2_7B, Llama3_8B,
		DeepseekR1_32B, DeepseekR1_70B, Llama3_70B, Babel83B,
	}
}

// ByName resolves a catalogue model.
func ByName(name string) (ModelSpec, error) {
	for _, m := range Catalogue() {
		if m.Name == name {
			return m, nil
		}
	}
	return ModelSpec{}, fmt.Errorf("llm: unknown model %q", name)
}
