package llm

// Deterministic token material for the serving datapath. Real decode
// output depends on model weights; here the stream is a seeded function
// of (prompt, seed) with one crucial property preserved: every decode
// chunk is computed *on the device, from the device-resident KV bytes*
// (a keyed XOR window over the KV region), so the host-side expected
// stream below only matches if the KV-cache actually survived, sealed,
// in device memory across every step. Tests and the soak oracle lean on
// that: byte-identical streams across runs ⇒ determinism; any KV
// corruption or stale re-stage ⇒ a visible mismatch.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Digest condenses (seed, prompt) into the session's generator state
// via FNV-1a — stable across runs and platforms.
func Digest(seed uint64, prompt []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	for _, b := range prompt {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	if h == 0 {
		h = fnvOffset64
	}
	return h
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed PRF over
// the digest and a step index.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KVInit derives the session's initial KV-cache image: n bytes of
// splitmix64 stream keyed by the digest. This is what Prefill seals and
// stages into protected device memory exactly once.
func KVInit(digest uint64, n int64) []byte {
	out := make([]byte, n)
	var w uint64
	for i := range out {
		if i%8 == 0 {
			w = mix64(digest + uint64(i/8))
		}
		out[i] = byte(w)
		w >>= 8
	}
	return out
}

// StepKey is the XOR key the device kernel applies for chunk idx.
func StepKey(digest uint64, chunk int) byte {
	k := byte(mix64(digest ^ (uint64(chunk)+1)*0x9e3779b97f4a7c15))
	if k == 0 {
		k = 0xa5 // never the identity: silent-corruption oracles need dst≠src
	}
	return k
}

// StepOffset is the KV-region window chunk idx reads: deterministic,
// in-bounds for a window of span bytes.
func StepOffset(digest uint64, chunk int, kvLen, span int64) int64 {
	if kvLen <= span {
		return 0
	}
	return int64(mix64(digest+0x5bd1e995*uint64(chunk+1)) % uint64(kvLen-span+1))
}

// TokenIDs is the small host→device payload for one decode step: the
// token ids "sampled" for chunk idx, tokens×tokenBytes wide.
func TokenIDs(digest uint64, chunk, tokens, tokenBytes int) []byte {
	out := make([]byte, tokens*tokenBytes)
	for t := 0; t < tokens; t++ {
		w := mix64(digest ^ uint64(chunk)<<20 ^ uint64(t))
		for b := 0; b < tokenBytes; b++ {
			out[t*tokenBytes+b] = byte(w >> (8 * b))
		}
	}
	return out
}

// ExpectedChunk computes, host-side, the bytes the device must produce
// for chunk idx: the chunk's KV window XORed with its step key. kv is
// the session's KVInit image; span the chunk's wire size.
func ExpectedChunk(kv []byte, digest uint64, chunk int, span int64) []byte {
	off := StepOffset(digest, chunk, int64(len(kv)), span)
	key := StepKey(digest, chunk)
	out := make([]byte, span)
	for i := range out {
		out[i] = kv[off+int64(i)] ^ key
	}
	return out
}
