package llm

import (
	"testing"
	"testing/quick"
)

func TestCatalogueComplete(t *testing.T) {
	cat := Catalogue()
	if len(cat) != 9 {
		t.Fatalf("catalogue size = %d, want 9 (Figure 9)", len(cat))
	}
	seen := map[string]bool{}
	for _, m := range cat {
		if seen[m.Name] {
			t.Fatalf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
		if m.Params <= 0 || m.Layers <= 0 || m.Hidden <= 0 || m.Vocab <= 0 {
			t.Fatalf("%s: incomplete spec", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("Llama2-7b")
	if err != nil || m.Layers != 32 {
		t.Fatalf("ByName: %v %+v", err, m)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Fatal("unknown model resolved")
	}
}

func TestQuantBits(t *testing.T) {
	cases := map[Quant]int{FP16: 16, INT8: 8, INT4: 4, INT2: 2}
	for q, want := range cases {
		if q.Bits() != want {
			t.Errorf("%v.Bits() = %d, want %d", q, q.Bits(), want)
		}
	}
}

func TestWeightBytesRespectsQuantization(t *testing.T) {
	// Llama2-7b FP16: ~13.5 GB.
	w := Llama2_7B.WeightBytes()
	if w < 13_000_000_000 || w > 14_000_000_000 {
		t.Fatalf("Llama2-7b weights = %d", w)
	}
	// Babel-83b INT2: ~20.8 GB despite 83B params.
	b := Babel83B.WeightBytes()
	if b < 20_000_000_000 || b > 22_000_000_000 {
		t.Fatalf("Babel-83b INT2 weights = %d", b)
	}
	// Deepseek-r1-32b INT8 must exceed the 70b INT4 by less than 2x
	// params would suggest (quantization matters).
	if DeepseekR1_32B.WeightBytes() <= Babel83B.WeightBytes() {
		t.Fatal("INT8 32b should outweigh INT2 83b")
	}
}

func TestSessionValidate(t *testing.T) {
	good := Session{Model: Llama2_7B, PromptTokens: 128, GenTokens: 128, Batch: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Session{
		{PromptTokens: 1, GenTokens: 1, Batch: 1},                   // no model
		{Model: Llama2_7B, PromptTokens: 0, GenTokens: 1, Batch: 1}, // no prompt
		{Model: Llama2_7B, PromptTokens: 1, GenTokens: 0, Batch: 1}, // no output
		{Model: Llama2_7B, PromptTokens: 1, GenTokens: 1, Batch: 0}, // no batch
		{Model: Llama2_7B, PromptTokens: 1, GenTokens: 1, Batch: 1, MemUtilCap: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func devMem40GB() int64 { return 40 << 30 }

func TestPlanLoadPhaseCoversWeights(t *testing.T) {
	s := Session{Model: Llama2_7B, PromptTokens: 128, GenTokens: 128, Batch: 1}
	tr, err := Plan(s, devMem40GB())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Load.H2DBytes != Llama2_7B.WeightBytes() {
		t.Fatalf("load H2D = %d, want %d", tr.Load.H2DBytes, Llama2_7B.WeightBytes())
	}
	if tr.Load.SensitiveH2D != tr.Load.H2DBytes {
		t.Fatal("weights not fully classified sensitive")
	}
	if tr.Load.DMATransfers < 2 {
		t.Fatal("bulk load must span multiple staging regions")
	}
}

func TestPlanStepTrafficScalesWithBatch(t *testing.T) {
	s1 := Session{Model: Llama2_7B, PromptTokens: 128, GenTokens: 128, Batch: 1}
	s8 := s1
	s8.Batch = 8
	t1, _ := Plan(s1, devMem40GB())
	t8, _ := Plan(s8, devMem40GB())
	if t8.Step.D2HBytes <= t1.Step.D2HBytes {
		t.Fatal("per-step D2H does not scale with batch")
	}
	if t8.Step.FLOPs != 8*t1.Step.FLOPs {
		t.Fatalf("step FLOPs: %g vs %g", t8.Step.FLOPs, t1.Step.FLOPs)
	}
	// Weight streaming per step is batch-independent.
	if t8.Step.DevMemBytes <= t1.Step.DevMemBytes {
		t.Fatal("KV traffic should grow with batch")
	}
}

func TestPlanPrefillScalesWithPromptTokens(t *testing.T) {
	short := Session{Model: Llama2_7B, PromptTokens: 64, GenTokens: 64, Batch: 1}
	long := short
	long.PromptTokens = 2048
	ts, _ := Plan(short, devMem40GB())
	tl, _ := Plan(long, devMem40GB())
	if tl.Prefill.FLOPs <= ts.Prefill.FLOPs*10 {
		t.Fatalf("prefill FLOPs: %g vs %g", tl.Prefill.FLOPs, ts.Prefill.FLOPs)
	}
	if tl.Prefill.H2DBytes <= ts.Prefill.H2DBytes {
		t.Fatal("prompt upload should grow with tokens")
	}
}

func TestPlanNoSwapWhenModelFits(t *testing.T) {
	s := Session{Model: Llama2_7B, PromptTokens: 512, GenTokens: 512, Batch: 1}
	tr, _ := Plan(s, devMem40GB())
	if tr.StepSwapBytes != 0 {
		t.Fatalf("7b model on 40GB device swapped %d bytes/step", tr.StepSwapBytes)
	}
}

func TestPlanSwapUnderMemoryCap(t *testing.T) {
	// Figure 12b: pinned 3GB KV + utilization cap forces swapping.
	s := Session{
		Model: Llama2_7B, PromptTokens: 512, GenTokens: 512, Batch: 1,
		MemUtilCap: 0.80, PinnedKVBytes: 3 << 30,
	}
	tr, _ := Plan(s, devMem40GB())
	if tr.StepSwapSerial == 0 {
		t.Fatal("capped pinned-KV session did not swap")
	}
	if tr.StepSwapBytes != 0 {
		t.Fatal("pinned-KV swap must be serial, not prefetchable")
	}
	// A tighter cap pushes more KV host-side and swaps more.
	s2 := s
	s2.MemUtilCap = 0.60
	tr2, _ := Plan(s2, devMem40GB())
	if tr2.StepSwapSerial <= tr.StepSwapSerial {
		t.Fatalf("tighter cap swapped less: %d vs %d", tr2.StepSwapSerial, tr.StepSwapSerial)
	}
}

func TestPlanHeavyModelSpillsOnA100(t *testing.T) {
	// Deepseek-r1-32b INT8 ≈ 32.8 GB weights + reserve > 40 GB × default.
	s := Session{Model: DeepseekR1_32B, PromptTokens: 512, GenTokens: 512, Batch: 1, MemUtilCap: 0.82}
	tr, err := Plan(s, devMem40GB())
	if err != nil {
		t.Fatal(err)
	}
	if tr.StepSwapBytes == 0 {
		t.Fatal("32b INT8 model should spill on a 40GB device")
	}
	// Light model under the same cap must not spill.
	s.Model = OPT13B
	tr2, _ := Plan(s, devMem40GB())
	if tr2.StepSwapBytes != 0 {
		t.Fatal("OPT-1.3b spilled")
	}
}

func TestTotalAggregation(t *testing.T) {
	s := Session{Model: Llama2_7B, PromptTokens: 128, GenTokens: 64, Batch: 2}
	tr, _ := Plan(s, devMem40GB())
	total := tr.Total()
	if total.H2DBytes < tr.Load.H2DBytes+tr.Prefill.H2DBytes {
		t.Fatal("total smaller than its parts")
	}
	wantLaunches := tr.Prefill.KernelLaunches + tr.Steps()*tr.Step.KernelLaunches
	if total.KernelLaunches != wantLaunches {
		t.Fatalf("launches = %d, want %d", total.KernelLaunches, wantLaunches)
	}
	if total.SensitiveH2D > total.H2DBytes || total.SensitiveD2H > total.D2HBytes {
		t.Fatal("sensitive bytes exceed total bytes")
	}
}

// Property: for any valid session, demands are non-negative and
// sensitive ⊆ total.
func TestPlanInvariantsProperty(t *testing.T) {
	f := func(prompt, gen, batch uint8, capPct uint8) bool {
		s := Session{
			Model:        Llama2_7B,
			PromptTokens: int(prompt%200) + 1,
			GenTokens:    int(gen%200) + 1,
			Batch:        int(batch%96) + 1,
			MemUtilCap:   float64(capPct%100) / 100,
		}
		tr, err := Plan(s, devMem40GB())
		if err != nil {
			return false
		}
		for _, d := range []Demand{tr.Load, tr.Prefill, tr.Step, tr.Teardown, tr.Total()} {
			if d.H2DBytes < 0 || d.D2HBytes < 0 || d.FLOPs < 0 || d.DevMemBytes < 0 {
				return false
			}
			if d.SensitiveH2D > d.H2DBytes || d.SensitiveD2H > d.D2HBytes {
				return false
			}
		}
		return tr.StepSwapBytes >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Llama2-7b: 2 * 32 layers * 4096 hidden * 2 bytes = 512 KiB/token.
	if got := Llama2_7B.KVBytesPerToken(); got != 512<<10 {
		t.Fatalf("KV/token = %d, want %d", got, 512<<10)
	}
}

func TestModelAndQuantStrings(t *testing.T) {
	if Llama2_7B.String() == "" || FP16.String() != "FP16" || INT2.String() != "INT2" {
		t.Fatal("strings broken")
	}
	if Quant(9).String() == "" {
		t.Fatal("unknown quant string empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown quant Bits did not panic")
		}
	}()
	Quant(9).Bits()
}
