package llm

import "ccai/internal/sim"

// PromptSampler draws synthetic chat-prompt lengths shaped like the
// public chat datasets the paper samples from (§8.3: "prompts adapted
// from the ShareGPT and Hellaswag datasets"; §8.6: "input tokens
// ranging from 4 to 924"). Real chat prompts are heavily right-skewed:
// many short questions, a long tail of pasted context. We model that
// as a two-component mixture — a short conversational mode and a
// long-context mode — truncated to the paper's observed [4, 924]
// range. Determinism comes from the seeded generator, so experiments
// using sampled prompts are exactly reproducible.
type PromptSampler struct {
	rng *sim.Rand
	// Min/Max clamp the distribution to the observed range.
	Min, Max int
	// LongFraction is the probability of drawing from the long-context
	// mode.
	LongFraction float64
}

// NewPromptSampler returns a sampler over the paper's observed range.
func NewPromptSampler(seed uint64) *PromptSampler {
	return &PromptSampler{
		rng: sim.NewRand(seed),
		Min: 4, Max: 924,
		LongFraction: 0.25,
	}
}

// Next draws one prompt length.
func (s *PromptSampler) Next() int {
	var n int
	if s.rng.Float64() < s.LongFraction {
		// Long-context mode: roughly uniform across the upper range —
		// pasted documents/transcripts don't cluster.
		n = 200 + s.rng.Intn(s.Max-200+1)
	} else {
		// Conversational mode: geometric-ish decay with mean ~60
		// tokens, built from the product of two uniform draws to skew
		// short.
		a := s.rng.Intn(180) + 1
		b := s.rng.Float64()
		n = int(float64(a)*b*b) + s.Min
	}
	if n < s.Min {
		n = s.Min
	}
	if n > s.Max {
		n = s.Max
	}
	return n
}

// Sample draws k prompt lengths.
func (s *PromptSampler) Sample(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Stats reports the min, max and mean of a drawn batch (tests and
// experiment reporting).
func Stats(lengths []int) (min, max int, mean float64) {
	if len(lengths) == 0 {
		return 0, 0, 0
	}
	min, max = lengths[0], lengths[0]
	sum := 0
	for _, n := range lengths {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		sum += n
	}
	return min, max, float64(sum) / float64(len(lengths))
}
