package llm

import "testing"

func TestPromptSamplerRange(t *testing.T) {
	s := NewPromptSampler(11)
	lengths := s.Sample(2000)
	min, max, mean := Stats(lengths)
	if min < 4 || max > 924 {
		t.Fatalf("range [%d,%d] outside [4,924]", min, max)
	}
	// Right-skewed: mean well above median of the short mode but far
	// below the max.
	if mean < 50 || mean > 400 {
		t.Fatalf("mean %.1f implausible for a chat-length mixture", mean)
	}
	// The tail must actually be exercised.
	long := 0
	for _, n := range lengths {
		if n > 500 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no long-context prompts drawn")
	}
	if long > len(lengths)/2 {
		t.Fatal("long mode dominates; skew inverted")
	}
}

func TestPromptSamplerDeterministic(t *testing.T) {
	a := NewPromptSampler(7).Sample(100)
	b := NewPromptSampler(7).Sample(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed samplers diverged")
		}
	}
	c := NewPromptSampler(8).Sample(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestStatsEmpty(t *testing.T) {
	if mn, mx, mean := Stats(nil); mn != 0 || mx != 0 || mean != 0 {
		t.Fatal("empty stats nonzero")
	}
}
