package llm

import (
	"errors"
	"fmt"
	"sync"

	"ccai/internal/sched"
)

// This file is the continuous-batching serving engine (vLLM-style): a
// step scheduler that interleaves prefill and per-token decode work
// across many live sessions, with KV-cache accounting enforced at
// admission. The engine is deliberately execution-agnostic — it decides
// *which session steps next* and *whether its KV fits*, while the
// platform layer (ccai.InferenceSession) owns staging, sealing and the
// device. Fairness and token-granular yielding come from the same DRR
// queue the serving Scheduler uses (internal/sched): each session is a
// flow with exactly one live entry, re-armed at the tail after every
// step via Fair.Yield, so a long decode never monopolizes a dispatch
// slot.

// Sentinel errors. The public ccai layer aliases/wraps these; errors.Is
// matches through the wrapping.
var (
	// ErrKVBudget is returned at admission when the session's KV-cache
	// reservation does not fit the engine's protected-memory budget.
	ErrKVBudget = errors.New("llm: KV-cache budget exceeded")
	// ErrEngineClosed is returned for operations on a closed engine.
	ErrEngineClosed = errors.New("llm: engine closed")
	// ErrSessionDone is returned when stepping a finished session.
	ErrSessionDone = errors.New("llm: session finished")
)

// Config describes one streaming inference session: the model shape,
// how many tokens to generate, and the scaled-down KV staging model.
// Token counts and KV bytes here are serving-scale simulation units —
// KVBytesPerToken defaults far below ModelSpec.KVBytesPerToken() so a
// session's pinned region fits the simulated device memory — but the
// residency protocol (sealed once at admission, resident across decode
// steps) is exactly the paper's.
type Config struct {
	// Model labels the session and, when set, shapes the analytic
	// overhead accounting. Optional for the live datapath.
	Model ModelSpec
	// MaxNewTokens is the number of tokens to generate (required ≥ 1).
	MaxNewTokens int
	// MaxPromptTokens bounds the prompt the session may Prefill
	// (default 128). KV budget is reserved for the bound at admission —
	// the vLLM discipline: a session never grows its reservation
	// mid-decode, so admission is the only place that can fail on
	// memory.
	MaxPromptTokens int
	// ChunkTokens is the number of tokens per streamed decode chunk
	// (default 8): prefill emits chunk 0, each decode step one more.
	ChunkTokens int
	// TokenBytes is the wire size of one token in the decode stream
	// (default 4: a sampled token id).
	TokenBytes int
	// KVBytesPerToken is the per-token KV-cache reservation charged
	// against the engine budget and staged into protected device memory
	// (default 64; scaled, see above).
	KVBytesPerToken int64
	// Seed makes the session's token stream deterministic; same seed +
	// same prompt ⇒ byte-identical chunks.
	Seed uint64
}

// Defaults for Config's zero fields.
const (
	DefaultChunkTokens     = 8
	DefaultTokenBytes      = 4
	DefaultKVBytesPerToken = 64
	DefaultMaxPromptTokens = 128
)

// Normalize applies defaults and validates; it is idempotent.
func (c *Config) Normalize() error {
	if c.MaxNewTokens < 1 {
		return fmt.Errorf("llm: MaxNewTokens must be ≥ 1, got %d", c.MaxNewTokens)
	}
	if c.ChunkTokens <= 0 {
		c.ChunkTokens = DefaultChunkTokens
	}
	if c.TokenBytes <= 0 {
		c.TokenBytes = DefaultTokenBytes
	}
	if c.KVBytesPerToken <= 0 {
		c.KVBytesPerToken = DefaultKVBytesPerToken
	}
	if c.MaxPromptTokens <= 0 {
		c.MaxPromptTokens = DefaultMaxPromptTokens
	}
	return nil
}

// Chunks reports the session's total decode-chunk count: chunk 0 comes
// out of prefill, the rest out of decode steps.
func (c Config) Chunks() int {
	return (c.MaxNewTokens + c.ChunkTokens - 1) / c.ChunkTokens
}

// ChunkSpan reports how many tokens chunk idx carries (the final chunk
// may be short).
func (c Config) ChunkSpan(idx int) int {
	rem := c.MaxNewTokens - idx*c.ChunkTokens
	if rem > c.ChunkTokens {
		return c.ChunkTokens
	}
	if rem < 0 {
		return 0
	}
	return rem
}

// KVBytes is the session's KV-cache reservation for promptTokens of
// context plus the full generation budget — reserved at admission, the
// vLLM "no mid-decode OOM" discipline.
func (c Config) KVBytes(promptTokens int) int64 {
	return int64(promptTokens+c.MaxNewTokens) * c.KVBytesPerToken
}

// StepKind labels one engine dispatch.
type StepKind int

const (
	// StepPrefill processes the whole prompt and emits chunk 0.
	StepPrefill StepKind = iota
	// StepDecode advances every sequence one chunk of tokens.
	StepDecode
)

func (k StepKind) String() string {
	if k == StepPrefill {
		return "prefill"
	}
	return "decode"
}

// SessionState is the engine's view of one live session.
type SessionState struct {
	// ID is the engine-assigned admission ordinal (1, 2, ...): the
	// admit-order log entries are these IDs.
	ID uint64
	// Cfg is the normalized session config.
	Cfg Config
	// PromptTokens is the admitted prompt length.
	PromptTokens int
	// KVBytes is the reservation charged against the engine budget.
	KVBytes int64
	// Owner is an opaque caller handle carried through Next (the public
	// layer stores its *InferenceSession here).
	Owner any

	slot      int // fair-queue flow index
	nextChunk int // next chunk to produce; 0 ⇒ prefill pending
	done      bool
	released  bool
	entry     *sched.Entry
}

// Generated reports chunks completed so far.
func (s *SessionState) Generated() int { return s.nextChunk }

// Step is one dispatch decision: session s performs kind, producing
// chunk Chunk.
type Step struct {
	S     *SessionState
	Kind  StepKind
	Chunk int

	entry *sched.Entry
}

// StepRecord is one line of the engine's dispatch log — the artifact
// the same-seed determinism test compares across runs.
type StepRecord struct {
	Session uint64
	Kind    StepKind
	Chunk   int
}

// EngineConfig parameterizes an Engine. The zero value serves: 1 MiB
// KV budget, 32 session slots, 256-byte step quantum.
type EngineConfig struct {
	// KVBudget bounds the summed KV reservations of live sessions
	// (bytes of protected device memory, default 1 MiB).
	KVBudget int64
	// MaxSessions bounds concurrently admitted sessions (default 32).
	MaxSessions int
	// StepQuantum is the DRR deficit quantum in bytes (default 256);
	// small, because decode steps are small.
	StepQuantum int64
	// Workers is a hint to the serving layer: how many dispatcher
	// goroutines pull steps concurrently (default 2; 1 gives a fully
	// deterministic dispatch order). The engine itself is
	// worker-agnostic.
	Workers int
}

// Engine is the continuous-batching step scheduler. All methods are
// safe for concurrent use; dispatch determinism with a single consumer
// is what the determinism tests pin.
type Engine struct {
	mu     sync.Mutex
	q      *sched.Fair
	cfg    EngineConfig
	used   int64
	free   []int
	nextID uint64
	closed bool

	log    []StepRecord
	admits []uint64
}

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.KVBudget <= 0 {
		cfg.KVBudget = 1 << 20
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 32
	}
	if cfg.StepQuantum <= 0 {
		cfg.StepQuantum = 256
	}
	// Depth 2: one live entry per session, plus headroom for the
	// requeue path.
	q, err := sched.New(sched.Config{Flows: cfg.MaxSessions, Depth: 2, Quantum: cfg.StepQuantum})
	if err != nil {
		return nil, err
	}
	e := &Engine{q: q, cfg: cfg, free: make([]int, 0, cfg.MaxSessions)}
	for i := cfg.MaxSessions - 1; i >= 0; i-- {
		e.free = append(e.free, i) // pop order: slot 0 first
	}
	return e, nil
}

// Budget reports the configured KV budget; KVInUse the summed live
// reservations.
func (e *Engine) Budget() int64 { return e.cfg.KVBudget }

func (e *Engine) KVInUse() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used
}

// Pending reports steps queued across all sessions — started sessions
// whose next step has not been dispatched.
func (e *Engine) Pending() int { return e.q.Pending() }

// Admit reserves KV budget and a session slot. It does not queue any
// work yet — Start does, once the caller has a prompt. Failure modes:
// ErrEngineClosed, ErrKVBudget (reservation does not fit), and
// sched.ErrQueueFull (no free session slot).
func (e *Engine) Admit(cfg Config, promptTokens int, owner any) (*SessionState, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if promptTokens < 1 {
		return nil, fmt.Errorf("llm: prompt must be ≥ 1 token, got %d", promptTokens)
	}
	kv := cfg.KVBytes(promptTokens)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	if e.used+kv > e.cfg.KVBudget {
		return nil, fmt.Errorf("%w: session needs %d B, %d of %d B in use",
			ErrKVBudget, kv, e.used, e.cfg.KVBudget)
	}
	if len(e.free) == 0 {
		return nil, fmt.Errorf("%w: all %d session slots live", sched.ErrQueueFull, e.cfg.MaxSessions)
	}
	slot := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	e.used += kv
	e.nextID++
	s := &SessionState{
		ID: e.nextID, Cfg: cfg, PromptTokens: promptTokens,
		KVBytes: kv, Owner: owner, slot: slot,
	}
	e.admits = append(e.admits, s.ID)
	return s, nil
}

// Start queues the session's prefill step. The DRR cost covers what
// the step moves through the per-step sealed path (the prompt up, a
// chunk down) — NOT the KV image: residency bytes are admission
// controlled by the KV budget, and charging them here would gate a new
// session's first token behind thousands of quantum top-up rounds,
// serializing sessions instead of continuously batching them.
func (e *Engine) Start(s *SessionState) error {
	cost := int64(s.PromptTokens*s.Cfg.TokenBytes) + s.stepCost()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	if s.done || s.released {
		return ErrSessionDone
	}
	if s.entry != nil {
		return fmt.Errorf("llm: session %d already started", s.ID)
	}
	entry, err := e.q.Push(s.slot, cost, s)
	if err != nil {
		return err
	}
	s.entry = entry
	return nil
}

// stepCost is the per-decode-step DRR charge: the sealed bytes one
// step moves (token ids up, chunk down).
func (s *SessionState) stepCost() int64 {
	return int64(2 * s.Cfg.ChunkTokens * s.Cfg.TokenBytes)
}

// Next blocks for the next dispatchable step, interleaving sessions
// under DRR fairness. Returns false when the engine is closed (or stop
// fires) and nothing remains.
func (e *Engine) Next(stop <-chan struct{}) (*Step, bool) {
	for {
		entry, ok := e.q.Next(stop)
		if !ok {
			return nil, false
		}
		s := entry.Value.(*SessionState)
		e.mu.Lock()
		if s.done || s.released {
			// Closed under us between queue and dispatch; drop it.
			e.mu.Unlock()
			e.q.Release(entry.Flow)
			continue
		}
		kind := StepDecode
		if s.nextChunk == 0 {
			kind = StepPrefill
		}
		st := &Step{S: s, Kind: kind, Chunk: s.nextChunk, entry: entry}
		e.log = append(e.log, StepRecord{Session: s.ID, Kind: kind, Chunk: st.Chunk})
		e.mu.Unlock()
		return st, true
	}
}

// Complete records the step's success and re-arms the session: the
// entry yields to the tail of its flow for the next decode step
// (token-granular preemption — competing sessions are served in
// between), or retires when the last chunk is out. It reports whether
// more steps remain.
func (e *Engine) Complete(st *Step) bool {
	e.mu.Lock()
	s := st.S
	s.nextChunk++
	more := s.nextChunk < s.Cfg.Chunks() && !s.done
	if !more {
		s.done = true
		s.entry = nil
	}
	e.mu.Unlock()
	if more {
		if !e.q.Yield(st.entry, s.stepCost()) {
			// Queue closed under us: the session cannot step again.
			e.mu.Lock()
			s.done = true
			s.entry = nil
			e.mu.Unlock()
			more = false
		}
	}
	e.q.Release(st.entry.Flow)
	return more
}

// Fail retires the session after a terminal step error; the flow slot
// frees for other work (budget stays reserved until Release).
func (e *Engine) Fail(st *Step) {
	e.mu.Lock()
	st.S.done = true
	st.S.entry = nil
	e.mu.Unlock()
	e.q.Release(st.entry.Flow)
}

// Requeue undoes a claimed-but-unexecuted dispatch (fault injection,
// preemption): the entry returns to the head of its flow with its
// deficit refunded, and the duplicate log record is dropped so the
// dispatch log reflects executed steps only.
func (e *Engine) Requeue(st *Step) {
	e.mu.Lock()
	if n := len(e.log); n > 0 {
		last := e.log[n-1]
		if last.Session == st.S.ID && last.Chunk == st.Chunk {
			e.log = e.log[:n-1]
		}
	}
	e.mu.Unlock()
	e.q.Requeue(st.entry)
	e.q.Release(st.entry.Flow)
}

// Release frees the session's KV reservation and slot — the
// deterministic teardown behind InferenceSession.Close. Idempotent; a
// still-queued entry is cancelled first.
func (e *Engine) Release(s *SessionState) {
	e.mu.Lock()
	if s.released {
		e.mu.Unlock()
		return
	}
	s.released = true
	s.done = true
	entry := s.entry
	s.entry = nil
	e.used -= s.KVBytes
	e.free = append(e.free, s.slot)
	e.mu.Unlock()
	if entry != nil {
		e.q.Cancel(entry)
	}
}

// Close stops admission and wakes Next consumers once queued work
// drains.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.q.Close()
}

// StepLog returns a copy of the dispatch log (session ID, kind, chunk
// per executed dispatch).
func (e *Engine) StepLog() []StepRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]StepRecord(nil), e.log...)
}

// AdmitOrder returns the session IDs in admission order.
func (e *Engine) AdmitOrder() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]uint64(nil), e.admits...)
}
