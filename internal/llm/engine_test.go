package llm

import (
	"errors"
	"testing"

	"ccai/internal/sched"
)

func testCfg(maxNew int) Config {
	return Config{MaxNewTokens: maxNew, ChunkTokens: 4, Seed: 7}
}

// drain runs the engine's dispatch loop to completion for the given
// sessions, returning the executed step log.
func drainEngine(t *testing.T, e *Engine, sessions []*SessionState) []StepRecord {
	t.Helper()
	for _, s := range sessions {
		if err := e.Start(s); err != nil {
			t.Fatalf("Start: %v", err)
		}
	}
	live := len(sessions)
	stop := make(chan struct{})
	for live > 0 {
		st, ok := e.Next(stop)
		if !ok {
			t.Fatalf("Next returned !ok with %d sessions live", live)
		}
		if !e.Complete(st) {
			live--
		}
	}
	return e.StepLog()
}

func TestEngineInterleavesSessions(t *testing.T) {
	e, err := NewEngine(EngineConfig{MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	a, err := e.Admit(testCfg(16), 8, nil) // 4 chunks
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Admit(testCfg(16), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	log := drainEngine(t, e, []*SessionState{a, b})

	if want := 2 * 4; len(log) != want {
		t.Fatalf("got %d steps, want %d", len(log), want)
	}
	// Chunk 0 of each session is a prefill, rest decode; chunks arrive
	// in order per session.
	next := map[uint64]int{}
	for i, r := range log {
		if r.Chunk != next[r.Session] {
			t.Fatalf("step %d: session %d chunk %d, want %d", i, r.Session, r.Chunk, next[r.Session])
		}
		next[r.Session]++
		wantKind := StepDecode
		if r.Chunk == 0 {
			wantKind = StepPrefill
		}
		if r.Kind != wantKind {
			t.Fatalf("step %d: kind %v, want %v", i, r.Kind, wantKind)
		}
	}
	// Yield must interleave: session a's decode steps cannot all run
	// before b's prefill ever dispatches. Count the longest same-session
	// run; with two equal-weight flows it must be short.
	longest, run := 0, 0
	var prev uint64
	for _, r := range log {
		if r.Session == prev {
			run++
		} else {
			run, prev = 1, r.Session
		}
		if run > longest {
			longest = run
		}
	}
	if longest > 2 {
		t.Fatalf("longest same-session dispatch run %d; Yield is not interleaving", longest)
	}
}

func TestEngineDeterministicStepLog(t *testing.T) {
	run := func() ([]StepRecord, []uint64) {
		e, err := NewEngine(EngineConfig{MaxSessions: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		var ss []*SessionState
		for i := 0; i < 3; i++ {
			s, err := e.Admit(testCfg(8+4*i), 4+i, nil)
			if err != nil {
				t.Fatal(err)
			}
			ss = append(ss, s)
		}
		return drainEngine(t, e, ss), e.AdmitOrder()
	}
	log1, adm1 := run()
	log2, adm2 := run()
	if len(log1) != len(log2) {
		t.Fatalf("step counts differ: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	for i := range adm1 {
		if adm1[i] != adm2[i] {
			t.Fatalf("admit order differs at %d: %d vs %d", i, adm1[i], adm2[i])
		}
	}
}

func TestEngineKVBudget(t *testing.T) {
	cfg := testCfg(16)
	cfg.KVBytesPerToken = 64
	perSession := cfg.KVBytes(8) // (8+16)*64 = 1536
	e, err := NewEngine(EngineConfig{KVBudget: 2*perSession + 1, MaxSessions: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	a, err := e.Admit(cfg, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Admit(cfg, 8, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Admit(cfg, 8, nil); !errors.Is(err, ErrKVBudget) {
		t.Fatalf("third admit: got %v, want ErrKVBudget", err)
	}
	if got := e.KVInUse(); got != 2*perSession {
		t.Fatalf("KVInUse %d, want %d", got, 2*perSession)
	}
	// Release frees budget; admission succeeds again. Idempotent.
	e.Release(a)
	e.Release(a)
	if got := e.KVInUse(); got != perSession {
		t.Fatalf("KVInUse after release %d, want %d", got, perSession)
	}
	if _, err := e.Admit(cfg, 8, nil); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestEngineSlotExhaustion(t *testing.T) {
	e, err := NewEngine(EngineConfig{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s1, _ := e.Admit(testCfg(8), 4, nil)
	if _, err := e.Admit(testCfg(8), 4, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Admit(testCfg(8), 4, nil); !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("got %v, want sched.ErrQueueFull", err)
	}
	e.Release(s1)
	if _, err := e.Admit(testCfg(8), 4, nil); err != nil {
		t.Fatalf("admit after slot release: %v", err)
	}
}

func TestEngineReleaseCancelsQueued(t *testing.T) {
	e, err := NewEngine(EngineConfig{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s, _ := e.Admit(testCfg(8), 4, nil)
	if err := e.Start(s); err != nil {
		t.Fatal(err)
	}
	e.Release(s)
	// Nothing must dispatch for a released session.
	e.Close()
	stop := make(chan struct{})
	if st, ok := e.Next(stop); ok {
		t.Fatalf("dispatched step %+v for released session", st)
	}
}

func TestEngineRequeueKeepsLogExact(t *testing.T) {
	e, err := NewEngine(EngineConfig{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s, _ := e.Admit(testCfg(8), 4, nil) // 2 chunks
	if err := e.Start(s); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	st, ok := e.Next(stop)
	if !ok {
		t.Fatal("no step")
	}
	e.Requeue(st) // injected stall: dispatch undone, log rewound
	if got := len(e.StepLog()); got != 0 {
		t.Fatalf("log has %d records after requeue, want 0", got)
	}
	for {
		st, ok := e.Next(stop)
		if !ok {
			t.Fatal("Next returned !ok before session finished")
		}
		if !e.Complete(st) {
			break
		}
	}
	log := e.StepLog()
	want := []StepRecord{
		{Session: s.ID, Kind: StepPrefill, Chunk: 0},
		{Session: s.ID, Kind: StepDecode, Chunk: 1},
	}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %+v, want %+v", i, log[i], want[i])
		}
	}
}

func TestConfigNormalizeAndChunks(t *testing.T) {
	c := Config{MaxNewTokens: 10}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.ChunkTokens != DefaultChunkTokens || c.TokenBytes != DefaultTokenBytes || c.KVBytesPerToken != DefaultKVBytesPerToken {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if got := c.Chunks(); got != 2 {
		t.Fatalf("Chunks = %d, want 2", got)
	}
	if got := c.ChunkSpan(0); got != 8 {
		t.Fatalf("ChunkSpan(0) = %d, want 8", got)
	}
	if got := c.ChunkSpan(1); got != 2 {
		t.Fatalf("ChunkSpan(1) = %d, want 2", got)
	}
	bad := Config{}
	if err := bad.Normalize(); err == nil {
		t.Fatal("zero MaxNewTokens accepted")
	}
}

func TestTokenMaterialDeterministic(t *testing.T) {
	d := Digest(42, []byte("the quick brown fox"))
	if d != Digest(42, []byte("the quick brown fox")) {
		t.Fatal("digest not stable")
	}
	if d == Digest(43, []byte("the quick brown fox")) {
		t.Fatal("digest ignores seed")
	}
	kv := KVInit(d, 512)
	kv2 := KVInit(d, 512)
	for i := range kv {
		if kv[i] != kv2[i] {
			t.Fatal("KVInit not deterministic")
		}
	}
	for chunk := 0; chunk < 4; chunk++ {
		if StepKey(d, chunk) == 0 {
			t.Fatalf("chunk %d: identity step key", chunk)
		}
		off := StepOffset(d, chunk, 512, 32)
		if off < 0 || off+32 > 512 {
			t.Fatalf("chunk %d: offset %d out of bounds", chunk, off)
		}
		exp := ExpectedChunk(kv, d, chunk, 32)
		for i, b := range exp {
			if b != kv[off+int64(i)]^StepKey(d, chunk) {
				t.Fatalf("chunk %d byte %d mismatch", chunk, i)
			}
		}
	}
	ids := TokenIDs(d, 1, 8, 4)
	if len(ids) != 32 {
		t.Fatalf("TokenIDs len %d, want 32", len(ids))
	}
}
