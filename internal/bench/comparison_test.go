package bench

import (
	"strings"
	"testing"
)

func TestH100ComparisonShape(t *testing.T) {
	cm := Defaults()
	rows, err := H100Comparison(cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The §8.1 contrast: ccAI stays in single digits, the modeled
		// H100-CC data path lands well above it (paper cites >20 %).
		if r.CCAIOvh <= 0 || r.CCAIOvh > 8 {
			t.Errorf("%s: ccAI overhead %.2f%% out of band", r.Label, r.CCAIOvh)
		}
		if r.H100CCOvh < 10 {
			t.Errorf("%s: H100-CC overhead %.2f%% too low for the cited >20%% regime", r.Label, r.H100CCOvh)
		}
		if r.H100CCOvh <= r.CCAIOvh*2 {
			t.Errorf("%s: H100-CC (%.2f%%) not clearly above ccAI (%.2f%%)", r.Label, r.H100CCOvh, r.CCAIOvh)
		}
	}
}

func TestRunH100CCSlowerThanVanilla(t *testing.T) {
	cm := Defaults()
	w := referenceWorkload(1)
	van, err := Run(w, VanillaMode, cm)
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunH100CC(w, cm, DefaultH100CC())
	if err != nil {
		t.Fatal(err)
	}
	if h.E2E <= van.E2E || h.TTFT <= van.TTFT || h.LoadTime <= van.LoadTime {
		t.Fatal("H100-CC model not slower than vanilla")
	}
}

func TestRenderH100Comparison(t *testing.T) {
	cm := Defaults()
	rows, err := H100Comparison(cm)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderH100Comparison(rows)
	if !strings.Contains(out, "H100-CC") || !strings.Contains(out, "ccAI") {
		t.Fatal("render incomplete")
	}
}
