package bench

import (
	"testing"
	"testing/quick"

	"ccai/internal/llm"
	"ccai/internal/pcie"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// Structural properties of the timing model: these hold for any valid
// configuration, not just the paper's sweep points.

func quickSession(prompt, gen, batch uint8) llm.Session {
	return llm.Session{
		Model:        llm.Llama2_7B,
		PromptTokens: int(prompt%120) + 8,
		GenTokens:    int(gen%120) + 8,
		Batch:        int(batch%32) + 1,
	}
}

// Property: protection never makes a workload faster, for any config
// and any protection tier ordering vanilla ≤ ccAI ≤ no-opt.
func TestProtectionOrderingProperty(t *testing.T) {
	cm := Defaults()
	f := func(prompt, gen, batch uint8) bool {
		w := Workload{Device: xpu.A100, Session: quickSession(prompt, gen, batch)}
		van, err := Run(w, VanillaMode, cm)
		if err != nil {
			return false
		}
		cc, err := Run(w, CCAI, cm)
		if err != nil {
			return false
		}
		no, err := Run(w, CCAINoOpt, cm)
		if err != nil {
			return false
		}
		return van.E2E < cc.E2E && cc.E2E < no.E2E &&
			van.TTFT <= cc.TTFT && cc.TPS > 0 && van.TPS > cc.TPS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: E2E is monotone non-decreasing in generated tokens for
// every protection tier.
func TestE2EMonotoneInTokensProperty(t *testing.T) {
	cm := Defaults()
	f := func(gen uint8, batch uint8, protSel uint8) bool {
		prot := Protection(protSel % 3)
		base := quickSession(64, gen, batch)
		more := base
		more.GenTokens += 16
		a, err := Run(Workload{Device: xpu.A100, Session: base}, prot, cm)
		if err != nil {
			return false
		}
		b, err := Run(Workload{Device: xpu.A100, Session: more}, prot, cm)
		if err != nil {
			return false
		}
		return b.E2E > a.E2E
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: slower links never make any run faster.
func TestE2EMonotoneInBandwidthProperty(t *testing.T) {
	cm := Defaults()
	fast := pcie.LinkConfig{Gen: pcie.Gen4, Lanes: 16, PropagationDelay: 250 * sim.Nanosecond}
	slow := pcie.LinkConfig{Gen: pcie.Gen3, Lanes: 4, PropagationDelay: 250 * sim.Nanosecond}
	f := func(prompt, gen uint8, protSel uint8, offload uint16) bool {
		prot := Protection(protSel % 3)
		s := quickSession(prompt, gen, 1)
		wFast := Workload{Device: xpu.A100, Session: s, Link: &fast, OffloadPerStep: int64(offload) << 12}
		wSlow := wFast
		wSlow.Link = &slow
		a, err := Run(wFast, prot, cm)
		if err != nil {
			return false
		}
		b, err := Run(wSlow, prot, cm)
		if err != nil {
			return false
		}
		return b.E2E >= a.E2E && b.LoadTime > a.LoadTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: PCIe occupancy and load time scale with the model's
// quantized weight size, regardless of parameter count.
func TestLoadScalesWithQuantizedBytesProperty(t *testing.T) {
	cm := Defaults()
	models := llm.Catalogue()
	f := func(aSel, bSel uint8) bool {
		a := models[int(aSel)%len(models)]
		b := models[int(bSel)%len(models)]
		if a.WeightBytes() == b.WeightBytes() {
			return true
		}
		if a.WeightBytes() > b.WeightBytes() {
			a, b = b, a
		}
		ra, err := Run(Workload{Device: xpu.A100, Session: llm.Session{Model: a, PromptTokens: 32, GenTokens: 32, Batch: 1}}, VanillaMode, cm)
		if err != nil {
			return false
		}
		rb, err := Run(Workload{Device: xpu.A100, Session: llm.Session{Model: b, PromptTokens: 32, GenTokens: 32, Batch: 1}}, VanillaMode, cm)
		if err != nil {
			return false
		}
		return rb.LoadTime > ra.LoadTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ccAI overhead stays within a sane envelope (0–30 %)
// across the whole configuration space the figures draw from.
func TestOverheadEnvelopeProperty(t *testing.T) {
	cm := Defaults()
	f := func(prompt, gen, batch uint8) bool {
		w := Workload{Device: xpu.A100, Session: quickSession(prompt, gen, batch)}
		van, cc, err := Compare(w, cm)
		if err != nil {
			return false
		}
		ovh := Overhead(van.E2E, cc.E2E)
		return ovh > 0 && ovh < 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TPS equals generated tokens divided by E2E.
func TestTPSConsistencyProperty(t *testing.T) {
	cm := Defaults()
	f := func(prompt, gen, batch uint8) bool {
		s := quickSession(prompt, gen, batch)
		r, err := Run(Workload{Device: xpu.A100, Session: s}, CCAI, cm)
		if err != nil {
			return false
		}
		want := float64(s.Batch) * float64(s.GenTokens) / r.E2E.Seconds()
		diff := r.TPS - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
