package bench

import (
	"strings"
	"testing"

	"ccai/internal/llm"
	"ccai/internal/pcie"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// The tests here assert the *shapes* the paper reports: who wins, by
// roughly what factor, and where the crossovers fall. Exact
// percentages are calibration-dependent and documented in
// EXPERIMENTS.md.

func llamaSession(prompt, gen, batch int) llm.Session {
	return llm.Session{Model: llm.Llama2_7B, PromptTokens: prompt, GenTokens: gen, Batch: batch}
}

func TestVanillaAlwaysFasterThanProtected(t *testing.T) {
	cm := Defaults()
	for _, batch := range []int{1, 8, 48} {
		w := Workload{Device: xpu.A100, Session: llamaSession(128, 128, batch)}
		van, cc, err := Compare(w, cm)
		if err != nil {
			t.Fatal(err)
		}
		if cc.E2E <= van.E2E {
			t.Fatalf("batch %d: ccAI (%v) not slower than vanilla (%v)", batch, cc.E2E, van.E2E)
		}
		if cc.TPS >= van.TPS {
			t.Fatalf("batch %d: ccAI TPS not lower", batch)
		}
	}
}

func TestOverheadWithinPaperBand(t *testing.T) {
	// Headline claim: 0.05 %–5.67 % across all Figure 8 configurations.
	cm := Defaults()
	check := func(rows []Fig8Row, panel string) {
		for _, r := range rows {
			if r.E2EOvh < 0.02 || r.E2EOvh > 8 {
				t.Errorf("%s %s: E2E overhead %.2f%% outside plausible band", panel, r.Label, r.E2EOvh)
			}
		}
	}
	fb, err := Figure8FixBatch(cm)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := Figure8FixToken(cm)
	if err != nil {
		t.Fatal(err)
	}
	check(fb, "fix-batch")
	check(ft, "fix-token")
}

func TestFig8E2EGrowsWithTokensAndBatch(t *testing.T) {
	cm := Defaults()
	fb, _ := Figure8FixBatch(cm)
	for i := 1; i < len(fb); i++ {
		if fb[i].VanillaE2E <= fb[i-1].VanillaE2E {
			t.Fatalf("E2E not monotone in tokens: %v then %v", fb[i-1].VanillaE2E, fb[i].VanillaE2E)
		}
	}
	ft, _ := Figure8FixToken(cm)
	for i := 1; i < len(ft); i++ {
		if ft[i].VanillaE2E <= ft[i-1].VanillaE2E {
			t.Fatalf("E2E not monotone in batch")
		}
		if ft[i].VanillaTPS <= ft[i-1].VanillaTPS {
			t.Fatalf("TPS not growing with batch")
		}
	}
}

func TestFig8ContextSlotStep(t *testing.T) {
	// The paper's overhead step between batch 12 and batch 24
	// (Fig. 8b/d): crossing the 16 parameter-manager slots.
	cm := Defaults()
	ft, _ := Figure8FixToken(cm)
	byLabel := map[string]Fig8Row{}
	for _, r := range ft {
		byLabel[r.Label] = r
	}
	below, above := byLabel["12-bat"], byLabel["24-bat"]
	if above.E2EOvh < below.E2EOvh+2 {
		t.Fatalf("no overhead step across the slot boundary: %.2f%% -> %.2f%%", below.E2EOvh, above.E2EOvh)
	}
	// Plateau afterwards: 96-bat within ~2 points of 24-bat.
	far := byLabel["96-bat"]
	if diff := far.E2EOvh - above.E2EOvh; diff > 2 || diff < -2 {
		t.Fatalf("overhead did not plateau after the step: 24-bat %.2f%%, 96-bat %.2f%%", above.E2EOvh, far.E2EOvh)
	}
}

func TestFig8TTFTOverheadDeclinesWithTokens(t *testing.T) {
	// Fig. 8e: the fixed session setup amortizes over longer prefills
	// (paper: 5.45 % at 64-tok down to 1.13 % at 2048-tok).
	cm := Defaults()
	fb, _ := Figure8FixBatch(cm)
	first, last := fb[0], fb[len(fb)-1]
	if first.TTFTOvh <= last.TTFTOvh {
		t.Fatalf("TTFT overhead not declining: %.2f%% at %s vs %.2f%% at %s",
			first.TTFTOvh, first.Label, last.TTFTOvh, last.Label)
	}
	if first.TTFTOvh < 2 || first.TTFTOvh > 9 {
		t.Fatalf("short-prompt TTFT overhead %.2f%% outside paper ballpark", first.TTFTOvh)
	}
}

func TestFig9HeavyModelsCostMore(t *testing.T) {
	cm := Defaults()
	rows, err := Figure9Models(cm)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Model.Name] = r
		if r.Overhead < 0 || r.Overhead > 8 {
			t.Errorf("%s: overhead %.2f%% implausible", r.Model.Name, r.Overhead)
		}
	}
	light := byName["Llama2-7b"].Overhead
	for _, heavy := range []string{"Deepseek-r1-32b", "Deepseek-r1-70b", "Llama3-70b"} {
		if byName[heavy].Overhead <= light {
			t.Errorf("%s (%.2f%%) not above light models (%.2f%%)", heavy, byName[heavy].Overhead, light)
		}
	}
	// Quantization matters: Babel-83b INT2 is lighter on PCIe than
	// Deepseek-r1-32b INT8 despite 2.5x the parameters.
	if byName["Babel-83b"].VanillaE2E >= byName["Deepseek-r1-32b"].VanillaE2E {
		t.Error("INT2 Babel should run faster than INT8 Deepseek-32b")
	}
}

func TestFig10AllDevicesInBand(t *testing.T) {
	cm := Defaults()
	rows, err := Figure10XPUs(cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("fleet rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Overhead < 0.05 || r.Overhead > 4 {
			t.Errorf("%s: %.2f%% outside the paper's 0.34–2.40%% ballpark", r.Device.Name, r.Overhead)
		}
	}
}

func TestFig11OptimizationFactor(t *testing.T) {
	// Paper: optimizations remove 88.69–89.66 % of E2E latency (~9-10x).
	cm := Defaults()
	tok, bat, err := Figure11Optimization(cm)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]Fig11Row{tok, bat} {
		for _, r := range rows {
			if r.Reduction < 80 || r.Reduction > 95 {
				t.Errorf("%s: reduction %.2f%% outside 80–95%% (paper ~89%%)", r.Label, r.Reduction)
			}
			factor := r.NoOptE2E.Seconds() / r.CCAIE2E.Seconds()
			if factor < 5 || factor > 20 {
				t.Errorf("%s: no-opt factor %.1fx implausible", r.Label, factor)
			}
		}
	}
}

func TestFig12aOverheadGrowsWhenBandwidthLimited(t *testing.T) {
	cm := Defaults()
	rows, err := Figure12aBandwidth(cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	full, half, quarter := rows[0], rows[1], rows[2]
	if half.Overhead <= full.Overhead {
		t.Fatalf("overhead did not grow when bandwidth halved: %.2f%% -> %.2f%%", full.Overhead, half.Overhead)
	}
	if quarter.Overhead <= full.Overhead {
		t.Fatal("overhead did not grow at quarter bandwidth")
	}
	// Saturation: the two limited configs sit near the wire-expansion
	// ceiling, not 2x apart (paper: 4.55 % vs 4.45 %).
	if quarter.Overhead > 2.2*half.Overhead {
		t.Fatalf("no saturation: half %.2f%%, quarter %.2f%%", half.Overhead, quarter.Overhead)
	}
	// Vanilla E2E itself degrades with the link.
	if quarter.VanillaE2E <= full.VanillaE2E {
		t.Fatal("vanilla E2E insensitive to bandwidth")
	}
}

func TestFig12bSwapScenario(t *testing.T) {
	cm := Defaults()
	rows, err := Figure12bKVCache(cm)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: both systems drop to ~83 % relative performance.
		if r.RelPerfVan < 65 || r.RelPerfVan > 95 {
			t.Errorf("util %.0f%%: vanilla relative perf %.1f%% outside ballpark", r.Util*100, r.RelPerfVan)
		}
		// ccAI adds less than ~3 % on top (paper < 2 %).
		if r.CCAIAdds < 0 || r.CCAIAdds > 3.5 {
			t.Errorf("util %.0f%%: ccAI adds %.2f%%", r.Util*100, r.CCAIAdds)
		}
		if r.RelPerfCCAI >= r.RelPerfVan {
			t.Errorf("ccAI relative perf not below vanilla")
		}
	}
}

func TestLoadTimeScalesWithWeights(t *testing.T) {
	cm := Defaults()
	small, _ := Run(Workload{Device: xpu.A100, Session: llm.Session{Model: llm.OPT13B, PromptTokens: 64, GenTokens: 64, Batch: 1}}, VanillaMode, cm)
	big, _ := Run(Workload{Device: xpu.A100, Session: llm.Session{Model: llm.Llama3_70B, PromptTokens: 64, GenTokens: 64, Batch: 1}}, VanillaMode, cm)
	ratio := big.LoadTime.Seconds() / small.LoadTime.Seconds()
	want := float64(llm.Llama3_70B.WeightBytes()) / float64(llm.OPT13B.WeightBytes())
	if ratio < want*0.8 || ratio > want*1.2 {
		t.Fatalf("load-time ratio %.1f, want ~%.1f", ratio, want)
	}
}

func TestNoOptLoadPaysPerPacketCost(t *testing.T) {
	cm := Defaults()
	w := Workload{Device: xpu.A100, Session: llamaSession(64, 64, 1)}
	cc, _ := Run(w, CCAI, cm)
	no, _ := Run(w, CCAINoOpt, cm)
	if no.LoadTime < 100*cc.LoadTime {
		t.Fatalf("no-opt load %v vs ccAI %v: per-packet I/O cost missing", no.LoadTime, cc.LoadTime)
	}
}

func TestRunValidatesSession(t *testing.T) {
	cm := Defaults()
	if _, err := Run(Workload{Device: xpu.A100}, CCAI, cm); err == nil {
		t.Fatal("empty session accepted")
	}
}

func TestOverheadHelpers(t *testing.T) {
	if got := Overhead(100, 105); got != 5 {
		t.Fatalf("Overhead = %v", got)
	}
	if got := OverheadTPS(100, 95); got != 5 {
		t.Fatalf("OverheadTPS = %v", got)
	}
	if Overhead(0, 5) != 0 || OverheadTPS(0, 5) != 0 {
		t.Fatal("zero baselines must not divide")
	}
}

// --- tables -------------------------------------------------------------------

func TestTable1CountsConsistent(t *testing.T) {
	rows := Table1Categorization()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Count == 0 {
			t.Errorf("%v: no packets classified", r.Permission)
		}
		if r.Permission.Action() != r.Action {
			t.Errorf("%v mapped to %v", r.Permission, r.Action)
		}
	}
	// Mix shape: data writes dominate, hostile probes all dropped.
	if rows[1].Count <= rows[0].Count {
		t.Error("protected traffic should dominate drops in the mix")
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Write-Read Protected") {
		t.Error("render missing category names")
	}
}

func TestTable2HasAllDesignsAndCCAIRow(t *testing.T) {
	rows := Table2Compatibility()
	if len(rows) != 18 {
		t.Fatalf("designs = %d, want 18 (17 prior + ccAI)", len(rows))
	}
	last := rows[len(rows)-1]
	if !strings.HasPrefix(last.Design, "ccAI") {
		t.Fatal("ccAI row missing")
	}
	if last.AppChanges != "No" || last.XPUSWChanges != "No" || last.XPUHWChanges != "No" {
		t.Fatal("ccAI compatibility claims wrong")
	}
	out := RenderTable2(rows, Table2Checks(true, true, true, true))
	if !strings.Contains(out, "NVIDIA H100") || !strings.Contains(out, "[ok  ]") {
		t.Error("render incomplete")
	}
}

func TestTable3MeasuresRealLoC(t *testing.T) {
	rows, err := Table3TCB("../..")
	if err != nil {
		t.Fatal(err)
	}
	var adaptor, trust int
	for _, r := range rows {
		switch r.Component {
		case "Adaptor":
			adaptor = r.LoC
		case "Trust Modules":
			trust = r.LoC
		}
	}
	if adaptor < 200 {
		t.Fatalf("adaptor LoC = %d; count broken", adaptor)
	}
	if trust < 400 {
		t.Fatalf("trust modules LoC = %d; count broken", trust)
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "Packet Filter") || !strings.Contains(out, "Total") {
		t.Error("render incomplete")
	}
}

func TestRenderFunctionsProduceRows(t *testing.T) {
	cm := Defaults()
	fb, _ := Figure8FixBatch(cm)
	if out := RenderFig8("Figure 8 fix-batch", fb); strings.Count(out, "\n") < len(fb)+2 {
		t.Error("fig8 render too short")
	}
	f9, _ := Figure9Models(cm)
	if out := RenderFig9(f9); !strings.Contains(out, "Babel-83b") {
		t.Error("fig9 render missing models")
	}
	f10, _ := Figure10XPUs(cm)
	if out := RenderFig10(f10); !strings.Contains(out, "N150d") {
		t.Error("fig10 render missing devices")
	}
	t11, b11, _ := Figure11Optimization(cm)
	if out := RenderFig11(t11, b11); !strings.Contains(out, "NoOpt") {
		t.Error("fig11 render incomplete")
	}
	f12a, _ := Figure12aBandwidth(cm)
	if out := RenderFig12a(f12a); !strings.Contains(out, "8GT/s x8") {
		t.Error("fig12a render incomplete")
	}
	f12b, _ := Figure12bKVCache(cm)
	if out := RenderFig12b(f12b); !strings.Contains(out, "%") {
		t.Error("fig12b render incomplete")
	}
}

func TestWireTimeMonotone(t *testing.T) {
	bps := pcie.LinkConfig{Gen: pcie.Gen4, Lanes: 16}.RawBandwidth()
	var prev sim.Time
	for _, n := range []int64{0, 1, 256, 4096, 1 << 20} {
		got := wireTime(n, bps)
		if got < prev {
			t.Fatalf("wireTime not monotone at %d", n)
		}
		prev = got
	}
}
