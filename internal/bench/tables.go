package bench

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"ccai/internal/core"
	"ccai/internal/pcie"
)

// --- Table 1: packet access-control categorization ---------------------------

// Table1Row pairs a permission category with its action and a live
// classification count from a representative traffic mix.
type Table1Row struct {
	Permission core.Permission
	Action     core.Action
	Count      uint64
}

// Table1Categorization builds the Figure 5 example filter, pushes a
// representative packet mix through it, and reports how many packets
// landed in each Table 1 category.
func Table1Categorization() []Table1Row {
	tvm := pcie.MakeID(0, 1, 0)
	rogue := pcie.MakeID(0, 9, 0)
	f := core.NewFilter()
	for _, r := range core.L1Screen(1, tvm) {
		f.InstallL1(r)
	}
	f.InstallL2(core.Rule{ID: 1, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MWr, Requester: tvm, AddrLo: 0x6000, AddrHi: 0x7000, Action: core.ActionWriteReadProtect})
	f.InstallL2(core.Rule{ID: 2, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MWr, Requester: tvm, AddrLo: 0x8000, AddrHi: 0x9000, Action: core.ActionWriteProtect})
	f.InstallL2(core.Rule{ID: 3, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MWr, Requester: tvm, AddrLo: 0x1000, AddrHi: 0x5000, Action: core.ActionWriteReadProtect})
	f.InstallL2(core.Rule{ID: 4, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MRd, Requester: tvm, AddrLo: 0x1000, AddrHi: 0x5000, Action: core.ActionPassThrough})

	// Representative traffic mix: data writes, doorbells, status reads,
	// and hostile probes.
	for i := 0; i < 64; i++ {
		f.Classify(pcie.NewMemWrite(tvm, 0x1000+uint64(i)*16, []byte("data")))
	}
	for i := 0; i < 16; i++ {
		f.Classify(pcie.NewMemWrite(tvm, 0x8000, []byte{1}))
		f.Classify(pcie.NewMemRead(tvm, 0x2000, 64, 0))
	}
	for i := 0; i < 8; i++ {
		f.Classify(pcie.NewMemWrite(rogue, 0x1000, []byte("evil")))
		f.Classify(pcie.NewMemWrite(tvm, 0x6100, []byte("cfg")))
	}
	st := f.Stats()
	return []Table1Row{
		{core.Prohibited, core.ActionDrop, st.Dropped},
		{core.WriteReadProtected, core.ActionWriteReadProtect, st.Protected},
		{core.WriteProtected, core.ActionWriteProtect, st.Verified},
		{core.FullAccessible, core.ActionPassThrough, st.Passed},
	}
}

// RenderTable1 renders the categorization table.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString(header("Table 1 — PCIe packet access control categories (live classification counts)"))
	fmt.Fprintf(&b, "%-24s %-26s %8s\n", "packet access permission", "action", "packets")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-26s %8d\n", r.Permission, r.Action, r.Count)
	}
	return b.String()
}

// --- Table 2: compatibility comparison ---------------------------------------

// Table2Row is one design's compatibility profile (Table 2's columns).
type Table2Row struct {
	Design        string
	DesignType    string
	AppChanges    string
	XPUSWChanges  string
	XPUHWChanges  string
	SupportedXPU  string
	SupportedTEE  string
	HostPLChanges string
}

// Table2Compatibility reproduces the paper's comparison matrix. The
// ccAI row's first three columns are not copied from the paper — they
// are verified live by Table2Checks against this reproduction.
func Table2Compatibility() []Table2Row {
	return []Table2Row{
		{"ACAI", "CPU TEE-based", "No", "Yes", "No", "TDISP-compliant xPU", "Arm CCA", "RMM, Monitor"},
		{"Cronus", "CPU TEE-based", "No", "Yes", "No", "General xPU", "Arm SEL2", "S-Hyp, Monitor"},
		{"CURE", "CPU TEE-based", "No", "Yes", "No", "GPU", "Customized RISC-V TEE", "Monitor, CPU FW"},
		{"HIX", "CPU TEE-based", "Customized API", "Yes", "No", "GPU", "Intel SGX", "CPU Firmware"},
		{"Portal", "CPU TEE-based", "No", "Yes", "No", "GPU", "Arm CCA", "RMM, Monitor"},
		{"HyperTEE", "CPU TEE-based", "Customized API", "Yes", "No", "DNN Accelerator", "Customized RISC-V TEE", "Monitor"},
		{"CAGE", "PL-SW-assisted", "No", "Yes", "No", "GPU", "Arm CCA", "Monitor"},
		{"Honeycomb", "PL-SW-assisted", "No", "Yes", "No", "GPU", "AMD SEV", "SVSM, Monitor"},
		{"MyTEE", "PL-SW-assisted", "No", "Yes", "No", "GPU", "Customized Arm TEE", "Monitor"},
		{"ITX", "Hardware", "Customized API", "Yes", "Yes", "IPU", "General TVM", "No"},
		{"NVIDIA H100", "Hardware", "No", "Yes", "Yes", "GPU", "Intel TDX, AMD SEV", "No"},
		{"Graviton", "Hardware", "No", "Yes", "Yes", "GPU", "Intel SGX", "No"},
		{"ShEF", "Hardware", "Customized API", "Yes", "Yes", "FPGA-Acc.", "General TVM", "No"},
		{"HETEE", "Isolated platform", "Customized API", "No", "No", "General xPU", "Customized proxy TEE", "No"},
		{"Intel TDX Connect", "TDISP-based", "No", "Optional", "Optional", "TDISP-compliant xPU", "Intel TDX", "TDX Connect"},
		{"ARM RMEDA", "TDISP-based", "No", "Optional", "Optional", "TDISP-compliant xPU", "Arm CCA", "RMM"},
		{"AMD SEV-TIO", "TDISP-based", "No", "Optional", "Optional", "TDISP-compliant xPU", "AMD SEV", "SEV Firmware"},
		{"ccAI (ours)", "PCIe interposer", "No", "No", "No", "General xPU", "General TVM", "No"},
	}
}

// Table2Check is one live verification of a ccAI compatibility claim.
type Table2Check struct {
	Claim string
	Pass  bool
}

// Table2Checks verifies the ccAI row against this codebase: the same
// application task code, driver model, and device models run under
// both modes; only the platform assembly differs.
func Table2Checks(sameDriver, sameApp, sameDevice, fiveXPUs bool) []Table2Check {
	return []Table2Check{
		{"no application changes between vanilla and ccAI", sameApp},
		{"no xPU driver changes between vanilla and ccAI", sameDriver},
		{"no xPU hardware (device model) changes", sameDevice},
		{"all five fleet xPUs run under one Adaptor/SC", fiveXPUs},
	}
}

// RenderTable2 renders the compatibility matrix plus live checks.
func RenderTable2(rows []Table2Row, checks []Table2Check) string {
	var b strings.Builder
	b.WriteString(header("Table 2 — Compatibility comparison with the state of the art"))
	fmt.Fprintf(&b, "%-18s %-17s %-15s %-10s %-10s %-22s %-22s %s\n",
		"design", "type", "app chg", "xPU SW", "xPU HW", "supported xPU", "TEE/TVM", "host PL-SW chg")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-17s %-15s %-10s %-10s %-22s %-22s %s\n",
			r.Design, r.DesignType, r.AppChanges, r.XPUSWChanges, r.XPUHWChanges,
			r.SupportedXPU, r.SupportedTEE, r.HostPLChanges)
	}
	if len(checks) > 0 {
		b.WriteString("\nlive verification of the ccAI row:\n")
		for _, c := range checks {
			mark := "FAIL"
			if c.Pass {
				mark = "ok"
			}
			fmt.Fprintf(&b, "  [%-4s] %s\n", mark, c.Claim)
		}
	}
	return b.String()
}

// --- Table 3: TCB breakdown ----------------------------------------------------

// Table3Row is one TCB component.
type Table3Row struct {
	Side      string
	Component string
	LoC       int // software lines (0 where hardware-only)
	ALUTs     int // modeled FPGA adaptive LUTs
	Regs      int // modeled logic registers
	BRAMs     int // modeled block RAMs
}

// table3Hardware is the modeled FPGA resource budget, proportioned as
// in the paper's prototype (Table 3): the Packet Handlers' crypto
// datapath dominates ALUTs, the Packet Filter's tables dominate BRAM.
var table3Hardware = []Table3Row{
	{"PCIe-SC", "Packet Filter", 0, 11_300, 32_400, 310},
	{"PCIe-SC", "Packet Handlers", 0, 175_500, 56_800, 72},
	{"PCIe-SC", "HRoT-Blade (HPS)", 0, 0, 0, 0},
	{"PCIe-SC", "Others (switch/clocks)", 0, 31_500, 106_500, 248},
}

// Table3TCB assembles the breakdown: TVM-side software LoC measured
// from this repository (adaptor + trust modules), hardware budget
// modeled. srcRoot locates the repository; empty uses the working
// directory.
func Table3TCB(srcRoot string) ([]Table3Row, error) {
	if srcRoot == "" {
		srcRoot = "."
	}
	adaptorLoC, err := CountGoLoC(filepath.Join(srcRoot, "internal", "adaptor"))
	if err != nil {
		return nil, err
	}
	trustLoC := 0
	for _, dir := range []string{"hrot", "attest", "secmem"} {
		n, err := CountGoLoC(filepath.Join(srcRoot, "internal", dir))
		if err != nil {
			return nil, err
		}
		trustLoC += n
	}
	rows := []Table3Row{
		{"TVM", "Adaptor", adaptorLoC, 0, 0, 0},
		{"TVM", "Trust Modules", trustLoC, 0, 0, 0},
	}
	rows = append(rows, table3Hardware...)
	return rows, nil
}

// CountGoLoC counts non-test Go source lines under dir (excluding
// blank lines), the cloc-style measurement the paper applies to the
// Adaptor and trust modules.
func CountGoLoC(dir string) (int, error) {
	total := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(line) != "" {
				total++
			}
		}
		return nil
	})
	return total, err
}

// RenderTable3 renders the TCB breakdown.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString(header("Table 3 — TCB addition breakdown (software LoC measured, hardware budget modeled)"))
	fmt.Fprintf(&b, "%-8s %-24s %8s %9s %9s %7s\n", "side", "component", "LoC", "ALUTs", "Regs", "BRAMs")
	var loc, aluts, regs, brams int
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-24s %8s %9s %9s %7s\n", r.Side, r.Component,
			dashIfZero(r.LoC), dashIfZero(r.ALUTs), dashIfZero(r.Regs), dashIfZero(r.BRAMs))
		loc += r.LoC
		aluts += r.ALUTs
		regs += r.Regs
		brams += r.BRAMs
	}
	fmt.Fprintf(&b, "%-8s %-24s %8d %9d %9d %7d\n", "", "Total", loc, aluts, regs, brams)
	return b.String()
}

func dashIfZero(v int) string {
	if v == 0 {
		return "–"
	}
	return fmt.Sprintf("%d", v)
}
