package bench

import (
	"fmt"
	"strings"

	"ccai/internal/llm"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// §8.1 "Comparison to H100": the paper contrasts ccAI's 0.05–5.67 %
// latency overhead with the >20 % E2E overhead reported for H100
// confidential computing ([77, 94]). We model the H100-CC data path to
// show where that difference comes from structurally, not to bash the
// H100: its bounce-buffer protocol encrypts on the CPU and decrypts on
// the GPU with no inline engine between them, so staging crypto and
// the extra copy serialize with every transfer, and (per [77]) the
// encrypted channel also caps effective transfer bandwidth.

// H100CCModel captures the published characteristics of the H100
// confidential-computing data path.
type H100CCModel struct {
	// CPUCryptoBps is the host-side AES rate for bounce encryption.
	CPUCryptoBps float64
	// BounceCopyBps is the extra staging copy bandwidth.
	BounceCopyBps float64
	// ChannelCapBps caps the encrypted channel's effective throughput
	// ([77] measures ~4 GB/s H2D under H100-CC vs ~25 GB/s native).
	ChannelCapBps float64
	// PerTransfer is the fixed secure-channel setup per DMA region.
	PerTransfer sim.Time
	// PerLaunch is the synchronous command-buffer encryption cost per
	// kernel launch; [77] attributes a large share of H100-CC's
	// overhead to this serialization.
	PerLaunch sim.Time
}

// DefaultH100CC returns the literature-calibrated model.
func DefaultH100CC() H100CCModel {
	return H100CCModel{
		CPUCryptoBps:  4.6e9, // single-stream AES-NI
		BounceCopyBps: 20e9,
		ChannelCapBps: 4e9,
		PerTransfer:   30 * sim.Microsecond,
		PerLaunch:     110 * sim.Microsecond,
	}
}

// RunH100CC prices the workload under the modeled H100-CC protocol:
// vanilla compute plus fully serialized staging crypto on all
// sensitive traffic, with the capped channel bandwidth.
func RunH100CC(w Workload, cm CostModel, h H100CCModel) (Result, error) {
	van, err := Run(w, VanillaMode, cm)
	if err != nil {
		return Result{}, err
	}
	trace, err := llm.Plan(w.Session, w.Device.MemBytes)
	if err != nil {
		return Result{}, err
	}
	perByte := 1/h.CPUCryptoBps + 1/h.BounceCopyBps
	cost := func(sens int64, regions int) sim.Time {
		if sens <= 0 {
			return 0
		}
		d := sim.Time(float64(sens) * perByte * float64(sim.Second))
		// Channel cap: the portion of transfer time above the native
		// link time is additional stall.
		native := wireTime(sens, w.Device.Link.RawBandwidth())
		capped := sim.Time(float64(sens) / h.ChannelCapBps * float64(sim.Second))
		if capped > native {
			d += capped - native
		}
		return d + sim.Time(regions)*h.PerTransfer
	}

	r := van
	r.Protection = CCAI // closest enum; relabeled by the caller
	r.LoadTime = van.LoadTime + cost(trace.Load.SensitiveH2D, trace.Load.DMATransfers)
	r.TTFT = van.TTFT + cost(trace.Prefill.SensitiveH2D+trace.Prefill.SensitiveD2H, 3)
	stepExtra := cost(trace.Step.SensitiveH2D+trace.Step.SensitiveD2H+
		cm.KVStageFactor*w.Session.Model.KVBytesPerToken(), trace.Step.DMATransfers) +
		sim.Time(trace.Step.KernelLaunches)*h.PerLaunch
	r.StepTime = van.StepTime + stepExtra
	r.E2E = r.TTFT + sim.Time(trace.Steps())*r.StepTime +
		(van.E2E - van.TTFT - sim.Time(trace.Steps())*van.StepTime) // teardown share
	r.E2E += cost(trace.Teardown.SensitiveD2H, 1)
	gen := float64(w.Session.Batch) * float64(w.Session.GenTokens)
	r.TPS = gen / r.E2E.Seconds()
	return r, nil
}

// ComparisonRow contrasts the three systems on one workload.
type ComparisonRow struct {
	Label      string
	VanillaE2E sim.Time
	CCAIOvh    float64
	H100CCOvh  float64
}

// H100Comparison runs the §8.1 contrast across the Figure 8 token
// sweep.
func H100Comparison(cm CostModel) ([]ComparisonRow, error) {
	h := DefaultH100CC()
	var rows []ComparisonRow
	for _, tok := range []int{128, 512, 2048} {
		w := Workload{Device: xpu.A100, Session: llm.Session{
			Model: llm.Llama2_7B, PromptTokens: tok, GenTokens: tok, Batch: 1}}
		van, cc, err := Compare(w, cm)
		if err != nil {
			return nil, err
		}
		h100, err := RunH100CC(w, cm, h)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ComparisonRow{
			Label:      fmt.Sprintf("%d-tok", tok),
			VanillaE2E: van.E2E,
			CCAIOvh:    Overhead(van.E2E, cc.E2E),
			H100CCOvh:  Overhead(van.E2E, h100.E2E),
		})
	}
	return rows, nil
}

// RenderH100Comparison renders the contrast (§8.1: H100-CC shows >20 %
// overhead in the cited studies; ccAI stays under ~6 %).
func RenderH100Comparison(rows []ComparisonRow) string {
	var b strings.Builder
	b.WriteString(header("§8.1 comparison — ccAI vs modeled H100 confidential computing (Llama-2-7B, A100-class)"))
	fmt.Fprintf(&b, "%-10s %12s %12s %14s\n", "config", "van E2E(s)", "ccAI ovh", "H100-CC ovh")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.2f %+11.2f%% %+13.2f%%\n",
			r.Label, r.VanillaE2E.Seconds(), r.CCAIOvh, r.H100CCOvh)
	}
	b.WriteString("(paper: studies [77, 94] report >20 % E2E overhead for H100-CC; ccAI: 0.05–5.67 %)\n")
	return b.String()
}
