package bench

import (
	"fmt"
	"sort"
	"strings"

	"ccai/internal/llm"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// Serving-load extension (beyond the paper's single-request figures):
// a stream of inference requests arrives at one protected xPU and
// queues for the device. The discrete-event engine drives arrivals and
// completions; per-request latency distributions show how ccAI's small
// per-request overhead composes under load — in particular, that the
// overhead does not amplify through the queue until the device
// approaches saturation.

// ServingConfig describes one serving-load run.
type ServingConfig struct {
	Device xpu.Profile
	Model  llm.ModelSpec
	// PromptTokens/GenTokens per request.
	PromptTokens, GenTokens int
	// Requests is the total number of requests to serve.
	Requests int
	// ArrivalRate is the offered load in requests/second (exponential
	// interarrival times drawn from a seeded deterministic generator).
	ArrivalRate float64
	// Seed fixes the arrival process.
	Seed uint64
}

// ServingResult summarizes one run.
type ServingResult struct {
	Protection Protection
	// P50/P95/P99 are request latency percentiles (queueing + service).
	P50, P95, P99 sim.Time
	// Mean is the average request latency.
	Mean sim.Time
	// Utilization is the device's busy fraction over the run.
	Utilization float64
	// Completed is the number of requests served.
	Completed int
}

// RunServing simulates the arrival process against a single device
// whose per-request service time comes from the calibrated cost model.
func RunServing(cfg ServingConfig, prot Protection, cm CostModel) (ServingResult, error) {
	if cfg.Requests <= 0 || cfg.ArrivalRate <= 0 {
		return ServingResult{}, fmt.Errorf("bench: serving needs positive requests and rate")
	}
	w := Workload{Device: cfg.Device, Session: llm.Session{
		Model: cfg.Model, PromptTokens: cfg.PromptTokens, GenTokens: cfg.GenTokens, Batch: 1}}
	r, err := Run(w, prot, cm)
	if err != nil {
		return ServingResult{}, err
	}
	service := r.E2E // per-request service time on the device

	eng := sim.NewEngine()
	rng := sim.NewRand(cfg.Seed)
	device := sim.NewResource("xpu", 0, service)

	latencies := make([]sim.Time, 0, cfg.Requests)
	var at sim.Time
	for i := 0; i < cfg.Requests; i++ {
		// Exponential interarrival via inverse transform.
		u := rng.Float64()
		if u <= 0 {
			u = 1e-12
		}
		gap := sim.Time(-lnApprox(u) / cfg.ArrivalRate * float64(sim.Second))
		at += gap
		arrival := at
		eng.At(arrival, func() {
			done := device.Use(arrival, 0)
			latencies = append(latencies, done-arrival)
		})
	}
	end := eng.Run()
	_ = end

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) sim.Time {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	var sum sim.Time
	for _, l := range latencies {
		sum += l
	}
	_, _, busy, _ := device.Stats()
	makespan := device.FreeAt()
	util := 0.0
	if makespan > 0 {
		util = float64(busy) / float64(makespan)
	}
	return ServingResult{
		Protection: prot,
		P50:        pct(0.50), P95: pct(0.95), P99: pct(0.99),
		Mean:        sum / sim.Time(len(latencies)),
		Utilization: util,
		Completed:   len(latencies),
	}, nil
}

// lnApprox computes ln(x) for x in (0,1] via the stdlib-free
// Newton/bit-trick-free route: ln(x) = 2·artanh((x-1)/(x+1)) series.
// Accuracy of ~1e-9 over (1e-12, 1] is ample for interarrival draws.
func lnApprox(x float64) float64 {
	// Range-reduce into [0.5, 1) by pulling out powers of two:
	// ln(x) = ln(m) + k·ln(2).
	k := 0
	for x < 0.5 {
		x *= 2
		k--
	}
	for x >= 1 {
		x /= 2
		k++
	}
	z := (x - 1) / (x + 1)
	zz := z * z
	term := z
	var s float64
	for i := 0; i < 30; i++ {
		s += term / float64(2*i+1)
		term *= zz
	}
	const ln2 = 0.6931471805599453
	return 2*s + float64(k)*ln2
}

// ServingSweep runs vanilla and ccAI across a set of arrival rates.
type ServingRow struct {
	Rate    float64
	Vanilla ServingResult
	CCAI    ServingResult
}

// ServingExperiment sweeps offered load on a short-request workload
// (OPT-1.3b, 64/64 tokens on A100: ~0.5 s service time).
func ServingExperiment(cm CostModel, rates []float64) ([]ServingRow, error) {
	var rows []ServingRow
	for _, rate := range rates {
		cfg := ServingConfig{
			Device: xpu.A100, Model: llm.OPT13B,
			PromptTokens: 64, GenTokens: 64,
			Requests: 400, ArrivalRate: rate, Seed: 7,
		}
		van, err := RunServing(cfg, VanillaMode, cm)
		if err != nil {
			return nil, err
		}
		cc, err := RunServing(cfg, CCAI, cm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ServingRow{Rate: rate, Vanilla: van, CCAI: cc})
	}
	return rows, nil
}

// RenderServing renders the sweep.
func RenderServing(rows []ServingRow) string {
	var b strings.Builder
	b.WriteString(header("Serving load (extension) — request latency under queueing, vanilla vs ccAI"))
	fmt.Fprintf(&b, "%-10s | %10s %10s %10s %6s | %10s %10s %10s %6s | %8s\n",
		"req/s", "van p50", "van p95", "van p99", "util", "ccAI p50", "ccAI p95", "ccAI p99", "util", "p99 ovh")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.2f | %9.2fs %9.2fs %9.2fs %5.0f%% | %9.2fs %9.2fs %9.2fs %5.0f%% | %+7.2f%%\n",
			r.Rate,
			r.Vanilla.P50.Seconds(), r.Vanilla.P95.Seconds(), r.Vanilla.P99.Seconds(), r.Vanilla.Utilization*100,
			r.CCAI.P50.Seconds(), r.CCAI.P95.Seconds(), r.CCAI.P99.Seconds(), r.CCAI.Utilization*100,
			Overhead(r.Vanilla.P99, r.CCAI.P99))
	}
	return b.String()
}
