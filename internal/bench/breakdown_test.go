package bench

import (
	"strings"
	"testing"

	"ccai/internal/llm"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

func TestExplainPhasesSumToE2E(t *testing.T) {
	cm := Defaults()
	w := Workload{Device: xpu.A100, Session: llm.Session{
		Model: llm.Llama2_7B, PromptTokens: 256, GenTokens: 256, Batch: 4}}
	for _, prot := range []Protection{VanillaMode, CCAI, CCAINoOpt} {
		b, err := Explain(w, prot, cm)
		if err != nil {
			t.Fatal(err)
		}
		sum := b.Setup + b.Prefill + b.Decode + b.Teardown
		diff := sum - b.E2E
		if diff < 0 {
			diff = -diff
		}
		if diff > sim.Microsecond {
			t.Fatalf("%v: phases sum to %v, E2E %v", prot, sum, b.E2E)
		}
		if b.Steps != 255 {
			t.Fatalf("steps = %d", b.Steps)
		}
		if b.Decode <= 0 || b.Teardown < 0 {
			t.Fatalf("%v: negative phase: %+v", prot, b)
		}
	}
}

func TestExplainSetupOnlyUnderProtection(t *testing.T) {
	cm := Defaults()
	w := Workload{Device: xpu.A100, Session: llm.Session{
		Model: llm.OPT13B, PromptTokens: 64, GenTokens: 64, Batch: 1}}
	van, err := Explain(w, VanillaMode, cm)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := Explain(w, CCAI, cm)
	if err != nil {
		t.Fatal(err)
	}
	if van.Setup != 0 {
		t.Fatal("vanilla run charged session setup")
	}
	if cc.Setup != cm.SessionSetup {
		t.Fatalf("ccAI setup = %v", cc.Setup)
	}
	if cc.Decode <= van.Decode {
		t.Fatal("protected decode not slower")
	}
}

func TestRenderBreakdown(t *testing.T) {
	cm := Defaults()
	w := Workload{Device: xpu.A100, Session: llm.Session{
		Model: llm.Llama2_7B, PromptTokens: 128, GenTokens: 128, Batch: 1}}
	var rows []Breakdown
	for _, prot := range []Protection{VanillaMode, CCAI} {
		b, err := Explain(w, prot, cm)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, b)
	}
	out := RenderBreakdown(rows)
	for _, want := range []string{"Vanilla", "ccAI", "per-step", "decode"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
