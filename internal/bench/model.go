// Package bench is the experiment harness: it converts LLM session
// traces (internal/llm) into virtual-time latency on a device profile
// under three protection configurations — vanilla, ccAI, and the
// non-optimized ccAI ablation — and regenerates every table and figure
// of the paper's evaluation (§8). All calibration constants live in
// CostModel and are documented in EXPERIMENTS.md.
package bench

import (
	"fmt"

	"ccai/internal/llm"
	"ccai/internal/pcie"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// Protection selects the system configuration under test.
type Protection int

const (
	// VanillaMode is the unprotected baseline.
	VanillaMode Protection = iota
	// CCAI is the full optimized system (§5 optimizations on).
	CCAI
	// CCAINoOpt is the Figure 11 ablation: per-request metadata I/O
	// reads, per-subtask notify writes, single-threaded software
	// crypto, no transfer/compute overlap.
	CCAINoOpt
)

func (p Protection) String() string {
	switch p {
	case VanillaMode:
		return "Vanilla"
	case CCAI:
		return "ccAI"
	case CCAINoOpt:
		return "ccAI-NoOpt"
	}
	return fmt.Sprintf("Protection(%d)", int(p))
}

// CostModel carries every calibration constant of the protection
// timing model (DESIGN.md §5, EXPERIMENTS.md "Calibration").
type CostModel struct {
	// SessionSetup is the fixed per-request cost of ccAI session
	// bring-up: policy/descriptor sync and stream-context init. It
	// dominates TTFT overhead at short prompts (Fig. 8e) and amortizes
	// at long ones.
	SessionSetup sim.Time

	// FrameworkPrefill is the serving stack's fixed request cost
	// (tokenization, scheduling, graph warm-up), identical in both
	// modes; it calibrates absolute TTFT to the paper's ~0.2–1 s.
	FrameworkPrefill sim.Time

	// StepSoftwareBase + StepSoftwarePerMB price ccAI's per-iteration
	// software work: bounce-buffer management plus tag-batch posting
	// proportional to the staged bytes. Together they set the
	// compute-bound overhead floor (~0.6 % for Llama-2-7B on A100).
	StepSoftwareBase  sim.Time
	StepSoftwarePerMB sim.Time

	// TransferSetup is the per-DMA-region cost under the optimized
	// protocol: one batched metadata read from the TVM buffer plus one
	// region-ready notify write.
	TransferSetup sim.Time

	// PerPacketIO is the non-optimized protocol's cost per protected
	// 256-byte TLP: an MMIO metadata query plus a notify write, each a
	// VM-exit round trip. This term produces Figure 11's ~10× blow-up.
	PerPacketIO sim.Time

	// WireExpansion is the fraction of extra wire traffic on protected
	// (A2) bytes: companion tag packets, IV/counter sync, and header
	// growth. It is the saturated-overhead ceiling of Figures 9/12a.
	WireExpansion float64

	// AdaptorCryptoBps is the TVM-side staging rate (AES-NI across the
	// Adaptor's worker threads, §5). Bulk traffic is chunk-pipelined
	// and fully hidden (the rate exceeds every link); serial sync
	// traffic exposes (1-AdaptorOverlap) of its crypto time.
	AdaptorCryptoBps float64
	AdaptorOverlap   float64

	// CryptoSetupPerChunk is the fixed AES-GCM per-chunk setup cost on
	// the AES-NI path (counter-block derivation, GHASH init, dispatch):
	// throughput-independent work that dominates small-chunk batches.
	// CryptoBatchDepth is how many chunks the batched submission path
	// seals per dispatch; with batching on, the setup amortizes across
	// the depth, which is what lets measured AES-NI throughput approach
	// its streaming rate on 256-byte TLP chunks.
	CryptoSetupPerChunk sim.Time
	CryptoBatchDepth    int

	// SoftCryptoBps is the no-opt ablation's single-threaded software
	// rate, fully serialized.
	SoftCryptoBps float64

	// SCEngineBps is the PCIe-SC's inline AES-GCM-SHA engine rate.
	// Serialized transfers charge its occupancy explicitly: summed with
	// wire time when the data plane is store-and-forward, hidden under
	// the DMA shadow (max composition plus one span of pipeline fill)
	// when OptSet.OverlapDMA is on. Faster than every link
	// configuration, so with overlap it contributes fill only.
	SCEngineBps float64

	// ContextSlots is the De/Encryption Parameters Manager capacity;
	// ThrashFraction is the per-step cost fraction once concurrent
	// sequence streams exceed the slots (the Fig. 8b/d step between
	// batch 12 and 24): the SC falls back to per-burst parameter
	// reloads across the step's protected traffic.
	ContextSlots   int
	ThrashFraction float64

	// GuardedMMIO is the added latency per A3 doorbell (filter match +
	// MAC verify, pipelined with the posted write).
	GuardedMMIO sim.Time

	// MemEfficiency derates device memory bandwidth for framework and
	// kernel inefficiency, calibrating absolute decode speed to the
	// paper's measured ~35 tok/s for Llama-2-7B on A100.
	MemEfficiency float64

	// KVStageFactor sizes the serving stack's per-step host staging
	// traffic (KV-page and sampling-state spill through pinned host
	// memory) as a multiple of per-token KV size × batch.
	KVStageFactor int64
}

// Defaults returns the calibrated cost model.
func Defaults() CostModel {
	return CostModel{
		SessionSetup:        8 * sim.Millisecond,
		FrameworkPrefill:    150 * sim.Millisecond,
		StepSoftwareBase:    30 * sim.Microsecond,
		StepSoftwarePerMB:   30 * sim.Microsecond,
		TransferSetup:       2 * sim.Microsecond,
		PerPacketIO:         12 * sim.Microsecond,
		WireExpansion:       0.045,
		AdaptorCryptoBps:    36.8e9, // 8 threads × 4.6 GB/s AES-NI
		AdaptorOverlap:      0.95,
		CryptoSetupPerChunk: 25 * sim.Nanosecond,
		CryptoBatchDepth:    16,
		SoftCryptoBps:       220e6,
		SCEngineBps:         28e9,
		ContextSlots:        16,
		ThrashFraction:      0.045,
		GuardedMMIO:         150 * sim.Nanosecond,
		MemEfficiency:       0.35,
		KVStageFactor:       8,
	}
}

// Workload binds a session to a device and optional overrides.
type Workload struct {
	Device  xpu.Profile
	Session llm.Session
	// Link overrides the device's PCIe configuration (Figure 12a).
	Link *pcie.LinkConfig
	// OffloadPerStep adds per-step bulk host staging bytes on top of
	// the KVStageFactor model (Figure 12a's offload-heavy serving
	// configuration).
	OffloadPerStep int64
}

// Result is one run's metrics.
type Result struct {
	Protection Protection
	// E2E is the request latency: TTFT + decode + result teardown
	// (model already resident; LoadTime reported separately).
	E2E sim.Time
	// TTFT is time to first token: session setup + prompt upload +
	// prefill + first-logits return.
	TTFT sim.Time
	// TPS is generated tokens per second across the batch.
	TPS float64
	// LoadTime is the one-time model upload cost.
	LoadTime sim.Time
	// StepTime is the steady-state per-iteration latency.
	StepTime sim.Time
	// PCIeTime is the request's total host-link payload occupancy
	// (bulk + serial, per full session including load).
	PCIeTime sim.Time
}

// OptSet selects the §5 optimizations individually, so ablations can
// decompose Figure 11 into per-optimization contributions. CCAI maps
// to all-on, CCAINoOpt to all-off.
type OptSet struct {
	// BatchedMetadata: DMA metadata delivered in batches to a
	// TVM-resident buffer instead of per-request I/O reads.
	BatchedMetadata bool
	// BatchedNotify: one region-ready I/O write per transfer instead of
	// per-subtask notifies.
	BatchedNotify bool
	// HWCrypto: AES-NI instead of scalar software AES.
	HWCrypto bool
	// ParallelCrypto: crypto spread across the Adaptor's worker
	// threads.
	ParallelCrypto bool
	// OverlapDMA: the SC data-plane pipeline (DESIGN.md §15) — decrypt
	// of chunk i+1 runs while chunk i's DMA is on the wire (H2D
	// decrypt-ahead) and ciphertext DMA issues while later chunks are
	// still sealing (D2H write-span streaming). Serialized transfers
	// then cost max(crypto, wire) per steady-state chunk plus one span
	// of pipeline fill, instead of their sum.
	OverlapDMA bool
}

// FullOpts is the ccAI configuration.
func FullOpts() OptSet {
	return OptSet{BatchedMetadata: true, BatchedNotify: true, HWCrypto: true, ParallelCrypto: true, OverlapDMA: true}
}

// NoOpts is the Figure 11 ablation configuration.
func NoOpts() OptSet { return OptSet{} }

// Run executes the timing model for one workload/protection pair.
func Run(w Workload, prot Protection, cm CostModel) (Result, error) {
	switch prot {
	case VanillaMode:
		return runModel(w, nil, cm, prot)
	case CCAI:
		o := FullOpts()
		return runModel(w, &o, cm, prot)
	default:
		o := NoOpts()
		return runModel(w, &o, cm, prot)
	}
}

// RunOpts executes the protected timing model under a partial
// optimization set (Figure 11 decomposition).
func RunOpts(w Workload, opts OptSet, cm CostModel) (Result, error) {
	prot := CCAI
	if opts == NoOpts() {
		prot = CCAINoOpt
	}
	return runModel(w, &opts, cm, prot)
}

// runModel is the shared pricing engine; opts == nil means vanilla.
func runModel(w Workload, opts *OptSet, cm CostModel, prot Protection) (Result, error) {
	trace, err := llm.Plan(w.Session, w.Device.MemBytes)
	if err != nil {
		return Result{}, err
	}
	link := w.Device.Link
	if w.Link != nil {
		link = *w.Link
	}
	bps := link.RawBandwidth()
	r := Result{Protection: prot}
	var pcieTotal sim.Time

	// Per-packet I/O shares when the §5 batching optimizations are off:
	// metadata queries are I/O reads per DMA request, notifies I/O
	// writes per crypto subtask. Together they sum to PerPacketIO, so
	// all-off reproduces the calibrated Figure 11 blow-up exactly.
	ioRead := cm.PerPacketIO * 7 / 12
	ioWrite := cm.PerPacketIO - ioRead

	// cryptoTime prices the Adaptor-side de/encryption of s bytes under
	// the active optimization set, returning only the unhidden part.
	cryptoTime := func(s int64) sim.Time {
		if opts == nil || s <= 0 {
			return 0
		}
		if !opts.HWCrypto {
			// Scalar software AES: fully serialized.
			return sim.Time(float64(s) / cm.SoftCryptoBps * float64(sim.Second))
		}
		rate := cm.AdaptorCryptoBps
		if !opts.ParallelCrypto {
			rate /= 8 // single worker thread
		}
		stream := float64(s) / rate * float64(sim.Second)
		// AES-NI pays a fixed setup per 256-byte chunk; the batched
		// submission path dispatches CryptoBatchDepth chunks at a time,
		// amortizing it, while per-packet notifies force one dispatch per
		// chunk and expose the full setup cost.
		chunks := (s + 255) / 256
		setup := float64(chunks) * float64(cm.CryptoSetupPerChunk)
		if opts.BatchedNotify && cm.CryptoBatchDepth > 1 {
			setup /= float64(cm.CryptoBatchDepth)
		}
		return sim.Time((stream + setup) * (1 - cm.AdaptorOverlap))
	}

	// ioTime prices the metadata/notify interactions for s protected
	// bytes across the given number of DMA regions.
	ioTime := func(s int64, regions int) sim.Time {
		if opts == nil || s <= 0 {
			return 0
		}
		packets := (s + 255) / 256
		var d sim.Time
		if opts.BatchedMetadata {
			d += sim.Time(regions) * cm.TransferSetup / 2
		} else {
			d += sim.Time(packets) * ioRead
		}
		if opts.BatchedNotify {
			d += sim.Time(regions) * cm.TransferSetup / 2
		} else {
			d += sim.Time(packets) * ioWrite
		}
		return d
	}

	// serialCost prices a serialized transfer of n bytes (s of them
	// sensitive) spanning the given number of DMA regions. It covers
	// both directions: H2D span reads (SC fetch + batch decrypt ahead of
	// the device's next gulp) and D2H span writes (write-span seal with
	// ciphertext DMA streamed from the emit path) price identically.
	serialCost := func(n, s int64, regions int) sim.Time {
		if n <= 0 {
			return 0
		}
		wire := wireTime(n, bps)
		pcieTotal += wire
		if opts == nil {
			return wire
		}
		exp := sim.Time(float64(wireTime(s, bps)) * cm.WireExpansion)
		pcieTotal += exp
		dma := wire + exp
		crypto := cryptoTime(s)
		// scTime is the inline engine's occupancy for the sensitive
		// bytes: every protected chunk passes through the SC's AES-GCM
		// engine between wire and destination.
		scTime := sim.Time(float64(s) / cm.SCEngineBps * float64(sim.Second))
		if opts.OverlapDMA && s > 0 {
			// Decrypt/DMA pipelining: in steady state the engine works on
			// span i+1 while span i's TLPs occupy the wire, so the
			// serialized chunk cost is max(crypto, DMA) — whichever side
			// is slower — plus one span of pipeline fill: the first span
			// must pass through the non-bottleneck stage before the
			// bottleneck can stream (k·max + one span of the other
			// stage, the two-stage pipeline identity).
			span := s
			if span > pcie.MaxReadReq {
				span = pcie.MaxReadReq
			}
			fill := sim.Time(float64(span) / cm.SCEngineBps * float64(sim.Second))
			if w := wireTime(span, bps); w < fill {
				fill = w
			}
			serial := dma
			if scTime > serial {
				serial = scTime
			}
			return serial + fill + crypto + ioTime(s, regions)
		}
		// Store-and-forward SC: each chunk is fully decrypted or sealed
		// before its DMA issues, so engine time and wire time add up.
		return dma + scTime + crypto + ioTime(s, regions)
	}

	// pipelined reports whether bulk traffic can overlap compute: it
	// needs both batching optimizations (no per-packet stalls) and
	// hardware crypto fast enough to keep up with the link.
	pipelined := opts == nil || (opts.BatchedMetadata && opts.BatchedNotify && opts.HWCrypto)

	// bulkWire prices pipelined bulk traffic: wire time inflated by the
	// tag/metadata expansion; whether it costs wall-clock depends on
	// the compute slack at the call site.
	bulkWire := func(n int64) sim.Time {
		if n <= 0 {
			return 0
		}
		wire := wireTime(n, bps)
		pcieTotal += wire
		if opts != nil {
			exp := sim.Time(float64(wire) * cm.WireExpansion)
			pcieTotal += exp
			return wire + exp
		}
		return wire
	}

	// --- model load (one-time; excluded from E2E) ---
	if !pipelined {
		r.LoadTime = serialCost(trace.Load.H2DBytes, trace.Load.SensitiveH2D, trace.Load.DMATransfers)
	} else {
		r.LoadTime = bulkWire(trace.Load.H2DBytes)
		if opts != nil {
			r.LoadTime += sim.Time(trace.Load.DMATransfers) * cm.TransferSetup
		}
	}

	// --- TTFT: setup + prompt upload + prefill compute + first logits ---
	var ttft sim.Time
	ttft += cm.FrameworkPrefill
	if opts != nil {
		ttft += cm.SessionSetup
	}
	ttft += serialCost(trace.Prefill.H2DBytes, trace.Prefill.SensitiveH2D, 1)
	ttft += computeTime(trace.Prefill, w.Device, cm)
	ttft += serialCost(trace.Prefill.D2HBytes, trace.Prefill.SensitiveD2H, 2)
	ttft += mmioCost(trace.Prefill.KernelLaunches, prot, cm)
	r.TTFT = ttft

	// --- steady-state decode step ---
	compute := computeTime(trace.Step, w.Device, cm)
	// stageBytes are mutable KV/sampling state the Adaptor must seal
	// every step: a fixed staging-window sweep per iteration (the
	// serving stack's pinned host buffer), independent of batch size.
	// Spill and offload re-fetch immutable pre-sealed content (weights
	// sealed once at load), costing wire time but no per-step Adaptor
	// software.
	stageBytes := cm.KVStageFactor * w.Session.Model.KVBytesPerToken()
	bulkBytes := stageBytes + w.OffloadPerStep + trace.StepSwapBytes
	serialBytes := trace.Step.H2DBytes + trace.Step.D2HBytes + trace.StepSwapSerial
	serialSens := trace.Step.SensitiveH2D + trace.Step.SensitiveD2H + trace.StepSwapSerial

	var step sim.Time
	if !pipelined {
		// No overlap: everything is serialized through the per-packet
		// protocol.
		step = compute +
			serialCost(bulkBytes, bulkBytes, 2) +
			serialCost(serialBytes, serialSens, trace.Step.DMATransfers)
	} else {
		// Bulk staging overlaps compute (double-buffered prefetch);
		// only the excess over compute costs wall-clock. This is the
		// mechanism behind the Figure 12a bandwidth cliff and the
		// Figure 9 heavy-model saturation at ~WireExpansion.
		bulk := bulkWire(bulkBytes)
		if opts != nil && bulkBytes > 0 {
			bulk += cm.TransferSetup * 2
		}
		step = compute
		if bulk > step {
			step = bulk
		}
		step += serialCost(serialBytes, serialSens, trace.Step.DMATransfers)
	}
	step += mmioCost(trace.Step.KernelLaunches, prot, cm)
	if opts != nil {
		step += cm.StepSoftwareBase + sim.Time(stageBytes>>20)*cm.StepSoftwarePerMB
	}
	if opts != nil && w.Session.Batch > cm.ContextSlots {
		// Parameter-manager thrash: per-burst context reloads across
		// the step's protected traffic.
		step += sim.Time(float64(compute) * cm.ThrashFraction)
	}
	r.StepTime = step
	decode := sim.Time(trace.Steps()) * step

	// pcieTotal currently holds load + prefill + one step; replicate
	// the step's share across all steps.
	// (Recompute precisely: price one more step and measure the delta.)
	before := pcieTotal
	_ = serialCost(serialBytes, serialSens, trace.Step.DMATransfers)
	if prot != CCAINoOpt {
		_ = bulkWire(bulkBytes)
	} else {
		_ = serialCost(bulkBytes, bulkBytes, 2)
	}
	perStepPCIe := pcieTotal - before
	pcieTotal = before + perStepPCIe*sim.Time(trace.Steps()-1)

	// --- teardown ---
	teardown := serialCost(trace.Teardown.D2HBytes, trace.Teardown.SensitiveD2H, 1)

	r.E2E = ttft + decode + teardown
	r.PCIeTime = pcieTotal
	gen := float64(w.Session.Batch) * float64(w.Session.GenTokens)
	if r.E2E > 0 {
		r.TPS = gen / r.E2E.Seconds()
	}
	return r, nil
}

func wireTime(n int64, bps float64) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(float64(pcie.WireBytes(n, 0)) / bps * float64(sim.Second))
}

// computeTime is the device-side roofline for one phase.
func computeTime(d llm.Demand, dev xpu.Profile, cm CostModel) sim.Time {
	mem := float64(d.DevMemBytes) / (dev.MemBandwidth * cm.MemEfficiency)
	flops := d.FLOPs / dev.ComputeFLOPS
	t := mem
	if flops > t {
		t = flops
	}
	return sim.Time(t*float64(sim.Second)) + dev.StepOverhead
}

// mmioCost charges per-doorbell protection latency.
func mmioCost(launches int, prot Protection, cm CostModel) sim.Time {
	if prot == VanillaMode {
		return 0
	}
	return sim.Time(launches) * cm.GuardedMMIO
}

// Overhead reports the protected run's relative slowdown versus vanilla
// on a latency metric, as a percentage (positive = slower).
func Overhead(vanilla, protected sim.Time) float64 {
	if vanilla == 0 {
		return 0
	}
	return (float64(protected) - float64(vanilla)) / float64(vanilla) * 100
}

// OverheadTPS reports the throughput drop percentage (positive =
// protected slower).
func OverheadTPS(vanilla, protected float64) float64 {
	if vanilla == 0 {
		return 0
	}
	return (vanilla - protected) / vanilla * 100
}

// Compare runs vanilla and ccAI on the same workload.
func Compare(w Workload, cm CostModel) (van, cc Result, err error) {
	van, err = Run(w, VanillaMode, cm)
	if err != nil {
		return
	}
	cc, err = Run(w, CCAI, cm)
	return
}
