package bench

import (
	"fmt"
	"strings"

	"ccai/internal/llm"
	"ccai/internal/sim"
)

// Breakdown decomposes one run's E2E latency into its phases, for the
// `ccai-bench -only breakdown` view and for tests that pin the model's
// internal structure (not just its totals).
type Breakdown struct {
	Protection Protection
	Load       sim.Time // model upload (outside E2E)
	Setup      sim.Time // session bring-up (ccAI only)
	Prefill    sim.Time // prompt upload + first forward + first logits
	Decode     sim.Time // all decode iterations
	Teardown   sim.Time // result download
	E2E        sim.Time
	Steps      int
	StepTime   sim.Time
}

// Explain runs the workload and returns the phase decomposition.
// Decode is derived as E2E − TTFT − teardown; Setup as the TTFT delta
// versus a vanilla run of the same workload.
func Explain(w Workload, prot Protection, cm CostModel) (Breakdown, error) {
	r, err := Run(w, prot, cm)
	if err != nil {
		return Breakdown{}, err
	}
	trace, err := llm.Plan(w.Session, w.Device.MemBytes)
	if err != nil {
		return Breakdown{}, err
	}
	b := Breakdown{
		Protection: prot,
		Load:       r.LoadTime,
		Prefill:    r.TTFT,
		E2E:        r.E2E,
		Steps:      trace.Steps(),
		StepTime:   r.StepTime,
	}
	b.Decode = sim.Time(b.Steps) * r.StepTime
	b.Teardown = r.E2E - r.TTFT - b.Decode
	if prot != VanillaMode {
		b.Setup = cm.SessionSetup
		b.Prefill -= b.Setup
	}
	return b, nil
}

// RenderBreakdown renders side-by-side phase decompositions.
func RenderBreakdown(rows []Breakdown) string {
	var b strings.Builder
	b.WriteString(header("Latency breakdown — where each phase's time goes"))
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %12s %10s %10s | %10s\n",
		"config", "load", "setup", "prefill", "decode", "per-step", "teardown", "E2E")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.3fs %9.3fs %9.3fs %11.3fs %9.4fs %9.4fs | %9.3fs\n",
			r.Protection.String(), r.Load.Seconds(), r.Setup.Seconds(), r.Prefill.Seconds(),
			r.Decode.Seconds(), r.StepTime.Seconds(), r.Teardown.Seconds(), r.E2E.Seconds())
	}
	return b.String()
}
