package bench

import (
	"fmt"
	"strings"

	"ccai/internal/llm"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// Figure 11 decomposition (extension): the paper measures the three §5
// optimizations only as a bundle; this experiment toggles each one
// individually to show where the ~9.5× no-opt blow-up actually lives.
// Two views: "only X disabled" (marginal cost of losing one
// optimization from full ccAI) and "only X enabled" (how far one
// optimization alone gets from the no-opt floor).

// DecompRow is one optimization-set configuration's outcome.
type DecompRow struct {
	Label string
	Opts  OptSet
	E2E   sim.Time
	// OverVanilla is the E2E overhead versus the unprotected baseline.
	OverVanilla float64
}

// Figure11Decomposition runs the per-optimization toggle matrix on the
// reference workload (Llama-2-7B, 512/512 tokens, batch 1, A100).
func Figure11Decomposition(cm CostModel) ([]DecompRow, error) {
	w := Workload{Device: xpu.A100, Session: llm.Session{
		Model: llm.Llama2_7B, PromptTokens: 512, GenTokens: 512, Batch: 1}}
	van, err := Run(w, VanillaMode, cm)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		label string
		opts  OptSet
	}{
		{"all on (ccAI)", FullOpts()},
		{"no SC overlap", OptSet{BatchedMetadata: true, BatchedNotify: true, HWCrypto: true, ParallelCrypto: true, OverlapDMA: false}},
		{"no batched metadata", OptSet{BatchedMetadata: false, BatchedNotify: true, HWCrypto: true, ParallelCrypto: true}},
		{"no batched notify", OptSet{BatchedMetadata: true, BatchedNotify: false, HWCrypto: true, ParallelCrypto: true}},
		{"no AES-NI", OptSet{BatchedMetadata: true, BatchedNotify: true, HWCrypto: false, ParallelCrypto: true}},
		{"no parallel crypto", OptSet{BatchedMetadata: true, BatchedNotify: true, HWCrypto: true, ParallelCrypto: false}},
		{"only batching", OptSet{BatchedMetadata: true, BatchedNotify: true, HWCrypto: false, ParallelCrypto: false}},
		{"only HW crypto", OptSet{BatchedMetadata: false, BatchedNotify: false, HWCrypto: true, ParallelCrypto: true}},
		{"all off (no-opt)", NoOpts()},
	}
	var rows []DecompRow
	for _, c := range configs {
		r, err := RunOpts(w, c.opts, cm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DecompRow{
			Label: c.label, Opts: c.opts, E2E: r.E2E,
			OverVanilla: Overhead(van.E2E, r.E2E),
		})
	}
	return rows, nil
}

// RenderDecomposition renders the toggle matrix.
func RenderDecomposition(rows []DecompRow) string {
	var b strings.Builder
	b.WriteString(header("Figure 11 decomposition (extension) — per-optimization contribution (Llama-2-7B, 512 tok, A100)"))
	fmt.Fprintf(&b, "%-22s %6s %6s %6s %6s %12s %14s\n",
		"configuration", "meta", "notif", "aesni", "par", "E2E(s)", "over vanilla")
	onOff := func(v bool) string {
		if v {
			return "on"
		}
		return "off"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %6s %6s %6s %6s %12.2f %+13.2f%%\n",
			r.Label, onOff(r.Opts.BatchedMetadata), onOff(r.Opts.BatchedNotify),
			onOff(r.Opts.HWCrypto), onOff(r.Opts.ParallelCrypto),
			r.E2E.Seconds(), r.OverVanilla)
	}
	return b.String()
}
