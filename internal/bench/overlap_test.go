package bench

import "testing"

// TestOverlapDMAPipelinesSerialTransfers pins the §15 overlap term:
// with OverlapDMA on, a serialized transfer's steady-state cost
// composes the SC engine and the wire as max(crypto, DMA) plus one
// span of pipeline fill; with it off they add up (store-and-forward).
func TestOverlapDMAPipelinesSerialTransfers(t *testing.T) {
	cm := Defaults()
	w := referenceWorkload(1)
	noOv := FullOpts()
	noOv.OverlapDMA = false

	on, err := RunOpts(w, FullOpts(), cm)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunOpts(w, noOv, cm)
	if err != nil {
		t.Fatal(err)
	}
	// The pipelined data plane must be strictly cheaper than the serial
	// sum on every latency surface that includes serialized transfers.
	if on.TTFT >= off.TTFT {
		t.Fatalf("overlap did not reduce TTFT: %v vs %v", on.TTFT, off.TTFT)
	}
	if on.E2E >= off.E2E {
		t.Fatalf("overlap did not reduce E2E: %v vs %v", on.E2E, off.E2E)
	}

	// The entire win must be attributable to hiding the SC engine's
	// occupancy under the DMA shadow: with the engine infinitely fast,
	// occupancy and fill both vanish and the two compositions agree
	// exactly — max(DMA, 0) + 0 == DMA + 0.
	fast := cm
	fast.SCEngineBps = 1e18
	onFast, err := RunOpts(w, FullOpts(), fast)
	if err != nil {
		t.Fatal(err)
	}
	offFast, err := RunOpts(w, noOv, fast)
	if err != nil {
		t.Fatal(err)
	}
	if onFast.E2E != offFast.E2E || onFast.TTFT != offFast.TTFT {
		t.Fatalf("overlap win not attributable to engine occupancy: on %v off %v", onFast.E2E, offFast.E2E)
	}

	// And when the engine is the bottleneck, the overlapped cost must
	// track the engine (max branch), not the sum: slowing the engine by
	// 1000x must not inflate the overlapped run by the serial sum's
	// delta.
	slow := cm
	slow.SCEngineBps = cm.SCEngineBps / 1000
	onSlow, err := RunOpts(w, FullOpts(), slow)
	if err != nil {
		t.Fatal(err)
	}
	offSlow, err := RunOpts(w, noOv, slow)
	if err != nil {
		t.Fatal(err)
	}
	if onSlow.E2E >= offSlow.E2E {
		t.Fatalf("engine-bound overlap lost to serial sum: %v vs %v", onSlow.E2E, offSlow.E2E)
	}
}
