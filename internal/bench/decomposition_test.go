package bench

import (
	"strings"
	"testing"
)

func decompByLabel(t *testing.T) map[string]DecompRow {
	t.Helper()
	rows, err := Figure11Decomposition(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]DecompRow{}
	for _, r := range rows {
		out[r.Label] = r
	}
	return out
}

func TestDecompositionEndpointsMatchFigure11(t *testing.T) {
	rows := decompByLabel(t)
	full := rows["all on (ccAI)"]
	none := rows["all off (no-opt)"]
	if full.OverVanilla <= 0 || full.OverVanilla > 5 {
		t.Fatalf("full ccAI overhead %.2f%% out of band", full.OverVanilla)
	}
	factor := none.E2E.Seconds() / full.E2E.Seconds()
	if factor < 8 || factor > 12 {
		t.Fatalf("endpoints don't reproduce Figure 11: factor %.1fx", factor)
	}
}

func TestDecompositionMonotoneInOpts(t *testing.T) {
	rows := decompByLabel(t)
	full := rows["all on (ccAI)"]
	none := rows["all off (no-opt)"]
	// Every partial configuration sits between the endpoints.
	for label, r := range rows {
		if r.E2E < full.E2E || r.E2E > none.E2E {
			t.Errorf("%s: E2E %v outside [%v, %v]", label, r.E2E, full.E2E, none.E2E)
		}
	}
	// Losing one optimization always costs something.
	for _, label := range []string{"no batched metadata", "no batched notify", "no AES-NI", "no parallel crypto"} {
		if rows[label].E2E <= full.E2E {
			t.Errorf("%s: no marginal cost", label)
		}
	}
}

func TestDecompositionBatchingDominates(t *testing.T) {
	// The §5 narrative: the I/O batching optimizations carry most of
	// the win — batching alone recovers more than HW crypto alone.
	rows := decompByLabel(t)
	if rows["only batching"].E2E >= rows["only HW crypto"].E2E {
		t.Fatalf("batching alone (%v) should beat HW crypto alone (%v)",
			rows["only batching"].E2E, rows["only HW crypto"].E2E)
	}
}

func TestRenderDecomposition(t *testing.T) {
	rows, err := Figure11Decomposition(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderDecomposition(rows)
	for _, want := range []string{"no AES-NI", "all off (no-opt)", "over vanilla"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunOptsEndpointsEqualRun(t *testing.T) {
	cm := Defaults()
	w := referenceWorkload(1)
	viaProt, err := Run(w, CCAI, cm)
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := RunOpts(w, FullOpts(), cm)
	if err != nil {
		t.Fatal(err)
	}
	if viaProt.E2E != viaOpts.E2E || viaProt.TTFT != viaOpts.TTFT {
		t.Fatal("RunOpts(FullOpts) diverges from Run(CCAI)")
	}
	noProt, err := Run(w, CCAINoOpt, cm)
	if err != nil {
		t.Fatal(err)
	}
	noOpts, err := RunOpts(w, NoOpts(), cm)
	if err != nil {
		t.Fatal(err)
	}
	if noProt.E2E != noOpts.E2E {
		t.Fatal("RunOpts(NoOpts) diverges from Run(CCAINoOpt)")
	}
	if noOpts.Protection != CCAINoOpt {
		t.Fatal("protection label wrong for all-off set")
	}
}
