package bench

import (
	"math"
	"strings"
	"testing"
)

func TestLnApproxAccuracy(t *testing.T) {
	for _, x := range []float64{1e-10, 1e-6, 0.001, 0.1, 0.25, 0.5, 0.7, 0.99, 1.0} {
		got := lnApprox(x)
		want := math.Log(x)
		if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Errorf("lnApprox(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestServingDeterministic(t *testing.T) {
	cm := Defaults()
	cfg := ServingConfig{
		Device: referenceWorkload(1).Device, Model: referenceWorkload(1).Session.Model,
		PromptTokens: 64, GenTokens: 64, Requests: 100, ArrivalRate: 0.2, Seed: 3,
	}
	a, err := RunServing(cfg, CCAI, cm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServing(cfg, CCAI, cm)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("serving run non-deterministic: %+v vs %+v", a, b)
	}
	if a.Completed != 100 {
		t.Fatalf("completed = %d", a.Completed)
	}
}

func TestServingLatencyGrowsWithLoad(t *testing.T) {
	cm := Defaults()
	rows, err := ServingExperiment(cm, []float64{0.5, 1.0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Vanilla.P99 <= rows[i-1].Vanilla.P99 {
			t.Fatalf("p99 not growing with load: %v then %v", rows[i-1].Vanilla.P99, rows[i].Vanilla.P99)
		}
		if rows[i].Vanilla.Utilization < rows[i-1].Vanilla.Utilization {
			t.Fatal("utilization not growing with load")
		}
	}
}

func TestServingCCAISlowerButBounded(t *testing.T) {
	cm := Defaults()
	rows, err := ServingExperiment(cm, []float64{0.5, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CCAI.P50 <= r.Vanilla.P50 {
			t.Fatalf("rate %.1f: ccAI p50 not above vanilla", r.Rate)
		}
		// Below saturation the queueing amplification of ccAI's small
		// service-time overhead stays moderate (< 25 % at p99).
		if r.Vanilla.Utilization < 0.9 {
			ovh := Overhead(r.Vanilla.P99, r.CCAI.P99)
			if ovh > 25 {
				t.Fatalf("rate %.1f: p99 overhead %.1f%% too large below saturation", r.Rate, ovh)
			}
		}
	}
}

func TestServingValidatesConfig(t *testing.T) {
	cm := Defaults()
	if _, err := RunServing(ServingConfig{}, CCAI, cm); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRenderServing(t *testing.T) {
	cm := Defaults()
	rows, err := ServingExperiment(cm, []float64{0.8})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderServing(rows)
	if !strings.Contains(out, "p99") || !strings.Contains(out, "0.80") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}
