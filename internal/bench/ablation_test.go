package bench

import (
	"strings"
	"testing"
)

func TestAblationContextSlotsRemoveStep(t *testing.T) {
	cm := Defaults()
	rows, err := AblationContextSlots(cm)
	if err != nil {
		t.Fatal(err)
	}
	byVal := map[string]float64{}
	for _, r := range rows {
		byVal[r.Value] = r.Overhead
	}
	// Batch 24 thrashes 16 slots but not 32: overhead must drop sharply.
	if byVal["32"] >= byVal["16"]-2 {
		t.Fatalf("32 slots (%.2f%%) should remove the 16-slot step (%.2f%%)", byVal["32"], byVal["16"])
	}
	// Below capacity the penalty is a step function, not gradual.
	if byVal["4"] != byVal["16"] {
		t.Fatalf("slot counts below batch should thrash identically: %.2f vs %.2f", byVal["4"], byVal["16"])
	}
}

func TestAblationWireExpansionMonotone(t *testing.T) {
	rows, err := AblationWireExpansion(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Overhead <= rows[i-1].Overhead {
			t.Fatalf("expansion sweep not monotone at %s", rows[i].Value)
		}
	}
	// On the saturated link, overhead tracks the expansion factor
	// roughly 1:1 (the design's ceiling property).
	last := rows[len(rows)-1]
	if last.Overhead < 14 || last.Overhead > 22 {
		t.Fatalf("18%% expansion gave %.2f%% overhead; ceiling property broken", last.Overhead)
	}
}

func TestAblationPerPacketIOMonotone(t *testing.T) {
	rows, err := AblationPerPacketIO(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Overhead <= rows[i-1].Overhead {
			t.Fatal("per-packet-io sweep not monotone")
		}
	}
	// Halving the RT should roughly halve the blow-up (it dominates).
	if rows[2].Overhead < 1.6*rows[1].Overhead {
		t.Fatalf("blow-up not ~linear in RT: %.0f%% vs %.0f%%", rows[1].Overhead, rows[2].Overhead)
	}
}

func TestAblationAdaptorThreadsHelp(t *testing.T) {
	rows, err := AblationAdaptorThreads(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.Overhead >= first.Overhead {
		t.Fatalf("more crypto threads did not reduce overhead: %.2f%% -> %.2f%%", first.Overhead, last.Overhead)
	}
}

func TestRenderAblations(t *testing.T) {
	out, err := RenderAblations(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"context-slots", "wire-expansion", "per-packet-io", "adaptor-threads", "<- default"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
