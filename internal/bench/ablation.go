package bench

import (
	"fmt"
	"strings"

	"ccai/internal/llm"
	"ccai/internal/pcie"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// Ablation sweeps: each function varies one design parameter of the
// cost model around its calibrated default and reports the resulting
// overhead, quantifying how much each design choice in DESIGN.md §5
// matters. They back the BenchmarkAblation* targets and the
// `ccai-bench -only ablations` output.

// AblationRow is one parameter setting's outcome.
type AblationRow struct {
	Param    string
	Value    string
	Overhead float64 // ccAI E2E overhead % on the reference workload
	E2E      sim.Time
}

// referenceWorkload is the Figure 8 anchor configuration: Llama-2-7B,
// 512 tokens, batch 1, A100.
func referenceWorkload(batch int) Workload {
	return Workload{Device: xpu.A100, Session: llm.Session{
		Model: llm.Llama2_7B, PromptTokens: 512, GenTokens: 512, Batch: batch}}
}

func sweepOverhead(w Workload, cm CostModel) (float64, sim.Time, error) {
	van, err := Run(w, VanillaMode, cm)
	if err != nil {
		return 0, 0, err
	}
	cc, err := Run(w, CCAI, cm)
	if err != nil {
		return 0, 0, err
	}
	return Overhead(van.E2E, cc.E2E), cc.E2E, nil
}

// AblationContextSlots sweeps the De/Encryption Parameters Manager
// capacity at batch 24 — the choice that creates Figure 8's overhead
// step. More slots push the thrash point past the workload's batch.
func AblationContextSlots(cm CostModel) ([]AblationRow, error) {
	var rows []AblationRow
	for _, slots := range []int{4, 8, 16, 32, 64} {
		m := cm
		m.ContextSlots = slots
		w := referenceWorkload(24)
		ovh, e2e, err := sweepOverhead(w, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Param: "context-slots", Value: fmt.Sprintf("%d", slots), Overhead: ovh, E2E: e2e})
	}
	return rows, nil
}

// AblationWireExpansion sweeps the protected-traffic expansion factor
// on the bandwidth-saturated Figure 12a configuration, where it is the
// dominant cost.
func AblationWireExpansion(cm CostModel) ([]AblationRow, error) {
	var rows []AblationRow
	link := Fig12aLimitedLink()
	for _, exp := range []float64{0.01, 0.02, 0.045, 0.09, 0.18} {
		m := cm
		m.WireExpansion = exp
		w := referenceWorkload(1)
		w.Link = &link
		w.OffloadPerStep = Fig12aOffload
		ovh, e2e, err := sweepOverhead(w, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Param: "wire-expansion", Value: fmt.Sprintf("%.1f%%", exp*100), Overhead: ovh, E2E: e2e})
	}
	return rows, nil
}

// AblationPerPacketIO sweeps the non-optimized protocol's per-packet
// round-trip cost, showing how the Figure 11 blow-up scales with MMIO
// exit latency.
func AblationPerPacketIO(cm CostModel) ([]AblationRow, error) {
	var rows []AblationRow
	w := referenceWorkload(1)
	van, err := Run(w, VanillaMode, cm)
	if err != nil {
		return nil, err
	}
	for _, rt := range []sim.Time{3 * sim.Microsecond, 6 * sim.Microsecond, 12 * sim.Microsecond, 24 * sim.Microsecond} {
		m := cm
		m.PerPacketIO = rt
		no, err := Run(w, CCAINoOpt, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Param: "per-packet-io", Value: rt.String(),
			Overhead: Overhead(van.E2E, no.E2E), E2E: no.E2E,
		})
	}
	return rows, nil
}

// AblationAdaptorThreads sweeps the Adaptor's crypto parallelism (§5's
// "allocate additional CPU threads"), measured on the no-opt-adjacent
// single-lane configuration where staging crypto is visible.
func AblationAdaptorThreads(cm CostModel) ([]AblationRow, error) {
	var rows []AblationRow
	for _, threads := range []int{1, 2, 4, 8, 16} {
		m := cm
		m.AdaptorCryptoBps = 4.6e9 * float64(threads)
		m.AdaptorOverlap = 0 // expose the crypto cost fully
		w := referenceWorkload(48)
		ovh, e2e, err := sweepOverhead(w, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Param: "adaptor-threads", Value: fmt.Sprintf("%d", threads), Overhead: ovh, E2E: e2e})
	}
	return rows, nil
}

// Fig12aLimitedLink returns the most constrained Figure 12a link
// (8 GT/s ×8), where protected-traffic expansion dominates.
func Fig12aLimitedLink() pcie.LinkConfig {
	return pcie.LinkConfig{Gen: pcie.Gen3, Lanes: 8, PropagationDelay: 250 * sim.Nanosecond}
}

// RenderAblations renders all four sweeps.
func RenderAblations(cm CostModel) (string, error) {
	var b strings.Builder
	b.WriteString(header("Ablations — sensitivity of the calibrated design choices"))
	for _, sweep := range []struct {
		name string
		fn   func(CostModel) ([]AblationRow, error)
		note string
	}{
		{"context-slots @ batch 24", AblationContextSlots, "slots ≥ batch remove the Fig. 8 step"},
		{"wire-expansion @ 8GT/s x8", AblationWireExpansion, "sets the saturated ceiling of Figs. 9/12a"},
		{"per-packet-io (no-opt)", AblationPerPacketIO, "drives the Fig. 11 blow-up"},
		{"adaptor-threads (overlap off)", AblationAdaptorThreads, "§5 parallel-crypto optimization"},
	} {
		rows, err := sweep.fn(cm)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "[%s] — %s\n", sweep.name, sweep.note)
		for _, r := range rows {
			marker := ""
			if isDefaultAblation(r, cm) {
				marker = "  <- default"
			}
			fmt.Fprintf(&b, "  %-16s %8s  ->  %+8.2f%%  (E2E %.2fs)%s\n", r.Param, r.Value, r.Overhead, r.E2E.Seconds(), marker)
		}
	}
	return b.String(), nil
}

func isDefaultAblation(r AblationRow, cm CostModel) bool {
	switch r.Param {
	case "context-slots":
		return r.Value == fmt.Sprintf("%d", cm.ContextSlots)
	case "wire-expansion":
		return r.Value == fmt.Sprintf("%.1f%%", cm.WireExpansion*100)
	case "per-packet-io":
		return r.Value == cm.PerPacketIO.String()
	case "adaptor-threads":
		return r.Value == "8"
	}
	return false
}
