package bench

import (
	"fmt"
	"strings"

	"ccai/internal/llm"
	"ccai/internal/pcie"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// This file regenerates every table and figure of the paper's
// evaluation (§8). Each ExperimentX function returns structured rows;
// Render* turn them into the text form cmd/ccai-bench prints. Paper
// reference values are embedded alongside each experiment so
// EXPERIMENTS.md can show paper-vs-measured side by side.

// Fig8Row is one x-axis point of Figure 8 (all six panels share the
// sweep structure).
type Fig8Row struct {
	Label      string
	VanillaE2E sim.Time
	CCAIE2E    sim.Time
	E2EOvh     float64
	VanillaTPS float64
	CCAITPS    float64
	TPSOvh     float64
	VanTTFT    sim.Time
	CCAITTFT   sim.Time
	TTFTOvh    float64
}

func fig8Row(label string, w Workload, cm CostModel) (Fig8Row, error) {
	van, cc, err := Compare(w, cm)
	if err != nil {
		return Fig8Row{}, err
	}
	return Fig8Row{
		Label:      label,
		VanillaE2E: van.E2E, CCAIE2E: cc.E2E, E2EOvh: Overhead(van.E2E, cc.E2E),
		VanillaTPS: van.TPS, CCAITPS: cc.TPS, TPSOvh: OverheadTPS(van.TPS, cc.TPS),
		VanTTFT: van.TTFT, CCAITTFT: cc.TTFT, TTFTOvh: Overhead(van.TTFT, cc.TTFT),
	}, nil
}

// Fig8TokenSweep is the fix-batch sweep (Figures 8a/8c/8e): batch 1,
// token size 64–2048 on Llama-2-7B / A100.
var Fig8TokenSweep = []int{64, 128, 256, 512, 1024, 2048}

// Fig8BatchSweep is the fix-token sweep (Figures 8b/8d/8f): 128
// tokens, batch 1–96.
var Fig8BatchSweep = []int{1, 3, 6, 12, 24, 48, 96}

// Figure8FixBatch reproduces Figures 8a/8c/8e.
func Figure8FixBatch(cm CostModel) ([]Fig8Row, error) {
	rows := make([]Fig8Row, 0, len(Fig8TokenSweep))
	for _, tok := range Fig8TokenSweep {
		w := Workload{Device: xpu.A100, Session: llm.Session{
			Model: llm.Llama2_7B, PromptTokens: tok, GenTokens: tok, Batch: 1}}
		row, err := fig8Row(fmt.Sprintf("%d-tok", tok), w, cm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure8FixToken reproduces Figures 8b/8d/8f.
func Figure8FixToken(cm CostModel) ([]Fig8Row, error) {
	rows := make([]Fig8Row, 0, len(Fig8BatchSweep))
	for _, b := range Fig8BatchSweep {
		w := Workload{Device: xpu.A100, Session: llm.Session{
			Model: llm.Llama2_7B, PromptTokens: 128, GenTokens: 128, Batch: b}}
		row, err := fig8Row(fmt.Sprintf("%d-bat", b), w, cm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9Row is one model of Figure 9.
type Fig9Row struct {
	Model      llm.ModelSpec
	VanillaE2E sim.Time
	CCAIE2E    sim.Time
	Overhead   float64
	PaperOvh   float64
}

// fig9PaperOverheads are the percentages printed above Figure 9's bars.
var fig9PaperOverheads = map[string]float64{
	"OPT-1.3b": 0.72, "BLOOM-3b": 1.61, "Deepseek-llm-7b": 0.02,
	"Llama2-7b": 0.68, "Llama3-8b": 0.29, "Deepseek-r1-32b": 4.76,
	"Deepseek-r1-70b": 2.14, "Llama3-70b": 4.66, "Babel-83b": 2.84,
}

// Fig9MemUtilCap models the prototype serving stack's usable-memory
// fraction; heavy models exceed it and spill (see EXPERIMENTS.md).
const Fig9MemUtilCap = 0.55

// Figure9Models reproduces Figure 9: nine LLMs, 512 tokens, batch 1.
func Figure9Models(cm CostModel) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, m := range llm.Catalogue() {
		w := Workload{Device: xpu.A100, Session: llm.Session{
			Model: m, PromptTokens: 512, GenTokens: 512, Batch: 1, MemUtilCap: Fig9MemUtilCap}}
		van, cc, err := Compare(w, cm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			Model: m, VanillaE2E: van.E2E, CCAIE2E: cc.E2E,
			Overhead: Overhead(van.E2E, cc.E2E), PaperOvh: fig9PaperOverheads[m.Name],
		})
	}
	return rows, nil
}

// Fig10Row is one device of Figure 10.
type Fig10Row struct {
	Device     xpu.Profile
	Model      llm.ModelSpec
	VanillaE2E sim.Time
	CCAIE2E    sim.Time
	Overhead   float64
	PaperOvh   float64
}

// Figure10XPUs reproduces Figure 10: Llama2-7b on A100/4090Ti/S60,
// OPT-1.3b on the memory-limited T4 and N150d (matching §8.4).
func Figure10XPUs(cm CostModel) ([]Fig10Row, error) {
	cases := []struct {
		dev   xpu.Profile
		model llm.ModelSpec
		paper float64
	}{
		{xpu.A100, llm.Llama2_7B, 0.58},
		{xpu.T4, llm.OPT13B, 2.40},
		{xpu.RTX4090Ti, llm.Llama2_7B, 0.86},
		{xpu.S60, llm.Llama2_7B, 0.34},
		{xpu.N150d, llm.OPT13B, 1.23},
	}
	var rows []Fig10Row
	for _, c := range cases {
		w := Workload{Device: c.dev, Session: llm.Session{
			Model: c.model, PromptTokens: 512, GenTokens: 512, Batch: 1}}
		van, cc, err := Compare(w, cm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Device: c.dev, Model: c.model, VanillaE2E: van.E2E, CCAIE2E: cc.E2E,
			Overhead: Overhead(van.E2E, cc.E2E), PaperOvh: c.paper,
		})
	}
	return rows, nil
}

// Fig11Row is one point of the Figure 11 ablation.
type Fig11Row struct {
	Label     string
	CCAIE2E   sim.Time
	NoOptE2E  sim.Time
	Reduction float64 // % of E2E the optimizations remove
}

// Figure11Optimization reproduces Figure 11: optimized ccAI versus the
// non-optimized protocol on both Figure 8 sweeps.
func Figure11Optimization(cm CostModel) (tokenRows, batchRows []Fig11Row, err error) {
	run := func(label string, s llm.Session) (Fig11Row, error) {
		w := Workload{Device: xpu.A100, Session: s}
		cc, err := Run(w, CCAI, cm)
		if err != nil {
			return Fig11Row{}, err
		}
		no, err := Run(w, CCAINoOpt, cm)
		if err != nil {
			return Fig11Row{}, err
		}
		return Fig11Row{
			Label: label, CCAIE2E: cc.E2E, NoOptE2E: no.E2E,
			Reduction: (1 - cc.E2E.Seconds()/no.E2E.Seconds()) * 100,
		}, nil
	}
	for _, tok := range []int{64, 128, 256, 512, 1024} {
		row, err := run(fmt.Sprintf("%d-tok", tok),
			llm.Session{Model: llm.Llama2_7B, PromptTokens: tok, GenTokens: tok, Batch: 1})
		if err != nil {
			return nil, nil, err
		}
		tokenRows = append(tokenRows, row)
	}
	for _, b := range []int{1, 3, 6, 12, 24} {
		row, err := run(fmt.Sprintf("%d-bat", b),
			llm.Session{Model: llm.Llama2_7B, PromptTokens: 128, GenTokens: 128, Batch: b})
		if err != nil {
			return nil, nil, err
		}
		batchRows = append(batchRows, row)
	}
	return tokenRows, batchRows, nil
}

// Fig12aRow is one PCIe configuration of Figure 12a.
type Fig12aRow struct {
	Link       pcie.LinkConfig
	VanillaE2E sim.Time
	CCAIE2E    sim.Time
	Overhead   float64
	PaperOvh   float64
}

// Fig12aOffload is the offload-heavy serving configuration of the
// bandwidth stress test: the paper's vanilla E2E rises ~45 % when the
// link drops to quarter bandwidth, implying substantial per-step PCIe
// traffic; 400 MB/step of KV/weight staging reproduces that
// sensitivity (see EXPERIMENTS.md).
const Fig12aOffload = 400 << 20

// Figure12aBandwidth reproduces Figure 12a.
func Figure12aBandwidth(cm CostModel) ([]Fig12aRow, error) {
	cases := []struct {
		link  pcie.LinkConfig
		paper float64
	}{
		{pcie.LinkConfig{Gen: pcie.Gen4, Lanes: 16, PropagationDelay: 250 * sim.Nanosecond}, 0.68},
		{pcie.LinkConfig{Gen: pcie.Gen3, Lanes: 16, PropagationDelay: 250 * sim.Nanosecond}, 4.55},
		{pcie.LinkConfig{Gen: pcie.Gen3, Lanes: 8, PropagationDelay: 250 * sim.Nanosecond}, 4.45},
	}
	var rows []Fig12aRow
	for _, c := range cases {
		link := c.link
		w := Workload{
			Device:  xpu.A100,
			Session: llm.Session{Model: llm.Llama2_7B, PromptTokens: 512, GenTokens: 512, Batch: 1},
			Link:    &link, OffloadPerStep: Fig12aOffload,
		}
		van, cc, err := Compare(w, cm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12aRow{
			Link: c.link, VanillaE2E: van.E2E, CCAIE2E: cc.E2E,
			Overhead: Overhead(van.E2E, cc.E2E), PaperOvh: c.paper,
		})
	}
	return rows, nil
}

// Fig12bRow is one memory-utilization point of Figure 12b.
type Fig12bRow struct {
	Util        float64
	RelPerfVan  float64 // capped vanilla vs uncapped vanilla, %
	RelPerfCCAI float64 // capped ccAI vs uncapped vanilla, %
	CCAIAdds    float64 // extra overhead ccAI adds under swapping, %
	PaperAdds   float64
}

// Fig12bPromptSamples is how many ShareGPT-style prompt lengths each
// utilization point averages over (§8.6: "inputs from ShareGPT, with
// input tokens ranging from 4 to 924").
const Fig12bPromptSamples = 24

// Figure12bKVCache reproduces Figure 12b: 3 GB pinned KV cache with
// 80/70/60 % device-memory utilization caps forcing KV swapping,
// averaged over sampled chat-length prompts.
func Figure12bKVCache(cm CostModel) ([]Fig12bRow, error) {
	prompts := llm.NewPromptSampler(12).Sample(Fig12bPromptSamples)
	run := func(util float64, prot Protection) (sim.Time, error) {
		var total sim.Time
		for _, p := range prompts {
			w := Workload{Device: xpu.A100, Session: llm.Session{
				Model: llm.Llama2_7B, PromptTokens: p, GenTokens: 512, Batch: 1,
				MemUtilCap: util, PinnedKVBytes: pinnedKVFor(util)}}
			r, err := Run(w, prot, cm)
			if err != nil {
				return 0, err
			}
			total += r.E2E
		}
		return total / sim.Time(len(prompts)), nil
	}
	baseVan, err := run(0, VanillaMode)
	if err != nil {
		return nil, err
	}
	paper := map[float64]float64{0.8: 0.54, 0.7: 1.88, 0.6: 1.46}
	var rows []Fig12bRow
	for _, util := range []float64{0.8, 0.7, 0.6} {
		van, err := run(util, VanillaMode)
		if err != nil {
			return nil, err
		}
		cc, err := run(util, CCAI)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12bRow{
			Util:        util,
			RelPerfVan:  baseVan.Seconds() / van.Seconds() * 100,
			RelPerfCCAI: baseVan.Seconds() / cc.Seconds() * 100,
			CCAIAdds:    Overhead(van, cc),
			PaperAdds:   paper[util],
		})
	}
	return rows, nil
}

// pinnedKVFor applies the §8.6 3 GB pinned KV only when a cap is set
// (the uncapped reference runs the normal resident-KV path).
func pinnedKVFor(util float64) int64 {
	if util == 0 {
		return 0
	}
	return 3 << 30
}

// --- rendering -----------------------------------------------------------

func header(title string) string {
	line := strings.Repeat("=", len(title))
	return fmt.Sprintf("%s\n%s\n", title, line)
}

// RenderFig8 renders one Figure 8 sweep as three panels of rows.
func RenderFig8(title string, rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString(header(title))
	fmt.Fprintf(&b, "%-10s %12s %12s %8s | %10s %10s %8s | %10s %10s %8s\n",
		"config", "van E2E(s)", "ccAI E2E(s)", "ovh%", "van TPS", "ccAI TPS", "drop%", "van TTFT", "ccAI TTFT", "ovh%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.2f %12.2f %+7.2f%% | %10.1f %10.1f %+7.2f%% | %9.3fs %9.3fs %+7.2f%%\n",
			r.Label, r.VanillaE2E.Seconds(), r.CCAIE2E.Seconds(), r.E2EOvh,
			r.VanillaTPS, r.CCAITPS, r.TPSOvh,
			r.VanTTFT.Seconds(), r.CCAITTFT.Seconds(), r.TTFTOvh)
	}
	return b.String()
}

// RenderFig9 renders the model sweep.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString(header("Figure 9 — E2E latency overhead across LLMs (A100, 512 tok, batch 1)"))
	fmt.Fprintf(&b, "%-18s %6s %12s %12s %10s %10s\n", "model", "quant", "van E2E(s)", "ccAI E2E(s)", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %6s %12.2f %12.2f %+9.2f%% %+9.2f%%\n",
			r.Model.Name, r.Model.Quant, r.VanillaE2E.Seconds(), r.CCAIE2E.Seconds(), r.Overhead, r.PaperOvh)
	}
	return b.String()
}

// RenderFig10 renders the device sweep.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString(header("Figure 10 — E2E latency overhead across xPUs (512 tok, batch 1)"))
	fmt.Fprintf(&b, "%-10s %-12s %12s %12s %10s %10s\n", "xPU", "model", "van E2E(s)", "ccAI E2E(s)", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-12s %12.2f %12.2f %+9.2f%% %+9.2f%%\n",
			r.Device.Name, r.Model.Name, r.VanillaE2E.Seconds(), r.CCAIE2E.Seconds(), r.Overhead, r.PaperOvh)
	}
	return b.String()
}

// RenderFig11 renders the optimization ablation.
func RenderFig11(tokenRows, batchRows []Fig11Row) string {
	var b strings.Builder
	b.WriteString(header("Figure 11 — ccAI vs non-optimized (Llama-2-7B, A100); paper: −88.69 %…−89.66 %"))
	panel := func(name string, rows []Fig11Row) {
		fmt.Fprintf(&b, "[%s]\n%-10s %14s %14s %12s\n", name, "config", "ccAI E2E(s)", "NoOpt E2E(s)", "reduction")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-10s %14.2f %14.2f %+11.2f%%\n",
				r.Label, r.CCAIE2E.Seconds(), r.NoOptE2E.Seconds(), -r.Reduction)
		}
	}
	panel("token sweep, batch 1", tokenRows)
	panel("batch sweep, 128 tok", batchRows)
	return b.String()
}

// RenderFig12a renders the bandwidth stress test.
func RenderFig12a(rows []Fig12aRow) string {
	var b strings.Builder
	b.WriteString(header("Figure 12a — limited PCIe bandwidth (Llama-2-7B, 512 tok, batch 1)"))
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %10s\n", "link", "van E2E(s)", "ccAI E2E(s)", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12.2f %12.2f %+9.2f%% %+9.2f%%\n",
			r.Link.String(), r.VanillaE2E.Seconds(), r.CCAIE2E.Seconds(), r.Overhead, r.PaperOvh)
	}
	return b.String()
}

// RenderFig12b renders the KV-swap stress test.
func RenderFig12b(rows []Fig12bRow) string {
	var b strings.Builder
	b.WriteString(header("Figure 12b — KV-cache swapping (3 GB pinned KV; relative performance vs uncapped)"))
	fmt.Fprintf(&b, "%-10s %14s %14s %12s %10s\n", "util", "vanilla rel%", "ccAI rel%", "ccAI adds", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %13.1f%% %13.1f%% %+11.2f%% %+9.2f%%\n",
			fmt.Sprintf("%.0f%%-util", r.Util*100), r.RelPerfVan, r.RelPerfCCAI, r.CCAIAdds, r.PaperAdds)
	}
	return b.String()
}
