package sim

import "fmt"

// Timeline is the transaction-level performance model used by the
// benchmark harness. A Timeline tracks a single logical flow of work
// (one inference request, one DMA stream, ...) as a cursor through
// virtual time; shared hardware (a PCIe link, a crypto engine, an xPU
// compute unit) is modelled by Resource, which serializes use.
//
// The split mirrors how the paper's numbers arise: end-to-end latency is
// the critical path of a request's cursor, and contention (e.g. the
// PCIe-SC crypto engine saturating at high batch sizes) emerges from
// Resource queueing rather than from hand-tuned percentages.
type Timeline struct {
	cursor Time
}

// NewTimeline returns a Timeline starting at instant start.
func NewTimeline(start Time) *Timeline { return &Timeline{cursor: start} }

// Now reports the flow's current instant.
func (tl *Timeline) Now() Time { return tl.cursor }

// Advance moves the cursor forward by d (a purely local cost such as
// on-device compute). Negative spans panic: they indicate a broken model.
func (tl *Timeline) Advance(d Time) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: advance by negative span %v", d))
	}
	tl.cursor += d
	return tl.cursor
}

// WaitUntil moves the cursor to instant t if t is later; joining a
// slower pipeline stage is the common use.
func (tl *Timeline) WaitUntil(t Time) Time {
	if t > tl.cursor {
		tl.cursor = t
	}
	return tl.cursor
}

// Fork returns a new Timeline starting at the current cursor, for
// modelling work that proceeds in parallel with this flow.
func (tl *Timeline) Fork() *Timeline { return NewTimeline(tl.cursor) }

// Join advances the cursor to the later of this flow and other —
// a barrier between parallel branches.
func (tl *Timeline) Join(other *Timeline) Time { return tl.WaitUntil(other.cursor) }

// Resource models a serially-shared hardware unit with a fixed service
// rate: a PCIe link direction, an AES engine, an HBM channel. Work is
// served FIFO in the order it is offered. The zero value is not usable;
// construct with NewResource.
type Resource struct {
	name string
	// bytesPerSecond is the service rate; zero means the resource is
	// latency-only (pure serialization point).
	bytesPerSecond float64
	// perOp is a fixed setup cost charged once per Use call.
	perOp Time
	// freeAt is the instant the resource next becomes idle.
	freeAt Time

	// Stats.
	ops       uint64
	bytes     uint64
	busy      Time
	waitTotal Time
}

// NewResource constructs a rate-limited shared resource. bytesPerSecond
// of zero makes the resource latency-only (each op costs exactly perOp).
func NewResource(name string, bytesPerSecond float64, perOp Time) *Resource {
	if bytesPerSecond < 0 {
		panic("sim: negative resource rate")
	}
	return &Resource{name: name, bytesPerSecond: bytesPerSecond, perOp: perOp}
}

// Name reports the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Rate reports the configured service rate in bytes per second.
func (r *Resource) Rate() float64 { return r.bytesPerSecond }

// SetRate changes the service rate; used by experiments that sweep link
// bandwidth (Figure 12a).
func (r *Resource) SetRate(bytesPerSecond float64) {
	if bytesPerSecond < 0 {
		panic("sim: negative resource rate")
	}
	r.bytesPerSecond = bytesPerSecond
}

// ServiceTime reports how long n bytes occupy the resource, excluding
// queueing.
func (r *Resource) ServiceTime(n int64) Time {
	d := r.perOp
	if r.bytesPerSecond > 0 && n > 0 {
		d += Time(float64(n) / r.bytesPerSecond * float64(Second))
	}
	return d
}

// Use occupies the resource for n bytes of work starting no earlier than
// instant at, and returns the instant the work completes. Queueing behind
// earlier work is automatic.
func (r *Resource) Use(at Time, n int64) Time {
	start := at
	if r.freeAt > start {
		r.waitTotal += r.freeAt - start
		start = r.freeAt
	}
	d := r.ServiceTime(n)
	end := start + d
	r.freeAt = end
	r.ops++
	if n > 0 {
		r.bytes += uint64(n)
	}
	r.busy += d
	return end
}

// UseOn is a convenience that advances a Timeline through the resource:
// the flow blocks until service completes.
func (r *Resource) UseOn(tl *Timeline, n int64) Time {
	return tl.WaitUntil(r.Use(tl.Now(), n))
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Reset clears queue state and statistics; experiments call this between
// runs so one configuration cannot contaminate the next.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.ops = 0
	r.bytes = 0
	r.busy = 0
	r.waitTotal = 0
}

// Stats reports cumulative operation count, bytes served, busy time and
// total queue wait.
func (r *Resource) Stats() (ops, bytes uint64, busy, wait Time) {
	return r.ops, r.bytes, r.busy, r.waitTotal
}
