package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*Microsecond, func() { got = append(got, 3) })
	e.Schedule(10*Microsecond, func() { got = append(got, 1) })
	e.Schedule(20*Microsecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Microsecond {
		t.Fatalf("final time = %v, want 30µs", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Schedule(1*Microsecond, func() {
		trace = append(trace, "a")
		e.Schedule(1*Microsecond, func() { trace = append(trace, "c") })
	})
	e.Schedule(2*Microsecond-1, func() { trace = append(trace, "b") })
	e.Run()
	want := "abc"
	var got string
	for _, s := range trace {
		got += s
	}
	if got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10*Microsecond, func() { fired++ })
	e.Schedule(20*Microsecond, func() { fired++ })
	e.RunUntil(15 * Microsecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 15*Microsecond {
		t.Fatalf("now = %v, want 15µs", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRejectsPastScheduling(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Microsecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5*Microsecond, func() {})
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
}

func TestTimelineAdvanceAndJoin(t *testing.T) {
	tl := NewTimeline(0)
	tl.Advance(5 * Microsecond)
	fork := tl.Fork()
	fork.Advance(20 * Microsecond)
	tl.Advance(3 * Microsecond)
	tl.Join(fork)
	if tl.Now() != 25*Microsecond {
		t.Fatalf("joined cursor = %v, want 25µs", tl.Now())
	}
}

func TestTimelineWaitUntilNeverRewinds(t *testing.T) {
	tl := NewTimeline(10 * Microsecond)
	tl.WaitUntil(5 * Microsecond)
	if tl.Now() != 10*Microsecond {
		t.Fatalf("WaitUntil rewound the cursor to %v", tl.Now())
	}
}

func TestResourceSerializesWork(t *testing.T) {
	// 1 GB/s resource: 1000 bytes take 1µs.
	r := NewResource("link", 1e9, 0)
	end1 := r.Use(0, 1000)
	if end1 != 1*Microsecond {
		t.Fatalf("first op ends at %v, want 1µs", end1)
	}
	// Second op offered at t=0 must queue behind the first.
	end2 := r.Use(0, 1000)
	if end2 != 2*Microsecond {
		t.Fatalf("queued op ends at %v, want 2µs", end2)
	}
	// An op offered after the queue drains starts immediately.
	end3 := r.Use(10*Microsecond, 1000)
	if end3 != 11*Microsecond {
		t.Fatalf("late op ends at %v, want 11µs", end3)
	}
}

func TestResourcePerOpCost(t *testing.T) {
	r := NewResource("mmio", 0, 2*Microsecond)
	if got := r.Use(0, 0); got != 2*Microsecond {
		t.Fatalf("latency-only op = %v, want 2µs", got)
	}
	if got := r.Use(0, 123456); got != 4*Microsecond {
		t.Fatalf("rate-free resource must ignore bytes; got %v", got)
	}
}

func TestResourceStatsAndReset(t *testing.T) {
	r := NewResource("eng", 1e9, Microsecond)
	r.Use(0, 1000)
	r.Use(0, 1000)
	ops, bytes, busy, wait := r.Stats()
	if ops != 2 || bytes != 2000 {
		t.Fatalf("ops=%d bytes=%d", ops, bytes)
	}
	if busy != 4*Microsecond {
		t.Fatalf("busy = %v, want 4µs", busy)
	}
	if wait != 2*Microsecond {
		t.Fatalf("wait = %v, want 2µs", wait)
	}
	r.Reset()
	ops, bytes, busy, wait = r.Stats()
	if ops != 0 || bytes != 0 || busy != 0 || wait != 0 || r.FreeAt() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandBytesCoversTail(t *testing.T) {
	r := NewRand(7)
	p := make([]byte, 13) // deliberately not a multiple of 8
	r.Bytes(p)
	zero := 0
	for _, b := range p {
		if b == 0 {
			zero++
		}
	}
	if zero == len(p) {
		t.Fatal("Bytes left buffer all-zero")
	}
}

// Property: resource completion times are monotone non-decreasing when
// offered in time order, and never precede offer time + service time.
func TestResourceMonotoneProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		r := NewResource("p", 5e8, 100*Nanosecond)
		var at, last Time
		for _, s := range sizes {
			end := r.Use(at, int64(s))
			if end < last {
				return false
			}
			if end < at+r.ServiceTime(int64(s)) {
				return false
			}
			last = end
			at += Time(s) // offers move forward in time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: engine executes every scheduled event exactly once and ends
// at the maximum scheduled instant.
func TestEngineCompletenessProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		count := 0
		var max Time
		for _, d := range delays {
			dt := Time(d) * Microsecond
			if dt > max {
				max = dt
			}
			e.Schedule(dt, func() { count++ })
		}
		e.Run()
		return count == len(delays) && (len(delays) == 0 || e.Now() == max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFiredAndRandHelpers(t *testing.T) {
	e := NewEngine()
	e.Schedule(Microsecond, func() {})
	e.Schedule(2*Microsecond, func() {})
	e.Run()
	if e.Fired() != 2 {
		t.Fatalf("fired = %d", e.Fired())
	}
	r := NewRand(5)
	for i := 0; i < 100; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestTimeStringAndNegativePanics(t *testing.T) {
	if (1500 * Microsecond).String() == "" {
		t.Fatal("empty time string")
	}
	tl := NewTimeline(0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	tl.Advance(-1)
}
