// Package sim provides the deterministic virtual-time substrate on which
// every ccAI experiment runs.
//
// The paper's prototype measures wall-clock seconds on a physical
// Agilex-7 + A100 testbed. We reproduce the *shape* of those results in
// a simulator, so time here is virtual: a Clock carries the current
// simulation instant, an Engine orders discrete events, and Timeline /
// Resource implement the transaction-level performance model used by
// the benchmark harness (see DESIGN.md §5).
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Time is a virtual simulation instant measured in nanoseconds since the
// start of the run. It deliberately mirrors time.Duration so component
// models can be written with familiar units.
type Time int64

// Common virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual instant (or span) into a time.Duration for
// display. Virtual nanoseconds map one-to-one onto real nanoseconds.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds, the unit used by every
// figure in the paper.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return t.Duration().String() }

// FromSeconds converts seconds into a virtual time span.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a scheduled callback inside the Engine.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }
func (h eventHeap) empty() bool   { return len(h) == 0 }
func (h eventHeap) nextAt() (Time, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Engine is a discrete-event simulation core. Events scheduled for the
// same instant fire in the order they were scheduled, so a
// single-goroutine run is fully deterministic. The engine is also safe
// to share between concurrent tenant pipelines (retry backoffs all
// advance one platform clock): queue and clock mutations are guarded by
// a mutex, while event callbacks run outside it so they may schedule
// further events. Under concurrency, time still only moves forward —
// determinism of interleaving is then up to the caller.
type Engine struct {
	mu     sync.Mutex
	now    Time
	seq    uint64
	events eventHeap
	// Stats
	fired uint64
}

// NewEngine returns an Engine positioned at virtual time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now reports the current virtual instant.
func (e *Engine) Now() Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Schedule runs fn after the given virtual delay. A negative delay is an
// error in the caller's model and panics, because silently clamping it
// would hide causality bugs. The now-read and the insert happen under
// one lock acquisition so a concurrent clock advance cannot slip the
// event into the past.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.at(e.now+delay, fn)
}

// At runs fn at the given absolute virtual instant, which must not be in
// the past.
func (e *Engine) At(t Time, fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.at(t, fn)
}

// at inserts an event; callers hold e.mu.
func (e *Engine) at(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// Step fires the next event, if any, advancing the clock to its instant.
// It reports whether an event fired. The callback runs outside the
// engine lock so it may schedule further events.
func (e *Engine) Step() bool {
	e.mu.Lock()
	if e.events.empty() {
		e.mu.Unlock()
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.fired++
	e.mu.Unlock()
	ev.fn()
	return true
}

// Run fires events until the queue drains, returning the final instant.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.Now()
}

// RunUntil fires events up to and including instant t, then advances
// the clock to at least t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	for {
		e.mu.Lock()
		at, ok := e.events.nextAt()
		if !ok || at > t {
			if t > e.now {
				e.now = t
			}
			e.mu.Unlock()
			return
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.fired++
		e.mu.Unlock()
		ev.fn()
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.events)
}

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}
