package sim

// Rand is a small deterministic pseudo-random source (SplitMix64). Every
// stochastic element of the simulation — workload prompt lengths,
// synthetic payload bytes, sensor jitter — draws from a seeded Rand so
// experiment runs are exactly reproducible.
type Rand struct {
	state uint64
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bytes fills p with pseudo-random bytes.
func (r *Rand) Bytes(p []byte) {
	for i := 0; i < len(p); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
}
