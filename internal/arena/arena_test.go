package arena

import (
	"bytes"
	"sync"
	"testing"
)

func TestGetLengthsAndClasses(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 256, 257, 512, 4096, 65536, 70000} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		Put(b)
	}
}

func TestPutZeroZeroesEagerly(t *testing.T) {
	b := Get(128)
	for i := range b {
		b[i] = 0xAA
	}
	// Keep an aliasing view: PutZero must zero the memory itself, not
	// just mark it reusable, so the secret bytes are gone the moment
	// the call returns.
	view := b[:cap(b)]
	PutZero(b)
	if !bytes.Equal(view, make([]byte, len(view))) {
		t.Fatal("PutZero left secret bytes in the buffer")
	}
}

func TestPutZeroZeroesFullCapacity(t *testing.T) {
	b := Get(512)
	for i := range b {
		b[i] = 0x5A
	}
	short := b[:10] // caller re-sliced; tail still holds secrets
	view := b[:cap(b)]
	PutZero(short)
	for i, v := range view {
		if v != 0 {
			t.Fatalf("byte %d not zeroed (cap-wide zeroing failed)", i)
		}
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	b := Get(1 << 20)
	if len(b) != 1<<20 {
		t.Fatalf("oversize Get returned len %d", len(b))
	}
	Put(b)     // must not panic
	PutZero(b) // must not panic
}

func TestForeignBufferIgnored(t *testing.T) {
	b := make([]byte, 100) // cap not a class size
	Put(b)
	PutZero(b) // zeroes, then drops
}

// TestConcurrentNoAliasing hammers the arena from many goroutines,
// each writing a distinct pattern and verifying it survives until its
// own Put — two in-flight buffers must never share memory. Run with
// -race to catch write overlap the pattern check might miss.
func TestConcurrentNoAliasing(t *testing.T) {
	const workers = 8
	const rounds = 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			pat := byte(w + 1)
			for r := 0; r < rounds; r++ {
				n := 32 + (w*37+r)%480
				b := Get(n)
				for i := range b {
					b[i] = pat
				}
				for i := range b {
					if b[i] != pat {
						t.Errorf("worker %d round %d: buffer aliased (saw %#x)", w, r, b[i])
						return
					}
				}
				if r%2 == 0 {
					PutZero(b)
				} else {
					Put(b)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSteadyStateZeroAllocs pins the package's headline contract: a
// warmed Get/Put pair allocates nothing — including the *[]byte box
// the class pools store, which is recycled through the headers pool
// rather than re-boxed per Put.
func TestSteadyStateZeroAllocs(t *testing.T) {
	// Warm every class so the measured loop only recycles.
	for _, n := range []int{64, 256, 4096} {
		Put(Get(n))
	}
	allocs := testing.AllocsPerRun(200, func() {
		b := Get(256)
		b[0] = 1
		Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f objects per op, want 0", allocs)
	}
}
