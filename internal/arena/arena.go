// Package arena provides a size-classed, sync.Pool-backed buffer
// arena for the datapath's per-chunk scratch memory: TLP payload
// assembly, seal/open ciphertext staging, tag-packet construction.
// The steady-state cost of a Get/Put pair is zero allocations.
//
// Memory discipline (DESIGN.md §10): buffers that only ever held
// public bytes — ciphertext, wire-format tag records, marshalled
// headers — are released with Put. Any buffer that held plaintext or
// key-derived material MUST be released with PutZero, which zeroes it
// eagerly before it becomes visible to the next Get. The zeroing is
// synchronous, not deferred to reuse, so a pooled buffer can never
// carry one session's secrets into another caller's hands.
package arena

import "sync"

// classes are the power-of-two size classes the arena maintains. The
// smallest covers MAC headers and AAD scratch; 512 covers one
// TLP-payload chunk (256 B) plus a GCM tag with headroom.
var classSizes = [...]int{64, 128, 256, 512, 1024, 4096, 65536}

var pools [len(classSizes)]sync.Pool

// headers recycles the *[]byte boxes the class pools store. Taking the
// address of a local slice header inside Put would heap-allocate a
// 24-byte box per call — exactly the steady-state garbage this package
// exists to remove — so Get hands its emptied box back here and Put
// reuses it. Pointer values cross the sync.Pool interface boundary
// without allocating.
var headers = sync.Pool{New: func() any { return new([]byte) }}

func init() {
	for i := range pools {
		size := classSizes[i]
		pools[i].New = func() any {
			b := make([]byte, size)
			return &b
		}
	}
}

// classOf returns the index of the smallest class holding n bytes, or
// -1 when n exceeds every class (the caller gets a plain allocation).
func classOf(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// Get returns a buffer of length n. The contents are unspecified (the
// previous user's public bytes may still be there — see PutZero for
// the secret-carrying discipline). Buffers larger than the biggest
// class fall through to the allocator and are not pooled.
func Get(n int) []byte {
	c := classOf(n)
	if c < 0 {
		return make([]byte, n)
	}
	bp := pools[c].Get().(*[]byte)
	b := *bp
	*bp = nil
	headers.Put(bp)
	return b[:n]
}

// Put returns a buffer obtained from Get to its pool without zeroing.
// Only for buffers that never held plaintext or key-derived material
// (ciphertext, marshalled records, header scratch). Buffers not from
// Get (or beyond the largest class) are dropped for the GC.
func Put(b []byte) {
	c := classOf(cap(b))
	if c < 0 || cap(b) != classSizes[c] {
		return // not one of ours; let the GC have it
	}
	bp := headers.Get().(*[]byte)
	*bp = b[:cap(b)]
	pools[c].Put(bp)
}

// PutZero zeroes the buffer's full capacity and then pools it. This is
// the mandatory release path for any buffer that ever held plaintext
// or key-derived material: the zeroing happens now, on this goroutine,
// so no subsequent Get — in this tenant or any other — can observe the
// secret bytes.
func PutZero(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0
	}
	Put(b)
}
