package arena

import "sync"

// slabBlock is the default block size a Slab carves from. 64 KiB holds
// one full task's worth of chunk payloads before the next block.
const slabBlock = 64 * 1024

// Slab is a bump allocator over large, never-recycled blocks. Take
// carves an exact-capacity slice from the current block and the memory
// is NEVER reused — when a block is exhausted the slab simply starts a
// fresh one and the old block is left to the garbage collector once
// every carved slice dies.
//
// That no-reuse property is the point: unlike the Get/Put pools above,
// slices carved from a Slab are safe to hand off as packet payloads or
// completion bodies even though bus taps may retain routed packets
// indefinitely (see pcie.NewCompletionOwned). The slab only amortizes
// the allocation count — one make per block instead of one per chunk —
// it does not recycle bytes, so there is nothing a retained reference
// could later observe being overwritten.
type Slab struct {
	mu  sync.Mutex
	buf []byte
}

// Take returns a zeroed slice of length and capacity n carved from the
// slab. Requests larger than half a block bypass the slab so a huge
// request cannot strand a mostly-empty block.
func (s *Slab) Take(n int) []byte {
	if n > slabBlock/2 {
		return make([]byte, n)
	}
	s.mu.Lock()
	if n > len(s.buf) {
		s.buf = make([]byte, slabBlock)
	}
	b := s.buf[:n:n]
	s.buf = s.buf[n:]
	s.mu.Unlock()
	return b
}
