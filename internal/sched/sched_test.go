package sched

import (
	"errors"
	"sync"
	"testing"
)

func mustPush(t *testing.T, f *Fair, flow int, cost int64, v any) *Entry {
	t.Helper()
	e, err := f.Push(flow, cost, v)
	if err != nil {
		t.Fatalf("push flow %d: %v", flow, err)
	}
	return e
}

// drainOrder pops every queued entry (releasing flows immediately, so
// busy-gating never blocks the drain) and returns the flow sequence.
func drainOrder(f *Fair) []int {
	stop := make(chan struct{})
	var order []int
	for f.Pending() > 0 {
		e, ok := f.Next(stop)
		if !ok {
			break
		}
		order = append(order, e.Flow)
		f.Release(e.Flow)
	}
	return order
}

func TestFIFOWithinFlow(t *testing.T) {
	f, err := New(Config{Flows: 1, Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPush(t, f, 0, 10, i)
	}
	stop := make(chan struct{})
	for i := 0; i < 5; i++ {
		e, ok := f.Next(stop)
		if !ok || e.Value.(int) != i {
			t.Fatalf("pop %d: got %v ok=%v", i, e.Value, ok)
		}
		f.Release(0)
	}
}

func TestQueueFullFailFast(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 2})
	mustPush(t, f, 0, 1, "a")
	mustPush(t, f, 0, 1, "b")
	if _, err := f.Push(0, 1, "c"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	// The other flow is unaffected.
	mustPush(t, f, 1, 1, "d")
	// Out-of-range flow.
	if _, err := f.Push(7, 1, "x"); !errors.Is(err, ErrNoFlow) {
		t.Fatalf("got %v, want ErrNoFlow", err)
	}
}

func TestCancelFreesCapacityAndSkipsDispatch(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 2})
	a := mustPush(t, f, 0, 1, "a")
	mustPush(t, f, 0, 1, "b")
	if !f.Cancel(a) {
		t.Fatal("cancel of queued entry refused")
	}
	if f.Cancel(a) {
		t.Fatal("double cancel succeeded")
	}
	// Capacity freed immediately.
	mustPush(t, f, 0, 1, "c")
	stop := make(chan struct{})
	e, ok := f.Next(stop)
	if !ok || e.Value.(string) != "b" {
		t.Fatalf("dispatched %v, want b (a cancelled)", e.Value)
	}
	f.Release(0)
	e, ok = f.Next(stop)
	if !ok || e.Value.(string) != "c" {
		t.Fatalf("dispatched %v, want c", e.Value)
	}
	// A claimed entry can no longer be cancelled through the queue.
	if f.Cancel(e) {
		t.Fatal("cancel of claimed entry succeeded")
	}
}

func TestBusyFlowGating(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 4})
	mustPush(t, f, 0, 1, "a0")
	mustPush(t, f, 0, 1, "a1")
	mustPush(t, f, 1, 1, "b0")
	stop := make(chan struct{})
	e1, _ := f.Next(stop) // flow 0 now busy
	if e1.Flow != 0 {
		t.Fatalf("first dispatch from flow %d, want 0", e1.Flow)
	}
	e2, _ := f.Next(stop) // must come from flow 1, not a1
	if e2.Flow != 1 {
		t.Fatalf("second dispatch from flow %d, want 1 (flow 0 busy)", e2.Flow)
	}
	f.Release(0)
	e3, _ := f.Next(stop)
	if e3.Value.(string) != "a1" {
		t.Fatalf("third dispatch %v, want a1 after release", e3.Value)
	}
}

// TestWeightedFairnessRatio floods two flows with equal-cost work and
// checks the dispatch mix tracks the 1:3 weight ratio.
func TestWeightedFairnessRatio(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 256, Weights: []int{1, 3}, Quantum: 64})
	const each = 200
	for i := 0; i < each; i++ {
		mustPush(t, f, 0, 1000, i)
		mustPush(t, f, 1, 1000, i)
	}
	order := drainOrder(f)
	// Count the mix over a prefix where both flows are still contending
	// (flow 1 empties after `each` dispatches of its own).
	counts := [2]int{}
	for _, fl := range order[:each*4/5] {
		counts[fl]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("dispatch ratio %.2f (counts %v), want ~3.0", ratio, counts)
	}
}

// TestCostAwareFairness: with equal weights, a flow pushing 4× larger
// items should win ~1/4 of the dispatches (byte fairness, not item
// fairness).
func TestCostAwareFairness(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 256, Quantum: 64})
	const each = 120
	for i := 0; i < each; i++ {
		mustPush(t, f, 0, 1000, i)
		mustPush(t, f, 1, 4000, i)
	}
	order := drainOrder(f)
	counts := [2]int{}
	for _, fl := range order[:each] {
		counts[fl]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.8 || ratio > 5.5 {
		t.Fatalf("item ratio %.2f (counts %v), want ~4.0", ratio, counts)
	}
}

func TestRequeuePreservesHeadOrder(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 4})
	mustPush(t, f, 0, 1, "a")
	mustPush(t, f, 0, 1, "b")
	stop := make(chan struct{})
	e, _ := f.Next(stop)
	f.Requeue(e)
	f.Release(0)
	e2, _ := f.Next(stop)
	if e2.Value.(string) != "a" {
		t.Fatalf("after requeue got %v, want a back at head", e2.Value)
	}
}

func TestCloseDrainsThenStops(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 4})
	mustPush(t, f, 0, 1, "a")
	f.Close()
	if _, err := f.Push(0, 1, "late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	stop := make(chan struct{})
	e, ok := f.Next(stop)
	if !ok || e.Value.(string) != "a" {
		t.Fatal("queued entry lost on close")
	}
	f.Release(0)
	if _, ok := f.Next(stop); ok {
		t.Fatal("Next returned entry after drain of closed queue")
	}
}

func TestDrainQueuedCancelsAll(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 4})
	mustPush(t, f, 0, 1, "a")
	mustPush(t, f, 1, 1, "b")
	drained := f.DrainQueued()
	if len(drained) != 2 {
		t.Fatalf("drained %d entries, want 2", len(drained))
	}
	for _, e := range drained {
		if !e.Canceled() {
			t.Fatalf("drained entry %v not marked cancelled", e.Value)
		}
	}
	if f.Pending() != 0 {
		t.Fatalf("pending %d after drain", f.Pending())
	}
}

// TestNextBlocksUntilPushOrStop covers the waiter paths.
func TestNextBlocksUntilPushOrStop(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 4})
	got := make(chan *Entry, 1)
	stop := make(chan struct{})
	go func() {
		e, _ := f.Next(stop)
		got <- e
	}()
	mustPush(t, f, 0, 1, "x")
	if e := <-got; e == nil || e.Value.(string) != "x" {
		t.Fatalf("blocked Next returned %v", e)
	}
	done := make(chan struct{})
	go func() {
		_, ok := f.Next(stop)
		if ok {
			t.Error("Next returned an entry after stop")
		}
		close(done)
	}()
	close(stop)
	<-done
}

// TestConcurrentPushCancelNext hammers the claim/cancel race under the
// race detector: every entry must be observed exactly once — either
// dispatched or successfully cancelled, never both, never neither.
func TestConcurrentPushCancelNext(t *testing.T) {
	f, _ := New(Config{Flows: 4, Depth: 1024})
	const perFlow = 200
	var dispatched, cancelled [4 * perFlow]int32
	stop := make(chan struct{})
	var consumers sync.WaitGroup
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for {
			e, ok := f.Next(stop)
			if !ok {
				return
			}
			dispatched[e.Value.(int)]++
			f.Release(e.Flow)
		}
	}()
	var producers sync.WaitGroup
	for fl := 0; fl < 4; fl++ {
		producers.Add(1)
		go func(fl int) {
			defer producers.Done()
			for i := 0; i < perFlow; i++ {
				id := fl*perFlow + i
				e, err := f.Push(fl, 64, id)
				if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if i%3 == 0 {
					if f.Cancel(e) {
						cancelled[id]++
					}
				}
			}
		}(fl)
	}
	producers.Wait()
	f.Close()
	consumers.Wait()
	for id := range dispatched {
		if dispatched[id]+cancelled[id] != 1 {
			t.Fatalf("entry %d: dispatched %d times, cancelled %d times",
				id, dispatched[id], cancelled[id])
		}
	}
}
