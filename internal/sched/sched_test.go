package sched

import (
	"errors"
	"sync"
	"testing"
)

func mustPush(t *testing.T, f *Fair, flow int, cost int64, v any) *Entry {
	t.Helper()
	e, err := f.Push(flow, cost, v)
	if err != nil {
		t.Fatalf("push flow %d: %v", flow, err)
	}
	return e
}

// drainOrder pops every queued entry (releasing flows immediately, so
// busy-gating never blocks the drain) and returns the flow sequence.
func drainOrder(f *Fair) []int {
	stop := make(chan struct{})
	var order []int
	for f.Pending() > 0 {
		e, ok := f.Next(stop)
		if !ok {
			break
		}
		order = append(order, e.Flow)
		f.Release(e.Flow)
	}
	return order
}

func TestFIFOWithinFlow(t *testing.T) {
	f, err := New(Config{Flows: 1, Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPush(t, f, 0, 10, i)
	}
	stop := make(chan struct{})
	for i := 0; i < 5; i++ {
		e, ok := f.Next(stop)
		if !ok || e.Value.(int) != i {
			t.Fatalf("pop %d: got %v ok=%v", i, e.Value, ok)
		}
		f.Release(0)
	}
}

func TestQueueFullFailFast(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 2})
	mustPush(t, f, 0, 1, "a")
	mustPush(t, f, 0, 1, "b")
	if _, err := f.Push(0, 1, "c"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	// The other flow is unaffected.
	mustPush(t, f, 1, 1, "d")
	// Out-of-range flow.
	if _, err := f.Push(7, 1, "x"); !errors.Is(err, ErrNoFlow) {
		t.Fatalf("got %v, want ErrNoFlow", err)
	}
}

func TestCancelFreesCapacityAndSkipsDispatch(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 2})
	a := mustPush(t, f, 0, 1, "a")
	mustPush(t, f, 0, 1, "b")
	if !f.Cancel(a) {
		t.Fatal("cancel of queued entry refused")
	}
	if f.Cancel(a) {
		t.Fatal("double cancel succeeded")
	}
	// Capacity freed immediately.
	mustPush(t, f, 0, 1, "c")
	stop := make(chan struct{})
	e, ok := f.Next(stop)
	if !ok || e.Value.(string) != "b" {
		t.Fatalf("dispatched %v, want b (a cancelled)", e.Value)
	}
	f.Release(0)
	e, ok = f.Next(stop)
	if !ok || e.Value.(string) != "c" {
		t.Fatalf("dispatched %v, want c", e.Value)
	}
	// A claimed entry can no longer be cancelled through the queue.
	if f.Cancel(e) {
		t.Fatal("cancel of claimed entry succeeded")
	}
}

func TestBusyFlowGating(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 4})
	mustPush(t, f, 0, 1, "a0")
	mustPush(t, f, 0, 1, "a1")
	mustPush(t, f, 1, 1, "b0")
	stop := make(chan struct{})
	e1, _ := f.Next(stop) // flow 0 now busy
	if e1.Flow != 0 {
		t.Fatalf("first dispatch from flow %d, want 0", e1.Flow)
	}
	e2, _ := f.Next(stop) // must come from flow 1, not a1
	if e2.Flow != 1 {
		t.Fatalf("second dispatch from flow %d, want 1 (flow 0 busy)", e2.Flow)
	}
	f.Release(0)
	e3, _ := f.Next(stop)
	if e3.Value.(string) != "a1" {
		t.Fatalf("third dispatch %v, want a1 after release", e3.Value)
	}
}

// TestWeightedFairnessRatio floods two flows with equal-cost work and
// checks the dispatch mix tracks the 1:3 weight ratio.
func TestWeightedFairnessRatio(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 256, Weights: []int{1, 3}, Quantum: 64})
	const each = 200
	for i := 0; i < each; i++ {
		mustPush(t, f, 0, 1000, i)
		mustPush(t, f, 1, 1000, i)
	}
	order := drainOrder(f)
	// Count the mix over a prefix where both flows are still contending
	// (flow 1 empties after `each` dispatches of its own).
	counts := [2]int{}
	for _, fl := range order[:each*4/5] {
		counts[fl]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("dispatch ratio %.2f (counts %v), want ~3.0", ratio, counts)
	}
}

// TestCostAwareFairness: with equal weights, a flow pushing 4× larger
// items should win ~1/4 of the dispatches (byte fairness, not item
// fairness).
func TestCostAwareFairness(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 256, Quantum: 64})
	const each = 120
	for i := 0; i < each; i++ {
		mustPush(t, f, 0, 1000, i)
		mustPush(t, f, 1, 4000, i)
	}
	order := drainOrder(f)
	counts := [2]int{}
	for _, fl := range order[:each] {
		counts[fl]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.8 || ratio > 5.5 {
		t.Fatalf("item ratio %.2f (counts %v), want ~4.0", ratio, counts)
	}
}

func TestRequeuePreservesHeadOrder(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 4})
	mustPush(t, f, 0, 1, "a")
	mustPush(t, f, 0, 1, "b")
	stop := make(chan struct{})
	e, _ := f.Next(stop)
	f.Requeue(e)
	f.Release(0)
	e2, _ := f.Next(stop)
	if e2.Value.(string) != "a" {
		t.Fatalf("after requeue got %v, want a back at head", e2.Value)
	}
}

func TestCloseDrainsThenStops(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 4})
	mustPush(t, f, 0, 1, "a")
	f.Close()
	if _, err := f.Push(0, 1, "late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	stop := make(chan struct{})
	e, ok := f.Next(stop)
	if !ok || e.Value.(string) != "a" {
		t.Fatal("queued entry lost on close")
	}
	f.Release(0)
	if _, ok := f.Next(stop); ok {
		t.Fatal("Next returned entry after drain of closed queue")
	}
}

func TestDrainQueuedCancelsAll(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 4})
	mustPush(t, f, 0, 1, "a")
	mustPush(t, f, 1, 1, "b")
	drained := f.DrainQueued()
	if len(drained) != 2 {
		t.Fatalf("drained %d entries, want 2", len(drained))
	}
	for _, e := range drained {
		if !e.Canceled() {
			t.Fatalf("drained entry %v not marked cancelled", e.Value)
		}
	}
	if f.Pending() != 0 {
		t.Fatalf("pending %d after drain", f.Pending())
	}
}

// TestNextBlocksUntilPushOrStop covers the waiter paths.
func TestNextBlocksUntilPushOrStop(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 4})
	got := make(chan *Entry, 1)
	stop := make(chan struct{})
	go func() {
		e, _ := f.Next(stop)
		got <- e
	}()
	mustPush(t, f, 0, 1, "x")
	if e := <-got; e == nil || e.Value.(string) != "x" {
		t.Fatalf("blocked Next returned %v", e)
	}
	done := make(chan struct{})
	go func() {
		_, ok := f.Next(stop)
		if ok {
			t.Error("Next returned an entry after stop")
		}
		close(done)
	}()
	close(stop)
	<-done
}

// TestConcurrentPushCancelNext hammers the claim/cancel race under the
// race detector: every entry must be observed exactly once — either
// dispatched or successfully cancelled, never both, never neither.
func TestConcurrentPushCancelNext(t *testing.T) {
	f, _ := New(Config{Flows: 4, Depth: 1024})
	const perFlow = 200
	var dispatched, cancelled [4 * perFlow]int32
	stop := make(chan struct{})
	var consumers sync.WaitGroup
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for {
			e, ok := f.Next(stop)
			if !ok {
				return
			}
			dispatched[e.Value.(int)]++
			f.Release(e.Flow)
		}
	}()
	var producers sync.WaitGroup
	for fl := 0; fl < 4; fl++ {
		producers.Add(1)
		go func(fl int) {
			defer producers.Done()
			for i := 0; i < perFlow; i++ {
				id := fl*perFlow + i
				e, err := f.Push(fl, 64, id)
				if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if i%3 == 0 {
					if f.Cancel(e) {
						cancelled[id]++
					}
				}
			}
		}(fl)
	}
	producers.Wait()
	f.Close()
	consumers.Wait()
	for id := range dispatched {
		if dispatched[id]+cancelled[id] != 1 {
			t.Fatalf("entry %d: dispatched %d times, cancelled %d times",
				id, dispatched[id], cancelled[id])
		}
	}
}

// TestYieldInterleavesFlows is the continuous-batching contract: two
// flows each representing a multi-step session, one entry per session
// yielded back after every step, must alternate strictly — neither
// session monopolizes the dispatcher between steps.
func TestYieldInterleavesFlows(t *testing.T) {
	f, _ := New(Config{Flows: 2, Depth: 4, Quantum: 64})
	a := mustPush(t, f, 0, 32, "a")
	b := mustPush(t, f, 1, 32, "b")
	_ = a
	_ = b
	stop := make(chan struct{})
	var order []string
	for step := 0; step < 8; step++ {
		e, ok := f.Next(stop)
		if !ok {
			t.Fatalf("step %d: queue stopped", step)
		}
		order = append(order, e.Value.(string))
		if !f.Yield(e, 32) {
			t.Fatalf("step %d: yield refused", step)
		}
		f.Release(e.Flow)
	}
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("flow %q dispatched twice in a row: %v", order[i], order)
		}
	}
}

// TestYieldTailVsRequeueHead distinguishes Yield from Requeue inside
// one flow: Requeue undoes a dispatch (the entry returns to the head,
// ahead of work queued behind it), while Yield ends a completed step
// (the entry re-joins at the tail, behind it).
func TestYieldTailVsRequeueHead(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 4})
	mustPush(t, f, 0, 1, "session")
	mustPush(t, f, 0, 1, "later")
	stop := make(chan struct{})
	e, _ := f.Next(stop)
	if e.Value.(string) != "session" {
		t.Fatalf("first dispatch = %v", e.Value)
	}
	// Requeue: the same entry must come back before "later".
	f.Requeue(e)
	f.Release(0)
	e, _ = f.Next(stop)
	if e.Value.(string) != "session" {
		t.Fatalf("after requeue got %v, want session (head position)", e.Value)
	}
	// Yield: "later" must be served before the session's next step. The
	// next step's cost is re-charged as given.
	if !f.Yield(e, 7) {
		t.Fatal("yield refused")
	}
	f.Release(0)
	e2, _ := f.Next(stop)
	if e2.Value.(string) != "later" {
		t.Fatalf("after yield got %v, want later (tail position)", e2.Value)
	}
	f.Release(0)
	e3, _ := f.Next(stop)
	if e3 != e || e3.Cost != 7 {
		t.Fatalf("yielded entry came back as %v cost %d, want original at cost 7", e3.Value, e3.Cost)
	}
}

// TestYieldRefusals pins the edges: a queued (unclaimed) entry cannot
// yield, a cancelled one cannot, and yielding into a closed queue
// settles the entry as cancelled instead of stranding it.
func TestYieldRefusals(t *testing.T) {
	f, _ := New(Config{Flows: 1, Depth: 4})
	e := mustPush(t, f, 0, 1, "x")
	if f.Yield(e, 1) {
		t.Fatal("yield accepted a never-claimed entry")
	}
	stop := make(chan struct{})
	e, _ = f.Next(stop)
	f.Close()
	if f.Yield(e, 1) {
		t.Fatal("yield accepted into a closed queue")
	}
	if !e.Canceled() {
		t.Fatal("entry not settled as cancelled on closed-queue yield")
	}
	f.Release(0)
	if _, ok := f.Next(stop); ok {
		t.Fatal("cancelled yield leaked a dispatchable entry")
	}
}
