// Package sched is the admission-controlled fair queue at the heart of
// the ccAI serving scheduler. It is deliberately free of any platform
// knowledge: flows are integers, work items are opaque values with a
// byte cost, and the policy is classic deficit round-robin (DRR) with
// three serving-specific twists:
//
//   - Bounded ingress, fail-fast: each flow has a fixed capacity and
//     Push never blocks — a full queue returns ErrQueueFull immediately
//     so the caller can shed load at admission instead of building an
//     invisible backlog (the paper's §9 chassis serves many tenants
//     from one controller; unbounded queues would let one tenant turn
//     the chassis into its private buffer).
//
//   - Busy-flow gating: a flow's items execute one at a time (each
//     tenant's pipeline is serial — one command ring, one IV counter
//     sequence), so Next never releases an item for a flow that still
//     has one in flight. Fairness decisions are therefore made exactly
//     when capacity frees up, not speculatively.
//
//   - First-class cancellation: a queued entry can be cancelled in
//     O(1) without waiting to reach the head. Cancellation frees the
//     flow's capacity immediately (the entry is lazily unlinked) and
//     the claim/cancel race is settled by a single atomic state word,
//     so an entry is either executed or cancelled, never both.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Sentinel errors. The public ccai layer wraps these with tenant
// context; errors.Is still matches through the wrapping.
var (
	// ErrQueueFull is returned by Push when the flow's bounded queue is
	// at capacity — the fail-fast backpressure signal.
	ErrQueueFull = errors.New("sched: queue full")
	// ErrClosed is returned by Push after Close: the queue drains but
	// admits nothing new.
	ErrClosed = errors.New("sched: queue closed")
	// ErrNoFlow is returned by Push for an out-of-range flow index.
	ErrNoFlow = errors.New("sched: no such flow")
)

// Entry states. An entry's lifecycle is Queued → (Claimed | Canceled);
// Claimed entries may be requeued back to Queued by the dispatcher
// (fault injection, slot preemption) before execution starts.
const (
	stateQueued int32 = iota
	stateClaimed
	stateCanceled
)

// Entry is one queued work item. The Value is opaque to the queue;
// Cost is the DRR charge (typically input bytes, min 1).
type Entry struct {
	Flow  int
	Cost  int64
	Value any

	state atomic.Int32
	seq   uint64
}

// Canceled reports whether the entry lost the claim/cancel race.
func (e *Entry) Canceled() bool { return e.state.Load() == stateCanceled }

// Config parameterizes a Fair queue.
type Config struct {
	// Flows is the number of flows (required, ≥ 1).
	Flows int
	// Depth is the per-flow capacity (default 32).
	Depth int
	// Weights are per-flow DRR weights; nil or short slices default the
	// remainder to 1. A flow with weight w receives w× the service of a
	// weight-1 competitor under contention (equal costs).
	Weights []int
	// Quantum is the deficit added per weight unit per top-up round
	// (default 4096). Smaller quanta interleave flows more finely at
	// the price of more scan rounds for large items.
	Quantum int64
}

// flow is the per-flow scheduling state. entries may contain cancelled
// entries awaiting lazy unlink; pending counts live ones only.
type flow struct {
	entries []*Entry
	pending int
	weight  int64
	deficit int64
	busy    bool
}

// Fair is a bounded, weighted, cancellation-aware DRR queue. All
// methods are safe for concurrent use.
type Fair struct {
	mu     sync.Mutex
	flows  []flow
	depth  int
	quant  int64
	cursor int
	seq    uint64
	closed bool
	wake   chan struct{} // closed to broadcast state changes, then replaced
}

// New builds a Fair queue.
func New(cfg Config) (*Fair, error) {
	if cfg.Flows < 1 {
		return nil, fmt.Errorf("sched: need at least one flow, got %d", cfg.Flows)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 32
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 4096
	}
	f := &Fair{
		flows: make([]flow, cfg.Flows),
		depth: cfg.Depth,
		quant: cfg.Quantum,
		wake:  make(chan struct{}),
	}
	for i := range f.flows {
		w := 1
		if i < len(cfg.Weights) && cfg.Weights[i] > 0 {
			w = cfg.Weights[i]
		}
		f.flows[i].weight = int64(w)
	}
	return f, nil
}

// broadcast wakes every Next waiter. Callers hold f.mu.
func (f *Fair) broadcast() {
	close(f.wake)
	f.wake = make(chan struct{})
}

// Push admits v onto flow's queue, failing fast when the flow is at
// capacity. Cost below 1 is charged as 1.
func (f *Fair) Push(flowIdx int, cost int64, v any) (*Entry, error) {
	if cost < 1 {
		cost = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if flowIdx < 0 || flowIdx >= len(f.flows) {
		return nil, fmt.Errorf("%w: flow %d of %d", ErrNoFlow, flowIdx, len(f.flows))
	}
	if f.closed {
		return nil, ErrClosed
	}
	fl := &f.flows[flowIdx]
	if fl.pending >= f.depth {
		return nil, fmt.Errorf("%w: flow %d at depth %d", ErrQueueFull, flowIdx, f.depth)
	}
	f.seq++
	e := &Entry{Flow: flowIdx, Cost: cost, Value: v, seq: f.seq}
	fl.entries = append(fl.entries, e)
	fl.pending++
	f.broadcast()
	return e, nil
}

// Cancel removes a queued entry before dispatch. It reports true when
// the entry was still queued (the caller now owns its completion);
// false when the dispatcher already claimed it — or it was already
// cancelled — and the executor owns it. Capacity frees immediately;
// the entry itself is unlinked lazily by Next.
func (f *Fair) Cancel(e *Entry) bool {
	if e == nil || !e.state.CompareAndSwap(stateQueued, stateCanceled) {
		return false
	}
	f.mu.Lock()
	f.flows[e.Flow].pending--
	f.broadcast() // a Push waiter is never blocked, but Drain watchers poll via Next
	f.mu.Unlock()
	return true
}

// head returns the flow's first live entry, unlinking cancelled ones
// encountered on the way. Callers hold f.mu.
func (fl *flow) head() *Entry {
	for len(fl.entries) > 0 {
		e := fl.entries[0]
		if e.state.Load() != stateCanceled {
			return e
		}
		fl.entries = fl.entries[1:]
	}
	return nil
}

// tryNext scans for a dispatchable entry under f.mu: a non-busy flow
// whose head's cost fits its deficit. When every eligible flow is
// short on deficit, each is topped up by quantum×weight and the scan
// repeats — the DRR round. Returns nil when no flow is eligible at all
// (empty, or all busy).
func (f *Fair) tryNext() *Entry {
	for {
		eligible := false
		n := len(f.flows)
		for off := 0; off < n; off++ {
			i := (f.cursor + off) % n
			fl := &f.flows[i]
			if fl.busy {
				continue
			}
			e := fl.head()
			if e == nil {
				// Idle flows forfeit accumulated deficit (standard DRR):
				// credit must be earned under contention, not hoarded.
				fl.deficit = 0
				continue
			}
			eligible = true
			if fl.deficit < e.Cost {
				continue
			}
			if !e.state.CompareAndSwap(stateQueued, stateClaimed) {
				// Lost to a concurrent Cancel; unlink and rescan.
				fl.head()
				off--
				continue
			}
			fl.entries = fl.entries[1:]
			fl.pending--
			fl.deficit -= e.Cost
			fl.busy = true
			f.cursor = (i + 1) % n
			return e
		}
		if !eligible {
			return nil
		}
		// Top-up round: every non-busy flow with work gains one quantum
		// per weight unit, so service converges to the weight ratio.
		for i := range f.flows {
			fl := &f.flows[i]
			if !fl.busy && fl.head() != nil {
				fl.deficit += f.quant * fl.weight
			}
		}
	}
}

// Next blocks until an entry is dispatchable, the queue is closed and
// empty, or stop is signalled. A returned entry's flow is marked busy
// until Release. The second result is false only on shutdown.
func (f *Fair) Next(stop <-chan struct{}) (*Entry, bool) {
	for {
		f.mu.Lock()
		if e := f.tryNext(); e != nil {
			f.mu.Unlock()
			return e, true
		}
		if f.closed && f.totalPending() == 0 {
			f.mu.Unlock()
			return nil, false
		}
		wake := f.wake
		f.mu.Unlock()
		select {
		case <-wake:
		case <-stop:
			return nil, false
		}
	}
}

// Requeue returns a claimed-but-unexecuted entry to the head of its
// flow with its deficit refunded — the dispatcher's path for fault
// injection (a stalled dequeue) and preemption. The flow stays busy
// until Release.
func (f *Fair) Requeue(e *Entry) {
	if e == nil || !e.state.CompareAndSwap(stateClaimed, stateQueued) {
		return
	}
	f.mu.Lock()
	fl := &f.flows[e.Flow]
	fl.entries = append([]*Entry{e}, fl.entries...)
	fl.pending++
	fl.deficit += e.Cost
	f.broadcast()
	f.mu.Unlock()
}

// Yield returns a claimed entry to the tail of its flow after one unit
// of work completed — the token-granular requeue behind continuous
// batching. Where Requeue undoes a dispatch (head position, deficit
// refunded), Yield is a voluntary preemption point between units: the
// completed step consumed real service, so no deficit comes back, and
// the entry re-joins at the tail so competing flows are served in
// between. The next dispatch charges nextCost (≥1). The flow stays
// busy until Release, preserving the one-in-flight-per-flow invariant.
// It reports false when the entry was not claimed (already cancelled
// or never dispatched) or the queue is closed — the caller should stop
// stepping that entry.
func (f *Fair) Yield(e *Entry, nextCost int64) bool {
	if e == nil || !e.state.CompareAndSwap(stateClaimed, stateQueued) {
		return false
	}
	if nextCost < 1 {
		nextCost = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		// Closed queues drain what is already queued but admit no next
		// step; settle the entry as cancelled so Next never returns it.
		e.state.Store(stateCanceled)
		return false
	}
	e.Cost = nextCost
	fl := &f.flows[e.Flow]
	fl.entries = append(fl.entries, e)
	fl.pending++
	f.broadcast()
	return true
}

// Release marks the flow idle again after its in-flight entry
// completes, making its next entry dispatchable.
func (f *Fair) Release(flowIdx int) {
	f.mu.Lock()
	if flowIdx >= 0 && flowIdx < len(f.flows) {
		f.flows[flowIdx].busy = false
	}
	f.broadcast()
	f.mu.Unlock()
}

// Close stops admission. Queued entries still drain through Next;
// when the last one is gone Next returns false.
func (f *Fair) Close() {
	f.mu.Lock()
	f.closed = true
	f.broadcast()
	f.mu.Unlock()
}

// DrainQueued cancels every still-queued entry and returns them; the
// caller completes their handles (Shutdown semantics). In-flight
// entries are untouched.
func (f *Fair) DrainQueued() []*Entry {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []*Entry
	for i := range f.flows {
		fl := &f.flows[i]
		for _, e := range fl.entries {
			if e.state.CompareAndSwap(stateQueued, stateCanceled) {
				out = append(out, e)
			}
		}
		fl.entries = nil
		fl.pending = 0
	}
	f.broadcast()
	return out
}

// Len reports the flow's live queued entries.
func (f *Fair) Len(flowIdx int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if flowIdx < 0 || flowIdx >= len(f.flows) {
		return 0
	}
	return f.flows[flowIdx].pending
}

// Pending reports live queued entries across all flows.
func (f *Fair) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.totalPending()
}

func (f *Fair) totalPending() int {
	n := 0
	for i := range f.flows {
		n += f.flows[i].pending
	}
	return n
}
