package attack

import (
	"bytes"
	"testing"

	"ccai/internal/pcie"
)

func wr(addr uint64, payload []byte) *pcie.Packet {
	return pcie.NewMemWrite(pcie.MakeID(0, 1, 0), addr, payload)
}

func TestSnooperRecordsAndFindsSecrets(t *testing.T) {
	s := NewSnooper()
	secret := []byte("classified-weights")
	s.Tap(wr(0x1000, append([]byte("prefix "), secret...)))
	s.Tap(wr(0x2000, []byte("nothing here")))
	if len(s.Packets()) != 2 {
		t.Fatalf("packets = %d", len(s.Packets()))
	}
	if !s.SawPlaintext(secret) {
		t.Fatal("missed embedded secret")
	}
	if s.SawPlaintext([]byte("absent")) {
		t.Fatal("false positive")
	}
	if s.PayloadBytes() != 25+12 {
		t.Fatalf("payload bytes = %d", s.PayloadBytes())
	}
	s.Reset()
	if len(s.Packets()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSnooperCapturesCopies(t *testing.T) {
	s := NewSnooper()
	p := wr(0x1000, []byte{1, 2, 3})
	s.Tap(p)
	p.Payload[0] = 99 // victim mutates after transit
	if s.Packets()[0].Payload[0] != 1 {
		t.Fatal("snooper shares storage with live packet")
	}
}

func TestTampererFlipsMatchingPayloads(t *testing.T) {
	tm := &Tamperer{Match: func(p *pcie.Packet) bool { return p.Address == 0x1000 }, Count: 1}
	victim := wr(0x1000, []byte{0, 0, 0, 0})
	out := tm.Tap(victim)
	if bytes.Equal(out.Payload, victim.Payload) {
		t.Fatal("payload unchanged")
	}
	if out == victim {
		t.Fatal("tamperer mutated the original in place")
	}
	// Count limit: second matching packet passes untouched.
	again := tm.Tap(wr(0x1000, []byte{0, 0, 0, 0}))
	for _, b := range again.Payload {
		if b != 0 {
			t.Fatal("count limit ignored")
		}
	}
	// Non-matching address untouched.
	other := tm.Tap(wr(0x2000, []byte{0}))
	if other.Payload[0] != 0 {
		t.Fatal("non-matching packet modified")
	}
	if tm.Tampered() != 1 {
		t.Fatalf("tampered = %d", tm.Tampered())
	}
}

func TestTampererSkipsPayloadless(t *testing.T) {
	tm := &Tamperer{}
	rd := pcie.NewMemRead(pcie.MakeID(0, 1, 0), 0x1000, 64, 0)
	if got := tm.Tap(rd); got != rd {
		t.Fatal("payload-less packet touched")
	}
}

func TestRedirectorRewritesAddress(t *testing.T) {
	r := &Redirector{Match: func(p *pcie.Packet) bool { return p.Kind == pcie.MWr }, NewDst: 0xbad0}
	out := r.Tap(wr(0x1000, []byte{1}))
	if out.Address != 0xbad0 {
		t.Fatalf("address = %#x", out.Address)
	}
	if r.Hits() != 1 {
		t.Fatalf("hits = %d", r.Hits())
	}
}

func TestDropperDeletesUpToCount(t *testing.T) {
	d := &Dropper{Count: 2}
	if d.Tap(wr(0x1, []byte{1})) != nil {
		t.Fatal("first packet survived")
	}
	if d.Tap(wr(0x2, []byte{2})) != nil {
		t.Fatal("second packet survived")
	}
	if d.Tap(wr(0x3, []byte{3})) == nil {
		t.Fatal("third packet dropped beyond count")
	}
	if d.Dropped() != 2 {
		t.Fatalf("dropped = %d", d.Dropped())
	}
}

func TestRecorderReplaysIntoBus(t *testing.T) {
	bus := pcie.NewBus("host")
	sink := &countingEndpoint{id: pcie.MakeID(2, 0, 0)}
	bus.Attach(sink)
	if err := bus.Claim(sink.id, pcie.Region{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{Match: func(p *pcie.Packet) bool { return p.Kind == pcie.MWr }}
	bus.AddTap(rec)

	bus.Route(wr(0x1000, []byte("original")))
	if len(rec.Captured) != 1 {
		t.Fatalf("captured = %d", len(rec.Captured))
	}
	before := sink.writes
	rec.Replay(bus)
	// Replay traverses the tap again, so the recorder grows too; the
	// endpoint must have seen the duplicate.
	if sink.writes != before+1 {
		t.Fatalf("endpoint writes = %d, want %d", sink.writes, before+1)
	}
}

type countingEndpoint struct {
	id     pcie.ID
	writes int
}

func (c *countingEndpoint) DeviceID() pcie.ID { return c.id }
func (c *countingEndpoint) Handle(p *pcie.Packet) *pcie.Packet {
	if p.Kind == pcie.MWr {
		c.writes++
	}
	if p.Kind == pcie.MRd {
		return pcie.NewCompletion(p, c.id, pcie.CplSuccess, make([]byte, p.Length))
	}
	return nil
}

func TestRogueRequesterUsesItsID(t *testing.T) {
	bus := pcie.NewBus("host")
	sink := &countingEndpoint{id: pcie.MakeID(2, 0, 0)}
	bus.Attach(sink)
	if err := bus.Claim(sink.id, pcie.Region{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	var seen pcie.ID
	bus.AddTap(pcie.TapFunc(func(p *pcie.Packet) *pcie.Packet {
		if p.Kind == pcie.MRd {
			seen = p.Requester
		}
		return p
	}))
	rogue := &RogueRequester{ID: pcie.MakeID(7, 0, 3), Bus: bus}
	cpl := rogue.Read(0x1000, 16)
	if cpl == nil || cpl.Status != pcie.CplSuccess {
		t.Fatal("read through empty bus failed")
	}
	if seen != rogue.ID {
		t.Fatalf("requester on wire = %v", seen)
	}
	rogue.Write(0x1000, []byte{1})
	if sink.writes != 1 {
		t.Fatal("rogue write lost")
	}
}
