// Package attack implements the adversary of the paper's threat model
// (§2.2) as reusable bus instruments: a snooper that records everything
// crossing a PCIe segment, tamperers that flip payload bits or rewrite
// headers, a replayer/reorderer/dropper for transmission-integrity
// attacks, and rogue requesters standing in for a malicious host,
// unauthorized TVM, or compromised peripheral. The RQ2 security tests
// aim these at the platform and assert that every one is defeated.
package attack

import (
	"bytes"
	"sync"

	"ccai/internal/pcie"
)

// Snooper records every packet crossing a bus segment — the PCIe bus
// snooping attack ([72] in the paper). It never modifies traffic. All
// methods are safe for concurrent use: a snooper on a shared segment
// sees traffic from every tenant pipeline at once.
type Snooper struct {
	mu      sync.Mutex
	packets []*pcie.Packet
}

// NewSnooper returns an empty recorder.
func NewSnooper() *Snooper { return &Snooper{} }

// Tap implements pcie.Tap.
func (s *Snooper) Tap(p *pcie.Packet) *pcie.Packet {
	q := p.Clone()
	s.mu.Lock()
	s.packets = append(s.packets, q)
	s.mu.Unlock()
	return p
}

// Packets returns a snapshot of everything captured.
func (s *Snooper) Packets() []*pcie.Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*pcie.Packet(nil), s.packets...)
}

// Reset clears the capture buffer.
func (s *Snooper) Reset() {
	s.mu.Lock()
	s.packets = nil
	s.mu.Unlock()
}

// SawPlaintext reports whether any captured payload contains the given
// byte sequence — the confidentiality oracle: if a secret substring is
// visible on the untrusted segment, protection failed.
func (s *Snooper) SawPlaintext(secret []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.packets {
		if len(p.Payload) > 0 && bytes.Contains(p.Payload, secret) {
			return true
		}
	}
	return false
}

// PayloadBytes reports total payload bytes captured.
func (s *Snooper) PayloadBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.packets {
		n += len(p.Payload)
	}
	return n
}

// Tamperer flips bits in payloads matching a predicate, modelling an
// in-flight data-corruption attack on the PCIe fabric.
type Tamperer struct {
	// Match selects victim packets; nil matches every payload-bearing
	// packet.
	Match func(p *pcie.Packet) bool
	// Count limits how many packets to corrupt (0 = unlimited).
	Count int

	mu       sync.Mutex
	tampered int
}

// Tap implements pcie.Tap.
func (t *Tamperer) Tap(p *pcie.Packet) *pcie.Packet {
	if len(p.Payload) == 0 {
		return p
	}
	if t.Match != nil && !t.Match(p) {
		return p
	}
	t.mu.Lock()
	if t.Count > 0 && t.tampered >= t.Count {
		t.mu.Unlock()
		return p
	}
	t.tampered++
	t.mu.Unlock()
	q := p.Clone()
	q.Payload[len(q.Payload)/2] ^= 0x80
	return q
}

// Tampered reports how many packets were corrupted.
func (t *Tamperer) Tampered() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tampered
}

// Redirector rewrites the target address of matching packets — the
// "route packets carrying sensitive data to unexpected TVMs or other
// peripherals" attack (§8.2).
type Redirector struct {
	Match  func(p *pcie.Packet) bool
	NewDst uint64

	mu   sync.Mutex
	hits int
}

// Tap implements pcie.Tap.
func (r *Redirector) Tap(p *pcie.Packet) *pcie.Packet {
	if r.Match != nil && !r.Match(p) {
		return p
	}
	q := p.Clone()
	q.Address = r.NewDst
	r.mu.Lock()
	r.hits++
	r.mu.Unlock()
	return q
}

// Hits reports redirected packets.
func (r *Redirector) Hits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits
}

// Dropper deletes matching packets in flight.
type Dropper struct {
	Match func(p *pcie.Packet) bool
	Count int

	mu      sync.Mutex
	dropped int
}

// Tap implements pcie.Tap.
func (d *Dropper) Tap(p *pcie.Packet) *pcie.Packet {
	if d.Match != nil && !d.Match(p) {
		return p
	}
	d.mu.Lock()
	if d.Count > 0 && d.dropped >= d.Count {
		d.mu.Unlock()
		return p
	}
	d.dropped++
	d.mu.Unlock()
	return nil
}

// Dropped reports deleted packets.
func (d *Dropper) Dropped() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// Recorder captures packets matching a predicate for later replay.
// Captured may be read directly only once the bus is quiescent; Tap is
// safe under concurrent traffic.
type Recorder struct {
	Match    func(p *pcie.Packet) bool
	Captured []*pcie.Packet

	mu sync.Mutex
}

// Tap implements pcie.Tap.
func (r *Recorder) Tap(p *pcie.Packet) *pcie.Packet {
	if r.Match == nil || r.Match(p) {
		q := p.Clone()
		r.mu.Lock()
		r.Captured = append(r.Captured, q)
		r.mu.Unlock()
	}
	return p
}

// Replay re-injects every captured packet into the bus, as a physical
// adversary with bus access would.
func (r *Recorder) Replay(bus *pcie.Bus) []*pcie.Packet {
	var completions []*pcie.Packet
	for _, p := range r.Captured {
		if cpl := bus.Route(p.Clone()); cpl != nil {
			completions = append(completions, cpl)
		}
	}
	return completions
}

// RogueRequester forges packets from an arbitrary requester ID — a
// malicious peripheral, the untrusted host OS, or an unauthorized TVM.
type RogueRequester struct {
	ID  pcie.ID
	Bus *pcie.Bus
}

// Read attempts a memory read; the returned completion exposes whether
// the fabric (filter / IOMMU) let it through.
func (r *RogueRequester) Read(addr uint64, n uint32) *pcie.Packet {
	return r.Bus.Route(pcie.NewMemRead(r.ID, addr, n, 0))
}

// Write attempts a posted memory write.
func (r *RogueRequester) Write(addr uint64, data []byte) {
	r.Bus.Route(pcie.NewMemWrite(r.ID, addr, data))
}
