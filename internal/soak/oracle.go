package soak

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"ccai/internal/pcie"
	"ccai/internal/sim"
)

// oracle collects invariant violations and the evidence that the
// oracles were actually watching (a soak whose snooper saw no traffic
// proved nothing). All methods are safe for concurrent use: carrier
// pipelines and the scheduler dispatcher feed it from several
// goroutines, but every violation is appended under one lock in bus/
// hook order, so the list is deterministic for a deterministic run.
type oracle struct {
	clk *sim.Engine

	mu         sync.Mutex
	violations []string

	// IV audit: every (stream-identity, epoch, counter) consumed by any
	// seal engine on either end. Stream identity includes the tenant's
	// trust generation, so a re-established session (which legitimately
	// restarts at epoch 0 under fresh keys) is a fresh space.
	seen     map[string]map[uint64]bool
	maxEpoch map[string]uint32
	audited  uint64
}

func newOracle(clk *sim.Engine) *oracle {
	return &oracle{
		clk:      clk,
		seen:     make(map[string]map[uint64]bool),
		maxEpoch: make(map[string]uint32),
	}
}

// violatef records one invariant violation, stamped with virtual time.
func (o *oracle) violatef(format string, args ...any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.violations = append(o.violations,
		fmt.Sprintf("t=%dms %s", o.clk.Now()/sim.Millisecond, fmt.Sprintf(format, args...)))
}

func (o *oracle) violationList() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.violations...)
}

// ivHook returns a secmem IV-audit callback for one stream identity.
// A repeated (epoch, counter) under the same identity is the one GCM
// failure no fault, attack, rekey, or re-trust may ever cause.
func (o *oracle) ivHook(id string) func(epoch, counter uint32) {
	return func(epoch, counter uint32) {
		o.mu.Lock()
		defer o.mu.Unlock()
		o.audited++
		m := o.seen[id]
		if m == nil {
			m = make(map[uint64]bool)
			o.seen[id] = m
		}
		k := uint64(epoch)<<32 | uint64(counter)
		if m[k] {
			o.violations = append(o.violations,
				fmt.Sprintf("t=%dms IV REUSE on %s epoch=%d counter=%d",
					o.clk.Now()/sim.Millisecond, id, epoch, counter))
		}
		m[k] = true
		if epoch > o.maxEpoch[id] {
			o.maxEpoch[id] = epoch
		}
	}
}

// rekeys sums epoch advances across every stream identity: each rekey
// bumps one stream's epoch by one, so the sum is the total number of
// key rolls the soak forced.
func (o *oracle) rekeys() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var n uint64
	ids := make([]string, 0, len(o.maxEpoch))
	for id := range o.maxEpoch {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n += uint64(o.maxEpoch[id])
	}
	return n
}

func (o *oracle) ivsAudited() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.audited
}

// scanTap is the streaming confidentiality oracle: a pcie.Tap that
// scans every payload crossing the untrusted host segment for the
// probe canaries, keeping only counters (a full soak pushes far too
// much traffic to buffer the way attack.Snooper does). It never
// modifies traffic.
type scanTap struct {
	o       *oracle
	secrets [][]byte

	mu      sync.Mutex
	packets int64
	payload int64
}

func newScanTap(o *oracle, secrets ...[]byte) *scanTap {
	return &scanTap{o: o, secrets: secrets}
}

// Tap implements pcie.Tap.
func (s *scanTap) Tap(p *pcie.Packet) *pcie.Packet {
	if p == nil {
		return nil
	}
	s.mu.Lock()
	s.packets++
	s.payload += int64(len(p.Payload))
	s.mu.Unlock()
	if len(p.Payload) > 0 {
		for _, sec := range s.secrets {
			if bytes.Contains(p.Payload, sec) {
				s.o.violatef("PLAINTEXT canary on host bus (%v, %d bytes)", p.Kind, len(p.Payload))
			}
		}
	}
	return p
}

// PayloadBytes reports total payload observed — the vacuity check: a
// zero here means the confidentiality oracle never saw the traffic it
// claims to have cleared.
func (s *scanTap) PayloadBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.payload
}
