package soak

import (
	"math"

	"ccai/internal/sim"
)

// mmpp is a two-state Markov-modulated Poisson process: a tenant dwells
// in a calm state (low Poisson arrival rate) and occasionally flips
// into a burst state (high rate) for a short dwell, modelling the
// bursty request trains real serving tenants produce. State dwells and
// inter-arrival gaps are both exponential, driven by one per-tenant
// deterministic generator.
type mmpp struct {
	r          *sim.Rand
	burst      bool
	calmRate   float64 // arrivals per second
	burstRate  float64
	calmDwell  float64 // mean dwell seconds
	burstDwell float64
}

func newMMPP(r *sim.Rand, cfg *Config) *mmpp {
	return &mmpp{
		r:          r,
		calmRate:   cfg.CalmRPS,
		burstRate:  cfg.BurstRPS,
		calmDwell:  cfg.CalmDwell.Seconds(),
		burstDwell: cfg.BurstDwell.Seconds(),
	}
}

// exp draws an exponential variate with the given mean (seconds).
func (m *mmpp) exp(mean float64) float64 {
	u := m.r.Float64()
	if u >= 1 {
		u = 0.999999
	}
	return -mean * math.Log(1-u)
}

// next returns the gap to the tenant's next arrival, advancing the
// modulating state as needed: if the state flips before the pending
// arrival would occur, the elapsed dwell is kept and the arrival is
// redrawn at the new rate (the memoryless property makes the redraw
// exact, not an approximation).
func (m *mmpp) next() sim.Time {
	elapsed := 0.0
	for {
		rate, dwell := m.calmRate, m.calmDwell
		if m.burst {
			rate, dwell = m.burstRate, m.burstDwell
		}
		gap := m.exp(1 / rate)
		rem := m.exp(dwell)
		if gap <= rem {
			return sim.FromSeconds(elapsed + gap)
		}
		elapsed += rem
		m.burst = !m.burst
	}
}
