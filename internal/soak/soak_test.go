package soak

import (
	"bytes"
	"strings"
	"testing"

	"ccai/internal/pcie"
	"ccai/internal/sim"
)

// TestStormPlanRoundTrip proves the storm wire format is lossless and
// that plan generation is a pure function of the seed — the two halves
// of the "CI can prove two runs executed the identical storm" claim.
func TestStormPlanRoundTrip(t *testing.T) {
	cfg := Smoke()
	p1 := GeneratePlan(cfg)
	p2 := GeneratePlan(cfg)
	if !bytes.Equal(p1.Marshal(), p2.Marshal()) {
		t.Fatal("same config generated different storm plans")
	}
	if len(p1.Waves) == 0 {
		t.Fatal("smoke plan has no waves")
	}

	rt, err := UnmarshalStormPlan(p1.Marshal())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(rt.Marshal(), p1.Marshal()) {
		t.Fatal("storm plan did not survive a marshal round trip")
	}

	other := cfg
	other.Seed++
	if bytes.Equal(GeneratePlan(other).Marshal(), p1.Marshal()) {
		t.Fatal("different seeds generated identical storm plans")
	}
}

// TestStormPlanRejectsMalformed drives the decoder's bounds: every
// structural violation must yield an error, never a partial plan.
func TestStormPlanRejectsMalformed(t *testing.T) {
	good := GeneratePlan(Smoke()).Marshal()

	corrupt := func(mutate func([]byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": good[:len(good)/2],
		"bad magic": corrupt(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": corrupt(func(b []byte) []byte {
			b[4] = stormVersion + 1
			return b
		}),
		"wave count over limit": corrupt(func(b []byte) []byte {
			b[13], b[14] = 0xff, 0xff
			return b
		}),
		"intensity over limit": corrupt(func(b []byte) []byte {
			b[15+4] = MaxIntensity + 1 // first wave's Tamper byte
			return b
		}),
		"trailing bytes": append(append([]byte(nil), good...), 0),
	}
	for name, data := range cases {
		if _, err := UnmarshalStormPlan(data); err == nil {
			t.Errorf("%s: decoder accepted malformed plan", name)
		}
	}

	// Non-increasing wave starts are rejected even when each wave is
	// individually well-formed.
	p := GeneratePlan(Smoke())
	if len(p.Waves) >= 2 {
		p.Waves[1].AtMs = p.Waves[0].AtMs
		if _, err := UnmarshalStormPlan(p.Marshal()); err == nil {
			t.Error("decoder accepted non-increasing wave starts")
		}
	}
}

// TestSoakDeterminism is the reproducibility contract: the same seed
// must produce a byte-identical storm plan and a byte-identical
// scorecard across two full runs — carrier plane, fault storm, rekeys,
// re-trusts and all. This is what lets CI diff the committed scorecard
// like a checksum.
func TestSoakDeterminism(t *testing.T) {
	cfg := Smoke()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatalf("same seed produced different scorecards:\n--- run A\n%s\n--- run B\n%s",
			a.Marshal(), b.Marshal())
	}
	if a.PlanSHA256 != b.PlanSHA256 {
		t.Fatalf("same seed produced different storm plans: %s vs %s", a.PlanSHA256, b.PlanSHA256)
	}
}

// TestVirtualPlaneDeterminism covers the carrier-free path (Carriers:
// 0) used by quick experiments: the pure discrete-event plane must be
// deterministic on its own as well.
func TestVirtualPlaneDeterminism(t *testing.T) {
	cfg := Config{
		Preset:  "virtual",
		Seed:    42,
		Tenants: 64, Horizon: 2 * 60 * sim.Second,
		Slots: 2, QueueDepth: 4, Quantum: 4096,
		CalmRPS: 0.05, BurstRPS: 1,
		CalmDwell: 30 * sim.Second, BurstDwell: 5 * sim.Second,
		AvailabilityBudget: 0.5, QueueWaitP99BudgetMs: 10000, FairnessBudget: 100,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatal("virtual-only runs diverged")
	}
	if a.Offered == 0 || a.Completed == 0 {
		t.Fatalf("virtual plane moved no traffic: %+v", a)
	}
}

// TestScanTapCatchesPlantedCanary is the confidentiality oracle's
// self-test: an oracle that cannot see a canary planted directly in a
// bus payload would make every clean soak vacuous.
func TestScanTapCatchesPlantedCanary(t *testing.T) {
	clk := sim.NewEngine()
	orc := newOracle(clk)
	secret := []byte("SELFTEST-CANARY")
	tap := newScanTap(orc, secret)

	clean := &pcie.Packet{Header: pcie.Header{Kind: pcie.MWr}, Payload: []byte("sealed gibberish")}
	if tap.Tap(clean) != clean {
		t.Fatal("scanner modified clean traffic")
	}
	if n := len(orc.violationList()); n != 0 {
		t.Fatalf("clean payload produced %d violations", n)
	}

	leak := &pcie.Packet{Header: pcie.Header{Kind: pcie.MWr}, Payload: append([]byte("prefix "), secret...)}
	tap.Tap(leak)
	vl := orc.violationList()
	if len(vl) != 1 || !strings.Contains(vl[0], "PLAINTEXT") {
		t.Fatalf("planted canary not caught: %v", vl)
	}
	if tap.PayloadBytes() == 0 {
		t.Fatal("scanner did not meter payload bytes")
	}
}

// TestIVOracleCatchesReuse is the IV oracle's self-test: a repeat of
// (epoch, counter) under one stream identity must be flagged, while
// the same pair under a different identity (a re-trusted session's
// fresh generation) must not.
func TestIVOracleCatchesReuse(t *testing.T) {
	orc := newOracle(sim.NewEngine())
	h := orc.ivHook("t0/g0/h2d")
	h(0, 1)
	h(0, 2)
	h(1, 1) // same counter, new epoch: fine
	if n := len(orc.violationList()); n != 0 {
		t.Fatalf("distinct IVs produced %d violations", n)
	}
	orc.ivHook("t0/g1/h2d")(0, 1) // fresh generation: fine
	if n := len(orc.violationList()); n != 0 {
		t.Fatalf("fresh-generation IV produced %d violations", n)
	}
	h(0, 1) // true reuse
	vl := orc.violationList()
	if len(vl) != 1 || !strings.Contains(vl[0], "IV REUSE") {
		t.Fatalf("IV reuse not caught: %v", vl)
	}
	if orc.rekeys() != 1 {
		t.Fatalf("rekeys = %d, want 1 (epoch advanced once on one stream)", orc.rekeys())
	}
}

// TestSmokeSoakCleanAndBusy runs the committed smoke preset and holds
// it to the headline acceptance bar: zero oracle violations, SLOs
// within budget, and none of the oracles vacuous — faults fired from
// every class, keys rolled, sessions re-trusted, replays and rogue
// attempts absorbed.
func TestSmokeSoakCleanAndBusy(t *testing.T) {
	sc, err := Run(Smoke())
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Violations) != 0 {
		t.Fatalf("smoke soak raised %d violations:\n%s",
			len(sc.Violations), strings.Join(sc.Violations, "\n"))
	}
	if !sc.WithinBudgets {
		t.Fatalf("smoke soak out of budget: avail=%v p99=%vms fairness=%v",
			sc.Availability, sc.QueueWaitP99Ms, sc.FairnessSpread)
	}
	if sc.Probes == 0 || sc.IVsAudited == 0 || sc.BusPayloadBytes == 0 {
		t.Fatalf("vacuous soak: %+v", sc)
	}
	if sc.FaultsInjected == 0 || sc.Rekeys == 0 || sc.ReplayedPackets == 0 || sc.RogueAttempts == 0 {
		t.Fatalf("storm did not exercise the pipeline: %+v", sc)
	}
	for _, re := range sc.Recovery {
		if re.Fired == 0 {
			t.Errorf("fault class %s never fired in the smoke storm", re.Class)
		}
	}
	rt, err := UnmarshalScorecard(sc.Marshal())
	if err != nil {
		t.Fatalf("scorecard round trip: %v", err)
	}
	if !bytes.Equal(rt.Marshal(), sc.Marshal()) {
		t.Fatal("scorecard did not survive a marshal round trip")
	}
}
