package soak

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"

	"ccai/internal/fault"
	"ccai/internal/obsv"
	"ccai/internal/sim"
)

// RecoveryEntry is one fault class's soak record: how often it fired
// and the mean virtual recovery time the probes observed absorbing it.
type RecoveryEntry struct {
	Class          string  `json:"class"`
	Fired          uint64  `json:"fired"`
	MeanRecoveryMs float64 `json:"mean_recovery_ms"`
}

// Scorecard is the soak's machine-readable verdict, committed to
// BENCH_results.json and diffed by CI. Every field derives from
// virtual time, counts, or the seed — never the wall clock — so the
// same seed reproduces the same bytes.
type Scorecard struct {
	Preset         string  `json:"preset"`
	Seed           string  `json:"seed"`
	Tenants        int     `json:"tenants"`
	HorizonMinutes float64 `json:"horizon_minutes"`
	Waves          int     `json:"waves"`
	PlanSHA256     string  `json:"plan_sha256"`

	Offered            int64   `json:"offered"`
	Completed          int64   `json:"completed"`
	Rejected           int64   `json:"rejected"`
	Failed             int64   `json:"failed"`
	Canceled           int64   `json:"canceled"`
	Availability       float64 `json:"availability"`
	AvailabilityBudget float64 `json:"availability_budget"`

	QueueWaitP50Ms       float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms       float64 `json:"queue_wait_p99_ms"`
	QueueWaitP99BudgetMs float64 `json:"queue_wait_p99_budget_ms"`
	E2EP50Ms             float64 `json:"e2e_p50_ms"`
	E2EP99Ms             float64 `json:"e2e_p99_ms"`
	FairnessSpread       float64 `json:"fairness_spread"`
	FairnessBudget       float64 `json:"fairness_budget"`

	Probes          int64  `json:"probes"`
	ProbeFailures   int64  `json:"probe_failures"`
	Retrusts        int64  `json:"retrusts"`
	Rekeys          uint64 `json:"rekeys"`
	IVsAudited      uint64 `json:"ivs_audited"`
	BusPayloadBytes int64  `json:"bus_payload_bytes"`
	ReplayedPackets int64  `json:"replayed_packets"`
	RogueAttempts   int64  `json:"rogue_attempts"`

	FaultsInjected uint64          `json:"faults_injected"`
	Recovery       []RecoveryEntry `json:"recovery"`

	Violations    []string `json:"violations"`
	WithinBudgets bool     `json:"within_budgets"`
}

// Marshal renders the scorecard's canonical byte form: fixed field
// order, two-space indent, trailing newline. Byte equality of two
// marshalled scorecards is the soak determinism contract.
func (s Scorecard) Marshal() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Scorecard holds only plain values; this cannot fail.
		panic(err)
	}
	return append(data, '\n')
}

// UnmarshalScorecard parses a scorecard (e.g. the committed baseline
// section of BENCH_results.json) back into the struct form, so a fresh
// run can be compared via Marshal bytes.
func UnmarshalScorecard(data []byte) (Scorecard, error) {
	var s Scorecard
	err := json.Unmarshal(data, &s)
	return s, err
}

// obsvCompletedOK sums the inference plane's ok-status session
// counters from the metrics registry — the obsv-side view of probe
// successes now that carrier probes are streaming LLM sessions.
func obsvCompletedOK(h *obsv.Hub) uint64 {
	snap := h.Reg().Snapshot()
	var n uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "llm.sessions{") && strings.Contains(name, "status=ok") {
			n += v
		}
	}
	return n
}

// obsvFaultsFired reads per-class fault counts from the metrics
// registry (the injectors publish fault.fired{class=...} as they go) —
// the scorecard's fault tallies come from the observability layer, not
// from private injector state.
func obsvFaultsFired(h *obsv.Hub) map[string]uint64 {
	out := make(map[string]uint64)
	if h == nil {
		return out
	}
	snap := h.Reg().Snapshot()
	for name, v := range snap.Counters {
		if rest, ok := strings.CutPrefix(name, "fault.fired{class="); ok {
			out[strings.TrimSuffix(rest, "}")] = v
		}
	}
	return out
}

// scorecard folds the run's meters and oracles into the final verdict.
func (e *engine) scorecard() Scorecard {
	planBytes := e.plan.Marshal()
	sum := sha256.Sum256(planBytes)

	m := e.met.Summary()
	sc := Scorecard{
		Preset:         e.cfg.Preset,
		Seed:           "0x" + hex.EncodeToString(appendSeed(nil, e.cfg.Seed)),
		Tenants:        e.cfg.Tenants,
		HorizonMinutes: e.cfg.Horizon.Seconds() / 60,
		Waves:          len(e.plan.Waves),
		PlanSHA256:     hex.EncodeToString(sum[:]),

		Offered:            m.Offered,
		Completed:          m.Completed,
		Rejected:           m.Rejected,
		Failed:             m.Failed,
		Canceled:           m.Canceled,
		Availability:       m.Availability,
		AvailabilityBudget: e.cfg.AvailabilityBudget,

		QueueWaitP50Ms:       m.QueueWaitP50Ms,
		QueueWaitP99Ms:       m.QueueWaitP99Ms,
		QueueWaitP99BudgetMs: e.cfg.QueueWaitP99BudgetMs,
		E2EP50Ms:             m.E2EP50Ms,
		E2EP99Ms:             m.E2EP99Ms,
		FairnessSpread:       m.FairnessSpread,
		FairnessBudget:       e.cfg.FairnessBudget,

		Violations: e.orc.violationList(),
	}

	if e.car != nil {
		sc.Probes = e.car.probeIdx
		sc.ProbeFailures = e.car.probeIdx - e.car.probeOKs
		sc.Retrusts = e.car.retrusts
		sc.Rekeys = e.orc.rekeys()
		sc.IVsAudited = e.orc.ivsAudited()
		sc.BusPayloadBytes = e.car.scanner.PayloadBytes()
		sc.ReplayedPackets = e.car.replayed
		sc.RogueAttempts = e.car.rogue
		fired := obsvFaultsFired(e.car.mp.Obs)
		for _, class := range fault.Classes() {
			entry := RecoveryEntry{Class: class.String(), Fired: fired[class.String()]}
			if agg := e.car.recovery[class]; agg != nil && agg.n > 0 {
				entry.MeanRecoveryMs = float64(agg.sum/sim.Time(agg.n)) / 1e6
			}
			sc.FaultsInjected += entry.Fired
			sc.Recovery = append(sc.Recovery, entry)
		}
	}

	sc.WithinBudgets = len(sc.Violations) == 0 &&
		sc.Availability >= sc.AvailabilityBudget &&
		sc.QueueWaitP99Ms <= sc.QueueWaitP99BudgetMs &&
		sc.FairnessSpread <= sc.FairnessBudget
	return sc
}

// appendSeed renders the seed big-endian for the scorecard's hex form.
func appendSeed(b []byte, seed uint64) []byte {
	for i := 7; i >= 0; i-- {
		b = append(b, byte(seed>>(8*i)))
	}
	return b
}
