// Package soak is the long-horizon serving soak harness: the scale
// counterpart of the fault×invariant matrix. Where the matrix proves
// each fault class survivable in isolation, the soak proves the §9
// serving story — a thousand-tenant chassis under bursty load with
// faults and attacks firing continuously — holds its security
// invariants *and* its service-level objectives for hundreds of
// virtual-time minutes.
//
// The harness has two planes:
//
//   - The virtual plane drives cfg.Tenants flows through the same
//     internal/sched DRR queue the serving Scheduler uses, on a
//     discrete-event sim clock. Arrivals are per-tenant MMPP (two-state
//     Markov-modulated Poisson: calm↔burst), service times come from a
//     simple transfer model, and every latency the scorecard reports is
//     virtual time — which is what makes a soak of hundreds of virtual
//     minutes run in wall-clock seconds and its scorecard byte-for-byte
//     reproducible from the seed.
//
//   - The carrier plane is a small real chassis (a MultiPlatform with
//     cfg.Carriers protected tenants behind a live ccai.Scheduler).
//     Every ProbeEvery-th virtual dispatch rides a real 4 KiB task
//     through the full protected pipeline while the storm plan's fault
//     injector and attack taps are live on the host bus. The probes are
//     where the invariant oracles bite: no plaintext canary on the bus,
//     no IV reuse across rekeys and re-trusts, fail-closed (never
//     silently wrong) outputs, and no stale/replayed traffic crossing
//     the SC boundary.
//
// Faults and attacks come from a seed-replayable StormPlan (storm.go):
// waves of fault.Plan events plus bounded tamper/drop/redirect/replay/
// rogue/rekey-pressure intensities. Identical seed ⇒ byte-identical
// plan ⇒ byte-identical scorecard; CI diffs the committed scorecard in
// BENCH_results.json exactly like a perf baseline (make soak-smoke).
package soak

import (
	"ccai/internal/fault"
	"ccai/internal/sim"
)

// ScheduledP99WaitBudget is the wall-clock SLO budget for the
// `serve/scheduled/p99-queue-wait` micro-benchmark (admission→dispatch
// p99 under the 4-tenant scheduled load). The committed baseline sits
// around 164 ms; the budget allows ~3× headroom for noisy shared CI
// hosts before ccai-bench -compare flags the tail as over budget (a
// soft gate: reported, not failing, since absolute wall time on a
// shared machine is advisory — the *virtual* budgets below are the
// hard ones).
const ScheduledP99WaitBudget = 500_000_000 // ns

// Virtual service-time model for the virtual plane: a dispatched
// request occupies its slot for svcBase plus svcPerKiB per 1024 input
// bytes. The shape (fixed setup + linear transfer) mirrors the
// protected pipeline's measured profile; the absolute values just need
// to be stable, since every latency in the scorecard is virtual.
const (
	svcBase   = 80 * sim.Millisecond
	svcPerKiB = 8 * sim.Microsecond
)

// Config parameterizes one soak run. Use Smoke or Full for the two
// committed presets; tests may build smaller ones directly.
type Config struct {
	// Preset names the configuration in the scorecard ("smoke", "full",
	// or anything a test chooses).
	Preset string
	// Seed derives everything random in the run: the storm plan, every
	// tenant's arrival process, and request sizes.
	Seed uint64
	// Tenants is the virtual-plane flow count.
	Tenants int
	// Horizon is the virtual arrival window; the run ends when the last
	// admitted request completes.
	Horizon sim.Time
	// Slots bounds concurrently "executing" virtual requests.
	Slots int
	// QueueDepth is the per-tenant ingress bound (admission beyond it is
	// rejected, counted against availability).
	QueueDepth int
	// Quantum is the DRR deficit quantum in bytes.
	Quantum int64
	// CalmRPS/BurstRPS are the MMPP per-tenant arrival rates (req/s) in
	// the two states; CalmDwell/BurstDwell the mean state dwell times.
	CalmRPS, BurstRPS     float64
	CalmDwell, BurstDwell sim.Time
	// WavePeriod spaces the storm plan's waves; FaultsPerWave sizes each
	// wave's fault.Plan (events are dealt round-robin over every fault
	// class, so each wave exercises the full class list — presets track
	// len(fault.Classes()) so a new class is stormed the day it lands).
	WavePeriod    sim.Time
	FaultsPerWave int
	// Carriers is the real-tenant count on the carrier plane (0 disables
	// it — virtual-only, used by determinism unit tests). ProbeEvery
	// sends every N-th virtual dispatch through the real pipeline.
	Carriers   int
	ProbeEvery int

	// SLO budgets asserted by the scorecard (WithinBudgets).
	AvailabilityBudget   float64 // min fraction of offered requests served
	QueueWaitP99BudgetMs float64 // max virtual p99 admission→dispatch wait
	FairnessBudget       float64 // max per-tenant mean-wait spread (max/median)
}

// Smoke is the CI preset: a short virtual horizon that still runs the
// full machinery — waves, all fault classes, every attack instrument,
// real probes — in wall-clock seconds. Its scorecard is committed to
// BENCH_results.json and diffed by `make soak-smoke`.
func Smoke() Config {
	return Config{
		Preset:     "smoke",
		Seed:       0x50a1c0de_0001,
		Tenants:    256,
		Horizon:    6 * 60 * sim.Second,
		Slots:      4,
		QueueDepth: 8,
		Quantum:    8192,
		CalmRPS:    0.02, BurstRPS: 0.5,
		CalmDwell: 120 * sim.Second, BurstDwell: 10 * sim.Second,
		WavePeriod:    2 * 60 * sim.Second,
		FaultsPerWave: len(fault.Classes()),
		Carriers:      2,
		ProbeEvery:    24,

		AvailabilityBudget:   0.99,
		QueueWaitP99BudgetMs: 250,
		FairnessBudget:       12,
	}
}

// Full is the headline preset of ROADMAP item 5: a 1,000-tenant,
// 120-virtual-minute soak with twelve storm waves covering every fault
// class and attack instrument. Its scorecard is the committed
// soak/scorecard entry in BENCH_results.json.
func Full() Config {
	return Config{
		Preset:     "full",
		Seed:       0x50a1c0de_1000,
		Tenants:    1000,
		Horizon:    120 * 60 * sim.Second,
		Slots:      8,
		QueueDepth: 8,
		Quantum:    8192,
		CalmRPS:    0.02, BurstRPS: 0.5,
		CalmDwell: 120 * sim.Second, BurstDwell: 10 * sim.Second,
		WavePeriod:    10 * 60 * sim.Second,
		FaultsPerWave: len(fault.Classes()),
		Carriers:      4,
		ProbeEvery:    96,

		AvailabilityBudget:   0.99,
		QueueWaitP99BudgetMs: 250,
		FairnessBudget:       12,
	}
}
