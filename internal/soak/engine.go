package soak

import (
	"fmt"

	"ccai/internal/sched"
	"ccai/internal/sim"
	"ccai/internal/telemetry"
)

// req is one virtual request's life record.
type req struct {
	tenant    int
	bytes     int
	enq, disp sim.Time
}

// engine is the virtual plane: a discrete-event loop pushing MMPP
// arrivals through the DRR fair queue into cfg.Slots virtual execution
// slots. Every callback runs on the single event-loop goroutine, so a
// run is fully deterministic; the only wall-clock work is the carrier
// probes, whose outcomes are themselves deterministic.
type engine struct {
	cfg  Config
	clk  *sim.Engine
	q    *sched.Fair
	stop chan struct{} // pre-closed: turns Fair.Next into a deterministic try-dequeue

	arrivals []*mmpp
	rands    []*sim.Rand

	freeSlots  int
	dispatches int64

	// met is the shared SLO meter (internal/telemetry); the soak feeds
	// it virtual-time samples, production feeds it wall-clock ones.
	met *telemetry.Meter

	orc  *oracle
	car  *carrier
	plan StormPlan
}

// Run executes one soak and returns its scorecard. The returned error
// covers harness construction only; invariant violations and SLO
// breaches are data, reported in the scorecard (Violations,
// WithinBudgets) so CI can diff them like any other regression.
func Run(cfg Config) (Scorecard, error) {
	if cfg.Tenants < 1 || cfg.Horizon <= 0 || cfg.Slots < 1 {
		return Scorecard{}, fmt.Errorf("soak: config needs tenants/horizon/slots, got %+v", cfg)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 64
	}

	clk := sim.NewEngine()
	orc := newOracle(clk)
	q, err := sched.New(sched.Config{Flows: cfg.Tenants, Depth: cfg.QueueDepth, Quantum: cfg.Quantum})
	if err != nil {
		return Scorecard{}, err
	}
	e := &engine{
		cfg: cfg, clk: clk, q: q,
		stop:      make(chan struct{}),
		arrivals:  make([]*mmpp, cfg.Tenants),
		rands:     make([]*sim.Rand, cfg.Tenants),
		freeSlots: cfg.Slots,
		met:       telemetry.NewMeter(cfg.Tenants),
		orc:       orc,
		plan:      GeneratePlan(cfg),
	}
	close(e.stop)

	if cfg.Carriers > 0 {
		car, err := newCarrier(&cfg, orc, clk)
		if err != nil {
			return Scorecard{}, err
		}
		e.car = car
		defer car.close()
	}

	// Waves are scheduled before arrivals so a wave starting at the same
	// instant as a dispatch rewires the adversaries first (the engine
	// fires same-instant events in schedule order).
	if e.car != nil {
		for _, w := range e.plan.Waves {
			w := w
			clk.At(sim.Time(w.AtMs)*sim.Millisecond, func() { e.car.startWave(w) })
		}
	}
	for tn := 0; tn < cfg.Tenants; tn++ {
		tn := tn
		r := sim.NewRand(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(tn+1)))
		e.rands[tn] = r
		e.arrivals[tn] = newMMPP(r, &cfg)
		if gap := e.arrivals[tn].next(); gap < cfg.Horizon {
			clk.Schedule(gap, func() { e.arrive(tn) })
		}
	}
	clk.Run()
	if e.car != nil {
		e.car.endWave() // final wave's closing checks
		e.finalChecks()
	}
	return e.scorecard(), nil
}

// arrive admits one request for the tenant (or sheds it at the bounded
// queue) and books the tenant's next arrival while still inside the
// horizon.
func (e *engine) arrive(tn int) {
	now := e.clk.Now()
	e.met.Offered()
	size := 1024 << e.rands[tn].Intn(4) // 1–8 KiB
	r := &req{tenant: tn, bytes: size, enq: now}
	if _, err := e.q.Push(tn, int64(size), r); err != nil {
		e.met.Rejected()
	}
	e.pump()
	gap := e.arrivals[tn].next()
	if now+gap < e.cfg.Horizon {
		e.clk.Schedule(gap, func() { e.arrive(tn) })
	}
}

// pump fills free slots from the fair queue. Every ProbeEvery-th
// dispatch also rides the carrier plane; the real pipeline's recovery
// cost comes back as a virtual penalty on that request's service time,
// so injected faults show up in the latency tails.
func (e *engine) pump() {
	for e.freeSlots > 0 {
		en, ok := e.q.Next(e.stop)
		if !ok {
			return
		}
		e.freeSlots--
		r := en.Value.(*req)
		r.disp = e.clk.Now()
		e.dispatches++
		svc := svcBase + svcPerKiB*sim.Time(r.bytes/1024)
		outcome := probeOK
		if e.car != nil && e.dispatches%int64(e.cfg.ProbeEvery) == 0 {
			var pen sim.Time
			pen, outcome = e.car.probe()
			svc += pen
		}
		flow, oc := en.Flow, outcome
		e.clk.Schedule(svc, func() { e.complete(r, flow, oc) })
	}
}

// complete retires one request, frees its slot and flow, and pumps
// again.
func (e *engine) complete(r *req, flow int, outcome int) {
	e.q.Release(flow)
	e.freeSlots++
	switch outcome {
	case probeOK:
		e.met.Completed(r.tenant, int64(r.disp-r.enq), int64(e.clk.Now()-r.enq))
	case probeFailed:
		e.met.Failed()
	case probeCanceled:
		e.met.Canceled()
	}
	e.pump()
}

// finalChecks guards the oracles against vacuity and cross-checks the
// engine's own probe accounting against the obsv metrics layer — the
// meters must agree with the instruments they summarize.
func (e *engine) finalChecks() {
	if e.car.scanner.PayloadBytes() == 0 {
		e.orc.violatef("VACUOUS: confidentiality oracle saw no bus traffic")
	}
	if e.orc.ivsAudited() == 0 {
		e.orc.violatef("VACUOUS: IV oracle audited no seals")
	}
	if e.car.probeIdx == 0 {
		e.orc.violatef("VACUOUS: no carrier probes ran")
	}
	if ok := obsvCompletedOK(e.car.mp.Obs); ok != uint64(e.car.probeOKs) {
		e.orc.violatef("METER MISMATCH: obsv llm.sessions ok=%d, engine counted %d",
			ok, e.car.probeOKs)
	}
}
