package soak

import (
	"encoding/binary"
	"fmt"

	"ccai/internal/fault"
	"ccai/internal/sim"
)

// A Wave is one storm episode: at AtMs (virtual milliseconds from run
// start) the carrier plane's taps are rewired with a fresh fault
// injector running Faults, plus bounded attack instruments. When the
// next wave begins (or the run ends) the wave's closing actions fire:
// captured traffic is replayed and rogue requesters knock on the
// filters, both against a quiescent tap stack so the freshness and
// access-control oracles read clean.
type Wave struct {
	// AtMs is the wave's start on the virtual clock.
	AtMs uint32
	// Faults is the wave's injector plan (fresh injector per wave, so
	// skip/count indices restart each wave).
	Faults fault.Plan
	// Tamper/Drop bound the wave's bit-flip and packet-drop attacks.
	Tamper, Drop uint8
	// Redirect bounds cross-tenant address-rewrite attacks.
	Redirect uint8
	// Replay bounds the packets captured for end-of-wave replay.
	Replay uint8
	// Rogue is the number of end-of-wave rogue requester attempts.
	Rogue uint8
	// Rekey, when nonzero, forces a carrier stream counter near
	// exhaustion at wave start so MaybeRekey must roll keys under load.
	Rekey uint8
}

// StormPlan is the whole run's adversarial schedule. It is generated
// deterministically from the config seed and round-trips through a
// bounded wire format so CI can prove two runs executed the identical
// storm.
type StormPlan struct {
	Seed  uint64
	Waves []Wave
}

// Decoder hard limits: storm plans ride in CI artifacts and fuzz
// corpora, so the decoder bounds everything (the nested fault plans
// enforce their own limits).
const (
	// MaxWaves bounds a plan's wave list.
	MaxWaves = 64
	// MaxIntensity bounds each per-wave attack counter.
	MaxIntensity = 32
)

// stormMagic/stormVersion frame the serialized form.
var stormMagic = [4]byte{'S', 'S', 'T', 'M'}

const stormVersion = 1

// Marshal serializes the plan: magic, version, seed, wave count, then
// per wave the start instant, the six intensity bytes, and the nested
// length-prefixed fault plan.
func (p StormPlan) Marshal() []byte {
	buf := make([]byte, 0, 16+len(p.Waves)*32)
	buf = append(buf, stormMagic[:]...)
	buf = append(buf, stormVersion)
	buf = binary.LittleEndian.AppendUint64(buf, p.Seed)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Waves)))
	for _, w := range p.Waves {
		buf = binary.LittleEndian.AppendUint32(buf, w.AtMs)
		buf = append(buf, w.Tamper, w.Drop, w.Redirect, w.Replay, w.Rogue, w.Rekey)
		fp := w.Faults.Marshal()
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fp)))
		buf = append(buf, fp...)
	}
	return buf
}

// UnmarshalStormPlan parses a serialized plan, validating every
// structural invariant; malformed input yields an error, never a
// partial plan.
func UnmarshalStormPlan(data []byte) (StormPlan, error) {
	var p StormPlan
	if len(data) < 4+1+8+2 {
		return p, fmt.Errorf("soak: storm plan truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != stormMagic {
		return p, fmt.Errorf("soak: bad storm magic %q", data[:4])
	}
	if data[4] != stormVersion {
		return p, fmt.Errorf("soak: unsupported storm version %d", data[4])
	}
	p.Seed = binary.LittleEndian.Uint64(data[5:13])
	n := int(binary.LittleEndian.Uint16(data[13:15]))
	if n > MaxWaves {
		return StormPlan{}, fmt.Errorf("soak: %d waves exceeds limit %d", n, MaxWaves)
	}
	rest := data[15:]
	for i := 0; i < n; i++ {
		if len(rest) < 4+6+2 {
			return StormPlan{}, fmt.Errorf("soak: wave %d truncated", i)
		}
		w := Wave{
			AtMs:     binary.LittleEndian.Uint32(rest),
			Tamper:   rest[4],
			Drop:     rest[5],
			Redirect: rest[6],
			Replay:   rest[7],
			Rogue:    rest[8],
			Rekey:    rest[9],
		}
		for _, v := range []uint8{w.Tamper, w.Drop, w.Redirect, w.Replay, w.Rogue} {
			if v > MaxIntensity {
				return StormPlan{}, fmt.Errorf("soak: wave %d intensity %d exceeds limit %d", i, v, MaxIntensity)
			}
		}
		flen := int(binary.LittleEndian.Uint16(rest[10:12]))
		rest = rest[12:]
		if len(rest) < flen {
			return StormPlan{}, fmt.Errorf("soak: wave %d fault plan truncated", i)
		}
		fp, err := fault.UnmarshalPlan(rest[:flen])
		if err != nil {
			return StormPlan{}, fmt.Errorf("soak: wave %d: %w", i, err)
		}
		w.Faults = fp
		rest = rest[flen:]
		if i > 0 && w.AtMs <= p.Waves[i-1].AtMs {
			return StormPlan{}, fmt.Errorf("soak: wave %d start %dms not after wave %d", i, w.AtMs, i-1)
		}
		p.Waves = append(p.Waves, w)
	}
	if len(rest) != 0 {
		return StormPlan{}, fmt.Errorf("soak: %d trailing bytes after wave list", len(rest))
	}
	return p, nil
}

// GeneratePlan derives the run's storm schedule from the config: one
// wave per WavePeriod across the horizon, each wave's fault events
// dealt round-robin over every fault class (so a full run exercises
// all of them, many times over) with seed-derived skips and counts,
// plus seed-derived attack intensities. Rekey pressure alternates
// waves so key rolls land under many different load phases.
func GeneratePlan(cfg Config) StormPlan {
	r := sim.NewRand(cfg.Seed ^ 0x5707_3141_5926_5358)
	classes := fault.Classes()
	p := StormPlan{Seed: cfg.Seed}
	period := cfg.WavePeriod
	if period <= 0 {
		period = cfg.Horizon
	}
	for at := sim.Time(0); at < cfg.Horizon && len(p.Waves) < MaxWaves; at += period {
		w := Wave{
			AtMs:     uint32(at / sim.Millisecond),
			Tamper:   uint8(1 + r.Intn(3)),
			Drop:     uint8(1 + r.Intn(2)),
			Redirect: uint8(r.Intn(2)),
			Replay:   uint8(4 + r.Intn(5)),
			Rogue:    uint8(1 + r.Intn(2)),
			Rekey:    uint8((len(p.Waves) + 1) % 2),
		}
		n := cfg.FaultsPerWave
		if n <= 0 {
			n = len(classes)
		}
		fp := fault.Plan{Seed: r.Uint64()}
		for j := 0; j < n; j++ {
			fp.Events = append(fp.Events, fault.Event{
				Class: classes[j%len(classes)],
				Skip:  uint16(r.Intn(6)),
				Count: uint16(1 + r.Intn(2)),
			})
		}
		w.Faults = fp
		p.Waves = append(p.Waves, w)
	}
	return p
}
