package soak

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"ccai"
	"ccai/internal/adaptor"
	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/fault"
	"ccai/internal/llm"
	"ccai/internal/pcie"
	"ccai/internal/sim"
	"ccai/internal/xpu"
)

// Probe outcomes.
const (
	probeOK = iota
	probeFailed
	probeCanceled
)

// classPenalty is the virtual recovery cost charged when a fault class
// fires during a probe: the modelled time the recovery ladder spends
// absorbing that class (retry rounds, tag reposts, MMIO resync, slot
// re-dispatch). It feeds the probe-carrying request's virtual service
// time, so injected faults surface in the scorecard's latency tails
// exactly like they would in production traces.
var classPenalty = map[fault.Class]sim.Time{
	fault.CorruptTLP:      200 * sim.Microsecond,
	fault.DropTLP:         300 * sim.Microsecond,
	fault.TruncateTLP:     200 * sim.Microsecond,
	fault.DropCompletion:  400 * sim.Microsecond,
	fault.StaleCompletion: 350 * sim.Microsecond,
	fault.DoorbellHang:    500 * sim.Microsecond,
	fault.DropMSI:         450 * sim.Microsecond,
	fault.CryptoTransient: 80 * sim.Microsecond,
	fault.TagLoss:         250 * sim.Microsecond,
	fault.SchedStall:      120 * sim.Microsecond,
	fault.CancelRace:      60 * sim.Microsecond,
}

// Recovery-activity costs: each RecoveryStats delta observed across a
// probe converts to virtual time at these rates, and a session that
// failed closed pays the re-trust toll on top.
const (
	retryPenalty   = 200 * sim.Microsecond
	cryptoPenalty  = 50 * sim.Microsecond
	repostPenalty  = 150 * sim.Microsecond
	resyncPenalty  = 250 * sim.Microsecond
	timeoutPenalty = 300 * sim.Microsecond
	stalePenalty   = 100 * sim.Microsecond
	retrustPenalty = 40 * sim.Millisecond
)

// recAgg accumulates per-fault-class recovery time.
type recAgg struct {
	sum sim.Time
	n   int64
}

// carrier is the real plane: a small protected chassis whose periodic
// probes are live LLM inference sessions — prompt sealed up, KV-cache
// staged once into protected device memory, decode chunks streamed
// back — ridden while the storm's faults and attacks are live. It
// exists so the soak's invariant oracles observe a real protected
// serving pipeline, not a model of one.
type carrier struct {
	cfg *Config
	orc *oracle
	clk *sim.Engine

	mp *ccai.MultiPlatform

	canary    []byte
	xorCanary []byte
	scanner   *scanTap

	inj *fault.Injector
	rec *attack.Recorder

	gen      []int // per-tenant trust generation (bumped on re-trust)
	rogueN   int   // current wave's rogue attempts, fired at wave end
	probeIdx int64
	probeOKs int64
	retrusts int64
	replayed int64
	rogue    int64
	logLen   int // consumed prefix of the current injector's firing log

	recovery map[fault.Class]*recAgg
}

func newCarrier(cfg *Config, orc *oracle, clk *sim.Engine) (*carrier, error) {
	profiles := make([]xpu.Profile, cfg.Carriers)
	for i := range profiles {
		profiles[i] = xpu.A100
	}
	mp, err := ccai.NewMultiPlatform(profiles)
	if err != nil {
		return nil, err
	}
	mp.Observe()
	if err := mp.EstablishTrustAll(); err != nil {
		return nil, err
	}
	canary := []byte(fmt.Sprintf("SOAK-CANARY-%016x-DO-NOT-LEAK", cfg.Seed))
	xored := make([]byte, len(canary))
	for i, b := range canary {
		xored[i] = b ^ 0x5a
	}
	c := &carrier{
		cfg: cfg, orc: orc, clk: clk,
		mp:     mp,
		canary: canary, xorCanary: xored,
		gen:      make([]int, cfg.Carriers),
		recovery: make(map[fault.Class]*recAgg),
	}
	c.scanner = newScanTap(orc, canary, xored)
	mp.Host.AddTap(c.scanner)
	for _, t := range mp.Tenants {
		c.wireAudit(t)
	}
	return c, nil
}

// wireAudit (re-)attaches the IV oracle to one tenant's live streams
// under its current trust generation: the Adaptor seals h2d and
// config, the SC unit seals d2h.
func (c *carrier) wireAudit(t *ccai.Tenant) {
	gen := c.gen[t.Index]
	id := func(stream string) string {
		return fmt.Sprintf("t%d/g%d/%s", t.Index, gen, stream)
	}
	for _, s := range []string{core.StreamH2D, core.StreamConfig} {
		if err := t.Adaptor.AuditIVs(s, c.orc.ivHook(id(s))); err != nil {
			c.orc.violatef("tenant %d: IV audit wiring failed for %s: %v", t.Index, s, err)
		}
	}
	if d2h, err := t.SC.Params().Stream(core.StreamD2H); err == nil {
		d2h.SetIVAudit(c.orc.ivHook(id(core.StreamD2H)))
	}
}

// startWave tears down the previous wave's adversaries (running its
// closing checks against a quiet tap stack) and arms the new wave:
// fresh injector across every injection point, bounded attack taps,
// and optional rekey pressure.
func (c *carrier) startWave(w Wave) {
	c.endWave()

	c.inj = fault.NewInjector(w.Faults)
	c.inj.SetObserver(c.mp.Obs)
	c.logLen = 0
	c.mp.Host.AddTap(c.inj)
	for _, t := range c.mp.Tenants {
		t.Device.SetFaultHook(c.inj.DeviceFault)
		t.Adaptor.InstallCryptoFault(c.inj.CryptoFault)
		t.SC.Tags().SetFaultHook(c.inj.TagFault)
	}
	c.mp.SetLLMFaultHook(c.inj.SchedFault)

	if w.Tamper > 0 {
		c.mp.Host.AddTap(&attack.Tamperer{Count: int(w.Tamper)})
	}
	if w.Drop > 0 {
		c.mp.Host.AddTap(&attack.Dropper{Count: int(w.Drop)})
	}
	if w.Redirect > 0 && len(c.mp.Tenants) > 1 {
		// Redirect a bounded number of staged TVM writes into another
		// tenant's device window: the victim's filter must reject the
		// foreign requester, the origin's pipeline must recover or fail
		// closed — never accept the loss silently.
		var left atomic.Int32
		left.Store(int32(w.Redirect))
		victim := c.mp.Tenants[1].Device.BAR0().Base
		c.mp.Host.AddTap(&attack.Redirector{
			NewDst: victim,
			Match: func(p *pcie.Packet) bool {
				if p.Kind != pcie.MWr || !c.isTVM(p.Requester) || len(p.Payload) == 0 {
					return false
				}
				return left.Add(-1) >= 0
			},
		})
	}
	c.rec = nil
	if w.Replay > 0 {
		var left atomic.Int32
		left.Store(int32(w.Replay))
		c.rec = &attack.Recorder{Match: func(p *pcie.Packet) bool {
			if p.Kind != pcie.MWr || !c.isTVM(p.Requester) {
				return false
			}
			return left.Add(-1) >= 0
		}}
		c.mp.Host.AddTap(c.rec)
	}
	c.rogueN = int(w.Rogue)

	if w.Rekey != 0 {
		// Park every carrier's h2d stream a few seals short of the
		// proactive rekey threshold: MaybeRekey must roll the keys
		// mid-traffic, with the IV oracle watching for any (epoch,
		// counter) repeat. All carriers get the pressure because any one
		// of them may fail closed and re-trust (restarting its counters)
		// before its roll lands; the force is skipped without comment on
		// a session that is currently fail-closed for the same reason.
		for _, t := range c.mp.Tenants {
			_ = t.Adaptor.ForceStreamCounter(core.StreamH2D, ^uint32(0)-adaptor.RekeyThreshold-8)
		}
	}
}

// endWave closes the current wave, if any: the attack taps come off
// the bus (the oracle scanner goes straight back on), then the
// freshness and access-control probes run against the quiet stack —
// captured traffic is replayed and must cause no fresh decryptions,
// and rogue requesters must still die in the filters. Quiescing first
// matters: a leftover dropper eating the rogue packet would fake a
// filter pass, and a live injector would make the replay count
// ambiguous.
func (c *carrier) endWave() {
	rec := c.rec
	c.rec = nil
	c.harvestFirings()
	c.mp.Host.ClearTaps()
	c.mp.Host.AddTap(c.scanner)
	if rec != nil && len(rec.Captured) > 0 {
		before := c.decryptedChunks()
		rec.Replay(c.mp.Host)
		c.replayed += int64(len(rec.Captured))
		if after := c.decryptedChunks(); after != before {
			c.orc.violatef("REPLAY freshness: %d fresh decryptions from %d replayed packets",
				after-before, len(rec.Captured))
		}
	}
	c.rogueAttempts(c.rogueN)
	c.rogueN = 0
}

// rogueAttempts aims n forged-requester doorbell writes and status
// reads at carrier devices; every one must die in the L1 filter.
func (c *carrier) rogueAttempts(n int) {
	rr := &attack.RogueRequester{ID: pcie.MakeID(0, 9, 0), Bus: c.mp.Host}
	for i := 0; i < n; i++ {
		t := c.mp.Tenants[i%len(c.mp.Tenants)]
		base := t.Device.BAR0().Base
		dropped := t.SC.Stats().Filter.Dropped
		rr.Write(base+xpu.RegDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0})
		cpl := rr.Read(base+xpu.RegStatus, 8)
		if cpl != nil && cpl.Status == pcie.CplSuccess {
			c.orc.violatef("ROGUE requester read tenant %d device state", t.Index)
		}
		if t.SC.Stats().Filter.Dropped <= dropped {
			c.orc.violatef("ROGUE traffic to tenant %d not dropped by filter", t.Index)
		}
		c.rogue += 2
	}
}

func (c *carrier) isTVM(id pcie.ID) bool {
	for _, t := range c.mp.Tenants {
		if t.TVMID == id {
			return true
		}
	}
	return false
}

func (c *carrier) decryptedChunks() uint64 {
	var n uint64
	for _, t := range c.mp.Tenants {
		n += t.SC.Stats().DecryptedChunks
	}
	return n
}

// recoveryTotals sums every tenant's RecoveryStats into one vector.
func (c *carrier) recoveryTotals() adaptor.RecoveryStats {
	var sum adaptor.RecoveryStats
	for _, t := range c.mp.Tenants {
		r := t.Adaptor.Recovery()
		sum.Timeouts += r.Timeouts
		sum.Retries += r.Retries
		sum.Recovered += r.Recovered
		sum.StaleSuppressed += r.StaleSuppressed
		sum.CryptoRetries += r.CryptoRetries
		sum.Reposts += r.Reposts
		sum.Resyncs += r.Resyncs
		sum.Exhausted += r.Exhausted
		sum.FailClosed += r.FailClosed
	}
	return sum
}

// harvestFirings folds the current injector's unconsumed log tail into
// the per-class recovery aggregates (fired counts only; probes add the
// time component as they observe it).
func (c *carrier) harvestFirings() []fault.Firing {
	if c.inj == nil {
		return nil
	}
	log := c.inj.Log()
	fresh := log[c.logLen:]
	c.logLen = len(log)
	for _, f := range fresh {
		agg := c.recovery[f.Class]
		if agg == nil {
			agg = &recAgg{}
			c.recovery[f.Class] = agg
		}
		agg.n++
	}
	return fresh
}

// probe rides one real LLM inference session through the continuous-
// batching dispatcher and the full protected pipeline: the prompt
// (carrying the canary) seals up, the KV-cache stages into protected
// device memory, and every decode chunk streams back sealed. The
// recovery activity it causes converts into a virtual-time penalty for
// the probe-carrying request. A wrong token byte — the one outcome no
// fault may ever buy — is an oracle violation, not a latency.
func (c *carrier) probe() (sim.Time, int) {
	k := int(c.probeIdx) % len(c.mp.Tenants)
	c.probeIdx++
	t := c.mp.Tenants[k]

	cfg := llm.Config{
		MaxNewTokens: 16, ChunkTokens: 8, MaxPromptTokens: 16,
		Seed: c.cfg.Seed ^ uint64(c.probeIdx),
	}
	prompt := append([]byte(nil), c.canary...)
	prompt = append(prompt, fmt.Sprintf("|p%06d", c.probeIdx)...)

	recBefore := c.recoveryTotals()
	out, err := c.inference(t, cfg, prompt)
	recAfter := c.recoveryTotals()
	fired := c.harvestFirings()

	penalty := retryPenalty*sim.Time(recAfter.Retries-recBefore.Retries) +
		cryptoPenalty*sim.Time(recAfter.CryptoRetries-recBefore.CryptoRetries) +
		repostPenalty*sim.Time(recAfter.Reposts-recBefore.Reposts) +
		resyncPenalty*sim.Time(recAfter.Resyncs-recBefore.Resyncs) +
		timeoutPenalty*sim.Time(recAfter.Timeouts-recBefore.Timeouts) +
		stalePenalty*sim.Time(recAfter.StaleSuppressed-recBefore.StaleSuppressed)
	for _, f := range fired {
		penalty += classPenalty[f.Class]
	}

	outcome := probeOK
	switch {
	case err == nil:
		if want := llmExpected(cfg, prompt); !bytes.Equal(out, want) {
			c.orc.violatef("SILENT CORRUPTION: probe %d tenant %d token stream wrong (%d bytes, want %d)",
				c.probeIdx, k, len(out), len(want))
		}
		c.probeOKs++
	case errors.Is(err, context.Canceled) || errors.Is(err, ccai.ErrDeadlineExceeded):
		outcome = probeCanceled
	default:
		outcome = probeFailed
	}

	if recAfter.FailClosed > recBefore.FailClosed {
		// The session died rather than weaken an invariant — the designed
		// worst case. Recovery is a full re-trust under the next
		// generation, with the IV oracle re-wired to the fresh streams.
		penalty += retrustPenalty
		c.retrusts++
		t.Close()
		var terr error
		for try := 0; try < 3; try++ {
			if terr = t.EstablishTrust(); terr == nil {
				break
			}
			t.Close()
		}
		if terr != nil {
			c.orc.violatef("RETRUST failed for tenant %d: %v", k, terr)
		} else {
			c.gen[k]++
			c.wireAudit(t)
			if c.inj != nil {
				t.Adaptor.InstallCryptoFault(c.inj.CryptoFault)
			}
		}
	}

	// Spread per-class recovery time over the classes that fired during
	// this probe (deterministic integer split).
	if len(fired) > 0 && penalty > 0 {
		share := penalty / sim.Time(len(fired))
		for _, f := range fired {
			c.recovery[f.Class].sum += share
		}
	}
	return penalty, outcome
}

// inference runs one complete streaming session on the tenant: open,
// prefill, drain the sealed decode stream, close. The concatenated
// token bytes come back for oracle verification.
func (c *carrier) inference(t *ccai.Tenant, cfg llm.Config, prompt []byte) ([]byte, error) {
	sess, err := t.OpenSession(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	ch, err := sess.Decode(context.Background())
	if err != nil {
		return nil, err
	}
	if err := sess.Prefill(context.Background(), prompt); err != nil {
		return nil, err
	}
	var out []byte
	for chunk := range ch {
		if chunk.Err != nil {
			return nil, chunk.Err
		}
		out = append(out, chunk.Tokens...)
	}
	return out, nil
}

// llmExpected is the host-side oracle for a probe session: the token
// stream the device must produce iff the KV-cache stayed resident and
// uncorrupted across every decode step.
func llmExpected(cfg llm.Config, prompt []byte) []byte {
	if err := cfg.Normalize(); err != nil {
		return nil
	}
	digest := llm.Digest(cfg.Seed, prompt)
	kv := llm.KVInit(digest, cfg.KVBytes(cfg.MaxPromptTokens))
	var out []byte
	for i := 0; i < cfg.Chunks(); i++ {
		span := int64(cfg.ChunkSpan(i) * cfg.TokenBytes)
		out = append(out, llm.ExpectedChunk(kv, digest, i, span)...)
	}
	return out
}

// close shuts the carrier down and runs the final wave's closing
// checks.
func (c *carrier) close() {
	c.endWave()
	c.mp.Close()
}
