// Package secmem implements ccAI's cryptographic machinery: AES-GCM
// protected streams with the paper's IV discipline (12-byte nonce +
// 4-byte big-endian counter, §7.2), IV-exhaustion rekeying (§6), plain
// HMAC integrity for Write-Protected (A3) traffic, and performance
// models for the three engines the evaluation distinguishes — the
// PCIe-SC's pipelined hardware engine, the Adaptor's AES-NI path, and
// the slow software path used by the Figure 11 "No Opt" ablation.
package secmem

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ccai/internal/arena"
	"ccai/internal/obsv"
)

// KeySize is the AES key length in bytes. The prototype uses AES-128
// (§7.1 "AES-128 in our prototype").
const KeySize = 16

// TagSize is the GCM authentication tag length (§7.2: 16-byte tag).
const TagSize = 16

// NonceSize is the GCM IV length: 12-byte nonce; the low 4 bytes of the
// nonce's companion counter give "12-byte nonce and 4-byte counter".
const nonceBase = 8
const NonceSize = 12

// ErrIVExhausted reports that a stream consumed its entire 32-bit
// counter space. Continuing would reuse an IV — the GCM fragility the
// paper cites ([23, 29, 42]) — so callers must rekey first.
var ErrIVExhausted = errors.New("secmem: IV counter exhausted; rekey required")

// ErrAuth reports a failed integrity check on a protected payload.
var ErrAuth = errors.New("secmem: authentication failed")

// ErrReplay reports a sequence counter that moved backwards or repeated,
// i.e. a replayed or reordered protected packet.
var ErrReplay = errors.New("secmem: replayed or out-of-order counter")

// ErrTransient reports a recoverable crypto-engine fault (a pipeline
// stall, an ECC hiccup in the engine's working SRAM). The operation
// consumed no stream state — in particular no IV counter — so the
// caller may simply retry; the fault layer injects these to exercise
// recovery paths.
var ErrTransient = errors.New("secmem: transient crypto-engine fault")

// Stream is one direction of a protected channel between the Adaptor and
// the PCIe-SC. Both ends derive the same key and nonce base during trust
// establishment; each encrypted chunk consumes one counter value, and
// the receiver enforces strictly increasing counters, which defeats
// replay and reordering on the untrusted bus segment (§8.2).
type Stream struct {
	// batchMu serializes whole OpenBatch operations (validate →
	// parallel decrypt → watermark advance); it is always acquired
	// before mu and never held by single-chunk operations.
	batchMu sync.Mutex
	// batchOffs/batchErrs are OpenBatchInto's reusable scratch (offset
	// prefix sums and per-chunk verdicts), owned by whoever holds
	// batchMu. They carry no secret material.
	batchOffs []int
	batchErrs []error

	mu        sync.Mutex
	aead      cipher.AEAD
	nonceBase [nonceBase]byte
	sendCtr   uint32
	recvCtr   uint32 // highest counter accepted so far (0 = none)
	epoch     uint32 // increments on rekey

	// ivScratch is the IV assembly buffer for single-chunk Seal calls.
	// Guarded by mu; batched paths build IVs in per-worker scratch
	// instead, so this never races with the pipeline.
	ivScratch [NonceSize]byte

	// fault, when set, is consulted before each engine operation and
	// may return ErrTransient to model a recoverable engine error. It
	// fires before any stream state changes, so a failed operation
	// never consumes an IV counter.
	fault func(op string) error
	// ivAudit, when set, observes every (epoch, counter) pair consumed
	// by Seal — the test oracle for the "no IV is ever reused"
	// invariant.
	ivAudit func(epoch, counter uint32)

	// obs carries the optional observability handles. All fields are
	// nil-safe, so the uninstrumented hot path pays one nil check.
	obs *streamObs
}

// streamObs holds cached metric handles and the tracer for one stream
// endpoint. Spans and counters carry only metadata (stream name, side,
// byte counts, counters) — never plaintext or ciphertext bytes.
type streamObs struct {
	tracer *obsv.Tracer
	track  string
	name   string

	sealOps, sealBytes *obsv.Counter
	openOps, openBytes *obsv.Counter
	authFail, replay   *obsv.Counter
	rekeys             *obsv.Counter
}

// SetObserver instruments this stream endpoint. track names the tracer
// track (e.g. "tvm/adaptor/crypto"); name is the stream ("h2d"). A nil
// hub clears instrumentation.
func (s *Stream) SetObserver(h *obsv.Hub, track, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h == nil {
		s.obs = nil
		return
	}
	reg := h.Reg()
	label := func(base string) string { return obsv.Name(base, "stream", name, "side", track) }
	s.obs = &streamObs{
		tracer:    h.T(),
		track:     track,
		name:      name,
		sealOps:   reg.Counter(label("secmem.seal.ops")),
		sealBytes: reg.Counter(label("secmem.seal.bytes")),
		openOps:   reg.Counter(label("secmem.open.ops")),
		openBytes: reg.Counter(label("secmem.open.bytes")),
		authFail:  reg.Counter(label("secmem.auth_failures")),
		replay:    reg.Counter(label("secmem.replay_rejects")),
		rekeys:    reg.Counter(label("secmem.rekeys")),
	}
}

// newAEAD runs the AES key schedule and builds the GCM instance — the
// expensive, key-dependent half of stream construction. GCM AEADs are
// stateless per operation, so one instance may back any number of
// streams over the same key epoch.
func newAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("secmem: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// NewStream builds a protected stream from a 16-byte key and an 8-byte
// nonce base (unique per stream direction).
func NewStream(key []byte, nonce []byte) (*Stream, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return NewStreamAEAD(aead, nonce)
}

// NewStreamAEAD builds a protected stream around an already-constructed
// AEAD — the KeyStore's per-key-epoch cipher cache hands these out so
// the AES key schedule runs once per Install, not once per Stream call.
// The caller must guarantee the AEAD was built over a KeySize key that
// is unique to this stream's key epoch.
func NewStreamAEAD(aead cipher.AEAD, nonce []byte) (*Stream, error) {
	if aead == nil {
		return nil, errors.New("secmem: nil AEAD")
	}
	if len(nonce) != nonceBase {
		return nil, fmt.Errorf("secmem: nonce base must be %d bytes, got %d", nonceBase, len(nonce))
	}
	s := &Stream{aead: aead}
	copy(s.nonceBase[:], nonce)
	return s, nil
}

// Sealed is one protected chunk: ciphertext, its GCM tag (carried by a
// companion tag packet on the wire) and the counter that fixes its IV
// and its position in the stream.
type Sealed struct {
	Counter    uint32
	Epoch      uint32
	Ciphertext []byte
	Tag        [TagSize]byte
}

// Seal encrypts plaintext with the next counter, binding aad (typically
// the serialized TLP header fields) into the tag. Safe for concurrent
// use: the counter check and increment happen under the stream lock, so
// pipelined in-flight packets can never double-allocate (and therefore
// never reuse) an IV, even at the exhaustion boundary.
func (s *Stream) Seal(plaintext, aad []byte) (*Sealed, error) {
	sealed := new(Sealed)
	if err := s.SealInto(sealed, plaintext, aad); err != nil {
		return nil, err
	}
	return sealed, nil
}

// SealInto is Seal with the result written into a caller-provided
// struct, so per-chunk hot paths (the SC's D2H encrypt loop) keep the
// Sealed on their own stack. Only Ciphertext is freshly allocated — it
// outlives the call as a packet payload.
func (s *Stream) SealInto(sealed *Sealed, plaintext, aad []byte) error {
	return s.SealDst(sealed, plaintext, aad, nil)
}

// SealDst is SealInto with the engine output staged in dst when it has
// capacity for len(plaintext)+TagSize bytes (GCM emits ciphertext and
// tag contiguously; the tag is then split off into sealed.Tag and
// sealed.Ciphertext aliases dst). With nil or an undersized dst the
// engine allocates, exactly like SealInto. Because the ciphertext
// aliases dst and outlives the call as a packet payload, dst must come
// from never-recycled memory (arena.Slab) — never from a Put/Get pool.
func (s *Stream) SealDst(sealed *Sealed, plaintext, aad, dst []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault != nil {
		if err := s.fault("seal"); err != nil {
			return err
		}
	}
	if s.sendCtr == ^uint32(0) {
		return ErrIVExhausted
	}
	var sp obsv.ActiveSpan
	if o := s.obs; o != nil {
		sp = o.tracer.Begin(o.track, "seal",
			obsv.Str("stream", o.name), obsv.I64("bytes", int64(len(plaintext))))
	}
	s.sendCtr++
	c := s.sendCtr
	if s.ivAudit != nil {
		s.ivAudit(s.epoch, c)
	}
	copy(s.ivScratch[:], s.nonceBase[:])
	binary.BigEndian.PutUint32(s.ivScratch[nonceBase:], c)
	out := s.aead.Seal(dst[:0], s.ivScratch[:], plaintext, aad)
	sealed.Counter = c
	sealed.Epoch = s.epoch
	n := len(out) - TagSize
	sealed.Ciphertext = out[:n]
	copy(sealed.Tag[:], out[n:])
	if o := s.obs; o != nil {
		sp.Attr(obsv.U64("ctr", uint64(c)), obsv.U64("epoch", uint64(s.epoch)))
		sp.End()
		o.sealOps.Inc()
		o.sealBytes.Add(uint64(len(plaintext)))
	}
	return nil
}

// Open authenticates and decrypts one chunk, enforcing the
// strictly-increasing counter discipline.
func (s *Stream) Open(sealed *Sealed, aad []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault != nil {
		if err := s.fault("open"); err != nil {
			return nil, err
		}
	}
	if sealed.Epoch != s.epoch {
		s.obsReplay()
		return nil, fmt.Errorf("%w: epoch %d vs %d", ErrReplay, sealed.Epoch, s.epoch)
	}
	if sealed.Counter <= s.recvCtr {
		s.obsReplay()
		return nil, fmt.Errorf("%w: counter %d after %d", ErrReplay, sealed.Counter, s.recvCtr)
	}
	var sp obsv.ActiveSpan
	if o := s.obs; o != nil {
		sp = o.tracer.Begin(o.track, "open",
			obsv.Str("stream", o.name), obsv.I64("bytes", int64(len(sealed.Ciphertext))),
			obsv.U64("ctr", uint64(sealed.Counter)))
	}
	// One arena buffer carries ciphertext||tag plus the IV at its tail;
	// everything in it is public bytes, so Put (not PutZero) on release.
	ctLen := len(sealed.Ciphertext)
	buf := arena.Get(ctLen + TagSize + NonceSize)
	copy(buf, sealed.Ciphertext)
	copy(buf[ctLen:], sealed.Tag[:])
	iv := buf[ctLen+TagSize:]
	copy(iv, s.nonceBase[:])
	binary.BigEndian.PutUint32(iv[nonceBase:], sealed.Counter)
	pt, err := s.aead.Open(nil, iv, buf[:ctLen+TagSize], aad)
	arena.Put(buf)
	if err != nil {
		if o := s.obs; o != nil {
			o.authFail.Inc()
		}
		return nil, ErrAuth
	}
	s.recvCtr = sealed.Counter
	if o := s.obs; o != nil {
		sp.End()
		o.openOps.Inc()
		o.openBytes.Add(uint64(len(pt)))
	}
	return pt, nil
}

// obsReplay counts one replay rejection. Callers hold s.mu.
func (s *Stream) obsReplay() {
	if o := s.obs; o != nil {
		o.replay.Inc()
	}
}

// OpenStateless authenticates and decrypts a chunk that was ALREADY
// accepted once (its counter is at or below the receive watermark)
// without advancing any stream state. This is the duplicate-read
// suppression primitive: a benign retransmit — the device re-fetching a
// chunk after a link fault — re-verifies against the retained tag and
// is re-served, while the strictly-increasing discipline of Open keeps
// rejecting genuinely replayed traffic presented as new data. Chunks
// that were never accepted do not qualify and fail with ErrReplay.
func (s *Stream) OpenStateless(sealed *Sealed, aad []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault != nil {
		if err := s.fault("open"); err != nil {
			return nil, err
		}
	}
	if sealed.Epoch != s.epoch {
		s.obsReplay()
		return nil, fmt.Errorf("%w: epoch %d vs %d", ErrReplay, sealed.Epoch, s.epoch)
	}
	if sealed.Counter > s.recvCtr {
		s.obsReplay()
		return nil, fmt.Errorf("%w: counter %d never accepted (watermark %d)", ErrReplay, sealed.Counter, s.recvCtr)
	}
	var sp obsv.ActiveSpan
	if o := s.obs; o != nil {
		sp = o.tracer.Begin(o.track, "open",
			obsv.Str("stream", o.name), obsv.Str("mode", "stateless"),
			obsv.I64("bytes", int64(len(sealed.Ciphertext))),
			obsv.U64("ctr", uint64(sealed.Counter)))
	}
	// One arena buffer carries ciphertext||tag plus the IV at its tail;
	// everything in it is public bytes, so Put (not PutZero) on release.
	ctLen := len(sealed.Ciphertext)
	buf := arena.Get(ctLen + TagSize + NonceSize)
	copy(buf, sealed.Ciphertext)
	copy(buf[ctLen:], sealed.Tag[:])
	iv := buf[ctLen+TagSize:]
	copy(iv, s.nonceBase[:])
	binary.BigEndian.PutUint32(iv[nonceBase:], sealed.Counter)
	pt, err := s.aead.Open(nil, iv, buf[:ctLen+TagSize], aad)
	arena.Put(buf)
	if err != nil {
		if o := s.obs; o != nil {
			o.authFail.Inc()
		}
		return nil, ErrAuth
	}
	if o := s.obs; o != nil {
		sp.End()
		o.openOps.Inc()
		o.openBytes.Add(uint64(len(pt)))
	}
	return pt, nil
}

// SetFaultHook installs (or clears, with nil) the transient-fault
// injection point consulted before each engine operation.
func (s *Stream) SetFaultHook(fn func(op string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = fn
}

// SetIVAudit installs an observer for every IV (epoch, counter) the
// seal side consumes. Test instrumentation only; it must not block.
func (s *Stream) SetIVAudit(fn func(epoch, counter uint32)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ivAudit = fn
}

// SendCounter reports how many chunks have been sealed.
func (s *Stream) SendCounter() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sendCtr
}

// Epoch reports the stream's key epoch.
func (s *Stream) Epoch() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Remaining reports how many counter values are left before exhaustion.
func (s *Stream) Remaining() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ^uint32(0) - s.sendCtr
}

// Rekey installs a fresh key + nonce base and resets both counters,
// bumping the epoch. This is the paper's IV-exhaustion mitigation
// ("generating and exchanging a new key", following H100 practice).
func (s *Stream) Rekey(key, nonce []byte) error {
	ns, err := NewStream(key, nonce)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aead = ns.aead
	s.nonceBase = ns.nonceBase
	s.sendCtr = 0
	s.recvCtr = 0
	s.epoch++
	if o := s.obs; o != nil {
		o.rekeys.Inc()
		o.tracer.Instant(o.track, "rekey",
			obsv.Str("stream", o.name), obsv.U64("epoch", uint64(s.epoch)))
	}
	return nil
}

// ForceCounter positions the send counter for testing exhaustion paths.
func (s *Stream) ForceCounter(c uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sendCtr = c
}

// --- A3 (Write Protected) integrity ---------------------------------------

// MAC computes the plain-integrity code used for Write-Protected packets
// (action A3, Table 1): payload stays in the clear but carries an HMAC
// binding payload and header so bus tampering is detected.
func MAC(key, header, payload []byte) [32]byte {
	m := hmac.New(sha256.New, key)
	m.Write(header)
	m.Write(payload)
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

// VerifyMAC checks an A3 integrity code in constant time.
func VerifyMAC(key, header, payload []byte, tag [32]byte) bool {
	want := MAC(key, header, payload)
	return hmac.Equal(want[:], tag[:])
}

// Measure hashes arbitrary firmware/bitstream content for the secure
// boot chain (SHA-256, matching the HRoT-Blade's PCR bank).
func Measure(parts ...[]byte) [32]byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
