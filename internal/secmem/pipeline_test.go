package secmem

// Tests for the streaming seal pipeline and the batch-open-into path —
// the DESIGN.md §10 datapath. The properties pinned here are the ones
// the pipeline must not trade away for speed: in-order emit under a
// parallel pool, IV safety across transient retries, and fail-closed
// zeroing of partially decrypted output.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestSealBatchStreamInOrder runs the streaming pipeline over several
// pool widths and asserts emit sees chunks strictly in submission
// order with contiguous counters, and that the bytes delivered are
// exactly what a serial Seal sequence would produce — reordering
// inside the pool must never be visible at the emit boundary.
func TestSealBatchStreamInOrder(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			serial, _ := newPair(t)
			stream, _ := newPair(t)
			key, nonce := FreshKey(), FreshNonce()
			for _, s := range []*Stream{serial, stream} {
				if err := s.Rekey(key, nonce); err != nil {
					t.Fatal(err)
				}
			}
			pts, aads := chunkset(33, 96)

			var want []*Sealed
			for i := range pts {
				s, err := serial.Seal(pts[i], aads[i])
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, s)
			}

			next := 0
			err := stream.SealBatchStream(pts, aads, NewPool(w), func(i int, chunk *Sealed) error {
				if i != next {
					t.Fatalf("emit order broken: got chunk %d, want %d", i, next)
				}
				next++
				if chunk.Counter != want[i].Counter || chunk.Epoch != want[i].Epoch {
					t.Fatalf("chunk %d: counter/epoch diverge from serial seal", i)
				}
				if !bytes.Equal(chunk.Ciphertext, want[i].Ciphertext) || chunk.Tag != want[i].Tag {
					t.Fatalf("chunk %d: bytes diverge from serial seal", i)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if next != len(pts) {
				t.Fatalf("emit ran %d times, want %d", next, len(pts))
			}
			if stream.SendCounter() != serial.SendCounter() {
				t.Fatalf("counters diverge: %d vs %d", stream.SendCounter(), serial.SendCounter())
			}
		})
	}
}

// TestSealBatchStreamEmitCopiesSurvive verifies the documented arena
// contract: the Ciphertext handed to emit is only valid inside emit,
// so a consumer that copies (like the Adaptor's bounce-buffer write)
// must end up with chunks that all still authenticate after the
// pipeline — pooled-buffer reuse during the run must never corrupt an
// earlier chunk's copy.
func TestSealBatchStreamEmitCopiesSurvive(t *testing.T) {
	tx, rx := newPair(t)
	pts, aads := chunkset(25, 256)

	sealed := make([]Sealed, 0, len(pts))
	err := tx.SealBatchStream(pts, aads, NewPool(4), func(i int, chunk *Sealed) error {
		c := *chunk
		c.Ciphertext = append([]byte(nil), chunk.Ciphertext...)
		sealed = append(sealed, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 25*256)
	if err := rx.OpenBatchInto(dst, sealed, aads, nil); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if !bytes.Equal(dst[i*256:(i+1)*256], pts[i]) {
			t.Fatalf("chunk %d corrupted by in-flight buffer reuse", i)
		}
	}
}

// TestSealBatchStreamTransientConsumesNoCounters: the fault hook fires
// before any counter is reserved, so a transient abort leaves the
// stream exactly where it was and the retry reuses the identical IV
// range — the invariant that makes mid-pipeline retry safe.
func TestSealBatchStreamTransientConsumesNoCounters(t *testing.T) {
	tx, rx := newPair(t)
	fail := true
	tx.SetFaultHook(func(op string) error {
		if op == "seal" && fail {
			fail = false
			return ErrTransient
		}
		return nil
	})
	pts, aads := chunkset(6, 64)

	before := tx.SendCounter()
	emits := 0
	err := tx.SealBatchStream(pts, aads, NewPool(2), func(i int, chunk *Sealed) error {
		emits++
		return nil
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("got %v, want ErrTransient", err)
	}
	if emits != 0 {
		t.Fatalf("aborted pipeline still emitted %d chunks", emits)
	}
	if tx.SendCounter() != before {
		t.Fatalf("transient abort consumed counters: %d -> %d", before, tx.SendCounter())
	}

	sealed := make([]Sealed, 0, len(pts))
	err = tx.SealBatchStream(pts, aads, NewPool(2), func(i int, chunk *Sealed) error {
		c := *chunk
		c.Ciphertext = append([]byte(nil), chunk.Ciphertext...)
		sealed = append(sealed, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sealed[0].Counter != before+1 {
		t.Fatalf("retry started at counter %d, want %d", sealed[0].Counter, before+1)
	}
	dst := make([]byte, 6*64)
	if err := rx.OpenBatchInto(dst, sealed, aads, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSealBatchStreamEmitErrorAborts: once emit has run, the batch is
// not retryable; an emit error must surface as-is and stop the
// pipeline without emitting further chunks.
func TestSealBatchStreamEmitErrorAborts(t *testing.T) {
	tx, _ := newPair(t)
	pts, aads := chunkset(16, 64)
	boom := errors.New("bounce buffer revoked")
	last := -1
	err := tx.SealBatchStream(pts, aads, NewPool(4), func(i int, chunk *Sealed) error {
		last = i
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the emit error", err)
	}
	if last != 3 {
		t.Fatalf("pipeline emitted chunk %d after the failing one", last)
	}
}

// TestOpenBatchIntoZeroesOnAuthFailure: when any chunk fails
// authentication, every plaintext byte the batch already produced —
// including chunks that verified fine — must be zeroed before the
// error returns. Partial plaintext never survives in caller-visible
// memory.
func TestOpenBatchIntoZeroesOnAuthFailure(t *testing.T) {
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			tx, rx := newPair(t)
			pts, aads := chunkset(9, 128)
			sealedPtrs, err := tx.SealBatch(pts, aads, nil)
			if err != nil {
				t.Fatal(err)
			}
			sealed := make([]Sealed, len(sealedPtrs))
			for i, s := range sealedPtrs {
				sealed[i] = *s
			}
			// Corrupt a late chunk so earlier ones decrypt first.
			sealed[7].Ciphertext = append([]byte(nil), sealed[7].Ciphertext...)
			sealed[7].Ciphertext[0] ^= 1

			dst := make([]byte, 9*128)
			for i := range dst {
				dst[i] = 0xEE // sentinel: must not survive as plaintext
			}
			if err := rx.OpenBatchInto(dst, sealed, aads, NewPool(w)); !errors.Is(err, ErrAuth) {
				t.Fatalf("got %v, want ErrAuth", err)
			}
			for i, v := range dst {
				if v != 0 {
					t.Fatalf("byte %d = %#x after auth failure; span not zeroed", i, v)
				}
			}
		})
	}
}
