package secmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"ccai/internal/arena"
	"ccai/internal/obsv"
)

// SealBatchStream encrypts len(pts) chunks and delivers them to emit
// strictly in submission order, overlapping crypto with whatever the
// caller does in emit (bounce-buffer writes, tag posting): while emit
// runs for chunk i, pool workers are already sealing chunks > i. This
// is the streaming pipeline of DESIGN.md §10 — the replacement for the
// barrier-style "seal all, then write all" staging.
//
// Counter reservation and fault semantics are identical to SealBatch:
// the fault hook is consulted once per chunk before any counter is
// reserved, so an ErrTransient return consumes no stream state and the
// whole batch may be retried with the same IVs. Once emit has run for
// any chunk the batch is no longer retryable — an emit error aborts
// the remaining pipeline and is returned as-is, with the consumed
// counters abandoned (the recovery ladder's repost/teardown logic owns
// that case).
//
// The Sealed passed to emit has its Ciphertext backed by pooled arena
// memory that is reclaimed the moment emit returns: emit must copy any
// bytes it keeps and must not retain the slice or the *Sealed.
func (s *Stream) SealBatchStream(pts, aads [][]byte, pool *Pool, emit func(i int, chunk *Sealed) error) error {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if aads != nil && len(aads) != n {
		return fmt.Errorf("secmem: %d plaintexts but %d aads", n, len(aads))
	}

	s.mu.Lock()
	if s.fault != nil {
		for range pts {
			if err := s.fault("seal"); err != nil {
				s.mu.Unlock()
				return err
			}
		}
	}
	if uint64(s.sendCtr)+uint64(n) > uint64(^uint32(0)) {
		s.mu.Unlock()
		return ErrIVExhausted
	}
	base := s.sendCtr
	s.sendCtr += uint32(n)
	aead, nb, epoch := s.aead, s.nonceBase, s.epoch
	if s.ivAudit != nil {
		for i := 0; i < n; i++ {
			s.ivAudit(epoch, base+1+uint32(i))
		}
	}
	o := s.obs
	var total int64
	for _, pt := range pts {
		total += int64(len(pt))
	}
	s.mu.Unlock()

	var sp obsv.ActiveSpan
	if o != nil {
		sp = o.tracer.Begin(o.track, "seal_stream",
			obsv.Str("stream", o.name), obsv.I64("bytes", total), obsv.I64("chunks", int64(n)))
	}

	w := pool.Workers()
	if w > n {
		w = n
	}

	// sealInto encrypts chunk i into an arena buffer using the worker's
	// reusable IV array. The returned slice is ciphertext||tag.
	sealInto := func(iv *[NonceSize]byte, i int) []byte {
		c := base + 1 + uint32(i)
		binary.BigEndian.PutUint32(iv[nonceBase:], c)
		var aad []byte
		if aads != nil {
			aad = aads[i]
		}
		buf := arena.Get(len(pts[i]) + TagSize)
		return aead.Seal(buf[:0], iv[:], pts[i], aad)
	}

	var err error
	if w == 1 {
		// Serial fast path: seal and emit inline, already in order. One
		// arena buffer sized for the largest chunk serves the whole
		// batch — emit must copy anything it keeps, so the buffer is
		// free for reuse the moment emit returns.
		var iv [NonceSize]byte
		copy(iv[:], nb[:])
		maxLen := 0
		for _, pt := range pts {
			if len(pt) > maxLen {
				maxLen = len(pt)
			}
		}
		buf := arena.Get(maxLen + TagSize)
		var chunk Sealed
		for i := 0; i < n && err == nil; i++ {
			c := base + 1 + uint32(i)
			putNonce(&iv, nb, c)
			var aad []byte
			if aads != nil {
				aad = aads[i]
			}
			ct := aead.Seal(buf[:0], iv[:], pts[i], aad)
			k := len(ct) - TagSize
			chunk = Sealed{Counter: c, Epoch: epoch, Ciphertext: ct[:k]}
			copy(chunk.Tag[:], ct[k:])
			err = emit(i, &chunk)
		}
		arena.Put(buf) // ciphertext only: public bytes
	} else {
		err = sealStreamParallel(n, w, base, epoch, nb, sealInto, emit)
	}

	if o != nil {
		sp.Attr(obsv.U64("ctr_first", uint64(base+1)), obsv.U64("epoch", uint64(epoch)))
		sp.End()
		if err == nil {
			o.sealOps.Add(uint64(n))
			o.sealBytes.Add(uint64(total))
		}
	}
	return err
}

// sealStreamParallel runs crypto workers over a bounded in-flight
// window and emits completed chunks in submission order. Workers claim
// indices from an atomic counter in increasing order, so the
// next-to-emit chunk is always already claimed and never blocked on
// the window (its distance to the emit frontier is zero) — the
// pipeline cannot deadlock, and an emit error wakes any window-blocked
// worker via the same condition variable.
func sealStreamParallel(n, w int, base, epoch uint32, nb [nonceBase]byte,
	sealInto func(iv *[NonceSize]byte, i int) []byte,
	emit func(i int, chunk *Sealed) error) error {

	window := 4 * w
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		bufs    = make([][]byte, n)
		done    = make([]bool, n)
		emitted int
		abort   bool
	)
	var next atomic.Int64
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		var iv [NonceSize]byte
		copy(iv[:], nb[:])
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			mu.Lock()
			for i-emitted >= window && !abort {
				cond.Wait()
			}
			if abort {
				mu.Unlock()
				return
			}
			mu.Unlock()
			ct := sealInto(&iv, i)
			mu.Lock()
			bufs[i], done[i] = ct, true
			cond.Broadcast()
			mu.Unlock()
		}
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go worker()
	}

	var err error
	var chunk Sealed
	for i := 0; i < n; i++ {
		mu.Lock()
		for !done[i] {
			cond.Wait()
		}
		ct := bufs[i]
		bufs[i] = nil
		mu.Unlock()
		k := len(ct) - TagSize
		chunk = Sealed{Counter: base + 1 + uint32(i), Epoch: epoch, Ciphertext: ct[:k]}
		copy(chunk.Tag[:], ct[k:])
		err = emit(i, &chunk)
		arena.Put(ct)
		mu.Lock()
		emitted++
		if err != nil {
			abort = true
		}
		cond.Broadcast()
		mu.Unlock()
		if err != nil {
			break
		}
	}
	wg.Wait()
	// Reclaim chunks that finished sealing after an abort.
	for _, b := range bufs {
		if b != nil {
			arena.Put(b)
		}
	}
	return err
}

// OpenBatchInto authenticates and decrypts a batch of chunks directly
// into dst, which must hold at least the sum of the ciphertext
// lengths. Chunk i's plaintext lands at the prefix-sum offset of the
// preceding ciphertext lengths, so a region reassembles contiguously
// with zero copies. Validation, watermark and fault semantics match
// OpenBatch (the sealed records are taken by value so the caller can
// reuse a scratch slice).
//
// On any authentication failure the written span of dst is zeroed
// before returning ErrAuth — partial plaintext, including chunks that
// verified before the failing one, never survives in caller-visible
// memory (fail-closed discipline, DESIGN.md §10).
func (s *Stream) OpenBatchInto(dst []byte, sealed []Sealed, aads [][]byte, pool *Pool) error {
	n := len(sealed)
	if n == 0 {
		return nil
	}
	if aads != nil && len(aads) != n {
		return fmt.Errorf("secmem: %d chunks but %d aads", n, len(aads))
	}
	// batchMu keeps two concurrent batch opens from interleaving their
	// validate/advance windows, and in passing makes the batch scratch
	// (offset prefix sums, per-chunk errors) single-owner so span-sized
	// batches reuse one per-stream allocation instead of two per call.
	// Lock order: batchMu, then mu.
	s.batchMu.Lock()
	defer s.batchMu.Unlock()

	if s.batchOffs == nil || len(s.batchOffs) < n+1 {
		s.batchOffs = make([]int, n+1)
		s.batchErrs = make([]error, n)
	}
	offs, errs := s.batchOffs[:n+1], s.batchErrs[:n]
	offs[0] = 0
	for i := range sealed {
		offs[i+1] = offs[i] + len(sealed[i].Ciphertext)
	}
	if offs[n] > len(dst) {
		return fmt.Errorf("secmem: dst holds %d bytes, batch needs %d", len(dst), offs[n])
	}

	s.mu.Lock()
	if s.fault != nil {
		for range sealed {
			if err := s.fault("open"); err != nil {
				s.mu.Unlock()
				return err
			}
		}
	}
	prev := s.recvCtr
	for i := range sealed {
		c := &sealed[i]
		if c.Epoch != s.epoch {
			s.obsReplay()
			s.mu.Unlock()
			return fmt.Errorf("%w: epoch %d vs %d", ErrReplay, c.Epoch, s.epoch)
		}
		if c.Counter <= prev {
			s.obsReplay()
			s.mu.Unlock()
			return fmt.Errorf("%w: chunk %d counter %d after %d", ErrReplay, i, c.Counter, prev)
		}
		prev = c.Counter
	}
	aead, nb, epoch := s.aead, s.nonceBase, s.epoch
	o := s.obs
	s.mu.Unlock()

	maxCt := 0
	for i := range sealed {
		if len(sealed[i].Ciphertext) > maxCt {
			maxCt = len(sealed[i].Ciphertext)
		}
	}
	var bufMu sync.Mutex
	var bufs [][]byte
	pool.RunEach(n, func() func(i int) {
		// One scratch per worker carries ciphertext||tag plus the IV at
		// its tail for every chunk that worker opens — Open only reads
		// from it while writing into dst, so reuse across chunks is safe
		// and the per-chunk pool traffic of the old layout disappears.
		buf := arena.Get(maxCt + TagSize + NonceSize)
		bufMu.Lock()
		bufs = append(bufs, buf)
		bufMu.Unlock()
		return func(i int) {
			ctLen := len(sealed[i].Ciphertext)
			copy(buf, sealed[i].Ciphertext)
			copy(buf[ctLen:], sealed[i].Tag[:])
			iv := buf[ctLen+TagSize : ctLen+TagSize+NonceSize]
			copy(iv, nb[:])
			binary.BigEndian.PutUint32(iv[nonceBase:], sealed[i].Counter)
			var aad []byte
			if aads != nil {
				aad = aads[i]
			}
			out := dst[offs[i]:offs[i]:offs[i+1]]
			_, err := aead.Open(out, iv, buf[:ctLen+TagSize], aad)
			errs[i] = err
		}
	})
	for _, b := range bufs {
		arena.Put(b) // scratch held ciphertext||tag||iv: public bytes
	}

	// Advance the watermark through the contiguous success prefix.
	good := 0
	for good < n && errs[good] == nil {
		good++
	}
	s.mu.Lock()
	if s.epoch == epoch && good > 0 {
		s.recvCtr = sealed[good-1].Counter
	}
	s.mu.Unlock()

	if good < n {
		for i := range dst[:offs[n]] {
			dst[i] = 0
		}
		if o != nil {
			o.authFail.Inc()
		}
		return ErrAuth
	}
	if o != nil {
		o.openOps.Add(uint64(n))
		o.openBytes.Add(uint64(offs[n]))
	}
	return nil
}
