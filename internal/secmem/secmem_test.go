package secmem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ccai/internal/sim"
)

func testStreamPair(t *testing.T) (*Stream, *Stream) {
	t.Helper()
	key := FreshKey()
	nonce := FreshNonce()
	tx, err := NewStream(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewStream(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestSealOpenRoundTrip(t *testing.T) {
	tx, rx := testStreamPair(t)
	aad := []byte("MWr addr=0x1000")
	sealed, err := tx.Seal([]byte("model weights"), aad)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := rx.Open(sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "model weights" {
		t.Fatalf("plaintext = %q", pt)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	tx, _ := testStreamPair(t)
	msg := []byte("sensitive prompt: my diagnosis history")
	sealed, _ := tx.Seal(msg, nil)
	if bytes.Contains(sealed.Ciphertext, msg[:8]) {
		t.Fatal("ciphertext leaks plaintext prefix")
	}
}

func TestSameplaintextDistinctCiphertexts(t *testing.T) {
	tx, _ := testStreamPair(t)
	a, _ := tx.Seal([]byte("repeat"), nil)
	b, _ := tx.Seal([]byte("repeat"), nil)
	if bytes.Equal(a.Ciphertext, b.Ciphertext) {
		t.Fatal("IV counter not advancing: identical ciphertexts")
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	tx, rx := testStreamPair(t)
	sealed, _ := tx.Seal([]byte("payload"), nil)
	sealed.Ciphertext[0] ^= 1
	if _, err := rx.Open(sealed, nil); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered ciphertext accepted: %v", err)
	}
}

func TestTamperedTagRejected(t *testing.T) {
	tx, rx := testStreamPair(t)
	sealed, _ := tx.Seal([]byte("payload"), nil)
	sealed.Tag[3] ^= 0x80
	if _, err := rx.Open(sealed, nil); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered tag accepted: %v", err)
	}
}

func TestAADBindingEnforced(t *testing.T) {
	tx, rx := testStreamPair(t)
	sealed, _ := tx.Seal([]byte("payload"), []byte("addr=0x1000"))
	if _, err := rx.Open(sealed, []byte("addr=0x9999")); !errors.Is(err, ErrAuth) {
		t.Fatalf("rerouted packet (changed AAD) accepted: %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	tx, rx := testStreamPair(t)
	sealed, _ := tx.Seal([]byte("one"), nil)
	if _, err := rx.Open(sealed, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(sealed, nil); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestReorderRejected(t *testing.T) {
	tx, rx := testStreamPair(t)
	first, _ := tx.Seal([]byte("one"), nil)
	second, _ := tx.Seal([]byte("two"), nil)
	if _, err := rx.Open(second, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(first, nil); !errors.Is(err, ErrReplay) {
		t.Fatalf("out-of-order packet accepted: %v", err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	tx, _ := testStreamPair(t)
	other, err := NewStream(FreshKey(), FreshNonce())
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := tx.Seal([]byte("secret"), nil)
	sealed2 := *sealed
	if _, err := other.Open(&sealed2, nil); !errors.Is(err, ErrAuth) {
		t.Fatalf("foreign key decrypted stream: %v", err)
	}
}

func TestIVExhaustionForcesRekey(t *testing.T) {
	tx, _ := testStreamPair(t)
	tx.ForceCounter(^uint32(0) - 1)
	if _, err := tx.Seal([]byte("last"), nil); err != nil {
		t.Fatalf("penultimate counter failed: %v", err)
	}
	if _, err := tx.Seal([]byte("overflow"), nil); !errors.Is(err, ErrIVExhausted) {
		t.Fatalf("IV exhaustion not detected: %v", err)
	}
	if tx.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", tx.Remaining())
	}
}

func TestRekeyResetsAndIsolatesEpochs(t *testing.T) {
	key, nonce := FreshKey(), FreshNonce()
	tx, _ := NewStream(key, nonce)
	rx, _ := NewStream(key, nonce)
	old, _ := tx.Seal([]byte("pre-rekey"), nil)

	k2, n2 := FreshKey(), FreshNonce()
	if err := tx.Rekey(k2, n2); err != nil {
		t.Fatal(err)
	}
	if err := rx.Rekey(k2, n2); err != nil {
		t.Fatal(err)
	}
	if tx.Epoch() != 1 || tx.SendCounter() != 0 {
		t.Fatalf("epoch=%d ctr=%d after rekey", tx.Epoch(), tx.SendCounter())
	}
	// A pre-rekey chunk must not open post-rekey (epoch pinning).
	if _, err := rx.Open(old, nil); !errors.Is(err, ErrReplay) {
		t.Fatalf("cross-epoch replay accepted: %v", err)
	}
	fresh, _ := tx.Seal([]byte("post-rekey"), nil)
	if pt, err := rx.Open(fresh, nil); err != nil || string(pt) != "post-rekey" {
		t.Fatalf("post-rekey traffic broken: %v", err)
	}
}

func TestStreamValidatesMaterial(t *testing.T) {
	if _, err := NewStream(make([]byte, 7), FreshNonce()); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := NewStream(FreshKey(), make([]byte, 3)); err == nil {
		t.Fatal("short nonce accepted")
	}
}

// Property: every payload round-trips under matching streams.
func TestSealOpenProperty(t *testing.T) {
	key, nonce := FreshKey(), FreshNonce()
	tx, _ := NewStream(key, nonce)
	rx, _ := NewStream(key, nonce)
	f := func(payload, aad []byte) bool {
		sealed, err := tx.Seal(payload, aad)
		if err != nil {
			return false
		}
		pt, err := rx.Open(sealed, aad)
		return err == nil && bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMACDetectsTampering(t *testing.T) {
	key := FreshKey()
	hdr, body := []byte("MWr 0x8000"), []byte("page table base = 0x4000")
	tag := MAC(key, hdr, body)
	if !VerifyMAC(key, hdr, body, tag) {
		t.Fatal("valid MAC rejected")
	}
	body[0] ^= 1
	if VerifyMAC(key, hdr, body, tag) {
		t.Fatal("tampered payload passed MAC")
	}
	body[0] ^= 1
	hdr[0] ^= 1
	if VerifyMAC(key, hdr, body, tag) {
		t.Fatal("tampered header passed MAC")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	a := Measure([]byte("bitstream"), []byte("firmware"))
	b := Measure([]byte("bitstream"), []byte("firmware"))
	c := Measure([]byte("bitstream"), []byte("firmware!"))
	if a != b {
		t.Fatal("measurement non-deterministic")
	}
	if a == c {
		t.Fatal("distinct inputs measured equal")
	}
}

// --- key store -------------------------------------------------------------

func TestKeyStoreLifecycle(t *testing.T) {
	ks := NewKeyStore()
	if err := ks.Install("h2d", FreshKey(), FreshNonce()); err != nil {
		t.Fatal(err)
	}
	if !ks.Has("h2d") || ks.Count() != 1 {
		t.Fatal("installed key missing")
	}
	if _, err := ks.Stream("h2d"); err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Stream("d2h"); err == nil {
		t.Fatal("missing stream constructed")
	}
	ks.Destroy("h2d")
	if ks.Has("h2d") {
		t.Fatal("destroyed key still present")
	}
}

func TestKeyStoreDestroyAll(t *testing.T) {
	ks := NewKeyStore()
	for _, n := range []string{"h2d", "d2h", "config"} {
		if err := ks.Install(n, FreshKey(), FreshNonce()); err != nil {
			t.Fatal(err)
		}
	}
	ks.DestroyAll()
	if ks.Count() != 0 {
		t.Fatalf("count = %d after DestroyAll", ks.Count())
	}
}

func TestKeyStoreRejectsBadMaterial(t *testing.T) {
	ks := NewKeyStore()
	if err := ks.Install("x", make([]byte, 5), FreshNonce()); err == nil {
		t.Fatal("bad key accepted")
	}
	if err := ks.Install("x", FreshKey(), make([]byte, 2)); err == nil {
		t.Fatal("bad nonce accepted")
	}
}

func TestKeyStoreSharedMaterialInterops(t *testing.T) {
	ks := NewKeyStore()
	if err := ks.Install("h2d", FreshKey(), FreshNonce()); err != nil {
		t.Fatal(err)
	}
	tx, _ := ks.Stream("h2d")
	rx, _ := ks.Stream("h2d")
	sealed, _ := tx.Seal([]byte("hello"), nil)
	if pt, err := rx.Open(sealed, nil); err != nil || string(pt) != "hello" {
		t.Fatalf("store-derived streams don't interoperate: %v", err)
	}
}

// --- engines ----------------------------------------------------------------

func TestEngineThroughputOrdering(t *testing.T) {
	hw := NewEngine(DefaultProfile(HWEngine))
	ni := NewEngine(DefaultProfile(AESNI))
	sw := NewEngine(DefaultProfile(Software))
	const n = 1 << 20
	thw := hw.ServiceTime(n)
	tni := ni.ServiceTime(n)
	tsw := sw.ServiceTime(n)
	if !(thw < tni && tni < tsw) {
		t.Fatalf("throughput ordering broken: hw=%v ni=%v sw=%v", thw, tni, tsw)
	}
}

func TestEngineAggregateUsesParallelism(t *testing.T) {
	e := NewEngine(DefaultProfile(AESNI))
	serial := e.ServiceTime(64 << 20)
	end := e.ProcessAggregate(0, 1, 64<<20)
	// 8 lanes should give near-8x speedup over one lane.
	ratio := float64(serial) / float64(end)
	if ratio < 6 || ratio > 9 {
		t.Fatalf("parallel speedup = %.1f, want ~8", ratio)
	}
}

func TestEngineContextCacheStep(t *testing.T) {
	p := DefaultProfile(HWEngine)
	e := NewEngine(p)
	// Cycle through fewer streams than slots: no reloads.
	for round := 0; round < 3; round++ {
		for s := uint64(0); s < 12; s++ {
			e.Process(0, s, 256)
		}
	}
	_, _, reloads := e.Stats()
	if reloads != 0 {
		t.Fatalf("reloads = %d with 12 streams over %d slots", reloads, p.ContextSlots)
	}
	// Cycle through more streams than slots: every touch reloads (LRU
	// thrash), which is the Figure 8 batch-24 step.
	e.Reset()
	for round := 0; round < 3; round++ {
		for s := uint64(0); s < 24; s++ {
			e.Process(0, s, 256)
		}
	}
	_, _, reloads = e.Stats()
	if reloads == 0 {
		t.Fatal("no reloads with 24 streams over 16 slots")
	}
}

func TestEngineQueueing(t *testing.T) {
	p := DefaultProfile(Software) // single lane: strict FIFO
	e := NewEngine(p)
	end1 := e.Process(0, 1, 1<<20)
	end2 := e.Process(0, 1, 1<<20)
	if end2 <= end1 {
		t.Fatal("second op did not queue behind first")
	}
}

func TestEngineResetClearsState(t *testing.T) {
	e := NewEngine(DefaultProfile(HWEngine))
	e.Process(0, 1, 4096)
	e.Reset()
	ops, bytes, reloads := e.Stats()
	if ops != 0 || bytes != 0 || reloads != 0 {
		t.Fatal("Reset left statistics")
	}
	if got := e.Process(0, 1, 4096); got != e.ServiceTime(4096) {
		t.Fatalf("queue state survived reset: %v", got)
	}
}

func TestEngineProcessAt(t *testing.T) {
	e := NewEngine(DefaultProfile(HWEngine))
	at := 5 * sim.Millisecond
	if end := e.Process(at, 1, 256); end <= at {
		t.Fatalf("completion %v not after offer %v", end, at)
	}
}

func TestEngineProfileAndMaterialAccessors(t *testing.T) {
	e := NewEngine(DefaultProfile(HWEngine))
	if e.Profile().Kind != HWEngine {
		t.Fatal("profile accessor broken")
	}
	if HWEngine.String() == "" || AESNI.String() == "" || Software.String() == "" || EngineKind(9).String() == "" {
		t.Fatal("engine kind strings broken")
	}
	ks := NewKeyStore()
	key, nonce := FreshKey(), FreshNonce()
	if err := ks.Install("s", key, nonce); err != nil {
		t.Fatal(err)
	}
	k2, n2, err := ks.Material("s")
	if err != nil || !bytes.Equal(k2, key) || !bytes.Equal(n2, nonce) {
		t.Fatal("material round trip failed")
	}
	// Returned copies must not alias the store.
	k2[0] ^= 1
	k3, _, _ := ks.Material("s")
	if k3[0] != key[0] {
		t.Fatal("Material aliases stored key")
	}
	if _, _, err := ks.Material("missing"); err == nil {
		t.Fatal("missing material returned")
	}
}
