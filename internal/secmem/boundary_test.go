package secmem

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestLastSealableCounter pins the exhaustion boundary exactly: the
// final IV a stream may ever consume carries counter 2^32−1, and the
// seal after it fails with ErrIVExhausted without consuming state. The
// audit behind ISSUE 8's off-by-one satellite: SealInto rejects when
// sendCtr already equals MaxUint32 (pre-increment check), so MaxUint32
// itself is sealable and the counter never wraps back into used IV
// space.
func TestLastSealableCounter(t *testing.T) {
	tx, rx := testStreamPair(t)
	tx.ForceCounter(math.MaxUint32 - 1)

	if got := tx.Remaining(); got != 1 {
		t.Fatalf("Remaining() at max-1 = %d, want exactly 1 seal left", got)
	}
	sealed, err := tx.Seal([]byte("final chunk"), nil)
	if err != nil {
		t.Fatalf("seal of the last counter value failed: %v", err)
	}
	if sealed.Counter != math.MaxUint32 {
		t.Fatalf("last sealable counter = %d, want %d", sealed.Counter, uint32(math.MaxUint32))
	}
	if got := tx.Remaining(); got != 0 {
		t.Fatalf("Remaining() after the last seal = %d, want 0", got)
	}

	// The stream is now exhausted: no further counter may be issued.
	if _, err := tx.Seal([]byte("one too many"), nil); !errors.Is(err, ErrIVExhausted) {
		t.Fatalf("seal past exhaustion: err = %v, want ErrIVExhausted", err)
	}
	if c := tx.SendCounter(); c != math.MaxUint32 {
		t.Fatalf("counter moved to %d on a refused seal", c)
	}

	// The boundary chunk itself is genuine traffic, not a casualty: a
	// receiver at the matching watermark accepts it.
	rx.recvCtr = math.MaxUint32 - 1
	pt, err := rx.Open(sealed, nil)
	if err != nil {
		t.Fatalf("open of the boundary chunk failed: %v", err)
	}
	if string(pt) != "final chunk" {
		t.Fatalf("boundary plaintext = %q", pt)
	}
}

// TestRemainingMatchesSealBudget walks Remaining() against actual seal
// outcomes near the edge: for every claimed remaining value r, exactly
// r seals succeed and the r+1st fails.
func TestRemainingMatchesSealBudget(t *testing.T) {
	for _, headroom := range []uint32{0, 1, 2, 5} {
		tx, _ := testStreamPair(t)
		tx.ForceCounter(math.MaxUint32 - headroom)
		if got := tx.Remaining(); got != headroom {
			t.Fatalf("Remaining() = %d at forced headroom %d", got, headroom)
		}
		var ok uint32
		for i := uint32(0); i < headroom+1; i++ {
			if _, err := tx.Seal([]byte{byte(i)}, nil); err == nil {
				ok++
			} else if !errors.Is(err, ErrIVExhausted) {
				t.Fatalf("unexpected seal error at headroom %d: %v", headroom, err)
			}
		}
		if ok != headroom {
			t.Fatalf("headroom %d: %d seals succeeded, want exactly %d", headroom, ok, headroom)
		}
	}
}

// TestSealDstMatchesSealInto verifies the caller-staged variant is
// bit-compatible with SealInto: same ciphertext and tag for the same
// (key, counter, plaintext, aad), output aliased into dst when capacity
// suffices, and an ordinary allocation when it does not.
func TestSealDstMatchesSealInto(t *testing.T) {
	key, nonce := FreshKey(), FreshNonce()
	a, err := NewStream(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("chunk payload for the descriptor ring")
	aad := []byte("MWr addr=0x2000 ctr-bound")

	var want Sealed
	if err := a.SealInto(&want, pt, aad); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 0, len(pt)+TagSize)
	var got Sealed
	if err := b.SealDst(&got, pt, aad, dst); err != nil {
		t.Fatal(err)
	}
	if got.Counter != want.Counter || got.Epoch != want.Epoch {
		t.Fatalf("counter/epoch diverged: %+v vs %+v", got, want)
	}
	if !bytes.Equal(got.Ciphertext, want.Ciphertext) || got.Tag != want.Tag {
		t.Fatal("SealDst output differs from SealInto")
	}
	if &got.Ciphertext[0] != &dst[:1][0] {
		t.Fatal("SealDst did not stage ciphertext in the provided buffer")
	}

	// Undersized dst: engine must fall back to a fresh allocation and
	// still produce the right bytes.
	short := make([]byte, 0, len(pt)) // TagSize short of the combined output
	var fallback Sealed
	if err := b.SealDst(&fallback, pt, aad, short); err != nil {
		t.Fatal(err)
	}
	if len(fallback.Ciphertext) != len(pt) {
		t.Fatalf("fallback ciphertext length = %d", len(fallback.Ciphertext))
	}
}
