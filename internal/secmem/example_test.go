package secmem_test

import (
	"errors"
	"fmt"

	"ccai/internal/secmem"
)

// ExampleStream shows the protected-channel discipline: both ends hold
// the same key and 8-byte nonce base; each sealed chunk consumes one IV
// counter, and the receiver rejects replays.
func ExampleStream() {
	key, nonce := secmem.FreshKey(), secmem.FreshNonce()
	tx, _ := secmem.NewStream(key, nonce)
	rx, _ := secmem.NewStream(key, nonce)

	sealed, _ := tx.Seal([]byte("weights chunk 0"), []byte("region=7,chunk=0"))
	pt, _ := rx.Open(sealed, []byte("region=7,chunk=0"))
	fmt.Printf("decrypted: %s\n", pt)

	// Replaying the same chunk is rejected by the counter discipline.
	_, err := rx.Open(sealed, []byte("region=7,chunk=0"))
	fmt.Printf("replay rejected: %v\n", errors.Is(err, secmem.ErrReplay))
	// Output:
	// decrypted: weights chunk 0
	// replay rejected: true
}
