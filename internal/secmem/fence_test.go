package secmem

import (
	"bytes"
	"testing"
)

func TestFenceTripsOnRekey(t *testing.T) {
	key := bytes.Repeat([]byte{0x11}, 16)
	nonce := bytes.Repeat([]byte{0x22}, 8)
	s, err := NewStream(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	f := s.Fence()
	if !f.Valid() {
		t.Fatal("fresh fence invalid")
	}
	if f.Epoch() != s.Epoch() {
		t.Fatalf("fence epoch %d, stream epoch %d", f.Epoch(), s.Epoch())
	}
	key2 := bytes.Repeat([]byte{0x33}, 16)
	nonce2 := bytes.Repeat([]byte{0x44}, 8)
	if err := s.Rekey(key2, nonce2); err != nil {
		t.Fatal(err)
	}
	if f.Valid() {
		t.Fatal("fence survived rekey")
	}
	if got := s.Fence(); !got.Valid() || got.Epoch() != f.Epoch()+1 {
		t.Fatalf("re-fenced epoch %d valid=%v, want %d valid", got.Epoch(), got.Valid(), f.Epoch()+1)
	}
	var zero Fence
	if zero.Valid() {
		t.Fatal("zero fence valid")
	}
}
