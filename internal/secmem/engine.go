package secmem

import (
	"fmt"

	"ccai/internal/sim"
)

// EngineKind distinguishes the three crypto execution environments the
// evaluation compares (§5, §8.5).
type EngineKind int

const (
	// HWEngine is the PCIe-SC's pipelined AES-GCM-SHA IP core.
	HWEngine EngineKind = iota
	// AESNI is the Adaptor's hardware-instruction path (Intel AES-NI).
	AESNI
	// Software is the scalar fallback used only by the non-optimized
	// ablation in Figure 11.
	Software
)

func (k EngineKind) String() string {
	switch k {
	case HWEngine:
		return "pcie-sc-engine"
	case AESNI:
		return "aes-ni"
	case Software:
		return "software"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// EngineProfile fixes an engine's performance characteristics. All
// calibration constants of the crypto model live here (DESIGN.md §5).
type EngineProfile struct {
	Kind EngineKind
	// BytesPerSecond is single-context streaming throughput.
	BytesPerSecond float64
	// PerOp is the fixed setup cost per sealed chunk (key schedule
	// reuse, descriptor handling).
	PerOp sim.Time
	// Parallelism is how many independent contexts can run at once
	// (threads for CPU paths, pipeline lanes for the HW engine).
	Parallelism int
	// ContextSlots is the number of per-stream parameter sets the
	// engine caches. The paper's De/Encryption Parameters Manager holds
	// a fixed number of session contexts; overflowing it forces a
	// parameter reload per chunk, the mechanism behind the overhead step
	// between batch 12 and 24 in Figure 8b/d.
	ContextSlots int
	// ContextReload is the penalty for re-fetching an evicted context.
	ContextReload sim.Time
}

// DefaultProfile returns the calibrated profile for an engine kind.
// Numbers are representative of the hardware classes involved: an FPGA
// AES-GCM pipeline sustains tens of GB/s; AES-NI on a server core ~4-5
// GB/s/thread; scalar software AES a couple hundred MB/s.
func DefaultProfile(kind EngineKind) EngineProfile {
	switch kind {
	case HWEngine:
		return EngineProfile{
			Kind:           HWEngine,
			BytesPerSecond: 28e9,
			PerOp:          120 * sim.Nanosecond,
			Parallelism:    4,
			ContextSlots:   16,
			ContextReload:  600 * sim.Nanosecond,
		}
	case AESNI:
		return EngineProfile{
			Kind:           AESNI,
			BytesPerSecond: 4.6e9,
			PerOp:          250 * sim.Nanosecond,
			Parallelism:    8,
			ContextSlots:   1 << 16, // CPU caches contexts in memory
			ContextReload:  0,
		}
	case Software:
		return EngineProfile{
			Kind:           Software,
			BytesPerSecond: 220e6,
			PerOp:          900 * sim.Nanosecond,
			Parallelism:    1,
			ContextSlots:   1 << 16,
			ContextReload:  0,
		}
	}
	panic("secmem: unknown engine kind")
}

// Engine is the timing model for a crypto unit. It serializes work onto
// Parallelism lanes and tracks which stream contexts are resident.
type Engine struct {
	profile EngineProfile
	lanes   []*sim.Resource
	next    int
	// resident tracks context slot occupancy with LRU eviction.
	resident map[uint64]int // stream id -> recency stamp
	stamp    int
	reloads  uint64
	ops      uint64
	bytes    uint64
}

// NewEngine builds an engine from a profile.
func NewEngine(p EngineProfile) *Engine {
	if p.Parallelism <= 0 {
		p.Parallelism = 1
	}
	e := &Engine{profile: p, resident: make(map[uint64]int)}
	for i := 0; i < p.Parallelism; i++ {
		e.lanes = append(e.lanes, sim.NewResource(fmt.Sprintf("%v/lane%d", p.Kind, i), p.BytesPerSecond, p.PerOp))
	}
	return e
}

// Profile reports the engine's configuration.
func (e *Engine) Profile() EngineProfile { return e.profile }

// touch updates the context cache and reports whether a reload penalty
// applies for this stream.
func (e *Engine) touch(stream uint64) bool {
	e.stamp++
	if _, ok := e.resident[stream]; ok {
		e.resident[stream] = e.stamp
		return false
	}
	if len(e.resident) >= e.profile.ContextSlots {
		// Evict the least recently used context.
		var victim uint64
		oldest := int(^uint(0) >> 1)
		for id, st := range e.resident {
			if st < oldest {
				oldest, victim = st, id
			}
		}
		delete(e.resident, victim)
		e.resident[stream] = e.stamp
		e.reloads++
		return true
	}
	e.resident[stream] = e.stamp
	return false
}

// Process schedules n bytes of crypto work for the given stream starting
// no earlier than at, and returns the completion instant. Lane choice is
// round-robin; queueing behind earlier work on the chosen lane is
// automatic.
func (e *Engine) Process(at sim.Time, stream uint64, n int64) sim.Time {
	lane := e.lanes[e.next]
	e.next = (e.next + 1) % len(e.lanes)
	if e.touch(stream) {
		at += e.profile.ContextReload
	}
	e.ops++
	if n > 0 {
		e.bytes += uint64(n)
	}
	return lane.Use(at, n)
}

// ProcessAggregate models a large batched region processed with full
// parallelism (the §5 optimization "allocate additional CPU threads and
// cores"): the bytes split evenly across lanes.
func (e *Engine) ProcessAggregate(at sim.Time, stream uint64, n int64) sim.Time {
	if e.touch(stream) {
		at += e.profile.ContextReload
	}
	per := n / int64(len(e.lanes))
	var end sim.Time
	for i, lane := range e.lanes {
		chunk := per
		if i == len(e.lanes)-1 {
			chunk = n - per*int64(len(e.lanes)-1)
		}
		if t := lane.Use(at, chunk); t > end {
			end = t
		}
	}
	e.ops++
	e.bytes += uint64(n)
	return end
}

// ServiceTime reports the uncontended duration of n bytes on one lane.
func (e *Engine) ServiceTime(n int64) sim.Time { return e.lanes[0].ServiceTime(n) }

// Stats reports operations, bytes, and context reloads so far.
func (e *Engine) Stats() (ops, bytes, reloads uint64) { return e.ops, e.bytes, e.reloads }

// Reset clears queueing state, the context cache and statistics.
func (e *Engine) Reset() {
	for _, l := range e.lanes {
		l.Reset()
	}
	e.resident = make(map[uint64]int)
	e.stamp = 0
	e.reloads = 0
	e.ops = 0
	e.bytes = 0
	e.next = 0
}
