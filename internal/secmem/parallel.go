package secmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"ccai/internal/arena"
	"ccai/internal/obsv"
)

// Pool is a bounded parallel-for executor for per-chunk crypto work.
// It implements the paper's §5 "allocate additional CPU threads for
// the Adaptor" optimization: AES-GCM chunks within one region are
// independent once their IV counters are reserved, so seal/open can
// fan out across workers while all stream state stays serialized.
//
// A Pool holds no goroutines between calls; Run spawns at most
// workers-1 helpers and joins them before returning, so there is
// nothing to shut down and a Pool may be shared freely.
type Pool struct {
	workers int
}

// NewPool returns a Pool running fn on up to workers goroutines.
// workers < 1 is treated as 1 (serial).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's parallelism bound.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run invokes fn(i) for every i in [0, n), distributing indices over
// the pool via an atomic work counter. It returns when all n calls
// have completed. A nil Pool or a single-worker pool runs serially on
// the calling goroutine.
func (p *Pool) Run(n int, fn func(i int)) {
	p.RunEach(n, func() func(i int) { return fn })
}

// RunEach is Run with per-worker state: every worker invokes mk once
// and then runs the returned fn over its share of indices. Workers can
// therefore own scratch buffers (IV assembly, staging space) without
// sharing them across goroutines or allocating per index.
func (p *Pool) RunEach(n int, mk func() func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		fn := mk()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func() {
		defer wg.Done()
		fn := mk()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	wg.Add(w)
	for k := 1; k < w; k++ {
		go work()
	}
	work() // the caller is worker 0
	wg.Wait()
}

// putNonce assembles the 12-byte GCM IV for counter c against a
// captured nonce base into caller scratch (lock-free worker path —
// each worker owns its own scratch, so no IV buffer is ever shared or
// allocated per chunk).
func putNonce(iv *[NonceSize]byte, base [nonceBase]byte, c uint32) {
	copy(iv[:], base[:])
	binary.BigEndian.PutUint32(iv[nonceBase:], c)
}

// SealBatch encrypts len(pts) chunks, reserving a contiguous counter
// range under the stream lock and then sealing the chunks in parallel
// on the pool. aads[i] is bound into chunk i's tag; aads may be nil
// (no AAD for any chunk).
//
// Failure atomicity matches Seal: the fault hook is consulted for
// every chunk before any counter is reserved, so a transient fault
// consumes no stream state and the whole batch may simply be retried.
// If the batch would cross the 32-bit counter boundary the call fails
// with ErrIVExhausted and again consumes nothing.
func (s *Stream) SealBatch(pts, aads [][]byte, pool *Pool) ([]*Sealed, error) {
	n := len(pts)
	if n == 0 {
		return nil, nil
	}
	if aads != nil && len(aads) != n {
		return nil, fmt.Errorf("secmem: %d plaintexts but %d aads", n, len(aads))
	}

	s.mu.Lock()
	if s.fault != nil {
		for range pts {
			if err := s.fault("seal"); err != nil {
				s.mu.Unlock()
				return nil, err
			}
		}
	}
	if uint64(s.sendCtr)+uint64(n) > uint64(^uint32(0)) {
		s.mu.Unlock()
		return nil, ErrIVExhausted
	}
	base := s.sendCtr
	s.sendCtr += uint32(n)
	aead, nb, epoch := s.aead, s.nonceBase, s.epoch
	if s.ivAudit != nil {
		for i := 0; i < n; i++ {
			s.ivAudit(epoch, base+1+uint32(i))
		}
	}
	o := s.obs
	var total int64
	for _, pt := range pts {
		total += int64(len(pt))
	}
	s.mu.Unlock()

	var sp obsv.ActiveSpan
	if o != nil {
		sp = o.tracer.Begin(o.track, "seal_batch",
			obsv.Str("stream", o.name), obsv.I64("bytes", total), obsv.I64("chunks", int64(n)))
	}

	out := make([]*Sealed, n)
	pool.RunEach(n, func() func(i int) {
		var iv [NonceSize]byte // per-worker IV scratch: no per-chunk allocation
		return func(i int) {
			c := base + 1 + uint32(i)
			var aad []byte
			if aads != nil {
				aad = aads[i]
			}
			putNonce(&iv, nb, c)
			ct := aead.Seal(nil, iv[:], pts[i], aad)
			sealed := &Sealed{Counter: c, Epoch: epoch}
			k := len(ct) - TagSize
			sealed.Ciphertext = ct[:k]
			copy(sealed.Tag[:], ct[k:])
			out[i] = sealed
		}
	})

	if o != nil {
		sp.Attr(obsv.U64("ctr_first", uint64(base+1)), obsv.U64("epoch", uint64(epoch)))
		sp.End()
		o.sealOps.Add(uint64(n))
		o.sealBytes.Add(uint64(total))
	}
	return out, nil
}

// OpenBatch authenticates and decrypts a batch of chunks whose
// counters must be strictly increasing and all above the receive
// watermark (i.e. the batch is new, in-order traffic). Decryption
// fans out on the pool; the watermark advances only through the
// contiguous prefix of successfully authenticated chunks, under the
// same lock and only if no rekey intervened.
//
// Like SealBatch, the fault hook fires for every chunk before any
// state changes, so a transient fault leaves the stream untouched and
// the batch is retryable. On an authentication failure the first
// error is returned and no result slice is produced.
func (s *Stream) OpenBatch(sealed []*Sealed, aads [][]byte, pool *Pool) ([][]byte, error) {
	n := len(sealed)
	if n == 0 {
		return nil, nil
	}
	if aads != nil && len(aads) != n {
		return nil, fmt.Errorf("secmem: %d chunks but %d aads", n, len(aads))
	}

	// batchMu keeps two concurrent OpenBatch calls from interleaving
	// their validate/advance windows. Lock order: batchMu, then mu.
	s.batchMu.Lock()
	defer s.batchMu.Unlock()

	s.mu.Lock()
	if s.fault != nil {
		for range sealed {
			if err := s.fault("open"); err != nil {
				s.mu.Unlock()
				return nil, err
			}
		}
	}
	prev := s.recvCtr
	for i, c := range sealed {
		if c.Epoch != s.epoch {
			s.obsReplay()
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: epoch %d vs %d", ErrReplay, c.Epoch, s.epoch)
		}
		if c.Counter <= prev {
			s.obsReplay()
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: chunk %d counter %d after %d", ErrReplay, i, c.Counter, prev)
		}
		prev = c.Counter
	}
	aead, nb, epoch := s.aead, s.nonceBase, s.epoch
	o := s.obs
	s.mu.Unlock()

	pts := make([][]byte, n)
	errs := make([]error, n)
	pool.Run(n, func(i int) {
		ctLen := len(sealed[i].Ciphertext)
		buf := arena.Get(ctLen + TagSize + NonceSize)
		copy(buf, sealed[i].Ciphertext)
		copy(buf[ctLen:], sealed[i].Tag[:])
		iv := buf[ctLen+TagSize:]
		copy(iv, nb[:])
		binary.BigEndian.PutUint32(iv[nonceBase:], sealed[i].Counter)
		var aad []byte
		if aads != nil {
			aad = aads[i]
		}
		pt, err := aead.Open(nil, iv, buf[:ctLen+TagSize], aad)
		pts[i], errs[i] = pt, err
		arena.Put(buf) // ciphertext, tag, IV: all public bytes
	})

	// Advance the watermark through the contiguous success prefix.
	good := 0
	for good < n && errs[good] == nil {
		good++
	}
	s.mu.Lock()
	if s.epoch == epoch && good > 0 {
		s.recvCtr = sealed[good-1].Counter
	}
	var total uint64
	for i := 0; i < good; i++ {
		total += uint64(len(pts[i]))
	}
	s.mu.Unlock()

	if good < n {
		if o != nil {
			o.authFail.Inc()
		}
		return nil, ErrAuth
	}
	if o != nil {
		o.openOps.Add(uint64(n))
		o.openBytes.Add(total)
	}
	return pts, nil
}
