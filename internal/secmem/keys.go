package secmem

import (
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"hash"
	"sync"
)

// KeyStore holds the symmetric workload keys shared between a TVM and
// its PCIe-SC (§6 "Workload key management"). Keys live only inside a
// trust module on each side; teardown destroys them so a captured
// device cannot decrypt recorded traffic afterwards.
type KeyStore struct {
	mu      sync.Mutex
	entries map[string]*keyEntry
}

type keyEntry struct {
	key   []byte
	nonce []byte
	// mac is the lazily built, reusable HMAC-SHA256 state for MACSum;
	// sum is its reusable output scratch. Both are guarded by ks.mu and
	// die with the entry (Install replaces the entry, so a fresh key
	// can never reuse a stale HMAC state).
	mac hash.Hash
	sum []byte
	// aead is the lazily built AES-GCM instance for this key epoch.
	// Streams handed out by Stream share it, so the AES key schedule
	// runs once per Install instead of once per Stream call. Like mac,
	// it is guarded by ks.mu and dies with the entry — Install replaces
	// the entry wholesale, so a rekeyed stream can never be served a
	// cipher from the previous epoch.
	aead cipher.AEAD
}

// NewKeyStore returns an empty store.
func NewKeyStore() *KeyStore {
	return &KeyStore{entries: make(map[string]*keyEntry)}
}

// Install stores key material for a named stream (e.g. "h2d", "d2h",
// "config"). The slices are copied.
func (ks *KeyStore) Install(name string, key, nonce []byte) error {
	if len(key) != KeySize {
		return fmt.Errorf("secmem: key %q must be %d bytes", name, KeySize)
	}
	if len(nonce) != nonceBase {
		return fmt.Errorf("secmem: nonce base %q must be %d bytes", name, nonceBase)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.entries[name] = &keyEntry{
		key:   append([]byte(nil), key...),
		nonce: append([]byte(nil), nonce...),
	}
	return nil
}

// Stream constructs a protected Stream from stored material. The
// underlying AES-GCM instance is cached per key epoch: repeated calls
// (re-establishment after teardown, multi-tenant activation storms)
// reuse one expanded key schedule until Install rotates the entry.
func (ks *KeyStore) Stream(name string) (*Stream, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	e, ok := ks.entries[name]
	if !ok {
		return nil, fmt.Errorf("secmem: no key material for stream %q", name)
	}
	if e.aead == nil {
		aead, err := newAEAD(e.key)
		if err != nil {
			return nil, err
		}
		e.aead = aead
	}
	return NewStreamAEAD(e.aead, e.nonce)
}

// Material returns copies of the stored key and nonce base.
func (ks *KeyStore) Material(name string) (key, nonce []byte, err error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	e, ok := ks.entries[name]
	if !ok {
		return nil, nil, fmt.Errorf("secmem: no key material for stream %q", name)
	}
	return append([]byte(nil), e.key...), append([]byte(nil), e.nonce...), nil
}

// MACSum computes the A3 integrity MAC over (header, payload) under
// the named stream's key without copying the key out of the store and
// without constructing a fresh HMAC per call: the per-entry HMAC state
// is cached and Reset between uses. ks.mu is a leaf lock, so callers
// may hold their own locks across this call; the steady-state cost is
// zero allocations.
func (ks *KeyStore) MACSum(name string, header, payload []byte) ([32]byte, error) {
	var out [32]byte
	ks.mu.Lock()
	defer ks.mu.Unlock()
	e, ok := ks.entries[name]
	if !ok {
		return out, fmt.Errorf("secmem: no key material for stream %q", name)
	}
	if e.mac == nil {
		e.mac = hmac.New(sha256.New, e.key)
	}
	e.mac.Reset()
	e.mac.Write(header)
	e.mac.Write(payload)
	e.sum = e.mac.Sum(e.sum[:0])
	copy(out[:], e.sum)
	return out, nil
}

// Has reports whether material exists for the stream.
func (ks *KeyStore) Has(name string) bool {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	_, ok := ks.entries[name]
	return ok
}

// Destroy zeroizes and removes one stream's material.
func (ks *KeyStore) Destroy(name string) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if e, ok := ks.entries[name]; ok {
		zeroize(e.key)
		zeroize(e.nonce)
		delete(ks.entries, name)
	}
}

// DestroyAll zeroizes everything — task teardown per §6 ("securely
// destroy shared symmetric keys").
func (ks *KeyStore) DestroyAll() {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	for name, e := range ks.entries {
		zeroize(e.key)
		zeroize(e.nonce)
		delete(ks.entries, name)
	}
}

// Count reports how many streams hold material.
func (ks *KeyStore) Count() int {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return len(ks.entries)
}

func zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// FreshKey generates a random AES key.
func FreshKey() []byte {
	k := make([]byte, KeySize)
	if _, err := rand.Read(k); err != nil {
		panic(fmt.Sprintf("secmem: entropy failure: %v", err))
	}
	return k
}

// FreshNonce generates a random 8-byte nonce base.
func FreshNonce() []byte {
	n := make([]byte, nonceBase)
	if _, err := rand.Read(n); err != nil {
		panic(fmt.Sprintf("secmem: entropy failure: %v", err))
	}
	return n
}
