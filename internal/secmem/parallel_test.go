package secmem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newPair(t *testing.T) (*Stream, *Stream) {
	t.Helper()
	key, nonce := FreshKey(), FreshNonce()
	a, err := NewStream(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func chunkset(n, size int) ([][]byte, [][]byte) {
	pts := make([][]byte, n)
	aads := make([][]byte, n)
	for i := range pts {
		pts[i] = bytes.Repeat([]byte{byte(i + 1)}, size)
		aads[i] = []byte(fmt.Sprintf("aad-%d", i))
	}
	return pts, aads
}

// TestSealBatchMatchesSerialSeal: a batch seal must be byte-identical
// to the equivalent sequence of single-chunk seals (same counters,
// same ciphertexts, same tags) so either end can mix the two paths.
func TestSealBatchMatchesSerialSeal(t *testing.T) {
	serial, _ := newPair(t)
	batch, _ := newPair(t)
	// Same key material for both streams.
	key, nonce := FreshKey(), FreshNonce()
	for _, s := range []*Stream{serial, batch} {
		if err := s.Rekey(key, nonce); err != nil {
			t.Fatal(err)
		}
	}
	pts, aads := chunkset(9, 100)

	var want []*Sealed
	for i := range pts {
		s, err := serial.Seal(pts[i], aads[i])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, s)
	}
	got, err := batch.SealBatch(pts, aads, NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Counter != want[i].Counter || got[i].Epoch != want[i].Epoch ||
			!bytes.Equal(got[i].Ciphertext, want[i].Ciphertext) || got[i].Tag != want[i].Tag {
			t.Fatalf("chunk %d: batch and serial seal diverge", i)
		}
	}
	if serial.SendCounter() != batch.SendCounter() {
		t.Fatalf("counters diverge: %d vs %d", serial.SendCounter(), batch.SendCounter())
	}
}

// TestBatchRoundTrip seals with one pool width and opens with another;
// the plaintexts and the receive watermark must come out right for
// every combination.
func TestBatchRoundTrip(t *testing.T) {
	for _, sealW := range []int{1, 3, 8} {
		for _, openW := range []int{1, 4} {
			t.Run(fmt.Sprintf("seal%d_open%d", sealW, openW), func(t *testing.T) {
				tx, rx := newPair(t)
				pts, aads := chunkset(7, 64)
				sealed, err := tx.SealBatch(pts, aads, NewPool(sealW))
				if err != nil {
					t.Fatal(err)
				}
				out, err := rx.OpenBatch(sealed, aads, NewPool(openW))
				if err != nil {
					t.Fatal(err)
				}
				for i := range pts {
					if !bytes.Equal(out[i], pts[i]) {
						t.Fatalf("chunk %d corrupted", i)
					}
				}
				// Watermark advanced: replaying the batch must fail.
				if _, err := rx.OpenBatch(sealed, aads, nil); !errors.Is(err, ErrReplay) {
					t.Fatalf("replayed batch: got %v, want ErrReplay", err)
				}
			})
		}
	}
}

// TestSealBatchTransientConsumesNoCounters: a transient engine fault
// fires before any counter is reserved, so the failed batch consumes
// nothing and the retry reuses the identical counter range.
func TestSealBatchTransientConsumesNoCounters(t *testing.T) {
	tx, rx := newPair(t)
	fail := true
	tx.SetFaultHook(func(op string) error {
		if fail {
			fail = false
			return ErrTransient
		}
		return nil
	})
	var ivs []uint64
	tx.SetIVAudit(func(epoch, counter uint32) {
		ivs = append(ivs, uint64(epoch)<<32|uint64(counter))
	})
	pts, aads := chunkset(5, 32)
	if _, err := tx.SealBatch(pts, aads, nil); !errors.Is(err, ErrTransient) {
		t.Fatalf("first attempt: got %v, want ErrTransient", err)
	}
	if tx.SendCounter() != 0 {
		t.Fatalf("failed batch consumed %d counters", tx.SendCounter())
	}
	sealed, err := tx.SealBatch(pts, aads, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sealed[0].Counter != 1 || tx.SendCounter() != 5 {
		t.Fatalf("retry counters wrong: first=%d send=%d", sealed[0].Counter, tx.SendCounter())
	}
	// No IV appeared twice.
	seen := map[uint64]bool{}
	for _, iv := range ivs {
		if seen[iv] {
			t.Fatalf("IV reused: %#x", iv)
		}
		seen[iv] = true
	}
	if out, err := rx.OpenBatch(sealed, aads, nil); err != nil || !bytes.Equal(out[2], pts[2]) {
		t.Fatalf("round trip after retry: %v", err)
	}
}

// TestSealBatchExhaustionBoundary: a batch that would cross the 32-bit
// counter space fails with ErrIVExhausted and consumes nothing.
func TestSealBatchExhaustionBoundary(t *testing.T) {
	tx, _ := newPair(t)
	tx.ForceCounter(^uint32(0) - 2) // 3 counters left... 2 actually remain usable
	pts, aads := chunkset(4, 16)
	if _, err := tx.SealBatch(pts, aads, nil); !errors.Is(err, ErrIVExhausted) {
		t.Fatalf("got %v, want ErrIVExhausted", err)
	}
	if tx.SendCounter() != ^uint32(0)-2 {
		t.Fatal("failed batch moved the counter")
	}
	// A batch that exactly fits still works.
	small, smallAAD := chunkset(2, 16)
	if _, err := tx.SealBatch(small, smallAAD, nil); err != nil {
		t.Fatalf("fitting batch: %v", err)
	}
}

// TestOpenBatchTamperRejected: corrupting any chunk fails the batch
// and the watermark does not advance past the corrupted chunk, so the
// legitimate chunks before it are not replayable and the stream stays
// strictly ordered.
func TestOpenBatchTamperRejected(t *testing.T) {
	tx, rx := newPair(t)
	pts, aads := chunkset(4, 48)
	sealed, err := tx.SealBatch(pts, aads, nil)
	if err != nil {
		t.Fatal(err)
	}
	sealed[2].Ciphertext[0] ^= 0xff
	if _, err := rx.OpenBatch(sealed, aads, NewPool(4)); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered batch: got %v, want ErrAuth", err)
	}
	// Chunks 0 and 1 authenticated: watermark sits at their boundary,
	// so re-presenting them is replay, but chunk 2 (fixed) onward can
	// still be delivered.
	sealed[2].Ciphertext[0] ^= 0xff
	out, err := rx.OpenBatch(sealed[2:], aads[2:], nil)
	if err != nil {
		t.Fatalf("resumed delivery: %v", err)
	}
	if !bytes.Equal(out[1], pts[3]) {
		t.Fatal("resumed delivery corrupted")
	}
}

// TestBatchConcurrentWithSingleOps: batch and single-chunk seals from
// many goroutines share one stream under -race; every IV is unique.
func TestBatchConcurrentWithSingleOps(t *testing.T) {
	tx, _ := newPair(t)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	reused := false
	tx.SetIVAudit(func(epoch, counter uint32) {
		mu.Lock()
		defer mu.Unlock()
		k := uint64(epoch)<<32 | uint64(counter)
		if seen[k] {
			reused = true
		}
		seen[k] = true
	})
	pool := NewPool(4)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pts, aads := chunkset(3, 24)
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					if _, err := tx.SealBatch(pts, aads, pool); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := tx.Seal(pts[0], aads[0]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if reused {
		t.Fatal("IV reused under concurrent batch+single sealing")
	}
	want := 3*50*3 + 3*50 // three batch workers ×50×3 chunks + three single workers ×50
	if got := int(tx.SendCounter()); got != want {
		t.Fatalf("send counter = %d, want %d", got, want)
	}
}

// TestPoolRunCoversAllIndices: the pool visits every index exactly
// once for assorted worker/size combinations.
func TestPoolRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]int32, n)
			var mu sync.Mutex
			NewPool(workers).Run(n, func(i int) {
				mu.Lock()
				hits[i]++
				mu.Unlock()
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
	// A nil pool is the serial path.
	var nilPool *Pool
	count := 0
	nilPool.Run(4, func(i int) { count++ })
	if count != 4 {
		t.Fatalf("nil pool ran %d of 4", count)
	}
}
