package secmem

// Fence pins a stream's key epoch at a point in time, so long-lived
// sealed state can detect a rekey that happened underneath it. A
// session's KV-cache is sealed under one epoch at admission and then
// lives in device memory for thousands of decode steps; when counter
// pressure rekeys the stream mid-decode, the resident ciphertext (and
// its cached per-epoch cipher) belongs to the *fenced* epoch, not the
// stream's current one. Holders check Valid() at step boundaries: a
// tripped fence means "the stream moved on — your sealed bytes are
// still good, but nothing new may be sealed under the old epoch."
type Fence struct {
	s     *Stream
	epoch uint32
}

// Fence captures the stream's current epoch.
func (s *Stream) Fence() Fence {
	return Fence{s: s, epoch: s.Epoch()}
}

// Epoch reports the pinned epoch.
func (f Fence) Epoch() uint32 { return f.epoch }

// Valid reports whether the stream is still in the pinned epoch. The
// zero Fence is invalid.
func (f Fence) Valid() bool {
	return f.s != nil && f.s.Epoch() == f.epoch
}
