package pcie

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Endpoint is anything that terminates TLPs: an xPU device model, the
// PCIe-SC, or the host bridge. Handle consumes a request and returns a
// completion when the protocol requires one (MRd, CfgRd/CfgWr) and nil
// for posted transactions. Implementations must not retain p.
type Endpoint interface {
	// DeviceID reports the endpoint's requester/completer ID.
	DeviceID() ID
	// Handle processes one inbound TLP.
	Handle(p *Packet) *Packet
}

// Region describes a memory-space claim (a BAR window) owned by an
// endpoint.
type Region struct {
	Base uint64
	Size uint64
	Name string
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// End reports the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Bus routes TLPs between endpoints: memory requests by address (BAR
// claims), completions and config requests by ID. It stands in for the
// root complex + switch hierarchy; ccAI's PCIe-SC presents itself to the
// host Bus as a single endpoint and owns a private downstream Bus to the
// xPU ("internal PCIe" in Figure 3).
//
// Routing is safe for concurrent use and reentrant: endpoints routinely
// Route on the same bus from inside Handle (a doorbell write triggers
// device DMA upstream), so Route must never block on topology locks.
// The routing tables live in an immutable snapshot swapped atomically
// by the mutators (copy-on-write); Route reads the current snapshot
// lock-free. Topology changes are assembly-time operations and do not
// need to be atomic with in-flight packets.
type Bus struct {
	name  string
	mu    sync.Mutex // serializes topology mutations (snapshot rebuilds)
	state atomic.Pointer[busState]

	// everTapped latches the first AddTap call for the lifetime of the
	// bus. Taps may retain or duplicate any packet they see, so payload
	// recycling (returning routed payload buffers to an arena pool) is
	// only sound on a bus no tap has ever observed. The flag is sticky
	// on purpose: ClearTaps cannot un-retain packets a tap already saw.
	everTapped atomic.Bool
}

// busState is one immutable routing snapshot.
type busState struct {
	endpoints map[ID]Endpoint
	claims    []claim
	taps      []Tap
}

type claim struct {
	region Region
	owner  ID
}

// Tap observes and may transform packets crossing a bus segment. A tap
// returning nil drops the packet (modelling deletion attacks). Taps run
// in installation order.
type Tap interface {
	Tap(p *Packet) *Packet
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(p *Packet) *Packet

// Tap implements the Tap interface.
func (f TapFunc) Tap(p *Packet) *Packet { return f(p) }

// NewBus returns an empty bus segment with a diagnostic name.
func NewBus(name string) *Bus {
	b := &Bus{name: name}
	b.state.Store(&busState{endpoints: make(map[ID]Endpoint)})
	return b
}

// Name reports the bus segment's diagnostic name.
func (b *Bus) Name() string { return b.name }

// mutate rebuilds the routing snapshot under the topology lock.
func (b *Bus) mutate(fn func(s *busState) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.state.Load()
	next := &busState{
		endpoints: make(map[ID]Endpoint, len(old.endpoints)+1),
		claims:    append([]claim(nil), old.claims...),
		taps:      append([]Tap(nil), old.taps...),
	}
	for id, e := range old.endpoints {
		next.endpoints[id] = e
	}
	if err := fn(next); err != nil {
		return err
	}
	b.state.Store(next)
	return nil
}

// Attach registers an endpoint for ID-routed traffic.
func (b *Bus) Attach(e Endpoint) {
	err := b.mutate(func(s *busState) error {
		if _, dup := s.endpoints[e.DeviceID()]; dup {
			return fmt.Errorf("pcie: duplicate endpoint %v on bus %s", e.DeviceID(), b.name)
		}
		s.endpoints[e.DeviceID()] = e
		return nil
	})
	if err != nil {
		panic(err.Error())
	}
}

// Detach removes an endpoint and all its memory claims.
func (b *Bus) Detach(id ID) {
	_ = b.mutate(func(s *busState) error {
		delete(s.endpoints, id)
		kept := s.claims[:0]
		for _, c := range s.claims {
			if c.owner != id {
				kept = append(kept, c)
			}
		}
		s.claims = kept
		return nil
	})
}

// Claim routes memory requests targeting the region to the owner ID.
// Overlapping claims are rejected: address decode must be unambiguous.
func (b *Bus) Claim(owner ID, r Region) error {
	if r.Size == 0 {
		return fmt.Errorf("pcie: empty claim %q", r.Name)
	}
	return b.mutate(func(s *busState) error {
		for _, c := range s.claims {
			if r.Base < c.region.End() && c.region.Base < r.End() {
				return fmt.Errorf("pcie: claim %q overlaps %q", r.Name, c.region.Name)
			}
		}
		s.claims = append(s.claims, claim{region: r, owner: owner})
		sort.Slice(s.claims, func(i, j int) bool { return s.claims[i].region.Base < s.claims[j].region.Base })
		return nil
	})
}

// AddTap installs a bus observer/mutator (snooping or tampering point).
func (b *Bus) AddTap(t Tap) {
	b.everTapped.Store(true)
	_ = b.mutate(func(s *busState) error {
		s.taps = append(s.taps, t)
		return nil
	})
}

// Untapped reports whether no tap has ever been installed on this bus.
// It is the payload-recycling gate: a routed payload may be returned to
// a buffer pool only if Untapped() still holds AFTER Route returned —
// a tap installed later never saw the packet, so the check-after-route
// is race-free even though installation is concurrent. Endpoints must
// not retain request packets (see Endpoint), so on an untapped bus the
// routing initiator or terminal consumer is provably the last holder.
func (b *Bus) Untapped() bool { return !b.everTapped.Load() }

// ClearTaps removes all observers.
func (b *Bus) ClearTaps() {
	_ = b.mutate(func(s *busState) error {
		s.taps = nil
		return nil
	})
}

// Owner resolves the endpoint claiming addr, if any.
func (b *Bus) Owner(addr uint64) (ID, bool) {
	return b.state.Load().owner(addr)
}

func (s *busState) owner(addr uint64) (ID, bool) {
	// Claims are few (BAR windows); linear scan over sorted slice.
	for _, c := range s.claims {
		if c.region.Contains(addr) {
			return c.owner, true
		}
	}
	return 0, false
}

// Route delivers one TLP to its destination endpoint, applying taps in
// order on the request and again on the returning completion (both
// cross the same physical wire), and returns the completion produced
// (nil for posted writes or dropped packets). Routing failures yield UR
// completions for non-posted requests, exactly as real fabric would.
func (b *Bus) Route(p *Packet) *Packet {
	s := b.state.Load()
	cpl := s.route(p)
	if cpl == nil {
		return nil
	}
	for _, t := range s.taps {
		cpl = t.Tap(cpl)
		if cpl == nil {
			return nil // completion deleted in flight
		}
	}
	return cpl
}

func (s *busState) route(p *Packet) *Packet {
	for _, t := range s.taps {
		p = t.Tap(p)
		if p == nil {
			return nil // deleted in flight
		}
	}
	var dst Endpoint
	switch p.Kind {
	case MRd, MWr:
		owner, ok := s.owner(p.Address)
		if !ok {
			return s.unsupported(p)
		}
		dst = s.endpoints[owner]
	case Cpl, CplD:
		dst = s.endpoints[p.Requester] // completions route back by requester ID
	case CfgRd, CfgWr, Msg, MsgD:
		dst = s.endpoints[p.Completer]
		if dst == nil && (p.Kind == Msg || p.Kind == MsgD) {
			// Broadcast-style message with no target: deliver to all.
			for _, e := range s.endpoints {
				if e.DeviceID() != p.Requester {
					e.Handle(p.Clone())
				}
			}
			return nil
		}
	}
	if dst == nil {
		return s.unsupported(p)
	}
	return dst.Handle(p)
}

func (s *busState) unsupported(p *Packet) *Packet {
	if p.Kind == MWr || p.Kind == Msg || p.Kind == MsgD || p.Kind == Cpl || p.Kind == CplD {
		return nil // posted / completion: silently dropped
	}
	return NewCompletion(p, 0, CplUR, nil)
}

// Endpoints returns the attached endpoint IDs in ascending order.
func (b *Bus) Endpoints() []ID {
	s := b.state.Load()
	ids := make([]ID, 0, len(s.endpoints))
	for id := range s.endpoints {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
