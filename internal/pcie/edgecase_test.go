package pcie_test

// Table-driven TLP edge cases: packets at the structural boundaries the
// wire format and the Packet Filter must handle without ever defaulting
// open. External test package so the fail-closed assertions can run the
// real L1 filter (internal/core) against each packet.

import (
	"bytes"
	"testing"

	"ccai/internal/core"
	"ccai/internal/pcie"
)

// edgeFilter builds a minimal L1 screen admitting DMA writes from tvm
// into [winLo, winHi) and dropping everything else — the fail-closed
// default (action A1) the edge cases must land in.
func edgeFilter(tvm pcie.ID, winLo, winHi uint64) *core.Filter {
	f := core.NewFilter()
	f.InstallL1(core.Rule{
		ID:        1,
		Mask:      core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind:      pcie.MWr,
		Requester: tvm,
		AddrLo:    winLo,
		AddrHi:    winHi,
		Action:    core.ActionPassThrough,
	})
	return f
}

func TestTLPEdgeCases(t *testing.T) {
	tvm := pcie.MakeID(0, 1, 0)
	const winLo, winHi = 0x8000_0000, 0x8000_1000 // one 4KB page

	cases := []struct {
		name string
		pkt  *pcie.Packet
		// wantDrop: the L1 filter must classify this packet A1.
		wantDrop bool
		// breakWire mutates the marshaled bytes; Unmarshal must then
		// reject them (nil means the wire image is left intact).
		breakWire func([]byte) []byte
	}{
		{
			name:     "zero-length payload write",
			pkt:      pcie.NewMemWrite(tvm, winLo, []byte{}),
			wantDrop: false,
		},
		{
			name:     "max-payload boundary write",
			pkt:      pcie.NewMemWrite(tvm, winLo, bytes.Repeat([]byte{0xa5}, pcie.MaxPayload)),
			wantDrop: false,
		},
		{
			name:     "one past max payload",
			pkt:      pcie.NewMemWrite(tvm, winLo, bytes.Repeat([]byte{0x5a}, pcie.MaxPayload+1)),
			wantDrop: false, // legal TLP; chunking is the link's job
		},
		{
			name: "4KB-crossing DMA write",
			// Starts inside the window, runs past the page: the masked
			// address match admits it (address is in range) but the
			// payload would spill — exactly the shape the SC's handlers
			// must bound-check; at the filter layer it still classifies
			// by header address only.
			pkt:      pcie.NewMemWrite(tvm, winHi-0x40, bytes.Repeat([]byte{0x77}, 0x80)),
			wantDrop: false,
		},
		{
			name:     "DMA write starting past the window",
			pkt:      pcie.NewMemWrite(tvm, winHi, []byte{1, 2, 3, 4}),
			wantDrop: true,
		},
		{
			name:     "sub-DW write with odd length",
			pkt:      pcie.NewMemWrite(tvm, winLo+4, []byte{0xde, 0xad, 0xbe}),
			wantDrop: false,
		},
		{
			name:     "64-bit-address write uses 4DW header",
			pkt:      pcie.NewMemWrite(tvm, 0x1_0000_0000, []byte{9, 9, 9, 9}),
			wantDrop: true, // outside the window
		},
		{
			name:     "foreign requester same window",
			pkt:      pcie.NewMemWrite(pcie.MakeID(3, 0, 0), winLo, []byte{1}),
			wantDrop: true,
		},
		{
			name: "truncated header",
			pkt:  pcie.NewMemWrite(tvm, winLo, []byte{1, 2, 3, 4}),
			breakWire: func(b []byte) []byte {
				return b[:8] // cut mid-header
			},
		},
		{
			name: "payload cut below length field",
			pkt:  pcie.NewMemWrite(tvm, winLo, bytes.Repeat([]byte{0xcc}, 64)),
			breakWire: func(b []byte) []byte {
				// Keep the trailer but remove payload DWs.
				cut := append([]byte(nil), b[:20]...)
				return append(cut, b[len(b)-4:]...)
			},
		},
		{
			name: "exact length exceeds DW length",
			pkt:  pcie.NewMemWrite(tvm, winLo, []byte{1, 2, 3, 4}),
			breakWire: func(b []byte) []byte {
				out := append([]byte(nil), b...)
				out[len(out)-1] = 0xff // inflate trailer byte count
				return out
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wire := tc.pkt.Marshal()

			if tc.breakWire != nil {
				if _, err := pcie.Unmarshal(tc.breakWire(wire)); err == nil {
					t.Fatalf("Unmarshal accepted malformed wire bytes")
				}
				// Anything the parser rejects never reaches Classify;
				// the SC drops it on the floor, which is A1 by
				// construction. Nothing more to assert.
				return
			}

			got, err := pcie.Unmarshal(wire)
			if err != nil {
				t.Fatalf("round-trip failed: %v", err)
			}
			if got.Kind != tc.pkt.Kind || got.Address != tc.pkt.Address ||
				got.Requester != tc.pkt.Requester || got.Length != tc.pkt.Length {
				t.Fatalf("header fields mangled: got %v want %v", got, tc.pkt)
			}
			if !bytes.Equal(got.Payload, tc.pkt.Payload) {
				t.Fatalf("payload mangled: %d bytes -> %d bytes", len(tc.pkt.Payload), len(got.Payload))
			}

			f := edgeFilter(tvm, winLo, winHi)
			v := f.Classify(got)
			if tc.wantDrop && v.Action != core.ActionDrop {
				t.Fatalf("filter defaulted open: verdict %+v", v)
			}
			if !tc.wantDrop && v.Action == core.ActionDrop {
				t.Fatalf("filter dropped a legal edge-case packet: verdict %+v", v)
			}
		})
	}
}
