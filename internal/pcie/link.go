package pcie

import (
	"fmt"

	"ccai/internal/sim"
)

// Gen identifies a PCIe generation, which fixes the per-lane signalling
// rate and line encoding.
type Gen int

const (
	// Gen3 signals at 8 GT/s with 128b/130b encoding.
	Gen3 Gen = 3
	// Gen4 signals at 16 GT/s with 128b/130b encoding.
	Gen4 Gen = 4
	// Gen5 signals at 32 GT/s with 128b/130b encoding.
	Gen5 Gen = 5
)

// GTps reports the generation's per-lane transfer rate in GT/s.
func (g Gen) GTps() float64 {
	switch g {
	case Gen3:
		return 8
	case Gen4:
		return 16
	case Gen5:
		return 32
	}
	panic(fmt.Sprintf("pcie: unknown generation %d", g))
}

func (g Gen) String() string { return fmt.Sprintf("Gen%d (%gGT/s)", int(g), g.GTps()) }

// encodingEfficiency is the 128b/130b line-code payload fraction used by
// Gen3 and later.
const encodingEfficiency = 128.0 / 130.0

// LinkConfig describes one PCIe link's physical shape.
type LinkConfig struct {
	Gen   Gen
	Lanes int
	// PropagationDelay is the one-way flight latency of a TLP across the
	// link (board trace + retimer + SerDes). Typical server boards sit
	// near 150–500 ns.
	PropagationDelay sim.Time
}

// RawBandwidth reports the link's post-encoding raw byte rate per
// direction in bytes/second, before TLP framing overhead.
func (c LinkConfig) RawBandwidth() float64 {
	return c.Gen.GTps() * 1e9 / 8 * float64(c.Lanes) * encodingEfficiency
}

func (c LinkConfig) String() string {
	return fmt.Sprintf("%gGT/s x%d", c.Gen.GTps(), c.Lanes)
}

// Link models one full-duplex PCIe link as two independent sim.Resources
// (one per direction). Bulk DMA duration and ccAI's tag/metadata traffic
// expansion are charged against these resources; the emergent saturation
// behaviour reproduces Figure 12a.
type Link struct {
	cfg      LinkConfig
	upstream *sim.Resource // device -> host direction
	down     *sim.Resource // host -> device direction
}

// NewLink builds a link with the given configuration.
func NewLink(name string, cfg LinkConfig) *Link {
	if cfg.Lanes <= 0 {
		panic("pcie: link needs at least one lane")
	}
	bw := cfg.RawBandwidth()
	return &Link{
		cfg:      cfg,
		upstream: sim.NewResource(name+"/up", bw, 0),
		down:     sim.NewResource(name+"/down", bw, 0),
	}
}

// Config reports the link's current configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Reconfigure changes speed/width in place — the knob Figure 12a sweeps.
func (l *Link) Reconfigure(cfg LinkConfig) {
	if cfg.Lanes <= 0 {
		panic("pcie: link needs at least one lane")
	}
	l.cfg = cfg
	bw := cfg.RawBandwidth()
	l.upstream.SetRate(bw)
	l.down.SetRate(bw)
}

// Reset clears both directions' queue state between experiment runs.
func (l *Link) Reset() {
	l.upstream.Reset()
	l.down.Reset()
}

// Dir selects a link direction.
type Dir int

const (
	// Downstream is host→device.
	Downstream Dir = iota
	// Upstream is device→host.
	Upstream
)

func (d Dir) String() string {
	if d == Downstream {
		return "downstream"
	}
	return "upstream"
}

func (l *Link) resource(d Dir) *sim.Resource {
	if d == Upstream {
		return l.upstream
	}
	return l.down
}

// WireBytes reports the total on-link size of transferring n payload
// bytes as a stream of TLPs with maximum payload per packet, plus
// extraPackets additional header-only packets (ccAI tag/metadata
// companions).
func WireBytes(n int64, extraPackets int64) int64 {
	if n < 0 {
		panic("pcie: negative transfer size")
	}
	packets := (n + MaxPayload - 1) / MaxPayload
	return n + (packets+extraPackets)*HeaderOverhead
}

// TransferTime reports the duration n payload bytes occupy one direction
// of an otherwise idle link.
func (l *Link) TransferTime(n int64) sim.Time {
	return l.upstream.ServiceTime(WireBytes(n, 0)) // both dirs share the rate
}

// Transfer schedules a bulk payload of n bytes (plus extra header-only
// packets) onto direction d beginning no earlier than at, and returns
// the completion instant including propagation delay.
func (l *Link) Transfer(at sim.Time, d Dir, n int64, extraPackets int64) sim.Time {
	end := l.resource(d).Use(at, WireBytes(n, extraPackets))
	return end + l.cfg.PropagationDelay
}

// RoundTrip reports the latency of a minimal non-posted transaction
// (request out, completion back) on an idle link — the basis of MMIO
// read cost.
func (l *Link) RoundTrip() sim.Time {
	perPkt := l.upstream.ServiceTime(HeaderOverhead)
	return 2 * (perPkt + l.cfg.PropagationDelay)
}

// Utilization reports cumulative busy time per direction.
func (l *Link) Utilization() (down, up sim.Time) {
	_, _, busyDown, _ := l.down.Stats()
	_, _, busyUp, _ := l.upstream.Stats()
	return busyDown, busyUp
}
