package pcie

import "encoding/binary"

// ConfigSpace models a type-0 PCIe configuration header plus a small
// extended region. ccAI never modifies device config spaces (that's the
// compatibility promise), but enumeration, BAR assignment and the
// PCIe-SC's own Upstream BAR policy window all live here.
type ConfigSpace struct {
	raw [4096]byte
}

// Standard config-space register offsets (type-0 header).
const (
	CfgVendorID   = 0x00
	CfgDeviceID   = 0x02
	CfgCommand    = 0x04
	CfgStatus     = 0x06
	CfgClassCode  = 0x09
	CfgBAR0       = 0x10
	CfgBAR1       = 0x14
	CfgBAR2       = 0x18
	CfgBAR3       = 0x1c
	CfgBAR4       = 0x20
	CfgBAR5       = 0x24
	CfgSubsysID   = 0x2e
	CfgCapPointer = 0x34
)

// Command register bits.
const (
	CmdMemorySpace = 1 << 1 // respond to memory-space accesses
	CmdBusMaster   = 1 << 2 // may initiate DMA
)

// NewConfigSpace initializes a config space with vendor/device identity.
func NewConfigSpace(vendor, device uint16, classCode uint32) *ConfigSpace {
	c := &ConfigSpace{}
	binary.LittleEndian.PutUint16(c.raw[CfgVendorID:], vendor)
	binary.LittleEndian.PutUint16(c.raw[CfgDeviceID:], device)
	c.raw[CfgClassCode] = byte(classCode)
	c.raw[CfgClassCode+1] = byte(classCode >> 8)
	c.raw[CfgClassCode+2] = byte(classCode >> 16)
	return c
}

// Read32 reads a 32-bit register at the DW-aligned offset.
func (c *ConfigSpace) Read32(off uint16) uint32 {
	off &^= 3
	return binary.LittleEndian.Uint32(c.raw[off:])
}

// Write32 writes a 32-bit register at the DW-aligned offset.
func (c *ConfigSpace) Write32(off uint16, v uint32) {
	off &^= 3
	binary.LittleEndian.PutUint32(c.raw[off:], v)
}

// VendorID reports the device's vendor identifier.
func (c *ConfigSpace) VendorID() uint16 { return binary.LittleEndian.Uint16(c.raw[CfgVendorID:]) }

// DeviceID reports the device identifier.
func (c *ConfigSpace) DeviceID() uint16 { return binary.LittleEndian.Uint16(c.raw[CfgDeviceID:]) }

// SetBAR programs BAR n (0-5) with a 64-bit base address; the size is
// tracked by the owning device model, not the register file.
func (c *ConfigSpace) SetBAR(n int, base uint64) {
	if n < 0 || n > 5 {
		panic("pcie: BAR index out of range")
	}
	off := uint16(CfgBAR0 + 4*n)
	binary.LittleEndian.PutUint32(c.raw[off:], uint32(base)|0x4) // 64-bit memory BAR
	if n < 5 {
		binary.LittleEndian.PutUint32(c.raw[off+4:], uint32(base>>32))
	}
}

// BAR reads BAR n's programmed base address.
func (c *ConfigSpace) BAR(n int) uint64 {
	if n < 0 || n > 5 {
		panic("pcie: BAR index out of range")
	}
	off := uint16(CfgBAR0 + 4*n)
	lo := uint64(binary.LittleEndian.Uint32(c.raw[off:]) &^ 0xf)
	var hi uint64
	if n < 5 {
		hi = uint64(binary.LittleEndian.Uint32(c.raw[off+4:]))
	}
	return hi<<32 | lo
}

// EnableMaster sets/clears bus-mastering (DMA) capability. The IOMMU and
// the PCIe-SC both honour this bit.
func (c *ConfigSpace) EnableMaster(on bool) {
	cmd := binary.LittleEndian.Uint16(c.raw[CfgCommand:])
	if on {
		cmd |= CmdBusMaster | CmdMemorySpace
	} else {
		cmd &^= CmdBusMaster
	}
	binary.LittleEndian.PutUint16(c.raw[CfgCommand:], cmd)
}

// BusMaster reports whether the device may initiate DMA.
func (c *ConfigSpace) BusMaster() bool {
	return binary.LittleEndian.Uint16(c.raw[CfgCommand:])&CmdBusMaster != 0
}
