package pcie

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// EnumeratedDevice is one function discovered during bus enumeration.
type EnumeratedDevice struct {
	ID       ID
	VendorID uint16
	DeviceID uint16
}

// Enumerate performs an lspci-style scan of a bus segment: a type-0
// configuration read of the vendor/device identity of every attached
// endpoint, issued from the given requester. Endpoints that do not
// implement config space (e.g. the host bridge model) are skipped.
func Enumerate(bus *Bus, requester ID) []EnumeratedDevice {
	var out []EnumeratedDevice
	for _, id := range bus.Endpoints() {
		if id == requester {
			continue
		}
		req := &Packet{Header: Header{
			Kind: CfgRd, Requester: requester, Completer: id,
			Address: CfgVendorID, Length: 4,
		}}
		cpl := bus.Route(req)
		if cpl == nil || cpl.Status != CplSuccess || len(cpl.Payload) < 4 {
			continue
		}
		v := binary.LittleEndian.Uint32(cpl.Payload)
		vendor := uint16(v)
		if vendor == 0 || vendor == 0xffff {
			continue // unimplemented config space
		}
		out = append(out, EnumeratedDevice{ID: id, VendorID: vendor, DeviceID: uint16(v >> 16)})
	}
	return out
}

// RenderEnumeration formats a scan like a miniature lspci listing.
func RenderEnumeration(devs []EnumeratedDevice) string {
	var b strings.Builder
	for _, d := range devs {
		fmt.Fprintf(&b, "%v  %04x:%04x\n", d.ID, d.VendorID, d.DeviceID)
	}
	return b.String()
}
