package pcie

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the TLP parser against arbitrary wire bytes —
// the Packet Filter calls it on attacker-influenced input, so it must
// never panic and must either reject or round-trip consistently.
func FuzzUnmarshal(f *testing.F) {
	// Seed with valid packets of every kind.
	seeds := []*Packet{
		NewMemWrite(MakeID(0, 1, 0), 0x1000, []byte("seed payload")),
		NewMemWrite(MakeID(0, 1, 0), 0x1_0000_0000, bytes.Repeat([]byte{7}, 256)),
		NewMemRead(MakeID(2, 0, 0), 0xfee0_0000, 64, 3),
		NewMessage(MakeID(2, 0, 0), 0x19, []byte{1}),
		NewCompletion(NewMemRead(MakeID(0, 1, 0), 0x10, 4, 1), MakeID(2, 0, 0), CplSuccess, []byte{1, 2, 3, 4}),
		NewCompletion(NewMemRead(MakeID(0, 1, 0), 0x10, 4, 1), MakeID(2, 0, 0), CplUR, nil),
	}
	for _, p := range seeds {
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted packets must re-marshal and re-parse to the same
		// header and payload (canonicalization stability).
		again, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("re-parse of accepted packet failed: %v", err)
		}
		if again.Kind != p.Kind || again.Requester != p.Requester || again.Address != p.Address {
			t.Fatalf("unstable canonicalization: %v vs %v", again, p)
		}
		if !bytes.Equal(again.Payload, p.Payload) {
			t.Fatal("payload not stable across re-marshal")
		}
	})
}
