package pcie

import (
	"bytes"
	"testing"

	"ccai/internal/arena"
)

// FuzzUnmarshal hardens the TLP parser against arbitrary wire bytes —
// the Packet Filter calls it on attacker-influenced input, so it must
// never panic and must either reject or round-trip consistently.
func FuzzUnmarshal(f *testing.F) {
	// Seed with valid packets of every kind.
	seeds := []*Packet{
		NewMemWrite(MakeID(0, 1, 0), 0x1000, []byte("seed payload")),
		NewMemWrite(MakeID(0, 1, 0), 0x1_0000_0000, bytes.Repeat([]byte{7}, 256)),
		NewMemRead(MakeID(2, 0, 0), 0xfee0_0000, 64, 3),
		NewMessage(MakeID(2, 0, 0), 0x19, []byte{1}),
		NewCompletion(NewMemRead(MakeID(0, 1, 0), 0x10, 4, 1), MakeID(2, 0, 0), CplSuccess, []byte{1, 2, 3, 4}),
		NewCompletion(NewMemRead(MakeID(0, 1, 0), 0x10, 4, 1), MakeID(2, 0, 0), CplUR, nil),
	}
	for _, p := range seeds {
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted packets must re-marshal and re-parse to the same
		// header and payload (canonicalization stability).
		again, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("re-parse of accepted packet failed: %v", err)
		}
		if again.Kind != p.Kind || again.Requester != p.Requester || again.Address != p.Address {
			t.Fatalf("unstable canonicalization: %v vs %v", again, p)
		}
		if !bytes.Equal(again.Payload, p.Payload) {
			t.Fatal("payload not stable across re-marshal")
		}
	})
}

// FuzzSerializeInto proves the zero-alloc serializer is byte-identical
// to Marshal for every parseable packet — including when writing into a
// dirty recycled buffer, where any byte the encoder forgets to
// overwrite (or zero, for the DW padding) would leak the previous
// occupant's bytes onto the wire.
func FuzzSerializeInto(f *testing.F) {
	seeds := []*Packet{
		NewMemWrite(MakeID(0, 1, 0), 0x1000, []byte("seed payload")),
		NewMemWrite(MakeID(0, 1, 0), 0x1_0000_0000, bytes.Repeat([]byte{7}, 256)),
		NewMemWrite(MakeID(0, 1, 0), 0x2000, []byte{1, 2, 3}), // non-DW-aligned: exercises padding
		NewMemRead(MakeID(2, 0, 0), 0xfee0_0000, 64, 3),
		NewMessage(MakeID(2, 0, 0), 0x19, []byte{1}),
		NewCompletion(NewMemRead(MakeID(0, 1, 0), 0x10, 4, 1), MakeID(2, 0, 0), CplSuccess, []byte{1, 2, 3, 4}),
		NewCompletion(NewMemRead(MakeID(0, 1, 0), 0x10, 4, 1), MakeID(2, 0, 0), CplUR, nil),
	}
	for _, p := range seeds {
		f.Add(p.Marshal())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		want := p.Marshal()
		if n := p.MarshalSize(); n != len(want) {
			t.Fatalf("MarshalSize = %d, Marshal produced %d bytes", n, len(want))
		}
		// A recycled buffer full of garbage must yield identical bytes.
		dirty := bytes.Repeat([]byte{0xa5}, len(want)+16)
		got := p.SerializeInto(dirty)
		if !bytes.Equal(got, want) {
			t.Fatalf("SerializeInto into dirty buffer diverged:\n got %x\nwant %x", got, want)
		}
		if &got[0] != &dirty[0] {
			t.Fatal("SerializeInto ignored a buffer with sufficient capacity")
		}
		// An undersized buffer must fall back to a fresh allocation —
		// never a partial write into the short slice.
		short := make([]byte, 0, len(want)-1)
		got = p.SerializeInto(short)
		if !bytes.Equal(got, want) {
			t.Fatal("SerializeInto fallback allocation diverged from Marshal")
		}
	})
}

// TestSerializeIntoArenaDiscipline documents and enforces the intended
// arena protocol (trace capture uses it): Get a buffer sized by
// MarshalSize, serialize, consume the bytes, Put. The serialized view
// aliases the arena buffer, so once released it must no longer be
// referenced — anything copied out before the Put must be immune to the
// buffer's next occupant scribbling over it.
func TestSerializeIntoArenaDiscipline(t *testing.T) {
	p := NewMemWrite(MakeID(0, 1, 0), 0x4000, []byte("arena-staged tlp payload"))
	want := p.Marshal()

	buf := arena.Get(p.MarshalSize())
	wire := p.SerializeInto(buf)
	if &wire[0] != &buf[0] {
		t.Fatal("serializer did not use the arena buffer")
	}
	kept := append([]byte(nil), wire...) // consumer copies before release
	arena.Put(buf)

	// Reuse the class: the next Get may hand back the same backing array
	// and overwrite it. The retained copy must be unaffected, and a
	// Marshal (nil dst) must never alias pooled memory.
	next := arena.Get(p.MarshalSize())
	for i := range next {
		next[i] = 0xee
	}
	if !bytes.Equal(kept, want) {
		t.Fatal("copy taken before release was corrupted by arena reuse")
	}
	fresh := p.Marshal()
	if &fresh[0] == &next[0] {
		t.Fatal("Marshal aliased a pooled arena buffer")
	}
	if !bytes.Equal(fresh, want) {
		t.Fatal("Marshal diverged after arena churn")
	}
	arena.Put(next)
}
