// Package pcie implements the software PCIe fabric on which ccAI's
// interposition operates: Transaction Layer Packets (TLPs) with real
// byte-level serialization, requester/completer routing through a root
// complex and switches, link bandwidth/latency models, and per-device
// configuration space.
//
// This is the substrate substitute for the paper's physical PCIe bus
// (DESIGN.md §2): the PCIe Security Controller inspects exactly the
// header attributes described in §2.1 of the paper — format, type,
// requester/completer IDs, address, length — and they are carried here
// in spec-shaped 3DW/4DW headers.
package pcie

import (
	"encoding/binary"
	"fmt"
)

// ID is a PCIe requester/completer identifier: 8-bit bus, 5-bit device,
// 3-bit function packed into 16 bits, as on the wire.
type ID uint16

// MakeID packs bus/device/function numbers into an ID.
func MakeID(bus, dev, fn uint8) ID {
	return ID(uint16(bus)<<8 | uint16(dev&0x1f)<<3 | uint16(fn&0x7))
}

// Bus reports the bus number component.
func (id ID) Bus() uint8 { return uint8(id >> 8) }

// Device reports the device number component.
func (id ID) Device() uint8 { return uint8(id>>3) & 0x1f }

// Function reports the function number component.
func (id ID) Function() uint8 { return uint8(id) & 0x7 }

func (id ID) String() string {
	return fmt.Sprintf("%02x:%02x.%d", id.Bus(), id.Device(), id.Function())
}

// Kind identifies the transaction type of a TLP. The constants cover the
// subset of the PCIe transaction layer that DMA/MMIO traffic uses, which
// is the subset the paper's Packet Filter classifies.
type Kind uint8

const (
	// MRd is a memory read request (MMIO read or DMA read).
	MRd Kind = iota
	// MWr is a posted memory write request (MMIO write or DMA write).
	MWr
	// Cpl is a completion without data (for writes needing status, or
	// error completions).
	Cpl
	// CplD is a completion with data (response to MRd).
	CplD
	// CfgRd is a type-0 configuration read.
	CfgRd
	// CfgWr is a type-0 configuration write.
	CfgWr
	// Msg is a message request (interrupts, power management, vendor
	// messages). ccAI treats these as "general" packets (action A4).
	Msg
	// MsgD is a message request with data payload.
	MsgD
)

var kindNames = [...]string{"MRd", "MWr", "Cpl", "CplD", "CfgRd", "CfgWr", "Msg", "MsgD"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// HasPayload reports whether packets of this kind carry a data payload.
func (k Kind) HasPayload() bool {
	switch k {
	case MWr, CplD, CfgWr, MsgD:
		return true
	}
	return false
}

// IsRequest reports whether the kind is a request (as opposed to a
// completion).
func (k Kind) IsRequest() bool { return k != Cpl && k != CplD }

// CplStatus is the completion status field.
type CplStatus uint8

const (
	// CplSuccess indicates successful completion.
	CplSuccess CplStatus = 0
	// CplUR indicates Unsupported Request — the canonical way a PCIe
	// device (or ccAI's filter) rejects an access.
	CplUR CplStatus = 1
	// CplCA indicates Completer Abort.
	CplCA CplStatus = 4
)

func (s CplStatus) String() string {
	switch s {
	case CplSuccess:
		return "SC"
	case CplUR:
		return "UR"
	case CplCA:
		return "CA"
	}
	return fmt.Sprintf("CplStatus(%d)", uint8(s))
}

// MaxPayload is the maximum TLP payload size in bytes (the fabric's
// Max_Payload_Size). 256 bytes matches common server root complexes and
// is the chunking granularity the PCIe-SC's handlers see.
const MaxPayload = 256

// MaxReadReq is the maximum memory-read request size in bytes (the
// fabric's Max_Read_Request_Size). Read requests carry no payload, so
// they may ask for more than MaxPayload in one TLP; 4 KiB is the usual
// server-platform ceiling. The PCIe-SC exploits this on the H2D path:
// one read request covers a span of cipher chunks, amortizing the
// request/completion round trip and letting the SC batch-decrypt.
const MaxReadReq = 4096

// HeaderOverhead is the per-TLP wire overhead in bytes: 2 B framing +
// 6 B DLL (sequence + LCRC) + 16 B worst-case 4DW header. The link model
// charges this for every packet, which is how ccAI's extra tag/metadata
// packets turn into the bandwidth expansion measured in Figure 12a.
const HeaderOverhead = 24

// Header carries the TLP header fields the Packet Filter matches on.
type Header struct {
	Kind Kind
	// TC is the traffic class; Attr the attribute bits (RO/NS).
	TC, Attr uint8
	// Length is the payload length in bytes (the wire encodes DWs; we
	// keep bytes and first/last byte-enables for sub-DW accesses).
	Length uint32
	// Requester is the sending agent's ID.
	Requester ID
	// Tag matches completions to requests.
	Tag uint8
	// Address is the target memory address (memory requests) or the
	// config-space register offset (config requests).
	Address uint64
	// Completer is meaningful for completions and config requests.
	Completer ID
	// Status is the completion status (completions only).
	Status CplStatus
	// FirstBE/LastBE are the byte-enable nibbles.
	FirstBE, LastBE uint8
}

// Packet is one TLP: header plus payload. Payload may be nil for
// non-data kinds. Meta carries simulation-side annotations (e.g. the
// attack harness marks injected packets) and is never serialized.
type Packet struct {
	Header
	Payload []byte

	// Meta is opaque simulation metadata; it does not exist on the wire
	// and must never influence security decisions.
	Meta map[string]string
}

// Clone deep-copies the packet (payload and meta included) so mutation
// by an attacker model cannot alias the original.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	if p.Meta != nil {
		q.Meta = make(map[string]string, len(p.Meta))
		for k, v := range p.Meta {
			q.Meta[k] = v
		}
	}
	return &q
}

// WireSize reports the packet's total size on the link in bytes,
// including framing and header overhead.
func (p *Packet) WireSize() int64 {
	n := int64(HeaderOverhead)
	if p.Kind.HasPayload() {
		n += int64(len(p.Payload))
	}
	return n
}

func (p *Packet) String() string {
	switch {
	case p.Kind == Cpl || p.Kind == CplD:
		return fmt.Sprintf("%s[%s] cpl=%s req=%s tag=%d len=%d", p.Kind, p.Status, p.Completer, p.Requester, p.Tag, p.Length)
	default:
		return fmt.Sprintf("%s req=%s addr=%#x len=%d tag=%d", p.Kind, p.Requester, p.Address, p.Length, p.Tag)
	}
}

// NewMemRead builds a memory read request.
func NewMemRead(req ID, addr uint64, length uint32, tag uint8) *Packet {
	return &Packet{Header: Header{Kind: MRd, Requester: req, Address: addr, Length: length, Tag: tag, FirstBE: 0xf, LastBE: 0xf}}
}

// NewMemWrite builds a posted memory write carrying data.
func NewMemWrite(req ID, addr uint64, data []byte) *Packet {
	return &Packet{
		Header:  Header{Kind: MWr, Requester: req, Address: addr, Length: uint32(len(data)), FirstBE: 0xf, LastBE: 0xf},
		Payload: append([]byte(nil), data...),
	}
}

// NewMemWriteOwned is NewMemWrite without the defensive payload copy:
// ownership of data transfers to the packet, so the caller must not
// touch the slice again. Use when the payload was freshly built for
// this packet — the hot-path variant that halves payload allocations.
func NewMemWriteOwned(req ID, addr uint64, data []byte) *Packet {
	return &Packet{
		Header:  Header{Kind: MWr, Requester: req, Address: addr, Length: uint32(len(data)), FirstBE: 0xf, LastBE: 0xf},
		Payload: data,
	}
}

// NewCompletion builds a completion (with data when payload is non-nil)
// for the given request.
func NewCompletion(req *Packet, completer ID, status CplStatus, payload []byte) *Packet {
	h := Header{
		Kind:      Cpl,
		Requester: req.Requester,
		Completer: completer,
		Tag:       req.Tag,
		Status:    status,
	}
	var data []byte
	if payload != nil {
		h.Kind = CplD
		h.Length = uint32(len(payload))
		data = append([]byte(nil), payload...)
	}
	return &Packet{Header: h, Payload: data}
}

// NewCompletionOwned is NewCompletion without the defensive payload
// copy: ownership of payload transfers to the packet. Use when the
// buffer was freshly built for this completion and will not be reused
// — it must never hand out a pooled buffer, since taps on a bus may
// legitimately retain routed packets.
func NewCompletionOwned(req *Packet, completer ID, status CplStatus, payload []byte) *Packet {
	h := Header{
		Kind:      Cpl,
		Requester: req.Requester,
		Completer: completer,
		Tag:       req.Tag,
		Status:    status,
	}
	if payload != nil {
		h.Kind = CplD
		h.Length = uint32(len(payload))
	}
	return &Packet{Header: h, Payload: payload}
}

// NewMessage builds a message packet (e.g. an interrupt-style vendor
// message) with an optional payload.
func NewMessage(req ID, code uint64, payload []byte) *Packet {
	k := Msg
	if payload != nil {
		k = MsgD
	}
	return &Packet{
		Header:  Header{Kind: k, Requester: req, Address: code, Length: uint32(len(payload))},
		Payload: append([]byte(nil), payload...),
	}
}

// --- Serialization -------------------------------------------------------
//
// The wire format follows the PCIe base spec shape: a 3DW header for
// 32-bit-address requests and completions, a 4DW header for 64-bit
// addresses, followed by the payload padded to DW granularity. This is
// what the attack harness mutates and what the HRoT measures, so it must
// round-trip exactly.

const (
	fmt3DW   = 0x0
	fmt4DW   = 0x1
	fmtData  = 0x2 // OR'd in when a payload follows
	typeMem  = 0x00
	typeCfg0 = 0x04
	typeCpl  = 0x0a
	typeMsg  = 0x10 // routed-by-ID message subtype we use
)

// wireLayout computes the header encoding bits and sizes shared by
// Marshal, MarshalSize and SerializeInto.
func (p *Packet) wireLayout() (fmtBits, typeBits uint8, use4DW bool, hdrDWs, total int) {
	switch p.Kind {
	case MRd, MWr:
		typeBits = typeMem
		use4DW = p.Address > 0xffffffff
	case CfgRd, CfgWr:
		typeBits = typeCfg0
	case Cpl, CplD:
		typeBits = typeCpl
	case Msg, MsgD:
		typeBits = typeMsg
		use4DW = true // messages always use 4DW headers
	}
	if use4DW {
		fmtBits = fmt4DW
	} else {
		fmtBits = fmt3DW
	}
	if p.Kind.HasPayload() {
		fmtBits |= fmtData
	}
	hdrDWs = 3
	if use4DW {
		hdrDWs = 4
	}
	total = hdrDWs * 4
	if p.Kind.HasPayload() {
		total += int((p.Length+3)/4) * 4
	}
	total += 4
	return
}

// MarshalSize reports the exact byte length Marshal would produce, so
// callers can stage the wire image in a reusable buffer via
// SerializeInto instead of allocating per packet.
func (p *Packet) MarshalSize() int {
	_, _, _, _, total := p.wireLayout()
	return total
}

// Marshal serializes the packet to wire bytes.
func (p *Packet) Marshal() []byte {
	return p.SerializeInto(nil)
}

// SerializeInto serializes the packet into dst when dst has capacity
// for MarshalSize() bytes, allocating a fresh buffer otherwise, and
// returns the serialized slice. Output is byte-identical to Marshal.
// The returned slice aliases dst — callers recycling dst through an
// arena must finish with (or copy) the result before releasing it.
func (p *Packet) SerializeInto(dst []byte) []byte {
	fmtBits, typeBits, use4DW, hdrDWs, total := p.wireLayout()
	dwLen := (p.Length + 3) / 4
	var out []byte
	if cap(dst) >= total {
		out = dst[:total]
		// Every byte below is overwritten except the DW padding between
		// the payload and the trailer; zero it so a recycled buffer
		// yields byte-identical output.
		if p.Kind.HasPayload() {
			for i := hdrDWs*4 + int(p.Length); i < total-4; i++ {
				out[i] = 0
			}
		}
	} else {
		out = make([]byte, total)
	}
	buf := out[:hdrDWs*4]
	// DW0: fmt/type, TC, attr, length in DWs.
	buf[0] = fmtBits<<5 | typeBits
	buf[1] = p.TC << 4
	binary.BigEndian.PutUint16(buf[2:4], uint16(dwLen&0x3ff)|uint16(p.Attr&0x3)<<12)

	switch p.Kind {
	case Cpl, CplD:
		// DW1: completer ID, status, byte count. DW2: requester ID, tag.
		binary.BigEndian.PutUint16(buf[4:6], uint16(p.Completer))
		buf[6] = uint8(p.Status) << 5
		buf[7] = byte(p.Length) // lower bits of byte count
		binary.BigEndian.PutUint16(buf[8:10], uint16(p.Requester))
		buf[10] = p.Tag
		buf[11] = byte(p.Address) & 0x7f // lower address
	default:
		// DW1: requester ID, tag, byte enables.
		binary.BigEndian.PutUint16(buf[4:6], uint16(p.Requester))
		buf[6] = p.Tag
		buf[7] = p.LastBE<<4 | p.FirstBE&0xf
		if use4DW {
			binary.BigEndian.PutUint64(buf[8:16], p.Address)
		} else {
			binary.BigEndian.PutUint32(buf[8:12], uint32(p.Address))
		}
		if p.Kind == CfgRd || p.Kind == CfgWr {
			binary.BigEndian.PutUint16(buf[8:10], uint16(p.Completer))
			binary.BigEndian.PutUint32(buf[8:12], binary.BigEndian.Uint32(buf[8:12])|uint32(p.Address)&0xfff)
		}
	}

	if p.Kind.HasPayload() {
		copy(out[hdrDWs*4:total-4], p.Payload)
	}
	// Trailer records the exact byte length so sub-DW payloads
	// round-trip (stand-in for byte-enable reconstruction).
	binary.BigEndian.PutUint32(out[total-4:], p.Length)
	return out
}

// Unmarshal parses wire bytes produced by Marshal. It validates
// structural invariants and returns an error for malformed packets; the
// Packet Filter drops anything Unmarshal rejects.
func Unmarshal(data []byte) (*Packet, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("pcie: truncated TLP (%d bytes)", len(data))
	}
	fmtBits := data[0] >> 5
	typeBits := data[0] & 0x1f
	use4DW := fmtBits&fmt4DW != 0
	hasData := fmtBits&fmtData != 0
	hdrDWs := 3
	if use4DW {
		hdrDWs = 4
	}
	if len(data) < hdrDWs*4+4 {
		return nil, fmt.Errorf("pcie: TLP shorter than its header")
	}

	p := &Packet{}
	p.TC = data[1] >> 4
	w := binary.BigEndian.Uint16(data[2:4])
	dwLen := uint32(w & 0x3ff)
	p.Attr = uint8(w>>12) & 0x3

	exactLen := binary.BigEndian.Uint32(data[len(data)-4:])
	body := data[:len(data)-4]

	switch typeBits {
	case typeMem:
		p.Kind = MRd
		if hasData {
			p.Kind = MWr
		}
		p.Requester = ID(binary.BigEndian.Uint16(body[4:6]))
		p.Tag = body[6]
		p.LastBE = body[7] >> 4
		p.FirstBE = body[7] & 0xf
		if use4DW {
			p.Address = binary.BigEndian.Uint64(body[8:16])
		} else {
			p.Address = uint64(binary.BigEndian.Uint32(body[8:12]))
		}
	case typeCfg0:
		p.Kind = CfgRd
		if hasData {
			p.Kind = CfgWr
		}
		p.Requester = ID(binary.BigEndian.Uint16(body[4:6]))
		p.Tag = body[6]
		p.Completer = ID(binary.BigEndian.Uint16(body[8:10]))
		p.Address = uint64(binary.BigEndian.Uint32(body[8:12]) & 0xfff)
	case typeCpl:
		p.Kind = Cpl
		if hasData {
			p.Kind = CplD
		}
		p.Completer = ID(binary.BigEndian.Uint16(body[4:6]))
		p.Status = CplStatus(body[6] >> 5)
		p.Requester = ID(binary.BigEndian.Uint16(body[8:10]))
		p.Tag = body[10]
		p.Address = uint64(body[11] & 0x7f)
	case typeMsg:
		p.Kind = Msg
		if hasData {
			p.Kind = MsgD
		}
		p.Requester = ID(binary.BigEndian.Uint16(body[4:6]))
		p.Tag = body[6]
		if use4DW {
			p.Address = binary.BigEndian.Uint64(body[8:16])
		}
	default:
		return nil, fmt.Errorf("pcie: unknown TLP type bits %#x", typeBits)
	}

	if hasData {
		start := hdrDWs * 4
		if uint32(len(body)-start) < dwLen*4 {
			return nil, fmt.Errorf("pcie: payload shorter than length field")
		}
		if exactLen > dwLen*4 {
			return nil, fmt.Errorf("pcie: exact length %d exceeds DW length %d", exactLen, dwLen*4)
		}
		p.Payload = append([]byte(nil), body[start:start+int(exactLen)]...)
		p.Length = exactLen
	} else {
		p.Length = exactLen
	}
	if p.Kind.HasPayload() != hasData {
		return nil, fmt.Errorf("pcie: kind %v / data presence mismatch", p.Kind)
	}
	return p, nil
}
