package pcie

import (
	"strings"
	"testing"

	"ccai/internal/sim"
)

// Tests for the smaller surface: stringers, config DW access,
// tap-on-completion behaviour, broadcast messages, and utilization
// accounting.

func TestStringers(t *testing.T) {
	if !strings.Contains(Gen4.String(), "16GT/s") {
		t.Errorf("Gen4 = %q", Gen4)
	}
	lc := LinkConfig{Gen: Gen3, Lanes: 8}
	if lc.String() != "8GT/s x8" {
		t.Errorf("LinkConfig = %q", lc)
	}
	if Downstream.String() != "downstream" || Upstream.String() != "upstream" {
		t.Error("Dir strings wrong")
	}
	w := NewMemWrite(MakeID(0, 1, 0), 0x1000, []byte{1})
	if !strings.Contains(w.String(), "MWr") {
		t.Errorf("packet string = %q", w)
	}
	cpl := NewCompletion(NewMemRead(MakeID(0, 1, 0), 0x1000, 4, 2), MakeID(2, 0, 0), CplSuccess, []byte{1, 2, 3, 4})
	if !strings.Contains(cpl.String(), "SC") {
		t.Errorf("completion string = %q", cpl)
	}
	if CplUR.String() != "UR" || CplCA.String() != "CA" {
		t.Error("status strings wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

func TestWireSize(t *testing.T) {
	w := NewMemWrite(MakeID(0, 1, 0), 0x1000, make([]byte, 100))
	if w.WireSize() != 100+HeaderOverhead {
		t.Fatalf("WireSize = %d", w.WireSize())
	}
	r := NewMemRead(MakeID(0, 1, 0), 0x1000, 100, 0)
	if r.WireSize() != HeaderOverhead {
		t.Fatalf("read WireSize = %d", r.WireSize())
	}
}

func TestConfigSpaceDWAccess(t *testing.T) {
	c := NewConfigSpace(0x10de, 0x20b0, 0)
	c.Write32(0x40, 0xdeadbeef)
	if c.Read32(0x40) != 0xdeadbeef {
		t.Fatal("DW round trip failed")
	}
	// Unaligned offsets snap to the DW.
	if c.Read32(0x42) != 0xdeadbeef {
		t.Fatal("offset alignment broken")
	}
}

func TestBusNameAndEndpoints(t *testing.T) {
	b := NewBus("segment-x")
	if b.Name() != "segment-x" {
		t.Fatal("name lost")
	}
	b.Attach(newEchoDevice(MakeID(3, 0, 0)))
	b.Attach(newEchoDevice(MakeID(1, 0, 0)))
	ids := b.Endpoints()
	if len(ids) != 2 || ids[0] != MakeID(1, 0, 0) || ids[1] != MakeID(3, 0, 0) {
		t.Fatalf("endpoints = %v", ids)
	}
}

func TestBusDuplicateAttachPanics(t *testing.T) {
	b := NewBus("x")
	b.Attach(newEchoDevice(MakeID(1, 0, 0)))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	b.Attach(newEchoDevice(MakeID(1, 0, 0)))
}

func TestTapSeesCompletions(t *testing.T) {
	b := NewBus("x")
	d := newEchoDevice(MakeID(1, 0, 0))
	b.Attach(d)
	if err := b.Claim(d.id, Region{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	d.mem[0x1000] = []byte("payload")
	var kinds []Kind
	b.AddTap(TapFunc(func(p *Packet) *Packet {
		kinds = append(kinds, p.Kind)
		return p
	}))
	b.Route(NewMemRead(MakeID(0, 0, 0), 0x1000, 7, 0))
	if len(kinds) != 2 || kinds[0] != MRd || kinds[1] != CplD {
		t.Fatalf("tap saw %v, want [MRd CplD]", kinds)
	}
}

func TestTapCanDropCompletions(t *testing.T) {
	b := NewBus("x")
	d := newEchoDevice(MakeID(1, 0, 0))
	b.Attach(d)
	if err := b.Claim(d.id, Region{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	b.AddTap(TapFunc(func(p *Packet) *Packet {
		if p.Kind == CplD {
			return nil
		}
		return p
	}))
	if cpl := b.Route(NewMemRead(MakeID(0, 0, 0), 0x1000, 4, 0)); cpl != nil {
		t.Fatal("dropped completion delivered")
	}
}

func TestClearTaps(t *testing.T) {
	b := NewBus("x")
	hits := 0
	b.AddTap(TapFunc(func(p *Packet) *Packet { hits++; return p }))
	b.ClearTaps()
	b.Route(NewMemWrite(MakeID(0, 0, 0), 0x1000, []byte{1}))
	if hits != 0 {
		t.Fatal("cleared tap still fired")
	}
}

func TestBroadcastMessageReachesAll(t *testing.T) {
	b := NewBus("x")
	d1 := newEchoDevice(MakeID(1, 0, 0))
	d2 := newEchoDevice(MakeID(2, 0, 0))
	sender := MakeID(0, 5, 0)
	b.Attach(d1)
	b.Attach(d2)
	msg := NewMessage(sender, 0x19, nil) // no completer: broadcast
	b.Route(msg)
	if len(d1.got) != 1 || len(d2.got) != 1 {
		t.Fatalf("broadcast delivery: %d/%d", len(d1.got), len(d2.got))
	}
}

func TestLinkUtilizationAndConfig(t *testing.T) {
	l := NewLink("u", LinkConfig{Gen: Gen4, Lanes: 16})
	if l.Config().Lanes != 16 {
		t.Fatal("config lost")
	}
	l.Transfer(0, Downstream, 1<<20, 0)
	l.Transfer(0, Upstream, 2<<20, 0)
	down, up := l.Utilization()
	if down <= 0 || up <= down {
		t.Fatalf("utilization down=%v up=%v", down, up)
	}
	l.Reset()
	down, up = l.Utilization()
	if down != 0 || up != 0 {
		t.Fatal("reset did not clear utilization")
	}
}

func TestTransferExtraPacketsCost(t *testing.T) {
	l := NewLink("e", LinkConfig{Gen: Gen4, Lanes: 16, PropagationDelay: 0})
	plain := l.Transfer(0, Downstream, 1<<20, 0)
	l.Reset()
	withTags := l.Transfer(0, Downstream, 1<<20, 4096) // one tag pkt per data pkt
	if withTags <= plain {
		t.Fatal("companion packets cost nothing")
	}
}

func TestLinkPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-lane link accepted")
		}
	}()
	NewLink("bad", LinkConfig{Gen: Gen4, Lanes: 0})
}

func TestResourceNameAndRate(t *testing.T) {
	r := sim.NewResource("nm", 100, 0)
	if r.Name() != "nm" || r.Rate() != 100 {
		t.Fatal("resource accessors broken")
	}
}

func TestEnumerate(t *testing.T) {
	b := NewBus("host")
	// A device with real config space.
	cfg := NewConfigSpace(0x10de, 0x20b0, 0)
	devID := MakeID(2, 0, 0)
	b.Attach(&cfgEndpoint{id: devID, cfg: cfg})
	// An endpoint without config space (bridge-like).
	b.Attach(newEchoDevice(MakeID(0, 0, 0)))

	devs := Enumerate(b, MakeID(0, 1, 0))
	if len(devs) != 1 {
		t.Fatalf("enumerated %d devices, want 1", len(devs))
	}
	if devs[0].ID != devID || devs[0].VendorID != 0x10de || devs[0].DeviceID != 0x20b0 {
		t.Fatalf("enumeration = %+v", devs[0])
	}
	out := RenderEnumeration(devs)
	if !strings.Contains(out, "10de:20b0") {
		t.Fatalf("render = %q", out)
	}
}

type cfgEndpoint struct {
	id  ID
	cfg *ConfigSpace
}

func (c *cfgEndpoint) DeviceID() ID { return c.id }
func (c *cfgEndpoint) Handle(p *Packet) *Packet {
	if p.Kind == CfgRd {
		buf := make([]byte, 4)
		v := c.cfg.Read32(uint16(p.Address))
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return NewCompletion(p, c.id, CplSuccess, buf)
	}
	return NewCompletion(p, c.id, CplUR, nil)
}
