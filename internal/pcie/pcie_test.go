package pcie

import (
	"bytes"
	"testing"
	"testing/quick"

	"ccai/internal/sim"
)

func TestIDPacking(t *testing.T) {
	id := MakeID(0x3a, 0x1f, 0x7)
	if id.Bus() != 0x3a || id.Device() != 0x1f || id.Function() != 0x7 {
		t.Fatalf("round trip failed: %v", id)
	}
	if s := id.String(); s != "3a:1f.7" {
		t.Fatalf("String() = %q", s)
	}
}

func TestKindProperties(t *testing.T) {
	withData := map[Kind]bool{MRd: false, MWr: true, Cpl: false, CplD: true, CfgRd: false, CfgWr: true, Msg: false, MsgD: true}
	for k, want := range withData {
		if k.HasPayload() != want {
			t.Errorf("%v.HasPayload() = %v, want %v", k, k.HasPayload(), want)
		}
	}
	if Cpl.IsRequest() || CplD.IsRequest() || !MRd.IsRequest() {
		t.Fatal("IsRequest misclassifies completions")
	}
}

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	wire := p.Marshal()
	q, err := Unmarshal(wire)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", p, err)
	}
	return q
}

func TestMarshalRoundTripMemWrite(t *testing.T) {
	payload := []byte("confidential model weights fragment")
	p := NewMemWrite(MakeID(0, 2, 0), 0x1_0000_2000, payload)
	q := roundTrip(t, p)
	if q.Kind != MWr || q.Address != p.Address || q.Requester != p.Requester {
		t.Fatalf("header mismatch: %v vs %v", q, p)
	}
	if !bytes.Equal(q.Payload, payload) {
		t.Fatalf("payload mismatch: %q", q.Payload)
	}
}

func TestMarshalRoundTripMemRead32bit(t *testing.T) {
	p := NewMemRead(MakeID(1, 0, 0), 0xfee0_0000, 64, 9)
	q := roundTrip(t, p)
	if q.Kind != MRd || q.Address != p.Address || q.Length != 64 || q.Tag != 9 {
		t.Fatalf("mismatch: %+v", q.Header)
	}
}

func TestMarshalRoundTripCompletion(t *testing.T) {
	req := NewMemRead(MakeID(0, 1, 0), 0x9000, 16, 3)
	cpl := NewCompletion(req, MakeID(2, 0, 0), CplSuccess, []byte("0123456789abcdef"))
	q := roundTrip(t, cpl)
	if q.Kind != CplD || q.Requester != req.Requester || q.Tag != 3 || q.Status != CplSuccess {
		t.Fatalf("completion mismatch: %+v", q.Header)
	}
	if q.Completer != MakeID(2, 0, 0) {
		t.Fatalf("completer = %v", q.Completer)
	}
}

func TestMarshalRoundTripURCompletion(t *testing.T) {
	req := NewMemRead(MakeID(0, 1, 0), 0x9000, 16, 3)
	cpl := NewCompletion(req, MakeID(2, 0, 0), CplUR, nil)
	q := roundTrip(t, cpl)
	if q.Kind != Cpl || q.Status != CplUR {
		t.Fatalf("UR completion mismatch: %+v", q.Header)
	}
}

func TestMarshalRoundTripMessage(t *testing.T) {
	p := NewMessage(MakeID(2, 0, 0), 0x42, []byte{1, 2, 3})
	q := roundTrip(t, p)
	if q.Kind != MsgD || q.Address != 0x42 || !bytes.Equal(q.Payload, []byte{1, 2, 3}) {
		t.Fatalf("message mismatch: %v", q)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 15),
		append(make([]byte, 12), 0xff, 0xff, 0xff, 0xff), // bogus type bits
	}
	for i, c := range cases {
		if i == 3 {
			c[0] = 0xff
		}
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestUnmarshalRejectsTruncatedPayload(t *testing.T) {
	p := NewMemWrite(MakeID(0, 2, 0), 0x1000, make([]byte, 64))
	wire := p.Marshal()
	// Remove payload bytes but keep the trailer.
	trunc := append(append([]byte(nil), wire[:20]...), wire[len(wire)-4:]...)
	if _, err := Unmarshal(trunc); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// Property: arbitrary memory writes round-trip byte-for-byte.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(addr uint64, tag uint8, payload []byte) bool {
		if len(payload) == 0 || len(payload) > MaxPayload {
			return true // vacuous
		}
		p := NewMemWrite(MakeID(0, 3, 1), addr, payload)
		p.Tag = tag
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return q.Address == addr && q.Tag == tag && bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketCloneIsDeep(t *testing.T) {
	p := NewMemWrite(MakeID(0, 1, 0), 0x100, []byte{1, 2, 3})
	p.Meta = map[string]string{"k": "v"}
	q := p.Clone()
	q.Payload[0] = 99
	q.Meta["k"] = "w"
	if p.Payload[0] != 1 || p.Meta["k"] != "v" {
		t.Fatal("Clone aliased the original")
	}
}

// --- fabric tests --------------------------------------------------------

type echoDevice struct {
	id  ID
	mem map[uint64][]byte
	got []*Packet
}

func newEchoDevice(id ID) *echoDevice {
	return &echoDevice{id: id, mem: make(map[uint64][]byte)}
}

func (d *echoDevice) DeviceID() ID { return d.id }
func (d *echoDevice) Handle(p *Packet) *Packet {
	d.got = append(d.got, p)
	switch p.Kind {
	case MWr:
		d.mem[p.Address] = append([]byte(nil), p.Payload...)
		return nil
	case MRd:
		data, ok := d.mem[p.Address]
		if !ok {
			data = make([]byte, p.Length)
		}
		return NewCompletion(p, d.id, CplSuccess, data)
	}
	return nil
}

func TestBusRoutesByAddress(t *testing.T) {
	b := NewBus("host")
	d1 := newEchoDevice(MakeID(1, 0, 0))
	d2 := newEchoDevice(MakeID(2, 0, 0))
	b.Attach(d1)
	b.Attach(d2)
	if err := b.Claim(d1.id, Region{Base: 0x1000, Size: 0x1000, Name: "d1"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Claim(d2.id, Region{Base: 0x2000, Size: 0x1000, Name: "d2"}); err != nil {
		t.Fatal(err)
	}

	b.Route(NewMemWrite(MakeID(0, 0, 0), 0x1234, []byte("one")))
	b.Route(NewMemWrite(MakeID(0, 0, 0), 0x2234, []byte("two")))
	if string(d1.mem[0x1234]) != "one" || string(d2.mem[0x2234]) != "two" {
		t.Fatal("writes routed to wrong devices")
	}

	cpl := b.Route(NewMemRead(MakeID(0, 0, 0), 0x1234, 3, 1))
	if cpl == nil || cpl.Status != CplSuccess || string(cpl.Payload) != "one" {
		t.Fatalf("read completion = %v", cpl)
	}
}

func TestBusUnclaimedReadGetsUR(t *testing.T) {
	b := NewBus("host")
	cpl := b.Route(NewMemRead(MakeID(0, 0, 0), 0xdead0000, 4, 0))
	if cpl == nil || cpl.Status != CplUR {
		t.Fatalf("expected UR, got %v", cpl)
	}
	// Posted writes to nowhere vanish without error.
	if got := b.Route(NewMemWrite(MakeID(0, 0, 0), 0xdead0000, []byte{1})); got != nil {
		t.Fatalf("posted write returned %v", got)
	}
}

func TestBusRejectsOverlappingClaims(t *testing.T) {
	b := NewBus("host")
	if err := b.Claim(MakeID(1, 0, 0), Region{Base: 0x1000, Size: 0x1000, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Claim(MakeID(2, 0, 0), Region{Base: 0x1800, Size: 0x1000, Name: "b"}); err == nil {
		t.Fatal("overlap accepted")
	}
}

func TestBusTapObservesAndDrops(t *testing.T) {
	b := NewBus("host")
	d := newEchoDevice(MakeID(1, 0, 0))
	b.Attach(d)
	if err := b.Claim(d.id, Region{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	seen := 0
	b.AddTap(TapFunc(func(p *Packet) *Packet {
		seen++
		if p.Kind == MWr && p.Address == 0x1500 {
			return nil // delete this one
		}
		return p
	}))
	b.Route(NewMemWrite(MakeID(0, 0, 0), 0x1500, []byte("drop me")))
	b.Route(NewMemWrite(MakeID(0, 0, 0), 0x1600, []byte("keep me")))
	if seen != 2 {
		t.Fatalf("tap saw %d packets, want 2", seen)
	}
	if _, dropped := d.mem[0x1500]; dropped {
		t.Fatal("dropped packet still delivered")
	}
	if string(d.mem[0x1600]) != "keep me" {
		t.Fatal("kept packet lost")
	}
}

func TestBusDetach(t *testing.T) {
	b := NewBus("host")
	d := newEchoDevice(MakeID(1, 0, 0))
	b.Attach(d)
	if err := b.Claim(d.id, Region{Base: 0x1000, Size: 0x100}); err != nil {
		t.Fatal(err)
	}
	b.Detach(d.id)
	if _, ok := b.Owner(0x1000); ok {
		t.Fatal("claim survived detach")
	}
	if cpl := b.Route(NewMemRead(MakeID(0, 0, 0), 0x1000, 4, 0)); cpl == nil || cpl.Status != CplUR {
		t.Fatal("detached device still reachable")
	}
}

// --- link tests ----------------------------------------------------------

func TestLinkBandwidthByGeneration(t *testing.T) {
	// Gen4 x16: 16 GT/s * 16 / 8 bits * 128/130 ≈ 31.5 GB/s raw.
	cfg := LinkConfig{Gen: Gen4, Lanes: 16}
	got := cfg.RawBandwidth()
	want := 16e9 / 8 * 16 * 128.0 / 130.0
	if diff := got - want; diff < -1 || diff > 1 {
		t.Fatalf("RawBandwidth = %g, want %g", got, want)
	}
	if Gen3.GTps() != 8 || Gen5.GTps() != 32 {
		t.Fatal("generation rates wrong")
	}
}

func TestLinkTransferScalesWithSize(t *testing.T) {
	l := NewLink("test", LinkConfig{Gen: Gen4, Lanes: 16, PropagationDelay: 200 * sim.Nanosecond})
	t1 := l.Transfer(0, Downstream, 1<<20, 0)
	l.Reset()
	t2 := l.Transfer(0, Downstream, 2<<20, 0)
	if t2 <= t1 {
		t.Fatalf("2MB (%v) not slower than 1MB (%v)", t2, t1)
	}
	// Ratio should be close to 2 (propagation delay is tiny).
	ratio := float64(t2) / float64(t1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("transfer time ratio = %v, want ~2", ratio)
	}
}

func TestLinkDirectionsIndependent(t *testing.T) {
	l := NewLink("test", LinkConfig{Gen: Gen3, Lanes: 4, PropagationDelay: 0})
	down := l.Transfer(0, Downstream, 1<<20, 0)
	up := l.Transfer(0, Upstream, 1<<20, 0)
	if down != up {
		t.Fatalf("full duplex broken: down=%v up=%v", down, up)
	}
}

func TestLinkReconfigureChangesRate(t *testing.T) {
	l := NewLink("test", LinkConfig{Gen: Gen4, Lanes: 16})
	fast := l.TransferTime(10 << 20)
	l.Reconfigure(LinkConfig{Gen: Gen3, Lanes: 8})
	slow := l.TransferTime(10 << 20)
	// Gen3 x8 is 1/4 the bandwidth of Gen4 x16.
	ratio := float64(slow) / float64(fast)
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("reconfigure ratio = %v, want ~4", ratio)
	}
}

func TestWireBytesChargesHeaders(t *testing.T) {
	// 1024 bytes = 4 packets of 256 -> 4 headers.
	if got := WireBytes(1024, 0); got != 1024+4*HeaderOverhead {
		t.Fatalf("WireBytes = %d", got)
	}
	// Extra companion packets cost a header each.
	if got := WireBytes(1024, 4); got != 1024+8*HeaderOverhead {
		t.Fatalf("WireBytes with extras = %d", got)
	}
	// Non-multiple sizes round packets up.
	if got := WireBytes(257, 0); got != 257+2*HeaderOverhead {
		t.Fatalf("WireBytes(257) = %d", got)
	}
}

func TestLinkRoundTripPositive(t *testing.T) {
	l := NewLink("t", LinkConfig{Gen: Gen4, Lanes: 16, PropagationDelay: 300 * sim.Nanosecond})
	if rt := l.RoundTrip(); rt < 600*sim.Nanosecond {
		t.Fatalf("round trip %v below propagation floor", rt)
	}
}

// --- config space tests ---------------------------------------------------

func TestConfigSpaceIdentity(t *testing.T) {
	c := NewConfigSpace(0x10de, 0x20b0, 0x030200) // NVIDIA A100-ish
	if c.VendorID() != 0x10de || c.DeviceID() != 0x20b0 {
		t.Fatal("identity mismatch")
	}
}

func TestConfigSpaceBARRoundTrip(t *testing.T) {
	c := NewConfigSpace(1, 2, 0)
	c.SetBAR(0, 0x38_0000_0000)
	if got := c.BAR(0); got != 0x38_0000_0000 {
		t.Fatalf("BAR0 = %#x", got)
	}
	c.SetBAR(2, 0xf000_0000)
	if got := c.BAR(2); got != 0xf000_0000 {
		t.Fatalf("BAR2 = %#x", got)
	}
}

func TestConfigSpaceBusMaster(t *testing.T) {
	c := NewConfigSpace(1, 2, 0)
	if c.BusMaster() {
		t.Fatal("bus master set at reset")
	}
	c.EnableMaster(true)
	if !c.BusMaster() {
		t.Fatal("EnableMaster(true) ignored")
	}
	c.EnableMaster(false)
	if c.BusMaster() {
		t.Fatal("EnableMaster(false) ignored")
	}
}
