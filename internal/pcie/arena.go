package pcie

import "sync"

// packetBlock is how many Packet structs one arena block holds.
const packetBlock = 64

// PacketArena bump-allocates Packet structs in blocks so hot paths that
// emit one packet per 256-byte chunk (device DMA engines, the SC's
// encrypt/tag planes) pay one heap allocation per 64 packets instead of
// one each. Carved structs are never recycled — a block is abandoned to
// the GC once full — so handing the packets to buses whose taps retain
// them is as safe as a fresh allocation. The zero value is ready to use.
type PacketArena struct {
	mu    sync.Mutex
	block []Packet
}

func (a *PacketArena) take() *Packet {
	a.mu.Lock()
	if len(a.block) == 0 {
		a.block = make([]Packet, packetBlock)
	}
	p := &a.block[0]
	a.block = a.block[1:]
	a.mu.Unlock()
	return p
}

// MemWrite builds a memory-write packet whose payload ownership
// transfers to the packet (no defensive copy — pair it with a
// never-recycled buffer source such as arena.Slab).
func (a *PacketArena) MemWrite(req ID, addr uint64, payload []byte) *Packet {
	p := a.take()
	p.Header = Header{Kind: MWr, Requester: req, Address: addr, Length: uint32(len(payload))}
	p.Payload = payload
	return p
}

// MemRead builds a memory-read request packet.
func (a *PacketArena) MemRead(req ID, addr uint64, length uint32, tag uint8) *Packet {
	p := a.take()
	p.Header = Header{Kind: MRd, Requester: req, Address: addr, Length: length, Tag: tag}
	p.Payload = nil
	return p
}

// CompletionOwned builds a completion for req with ownership of payload
// transferring to the packet, mirroring NewCompletionOwned.
func (a *PacketArena) CompletionOwned(req *Packet, completer ID, status CplStatus, payload []byte) *Packet {
	p := a.take()
	p.Header = Header{
		Kind:      Cpl,
		Requester: req.Requester,
		Completer: completer,
		Tag:       req.Tag,
		Status:    status,
	}
	if payload != nil {
		p.Kind = CplD
		p.Length = uint32(len(payload))
	}
	p.Payload = payload
	return p
}
