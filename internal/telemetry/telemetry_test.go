package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ccai/internal/obsv"
)

// fakeClock is a deterministic ns clock for audit/monitor tests.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64           { return c.t }
func (c *fakeClock) tick(d time.Duration) { c.t += int64(d) }

func TestAuditChainVerify(t *testing.T) {
	clk := &fakeClock{}
	l := NewLog(0, clk.now)
	l.Append(obsv.EvAttest, "0", "gen=1")
	clk.tick(time.Second)
	l.Append(obsv.EvRekey, "", "stream=h2d")
	l.Append(obsv.EvFailClosed, "1", "reason=crypto")

	if n, _, err := Verify(l.Entries()); err != nil || n != 3 {
		t.Fatalf("Verify = %d, %v", n, err)
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	n, head, err := VerifyJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 3 {
		t.Fatalf("VerifyJSONL = %d, %v", n, err)
	}
	if _, h := l.Head(); h != head {
		t.Fatalf("head mismatch: %s vs %s", h, head)
	}
}

func TestAuditDetectsMutation(t *testing.T) {
	l := NewLog(0, (&fakeClock{}).now)
	for i := 0; i < 10; i++ {
		l.Append(obsv.EvRekey, "", "stream=h2d")
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	// Flip a single byte inside an entry's detail field.
	raw := buf.Bytes()
	i := bytes.Index(raw, []byte("h2d"))
	tampered := append([]byte(nil), raw...)
	tampered[i] ^= 1
	if _, _, err := VerifyJSONL(bytes.NewReader(tampered)); err == nil {
		t.Fatal("flipped byte not detected")
	}

	// Truncate the trailer.
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	noTrailer := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	if _, _, err := VerifyJSONL(bytes.NewReader(noTrailer)); err == nil {
		t.Fatal("missing trailer not detected")
	}

	// Truncate tail entries but keep the trailer.
	short := append(bytes.Join(lines[:len(lines)-3], []byte("\n")), '\n')
	short = append(short, lines[len(lines)-1]...)
	if _, _, err := VerifyJSONL(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated entries not detected")
	}

	// Reordering two entries breaks the chain.
	entries := l.Entries()
	entries[2], entries[3] = entries[3], entries[2]
	if _, _, err := Verify(entries); err == nil {
		t.Fatal("reordered entries not detected")
	}
}

func TestAuditCapDropsNewEntries(t *testing.T) {
	l := NewLog(4, (&fakeClock{}).now)
	for i := 0; i < 10; i++ {
		l.Append(obsv.EvRogue, "", "drop")
	}
	if l.Len() != 4 || l.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
	if _, _, err := Verify(l.Entries()); err != nil {
		t.Fatalf("capped chain must stay verifiable: %v", err)
	}
	var buf bytes.Buffer
	l.WriteJSONL(&buf)
	if _, _, err := VerifyJSONL(&buf); err != nil {
		t.Fatalf("capped JSONL must verify: %v", err)
	}
}

func TestMeterSummaryMatchesSoakMath(t *testing.T) {
	m := NewMeter(3)
	// Tenant 0: 4 completions with 10..40 ms waits; tenant 1: 3 with
	// 100 ms; tenant 2: 3 near-zero waits.
	for i := int64(1); i <= 4; i++ {
		m.Offered()
		m.Completed(0, i*10_000_000, i*20_000_000)
	}
	for i := 0; i < 3; i++ {
		m.Offered()
		m.Completed(1, 100_000_000, 150_000_000)
	}
	for i := 0; i < 3; i++ {
		m.Offered()
		m.Completed(2, 1, 2)
	}
	m.Offered()
	m.Rejected()
	m.Offered()
	m.Failed()

	s := m.Summary()
	if s.Offered != 12 || s.Completed != 10 || s.Rejected != 1 || s.Failed != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if want := float64(10) / 12; s.Availability != want {
		t.Fatalf("availability = %v, want %v", s.Availability, want)
	}
	// Sorted waits (ms): ~0 ×3, 10, 20, 30, 40, 100 ×3.
	// percentileMs index (10*50)/100 = 5 → 30 ms; (10*99)/100 = 9 → 100 ms.
	if s.QueueWaitP50Ms != 30 || s.QueueWaitP99Ms != 100 {
		t.Fatalf("p50=%v p99=%v", s.QueueWaitP50Ms, s.QueueWaitP99Ms)
	}
	// Tenant means (ms): 25, 100, ~0 → sorted median 25, max 100;
	// spread = (100+1)/(25+1) with the 1 ms floor on both.
	if want := 101.0 / 26.0; s.FairnessSpread != want {
		t.Fatalf("fairness = %v, want %v", s.FairnessSpread, want)
	}

	// Empty meter: availability 1 by definition.
	if s := NewMeter(0).Summary(); s.Availability != 1 || s.FairnessSpread != 1 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestMonitorBurnAlerts(t *testing.T) {
	clk := &fakeClock{t: int64(time.Hour)}
	hub := obsv.NewHub()
	log := NewLog(0, clk.now)
	hub.SetEventSink(log.Sink())
	m := NewMonitor(MonitorConfig{Objective: 0.999, Now: clk.now}, hub)

	// Healthy traffic: no alerts.
	for i := 0; i < 100; i++ {
		m.RecordOutcome(true, int64(time.Millisecond))
		clk.tick(time.Second)
	}
	if st := m.Check(); len(st.ActiveAlerts) != 0 {
		t.Fatalf("healthy traffic alerted: %v", st.ActiveAlerts)
	}

	// Total outage: burn = 1/(1-0.999) = 1000 in every window.
	for i := 0; i < 100; i++ {
		m.RecordOutcome(false, 0)
		clk.tick(time.Second)
	}
	st := m.Check()
	if !hasAlert(st, AlertPage) || !hasAlert(st, AlertTicket) {
		t.Fatalf("outage did not page: %+v", st)
	}
	if hub.Reg().Gauge(obsv.Name("slo.alert", "name", AlertPage)).Value() != 1 {
		t.Fatal("alert gauge not set")
	}
	kinds := log.CountKinds()
	if kinds[obsv.EvSLOAlert] == 0 {
		t.Fatal("no slo-alert audit event")
	}

	// Recovery: a full window of successes clears the alerts.
	for i := 0; i < 4000; i++ {
		m.RecordOutcome(true, int64(time.Millisecond))
		clk.tick(time.Second)
	}
	st = m.Check()
	if len(st.ActiveAlerts) != 0 {
		t.Fatalf("alerts did not clear: %v", st.ActiveAlerts)
	}
	if log.CountKinds()[obsv.EvSLOClear] == 0 {
		t.Fatal("no slo-clear audit event")
	}
}

func TestMonitorP99Alert(t *testing.T) {
	clk := &fakeClock{t: int64(time.Hour)}
	m := NewMonitor(MonitorConfig{P99BudgetNs: int64(100 * time.Millisecond), Now: clk.now}, nil)
	for i := 0; i < 50; i++ {
		m.RecordOutcome(true, int64(time.Second)) // way over budget
		clk.tick(time.Second)
	}
	if st := m.Check(); !hasAlert(st, AlertP99) {
		t.Fatalf("p99 breach did not alert: %+v", st)
	}
	// Vacuity guard: a handful of slow samples must not page.
	m2 := NewMonitor(MonitorConfig{P99BudgetNs: int64(100 * time.Millisecond), Now: clk.now}, nil)
	for i := 0; i < 5; i++ {
		m2.RecordOutcome(true, int64(time.Second))
	}
	if st := m2.Check(); hasAlert(st, AlertP99) {
		t.Fatal("below MinSamples yet alerted")
	}
}

// TestMonitorSubMillisecondP99 pins the p99 export at microsecond
// resolution: a tail entirely below one millisecond must surface as a
// non-zero gauge and still trip a sub-millisecond budget. The old
// int64(P99WaitMs) gauge truncated this whole regime to a flat 0 ms.
func TestMonitorSubMillisecondP99(t *testing.T) {
	clk := &fakeClock{t: int64(time.Hour)}
	hub := obsv.NewHub()
	m := NewMonitor(MonitorConfig{P99BudgetNs: int64(200 * time.Microsecond), Now: clk.now}, hub)
	for i := 0; i < 100; i++ {
		m.RecordOutcome(true, int64(500*time.Microsecond))
		clk.tick(time.Second)
	}
	st := m.Check()
	if !hasAlert(st, AlertP99) {
		t.Fatalf("sub-millisecond budget breach did not alert: %+v", st)
	}
	// All samples land in the (0, 1ms] bucket; interpolation puts the
	// p99 at 990 µs exactly.
	w5 := st.Windows[0]
	if w5.P99WaitUs != 990 {
		t.Fatalf("p99_wait_us = %d, want 990", w5.P99WaitUs)
	}
	if g := hub.Reg().Gauge(obsv.Name("slo.p99_wait_us", "window", "5m")).Value(); g != 990 {
		t.Fatalf("slo.p99_wait_us gauge = %d, want 990 (ms truncation would read 0)", g)
	}
}

func hasAlert(st Status, name string) bool {
	for _, a := range st.ActiveAlerts {
		if a == name {
			return true
		}
	}
	return false
}

func TestRenderPromAndFilter(t *testing.T) {
	r := obsv.NewRegistry()
	r.Counter(obsv.Name("sched.admitted", "tenant", "0")).Add(5)
	r.Counter(obsv.Name("sched.admitted", "tenant", "1")).Add(7)
	r.Counter("task.runs").Inc()
	r.Gauge(obsv.Name("sched.queue_depth", "tenant", "0")).Set(2)
	h := r.Histogram(obsv.Name("sched.queue_wait_ns", "tenant", "0"), obsv.WaitBuckets())
	h.ObserveExemplar(2_000_000, 41)
	h.Observe(7_000_000)

	text := RenderProm(r.Snapshot())
	for _, want := range []string{
		`ccai_sched_admitted{tenant="0"} 5`,
		`ccai_sched_admitted{tenant="1"} 7`,
		`ccai_task_runs 1`,
		`ccai_sched_queue_depth{tenant="0"} 2`,
		`ccai_sched_queue_wait_ns_bucket{tenant="0",le="5000000"} 1 # {task="41"} 2000000`,
		`ccai_sched_queue_wait_ns_bucket{tenant="0",le="+Inf"} 2`,
		`ccai_sched_queue_wait_ns_count{tenant="0"} 2`,
		`ccai_sched_queue_wait_ns{tenant="0",quantile="0.5"}`,
		`ccai_sched_queue_wait_ns{tenant="0",quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("RenderProm missing %q:\n%s", want, text)
		}
	}

	t0 := FilterSnapshot(r.Snapshot(), "0")
	out := RenderProm(t0)
	if strings.Contains(out, `tenant="1"`) {
		t.Fatalf("tenant-0 view leaks tenant 1:\n%s", out)
	}
	if strings.Contains(out, "task_runs") {
		t.Fatalf("tenant view leaks global series:\n%s", out)
	}
	if !strings.Contains(out, `ccai_sched_admitted{tenant="0"} 5`) {
		t.Fatalf("tenant view missing own series:\n%s", out)
	}
}

func TestServerAuthMatrix(t *testing.T) {
	hub := obsv.NewHub()
	hub.Reg().Counter(obsv.Name("sched.admitted", "tenant", "0")).Inc()
	hub.Reg().Counter(obsv.Name("sched.admitted", "tenant", "1")).Inc()
	p, err := Attach(hub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tok0 := p.RegisterTenant("0")
	tok1 := p.RegisterTenant("1")
	admin := p.AdminToken()

	hub.Event(obsv.EvAttest, "0", "gen=1")

	get := func(path, token string) (int, string) {
		req, _ := http.NewRequest("GET", p.URL()+path, nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	for _, tc := range []struct {
		path, token string
		want        int
	}{
		{"/healthz", "", 200},
		{"/metrics", admin, 200},
		{"/metrics", "", 401},
		{"/metrics", tok0, 401}, // tenant tokens never open global views
		{"/metrics.json", admin, 200},
		{"/slo", admin, 200},
		{"/audit", admin, 200},
		{"/audit", tok0, 401},
		{"/tenant/0/metrics", tok0, 200},
		{"/tenant/0/metrics", admin, 200},
		{"/tenant/0/metrics", tok1, 403}, // authenticated, wrong scope
		{"/tenant/0/metrics", "garbage", 401},
		{"/tenant/0/metrics", "", 401},
		{"/tenant/9/metrics", tok0, 403}, // unregistered tenant, valid token
		{"/tenant/0/metrics.json", tok0, 200},
	} {
		if got, _ := get(tc.path, tc.token); got != tc.want {
			t.Errorf("GET %s token=%q: status %d, want %d", tc.path, tc.token, got, tc.want)
		}
	}

	// Tenant 0's view never contains tenant 1's series.
	_, body := get("/tenant/0/metrics", tok0)
	if strings.Contains(body, `tenant="1"`) {
		t.Fatalf("cross-tenant leak:\n%s", body)
	}

	// The audit endpoint round-trips through the verifier.
	_, audit := get("/audit", admin)
	n, _, err := VerifyJSONL(strings.NewReader(audit))
	if err != nil || n == 0 {
		t.Fatalf("served audit log does not verify: n=%d err=%v", n, err)
	}

	// Health is JSON and carries no metric series.
	_, health := get("/healthz", "")
	var doc map[string]any
	if err := json.Unmarshal([]byte(health), &doc); err != nil || doc["status"] != "ok" {
		t.Fatalf("health = %q, err %v", health, err)
	}
}
