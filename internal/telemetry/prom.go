package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"ccai/internal/obsv"
)

// splitName parses an obsv metric name ("base{k=v,k2=v2}") into the
// base and its label pairs.
func splitName(name string) (base string, labels [][2]string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, nil
	}
	base = name[:i]
	body := strings.TrimSuffix(name[i+1:], "}")
	for _, pair := range strings.Split(body, ",") {
		if k, v, ok := strings.Cut(pair, "="); ok {
			labels = append(labels, [2]string{k, v})
		}
	}
	return base, labels
}

// promName renders an obsv base name as a Prometheus metric name.
func promName(base string) string {
	return "ccai_" + strings.NewReplacer(".", "_", "-", "_").Replace(base)
}

// promLabels renders label pairs (plus optional extras) in Prometheus
// form: {k="v",le="100"}. Empty input renders to the empty string.
func promLabels(labels [][2]string, extra ...[2]string) string {
	all := append(append([][2]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[0], kv[1])
	}
	b.WriteByte('}')
	return b.String()
}

// seriesTenant extracts the tenant label of an obsv metric name, or ""
// when the series is not tenant-scoped.
func seriesTenant(name string) string {
	_, labels := splitName(name)
	for _, kv := range labels {
		if kv[0] == "tenant" {
			return kv[1]
		}
	}
	return ""
}

// FilterSnapshot returns the subset of snap belonging to one tenant:
// exactly the series carrying tenant=<label>. Everything else —
// other tenants' series AND global series — is excluded, so a
// tenant-scoped view can never leak another tenant's existence.
func FilterSnapshot(snap obsv.Snapshot, tenant string) obsv.Snapshot {
	out := obsv.Snapshot{Counters: make(map[string]uint64), Gauges: make(map[string]int64)}
	for name, v := range snap.Counters {
		if seriesTenant(name) == tenant {
			out.Counters[name] = v
		}
	}
	for name, v := range snap.Gauges {
		if seriesTenant(name) == tenant {
			out.Gauges[name] = v
		}
	}
	for _, h := range snap.Hists {
		if seriesTenant(h.Name) == tenant {
			out.Hists = append(out.Hists, h)
		}
	}
	return out
}

// RenderProm renders a snapshot in Prometheus text exposition format.
// Histograms render cumulative le-buckets with OpenMetrics-style
// exemplars (`# {task="41"} 9`) linking tail buckets to the span/task
// that produced them, plus summary-style p50/p99 quantile series from
// bucket interpolation.
func RenderProm(snap obsv.Snapshot) string {
	var b strings.Builder

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitName(name)
		fmt.Fprintf(&b, "%s%s %d\n", promName(base), promLabels(labels), snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitName(name)
		fmt.Fprintf(&b, "%s%s %d\n", promName(base), promLabels(labels), snap.Gauges[name])
	}

	for _, h := range snap.Hists {
		base, labels := splitName(h.Name)
		pn := promName(base)
		ex := make(map[int]obsv.Exemplar, len(h.Exemplars))
		for _, e := range h.Exemplars {
			ex[e.Bucket] = e
		}
		var cum uint64
		for i, n := range h.Buckets {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d", pn, promLabels(labels, [2]string{"le", le}), cum)
			if e, ok := ex[i]; ok {
				fmt.Fprintf(&b, " # {task=%q} %d", fmt.Sprintf("%d", e.Ref), e.Value)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_sum%s %d\n", pn, promLabels(labels), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", pn, promLabels(labels), h.Count)
		if h.Count > 0 {
			fmt.Fprintf(&b, "%s%s %g\n", pn, promLabels(labels, [2]string{"quantile", "0.5"}), h.Quantile(0.50))
			fmt.Fprintf(&b, "%s%s %g\n", pn, promLabels(labels, [2]string{"quantile", "0.99"}), h.Quantile(0.99))
		}
	}
	return b.String()
}
