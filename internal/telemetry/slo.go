// Package telemetry is the live telemetry plane of the ccAI
// reproduction: an HTTP exposition server over the internal/obsv
// metrics hub, a hash-chained tamper-evident security audit log, and
// always-on rolling-window SLO monitors with multi-window burn-rate
// alerts.
//
// The same confidentiality rule as internal/obsv applies everywhere:
// everything this package stores or serves is metadata — names,
// counters, sizes, reasons — never payload, key, IV or tag bytes, and
// a tenant-scoped view never contains another tenant's series.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ccai/internal/obsv"
)

// PercentileMs picks the p-th percentile of sorted ns samples, as ms.
// (Extracted from internal/soak; the soak scorecard's byte-identical
// determinism contract depends on this exact index arithmetic.)
func PercentileMs(sorted []int64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) * p) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / 1e6
}

// FairnessSpread is the DRR fairness meter: each tenant with enough
// completions contributes its mean queue wait; the spread is the worst
// tenant's mean over the median tenant's, with a 1 ms floor on both so
// near-zero waits cannot explode the ratio. (Extracted from
// internal/soak, same determinism contract.)
func FairnessSpread(waitSums, counts []int64) float64 {
	var means []float64
	for i := range counts {
		if counts[i] >= 3 {
			means = append(means, float64(waitSums[i])/float64(counts[i]))
		}
	}
	if len(means) < 2 {
		return 1
	}
	sort.Float64s(means)
	const floor = 1e6 // 1 ms in ns
	max := means[len(means)-1] + floor
	med := means[len(means)/2] + floor
	return max / med
}

// Meter accumulates one serving run's SLO inputs: offered/served
// outcome counts, queue-wait and end-to-end latency samples, and
// per-tenant wait sums for the fairness spread. It is the soak
// harness's meter lifted out of internal/soak so live serving and the
// soak share one implementation. Safe for concurrent use.
type Meter struct {
	mu                                             sync.Mutex
	offered, completed, rejected, failed, canceled int64
	queueWaits, e2es                               []int64 // ns, completion order
	perTenantWait                                  []int64
	perTenantN                                     []int64
}

// NewMeter builds a meter tracking the given tenant count.
func NewMeter(tenants int) *Meter {
	return &Meter{
		perTenantWait: make([]int64, tenants),
		perTenantN:    make([]int64, tenants),
	}
}

// Offered books one admitted-or-shed arrival.
func (m *Meter) Offered() {
	m.mu.Lock()
	m.offered++
	m.mu.Unlock()
}

// Rejected books one shed arrival (admission or queue-full).
func (m *Meter) Rejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// Failed books one request that entered service and errored.
func (m *Meter) Failed() {
	m.mu.Lock()
	m.failed++
	m.mu.Unlock()
}

// Canceled books one request canceled before or during service.
func (m *Meter) Canceled() {
	m.mu.Lock()
	m.canceled++
	m.mu.Unlock()
}

// Completed books one successful request: its queue wait, its
// end-to-end latency, and the tenant it served (out-of-range tenants
// still count toward totals but not fairness).
func (m *Meter) Completed(tenant int, waitNs, e2eNs int64) {
	m.mu.Lock()
	m.completed++
	m.queueWaits = append(m.queueWaits, waitNs)
	m.e2es = append(m.e2es, e2eNs)
	if tenant >= 0 && tenant < len(m.perTenantWait) {
		m.perTenantWait[tenant] += waitNs
		m.perTenantN[tenant]++
	}
	m.mu.Unlock()
}

// Summary is the meter's derived SLO verdict.
type Summary struct {
	Offered, Completed, Rejected, Failed, Canceled int64
	Availability                                   float64
	QueueWaitP50Ms, QueueWaitP99Ms                 float64
	E2EP50Ms, E2EP99Ms                             float64
	FairnessSpread                                 float64
}

// Summary computes availability, wait/e2e percentiles and the fairness
// spread exactly as the soak scorecard did before extraction.
func (m *Meter) Summary() Summary {
	m.mu.Lock()
	qw := append([]int64(nil), m.queueWaits...)
	ee := append([]int64(nil), m.e2es...)
	s := Summary{
		Offered: m.offered, Completed: m.completed, Rejected: m.rejected,
		Failed: m.failed, Canceled: m.canceled,
	}
	waitSums := append([]int64(nil), m.perTenantWait...)
	counts := append([]int64(nil), m.perTenantN...)
	m.mu.Unlock()

	sort.Slice(qw, func(i, j int) bool { return qw[i] < qw[j] })
	sort.Slice(ee, func(i, j int) bool { return ee[i] < ee[j] })
	s.QueueWaitP50Ms = PercentileMs(qw, 50)
	s.QueueWaitP99Ms = PercentileMs(qw, 99)
	s.E2EP50Ms = PercentileMs(ee, 50)
	s.E2EP99Ms = PercentileMs(ee, 99)
	s.FairnessSpread = FairnessSpread(waitSums, counts)
	if s.Offered > 0 {
		s.Availability = float64(s.Completed) / float64(s.Offered)
	} else {
		s.Availability = 1
	}
	return s
}

// MonitorConfig shapes the rolling-window SLO monitor.
type MonitorConfig struct {
	// Objective is the availability objective (default 0.999). Burn
	// rate is (1-availability)/(1-objective): burn 1 consumes the
	// error budget exactly at the sustainable rate.
	Objective float64
	// P99BudgetNs is the rolling queue-wait p99 budget (default the
	// soak harness's 500 ms).
	P99BudgetNs int64
	// Grain is the ring bucket width (default 10 s); Window is the
	// longest lookback (default 1 h).
	Grain, Window time.Duration
	// MinSamples guards burn alerts against vacuity: a window with
	// fewer outcomes than this never alerts (default 20).
	MinSamples uint64
	// Now overrides the clock (ns); tests inject a virtual one.
	Now func() int64
}

func (c *MonitorConfig) fill() {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if c.P99BudgetNs <= 0 {
		c.P99BudgetNs = 500_000_000
	}
	if c.Grain <= 0 {
		c.Grain = 10 * time.Second
	}
	if c.Window <= 0 {
		c.Window = time.Hour
	}
	if c.Window < c.Grain {
		c.Window = c.Grain
	}
	if c.MinSamples == 0 {
		c.MinSamples = 20
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
}

// monBucket is one ring slot: outcome counts, a fixed queue-wait
// histogram (WaitBuckets bounds), and per-kind security-event counts.
type monBucket struct {
	good, bad uint64
	waits     []uint64
	events    map[string]uint64
}

// Monitor is the always-on production version of the soak SLO meters:
// a ring of time buckets over which it computes windowed availability,
// multi-window burn rates, and a rolling queue-wait p99, raising and
// clearing alerts on transitions. The multi-window rules are the SRE
// classics: page when both the 5 m and 1 h burn exceed 14.4 (budget
// gone in ~2 days), ticket when both the 30 m and 1 h burn exceed 6.
type Monitor struct {
	cfg    MonitorConfig
	bounds []int64

	mu     sync.Mutex
	ring   []monBucket
	slot   int64 // absolute slot index of ring position lastIdx
	active map[string]bool

	hub *obsv.Hub
}

// Alert names surfaced as metrics and audit events.
const (
	AlertPage   = "availability-page"
	AlertTicket = "availability-ticket"
	AlertP99    = "queue-wait-p99"
)

// NewMonitor builds a monitor publishing alerts through hub (nil is
// allowed: the monitor still tracks, it just cannot publish).
func NewMonitor(cfg MonitorConfig, hub *obsv.Hub) *Monitor {
	cfg.fill()
	n := int(cfg.Window / cfg.Grain)
	if n < 1 {
		n = 1
	}
	m := &Monitor{
		cfg:    cfg,
		bounds: obsv.WaitBuckets(),
		ring:   make([]monBucket, n),
		slot:   -1,
		active: make(map[string]bool),
		hub:    hub,
	}
	for i := range m.ring {
		m.ring[i].waits = make([]uint64, len(m.bounds)+1)
		m.ring[i].events = make(map[string]uint64)
	}
	return m
}

// advanceLocked rotates the ring to the slot containing now, zeroing
// every slot skipped since the last sample.
func (m *Monitor) advanceLocked(now int64) int {
	cur := now / int64(m.cfg.Grain)
	if m.slot < 0 {
		m.slot = cur
	}
	for m.slot < cur {
		m.slot++
		b := &m.ring[int(m.slot%int64(len(m.ring)))]
		b.good, b.bad = 0, 0
		for i := range b.waits {
			b.waits[i] = 0
		}
		for k := range b.events {
			delete(b.events, k)
		}
	}
	return int(m.slot % int64(len(m.ring)))
}

// RecordOutcome books one served request: whether it counted toward
// availability and (for good outcomes) its queue wait in ns.
func (m *Monitor) RecordOutcome(ok bool, waitNs int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	i := m.advanceLocked(m.cfg.Now())
	b := &m.ring[i]
	if ok {
		b.good++
		j := sort.Search(len(m.bounds), func(j int) bool { return waitNs <= m.bounds[j] })
		b.waits[j]++
	} else {
		b.bad++
	}
	m.mu.Unlock()
}

// RecordEvent books one security event (rekey, fail-closed, ...) into
// the current window; the audit sink feeds it so the scrape page shows
// rolling security-lifecycle rates next to the latency SLOs.
func (m *Monitor) RecordEvent(kind string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	i := m.advanceLocked(m.cfg.Now())
	m.ring[i].events[kind]++
	m.mu.Unlock()
}

// windowLocked sums the last d worth of buckets (including current).
func (m *Monitor) windowLocked(d time.Duration) (good, bad uint64, waits []uint64, events map[string]uint64) {
	n := int(d / m.cfg.Grain)
	if n < 1 {
		n = 1
	}
	if n > len(m.ring) {
		n = len(m.ring)
	}
	waits = make([]uint64, len(m.bounds)+1)
	events = make(map[string]uint64)
	if m.slot < 0 {
		return
	}
	for k := 0; k < n && int64(k) <= m.slot; k++ {
		b := &m.ring[int((m.slot-int64(k))%int64(len(m.ring)))]
		good += b.good
		bad += b.bad
		for i, w := range b.waits {
			waits[i] += w
		}
		for ev, c := range b.events {
			events[ev] += c
		}
	}
	return
}

// WindowStatus is one lookback window's derived SLO state. The p99
// queue wait is exported twice: the float milliseconds for humans and
// an integer microsecond field for gauges and tooling — integer
// milliseconds truncated every sub-millisecond tail to 0 and could
// never trip a small budget.
type WindowStatus struct {
	Window       string  `json:"window"`
	Samples      uint64  `json:"samples"`
	Availability float64 `json:"availability"`
	BurnRate     float64 `json:"burn_rate"`
	P99WaitMs    float64 `json:"p99_wait_ms"`
	P99WaitUs    int64   `json:"p99_wait_us"`
}

// Status is the monitor's full derived state, served on /slo.
type Status struct {
	Objective    float64           `json:"objective"`
	P99BudgetMs  float64           `json:"p99_budget_ms"`
	Windows      []WindowStatus    `json:"windows"`
	ActiveAlerts []string          `json:"active_alerts"`
	WindowEvents map[string]uint64 `json:"window_events"`
}

func (m *Monitor) windowStatusLocked(label string, d time.Duration) WindowStatus {
	good, bad, waits, _ := m.windowLocked(d)
	ws := WindowStatus{Window: label, Samples: good + bad, Availability: 1}
	if ws.Samples > 0 {
		ws.Availability = float64(good) / float64(ws.Samples)
		ws.BurnRate = (1 - ws.Availability) / (1 - m.cfg.Objective)
	}
	var count uint64
	for _, w := range waits {
		count += w
	}
	hv := obsv.HistValue{Count: count, Bounds: m.bounds, Buckets: waits}
	p99ns := hv.Quantile(0.99)
	ws.P99WaitMs = p99ns / 1e6
	ws.P99WaitUs = int64(p99ns / 1e3)
	return ws
}

// Check re-evaluates every alert rule, publishes burn gauges, and
// emits slo-alert / slo-clear audit events on transitions. Scrape
// handlers call it so the page is never stale.
func (m *Monitor) Check() Status {
	if m == nil {
		return Status{}
	}
	m.mu.Lock()
	m.advanceLocked(m.cfg.Now())
	w5 := m.windowStatusLocked("5m", 5*time.Minute)
	w30 := m.windowStatusLocked("30m", 30*time.Minute)
	w60 := m.windowStatusLocked("1h", time.Hour)
	_, _, _, events := m.windowLocked(time.Hour)

	st := Status{
		Objective:    m.cfg.Objective,
		P99BudgetMs:  float64(m.cfg.P99BudgetNs) / 1e6,
		Windows:      []WindowStatus{w5, w30, w60},
		WindowEvents: events,
	}

	enough := func(ws WindowStatus) bool { return ws.Samples >= m.cfg.MinSamples }
	fire := map[string]bool{
		AlertPage:   enough(w5) && w5.BurnRate >= 14.4 && w60.BurnRate >= 14.4,
		AlertTicket: enough(w30) && w30.BurnRate >= 6 && w60.BurnRate >= 6,
		AlertP99:    enough(w5) && w5.P99WaitMs > st.P99BudgetMs,
	}
	type transition struct {
		name   string
		firing bool
		detail string
	}
	var trans []transition
	for _, name := range []string{AlertPage, AlertTicket, AlertP99} {
		if fire[name] != m.active[name] {
			m.active[name] = fire[name]
			trans = append(trans, transition{name, fire[name],
				alertDetail(name, w5, w30, w60, st.P99BudgetMs)})
		}
		if fire[name] {
			st.ActiveAlerts = append(st.ActiveAlerts, name)
		}
	}
	m.mu.Unlock()

	if reg := m.hub.Reg(); reg != nil {
		for _, ws := range st.Windows {
			reg.Gauge(obsv.Name("slo.burn_milli", "window", ws.Window)).Set(int64(ws.BurnRate * 1000))
			// Microsecond gauge: int64(P99WaitMs) rounded sub-millisecond
			// tails down to a permanent 0.
			reg.Gauge(obsv.Name("slo.p99_wait_us", "window", ws.Window)).Set(ws.P99WaitUs)
		}
		for _, name := range []string{AlertPage, AlertTicket, AlertP99} {
			v := int64(0)
			if fire[name] {
				v = 1
			}
			reg.Gauge(obsv.Name("slo.alert", "name", name)).Set(v)
		}
	}
	for _, tr := range trans {
		kind := obsv.EvSLOClear
		if tr.firing {
			kind = obsv.EvSLOAlert
		}
		m.hub.Eventf(kind, "", "%s", tr.detail)
	}
	return st
}

func alertDetail(name string, w5, w30, w60 WindowStatus, budgetMs float64) string {
	switch name {
	case AlertPage:
		return fmt.Sprintf("alert=%s burn5m=%.1f burn1h=%.1f", name, w5.BurnRate, w60.BurnRate)
	case AlertTicket:
		return fmt.Sprintf("alert=%s burn30m=%.1f burn1h=%.1f", name, w30.BurnRate, w60.BurnRate)
	default:
		return fmt.Sprintf("alert=%s p99_5m_us=%d budget_ms=%.1f", name, w5.P99WaitUs, budgetMs)
	}
}
