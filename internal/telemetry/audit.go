package telemetry

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"ccai/internal/obsv"
)

// Entry is one security event in the audit chain. Hash covers the
// previous entry's hash plus every field, so any mutation anywhere in
// the log breaks verification from that entry forward; Prev makes the
// break locatable.
type Entry struct {
	Seq    uint64 `json:"seq"`
	T      int64  `json:"t"` // ns since epoch (or virtual, in tests)
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	Detail string `json:"detail,omitempty"`
	Prev   string `json:"prev"`
	Hash   string `json:"hash"`
}

// trailer closes a serialized log: without it, truncating whole tail
// lines would be undetectable (every prefix of a hash chain is itself
// a valid chain).
type trailer struct {
	Trailer bool   `json:"trailer"`
	Count   uint64 `json:"count"`
	Dropped uint64 `json:"dropped"`
	Head    string `json:"head"`
}

// entryHash computes an entry's chain hash: SHA-256 over the previous
// hash and every field, each length-prefixed so field boundaries
// cannot be shifted.
func entryHash(prev []byte, seq uint64, t int64, kind, tenant, detail string) []byte {
	h := sha256.New()
	h.Write(prev)
	var num [8]byte
	binary.BigEndian.PutUint64(num[:], seq)
	h.Write(num[:])
	binary.BigEndian.PutUint64(num[:], uint64(t))
	h.Write(num[:])
	for _, s := range []string{kind, tenant, detail} {
		binary.BigEndian.PutUint64(num[:], uint64(len(s)))
		h.Write(num[:])
		h.Write([]byte(s))
	}
	return h.Sum(nil)
}

// genesis is the chain anchor: 32 zero bytes.
var genesis = make([]byte, sha256.Size)

// Log is the hash-chained security audit log. Appends link each entry
// to its predecessor; Head() is the external anchor an operator notes
// down — republishing a mutated log requires recomputing every hash
// after the mutation, which changes the head. A nil *Log ignores
// appends. The log is bounded: past Cap, new entries are dropped and
// counted (the chain from genesis stays intact and verifiable).
type Log struct {
	mu      sync.Mutex
	entries []Entry
	head    []byte
	seq     uint64
	dropped uint64
	cap     int
	now     func() int64
}

// DefaultAuditCap bounds the in-memory audit log.
const DefaultAuditCap = 4096

// NewLog builds an audit log holding at most cap entries (<=0 means
// DefaultAuditCap). now overrides the timestamp clock; nil means wall.
func NewLog(cap int, now func() int64) *Log {
	if cap <= 0 {
		cap = DefaultAuditCap
	}
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &Log{head: genesis, cap: cap, now: now}
}

// Append records one event and extends the chain.
func (l *Log) Append(kind, tenant, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) >= l.cap {
		l.dropped++
		return
	}
	seq := l.seq
	t := l.now()
	hash := entryHash(l.head, seq, t, kind, tenant, detail)
	l.entries = append(l.entries, Entry{
		Seq: seq, T: t, Kind: kind, Tenant: tenant, Detail: detail,
		Prev: hex.EncodeToString(l.head), Hash: hex.EncodeToString(hash),
	})
	l.head = hash
	l.seq++
}

// Sink adapts the log to the obsv event stream.
func (l *Log) Sink() obsv.EventSink {
	return func(kind, tenant, detail string) { l.Append(kind, tenant, detail) }
}

// Len reports the number of chained entries.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Dropped reports entries lost to the cap.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Head returns the chain head (count, hex hash) — the anchor to record
// out of band.
func (l *Log) Head() (uint64, string) {
	if l == nil {
		return 0, hex.EncodeToString(genesis)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, hex.EncodeToString(l.head)
}

// Entries returns a copy of the chained entries.
func (l *Log) Entries() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// CountKinds tallies entries by kind (for smoke assertions).
func (l *Log) CountKinds() map[string]uint64 {
	out := make(map[string]uint64)
	for _, e := range l.Entries() {
		out[e.Kind]++
	}
	return out
}

// WriteJSONL serializes the log: one JSON entry per line, closed by a
// trailer line binding the count and head hash.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	entries := append([]Entry(nil), l.entries...)
	tr := trailer{Trailer: true, Count: l.seq, Dropped: l.dropped,
		Head: hex.EncodeToString(l.head)}
	l.mu.Unlock()

	enc := json.NewEncoder(w)
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return err
		}
	}
	return enc.Encode(&tr)
}

// Verify re-walks an in-memory chain from genesis, recomputing every
// hash. It reports the entry count and head hash, or the first break.
func Verify(entries []Entry) (uint64, string, error) {
	prev := genesis
	for i := range entries {
		e := &entries[i]
		if e.Seq != uint64(i) {
			return 0, "", fmt.Errorf("audit entry %d: seq %d out of order", i, e.Seq)
		}
		if e.Prev != hex.EncodeToString(prev) {
			return 0, "", fmt.Errorf("audit entry %d: prev-hash link broken", i)
		}
		want := entryHash(prev, e.Seq, e.T, e.Kind, e.Tenant, e.Detail)
		got, err := hex.DecodeString(e.Hash)
		if err != nil || !bytes.Equal(got, want) {
			return 0, "", fmt.Errorf("audit entry %d (%s): hash mismatch — entry mutated", i, e.Kind)
		}
		prev = want
	}
	return uint64(len(entries)), hex.EncodeToString(prev), nil
}

// VerifyJSONL verifies a serialized log: every entry hash, the chain
// links, and the trailer's count and head (so truncation — of tail
// entries or of the trailer itself — is detected, not just mutation).
func VerifyJSONL(r io.Reader) (uint64, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var entries []Entry
	var tr *trailer
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if tr != nil {
			return 0, "", fmt.Errorf("audit line %d: data after trailer", line)
		}
		if bytes.Contains(raw, []byte(`"trailer":true`)) {
			var t trailer
			if err := json.Unmarshal(raw, &t); err != nil {
				return 0, "", fmt.Errorf("audit line %d: bad trailer: %w", line, err)
			}
			tr = &t
			continue
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return 0, "", fmt.Errorf("audit line %d: bad entry: %w", line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return 0, "", err
	}
	if tr == nil {
		return 0, "", fmt.Errorf("audit log has no trailer — truncated")
	}
	count, head, err := Verify(entries)
	if err != nil {
		return 0, "", err
	}
	if tr.Count != count {
		return 0, "", fmt.Errorf("audit trailer count %d != %d entries — truncated", tr.Count, count)
	}
	if tr.Head != head {
		return 0, "", fmt.Errorf("audit trailer head mismatch — log truncated or mutated")
	}
	return count, head, nil
}
