package telemetry

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"ccai/internal/obsv"
)

// Options shapes an attached telemetry plane.
type Options struct {
	// Addr is the listen address; default "127.0.0.1:0" (loopback,
	// ephemeral port) so telemetry is never accidentally public.
	Addr string
	// AdminToken guards the global endpoints; generated when empty
	// (read it back via Plane.AdminToken).
	AdminToken string
	// AuditCap bounds the audit log (<=0 → DefaultAuditCap).
	AuditCap int
	// SLO shapes the rolling monitor.
	SLO MonitorConfig
	// Now overrides the audit timestamp clock (tests).
	Now func() int64
}

// Plane is one live telemetry plane: HTTP server + audit log + SLO
// monitor, attached to an obsv hub as its event sink.
type Plane struct {
	hub     *obsv.Hub
	Audit   *Log
	Monitor *Monitor

	admin string

	mu      sync.Mutex
	tenants map[string]string // tenant label -> bearer token

	srv *http.Server
	lis net.Listener
}

// ErrNoHub is returned when attaching telemetry to a platform whose
// observability is off: the plane is a view over the obsv hub and has
// nothing to serve without one.
var ErrNoHub = errors.New("telemetry: observability is off (no obsv hub)")

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// Attach builds the plane, installs its audit log + monitor as the
// hub's event sink, and starts serving. The caller owns Close.
func Attach(hub *obsv.Hub, opts Options) (*Plane, error) {
	if hub == nil {
		return nil, ErrNoHub
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.AdminToken == "" {
		opts.AdminToken = newToken()
	}
	p := &Plane{
		hub:     hub,
		Audit:   NewLog(opts.AuditCap, opts.Now),
		Monitor: NewMonitor(opts.SLO, hub),
		admin:   opts.AdminToken,
		tenants: make(map[string]string),
	}

	// One sink fans into both consumers: the tamper-evident record and
	// the rolling security-event rates on the scrape page.
	hub.SetEventSink(func(kind, tenant, detail string) {
		p.Audit.Append(kind, tenant, detail)
		p.Monitor.RecordEvent(kind)
	})

	lis, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", opts.Addr, err)
	}
	p.lis = lis

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", p.handleHealth)
	mux.HandleFunc("GET /metrics", p.adminOnly(p.handleMetrics))
	mux.HandleFunc("GET /metrics.json", p.adminOnly(p.handleMetricsJSON))
	mux.HandleFunc("GET /slo", p.adminOnly(p.handleSLO))
	mux.HandleFunc("GET /audit", p.adminOnly(p.handleAudit))
	mux.HandleFunc("GET /tenant/{label}/metrics", p.tenantScoped(p.handleTenantMetrics))
	mux.HandleFunc("GET /tenant/{label}/metrics.json", p.tenantScoped(p.handleTenantMetricsJSON))

	p.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go p.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return p, nil
}

// Close detaches the sink and stops the server.
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	p.hub.SetEventSink(nil)
	if p.srv != nil {
		return p.srv.Close()
	}
	return nil
}

// Addr reports the bound listen address (host:port).
func (p *Plane) Addr() string {
	if p == nil || p.lis == nil {
		return ""
	}
	return p.lis.Addr().String()
}

// URL reports the base URL of the plane.
func (p *Plane) URL() string { return "http://" + p.Addr() }

// AdminToken returns the bearer token guarding the global endpoints.
func (p *Plane) AdminToken() string {
	if p == nil {
		return ""
	}
	return p.admin
}

// RegisterTenant mints (or returns the existing) bearer token scoping
// the tenant's per-tenant endpoints. Labels follow the scheduler's
// tenant labels ("0", "1", ...).
func (p *Plane) RegisterTenant(label string) string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	tok, ok := p.tenants[label]
	if !ok {
		tok = newToken()
		p.tenants[label] = tok
	}
	return tok
}

// TenantToken reports the tenant's token ("" when unregistered).
func (p *Plane) TenantToken(label string) string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tenants[label]
}

// bearer extracts the request's bearer token.
func bearer(r *http.Request) string {
	h := r.Header.Get("Authorization")
	if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
		return tok
	}
	return ""
}

func tokenEq(a, b string) bool {
	return a != "" && subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1
}

// isAdmin reports whether the request carries the admin token.
func (p *Plane) isAdmin(r *http.Request) bool { return tokenEq(bearer(r), p.admin) }

// adminOnly guards global endpoints: they expose every tenant's
// series, so only the platform operator may read them.
func (p *Plane) adminOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !p.isAdmin(r) {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h(w, r)
	}
}

// tenantScoped guards per-tenant endpoints: the admin token or the
// exact tenant's token passes; another tenant's valid token is 403
// (authenticated, wrong scope); anything else is 401.
func (p *Plane) tenantScoped(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		label := r.PathValue("label")
		tok := bearer(r)
		if p.isAdmin(r) {
			h(w, r)
			return
		}
		p.mu.Lock()
		want, registered := p.tenants[label]
		var owner string
		for l, t := range p.tenants {
			if tokenEq(tok, t) {
				owner = l
				break
			}
		}
		p.mu.Unlock()
		switch {
		case registered && tokenEq(tok, want):
			h(w, r)
		case owner != "": // someone else's valid token
			http.Error(w, "forbidden", http.StatusForbidden)
		default:
			http.Error(w, "unauthorized", http.StatusUnauthorized)
		}
	}
}

// snapshot refreshes the SLO gauges, then snapshots the registry so
// the scrape includes up-to-date burn rates.
func (p *Plane) snapshot() obsv.Snapshot {
	p.Monitor.Check()
	return p.hub.Reg().Snapshot()
}

func (p *Plane) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := p.Monitor.Check()
	count, head := p.Audit.Head()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"status":       "ok",
		"activeAlerts": st.ActiveAlerts,
		"audit":        map[string]any{"count": count, "head": head},
	})
}

func (p *Plane) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, RenderProm(p.snapshot()))
}

func (p *Plane) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p.snapshot()) //nolint:errcheck
}

func (p *Plane) handleSLO(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p.Monitor.Check()) //nolint:errcheck
}

func (p *Plane) handleAudit(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	p.Audit.WriteJSONL(w) //nolint:errcheck
}

func (p *Plane) handleTenantMetrics(w http.ResponseWriter, r *http.Request) {
	snap := FilterSnapshot(p.snapshot(), r.PathValue("label"))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, RenderProm(snap))
}

func (p *Plane) handleTenantMetricsJSON(w http.ResponseWriter, r *http.Request) {
	snap := FilterSnapshot(p.snapshot(), r.PathValue("label"))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap) //nolint:errcheck
}
