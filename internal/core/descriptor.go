package core

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Dir is a transfer direction relative to the host.
type Dir uint8

const (
	// DirH2D regions are read by the device (inputs, weights, commands).
	DirH2D Dir = iota
	// DirD2H regions are written by the device (results).
	DirD2H
)

func (d Dir) String() string {
	if d == DirH2D {
		return "H2D"
	}
	return "D2H"
}

// Descriptor registers one protected transfer region with the PCIe-SC:
// a span of host bounce-buffer memory, the security class applied to
// device accesses inside it, and the cryptographic bookkeeping the
// Packet Handlers need. The Adaptor uploads descriptors sealed under
// the config stream, so the untrusted host cannot forge or redirect
// them.
type Descriptor struct {
	ID    uint32
	Dir   Dir
	Class Action // ActionWriteReadProtect (A2) or ActionWriteProtect (A3)
	Base  uint64
	Len   uint64
	// TagBase is where the SC deposits tag records for D2H regions.
	TagBase uint64
	// ChunkSize is the protection granularity: one IV counter / one MAC
	// record per chunk. Data regions use the TLP payload size; command
	// rings use their entry size.
	ChunkSize uint32
	// FirstCounter is the IV counter of chunk 0 for A2 H2D regions
	// (the Adaptor sealed them with consecutive counters).
	FirstCounter uint32
	// Epoch pins the key epoch the region was sealed under.
	Epoch uint32
}

// DescriptorSize is the serialized descriptor length.
const DescriptorSize = 40

// Marshal encodes the descriptor for sealed upload.
func (d Descriptor) Marshal() []byte {
	buf := make([]byte, DescriptorSize)
	binary.LittleEndian.PutUint32(buf[0:], d.ID)
	buf[4] = uint8(d.Dir)
	buf[5] = uint8(d.Class)
	binary.LittleEndian.PutUint64(buf[8:], d.Base)
	binary.LittleEndian.PutUint64(buf[16:], d.Len)
	binary.LittleEndian.PutUint64(buf[24:], d.TagBase)
	binary.LittleEndian.PutUint32(buf[32:], d.ChunkSize)
	binary.LittleEndian.PutUint16(buf[36:], uint16(d.FirstCounter))
	binary.LittleEndian.PutUint16(buf[38:], uint16(d.FirstCounter>>16))
	return buf
}

// UnmarshalDescriptor decodes a sealed-upload payload.
func UnmarshalDescriptor(buf []byte) (Descriptor, error) {
	if len(buf) < DescriptorSize {
		return Descriptor{}, fmt.Errorf("core: descriptor blob too short (%d)", len(buf))
	}
	d := Descriptor{
		ID:        binary.LittleEndian.Uint32(buf[0:]),
		Dir:       Dir(buf[4]),
		Class:     Action(buf[5]),
		Base:      binary.LittleEndian.Uint64(buf[8:]),
		Len:       binary.LittleEndian.Uint64(buf[16:]),
		TagBase:   binary.LittleEndian.Uint64(buf[24:]),
		ChunkSize: binary.LittleEndian.Uint32(buf[32:]),
	}
	d.FirstCounter = uint32(binary.LittleEndian.Uint16(buf[36:])) |
		uint32(binary.LittleEndian.Uint16(buf[38:]))<<16
	if d.Class != ActionWriteReadProtect && d.Class != ActionWriteProtect {
		return Descriptor{}, fmt.Errorf("core: descriptor %d has non-protect class %v", d.ID, d.Class)
	}
	if d.ChunkSize == 0 || d.Len == 0 {
		return Descriptor{}, fmt.Errorf("core: descriptor %d has empty geometry", d.ID)
	}
	return d, nil
}

// Contains reports whether addr falls in the region.
func (d Descriptor) Contains(addr uint64) bool {
	return addr >= d.Base && addr < d.Base+d.Len
}

// ChunkOf maps an address to its chunk index; the access must not cross
// a chunk boundary.
func (d Descriptor) ChunkOf(addr uint64, n uint32) (uint32, error) {
	off := addr - d.Base
	idx := uint32(off / uint64(d.ChunkSize))
	if (off%uint64(d.ChunkSize))+uint64(n) > uint64(d.ChunkSize) {
		return 0, fmt.Errorf("core: access [%#x,+%d) crosses chunk boundary in region %d", addr, n, d.ID)
	}
	return idx, nil
}

// AAD builds the additional authenticated data binding a chunk to its
// region and position, preventing relocation of valid ciphertext.
func (d Descriptor) AAD(chunk uint32) []byte {
	buf := make([]byte, 8)
	d.PutAAD((*[8]byte)(buf), chunk)
	return buf
}

// PutAAD writes the chunk's AAD into a caller-provided (typically
// stack) array — the allocation-free variant for the datapath.
func (d Descriptor) PutAAD(buf *[8]byte, chunk uint32) {
	binary.LittleEndian.PutUint32(buf[0:], d.ID)
	binary.LittleEndian.PutUint32(buf[4:], chunk)
}

// regionTable resolves device accesses to descriptors. It carries a
// leaf mutex so lookups and mutations are safe under concurrent
// per-tenant pipelines; find returns the descriptor by value, so
// callers hold no reference into the table.
type regionTable struct {
	mu      sync.Mutex
	regions []Descriptor
}

func (rt *regionTable) add(d Descriptor) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, e := range rt.regions {
		if d.Base < e.Base+e.Len && e.Base < d.Base+d.Len {
			return fmt.Errorf("core: region %d overlaps region %d", d.ID, e.ID)
		}
	}
	rt.regions = append(rt.regions, d)
	return nil
}

func (rt *regionTable) find(addr uint64) (Descriptor, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, d := range rt.regions {
		if d.Contains(addr) {
			return d, true
		}
	}
	return Descriptor{}, false
}

func (rt *regionTable) remove(id uint32) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	kept := rt.regions[:0]
	for _, d := range rt.regions {
		if d.ID != id {
			kept = append(kept, d)
		}
	}
	rt.regions = kept
}

func (rt *regionTable) clear() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.regions = nil
}

func (rt *regionTable) count() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.regions)
}
