package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

// "costarring" and "liquid" are a known FNV-1a 32-bit colliding pair;
// the tag wire format identifies streams by that hash alone, so these
// two names are the concrete attack vector the (stream, chunk) keying
// and Activate-time rejection defend against.
const (
	collideA = "costarring"
	collideB = "liquid"
)

func TestStreamHashCollisionPairHolds(t *testing.T) {
	if hashStream(collideA) != hashStream(collideB) {
		t.Fatalf("test vector broken: %q and %q no longer collide", collideA, collideB)
	}
	if collideA == collideB {
		t.Fatal("pair must be distinct names")
	}
}

// TestTagManagerNoCrossMatchOnHashCollision is the regression test for
// hash-keyed pending tags: a record posted for one stream must never
// satisfy a take for a different stream, even when both names share a
// wire hash. On the pre-fix code (pending keyed by chunk/hash alone)
// the second Take succeeded with the foreign record.
func TestTagManagerNoCrossMatchOnHashCollision(t *testing.T) {
	tm := NewTagManager()
	rec := TagRecord{Stream: collideA, Chunk: 7, Epoch: 1}
	rec.Tag[0] = 0xaa
	tm.Enqueue(rec)

	if got, ok := tm.Take(collideB, 7); ok {
		t.Fatalf("tag for %q matched stream %q: %+v", collideA, collideB, got)
	}
	got, ok := tm.Take(collideA, 7)
	if !ok || got.Tag[0] != 0xaa {
		t.Fatalf("legitimate take failed: %+v %v", got, ok)
	}
	if _, ok := tm.Take(collideA, 7); ok {
		t.Fatal("record taken twice")
	}
	if matched, missing := tm.Stats(); matched != 1 || missing != 2 {
		t.Fatalf("stats = (%d matched, %d missing), want (1, 2)", matched, missing)
	}
}

// TestActivateRejectsStreamHashCollision: two live streams must never
// share a wire hash, so the second activation fails closed.
func TestActivateRejectsStreamHashCollision(t *testing.T) {
	ks := secmem.NewKeyStore()
	for _, name := range []string{collideA, collideB} {
		if err := ks.Install(name, secmem.FreshKey(), secmem.FreshNonce()); err != nil {
			t.Fatal(err)
		}
	}
	pm := NewParamsManager(ks)
	if err := pm.Activate(collideA); err != nil {
		t.Fatalf("first activation: %v", err)
	}
	err := pm.Activate(collideB)
	if !errors.Is(err, ErrStreamHashCollision) {
		t.Fatalf("colliding activation: got %v, want ErrStreamHashCollision", err)
	}
	if pm.Active() != 1 {
		t.Fatalf("active streams = %d, want 1", pm.Active())
	}
	// Re-activating the same name is not a collision.
	if err := pm.Activate(collideA); err != nil {
		t.Fatalf("idempotent re-activation: %v", err)
	}
}

// TestActivateRejectsReservedNameCollision: a name colliding with a
// well-known stream is rejected even when that stream is not active.
func TestActivateRejectsReservedNameCollision(t *testing.T) {
	// Find no collision with the constants among our pair — instead
	// verify the reserved names themselves always activate (no false
	// positives) and that the well-known set is internally collision
	// free.
	seen := map[uint32]string{}
	for _, name := range wellKnownStreams {
		if prev, dup := seen[hashStream(name)]; dup {
			t.Fatalf("well-known streams %q and %q collide", prev, name)
		}
		seen[hashStream(name)] = name
	}
	ks := secmem.NewKeyStore()
	pm := NewParamsManager(ks)
	for _, name := range []string{StreamH2D, StreamD2H, StreamConfig} {
		if err := ks.Install(name, secmem.FreshKey(), secmem.FreshNonce()); err != nil {
			t.Fatal(err)
		}
		if err := pm.Activate(name); err != nil {
			t.Fatalf("activate %q: %v", name, err)
		}
	}
}

// TestForwardToDeviceRejectsStaleCompletion is the regression test for
// the stale-completion confidentiality hole: the internal bus delivers
// a completion answering a *different* transaction (a delayed plaintext
// chunk completion originally destined for the device), and the SC must
// fail closed instead of forwarding the foreign payload to the host.
// Pre-fix, forwardToDevice returned whatever the internal segment
// handed back, leaking decrypted chunk data across the trust boundary.
func TestForwardToDeviceRejectsStaleCompletion(t *testing.T) {
	r := newCtlRig(t)
	r.installRule(t, Rule{ID: 1, Mask: MatchKind | MatchRequester, Kind: pcie.MRd, Requester: tvmID, Action: actionToL2})
	r.installRule(t, Rule{ID: 2, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MRd, Requester: tvmID, AddrLo: ctlWin, AddrHi: ctlWin + 0x1000, Action: ActionPassThrough})
	r.dev.regs[0x40] = 0x77

	// Model the injector's stash: in place of the register read's
	// completion, the internal segment delivers a held plaintext chunk
	// completion for the device's own earlier DMA read (requester = the
	// device, foreign transaction tag).
	plaintext := bytes.Repeat([]byte{0x5e}, 64)
	armed := true
	r.inner.AddTap(pcie.TapFunc(func(p *pcie.Packet) *pcie.Packet {
		if armed && (p.Kind == pcie.Cpl || p.Kind == pcie.CplD) {
			armed = false
			src := pcie.NewMemRead(r.dev.id, ctlWin+0x80, uint32(len(plaintext)), 9)
			return pcie.NewCompletion(src, pcie.MakeID(1, 0, 0), pcie.CplSuccess, plaintext)
		}
		return p
	}))

	before := r.sc.Stats().AuthFailures
	cpl := r.host.Route(pcie.NewMemRead(tvmID, ctlWin+0x40, 8, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatalf("stale completion forwarded to host: %v", cpl)
	}
	if cpl != nil && bytes.Contains(cpl.Payload, plaintext) {
		t.Fatal("plaintext crossed the SC on a stale completion")
	}
	if r.sc.Stats().AuthFailures == before {
		t.Fatal("stale completion not recorded as auth failure")
	}
	// The path still works once the stale condition clears.
	cpl = r.host.Route(pcie.NewMemRead(tvmID, ctlWin+0x40, 8, 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess {
		t.Fatalf("clean read after stale rejection failed: %v", cpl)
	}
}

// TestTagManagerPendingCap drives the queue past its cap and checks
// fail-closed eviction: oldest records leave, accounting matches, and
// the evicted records' chunks can no longer match.
func TestTagManagerPendingCap(t *testing.T) {
	tm := NewTagManager()
	tm.SetPendingCap(8)
	if tm.PendingCap() != 8 {
		t.Fatalf("cap = %d, want 8", tm.PendingCap())
	}
	for i := uint32(0); i < 20; i++ {
		tm.Enqueue(TagRecord{Stream: StreamH2D, Chunk: i})
	}
	if d := tm.Depth(); d != 8 {
		t.Fatalf("depth = %d, want 8 (cap)", d)
	}
	if ev := tm.Evicted(); ev != 12 {
		t.Fatalf("evicted = %d, want 12", ev)
	}
	// Oldest 12 are gone (fail closed), newest 8 remain.
	if _, ok := tm.Take(StreamH2D, 0); ok {
		t.Fatal("evicted record still matchable")
	}
	if _, ok := tm.Take(StreamH2D, 19); !ok {
		t.Fatal("newest record lost")
	}
	// Restoring the default re-opens headroom.
	tm.SetPendingCap(0)
	if tm.PendingCap() != DefaultTagCap {
		t.Fatalf("cap = %d, want default %d", tm.PendingCap(), DefaultTagCap)
	}
}

// TestTagManagerCapShrinkEvictsImmediately: lowering the cap below the
// current depth evicts down to the new bound at once.
func TestTagManagerCapShrinkEvictsImmediately(t *testing.T) {
	tm := NewTagManager()
	for i := uint32(0); i < 16; i++ {
		tm.Enqueue(TagRecord{Stream: StreamD2H, Chunk: i})
	}
	tm.SetPendingCap(4)
	if d := tm.Depth(); d != 4 {
		t.Fatalf("depth after shrink = %d, want 4", d)
	}
	if ev := tm.Evicted(); ev != 12 {
		t.Fatalf("evicted = %d, want 12", ev)
	}
}

// TestTagManagerConcurrent hammers Enqueue/Take/Depth from many
// goroutines under -race: every record is matched exactly once and
// the final accounting balances.
func TestTagManagerConcurrent(t *testing.T) {
	tm := NewTagManager()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	var taken [workers]uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := fmt.Sprintf("s%d", w)
			for i := 0; i < perWorker; i++ {
				tm.Enqueue(TagRecord{Stream: stream, Chunk: uint32(i)})
				if _, ok := tm.Take(stream, uint32(i)); ok {
					taken[w]++
				}
				tm.Depth()
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, n := range taken {
		total += n
	}
	matched, _ := tm.Stats()
	if matched != total || total != workers*perWorker {
		t.Fatalf("matched = %d, takes = %d, want %d", matched, total, workers*perWorker)
	}
	if tm.Depth() != 0 {
		t.Fatalf("depth = %d after draining, want 0", tm.Depth())
	}
}

// TestParamsManagerConcurrent runs Activate / Stream / Rekey /
// DestroyAll in parallel under -race and checks the manager stays
// consistent: Active() equals the number of streams that survive, no
// lost updates, no panics.
func TestParamsManagerConcurrent(t *testing.T) {
	ks := secmem.NewKeyStore()
	names := []string{StreamH2D, StreamD2H, StreamConfig}
	for _, n := range names {
		if err := ks.Install(n, secmem.FreshKey(), secmem.FreshNonce()); err != nil {
			t.Fatal(err)
		}
	}
	pm := NewParamsManager(ks)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := names[i%len(names)]
			for j := 0; j < 100; j++ {
				_ = pm.Activate(name)
				if s, err := pm.Stream(name); err == nil && s == nil {
					t.Error("nil stream with nil error")
				}
				if j%10 == 0 {
					_ = pm.Rekey(name, secmem.FreshKey(), secmem.FreshNonce())
				}
				pm.Active()
				pm.NameByHash(hashStream(name))
			}
		}(i)
	}
	wg.Wait()
	if a := pm.Active(); a != len(names) {
		t.Fatalf("active = %d, want %d", a, len(names))
	}
	pm.DestroyAll()
	if a := pm.Active(); a != 0 {
		t.Fatalf("active after destroy = %d, want 0", a)
	}
}

// TestEnvGuardConcurrent verifies MMIO checks and violation accounting
// under parallel use: the number of recorded violations must equal the
// number of rejected writes.
func TestEnvGuardConcurrent(t *testing.T) {
	g := NewEnvGuard()
	g.AddCheck(MMIOCheck{Name: "even-only", Reg: 0x10, Valid: func(v uint64) bool { return v%2 == 0 }})
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	var rejected [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if !g.VerifyMMIO(0x10, uint64(w*perWorker+i)) {
					rejected[w]++
				}
				g.Violations()
				g.Cleans()
			}
		}(w)
	}
	wg.Wait()
	want := 0
	for _, n := range rejected {
		want += n
	}
	if want != workers*perWorker/2 {
		t.Fatalf("rejected = %d, want %d", want, workers*perWorker/2)
	}
	if got := len(g.Violations()); got != want {
		t.Fatalf("violations = %d, want %d (lost updates)", got, want)
	}
}
