package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ccai/internal/obsv"
	"ccai/internal/pcie"
)

// Mask selects which header attributes an L1 rule compares, mirroring
// the paper's 16-bit Mask field (§4.1): set bits are checked, clear
// bits are wildcards. The mask is the mechanism that avoids
// "over-engineering (preparing all rules for each xPU/TVM)" while still
// defending every attribute against tampering.
type Mask uint16

const (
	// MatchKind compares the packet type (combined format + memory
	// access attributes, §7.2).
	MatchKind Mask = 1 << iota
	// MatchRequester compares the requester routing ID.
	MatchRequester
	// MatchCompleter compares the completer routing ID.
	MatchCompleter
	// MatchAddr compares the address against [AddrLo, AddrHi).
	MatchAddr
	// MatchTC compares the traffic class.
	MatchTC
)

// Rule is one Packet Filter entry, usable in the L1 table (mask-based
// coarse screening, verdict drop-or-descend) or the L2 table (exact
// classification into a security action).
type Rule struct {
	ID        uint16
	Mask      Mask
	Kind      pcie.Kind
	Requester pcie.ID
	Completer pcie.ID
	AddrLo    uint64
	AddrHi    uint64
	TC        uint8
	Action    Action
}

// Matches reports whether the packet satisfies every masked field.
func (r Rule) Matches(p *pcie.Packet) bool {
	if r.Mask&MatchKind != 0 && p.Kind != r.Kind {
		return false
	}
	if r.Mask&MatchRequester != 0 && p.Requester != r.Requester {
		return false
	}
	if r.Mask&MatchCompleter != 0 && p.Completer != r.Completer {
		return false
	}
	if r.Mask&MatchAddr != 0 && (p.Address < r.AddrLo || p.Address >= r.AddrHi) {
		return false
	}
	if r.Mask&MatchTC != 0 && p.TC != r.TC {
		return false
	}
	return true
}

func (r Rule) String() string {
	return fmt.Sprintf("rule %d mask=%05b kind=%v req=%v cpl=%v addr=[%#x,%#x) -> %v",
		r.ID, r.Mask, r.Kind, r.Requester, r.Completer, r.AddrLo, r.AddrHi, r.Action)
}

// RuleSize is the serialized policy size: 32 bytes per policy (§7.2).
const RuleSize = 32

// Marshal encodes the rule into its 32-byte policy format.
func (r Rule) Marshal() []byte {
	buf := make([]byte, RuleSize)
	binary.LittleEndian.PutUint16(buf[0:], r.ID)
	binary.LittleEndian.PutUint16(buf[2:], uint16(r.Mask))
	buf[4] = uint8(r.Kind)
	buf[5] = r.TC
	buf[6] = uint8(r.Action)
	binary.LittleEndian.PutUint16(buf[8:], uint16(r.Requester))
	binary.LittleEndian.PutUint16(buf[10:], uint16(r.Completer))
	binary.LittleEndian.PutUint64(buf[12:], r.AddrLo)
	binary.LittleEndian.PutUint64(buf[20:], r.AddrHi)
	return buf
}

// UnmarshalRule decodes a 32-byte policy.
func UnmarshalRule(buf []byte) (Rule, error) {
	if len(buf) < RuleSize {
		return Rule{}, fmt.Errorf("core: policy blob too short (%d bytes)", len(buf))
	}
	r := Rule{
		ID:        binary.LittleEndian.Uint16(buf[0:]),
		Mask:      Mask(binary.LittleEndian.Uint16(buf[2:])),
		Kind:      pcie.Kind(buf[4]),
		TC:        buf[5],
		Action:    Action(buf[6]),
		Requester: pcie.ID(binary.LittleEndian.Uint16(buf[8:])),
		Completer: pcie.ID(binary.LittleEndian.Uint16(buf[10:])),
		AddrLo:    binary.LittleEndian.Uint64(buf[12:]),
		AddrHi:    binary.LittleEndian.Uint64(buf[20:]),
	}
	if r.Action < ActionDrop || r.Action > actionToL2 {
		return Rule{}, fmt.Errorf("core: policy %d has invalid action %d", r.ID, buf[6])
	}
	return r, nil
}

// Verdict is the filter's decision for one packet.
type Verdict struct {
	Action Action
	// Rule identifies the matching rule (L2 when Action is a final
	// classification reached via L2, otherwise L1).
	Rule uint16
	// Stage is 1 or 2, naming the deciding table.
	Stage int
}

// FilterStats counts classifications per action for the trace tooling
// and the RQ2 security tests.
type FilterStats struct {
	Dropped, Protected, Verified, Passed uint64
}

// Filter is the two-stage Packet Filter of Figure 5. The L1 table
// screens with masked matches (first match wins; no match ⇒ drop); an
// L1 verdict of actionToL2 descends into the L2 table for fine-grained
// classification (first match wins; no match ⇒ drop, fail-closed).
// All methods are safe for concurrent use; the mutex is a leaf lock
// (classification never calls out of the filter).
type Filter struct {
	mu     sync.Mutex
	l1, l2 []Rule
	stats  FilterStats
	obs    *filterObs
}

// filterObs caches the per-action classification counters and the
// tracer. Only header metadata (kind, action, rule ID, stage) is ever
// recorded.
type filterObs struct {
	tracer                      *obsv.Tracer
	drop, protect, verify, pass *obsv.Counter
}

// actionLabel renders an action as a metric-label token.
func actionLabel(a Action) string {
	switch a {
	case ActionDrop:
		return "A1_drop"
	case ActionWriteReadProtect:
		return "A2_write_read_protect"
	case ActionWriteProtect:
		return "A3_write_protect"
	case ActionPassThrough:
		return "A4_pass_through"
	}
	return "unknown"
}

// SetObserver instruments the filter; a nil hub clears instrumentation.
func (f *Filter) SetObserver(h *obsv.Hub) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h == nil {
		f.obs = nil
		return
	}
	reg := h.Reg()
	f.obs = &filterObs{
		tracer:  h.T(),
		drop:    reg.Counter(obsv.Name("sc.filter.classified", "action", actionLabel(ActionDrop))),
		protect: reg.Counter(obsv.Name("sc.filter.classified", "action", actionLabel(ActionWriteReadProtect))),
		verify:  reg.Counter(obsv.Name("sc.filter.classified", "action", actionLabel(ActionWriteProtect))),
		pass:    reg.Counter(obsv.Name("sc.filter.classified", "action", actionLabel(ActionPassThrough))),
	}
}

// NewFilter returns an empty, fail-closed filter: with no rules
// installed every packet is Prohibited.
func NewFilter() *Filter { return &Filter{} }

// InstallL1 appends a rule to the L1 table.
func (f *Filter) InstallL1(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.l1 = append(f.l1, r)
}

// InstallL2 appends a rule to the L2 table.
func (f *Filter) InstallL2(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.l2 = append(f.l2, r)
}

// Clear removes all rules (used on rekey/teardown).
func (f *Filter) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.l1 = nil
	f.l2 = nil
}

// RuleCount reports installed rules per table.
func (f *Filter) RuleCount() (l1, l2 int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.l1), len(f.l2)
}

// Stats reports cumulative classification counts.
func (f *Filter) Stats() FilterStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ResetStats zeroes counters between experiments.
func (f *Filter) ResetStats() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats = FilterStats{}
}

// Classify runs the packet through L1 then (if directed) L2 and returns
// the verdict. Unmatched packets are dropped at either stage: the
// filter is fail-closed, which is what blocks requests from
// unauthorized TVMs, hosts or peer devices (§8.2).
func (f *Filter) Classify(p *pcie.Packet) Verdict {
	f.mu.Lock()
	o := f.obs
	var sp obsv.ActiveSpan
	if o != nil {
		sp = o.tracer.Begin(obsv.TrackFilter, "classify",
			obsv.Str("kind", p.Kind.String()), obsv.Hex("addr", p.Address))
	}
	v := f.classify(p)
	switch v.Action {
	case ActionDrop:
		f.stats.Dropped++
	case ActionWriteReadProtect:
		f.stats.Protected++
	case ActionWriteProtect:
		f.stats.Verified++
	case ActionPassThrough:
		f.stats.Passed++
	}
	f.mu.Unlock()
	if o != nil {
		switch v.Action {
		case ActionDrop:
			o.drop.Inc()
		case ActionWriteReadProtect:
			o.protect.Inc()
		case ActionWriteProtect:
			o.verify.Inc()
		case ActionPassThrough:
			o.pass.Inc()
		}
		sp.Attr(obsv.Str("action", actionLabel(v.Action)),
			obsv.U64("rule", uint64(v.Rule)), obsv.I64("stage", int64(v.Stage)))
		sp.End()
	}
	return v
}

func (f *Filter) classify(p *pcie.Packet) Verdict {
	for _, r := range f.l1 {
		if !r.Matches(p) {
			continue
		}
		if r.Action != actionToL2 {
			return Verdict{Action: r.Action, Rule: r.ID, Stage: 1}
		}
		for _, r2 := range f.l2 {
			if r2.Matches(p) {
				return Verdict{Action: r2.Action, Rule: r2.ID, Stage: 2}
			}
		}
		return Verdict{Action: ActionDrop, Stage: 2} // fail closed in L2
	}
	return Verdict{Action: ActionDrop, Stage: 1} // fail closed in L1
}

// L1Screen builds the standard L1 rule pair admitting memory
// read/write requests from an authorized requester for deeper L2
// inspection (Figure 5 ①).
func L1Screen(id uint16, requester pcie.ID) []Rule {
	return []Rule{
		{ID: id, Mask: MatchKind | MatchRequester, Kind: pcie.MWr, Requester: requester, Action: actionToL2},
		{ID: id + 1, Mask: MatchKind | MatchRequester, Kind: pcie.MRd, Requester: requester, Action: actionToL2},
		{ID: id + 2, Mask: MatchKind | MatchRequester, Kind: pcie.CplD, Requester: requester, Action: actionToL2},
		{ID: id + 3, Mask: MatchKind | MatchRequester, Kind: pcie.Cpl, Requester: requester, Action: actionToL2},
	}
}
