package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"ccai/internal/obsv"
	"ccai/internal/pcie"
)

// Mask selects which header attributes an L1 rule compares, mirroring
// the paper's 16-bit Mask field (§4.1): set bits are checked, clear
// bits are wildcards. The mask is the mechanism that avoids
// "over-engineering (preparing all rules for each xPU/TVM)" while still
// defending every attribute against tampering.
type Mask uint16

const (
	// MatchKind compares the packet type (combined format + memory
	// access attributes, §7.2).
	MatchKind Mask = 1 << iota
	// MatchRequester compares the requester routing ID.
	MatchRequester
	// MatchCompleter compares the completer routing ID.
	MatchCompleter
	// MatchAddr compares the address against [AddrLo, AddrHi).
	MatchAddr
	// MatchTC compares the traffic class.
	MatchTC
)

// Rule is one Packet Filter entry, usable in the L1 table (mask-based
// coarse screening, verdict drop-or-descend) or the L2 table (exact
// classification into a security action).
type Rule struct {
	ID        uint16
	Mask      Mask
	Kind      pcie.Kind
	Requester pcie.ID
	Completer pcie.ID
	AddrLo    uint64
	AddrHi    uint64
	TC        uint8
	Action    Action
}

// Matches reports whether the packet satisfies every masked field.
func (r Rule) Matches(p *pcie.Packet) bool {
	if r.Mask&MatchKind != 0 && p.Kind != r.Kind {
		return false
	}
	if r.Mask&MatchRequester != 0 && p.Requester != r.Requester {
		return false
	}
	if r.Mask&MatchCompleter != 0 && p.Completer != r.Completer {
		return false
	}
	if r.Mask&MatchAddr != 0 && (p.Address < r.AddrLo || p.Address >= r.AddrHi) {
		return false
	}
	if r.Mask&MatchTC != 0 && p.TC != r.TC {
		return false
	}
	return true
}

func (r Rule) String() string {
	return fmt.Sprintf("rule %d mask=%05b kind=%v req=%v cpl=%v addr=[%#x,%#x) -> %v",
		r.ID, r.Mask, r.Kind, r.Requester, r.Completer, r.AddrLo, r.AddrHi, r.Action)
}

// RuleSize is the serialized policy size: 32 bytes per policy (§7.2).
const RuleSize = 32

// Marshal encodes the rule into its 32-byte policy format.
func (r Rule) Marshal() []byte {
	buf := make([]byte, RuleSize)
	binary.LittleEndian.PutUint16(buf[0:], r.ID)
	binary.LittleEndian.PutUint16(buf[2:], uint16(r.Mask))
	buf[4] = uint8(r.Kind)
	buf[5] = r.TC
	buf[6] = uint8(r.Action)
	binary.LittleEndian.PutUint16(buf[8:], uint16(r.Requester))
	binary.LittleEndian.PutUint16(buf[10:], uint16(r.Completer))
	binary.LittleEndian.PutUint64(buf[12:], r.AddrLo)
	binary.LittleEndian.PutUint64(buf[20:], r.AddrHi)
	return buf
}

// UnmarshalRule decodes a 32-byte policy.
func UnmarshalRule(buf []byte) (Rule, error) {
	if len(buf) < RuleSize {
		return Rule{}, fmt.Errorf("core: policy blob too short (%d bytes)", len(buf))
	}
	r := Rule{
		ID:        binary.LittleEndian.Uint16(buf[0:]),
		Mask:      Mask(binary.LittleEndian.Uint16(buf[2:])),
		Kind:      pcie.Kind(buf[4]),
		TC:        buf[5],
		Action:    Action(buf[6]),
		Requester: pcie.ID(binary.LittleEndian.Uint16(buf[8:])),
		Completer: pcie.ID(binary.LittleEndian.Uint16(buf[10:])),
		AddrLo:    binary.LittleEndian.Uint64(buf[12:]),
		AddrHi:    binary.LittleEndian.Uint64(buf[20:]),
	}
	if r.Action < ActionDrop || r.Action > actionToL2 {
		return Rule{}, fmt.Errorf("core: policy %d has invalid action %d", r.ID, buf[6])
	}
	return r, nil
}

// Verdict is the filter's decision for one packet.
type Verdict struct {
	Action Action
	// Rule identifies the matching rule (L2 when Action is a final
	// classification reached via L2, otherwise L1).
	Rule uint16
	// Stage is 1 or 2, naming the deciding table.
	Stage int
}

// FilterStats counts classifications per action for the trace tooling
// and the RQ2 security tests.
type FilterStats struct {
	Dropped, Protected, Verified, Passed uint64
}

// Filter is the two-stage Packet Filter of Figure 5. The L1 table
// screens with masked matches (first match wins; no match ⇒ drop); an
// L1 verdict of actionToL2 descends into the L2 table for fine-grained
// classification (first match wins; no match ⇒ drop, fail-closed).
//
// Rules are read-mostly, so Classify runs lock-free against an
// immutable copy-on-write snapshot — the same pattern pcie.Bus uses
// for routing state. InstallL1/InstallL2/Clear rebuild and publish a
// fresh snapshot under the mutation mutex; in-flight classifications
// keep the snapshot they loaded. Each snapshot carries its own
// (kind, requester) verdict memo, so a rule change can never serve a
// stale cached verdict. Stats are plain atomics.
type Filter struct {
	mu    sync.Mutex // serializes mutations only; Classify never takes it
	state atomic.Pointer[filterState]
	stats filterCounters
	obs   atomic.Pointer[filterObs]
}

// filterState is one immutable rule snapshot plus its verdict memo.
type filterState struct {
	l1, l2 []Rule
	memo   l1Memo
}

// filterCounters is FilterStats with atomic fields.
type filterCounters struct {
	dropped, protected, verified, passed atomic.Uint64
}

// l1Memo caches terminal L1 verdicts for (kind, requester) classes
// whose outcome provably depends on nothing else: a verdict is stored
// only when every rule examined on the way to the decision matched
// (or failed to match) purely on MatchKind|MatchRequester and the
// decision did not descend into L2. Each entry packs key and verdict
// into one word, so lookups are a single atomic load. Collisions
// overwrite — the memo is an accelerator, never an authority.
type l1Memo struct {
	entries [memoSlots]atomic.Uint64
}

const memoSlots = 64

// memo word layout: [63] valid | [32..55] key (kind<<16 | requester) |
// [16..31] rule ID | [8..11] stage | [0..7] action.
func memoKey(kind pcie.Kind, req pcie.ID) uint32 {
	return uint32(kind)<<16 | uint32(req)
}

func memoSlot(key uint32) int {
	h := key * 2654435761 // Knuth multiplicative hash
	return int(h>>26) % memoSlots
}

func (m *l1Memo) lookup(key uint32) (Verdict, bool) {
	w := m.entries[memoSlot(key)].Load()
	if w>>63 == 0 || uint32(w>>32)&0xffffff != key {
		return Verdict{}, false
	}
	return Verdict{
		Action: Action(w & 0xff),
		Rule:   uint16(w >> 16),
		Stage:  int(w>>8) & 0xf,
	}, true
}

func (m *l1Memo) store(key uint32, v Verdict) {
	w := uint64(1)<<63 | uint64(key&0xffffff)<<32 |
		uint64(v.Rule)<<16 | uint64(v.Stage&0xf)<<8 | uint64(uint8(v.Action))
	m.entries[memoSlot(key)].Store(w)
}

// filterObs caches the per-action classification counters and the
// tracer. Only header metadata (kind, action, rule ID, stage) is ever
// recorded.
type filterObs struct {
	tracer                      *obsv.Tracer
	hub                         *obsv.Hub
	drop, protect, verify, pass *obsv.Counter
}

// actionLabel renders an action as a metric-label token.
func actionLabel(a Action) string {
	switch a {
	case ActionDrop:
		return "A1_drop"
	case ActionWriteReadProtect:
		return "A2_write_read_protect"
	case ActionWriteProtect:
		return "A3_write_protect"
	case ActionPassThrough:
		return "A4_pass_through"
	}
	return "unknown"
}

// SetObserver instruments the filter; a nil hub clears instrumentation.
func (f *Filter) SetObserver(h *obsv.Hub) {
	if h == nil {
		f.obs.Store(nil)
		return
	}
	reg := h.Reg()
	f.obs.Store(&filterObs{
		tracer:  h.T(),
		hub:     h,
		drop:    reg.Counter(obsv.Name("sc.filter.classified", "action", actionLabel(ActionDrop))),
		protect: reg.Counter(obsv.Name("sc.filter.classified", "action", actionLabel(ActionWriteReadProtect))),
		verify:  reg.Counter(obsv.Name("sc.filter.classified", "action", actionLabel(ActionWriteProtect))),
		pass:    reg.Counter(obsv.Name("sc.filter.classified", "action", actionLabel(ActionPassThrough))),
	})
}

// NewFilter returns an empty, fail-closed filter: with no rules
// installed every packet is Prohibited.
func NewFilter() *Filter {
	f := &Filter{}
	f.state.Store(&filterState{})
	return f
}

// mutate rebuilds the rule snapshot under the mutation lock and
// publishes it with a fresh (empty) memo.
func (f *Filter) mutate(fn func(s *filterState)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.state.Load()
	next := &filterState{
		l1: append([]Rule(nil), old.l1...),
		l2: append([]Rule(nil), old.l2...),
	}
	fn(next)
	f.state.Store(next)
}

// InstallL1 appends a rule to the L1 table.
func (f *Filter) InstallL1(r Rule) {
	f.mutate(func(s *filterState) { s.l1 = append(s.l1, r) })
}

// InstallL2 appends a rule to the L2 table.
func (f *Filter) InstallL2(r Rule) {
	f.mutate(func(s *filterState) { s.l2 = append(s.l2, r) })
}

// Clear removes all rules (used on rekey/teardown).
func (f *Filter) Clear() {
	f.mutate(func(s *filterState) { s.l1, s.l2 = nil, nil })
}

// RuleCount reports installed rules per table.
func (f *Filter) RuleCount() (l1, l2 int) {
	s := f.state.Load()
	return len(s.l1), len(s.l2)
}

// Stats reports cumulative classification counts.
func (f *Filter) Stats() FilterStats {
	return FilterStats{
		Dropped:   f.stats.dropped.Load(),
		Protected: f.stats.protected.Load(),
		Verified:  f.stats.verified.Load(),
		Passed:    f.stats.passed.Load(),
	}
}

// ResetStats zeroes counters between experiments.
func (f *Filter) ResetStats() {
	f.stats.dropped.Store(0)
	f.stats.protected.Store(0)
	f.stats.verified.Store(0)
	f.stats.passed.Store(0)
}

// kindRequesterOnly reports whether the rule's match outcome depends
// only on (kind, requester) — the memo key. Rules with any other masked
// field (address, completer, TC) make a packet-class verdict
// uncacheable, because two packets in the same (kind, requester) class
// could diverge on those fields.
func kindRequesterOnly(r Rule) bool {
	return r.Mask&^(MatchKind|MatchRequester) == 0
}

// Classify runs the packet through L1 then (if directed) L2 and returns
// the verdict. Unmatched packets are dropped at either stage: the
// filter is fail-closed, which is what blocks requests from
// unauthorized TVMs, hosts or peer devices (§8.2).
//
// Classify is lock-free: it loads the current rule snapshot once and
// classifies against it. A concurrent Install/Clear publishes a new
// snapshot; this call keeps the one it loaded, exactly like a packet
// that hit the hardware filter one cycle before the table update.
func (f *Filter) Classify(p *pcie.Packet) Verdict {
	s := f.state.Load()
	o := f.obs.Load()
	var sp obsv.ActiveSpan
	if o != nil {
		sp = o.tracer.Begin(obsv.TrackFilter, "classify",
			obsv.Str("kind", p.Kind.String()), obsv.Hex("addr", p.Address))
	}
	key := memoKey(p.Kind, p.Requester)
	v, hit := s.memo.lookup(key)
	if !hit {
		var cacheable bool
		v, cacheable = s.classify(p)
		if cacheable {
			s.memo.store(key, v)
		}
	}
	switch v.Action {
	case ActionDrop:
		f.stats.dropped.Add(1)
	case ActionWriteReadProtect:
		f.stats.protected.Add(1)
	case ActionWriteProtect:
		f.stats.verified.Add(1)
	case ActionPassThrough:
		f.stats.passed.Add(1)
	}
	if o != nil {
		switch v.Action {
		case ActionDrop:
			o.drop.Inc()
			if o.hub.EventsOn() {
				o.hub.Eventf(obsv.EvRogue, "", "requester=%04x kind=%s rule=%d stage=%d",
					uint16(p.Requester), p.Kind.String(), v.Rule, v.Stage)
			}
		case ActionWriteReadProtect:
			o.protect.Inc()
		case ActionWriteProtect:
			o.verify.Inc()
		case ActionPassThrough:
			o.pass.Inc()
		}
		sp.Attr(obsv.Str("action", actionLabel(v.Action)),
			obsv.U64("rule", uint64(v.Rule)), obsv.I64("stage", int64(v.Stage)))
		sp.End()
	}
	return v
}

// classify walks the snapshot's tables. The second return reports
// whether the verdict is memoizable for the packet's (kind, requester)
// class: true only when every rule examined on the way to the decision
// matched (or missed) purely on kind/requester, and the decision ended
// in L1 (terminal action or drop-on-no-match) without descending into
// L2 — L2 rules classify on addresses, so their verdicts never cache.
func (s *filterState) classify(p *pcie.Packet) (Verdict, bool) {
	cacheable := true
	for _, r := range s.l1 {
		if !r.Matches(p) {
			if !kindRequesterOnly(r) {
				cacheable = false
			}
			continue
		}
		if r.Action != actionToL2 {
			return Verdict{Action: r.Action, Rule: r.ID, Stage: 1},
				cacheable && kindRequesterOnly(r)
		}
		for _, r2 := range s.l2 {
			if r2.Matches(p) {
				return Verdict{Action: r2.Action, Rule: r2.ID, Stage: 2}, false
			}
		}
		return Verdict{Action: ActionDrop, Stage: 2}, false // fail closed in L2
	}
	return Verdict{Action: ActionDrop, Stage: 1}, cacheable // fail closed in L1
}

// L1Screen builds the standard L1 rule pair admitting memory
// read/write requests from an authorized requester for deeper L2
// inspection (Figure 5 ①).
func L1Screen(id uint16, requester pcie.ID) []Rule {
	return []Rule{
		{ID: id, Mask: MatchKind | MatchRequester, Kind: pcie.MWr, Requester: requester, Action: actionToL2},
		{ID: id + 1, Mask: MatchKind | MatchRequester, Kind: pcie.MRd, Requester: requester, Action: actionToL2},
		{ID: id + 2, Mask: MatchKind | MatchRequester, Kind: pcie.CplD, Requester: requester, Action: actionToL2},
		{ID: id + 3, Mask: MatchKind | MatchRequester, Kind: pcie.Cpl, Requester: requester, Action: actionToL2},
	}
}
