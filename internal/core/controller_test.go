package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

const (
	ctlBar  = 0xd010_0000
	ctlWin  = 0xd000_0000
	ctlMem  = 0x8000_0000
	ctlMemN = 1 << 20
)

// ctlRig wires a controller between a fake host memory endpoint and a
// fake device for direct unit testing.
type ctlRig struct {
	sc      *Controller
	host    *pcie.Bus
	inner   *pcie.Bus
	hostMem map[uint64][]byte
	cfgTx   *secmem.Stream
	dev     *ctlDevice
}

type ctlHostMem struct{ m map[uint64][]byte }

func (h *ctlHostMem) DeviceID() pcie.ID { return pcie.MakeID(0, 0, 0) }
func (h *ctlHostMem) Handle(p *pcie.Packet) *pcie.Packet {
	switch p.Kind {
	case pcie.MWr:
		h.m[p.Address] = append([]byte(nil), p.Payload...)
		return nil
	case pcie.MRd:
		data, ok := h.m[p.Address]
		if !ok {
			data = make([]byte, p.Length)
		}
		out := make([]byte, p.Length)
		copy(out, data)
		return pcie.NewCompletion(p, h.DeviceID(), pcie.CplSuccess, out)
	}
	return nil
}

type ctlDevice struct {
	id   pcie.ID
	regs map[uint64]uint64
	msgs []*pcie.Packet
}

func (d *ctlDevice) DeviceID() pcie.ID { return d.id }
func (d *ctlDevice) Handle(p *pcie.Packet) *pcie.Packet {
	switch p.Kind {
	case pcie.MWr:
		var tmp [8]byte
		copy(tmp[:], p.Payload)
		d.regs[p.Address-ctlWin] = binary.LittleEndian.Uint64(tmp[:])
		return nil
	case pcie.MRd:
		buf := make([]byte, p.Length)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], d.regs[p.Address-ctlWin])
		copy(buf, tmp[:])
		return pcie.NewCompletion(p, d.id, pcie.CplSuccess, buf)
	case pcie.Msg, pcie.MsgD:
		d.msgs = append(d.msgs, p.Clone())
		return nil
	}
	return nil
}

func newCtlRig(t *testing.T) *ctlRig {
	t.Helper()
	host := pcie.NewBus("host")
	inner := pcie.NewBus("internal")
	scID := pcie.MakeID(1, 0, 0)
	keys := secmem.NewKeyStore()
	sc := NewController(scID, pcie.Region{Base: ctlBar, Size: SCBarSize}, keys)
	if err := sc.AttachHostBus(host, pcie.Region{Base: ctlWin, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	hm := &ctlHostMem{m: make(map[uint64][]byte)}
	host.Attach(hm)
	if err := host.Claim(hm.DeviceID(), pcie.Region{Base: ctlMem, Size: ctlMemN}); err != nil {
		t.Fatal(err)
	}
	dev := &ctlDevice{id: pcie.MakeID(2, 0, 0), regs: make(map[uint64]uint64)}
	inner.Attach(dev)
	if err := inner.Claim(dev.id, pcie.Region{Base: ctlWin, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	sc.AttachInternalBus(inner, dev.id)
	sc.SetAuthorizedTVM(tvmID)

	// Config stream provisioning.
	key, nonce := secmem.FreshKey(), secmem.FreshNonce()
	if err := keys.Install(StreamConfig, key, nonce); err != nil {
		t.Fatal(err)
	}
	if err := sc.Params().Activate(StreamConfig); err != nil {
		t.Fatal(err)
	}
	cfgTx, err := secmem.NewStream(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	return &ctlRig{sc: sc, host: host, inner: inner, hostMem: hm.m, cfgTx: cfgTx, dev: dev}
}

func (r *ctlRig) installRule(t *testing.T, rule Rule) {
	t.Helper()
	sealed, err := r.cfgTx.Seal(rule.Marshal(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegRuleWindow, MarshalBlob(sealed)))
	r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegRuleDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
}

func TestControllerSealedRuleInstall(t *testing.T) {
	r := newCtlRig(t)
	r.installRule(t, Rule{ID: 1, Mask: MatchKind | MatchRequester, Kind: pcie.MRd, Requester: tvmID, Action: actionToL2})
	r.installRule(t, Rule{ID: 2, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MRd, Requester: tvmID, AddrLo: ctlWin, AddrHi: ctlWin + 0x1000, Action: ActionPassThrough})
	l1, l2 := r.sc.Filter().RuleCount()
	if l1 != 1 || l2 != 1 {
		t.Fatalf("rules = %d/%d", l1, l2)
	}
	// The installed rules now admit a register read through the window.
	r.dev.regs[0x40] = 0x77
	cpl := r.host.Route(pcie.NewMemRead(tvmID, ctlWin+0x40, 8, 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess || binary.LittleEndian.Uint64(cpl.Payload) != 0x77 {
		t.Fatalf("window read after rule install: %v", cpl)
	}
}

func TestControllerRuleReplayRejected(t *testing.T) {
	r := newCtlRig(t)
	rule := Rule{ID: 1, Mask: MatchKind, Kind: pcie.MRd, Action: ActionPassThrough}
	sealed, err := r.cfgTx.Seal(rule.Marshal(), nil)
	if err != nil {
		t.Fatal(err)
	}
	frame := MarshalBlob(sealed)
	install := func() {
		r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegRuleWindow, frame))
		r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegRuleDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	}
	install()
	_, l2 := r.sc.Filter().RuleCount()
	if l2 != 1 {
		t.Fatalf("first install failed: %d", l2)
	}
	// Replaying the same sealed frame must fail the stream's counter
	// discipline (a captured-policy replay attack).
	install()
	if _, l2b := r.sc.Filter().RuleCount(); l2b != 1 {
		t.Fatal("replayed policy frame installed")
	}
	if r.sc.Stats().ConfigRejects == 0 {
		t.Fatal("replay not recorded as config reject")
	}
}

func TestControllerEmptyDoorbellRejected(t *testing.T) {
	r := newCtlRig(t)
	r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegRuleDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	if r.sc.Stats().ConfigRejects != 1 {
		t.Fatal("doorbell without staged blob accepted")
	}
	if r.sc.SCStatusBits()&SCStatusConfigErr == 0 {
		t.Fatal("config error status not latched")
	}
}

func TestControllerStatusRegisterReadable(t *testing.T) {
	r := newCtlRig(t)
	cpl := r.host.Route(pcie.NewMemRead(tvmID, ctlBar+RegSCStatus, 8, 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess {
		t.Fatal("status read failed")
	}
	if binary.LittleEndian.Uint64(cpl.Payload)&SCStatusReady == 0 {
		t.Fatal("ready bit clear")
	}
}

func TestControllerWindowFailClosedWithoutRules(t *testing.T) {
	r := newCtlRig(t)
	cpl := r.host.Route(pcie.NewMemRead(tvmID, ctlWin+0x40, 8, 0))
	if cpl == nil || cpl.Status == pcie.CplSuccess {
		t.Fatal("ruleless window access succeeded")
	}
	if r.sc.Stats().Filter.Dropped == 0 {
		t.Fatal("drop not recorded")
	}
}

// TestControllerVendorMessages covers §9 "Customized packets": vendor
// messages keep the standard header shape, so the filter can classify
// them — pass-through for benign power management, drop for everything
// unruled.
func TestControllerVendorMessages(t *testing.T) {
	r := newCtlRig(t)
	const vendorPM = 0x50 // vendor-defined power-management message code
	r.sc.Filter().InstallL1(Rule{ID: 40, Mask: MatchKind | MatchRequester,
		Kind: pcie.MsgD, Requester: tvmID, Action: actionToL2})
	r.sc.Filter().InstallL2(Rule{ID: 41, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MsgD, Requester: tvmID, AddrLo: vendorPM, AddrHi: vendorPM + 1, Action: ActionPassThrough})

	// Authorized vendor message reaches the device.
	msg := pcie.NewMessage(tvmID, vendorPM, []byte{0x01})
	msg.Completer = r.sc.DeviceID()
	r.sc.Handle(msg)
	if len(r.dev.msgs) != 1 {
		t.Fatalf("device saw %d messages, want 1", len(r.dev.msgs))
	}
	// A different vendor code is dropped (fail-closed L2).
	other := pcie.NewMessage(tvmID, 0x66, []byte{0x01})
	other.Completer = r.sc.DeviceID()
	r.sc.Handle(other)
	if len(r.dev.msgs) != 1 {
		t.Fatal("unruled vendor message forwarded")
	}
	// Rogue-sourced messages never pass L1.
	rogueMsg := pcie.NewMessage(rogueID, vendorPM, []byte{0x01})
	rogueMsg.Completer = r.sc.DeviceID()
	r.sc.Handle(rogueMsg)
	if len(r.dev.msgs) != 1 {
		t.Fatal("rogue vendor message forwarded")
	}
}

func TestControllerTeardownViaRegister(t *testing.T) {
	r := newCtlRig(t)
	cleaned := false
	r.sc.SetTeardownHook(func() { cleaned = true })
	r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegTeardown, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	if r.sc.Stats().Teardowns != 1 || !cleaned {
		t.Fatal("teardown register ineffective")
	}
	if r.sc.Params().Active() != 0 {
		t.Fatal("streams survive teardown")
	}
	if r.sc.MMIOSeq() != 0 {
		t.Fatal("MMIO sequence not reset")
	}
}

func TestControllerIngestTagsBatch(t *testing.T) {
	r := newCtlRig(t)
	var payload []byte
	for i := uint32(0); i < 5; i++ {
		rec := TagRecord{Stream: StreamH2D, Chunk: 100 + i}
		rec.Tag[0] = byte(i)
		payload = append(payload, rec.Marshal()...)
	}
	r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegTagWindow, payload))
	if r.sc.Tags().Depth() != 5 {
		t.Fatalf("tag depth = %d, want 5", r.sc.Tags().Depth())
	}
	rec, ok := r.sc.Tags().Take(StreamH2D, 102)
	if !ok || rec.Tag[0] != 2 {
		t.Fatalf("batched tag lost: %v %v", rec, ok)
	}
	// Garbage stream hashes are ignored, not enqueued.
	junk := make([]byte, TagRecordSize)
	binary.LittleEndian.PutUint32(junk, 0xdeadbeef)
	r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegTagWindow, junk))
	if r.sc.Tags().Depth() != 4 {
		t.Fatalf("junk tag enqueued (depth %d)", r.sc.Tags().Depth())
	}
}

func TestControllerDescriptorOverlapRejected(t *testing.T) {
	r := newCtlRig(t)
	install := func(d Descriptor) {
		sealed, err := r.cfgTx.Seal(d.Marshal(), nil)
		if err != nil {
			t.Fatal(err)
		}
		r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegDescWindow, MarshalBlob(sealed)))
		r.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegDescDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	}
	install(Descriptor{ID: 1, Dir: DirH2D, Class: ActionWriteReadProtect, Base: ctlMem, Len: 0x1000, ChunkSize: 256})
	if r.sc.Regions() != 1 {
		t.Fatal("descriptor not installed")
	}
	install(Descriptor{ID: 2, Dir: DirH2D, Class: ActionWriteReadProtect, Base: ctlMem + 0x800, Len: 0x1000, ChunkSize: 256})
	if r.sc.Regions() != 1 {
		t.Fatal("overlapping descriptor installed")
	}
	if r.sc.Stats().ConfigRejects == 0 {
		t.Fatal("overlap not recorded")
	}
}

func TestControllerDeviceReadOutsideRegionsRejected(t *testing.T) {
	r := newCtlRig(t)
	for _, rule := range L1Screen(10, r.dev.id) {
		r.sc.Filter().InstallL1(rule)
	}
	r.sc.Filter().InstallL2(Rule{ID: 22, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MRd, Requester: r.dev.id, AddrLo: ctlMem, AddrHi: ctlMem + ctlMemN, Action: ActionWriteReadProtect})
	failBefore := r.sc.Stats().AuthFailures
	cpl := r.sc.HandleFromDevice(pcie.NewMemRead(r.dev.id, ctlMem+0x100, 256, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("regionless protected read succeeded")
	}
	if r.sc.Stats().AuthFailures != failBefore+1 {
		t.Fatal("failure not recorded")
	}
}

func TestControllerInternalPortDelegates(t *testing.T) {
	r := newCtlRig(t)
	port := r.sc.InternalPort()
	if port.DeviceID() != r.sc.DeviceID() {
		t.Fatal("internal port identity mismatch")
	}
	// A pass-through MSI-ish write via the port: install rules first.
	for _, rule := range L1Screen(10, r.dev.id) {
		r.sc.Filter().InstallL1(rule)
	}
	r.sc.Filter().InstallL2(Rule{ID: 24, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MWr, Requester: r.dev.id, AddrLo: ctlMem, AddrHi: ctlMem + ctlMemN, Action: ActionPassThrough})
	port.Handle(pcie.NewMemWrite(r.dev.id, ctlMem+0x500, []byte("via port")))
	if !bytes.Equal(r.hostMem[ctlMem+0x500], []byte("via port")) {
		t.Fatal("port did not forward to host")
	}
}

func TestControllerStatsSnapshot(t *testing.T) {
	r := newCtlRig(t)
	r.host.Route(pcie.NewMemRead(rogueID, ctlWin+0x40, 8, 0))
	st := r.sc.Stats()
	if st.Filter.Dropped == 0 {
		t.Fatal("snapshot missing filter stats")
	}
}
