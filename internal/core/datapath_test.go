package core

// Direct tests of the Packet Handler data paths: A2 decrypt-on-read /
// encrypt-on-write, A3 verified reads and guarded MMIO, metadata
// publication, and the §9 Mux. These complement the cross-package
// integration tests by pinning the controller's behaviour in
// isolation.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

// dpRig extends ctlRig with full stream provisioning and TVM-side
// stream replicas, so tests can seal/open payloads themselves.
type dpRig struct {
	*ctlRig
	h2dTx  *secmem.Stream
	d2hRx  *secmem.Stream
	mmioKy []byte
}

func newDPRig(t *testing.T) *dpRig {
	t.Helper()
	r := newCtlRig(t)
	d := &dpRig{ctlRig: r}
	for _, s := range []string{StreamH2D, StreamD2H, StreamMMIO} {
		key, nonce := secmem.FreshKey(), secmem.FreshNonce()
		if err := r.sc.Keys().Install(s, key, nonce); err != nil {
			t.Fatal(err)
		}
		switch s {
		case StreamH2D:
			d.h2dTx, _ = secmem.NewStream(key, nonce)
		case StreamD2H:
			d.d2hRx, _ = secmem.NewStream(key, nonce)
		case StreamMMIO:
			d.mmioKy = key
		}
		if s != StreamMMIO {
			if err := r.sc.Params().Activate(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	// L1 screens for both parties, then device-side DMA rules.
	for _, rule := range L1Screen(1, tvmID) {
		r.sc.Filter().InstallL1(rule)
	}
	for _, rule := range L1Screen(10, r.dev.id) {
		r.sc.Filter().InstallL1(rule)
	}
	for _, k := range []pcie.Kind{pcie.MRd, pcie.MWr} {
		r.sc.Filter().InstallL2(Rule{ID: 30, Mask: MatchKind | MatchRequester | MatchAddr,
			Kind: k, Requester: r.dev.id, AddrLo: ctlMem, AddrHi: ctlMem + ctlMemN, Action: ActionWriteReadProtect})
	}
	// Host-side A3/A4 rules over the device window.
	r.sc.Filter().InstallL2(Rule{ID: 31, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MWr, Requester: tvmID, AddrLo: ctlWin, AddrHi: ctlWin + 0x1000, Action: ActionWriteProtect})
	r.sc.Filter().InstallL2(Rule{ID: 32, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MRd, Requester: tvmID, AddrLo: ctlWin, AddrHi: ctlWin + 0x1000, Action: ActionPassThrough})
	return d
}

// stageH2D seals data into "host memory" and registers the region +
// tags like the Adaptor would.
func (d *dpRig) stageH2D(t *testing.T, base uint64, data []byte) Descriptor {
	t.Helper()
	desc := Descriptor{
		ID: 7, Dir: DirH2D, Class: ActionWriteReadProtect,
		Base: base, Len: uint64(len(data)), ChunkSize: ChunkSize,
		FirstCounter: d.h2dTx.SendCounter() + 1,
	}
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := uint32(off / ChunkSize)
		sealed, err := d.h2dTx.Seal(data[off:end], desc.AAD(chunk))
		if err != nil {
			t.Fatal(err)
		}
		d.hostMem[base+uint64(off)] = sealed.Ciphertext
		d.sc.Tags().Enqueue(TagRecord{Stream: StreamH2D, Chunk: sealed.Counter, Epoch: sealed.Epoch, Tag: sealed.Tag})
	}
	if err := d.sc.regions.add(desc); err != nil {
		t.Fatal(err)
	}
	return desc
}

func TestDecryptReadHappyPath(t *testing.T) {
	d := newDPRig(t)
	data := bytes.Repeat([]byte("0123456789abcdef"), 32) // 512 B = 2 chunks
	d.stageH2D(t, ctlMem+0x1000, data)
	for off := 0; off < len(data); off += ChunkSize {
		cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, ctlMem+0x1000+uint64(off), ChunkSize, 0))
		if cpl == nil || cpl.Status != pcie.CplSuccess {
			t.Fatalf("chunk at %d rejected", off)
		}
		if !bytes.Equal(cpl.Payload, data[off:off+ChunkSize]) {
			t.Fatalf("chunk at %d decrypted wrong", off)
		}
	}
	if d.sc.Stats().DecryptedChunks != 2 {
		t.Fatalf("decrypted = %d", d.sc.Stats().DecryptedChunks)
	}
}

func TestDecryptReadMissingTagFails(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, ChunkSize)
	d.stageH2D(t, ctlMem+0x1000, data)
	d.sc.Tags().Clear() // tags never arrived
	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, ctlMem+0x1000, ChunkSize, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("read succeeded without a tag record")
	}
	if d.sc.Stats().AuthFailures == 0 {
		t.Fatal("auth failure not recorded")
	}
}

func TestDecryptReadChunkBoundaryViolation(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, 2*ChunkSize)
	d.stageH2D(t, ctlMem+0x1000, data)
	// A read straddling two chunks cannot be decrypted as one unit.
	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, ctlMem+0x1000+128, ChunkSize, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("boundary-straddling read accepted")
	}
}

func TestDecryptReadCorruptedHostDataFails(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, ChunkSize)
	desc := d.stageH2D(t, ctlMem+0x1000, data)
	ct := d.hostMem[desc.Base]
	ct[0] ^= 1 // host flips a ciphertext bit at rest
	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, ChunkSize, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("corrupted ciphertext decrypted")
	}
}

func TestEncryptWriteDepositsCiphertextAndTags(t *testing.T) {
	d := newDPRig(t)
	// A single-chunk region: completing it flushes the buffered tag
	// span and publishes metadata (tags and progress counters are
	// batched, not per-chunk — DESIGN.md §10).
	desc := Descriptor{
		ID: 9, Dir: DirD2H, Class: ActionWriteReadProtect,
		Base: ctlMem + 0x4000, Len: ChunkSize, TagBase: ctlMem + 0x8000, ChunkSize: ChunkSize,
	}
	if err := d.sc.regions.add(desc); err != nil {
		t.Fatal(err)
	}
	result := bytes.Repeat([]byte{0xAB}, ChunkSize)
	d.sc.HandleFromDevice(pcie.NewMemWrite(d.dev.id, desc.Base, result))

	ct := d.hostMem[desc.Base]
	if bytes.Equal(ct, result) {
		t.Fatal("result stored as plaintext")
	}
	recBytes := d.hostMem[desc.TagBase]
	if len(recBytes) != TagRecordSize {
		t.Fatalf("tag record size = %d", len(recBytes))
	}
	// The TVM replica can open it.
	sealed := &secmem.Sealed{
		Counter:    binary.LittleEndian.Uint32(recBytes[4:]),
		Epoch:      binary.LittleEndian.Uint32(recBytes[8:]),
		Ciphertext: ct,
	}
	copy(sealed.Tag[:], recBytes[12:])
	pt, err := d.d2hRx.Open(sealed, desc.AAD(0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, result) {
		t.Fatal("decrypted result mismatch")
	}
}

func TestEncryptWritePublishesMetadata(t *testing.T) {
	d := newDPRig(t)
	// Progress counters are batched: they reach the metadata buffer at
	// region completion (and every metaPublishEvery chunks), so the
	// region here is exactly the two chunks the test writes.
	desc := Descriptor{
		ID: 3, Dir: DirD2H, Class: ActionWriteReadProtect,
		Base: ctlMem + 0x4000, Len: 2 * ChunkSize, TagBase: ctlMem + 0x8000, ChunkSize: ChunkSize,
	}
	if err := d.sc.regions.add(desc); err != nil {
		t.Fatal(err)
	}
	metaBase := uint64(ctlMem + 0xf000)
	d.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegMetaBase, le64(metaBase)))
	d.host.Route(pcie.NewMemWrite(tvmID, ctlBar+RegMetaSize, le64(4096)))

	d.sc.HandleFromDevice(pcie.NewMemWrite(d.dev.id, desc.Base, make([]byte, ChunkSize)))
	d.sc.HandleFromDevice(pcie.NewMemWrite(d.dev.id, desc.Base+ChunkSize, make([]byte, ChunkSize)))

	slot := d.hostMem[metaBase+uint64(desc.ID)*8]
	if binary.LittleEndian.Uint64(slot) != 2 {
		t.Fatalf("metadata slot = %v", slot)
	}
	if d.sc.D2HProgress(desc.ID) != 2 {
		t.Fatalf("D2HProgress = %d", d.sc.D2HProgress(desc.ID))
	}
	// Out-of-window region IDs are not published.
	big := Descriptor{ID: 4000, Dir: DirD2H, Class: ActionWriteReadProtect,
		Base: ctlMem + 0x6000, Len: ChunkSize, TagBase: ctlMem + 0x9000, ChunkSize: ChunkSize}
	if err := d.sc.regions.add(big); err != nil {
		t.Fatal(err)
	}
	d.sc.HandleFromDevice(pcie.NewMemWrite(d.dev.id, big.Base, make([]byte, ChunkSize)))
	if _, exists := d.hostMem[metaBase+uint64(big.ID)*8]; exists {
		t.Fatal("out-of-window metadata written")
	}
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestGuardedMMIOHappyAndTampered(t *testing.T) {
	d := newDPRig(t)
	write := func(seq uint32, reg uint64, val uint64, corrupt bool) {
		payload := le64(val)
		hdr := MACHeader(seq, ctlWin+reg, uint32(len(payload)))
		mac := secmem.MAC(d.mmioKy, hdr, payload)
		rec := TagRecord{Stream: StreamMMIO, Chunk: seq}
		copy(rec.Tag[:], mac[:secmem.TagSize])
		d.sc.Tags().Enqueue(rec)
		if corrupt {
			payload[0] ^= 1
		}
		d.sc.Handle(pcie.NewMemWrite(tvmID, ctlWin+reg, payload))
	}
	write(0, 0x10, 0x1234, false)
	if d.dev.regs[0x10] != 0x1234 {
		t.Fatal("guarded write lost")
	}
	write(1, 0x18, 0x5678, true)
	if d.dev.regs[0x18] == 0x5679 || d.dev.regs[0x18] == 0x5678 {
		t.Fatal("tampered guarded write reached the device")
	}
	if d.sc.Stats().AuthFailures == 0 {
		t.Fatal("A3 failure not recorded")
	}
	// Sequence did not advance past the failure; the next good write
	// must use seq 1.
	write(1, 0x20, 0x9abc, false)
	if d.dev.regs[0x20] != 0x9abc {
		t.Fatal("sequence recovery failed")
	}
}

func TestGuardedMMIOEnvCheck(t *testing.T) {
	d := newDPRig(t)
	d.sc.Guard().AddCheck(MMIOCheck{Name: "reg28", Reg: 0x28, Valid: func(v uint64) bool { return v < 100 }})
	write := func(seq uint32, reg uint64, val uint64) {
		payload := le64(val)
		mac := secmem.MAC(d.mmioKy, MACHeader(seq, ctlWin+reg, 8), payload)
		rec := TagRecord{Stream: StreamMMIO, Chunk: seq}
		copy(rec.Tag[:], mac[:secmem.TagSize])
		d.sc.Tags().Enqueue(rec)
		d.sc.Handle(pcie.NewMemWrite(tvmID, ctlWin+reg, payload))
	}
	write(0, 0x28, 42)
	if d.dev.regs[0x28] != 42 {
		t.Fatal("valid value blocked")
	}
	write(1, 0x28, 5000) // valid MAC, invalid value
	if d.dev.regs[0x28] == 5000 {
		t.Fatal("environment guard bypassed")
	}
	if d.sc.Stats().GuardBlocks != 1 {
		t.Fatalf("guard blocks = %d", d.sc.Stats().GuardBlocks)
	}
}

func TestVerifiedReadPath(t *testing.T) {
	d := newDPRig(t)
	desc := Descriptor{ID: 5, Dir: DirH2D, Class: ActionWriteProtect,
		Base: ctlMem + 0x2000, Len: 256, ChunkSize: 64}
	if err := d.sc.regions.add(desc); err != nil {
		t.Fatal(err)
	}
	entry := bytes.Repeat([]byte{7}, 64)
	d.hostMem[desc.Base] = append([]byte(nil), entry...)
	mac := secmem.MAC(d.mmioKy, desc.AAD(0), entry)
	rec := TagRecord{Stream: StreamMMIO, Chunk: desc.ID<<16 | 0}
	copy(rec.Tag[:], mac[:secmem.TagSize])
	d.sc.Tags().Enqueue(rec)

	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, 64, 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess || !bytes.Equal(cpl.Payload, entry) {
		t.Fatalf("verified read failed: %v", cpl)
	}
	if d.sc.Stats().VerifiedChunks != 1 {
		t.Fatal("verification not counted")
	}
	// Host tampers with the plaintext after MAC posting.
	d.hostMem[desc.Base][0] ^= 1
	mac2 := secmem.MAC(d.mmioKy, desc.AAD(0), entry) // MAC of the original
	rec2 := TagRecord{Stream: StreamMMIO, Chunk: desc.ID<<16 | 0}
	copy(rec2.Tag[:], mac2[:secmem.TagSize])
	d.sc.Tags().Enqueue(rec2)
	cpl = d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, 64, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("tampered command entry verified")
	}
}

func TestHandleFromDeviceWrongDirection(t *testing.T) {
	d := newDPRig(t)
	desc := d.stageH2D(t, ctlMem+0x1000, make([]byte, ChunkSize))
	// Writing into an H2D region is a protocol violation.
	failBefore := d.sc.Stats().AuthFailures
	d.sc.HandleFromDevice(pcie.NewMemWrite(d.dev.id, desc.Base, make([]byte, 64)))
	if d.sc.Stats().AuthFailures != failBefore+1 {
		t.Fatal("wrong-direction access not rejected")
	}
}

// --- Mux ------------------------------------------------------------------

func TestMuxRoutesByAddressAndRequester(t *testing.T) {
	hostA := newDPRig(t)
	// A second unit with its own rig pieces is heavyweight; route-level
	// behaviour is what matters here, so wrap the single controller in
	// a mux and check dispatch boundaries.
	mux := NewMux(pcie.MakeID(1, 0, 7))
	unit := &MuxUnit{
		Ctrl: hostA.sc,
		Bar:  pcie.Region{Base: ctlBar, Size: SCBarSize},
		Window: pcie.Region{
			Base: ctlWin, Size: 0x1000},
		XPU: hostA.dev.id, TVM: tvmID,
	}
	if err := mux.AddUnit(unit); err != nil {
		t.Fatal(err)
	}
	if mux.Units() != 1 {
		t.Fatal("unit not registered")
	}
	if _, ok := mux.Unit(hostA.dev.id); !ok {
		t.Fatal("unit lookup failed")
	}
	// In-window traffic dispatches to the unit (pass-through read rule
	// installed by newDPRig).
	hostA.dev.regs[0x40] = 0x42
	cpl := mux.Handle(pcie.NewMemRead(tvmID, ctlWin+0x40, 8, 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess || binary.LittleEndian.Uint64(cpl.Payload) != 0x42 {
		t.Fatalf("mux window dispatch failed: %v", cpl)
	}
	// Outside every window: UR.
	cpl = mux.Handle(pcie.NewMemRead(tvmID, 0xeeee_0000, 8, 0))
	if cpl == nil || cpl.Status != pcie.CplUR {
		t.Fatal("out-of-window access not rejected")
	}
	// Unknown device requester: rejected.
	cpl = mux.HandleFromDevice(pcie.NewMemRead(pcie.MakeID(9, 0, 0), ctlMem, 64, 0))
	if cpl == nil || cpl.Status != pcie.CplUR {
		t.Fatal("unknown requester not rejected")
	}
	// TeardownAll reaches the unit.
	mux.TeardownAll()
	if hostA.sc.Stats().Teardowns != 1 {
		t.Fatal("mux teardown did not propagate")
	}
}

func TestActionAndPermissionStrings(t *testing.T) {
	for _, a := range []Action{ActionDrop, ActionWriteReadProtect, ActionWriteProtect, ActionPassThrough, actionToL2} {
		if a.String() == "" {
			t.Fatal("empty action string")
		}
	}
	for _, p := range []Permission{Prohibited, WriteReadProtected, WriteProtected, FullAccessible} {
		if p.String() == "" {
			t.Fatal("empty permission string")
		}
	}
	d := Descriptor{ID: 1, Dir: DirD2H}
	if DirH2D.String() != "H2D" || d.Dir.String() != "D2H" {
		t.Fatal("direction strings wrong")
	}
	r := Rule{ID: 1, Action: ActionDrop}
	if r.String() == "" {
		t.Fatal("empty rule string")
	}
}

// --- multi-chunk span reads (DESIGN.md §10) ---------------------------------

// stageH2DSpan is stageH2D with the ciphertext stored as one
// contiguous host-memory entry, so a single MaxReadReq-sized MRd can
// fetch the whole region the way the device's DMA engine now does.
func (d *dpRig) stageH2DSpan(t *testing.T, base uint64, data []byte) Descriptor {
	t.Helper()
	desc := Descriptor{
		ID: 7, Dir: DirH2D, Class: ActionWriteReadProtect,
		Base: base, Len: uint64(len(data)), ChunkSize: ChunkSize,
		FirstCounter: d.h2dTx.SendCounter() + 1,
	}
	var ct []byte
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := uint32(off / ChunkSize)
		sealed, err := d.h2dTx.Seal(data[off:end], desc.AAD(chunk))
		if err != nil {
			t.Fatal(err)
		}
		ct = append(ct, sealed.Ciphertext...)
		d.sc.Tags().Enqueue(TagRecord{Stream: StreamH2D, Chunk: sealed.Counter, Epoch: sealed.Epoch, Tag: sealed.Tag})
	}
	d.hostMem[base] = ct
	if err := d.sc.regions.add(desc); err != nil {
		t.Fatal(err)
	}
	return desc
}

func TestDecryptReadSpanHappyPath(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, 4*ChunkSize)
	for i := range data {
		data[i] = byte(i * 13)
	}
	desc := d.stageH2DSpan(t, ctlMem+0x1000, data)
	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, uint32(len(data)), 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess {
		t.Fatal("span read rejected")
	}
	if !bytes.Equal(cpl.Payload, data) {
		t.Fatal("span decrypted wrong")
	}
	if n := d.sc.Stats().DecryptedChunks; n != 4 {
		t.Fatalf("DecryptedChunks = %d, want 4", n)
	}
}

func TestDecryptReadSpanPartialTailChunk(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, 2*ChunkSize+128) // last chunk is half-size
	for i := range data {
		data[i] = byte(i ^ 0x3c)
	}
	desc := d.stageH2DSpan(t, ctlMem+0x1000, data)
	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, uint32(len(data)), 0))
	if cpl == nil || cpl.Status != pcie.CplSuccess {
		t.Fatal("partial-tail span rejected")
	}
	if !bytes.Equal(cpl.Payload, data) {
		t.Fatal("partial-tail span decrypted wrong")
	}
}

func TestDecryptReadSpanUnalignedRejected(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, 4*ChunkSize)
	desc := d.stageH2DSpan(t, ctlMem+0x1000, data)
	// Multi-chunk read starting mid-chunk: the span path requires
	// chunk-aligned starts so tag identity stays positional.
	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base+128, 2*ChunkSize, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("unaligned span accepted")
	}
	if d.sc.Stats().AuthFailures == 0 {
		t.Fatal("auth failure not recorded")
	}
}

func TestDecryptReadSpanBeyondRegionRejected(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, 2*ChunkSize)
	desc := d.stageH2DSpan(t, ctlMem+0x1000, data)
	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, 4*ChunkSize, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("span past region end accepted")
	}
}

func TestDecryptReadSpanMissingTagFailsClosed(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, 4*ChunkSize)
	desc := d.stageH2DSpan(t, ctlMem+0x1000, data)
	d.sc.Tags().Clear() // tags never arrived
	cpl := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, uint32(len(data)), 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("span read succeeded without tag records")
	}
	if d.sc.Stats().AuthFailures == 0 {
		t.Fatal("auth failure not recorded")
	}
	if d.sc.Stats().DecryptedChunks != 0 {
		t.Fatal("fail-closed span still counted decryptions")
	}
}

// TestDecryptReadSpanDuplicateReRead: a device retrying DMA after a
// fault re-reads a span whose tags were all consumed by the first
// pass. The span path must fall back to the retained verified records
// and re-serve the plaintext statelessly — without touching the replay
// watermark and while counting the retransmits.
func TestDecryptReadSpanDuplicateReRead(t *testing.T) {
	d := newDPRig(t)
	data := make([]byte, 4*ChunkSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	desc := d.stageH2DSpan(t, ctlMem+0x1000, data)
	first := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, uint32(len(data)), 0))
	if first == nil || first.Status != pcie.CplSuccess {
		t.Fatal("first span read rejected")
	}
	again := d.sc.HandleFromDevice(pcie.NewMemRead(d.dev.id, desc.Base, uint32(len(data)), 0))
	if again == nil || again.Status != pcie.CplSuccess {
		t.Fatal("benign span re-read rejected")
	}
	if !bytes.Equal(again.Payload, data) {
		t.Fatal("re-read span decrypted wrong")
	}
	if n := d.sc.Stats().DuplicateReads; n != 4 {
		t.Fatalf("DuplicateReads = %d, want 4", n)
	}
	if n := d.sc.Stats().DecryptedChunks; n != 4 {
		t.Fatalf("DecryptedChunks = %d, want 4 (re-read must not re-count)", n)
	}
}
