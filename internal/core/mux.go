package core

import (
	"fmt"
	"sync"

	"ccai/internal/pcie"
)

// Mux implements the paper's §9 extension "PCIe-SC for multiple xPUs
// and users": one physical security controller serving several
// (TVM, xPU) pairs. Each pair gets an isolated unit — its own Packet
// Filter policies, stream keys, tag queues and transfer regions — and
// the mux routes traffic to the right unit by the PCIe identifiers
// involved: host-side packets by target address (control BAR or xPU
// shadow window), device-side packets by requester ID. Unit
// controllers present distinct function numbers upstream, so host
// software sees them as virtual functions of one device.
// Dispatch on both sides takes only a read lock, so tenants routed to
// different units proceed in parallel; AddUnit (assembly-time) is the
// sole writer.
type Mux struct {
	id pcie.ID

	mu    sync.RWMutex
	units []*MuxUnit
}

// MuxUnit is one isolated (TVM, xPU) slice of the controller.
type MuxUnit struct {
	Ctrl *Controller
	// Bar is the unit's control window; Window the shadowed xPU BAR.
	Bar, Window pcie.Region
	// XPU is the device this unit guards; TVM its authorized owner.
	XPU pcie.ID
	TVM pcie.ID
}

// NewMux creates an empty multi-unit controller with the given primary
// upstream identity.
func NewMux(id pcie.ID) *Mux { return &Mux{id: id} }

// DeviceID implements pcie.Endpoint.
func (m *Mux) DeviceID() pcie.ID { return m.id }

// AddUnit registers a slice. The unit's controller must already be
// attached to its internal bus; the caller claims Bar and Window for
// the mux on the host bus.
func (m *Mux) AddUnit(u *MuxUnit) error {
	if u.Ctrl == nil {
		return fmt.Errorf("core: mux unit without controller")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.units {
		if e.XPU == u.XPU {
			return fmt.Errorf("core: xPU %v already sliced", u.XPU)
		}
		if e.TVM == u.TVM {
			return fmt.Errorf("core: TVM %v already owns a slice", u.TVM)
		}
	}
	u.Ctrl.SetAuthorizedTVM(u.TVM)
	m.units = append(m.units, u)
	return nil
}

// Units reports the registered slice count.
func (m *Mux) Units() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.units)
}

// Unit returns the slice guarding the given xPU.
func (m *Mux) Unit(xpu pcie.ID) (*MuxUnit, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, u := range m.units {
		if u.XPU == xpu {
			return u, true
		}
	}
	return nil, false
}

// Handle implements pcie.Endpoint for host-side traffic: the packet's
// target address selects the unit; anything outside every unit's
// windows is rejected.
func (m *Mux) Handle(p *pcie.Packet) *pcie.Packet {
	m.mu.RLock()
	var target *MuxUnit
	for _, u := range m.units {
		if u.Bar.Contains(p.Address) || u.Window.Contains(p.Address) {
			target = u
			break
		}
	}
	m.mu.RUnlock()
	if target != nil {
		return target.Ctrl.Handle(p)
	}
	if p.Kind == pcie.MRd || p.Kind == pcie.CfgRd || p.Kind == pcie.CfgWr {
		return pcie.NewCompletion(p, m.id, pcie.CplUR, nil)
	}
	return nil
}

// HandleFromDevice routes device-originated traffic (DMA, MSI) to the
// unit owning the requesting xPU — the "unique PCIe identifiers"
// dispatch of §9. Unknown requesters are rejected.
func (m *Mux) HandleFromDevice(p *pcie.Packet) *pcie.Packet {
	if u, ok := m.Unit(p.Requester); ok {
		return u.Ctrl.HandleFromDevice(p)
	}
	if p.Kind == pcie.MRd {
		return pcie.NewCompletion(p, m.id, pcie.CplUR, nil)
	}
	return nil
}

// TeardownAll tears down every slice (chassis decommission). The
// snapshot is taken under the read lock, but each teardown runs
// outside it: teardown hooks route reset MMIO over the bus.
func (m *Mux) TeardownAll() {
	m.mu.RLock()
	units := append([]*MuxUnit(nil), m.units...)
	m.mu.RUnlock()
	for _, u := range units {
		u.Ctrl.Teardown()
	}
}
