package core

import (
	"encoding/binary"
	"fmt"

	"ccai/internal/arena"
	"ccai/internal/pcie"
)

// Submission ring (§5 batched I/O, io_uring-shaped): instead of one
// MMIO doorbell per control operation — descriptor windows, tag
// uploads, notifies, guarded register writes — the Adaptor appends
// fixed-size entries to a ring it owns in protected TVM memory and
// publishes a whole batch with a single write to RegRingDoorbell
// carrying the new absolute tail index. The SC DMA-reads the published
// span in MaxReadReq-sized gulps, validates every entry (sequence
// number, bounded length, known opcode), dispatches through the exact
// same sealed-blob / tag-ingest / A3-MAC machinery the per-write MMIO
// path uses, and DMA-writes its consumed head index back into the ring
// header.
//
// Trust boundary: the ring lives in TVM memory reachable over the
// untrusted host bus, so its contents get no more trust than MMIO
// payloads did — rule/descriptor/rekey entries carry sealed blobs only
// the attested peer can mint, tag entries carry MACs verified on use,
// and guarded entries replay the A3 sequence+MAC check. Tampering with
// an entry therefore yields exactly what tampering with the equivalent
// TLP yields: a config reject or auth failure. Tampering with the ring
// *framing* (sequence skew, oversized length, unknown opcode) is a
// desync: the SC sets the ring status word, rejects, and refuses to
// advance — fail closed until the producer tears down.
const (
	// RingHdrSize is the ring header: [0,8) consumed head (SC-written),
	// [8,16) status word (0 ok, RingStatusDesync), [16,24) completion
	// word (SC-written device command head, RingCplValid-tagged), rest
	// reserved.
	RingHdrSize = 64
	// RingHdrCplOff is the header offset of the completion word: the
	// device's command-ring head as last observed by the SC, DMA-written
	// after every forwarded doorbell so the producer reaps completions
	// from host memory instead of one MMIO read per task.
	RingHdrCplOff = 16
	// RingCplValid tags a posted completion word. The device head is a
	// small count, so the top bit distinguishes "never posted" (zero)
	// from "head is zero".
	RingCplValid = 1 << 63
	// RingEntryHdrSize frames one entry: opcode(1) flags(1) len(2)
	// seq(4) arg(8), little-endian.
	RingEntryHdrSize = 16
	// RingMaxData bounds an entry payload to one TLP payload, so every
	// ring op stays byte-equivalent to the MMIO write it replaces.
	RingMaxData = pcie.MaxPayload
	// RingSlotSize is the fixed slot stride.
	RingSlotSize = RingEntryHdrSize + RingMaxData

	// RingStatusDesync is the status word the SC posts when ring framing
	// fails validation; the producer must fail closed.
	RingStatusDesync = 1
)

// Ring entry opcodes. Each mirrors one legacy control-BAR interaction.
const (
	RingOpRule    = 1 // payload: sealed rule blob (RegRuleWindow+doorbell)
	RingOpDesc    = 2 // payload: sealed descriptor blob (RegDescWindow+doorbell)
	RingOpRekey   = 3 // payload: sealed rekey command (RegRekeyWindow+doorbell)
	RingOpTags    = 4 // payload: packed tag records (RegTagWindow)
	RingOpRelease = 5 // arg: region ID (RegDescRelease)
	RingOpNotify  = 6 // arg: region ID (RegNotify)
	RingOpGuarded = 7 // arg: absolute MMIO address, payload: value (A3 write)
)

// PutRingEntry encodes an entry header into a caller-provided
// (typically stack) array.
func PutRingEntry(hdr *[RingEntryHdrSize]byte, op uint8, n uint16, seq uint32, arg uint64) {
	hdr[0] = op
	hdr[1] = 0
	binary.LittleEndian.PutUint16(hdr[2:], n)
	binary.LittleEndian.PutUint32(hdr[4:], seq)
	binary.LittleEndian.PutUint64(hdr[8:], arg)
}

// ringSpanSlots is how many ring slots one MaxReadReq DMA read covers.
const ringSpanSlots = pcie.MaxReadReq / RingSlotSize

// processRing consumes the span [head, tail) the doorbell just
// published. Called from controlWrite WITHOUT c.mu held — dispatch
// reenters the same handlers the MMIO path uses, and those route on
// the buses.
func (c *Controller) processRing(tail uint64) {
	c.mu.Lock()
	base := c.regs[RegRingBase]
	slots := c.regs[RegRingSize]
	head := c.ringHead
	c.mu.Unlock()
	if base == 0 || slots == 0 {
		c.configReject(fmt.Errorf("core: ring doorbell with no configured ring"))
		return
	}
	if tail < head || tail-head > slots {
		// The producer claims a window we never saw or one larger than
		// the ring: framing is gone, fail closed.
		c.ringDesync(base)
		return
	}
	if tail == head {
		// Idempotent re-reap: the producer re-rang an already-consumed
		// window, which means its view of the header is stale — the head
		// or completion writeback was lost on the bus. Re-posting both
		// words (instead of the old bare return) lets the producer's
		// doorbell-retry ladder converge instead of spinning forever on a
		// header that never refreshes.
		c.ringPostHead(base, head)
		return
	}

	// Gather the published slots with as few DMA reads as possible:
	// contiguous runs bounded by the ring wrap and MaxReadReq.
	n := tail - head
	buf := arena.Get(int(n) * RingSlotSize)
	for i := uint64(0); i < n; {
		slot := (head + i) % slots
		run := slots - slot
		if run > n-i {
			run = n - i
		}
		if run > ringSpanSlots {
			run = ringSpanSlots
		}
		addr := base + RingHdrSize + slot*RingSlotSize
		off := int(i) * RingSlotSize
		if !c.ringFetch(addr, buf[off:off+int(run)*RingSlotSize]) {
			// The span read kept failing (dropped completions under fault
			// injection). Head stays put and no status is raised: the
			// producer's doorbell retry re-publishes the same window.
			arena.Put(buf)
			return
		}
		i += run
	}

	// Validate, then dispatch. The sequence check pins every entry to
	// its absolute ring index, so a stale slot left over from a previous
	// lap — or an entry the producer never wrote — cannot be consumed.
	for i := uint64(0); i < n; i++ {
		e := buf[i*RingSlotSize : (i+1)*RingSlotSize]
		op := e[0]
		ln := binary.LittleEndian.Uint16(e[2:])
		seq := binary.LittleEndian.Uint32(e[4:])
		arg := binary.LittleEndian.Uint64(e[8:])
		if seq != uint32(head+i) || int(ln) > RingMaxData || op < RingOpRule || op > RingOpGuarded {
			arena.Put(buf)
			c.ringDesync(base)
			return
		}
		c.ringDispatch(op, arg, e[RingEntryHdrSize:RingEntryHdrSize+int(ln)])
	}
	arena.Put(buf)

	c.mu.Lock()
	c.ringHead = tail
	c.mu.Unlock()
	c.ringPostHead(base, tail)
}

// ringDispatch routes one validated entry into the same handler the
// equivalent MMIO write would have reached. data aliases the gather
// buffer; every handler either consumes it synchronously (sealed-blob
// open, MAC verify) or copies (tag ingest), so the buffer is reusable
// on return.
func (c *Controller) ringDispatch(op uint8, arg uint64, data []byte) {
	switch op {
	case RingOpRule:
		c.installRuleFrame(data)
	case RingOpDesc:
		c.installDescriptorFrame(data)
	case RingOpRekey:
		c.applyRekeyFrame(data)
	case RingOpTags:
		c.ingestTags(data)
	case RingOpRelease:
		c.releaseRegion(uint32(arg))
	case RingOpNotify:
		c.mu.Lock()
		c.regs[RegNotify] = arg
		c.mu.Unlock()
	case RingOpGuarded:
		// Rebuild the A3 write the entry stands for, attributed to the
		// authorized TVM, and run it through the full sequence+MAC+guard
		// pipeline. The payload is copied to never-recycled memory: the
		// packet outlives this dispatch on the internal bus.
		val := c.slab.Take(len(data))
		copy(val, data)
		c.handleGuardedMMIO(c.pkts.MemWrite(c.authorizedTVM, arg, val))
	}
}

// ringFetch DMA-reads one contiguous slot run into dst, with a bounded
// retry for dropped completions.
func (c *Controller) ringFetch(addr uint64, dst []byte) bool {
	for attempt := 0; attempt < 3; attempt++ {
		req := c.pkts.MemRead(c.id, addr, uint32(len(dst)), 0)
		cpl := c.hostBus.Route(req)
		if cpl != nil && cpl.Status == pcie.CplSuccess && !staleCpl(req, cpl) && len(cpl.Payload) >= len(dst) {
			copy(dst, cpl.Payload)
			return true
		}
	}
	return false
}

// ringPostHead DMA-writes the consumed head index into the ring
// header, followed by the current completion word so a reaping
// producer refreshes both with the same doorbell.
func (c *Controller) ringPostHead(base, head uint64) {
	buf := c.slab.Take(8)
	binary.LittleEndian.PutUint64(buf, head)
	c.hostBus.Route(c.pkts.MemWrite(c.id, base, buf))
	c.postCompletionWord(base)
}

// postCompletionWord DMA-writes the cached device command head (tagged
// RingCplValid) into the ring header's completion slot. A zero cache —
// no doorbell forwarded yet this session — posts nothing, leaving the
// header word invalid so the producer falls back to the MMIO read.
func (c *Controller) postCompletionWord(base uint64) {
	c.mu.Lock()
	w := c.cplWord
	c.mu.Unlock()
	if w == 0 {
		return
	}
	buf := c.slab.Take(8)
	binary.LittleEndian.PutUint64(buf, w)
	c.hostBus.Route(c.pkts.MemWrite(c.id, base+RingHdrCplOff, buf))
}

// reapCompletion is the SC half of batched completion reaping: after
// forwarding a doorbell write, read the device's command head once over
// the internal bus and deposit it into the submission ring header. One
// doorbell therefore drains every completion the burst produced; the
// producer's Head() poll becomes a host-memory read, and the per-task
// completion MMIO disappears from the hot path.
func (c *Controller) reapCompletion() {
	if c.internal == nil {
		return
	}
	req := c.pkts.MemRead(c.id, c.xpuBar.Base+c.reapHeadReg, 8, 0)
	cpl := c.internal.Route(req)
	if cpl == nil || cpl.Status != pcie.CplSuccess || staleCpl(req, cpl) || len(cpl.Payload) < 8 {
		return // unreadable head: leave the cache alone, MMIO fallback rules
	}
	head := binary.LittleEndian.Uint64(cpl.Payload)
	c.mu.Lock()
	c.cplWord = RingCplValid | head
	base := c.regs[RegRingBase]
	c.mu.Unlock()
	if base != 0 {
		c.postCompletionWord(base)
	}
}

// ringDesync marks the ring unusable (status word + config reject) and
// refuses to advance. The producer observes the status on its next
// flush and fails closed.
func (c *Controller) ringDesync(base uint64) {
	c.configReject(fmt.Errorf("core: submission ring desync"))
	buf := c.slab.Take(8)
	binary.LittleEndian.PutUint64(buf, RingStatusDesync)
	c.hostBus.Route(c.pkts.MemWrite(c.id, base+8, buf))
}
