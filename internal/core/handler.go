package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

// StreamID names a protected data stream managed by the De/Encryption
// Parameters Manager. The Adaptor and PCIe-SC agree on stream names
// during trust establishment.
const (
	// StreamH2D protects host→device payloads (inputs, weights, code).
	StreamH2D = "h2d"
	// StreamD2H protects device→host payloads (results).
	StreamD2H = "d2h"
	// StreamConfig protects Packet Filter policy updates (§4.1
	// "dynamic and secure configuration").
	StreamConfig = "config"
	// StreamMMIO keys the A3 integrity MACs on control traffic.
	StreamMMIO = "mmio"
)

// ErrNoStream reports a protected packet arriving before its stream's
// parameters were installed.
var ErrNoStream = errors.New("core: no de/encryption parameters for stream")

// ParamsManager is the De/Encryption Parameters Manager control panel
// (§4.2): it owns the per-stream cryptographic parameters (key, the
// 12-byte-nonce/4-byte-counter IV state) and hands out the secmem
// streams the AES engine uses. Each logical transfer region binds to
// one stream context.
type ParamsManager struct {
	keys    *secmem.KeyStore
	streams map[string]*secmem.Stream

	// hub/track propagate observability to streams activated later.
	hub   *obsv.Hub
	track string
}

// SetObserver instruments existing streams and records the hub so
// streams activated afterwards inherit it.
func (pm *ParamsManager) SetObserver(h *obsv.Hub, track string) {
	pm.hub = h
	pm.track = track
	for name, s := range pm.streams {
		s.SetObserver(h, track, name)
	}
}

// NewParamsManager builds a manager over a key store (the PCIe-SC's
// trust-module storage).
func NewParamsManager(keys *secmem.KeyStore) *ParamsManager {
	return &ParamsManager{keys: keys, streams: make(map[string]*secmem.Stream)}
}

// Activate instantiates the stream context for a named stream from
// installed key material.
func (pm *ParamsManager) Activate(name string) error {
	s, err := pm.keys.Stream(name)
	if err != nil {
		return err
	}
	s.SetObserver(pm.hub, pm.track, name)
	pm.streams[name] = s
	return nil
}

// Stream returns the active context for name.
func (pm *ParamsManager) Stream(name string) (*secmem.Stream, error) {
	s, ok := pm.streams[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoStream, name)
	}
	return s, nil
}

// Rekey replaces a stream's parameters (IV-exhaustion mitigation, §6).
func (pm *ParamsManager) Rekey(name string, key, nonce []byte) error {
	s, ok := pm.streams[name]
	if !ok {
		return fmt.Errorf("%w %q", ErrNoStream, name)
	}
	if err := pm.keys.Install(name, key, nonce); err != nil {
		return err
	}
	return s.Rekey(key, nonce)
}

// DestroyAll drops every context and zeroizes key material (teardown).
func (pm *ParamsManager) DestroyAll() {
	pm.streams = make(map[string]*secmem.Stream)
	pm.keys.DestroyAll()
}

// Active reports how many stream contexts are live.
func (pm *ParamsManager) Active() int { return len(pm.streams) }

// --- Authentication Tag Manager -------------------------------------------

// TagRecord is one entry in the authentication-tag packet queue: the
// GCM tag and counter for a protected chunk, keyed by (stream, chunk
// index). On the wire these arrive as companion tag packets; the
// manager matches them to data packets by the tag attribute (§4.2).
type TagRecord struct {
	Stream string
	Chunk  uint32
	Epoch  uint32
	Tag    [secmem.TagSize]byte
}

// TagRecordSize is the serialized tag-packet payload size.
const TagRecordSize = 4 + 4 + 4 + secmem.TagSize // stream hash, chunk, epoch, tag

// Marshal encodes the record as a tag-packet payload.
func (t TagRecord) Marshal() []byte {
	buf := make([]byte, TagRecordSize)
	binary.LittleEndian.PutUint32(buf[0:], hashStream(t.Stream))
	binary.LittleEndian.PutUint32(buf[4:], t.Chunk)
	binary.LittleEndian.PutUint32(buf[8:], t.Epoch)
	copy(buf[12:], t.Tag[:])
	return buf
}

func hashStream(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// TagManager is the Authentication Tag Manager control panel: it queues
// tag records and matches them with data chunks during verification.
type TagManager struct {
	pending map[uint64]TagRecord // key: stream hash << 32 | chunk
	matched uint64
	missing uint64

	// fault, when set, may drop an arriving tag record — the
	// tag-packet-loss fault class. A dropped tag makes the matching
	// data chunk fail closed until the Adaptor reposts it.
	fault        func(rec TagRecord) bool
	droppedFault uint64

	obs tagObs
}

// tagObs mirrors the manager's counters into the metrics registry. The
// zero value (all-nil handles) is the uninstrumented state.
type tagObs struct {
	enqueued, matched, missing, dropped *obsv.Counter
}

// SetObserver instruments the tag manager; a nil hub clears it.
func (tm *TagManager) SetObserver(h *obsv.Hub) {
	if h == nil {
		tm.obs = tagObs{}
		return
	}
	reg := h.Reg()
	tm.obs = tagObs{
		enqueued: reg.Counter("sc.tags.enqueued"),
		matched:  reg.Counter("sc.tags.matched"),
		missing:  reg.Counter("sc.tags.missing"),
		dropped:  reg.Counter("sc.tags.dropped_by_fault"),
	}
}

// NewTagManager returns an empty tag queue.
func NewTagManager() *TagManager {
	return &TagManager{pending: make(map[uint64]TagRecord)}
}

func tagKey(stream string, chunk uint32) uint64 {
	return uint64(hashStream(stream))<<32 | uint64(chunk)
}

// Enqueue stores an arriving tag record.
func (tm *TagManager) Enqueue(rec TagRecord) {
	if tm.fault != nil && tm.fault(rec) {
		tm.droppedFault++
		tm.obs.dropped.Inc()
		return
	}
	tm.pending[tagKey(rec.Stream, rec.Chunk)] = rec
	tm.obs.enqueued.Inc()
}

// SetFaultHook installs (or clears, with nil) the tag-packet-loss
// injection point.
func (tm *TagManager) SetFaultHook(fn func(rec TagRecord) bool) { tm.fault = fn }

// DroppedByFault reports tag records lost to injected faults.
func (tm *TagManager) DroppedByFault() uint64 { return tm.droppedFault }

// Take matches and removes the tag for (stream, chunk); ok is false
// when no tag packet arrived, which fails the integrity check.
func (tm *TagManager) Take(stream string, chunk uint32) (TagRecord, bool) {
	k := tagKey(stream, chunk)
	rec, ok := tm.pending[k]
	if ok {
		delete(tm.pending, k)
		tm.matched++
		tm.obs.matched.Inc()
	} else {
		tm.missing++
		tm.obs.missing.Inc()
	}
	return rec, ok
}

// Depth reports queued, unmatched tags.
func (tm *TagManager) Depth() int { return len(tm.pending) }

// Stats reports matched and missing lookups.
func (tm *TagManager) Stats() (matched, missing uint64) { return tm.matched, tm.missing }

// Clear drops all pending tags.
func (tm *TagManager) Clear() {
	tm.pending = make(map[uint64]TagRecord)
}

// --- xPU environment guard --------------------------------------------------

// MMIOCheck is one environment-verification predicate on a guarded
// register: A3 traffic targeting Reg must satisfy Valid before being
// forwarded (e.g. the xPU page-table base must point into the measured
// region, §4 "checking the correctness of the xPU page table
// register").
type MMIOCheck struct {
	Name  string
	Reg   uint64 // BAR0-relative register offset
	Valid func(value uint64) bool
}

// EnvGuard is the xPU environment guard (§4.2): it validates guarded
// MMIO writes during computing and cleans the device on teardown.
type EnvGuard struct {
	checks   []MMIOCheck
	violated []string
	cleans   int
}

// NewEnvGuard returns a guard with no checks installed.
func NewEnvGuard() *EnvGuard { return &EnvGuard{} }

// AddCheck installs a register predicate.
func (g *EnvGuard) AddCheck(c MMIOCheck) { g.checks = append(g.checks, c) }

// VerifyMMIO validates a BAR0-relative register write; a false return
// means the write must be blocked. Unguarded registers pass.
func (g *EnvGuard) VerifyMMIO(reg uint64, value uint64) bool {
	for _, c := range g.checks {
		if c.Reg == reg && !c.Valid(value) {
			g.violated = append(g.violated, c.Name)
			return false
		}
	}
	return true
}

// Violations lists failed checks so far.
func (g *EnvGuard) Violations() []string { return g.violated }

// Cleans reports how many environment cleans the guard triggered.
func (g *EnvGuard) Cleans() int { return g.cleans }

// CleanCmd describes how the guard resets the device: a soft
// environment-reset MMIO when supported, otherwise a cold boot.
type CleanCmd struct {
	Soft bool
	Reg  uint64
	Val  uint64
}

// CleanPlan decides the teardown reset strategy for a device that does
// or does not support software reset.
func (g *EnvGuard) CleanPlan(softResetSupported bool, resetReg, softVal, coldVal uint64) CleanCmd {
	g.cleans++
	if softResetSupported {
		return CleanCmd{Soft: true, Reg: resetReg, Val: softVal}
	}
	return CleanCmd{Soft: false, Reg: resetReg, Val: coldVal}
}

// ChunkSize is the protected-payload chunking granularity: one TLP
// payload (Max_Payload_Size). Each chunk consumes one IV counter and
// one tag record.
const ChunkSize = pcie.MaxPayload
