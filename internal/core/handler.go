package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

// StreamID names a protected data stream managed by the De/Encryption
// Parameters Manager. The Adaptor and PCIe-SC agree on stream names
// during trust establishment.
const (
	// StreamH2D protects host→device payloads (inputs, weights, code).
	StreamH2D = "h2d"
	// StreamD2H protects device→host payloads (results).
	StreamD2H = "d2h"
	// StreamConfig protects Packet Filter policy updates (§4.1
	// "dynamic and secure configuration").
	StreamConfig = "config"
	// StreamMMIO keys the A3 integrity MACs on control traffic.
	StreamMMIO = "mmio"
)

// ErrNoStream reports a protected packet arriving before its stream's
// parameters were installed.
var ErrNoStream = errors.New("core: no de/encryption parameters for stream")

// ErrStreamHashCollision reports an Activate whose stream name collides
// with an already-active stream (or the reserved MMIO stream) under the
// 32-bit wire hash. Tag packets carry only the hash, so admitting both
// names would make their records ambiguous; the manager fails closed
// and rejects the second stream.
var ErrStreamHashCollision = errors.New("core: stream name hash collides with an active stream")

// ParamsManager is the De/Encryption Parameters Manager control panel
// (§4.2): it owns the per-stream cryptographic parameters (key, the
// 12-byte-nonce/4-byte-counter IV state) and hands out the secmem
// streams the AES engine uses. Each logical transfer region binds to
// one stream context. All methods are safe for concurrent use.
type ParamsManager struct {
	mu      sync.RWMutex
	keys    *secmem.KeyStore
	streams map[string]*secmem.Stream
	// byHash indexes active stream names by their 32-bit wire hash —
	// the tag-ingest hot path resolves one hash per record, so this
	// must not rehash every name. Activation rejects collisions, so
	// each hash maps to at most one name.
	byHash map[uint32]string

	// hub/track propagate observability to streams activated later.
	hub   *obsv.Hub
	track string
}

// SetObserver instruments existing streams and records the hub so
// streams activated afterwards inherit it.
func (pm *ParamsManager) SetObserver(h *obsv.Hub, track string) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.hub = h
	pm.track = track
	for name, s := range pm.streams {
		s.SetObserver(h, track, name)
	}
}

// NewParamsManager builds a manager over a key store (the PCIe-SC's
// trust-module storage).
func NewParamsManager(keys *secmem.KeyStore) *ParamsManager {
	return &ParamsManager{
		keys:    keys,
		streams: make(map[string]*secmem.Stream),
		byHash:  make(map[uint32]string),
	}
}

// Activate instantiates the stream context for a named stream from
// installed key material. A name whose 32-bit wire hash collides with
// an already-active stream (or the reserved StreamMMIO name) is
// rejected: tag packets identify streams by hash alone, and two live
// streams sharing one hash could cross-match each other's tags.
// wellKnownStreams are the platform's fixed stream names. Tag records
// for them resolve even before activation, and no other name may
// activate with a colliding hash.
var wellKnownStreams = []string{StreamH2D, StreamD2H, StreamConfig, StreamMMIO}

func (pm *ParamsManager) Activate(name string) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	h := hashStream(name)
	for _, known := range wellKnownStreams {
		if name != known && h == hashStream(known) {
			return fmt.Errorf("%w: %q vs reserved %q (hash %#x)",
				ErrStreamHashCollision, name, known, h)
		}
	}
	for other := range pm.streams {
		if other != name && hashStream(other) == h {
			return fmt.Errorf("%w: %q vs active %q (hash %#x)",
				ErrStreamHashCollision, name, other, h)
		}
	}
	s, err := pm.keys.Stream(name)
	if err != nil {
		return err
	}
	s.SetObserver(pm.hub, pm.track, name)
	pm.streams[name] = s
	pm.byHash[h] = name
	return nil
}

// Stream returns the active context for name.
func (pm *ParamsManager) Stream(name string) (*secmem.Stream, error) {
	pm.mu.RLock()
	s, ok := pm.streams[name]
	pm.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoStream, name)
	}
	return s, nil
}

// NameByHash resolves a wire stream hash to the unique active stream
// carrying it. Activation rejects colliding names, so at most one
// active stream can match.
func (pm *ParamsManager) NameByHash(h uint32) (string, bool) {
	pm.mu.RLock()
	name, ok := pm.byHash[h]
	pm.mu.RUnlock()
	return name, ok
}

// Rekey replaces a stream's parameters (IV-exhaustion mitigation, §6).
func (pm *ParamsManager) Rekey(name string, key, nonce []byte) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	s, ok := pm.streams[name]
	if !ok {
		return fmt.Errorf("%w %q", ErrNoStream, name)
	}
	if err := pm.keys.Install(name, key, nonce); err != nil {
		return err
	}
	return s.Rekey(key, nonce)
}

// DestroyAll drops every context and zeroizes key material (teardown).
func (pm *ParamsManager) DestroyAll() {
	pm.mu.Lock()
	pm.streams = make(map[string]*secmem.Stream)
	pm.byHash = make(map[uint32]string)
	pm.mu.Unlock()
	pm.keys.DestroyAll()
}

// Active reports how many stream contexts are live.
func (pm *ParamsManager) Active() int {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	return len(pm.streams)
}

// --- Authentication Tag Manager -------------------------------------------

// TagRecord is one entry in the authentication-tag packet queue: the
// GCM tag and counter for a protected chunk, keyed by (stream, chunk
// index). On the wire these arrive as companion tag packets; the
// manager matches them to data packets by the tag attribute (§4.2).
type TagRecord struct {
	Stream string
	Chunk  uint32
	Epoch  uint32
	Tag    [secmem.TagSize]byte
}

// TagRecordSize is the serialized tag-packet payload size.
const TagRecordSize = 4 + 4 + 4 + secmem.TagSize // stream hash, chunk, epoch, tag

// Marshal encodes the record as a tag-packet payload.
func (t TagRecord) Marshal() []byte {
	return t.AppendMarshal(make([]byte, 0, TagRecordSize))
}

// AppendMarshal appends the record's tag-packet encoding to buf and
// returns the extended slice — the allocation-free variant for callers
// assembling multi-record tag packets into reused buffers.
func (t TagRecord) AppendMarshal(buf []byte) []byte {
	var zero [TagRecordSize]byte
	off := len(buf)
	buf = append(buf, zero[:]...)
	binary.LittleEndian.PutUint32(buf[off+0:], hashStream(t.Stream))
	binary.LittleEndian.PutUint32(buf[off+4:], t.Chunk)
	binary.LittleEndian.PutUint32(buf[off+8:], t.Epoch)
	copy(buf[off+12:], t.Tag[:])
	return buf
}

func hashStream(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// tagID is the full identity of a pending tag record. Records are
// keyed by the complete (stream, chunk) pair — not by the 32-bit
// stream-hash prefix used on the wire — so two streams whose names
// collide under hashStream can never cross-match or steal each other's
// tags.
type tagID struct {
	stream string
	chunk  uint32
}

// DefaultTagCap bounds the pending-tag queue. Under tag-packet loss
// the data chunk never claims its record, so without a cap a lossy or
// malicious peer could grow the queue forever; overflowing the cap
// evicts the oldest unmatched records fail-closed (their data chunks
// will miss the tag match and be rejected).
const DefaultTagCap = 4096

// TagManager is the Authentication Tag Manager control panel: it queues
// tag records and matches them with data chunks during verification.
// All methods are safe for concurrent use.
type TagManager struct {
	mu      sync.Mutex
	pending map[tagID]TagRecord
	// order tracks arrival order for cap eviction. Entries matched by
	// Take leave stale order slots behind; evictLocked skips those and
	// the slice is compacted when stale entries dominate.
	order   []tagID
	cap     int
	matched uint64
	missing uint64
	evicted uint64

	// fault, when set, may drop an arriving tag record — the
	// tag-packet-loss fault class. A dropped tag makes the matching
	// data chunk fail closed until the Adaptor reposts it.
	fault        func(rec TagRecord) bool
	droppedFault uint64

	obs tagObs
}

// tagObs mirrors the manager's counters into the metrics registry. The
// zero value (all-nil handles) is the uninstrumented state.
type tagObs struct {
	enqueued, matched, missing, dropped, evicted *obsv.Counter
}

// SetObserver instruments the tag manager; a nil hub clears it.
func (tm *TagManager) SetObserver(h *obsv.Hub) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if h == nil {
		tm.obs = tagObs{}
		return
	}
	reg := h.Reg()
	tm.obs = tagObs{
		enqueued: reg.Counter("sc.tags.enqueued"),
		matched:  reg.Counter("sc.tags.matched"),
		missing:  reg.Counter("sc.tags.missing"),
		dropped:  reg.Counter("sc.tags.dropped_by_fault"),
		evicted:  reg.Counter("sc.tags.evicted"),
	}
}

// NewTagManager returns an empty tag queue with the default cap.
func NewTagManager() *TagManager {
	return &TagManager{pending: make(map[tagID]TagRecord), cap: DefaultTagCap}
}

// SetPendingCap changes the pending-queue bound (≤0 restores the
// default) and immediately evicts down to the new cap.
func (tm *TagManager) SetPendingCap(n int) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if n <= 0 {
		n = DefaultTagCap
	}
	tm.cap = n
	tm.evictLocked()
}

// PendingCap reports the configured bound.
func (tm *TagManager) PendingCap() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.cap
}

// evictLocked drops oldest-first until the queue fits the cap.
func (tm *TagManager) evictLocked() {
	for len(tm.pending) > tm.cap && len(tm.order) > 0 {
		id := tm.order[0]
		tm.order = tm.order[1:]
		if _, ok := tm.pending[id]; !ok {
			continue // already matched; stale order slot
		}
		delete(tm.pending, id)
		tm.evicted++
		tm.obs.evicted.Inc()
	}
	// Compact once stale (already-matched) slots dominate so the order
	// queue cannot grow without bound either.
	if len(tm.order) > 2*len(tm.pending)+16 {
		live := tm.order[:0]
		for _, id := range tm.order {
			if _, ok := tm.pending[id]; ok {
				live = append(live, id)
			}
		}
		tm.order = live
	}
}

// Enqueue stores an arriving tag record, evicting the oldest pending
// records (fail-closed) if the queue would exceed its cap.
func (tm *TagManager) Enqueue(rec TagRecord) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.fault != nil && tm.fault(rec) {
		tm.droppedFault++
		tm.obs.dropped.Inc()
		return
	}
	id := tagID{stream: rec.Stream, chunk: rec.Chunk}
	if _, exists := tm.pending[id]; !exists {
		tm.order = append(tm.order, id)
	}
	tm.pending[id] = rec
	tm.obs.enqueued.Inc()
	tm.evictLocked()
}

// SetFaultHook installs (or clears, with nil) the tag-packet-loss
// injection point.
func (tm *TagManager) SetFaultHook(fn func(rec TagRecord) bool) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.fault = fn
}

// DroppedByFault reports tag records lost to injected faults.
func (tm *TagManager) DroppedByFault() uint64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.droppedFault
}

// HasSpan reports whether a record is pending for every chunk in
// [first, first+k) of stream, without matching, counting, or evicting.
// The decrypt-ahead prefetcher probes with this before committing to a
// speculative span decrypt: a probe must not disturb the miss
// accounting the demand path feeds the SLO monitors, and must not
// consume records the demand path may still need.
func (tm *TagManager) HasSpan(stream string, first uint32, k int) bool {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	for i := 0; i < k; i++ {
		rec, ok := tm.pending[tagID{stream: stream, chunk: first + uint32(i)}]
		if !ok || rec.Stream != stream {
			return false
		}
	}
	return true
}

// Take matches and removes the tag for (stream, chunk); ok is false
// when no tag packet arrived, which fails the integrity check. A
// record whose stored stream differs from the requested one (possible
// only if state was corrupted, since keys carry the full identity) is
// treated as missing — fail closed, never cross-matched.
func (tm *TagManager) Take(stream string, chunk uint32) (TagRecord, bool) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	id := tagID{stream: stream, chunk: chunk}
	rec, ok := tm.pending[id]
	if ok && rec.Stream != stream {
		ok = false
	}
	if ok {
		delete(tm.pending, id)
		tm.matched++
		tm.obs.matched.Inc()
		return rec, true
	}
	tm.missing++
	tm.obs.missing.Inc()
	return TagRecord{}, false
}

// Depth reports queued, unmatched tags.
func (tm *TagManager) Depth() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return len(tm.pending)
}

// Stats reports matched and missing lookups.
func (tm *TagManager) Stats() (matched, missing uint64) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.matched, tm.missing
}

// Evicted reports records dropped by the pending-queue cap.
func (tm *TagManager) Evicted() uint64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.evicted
}

// Clear drops all pending tags.
func (tm *TagManager) Clear() {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.pending = make(map[tagID]TagRecord)
	tm.order = nil
}

// --- xPU environment guard --------------------------------------------------

// MMIOCheck is one environment-verification predicate on a guarded
// register: A3 traffic targeting Reg must satisfy Valid before being
// forwarded (e.g. the xPU page-table base must point into the measured
// region, §4 "checking the correctness of the xPU page table
// register").
type MMIOCheck struct {
	Name  string
	Reg   uint64 // BAR0-relative register offset
	Valid func(value uint64) bool
}

// EnvGuard is the xPU environment guard (§4.2): it validates guarded
// MMIO writes during computing and cleans the device on teardown.
// All methods are safe for concurrent use.
type EnvGuard struct {
	mu       sync.Mutex
	checks   []MMIOCheck
	violated []string
	cleans   int
}

// NewEnvGuard returns a guard with no checks installed.
func NewEnvGuard() *EnvGuard { return &EnvGuard{} }

// AddCheck installs a register predicate.
func (g *EnvGuard) AddCheck(c MMIOCheck) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checks = append(g.checks, c)
}

// VerifyMMIO validates a BAR0-relative register write; a false return
// means the write must be blocked. Unguarded registers pass.
func (g *EnvGuard) VerifyMMIO(reg uint64, value uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, c := range g.checks {
		if c.Reg == reg && !c.Valid(value) {
			g.violated = append(g.violated, c.Name)
			return false
		}
	}
	return true
}

// Violations lists failed checks so far.
func (g *EnvGuard) Violations() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.violated...)
}

// Cleans reports how many environment cleans the guard triggered.
func (g *EnvGuard) Cleans() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cleans
}

// CleanCmd describes how the guard resets the device: a soft
// environment-reset MMIO when supported, otherwise a cold boot.
type CleanCmd struct {
	Soft bool
	Reg  uint64
	Val  uint64
}

// CleanPlan decides the teardown reset strategy for a device that does
// or does not support software reset.
func (g *EnvGuard) CleanPlan(softResetSupported bool, resetReg, softVal, coldVal uint64) CleanCmd {
	g.mu.Lock()
	g.cleans++
	g.mu.Unlock()
	if softResetSupported {
		return CleanCmd{Soft: true, Reg: resetReg, Val: softVal}
	}
	return CleanCmd{Soft: false, Reg: resetReg, Val: coldVal}
}

// ChunkSize is the protected-payload chunking granularity: one TLP
// payload (Max_Payload_Size). Each chunk consumes one IV counter and
// one tag record.
const ChunkSize = pcie.MaxPayload
