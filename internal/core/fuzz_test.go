package core

import (
	"testing"

	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

// The PCIe-SC's configuration windows receive attacker-writable bytes;
// every parser on that path must reject garbage without panicking.

func FuzzUnmarshalRule(f *testing.F) {
	f.Add(Rule{ID: 1, Mask: MatchKind | MatchAddr, Kind: pcie.MWr,
		AddrLo: 0x1000, AddrHi: 0x2000, Action: ActionWriteReadProtect}.Marshal())
	f.Add(make([]byte, RuleSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalRule(data)
		if err != nil {
			return
		}
		// Accepted rules round-trip.
		again, err := UnmarshalRule(r.Marshal())
		if err != nil || again != r {
			t.Fatalf("rule canonicalization unstable: %v / %v", again, err)
		}
		if r.Action < ActionDrop || r.Action > actionToL2 {
			t.Fatalf("invalid action %d accepted", r.Action)
		}
	})
}

func FuzzUnmarshalDescriptor(f *testing.F) {
	f.Add(Descriptor{ID: 1, Dir: DirH2D, Class: ActionWriteReadProtect,
		Base: 0x8000_0000, Len: 4096, ChunkSize: 256}.Marshal())
	f.Add(make([]byte, DescriptorSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := UnmarshalDescriptor(data)
		if err != nil {
			return
		}
		if d.ChunkSize == 0 || d.Len == 0 {
			t.Fatal("degenerate geometry accepted")
		}
		if d.Class != ActionWriteReadProtect && d.Class != ActionWriteProtect {
			t.Fatalf("non-protect class %v accepted", d.Class)
		}
	})
}

func FuzzUnmarshalBlob(f *testing.F) {
	key, nonce := secmem.FreshKey(), secmem.FreshNonce()
	s, _ := secmem.NewStream(key, nonce)
	sealed, _ := s.Seal([]byte("config payload"), nil)
	f.Add(MarshalBlob(sealed))
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBlob(data)
		if err != nil {
			return
		}
		// Structural invariant: the declared length matched the frame.
		if len(b.Ciphertext) != len(data)-12-secmem.TagSize {
			t.Fatal("length accounting broken")
		}
	})
}

func FuzzUnmarshalRekeyCommand(f *testing.F) {
	f.Add(RekeyCommand{Stream: StreamH2D, Key: secmem.FreshKey(), Nonce: secmem.FreshNonce()}.Marshal())
	f.Add([]byte{3, 'h', '2'})
	f.Fuzz(func(t *testing.T, data []byte) {
		rc, err := UnmarshalRekeyCommand(data)
		if err != nil {
			return
		}
		again, err := UnmarshalRekeyCommand(rc.Marshal())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Stream != rc.Stream || len(again.Key) != len(rc.Key) || len(again.Nonce) != len(rc.Nonce) {
			t.Fatal("rekey command canonicalization unstable")
		}
	})
}

// FuzzControllerControlWindow drives arbitrary bytes at the SC's
// configuration surface end to end: nothing may panic, and no rule may
// install without a valid seal.
func FuzzControllerControlWindow(f *testing.F) {
	f.Add(uint16(RegRuleWindow), []byte("garbage"))
	f.Add(uint16(RegDescWindow), make([]byte, 64))
	f.Add(uint16(RegRekeyWindow), make([]byte, 40))
	f.Add(uint16(RegTagWindow), make([]byte, TagRecordSize*2))
	f.Fuzz(func(t *testing.T, off uint16, payload []byte) {
		keys := secmem.NewKeyStore()
		sc := NewController(pcie.MakeID(1, 0, 0), pcie.Region{Base: 0xd010_0000, Size: SCBarSize}, keys)
		_ = keys.Install(StreamConfig, secmem.FreshKey(), secmem.FreshNonce())
		_ = sc.Params().Activate(StreamConfig)
		tvm := pcie.MakeID(0, 1, 0)
		sc.SetAuthorizedTVM(tvm)

		addr := 0xd010_0000 + uint64(off)%SCBarSize
		sc.Handle(pcie.NewMemWrite(tvm, addr, payload))
		// Ring every doorbell after the write.
		for _, db := range []uint64{RegRuleDoorbell, RegDescDoorbell, RegRekeyDoorbell} {
			sc.Handle(pcie.NewMemWrite(tvm, 0xd010_0000+db, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
		}
		l1, l2 := sc.Filter().RuleCount()
		if l1 != 0 || l2 != 0 {
			t.Fatal("fuzzed bytes installed a filter rule")
		}
	})
}
