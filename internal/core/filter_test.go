package core

import (
	"testing"
	"testing/quick"

	"ccai/internal/pcie"
)

var (
	tvmID   = pcie.MakeID(0, 1, 0)
	rogueID = pcie.MakeID(0, 9, 0)
	xpuID   = pcie.MakeID(2, 0, 0)
)

// paperFilter builds the Figure 5 example tables: TVM memory requests
// descend to L2; L2 classifies command writes to ccAI hardware as A2,
// command writes to the xPU as A3, data writes as A2, command reads as
// A4; everything else drops.
func paperFilter() *Filter {
	f := NewFilter()
	for _, r := range L1Screen(1, tvmID) {
		f.InstallL1(r)
	}
	f.InstallL2(Rule{ID: 1, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MWr, Requester: tvmID, AddrLo: 0x6000, AddrHi: 0x7000, Action: ActionWriteReadProtect})
	f.InstallL2(Rule{ID: 2, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MWr, Requester: tvmID, AddrLo: 0x8000, AddrHi: 0x9000, Action: ActionWriteProtect})
	f.InstallL2(Rule{ID: 3, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MWr, Requester: tvmID, AddrLo: 0x1000, AddrHi: 0x5000, Action: ActionWriteReadProtect})
	f.InstallL2(Rule{ID: 4, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MRd, Requester: tvmID, AddrLo: 0x1000, AddrHi: 0x5000, Action: ActionPassThrough})
	return f
}

func TestFilterFailClosedWhenEmpty(t *testing.T) {
	f := NewFilter()
	v := f.Classify(pcie.NewMemWrite(tvmID, 0x1000, []byte{1}))
	if v.Action != ActionDrop || v.Stage != 1 {
		t.Fatalf("empty filter verdict = %+v", v)
	}
}

func TestFilterTable1Categorization(t *testing.T) {
	f := paperFilter()
	cases := []struct {
		name string
		pkt  *pcie.Packet
		want Action
	}{
		{"cmd to ccAI HW", pcie.NewMemWrite(tvmID, 0x6100, []byte("cmd")), ActionWriteReadProtect},
		{"cmd to xPU", pcie.NewMemWrite(tvmID, 0x8010, []byte("db")), ActionWriteProtect},
		{"data write", pcie.NewMemWrite(tvmID, 0x2000, []byte("data")), ActionWriteReadProtect},
		{"cmd read", pcie.NewMemRead(tvmID, 0x2000, 64, 0), ActionPassThrough},
		{"rogue write", pcie.NewMemWrite(rogueID, 0x2000, []byte("evil")), ActionDrop},
		{"rogue read", pcie.NewMemRead(rogueID, 0x2000, 64, 0), ActionDrop},
		{"unmapped addr", pcie.NewMemWrite(tvmID, 0xdead0, []byte("x")), ActionDrop},
	}
	for _, c := range cases {
		if v := f.Classify(c.pkt); v.Action != c.want {
			t.Errorf("%s: got %v, want %v", c.name, v.Action, c.want)
		}
	}
	st := f.Stats()
	if st.Dropped != 3 || st.Protected != 2 || st.Verified != 1 || st.Passed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFilterL2FailClosed(t *testing.T) {
	f := paperFilter()
	// Authorized requester, authorized kind, but address outside every
	// L2 rule: must drop at stage 2.
	v := f.Classify(pcie.NewMemWrite(tvmID, 0xf000, []byte{1}))
	if v.Action != ActionDrop || v.Stage != 2 {
		t.Fatalf("verdict = %+v, want stage-2 drop", v)
	}
}

func TestFilterFirstMatchWins(t *testing.T) {
	f := NewFilter()
	f.InstallL1(Rule{ID: 1, Mask: MatchKind, Kind: pcie.MWr, Action: ActionPassThrough})
	f.InstallL1(Rule{ID: 2, Mask: MatchKind, Kind: pcie.MWr, Action: ActionDrop})
	v := f.Classify(pcie.NewMemWrite(tvmID, 0, []byte{1}))
	if v.Rule != 1 || v.Action != ActionPassThrough {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestMaskWildcards(t *testing.T) {
	r := Rule{Mask: MatchKind, Kind: pcie.MWr, Requester: tvmID}
	// Requester not masked: any requester matches.
	if !r.Matches(pcie.NewMemWrite(rogueID, 0, []byte{1})) {
		t.Fatal("unmasked field compared")
	}
	r.Mask |= MatchRequester
	if r.Matches(pcie.NewMemWrite(rogueID, 0, []byte{1})) {
		t.Fatal("masked field ignored")
	}
}

func TestMaskAddressBounds(t *testing.T) {
	r := Rule{Mask: MatchAddr, AddrLo: 0x1000, AddrHi: 0x2000}
	if !r.Matches(pcie.NewMemWrite(tvmID, 0x1000, []byte{1})) {
		t.Fatal("inclusive lower bound broken")
	}
	if r.Matches(pcie.NewMemWrite(tvmID, 0x2000, []byte{1})) {
		t.Fatal("exclusive upper bound broken")
	}
}

func TestRuleMarshalRoundTrip(t *testing.T) {
	r := Rule{
		ID: 7, Mask: MatchKind | MatchAddr | MatchTC, Kind: pcie.MRd,
		Requester: tvmID, Completer: xpuID,
		AddrLo: 0x1_0000_0000, AddrHi: 0x2_0000_0000, TC: 3, Action: ActionWriteProtect,
	}
	got, err := UnmarshalRule(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: %+v vs %+v", got, r)
	}
}

func TestRuleUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalRule(make([]byte, 10)); err == nil {
		t.Fatal("short blob accepted")
	}
	bad := Rule{ID: 1, Action: ActionDrop}.Marshal()
	bad[6] = 0xee // invalid action
	if _, err := UnmarshalRule(bad); err == nil {
		t.Fatal("invalid action accepted")
	}
}

// Property: rule marshaling round-trips for arbitrary field values.
func TestRuleMarshalProperty(t *testing.T) {
	f := func(id, mask, req, cpl uint16, lo, hi uint64, tc uint8) bool {
		r := Rule{
			ID: id, Mask: Mask(mask) & 0x1f, Kind: pcie.MWr,
			Requester: pcie.ID(req), Completer: pcie.ID(cpl),
			AddrLo: lo, AddrHi: hi, TC: tc, Action: ActionWriteReadProtect,
		}
		got, err := UnmarshalRule(r.Marshal())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPermissionActionMapping(t *testing.T) {
	want := map[Permission]Action{
		Prohibited:         ActionDrop,
		WriteReadProtected: ActionWriteReadProtect,
		WriteProtected:     ActionWriteProtect,
		FullAccessible:     ActionPassThrough,
	}
	for p, a := range want {
		if p.Action() != a {
			t.Errorf("%v -> %v, want %v", p, p.Action(), a)
		}
	}
}

func TestFilterClear(t *testing.T) {
	f := paperFilter()
	f.Clear()
	l1, l2 := f.RuleCount()
	if l1 != 0 || l2 != 0 {
		t.Fatal("Clear left rules")
	}
	if v := f.Classify(pcie.NewMemWrite(tvmID, 0x2000, []byte{1})); v.Action != ActionDrop {
		t.Fatal("cleared filter not fail-closed")
	}
}

// Property: the filter never returns actionToL2 to callers.
func TestFilterNeverLeaksInternalVerdict(t *testing.T) {
	f := paperFilter()
	g := func(kind uint8, req uint16, addr uint64) bool {
		p := &pcie.Packet{Header: pcie.Header{
			Kind: pcie.Kind(kind % 8), Requester: pcie.ID(req), Address: addr,
		}}
		v := f.Classify(p)
		return v.Action != actionToL2
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- lock-free snapshot + verdict memo (DESIGN.md §10) ----------------------

// TestFilterMemoHitMatchesCold: for a (kind, requester)-pure verdict
// the second classification comes from the memo; it must be identical
// to the cold one, and stats must count both.
func TestFilterMemoHitMatchesCold(t *testing.T) {
	f := NewFilter()
	f.InstallL1(Rule{ID: 5, Mask: MatchKind | MatchRequester,
		Kind: pcie.MWr, Requester: tvmID, Action: ActionPassThrough})
	p := pcie.NewMemWrite(tvmID, 0x1234, []byte{1})
	cold := f.Classify(p)
	warm := f.Classify(p)
	if cold != warm {
		t.Fatalf("memoized verdict %+v diverges from cold %+v", warm, cold)
	}
	if got := f.Stats().Passed; got != 2 {
		t.Fatalf("Passed = %d, want 2 (memo hits must still count)", got)
	}
}

// TestFilterMemoInvalidatedByInstall: rule mutations publish a fresh
// snapshot with an empty memo, so a cached verdict can never outlive
// the rules that produced it.
func TestFilterMemoInvalidatedByInstall(t *testing.T) {
	f := NewFilter()
	f.InstallL1(Rule{ID: 1, Mask: MatchKind | MatchRequester,
		Kind: pcie.MWr, Requester: tvmID, Action: ActionPassThrough})
	p := pcie.NewMemWrite(tvmID, 0x1000, []byte{1})
	if v := f.Classify(p); v.Action != ActionPassThrough {
		t.Fatalf("pre-mutation verdict = %+v", v)
	}
	f.Classify(p) // ensure the verdict is memoized before mutating

	// Clear is the strongest mutation: the empty table fail-closes.
	f.Clear()
	if v := f.Classify(p); v.Action != ActionDrop {
		t.Fatalf("stale memo served after Clear: %+v", v)
	}
	f.InstallL1(Rule{ID: 2, Mask: MatchKind | MatchRequester,
		Kind: pcie.MWr, Requester: tvmID, Action: ActionWriteReadProtect})
	if v := f.Classify(p); v.Action != ActionWriteReadProtect {
		t.Fatalf("stale memo served after reinstall: %+v", v)
	}
}

// TestFilterMemoNeverCachesAddressDependentVerdicts: two packets in
// the same (kind, requester) class but different addresses must be
// classified independently whenever any examined rule matches on more
// than kind/requester — the memo may only serve verdicts that provably
// depend on the memo key alone.
func TestFilterMemoNeverCachesAddressDependentVerdicts(t *testing.T) {
	f := paperFilter() // L2 rules classify by address
	in := f.Classify(pcie.NewMemWrite(tvmID, 0x6100, []byte{1}))
	if in.Action != ActionWriteReadProtect {
		t.Fatalf("in-window write = %+v", in)
	}
	out := f.Classify(pcie.NewMemWrite(tvmID, 0xf000, []byte{1}))
	if out.Action != ActionDrop {
		t.Fatalf("out-of-window write = %+v (address-dependent verdict cached?)", out)
	}

	// Same with an address-masked L1 rule: the miss path examines it,
	// so even a terminal kind/requester verdict for that class must not
	// cache across addresses.
	g := NewFilter()
	g.InstallL1(Rule{ID: 1, Mask: MatchKind | MatchRequester | MatchAddr,
		Kind: pcie.MRd, Requester: tvmID, AddrLo: 0x1000, AddrHi: 0x2000, Action: ActionPassThrough})
	if v := g.Classify(pcie.NewMemRead(tvmID, 0x1800, 8, 0)); v.Action != ActionPassThrough {
		t.Fatalf("in-range read = %+v", v)
	}
	if v := g.Classify(pcie.NewMemRead(tvmID, 0x9000, 8, 0)); v.Action != ActionDrop {
		t.Fatalf("out-of-range read = %+v", v)
	}
}

// TestFilterConcurrentClassifyAndMutate hammers lock-free Classify
// against concurrent Install/Clear cycles. Run under -race; the
// assertions pin the COW contract — a classification sees some
// complete snapshot, never a torn table, and the final state serves
// the final rules.
func TestFilterConcurrentClassifyAndMutate(t *testing.T) {
	f := NewFilter()
	f.InstallL1(Rule{ID: 1, Mask: MatchKind | MatchRequester,
		Kind: pcie.MWr, Requester: tvmID, Action: ActionPassThrough})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f.Clear()
			f.InstallL1(Rule{ID: uint16(i), Mask: MatchKind | MatchRequester,
				Kind: pcie.MWr, Requester: tvmID, Action: ActionPassThrough})
		}
	}()
	p := pcie.NewMemWrite(tvmID, 0x1000, []byte{1})
	for i := 0; i < 20000; i++ {
		v := f.Classify(p)
		// Mid-mutation a packet may land on the cleared snapshot (drop,
		// fail-closed) or the rule (pass) — never anything else.
		if v.Action != ActionPassThrough && v.Action != ActionDrop {
			t.Fatalf("torn verdict under concurrent mutation: %+v", v)
		}
	}
	close(stop)
	<-done
	if v := f.Classify(p); v.Action != ActionPassThrough {
		t.Fatalf("final verdict = %+v", v)
	}
}
