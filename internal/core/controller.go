package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ccai/internal/arena"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

// PCIe-SC control register offsets within its own 4 KB Upstream BAR
// (§7.2: "we allocate a 4KB Upstream Bar space on the PCIe-SC").
const (
	RegSCStatus      = 0x000 // RO: status bits
	RegRuleDoorbell  = 0x010 // WO: decode the sealed rule in the rule window
	RegDescDoorbell  = 0x018 // WO: decode the sealed descriptor in the window
	RegDescRelease   = 0x020 // WO: release descriptor by ID
	RegTeardown      = 0x028 // WO: destroy keys, clean xPU, drop regions
	RegMetaBase      = 0x030 // RW: host address of the DMA-metadata batch buffer
	RegMetaSize      = 0x038 // RW: batch buffer size
	RegNotify        = 0x040 // WO: region-ready notify (the batched I/O write of §5)
	RegRekeyDoorbell = 0x048 // WO: apply the sealed rekey command in the window
	RegMMIOSeq       = 0x050 // RO: next expected A3 MMIO sequence number (recovery resync)
	RegRingBase      = 0x058 // RW: host address of the submission ring (ring.go)
	RegRingSize      = 0x060 // RW: submission ring slot count
	RegRingDoorbell  = 0x068 // WO: publish ring entries up to the written tail index
	RegTagWindow     = 0x080 // WO: tag-record uploads (payload = packed records)
	RegRuleWindow    = 0x100 // WO: sealed rule blob staging (256 B)
	RegDescWindow    = 0x200 // WO: sealed descriptor blob staging (256 B)
	RegRekeyWindow   = 0x300 // WO: sealed rekey command staging (256 B)
	SCBarSize        = 0x1000
)

// Status bits.
const (
	SCStatusReady     = 1 << 0
	SCStatusConfigErr = 1 << 1
)

// Stats aggregates the controller's observable behaviour for the
// security evaluation and the trace tooling.
type Stats struct {
	Filter          FilterStats
	DecryptedChunks uint64
	EncryptedChunks uint64
	VerifiedChunks  uint64
	AuthFailures    uint64
	ConfigRejects   uint64
	GuardBlocks     uint64
	Teardowns       uint64
	// DuplicateReads counts benign retransmits re-served from the
	// verified-chunk record (duplicate-read suppression): the chunk was
	// re-fetched and re-authenticated against its retained tag without
	// advancing the stream counter, so recovery never weakens the
	// replay discipline.
	DuplicateReads uint64
	// PrefetchedChunks counts H2D chunks the SC decrypted ahead of the
	// device's read request (the decrypt/DMA overlap pipeline), and
	// PrefetchHits counts span reads served straight from that cache —
	// reads whose crypto ran concurrently with the previous span's DMA.
	PrefetchedChunks uint64
	PrefetchHits     uint64
	// BatchedD2HSpans counts device write bursts the SC sealed as one
	// engine batch instead of one engine dispatch per chunk.
	BatchedD2HSpans uint64
}

// Controller is the PCIe Security Controller. On the host bus it is an
// endpoint claiming (a) its own control BAR and (b) a shadow window over
// the xPU's BAR0, so all host→device MMIO lands here first. On the
// internal bus it is the upstream port through which all device DMA and
// MSI traffic must pass. Every packet in both directions crosses the
// Packet Filter.
type Controller struct {
	id      pcie.ID
	bar     pcie.Region
	hostBus *pcie.Bus

	internal *pcie.Bus
	xpuID    pcie.ID
	xpuBar   pcie.Region

	filter *Filter
	params *ParamsManager
	tags   *TagManager
	guard  *EnvGuard

	regions regionTable

	// mu guards the controller's own mutable state below (mmioSeq,
	// status, regs, the config staging buffers, d2hChunks, verified,
	// stats). Control panels (filter, params, tags, guard, regions)
	// carry their own leaf locks and may be called while mu is held;
	// mu is NEVER held across a bus Route call — routing can reenter
	// this controller on the same goroutine (doorbell → DMA upstream).
	mu sync.Mutex

	// config is the stream guarding policy/descriptor uploads.
	// mmioSeq tracks the next expected A3 MMIO sequence number.
	mmioSeq uint32

	status    uint64
	regs      map[uint64]uint64
	ruleBuf   []byte
	descBuf   []byte
	rekeyBuf  []byte
	d2hChunks map[uint32]uint64
	tagPend   map[uint32]*tagSpan

	// wspans accumulates in-order device D2H plaintext per region so a
	// burst seals as one engine batch with the span's ciphertext DMA
	// overlapping the next chunks' crypto (pipeline.go).
	wspans map[uint32]*writeSpan
	// wsFree recycles writeSpan shells between flushes (the steady-state
	// D2H loop otherwise allocates one per span). Guarded by mu.
	wsFree []*writeSpan

	// pf is the single-entry H2D decrypt-ahead cache: the plaintext of
	// the span the device is predicted to read next, decrypted while
	// the previous span's completion DMA was in flight (pipeline.go).
	pf spanCache

	// scratchPool holds the reusable span bookkeeping (tag records,
	// sealed views, AADs) for the span paths — two slots, because a
	// demand decrypt still holds its scratch while it kicks the next
	// prefetch. Taken and returned under mu, with a fresh allocation as
	// fallback so deeper nesting is merely slower, never wrong.
	scratchPool [2]*spanScratch

	// verified retains the tag record of every H2D chunk already
	// accepted once, keyed by descriptor ID then chunk index, so a
	// benign retransmit (device re-read after a fault) can be
	// re-verified and re-served without loosening the stream's replay
	// watermark. The per-region nesting makes a descriptor release a
	// single map delete instead of a scan over every retained chunk;
	// within a region the records live in chunk-indexed slices
	// (verifiedSet) because the datapath inserts one per accepted chunk
	// and per-insert map growth dominated the decrypt path's allocation
	// profile.
	verified map[uint32]*verifiedSet

	// recycle arms the datapath's payload-recycling fast paths: bounce
	// fetches, ciphertext staging and retained device write payloads
	// return to the shared arena once their last holder is done with
	// them. Only the platform enables this (EnableDatapathRecycling),
	// because it is sound solely under the platform's wiring contract —
	// every data-plane payload originates from the arena-aware device
	// and host-bridge paths, and every recycling site re-checks
	// Bus.Untapped after routing. Controllers driven directly by tests
	// keep the never-reuse discipline.
	recycle bool

	// ringHead is the submission-ring consumption index (absolute entry
	// count); the matching tail arrives through RegRingDoorbell.
	ringHead uint64

	// Completion reaping (ring.go): after forwarding a guarded write to
	// reapDoorbellReg the SC reads the device head from reapHeadReg and
	// caches it in cplWord (RingCplValid-tagged, guarded by mu) for the
	// ring-header writeback. The register offsets are assembly-time
	// configuration — the platform knows the device layout, the SC does
	// not.
	reapConfigured  bool
	reapDoorbellReg uint64
	reapHeadReg     uint64
	cplWord         uint64

	authorizedTVM pcie.ID
	tvmPinned     bool

	// slab and pkts amortize the SC's per-chunk heap traffic: slab
	// carves never-recycled payload bytes (safe to hand to bus taps),
	// pkts bump-allocates the packet structs themselves.
	slab arena.Slab
	pkts pcie.PacketArena

	// pool bounds the SC's own batch-crypto parallelism (span decrypts
	// on the H2D read path). Stateless and safe without mu.
	pool *secmem.Pool

	stats Stats

	// obs mirrors stats into the metrics registry and records spans.
	// The zero value (all-nil handles) is the uninstrumented state, so
	// increments and Begin/End calls never branch.
	obs controllerObs

	// onTeardown lets the platform hook environment cleaning.
	onTeardown func()
}

// controllerObs holds the controller's cached observability handles.
type controllerObs struct {
	tracer                  *obsv.Tracer
	decrypted, encrypted    *obsv.Counter
	verified, authFail      *obsv.Counter
	cfgRejects, guardBlocks *obsv.Counter
	teardowns, dupReads     *obsv.Counter
}

// SetObserver instruments the controller and its control panels
// (filter, params manager, tag manager); a nil hub clears everything.
func (c *Controller) SetObserver(h *obsv.Hub) {
	c.filter.SetObserver(h)
	c.params.SetObserver(h, obsv.TrackCrypto+"/sc")
	c.tags.SetObserver(h)
	if h == nil {
		c.obs = controllerObs{}
		return
	}
	reg := h.Reg()
	c.obs = controllerObs{
		tracer:      h.T(),
		decrypted:   reg.Counter("sc.decrypted_chunks"),
		encrypted:   reg.Counter("sc.encrypted_chunks"),
		verified:    reg.Counter("sc.verified_chunks"),
		authFail:    reg.Counter("sc.auth_failures"),
		cfgRejects:  reg.Counter("sc.config_rejects"),
		guardBlocks: reg.Counter("sc.guard_blocks"),
		teardowns:   reg.Counter("sc.teardowns"),
		dupReads:    reg.Counter("sc.duplicate_reads"),
	}
}

// EnableDatapathRecycling arms the arena-recycling fast paths (see the
// recycle field). Platform assembly only; call before traffic flows.
func (c *Controller) EnableDatapathRecycling() {
	c.mu.Lock()
	c.recycle = true
	c.mu.Unlock()
}

// verifiedSet densely retains one region's accepted-chunk tag records,
// indexed by chunk ordinal. get/put are nil-safe on the read side so
// lookups compose with the map access without an existence check.
type verifiedSet struct {
	recs []TagRecord
	seen []bool
}

func (v *verifiedSet) get(chunk uint32) (TagRecord, bool) {
	if v == nil || int(chunk) >= len(v.seen) || !v.seen[chunk] {
		return TagRecord{}, false
	}
	return v.recs[chunk], true
}

func (v *verifiedSet) put(chunk uint32, rec TagRecord) {
	if int(chunk) >= len(v.seen) {
		n := 2 * len(v.seen)
		if n < int(chunk)+1 {
			n = int(chunk) + 1
		}
		recs := make([]TagRecord, n)
		seen := make([]bool, n)
		copy(recs, v.recs)
		copy(seen, v.seen)
		v.recs, v.seen = recs, seen
	}
	v.recs[chunk], v.seen[chunk] = rec, true
}

// verifiedFor returns the region's verified set, creating it on first
// use sized for hint chunks (the region's chunk count when the caller
// knows it — one allocation instead of a doubling ladder). Caller
// holds c.mu.
func (c *Controller) verifiedFor(region uint32, hint int) *verifiedSet {
	v := c.verified[region]
	if v == nil {
		v = new(verifiedSet)
		if hint > 0 {
			v.recs = make([]TagRecord, hint)
			v.seen = make([]bool, hint)
		}
		c.verified[region] = v
	}
	return v
}

// chunkCount reports the descriptor's region size in chunks.
func chunkCount(desc Descriptor) int {
	cs := uint64(desc.ChunkSize)
	if cs == 0 {
		cs = ChunkSize
	}
	return int((desc.Len + cs - 1) / cs)
}

// authFailed counts one integrity failure in both stats and metrics.
// It takes c.mu and must not be called with it held.
func (c *Controller) authFailed() {
	c.mu.Lock()
	c.stats.AuthFailures++
	c.mu.Unlock()
	c.obs.authFail.Inc()
}

// tagMatch wraps TagManager.Take in a tag_match span.
func (c *Controller) tagMatch(stream string, chunk uint32) (TagRecord, bool) {
	sp := c.obs.tracer.Begin(obsv.TrackSC, "tag_match",
		obsv.Str("stream", stream), obsv.U64("chunk", uint64(chunk)))
	rec, ok := c.tags.Take(stream, chunk)
	sp.Attr(obsv.Bool("matched", ok))
	sp.End()
	return rec, ok
}

// NewController builds a PCIe-SC with the given identity and control
// BAR placement, guarding the xPU whose BAR0 shadow window is xpuBar.
func NewController(id pcie.ID, bar pcie.Region, keys *secmem.KeyStore) *Controller {
	return &Controller{
		id:        id,
		bar:       bar,
		filter:    NewFilter(),
		params:    NewParamsManager(keys),
		tags:      NewTagManager(),
		guard:     NewEnvGuard(),
		regs:      make(map[uint64]uint64),
		d2hChunks: make(map[uint32]uint64),
		tagPend:   make(map[uint32]*tagSpan),
		wspans:    make(map[uint32]*writeSpan),
		verified:  make(map[uint32]*verifiedSet),
		pool:      secmem.NewPool(cryptoWidth()),
		status:    SCStatusReady,
	}
}

// cryptoWidth mirrors the Adaptor's auto policy for crypto-pool sizing:
// one worker per scheduler thread, capped where AES-GCM stops scaling.
func cryptoWidth() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// AttachHostBus registers the controller's host-side presence: its own
// control BAR plus the shadow claim over the xPU window.
func (c *Controller) AttachHostBus(bus *pcie.Bus, xpuWindow pcie.Region) error {
	c.hostBus = bus
	c.xpuBar = xpuWindow
	bus.Attach(c)
	if err := bus.Claim(c.id, c.bar); err != nil {
		return err
	}
	return bus.Claim(c.id, xpuWindow)
}

// AttachInternalBus wires the trusted downstream segment holding the
// xPU.
func (c *Controller) AttachInternalBus(bus *pcie.Bus, xpu pcie.ID) {
	c.internal = bus
	c.xpuID = xpu
}

// AttachInternalBusOnly configures a controller used as a Mux unit:
// it wires the internal bus, the shadow window geometry, and the host
// bus used for mastering — without claiming anything on the host bus
// (the Mux owns the host-side presence).
func (c *Controller) AttachInternalBusOnly(bus *pcie.Bus, xpu pcie.ID, window pcie.Region, host *pcie.Bus) {
	c.internal = bus
	c.xpuID = xpu
	c.xpuBar = window
	c.hostBus = host
}

// Keys exposes the controller's trust-module key store for
// provisioning during trust establishment.
func (c *Controller) Keys() *secmem.KeyStore { return c.params.keys }

// SCStatusBits reports the controller's status register value.
func (c *Controller) SCStatusBits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// DeviceID implements pcie.Endpoint.
func (c *Controller) DeviceID() pcie.ID { return c.id }

// Filter exposes the Packet Filter for rule installation during secure
// boot (static platform rules) and for statistics.
func (c *Controller) Filter() *Filter { return c.filter }

// Params exposes the De/Encryption Parameters Manager for trust
// establishment.
func (c *Controller) Params() *ParamsManager { return c.params }

// Guard exposes the environment guard for platform check installation.
func (c *Controller) Guard() *EnvGuard { return c.guard }

// Tags exposes the Authentication Tag Manager (tests and tooling).
func (c *Controller) Tags() *TagManager { return c.tags }

// Stats snapshots controller counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	s.Filter = c.filter.Stats()
	return s
}

// SetTeardownHook installs a platform callback run after Teardown.
func (c *Controller) SetTeardownHook(fn func()) { c.onTeardown = fn }

// Regions reports live protected regions (tests).
func (c *Controller) Regions() int { return c.regions.count() }

// ConfigureCompletionReap enables batched completion reaping: after
// every guarded write the SC forwards to doorbellReg (BAR0-relative),
// it reads headReg from the device and DMA-writes the value into the
// submission ring header (ring.go). Assembly-time configuration: call
// before traffic flows, never concurrently with it.
func (c *Controller) ConfigureCompletionReap(doorbellReg, headReg uint64) {
	c.reapConfigured = true
	c.reapDoorbellReg = doorbellReg
	c.reapHeadReg = headReg
}

// SetAuthorizedTVM restricts control-BAR access to one requester ID.
// The sealed-blob crypto already stops policy forgery; this check
// additionally denies unauthorized parties the DoS-ish knobs (teardown,
// metadata redirection). Like the bus attachments, it is assembly-time
// configuration: call before traffic flows, never concurrently with it.
func (c *Controller) SetAuthorizedTVM(id pcie.ID) { c.authorizedTVM = id; c.tvmPinned = true }

// --- host-side traffic ------------------------------------------------------

// Handle implements pcie.Endpoint for packets arriving from the host
// bus: control-BAR accesses and shadowed xPU MMIO.
func (c *Controller) Handle(p *pcie.Packet) *pcie.Packet {
	if c.bar.Contains(p.Address) && (p.Kind == pcie.MRd || p.Kind == pcie.MWr) {
		return c.handleControl(p)
	}
	verdict := c.filter.Classify(p)
	switch verdict.Action {
	case ActionDrop:
		return c.reject(p)
	case ActionPassThrough:
		return c.forwardToDevice(p)
	case ActionWriteProtect:
		return c.handleGuardedMMIO(p)
	case ActionWriteReadProtect:
		// Sensitive MMIO (command payloads addressed at ccAI hardware,
		// Figure 5 L2 row 1) must arrive through the control BAR's
		// sealed windows; anything else here is misrouted.
		return c.reject(p)
	}
	return c.reject(p)
}

func (c *Controller) reject(p *pcie.Packet) *pcie.Packet {
	if p.Kind == pcie.MRd || p.Kind == pcie.CfgRd || p.Kind == pcie.CfgWr {
		return pcie.NewCompletion(p, c.id, pcie.CplUR, nil)
	}
	return nil
}

func (c *Controller) forwardToDevice(p *pcie.Packet) *pcie.Packet {
	if c.internal == nil {
		return c.reject(p)
	}
	cpl := c.internal.Route(p)
	if staleCpl(p, cpl) {
		// A completion answering a different transaction (delayed,
		// duplicated, or misrouted on the device segment) must never be
		// forwarded across the boundary: the stale payload may be
		// plaintext the SC decrypted for the device.
		c.authFailed()
		return c.reject(p)
	}
	return cpl
}

// staleCpl reports whether cpl answers a transaction other than req:
// a mismatched transaction tag or requester ID marks a stale or
// foreign completion, which the SC fails closed on rather than carry
// across the trust boundary in either direction.
func staleCpl(req, cpl *pcie.Packet) bool {
	if cpl == nil || (cpl.Kind != pcie.Cpl && cpl.Kind != pcie.CplD) {
		return false
	}
	return cpl.Requester != req.Requester || cpl.Tag != req.Tag
}

// handleGuardedMMIO applies action A3 to control traffic: the write's
// MAC record must already sit in the tag queue (the Adaptor posts it
// before issuing the write), and guarded registers must pass the
// environment checks.
func (c *Controller) handleGuardedMMIO(p *pcie.Packet) *pcie.Packet {
	if p.Kind == pcie.MRd {
		// Reads of guarded registers carry no payload to verify.
		return c.forwardToDevice(p)
	}
	sp := c.obs.tracer.Begin(obsv.TrackSC, "guarded_mmio",
		obsv.Hex("addr", p.Address), obsv.I64("bytes", int64(len(p.Payload))))
	defer sp.End()
	// The sequence check, MAC verify and counter advance form one
	// atomic step under mu so concurrent guarded writes cannot both
	// claim the same sequence number. The leaf locks taken inside
	// (tags, keystore, guard) never call back into the controller.
	c.mu.Lock()
	seq := c.mmioSeq
	rec, ok := c.tagMatch(StreamMMIO, seq)
	if !ok {
		c.mu.Unlock()
		c.authFailed()
		return c.reject(p)
	}
	var hdr [16]byte
	PutMACHeader(&hdr, seq, p.Address, uint32(len(p.Payload)))
	// The 16-byte wire tag is the MAC truncated to TagSize; recompute
	// and compare the truncation (constant-time over the full width).
	// MACSum keeps the key inside the store and reuses its HMAC state;
	// the keystore mutex is a leaf lock, safe under c.mu.
	want, err := c.params.keys.MACSum(StreamMMIO, hdr[:], p.Payload)
	if err != nil {
		c.mu.Unlock()
		c.authFailed()
		return c.reject(p)
	}
	match := true
	for i := 0; i < secmem.TagSize; i++ {
		if want[i] != rec.Tag[i] {
			match = false
		}
	}
	if !match {
		c.mu.Unlock()
		c.authFailed()
		return c.reject(p)
	}
	c.mmioSeq++
	c.stats.VerifiedChunks++
	c.mu.Unlock()
	c.obs.verified.Inc()

	// Environment verification on guarded registers.
	if len(p.Payload) >= 8 && p.Address >= c.xpuBar.Base {
		reg := p.Address - c.xpuBar.Base
		val := binary.LittleEndian.Uint64(p.Payload[:8])
		if !c.guard.VerifyMMIO(reg, val) {
			c.mu.Lock()
			c.stats.GuardBlocks++
			c.mu.Unlock()
			c.obs.guardBlocks.Inc()
			return c.reject(p)
		}
	}
	cpl := c.forwardToDevice(p)
	if c.reapConfigured && p.Address == c.xpuBar.Base+c.reapDoorbellReg {
		// The doorbell ran the device's command pump synchronously; reap
		// the batch of completions it produced with one device-head read
		// and one ring-header writeback.
		c.reapCompletion()
	}
	return cpl
}

// MACHeader is the byte layout both ends authenticate for A3 MMIO
// writes: sequence number, target address, payload length. The Adaptor
// mirrors this when computing the companion tag record.
func MACHeader(seq uint32, addr uint64, n uint32) []byte {
	buf := make([]byte, 16)
	PutMACHeader((*[16]byte)(buf), seq, addr, n)
	return buf
}

// PutMACHeader writes the A3 MAC header into a caller-provided
// (typically stack) array — the allocation-free variant.
func PutMACHeader(buf *[16]byte, seq uint32, addr uint64, n uint32) {
	binary.LittleEndian.PutUint32(buf[0:], seq)
	binary.LittleEndian.PutUint64(buf[4:], addr)
	binary.LittleEndian.PutUint32(buf[12:], n)
}

// MMIOSeq reports the next expected A3 sequence number (the Adaptor
// mirrors this counter).
func (c *Controller) MMIOSeq() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mmioSeq
}

// --- control BAR -------------------------------------------------------------

func (c *Controller) handleControl(p *pcie.Packet) *pcie.Packet {
	if c.tvmPinned && p.Requester != c.authorizedTVM {
		c.configReject(nil)
		return c.reject(p)
	}
	off := p.Address - c.bar.Base
	if p.Kind == pcie.MRd {
		buf := c.slab.Take(int(p.Length))
		var tmp [8]byte
		c.mu.Lock()
		v := c.regs[off&^7]
		switch off &^ 7 {
		case RegSCStatus:
			v = c.status
		case RegMMIOSeq:
			v = uint64(c.mmioSeq)
		}
		c.mu.Unlock()
		binary.LittleEndian.PutUint64(tmp[:], v)
		copy(buf, tmp[:])
		return c.pkts.CompletionOwned(p, c.id, pcie.CplSuccess, buf)
	}
	// Writes.
	switch {
	case off >= RegRuleWindow && off < RegRuleWindow+256:
		c.stageConfig(&c.ruleBuf, p.Payload)
	case off >= RegDescWindow && off < RegDescWindow+256:
		c.stageConfig(&c.descBuf, p.Payload)
	case off >= RegRekeyWindow && off < RegRekeyWindow+256:
		c.stageConfig(&c.rekeyBuf, p.Payload)
	case off >= RegTagWindow && off < RegTagWindow+0x80:
		c.ingestTags(p.Payload)
	default:
		c.controlWrite(off&^7, p.Payload)
	}
	return nil
}

// stageConfig copies a sealed blob into its staging buffer under mu.
func (c *Controller) stageConfig(buf *[]byte, payload []byte) {
	c.mu.Lock()
	*buf = append([]byte(nil), payload...)
	c.mu.Unlock()
}

// takeConfig claims and clears a staging buffer under mu.
func (c *Controller) takeConfig(buf *[]byte) []byte {
	c.mu.Lock()
	frame := *buf
	*buf = nil
	c.mu.Unlock()
	return frame
}

func (c *Controller) controlWrite(reg uint64, payload []byte) {
	var v uint64
	var tmp [8]byte
	copy(tmp[:], payload)
	v = binary.LittleEndian.Uint64(tmp[:])
	switch reg {
	case RegRuleDoorbell:
		c.installSealedRule()
	case RegDescDoorbell:
		c.installSealedDescriptor()
	case RegRekeyDoorbell:
		c.applySealedRekey()
	case RegDescRelease:
		c.releaseRegion(uint32(v))
	case RegRingDoorbell:
		c.processRing(v)
	case RegTeardown:
		c.Teardown()
	default:
		c.mu.Lock()
		c.regs[reg] = v
		c.mu.Unlock()
	}
}

func (c *Controller) ingestTags(payload []byte) {
	for len(payload) >= TagRecordSize {
		rec := TagRecord{
			Chunk: binary.LittleEndian.Uint32(payload[4:]),
			Epoch: binary.LittleEndian.Uint32(payload[8:]),
		}
		streamHash := binary.LittleEndian.Uint32(payload[0:])
		copy(rec.Tag[:], payload[12:12+secmem.TagSize])
		rec.Stream = c.streamByHash(streamHash)
		if rec.Stream != "" {
			c.tags.Enqueue(rec)
		}
		payload = payload[TagRecordSize:]
	}
}

// streamByHash resolves a wire stream hash against the active streams
// plus the platform's well-known names (MMIO tags arrive before any
// stream context exists). Activation rejects colliding names, so the
// resolution is unambiguous, and a hash matching nothing drops the
// record (fail closed).
func (c *Controller) streamByHash(h uint32) string {
	if name, ok := c.params.NameByHash(h); ok {
		return name
	}
	for _, name := range wellKnownStreams {
		if hashStream(name) == h {
			return name
		}
	}
	return ""
}

// releaseRegion drops one region and all state retained for it —
// shared by the RegDescRelease MMIO path and the ring's release op.
func (c *Controller) releaseRegion(id uint32) {
	c.regions.remove(id)
	c.dropVerified(id)
	c.dropTagSpan(id)
	c.dropWriteSpan(id)
	c.dropSpanCache(id)
}

func (c *Controller) installSealedRule() {
	c.installRuleFrame(c.takeConfig(&c.ruleBuf))
}

// installRuleFrame decodes and installs one sealed rule blob; frame may
// alias caller scratch (it is consumed synchronously).
func (c *Controller) installRuleFrame(frame []byte) {
	pt, err := c.openConfig(frame)
	if err != nil {
		c.configReject(err)
		return
	}
	r, err := UnmarshalRule(pt)
	if err != nil {
		c.configReject(err)
		return
	}
	if r.Action == actionToL2 {
		c.filter.InstallL1(r)
	} else {
		c.filter.InstallL2(r)
	}
}

func (c *Controller) installSealedDescriptor() {
	c.installDescriptorFrame(c.takeConfig(&c.descBuf))
}

func (c *Controller) installDescriptorFrame(frame []byte) {
	pt, err := c.openConfig(frame)
	if err != nil {
		c.configReject(err)
		return
	}
	d, err := UnmarshalDescriptor(pt)
	if err != nil {
		c.configReject(err)
		return
	}
	if err := c.regions.add(d); err != nil {
		c.configReject(err)
		return
	}
	// A reinstalled descriptor reuses the region ID with fresh counters;
	// anything pipelined for the old incarnation is stale.
	c.dropWriteSpan(d.ID)
	c.dropSpanCache(d.ID)
}

// RekeyCommand carries fresh stream material for the §6 IV-exhaustion
// mitigation. It travels sealed under the config stream, so only the
// attested TVM can rotate keys.
type RekeyCommand struct {
	Stream string
	Key    []byte
	Nonce  []byte
}

// Marshal encodes the command for sealed upload.
func (rc RekeyCommand) Marshal() []byte {
	out := []byte{byte(len(rc.Stream))}
	out = append(out, rc.Stream...)
	out = append(out, byte(len(rc.Key)))
	out = append(out, rc.Key...)
	out = append(out, byte(len(rc.Nonce)))
	out = append(out, rc.Nonce...)
	return out
}

// UnmarshalRekeyCommand parses a sealed rekey payload.
func UnmarshalRekeyCommand(b []byte) (RekeyCommand, error) {
	var rc RekeyCommand
	read := func() ([]byte, error) {
		if len(b) < 1 {
			return nil, fmt.Errorf("core: truncated rekey command")
		}
		n := int(b[0])
		if len(b) < 1+n {
			return nil, fmt.Errorf("core: truncated rekey field")
		}
		v := append([]byte(nil), b[1:1+n]...)
		b = b[1+n:]
		return v, nil
	}
	name, err := read()
	if err != nil {
		return rc, err
	}
	rc.Stream = string(name)
	if rc.Key, err = read(); err != nil {
		return rc, err
	}
	if rc.Nonce, err = read(); err != nil {
		return rc, err
	}
	return rc, nil
}

func (c *Controller) applySealedRekey() {
	c.applyRekeyFrame(c.takeConfig(&c.rekeyBuf))
}

func (c *Controller) applyRekeyFrame(frame []byte) {
	pt, err := c.openConfig(frame)
	if err != nil {
		c.configReject(err)
		return
	}
	rc, err := UnmarshalRekeyCommand(pt)
	if err != nil {
		c.configReject(err)
		return
	}
	if rc.Stream == StreamConfig {
		// Rotating the config stream itself would let one sealed blob
		// hand control to a new key without attestation; refuse.
		c.configReject(fmt.Errorf("core: config stream cannot self-rekey"))
		return
	}
	if rc.Stream == StreamMMIO {
		// MMIO MACs use raw key material, not a stream context.
		if err := c.params.keys.Install(rc.Stream, rc.Key, rc.Nonce); err != nil {
			c.configReject(err)
		}
		return
	}
	if err := c.params.Rekey(rc.Stream, rc.Key, rc.Nonce); err != nil {
		c.configReject(err)
		return
	}
	// Fail-closed across epochs: plaintext decrypted ahead under the old
	// key is never served after a rekey — the demand path re-runs the
	// acceptance ladder, which rejects pre-rekey material exactly as it
	// did before decrypt-ahead existed.
	c.dropSpanCache(^uint32(0))
}

func (c *Controller) openConfig(frame []byte) ([]byte, error) {
	if frame == nil {
		return nil, fmt.Errorf("core: empty config window")
	}
	sealed, err := UnmarshalBlob(frame)
	if err != nil {
		return nil, err
	}
	stream, err := c.params.Stream(StreamConfig)
	if err != nil {
		return nil, err
	}
	return stream.Open(sealed, nil)
}

func (c *Controller) configReject(err error) {
	_ = err
	c.mu.Lock()
	c.stats.ConfigRejects++
	c.status |= SCStatusConfigErr
	c.mu.Unlock()
	c.obs.cfgRejects.Inc()
}

// --- device-side traffic ------------------------------------------------------

// internalPort is the controller's endpoint presence on the internal
// bus: the upstream port every device-initiated packet must cross.
type internalPort struct{ c *Controller }

func (ip internalPort) DeviceID() pcie.ID                  { return ip.c.id }
func (ip internalPort) Handle(p *pcie.Packet) *pcie.Packet { return ip.c.HandleFromDevice(p) }

// InternalPort returns the controller's internal-bus endpoint, which
// the platform attaches and gives claims over all host address windows
// so device DMA and MSI traffic route through the filter.
func (c *Controller) InternalPort() pcie.Endpoint { return internalPort{c} }

// HandleFromDevice is the internal bus's upstream path: every DMA
// request and MSI the xPU emits crosses the filter and, inside
// protected regions, the crypto handlers.
func (c *Controller) HandleFromDevice(p *pcie.Packet) *pcie.Packet {
	verdict := c.filter.Classify(p)
	switch verdict.Action {
	case ActionDrop:
		return c.reject(p)
	case ActionPassThrough:
		cpl := c.hostBus.Route(p)
		if staleCpl(p, cpl) {
			c.authFailed()
			return c.reject(p)
		}
		return cpl
	}

	desc, ok := c.regions.find(p.Address)
	if !ok {
		// Classified protected but no registered region: fail closed.
		c.authFailed()
		return c.reject(p)
	}
	switch {
	case p.Kind == pcie.MRd && desc.Dir == DirH2D && desc.Class == ActionWriteReadProtect:
		return c.decryptRead(p, desc)
	case p.Kind == pcie.MRd && desc.Dir == DirH2D && desc.Class == ActionWriteProtect:
		return c.verifiedRead(p, desc)
	case p.Kind == pcie.MWr && desc.Dir == DirD2H && desc.Class == ActionWriteReadProtect:
		return c.encryptWrite(p, desc)
	default:
		c.authFailed()
		return c.reject(p)
	}
}

// decryptRead services a device read of an A2 H2D region: fetch the
// ciphertext from host memory, match tags, decrypt, and return
// plaintext to the device. Reads wider than one chunk (the device
// requests up to MaxReadReq at a time) take the span path, which
// amortizes the host round trip and batch-decrypts.
func (c *Controller) decryptRead(p *pcie.Packet, desc Descriptor) *pcie.Packet {
	if uint64(p.Length) > uint64(desc.ChunkSize) {
		return c.decryptReadSpan(p, desc)
	}
	sp := c.obs.tracer.Begin(obsv.TrackSC, "decrypt_read",
		obsv.Hex("addr", p.Address), obsv.I64("bytes", int64(p.Length)),
		obsv.U64("region", uint64(desc.ID)))
	defer sp.End()
	chunk, err := desc.ChunkOf(p.Address, p.Length)
	if err != nil {
		c.authFailed()
		return c.reject(p)
	}
	req := c.pkts.MemRead(c.id, p.Address, p.Length, p.Tag)
	cpl := c.hostBus.Route(req)
	if cpl == nil || cpl.Status != pcie.CplSuccess || staleCpl(req, cpl) {
		return c.reject(p)
	}
	stream, err := c.params.Stream(StreamH2D)
	if err != nil {
		c.authFailed()
		return c.reject(p)
	}
	rec, ok := c.tagMatch(StreamH2D, desc.FirstCounter+chunk)
	pt, good := c.openChunk(stream, desc, chunk, cpl.Payload, rec, ok)
	if c.recycleOn(c.hostBus) {
		arena.Put(cpl.Payload) // ciphertext consumed either way: public bytes
	}
	if !good {
		c.authFailed()
		return c.reject(p)
	}
	return c.pkts.CompletionOwned(p, c.id, pcie.CplSuccess, pt)
}

// openChunk authenticates and decrypts one H2D chunk whose tag-match
// result is (rec, have). It owns the full per-chunk acceptance policy:
//
//   - have: normal open, advancing the replay watermark; on ErrReplay
//     (the Adaptor reposted the whole table after a loss) fall back to
//     the retained verified record, stateless.
//   - !have: duplicate-read suppression — a device retrying DMA after
//     a fault re-reads chunks whose tags were already consumed. Only
//     chunks accepted once before are re-served, and only via the
//     stateless open that leaves the watermark alone.
//
// Anything never accepted before stays fail-closed; the caller counts
// the auth failure and rejects.
func (c *Controller) openChunk(stream *secmem.Stream, desc Descriptor, chunk uint32, ct []byte, rec TagRecord, have bool) ([]byte, bool) {
	var aadBuf [8]byte
	desc.PutAAD(&aadBuf, chunk)
	aad := aadBuf[:]
	if !have {
		c.mu.Lock()
		vrec, seen := c.verified[desc.ID].get(chunk)
		c.mu.Unlock()
		if !seen {
			return nil, false
		}
		pt, err := stream.OpenStateless(&secmem.Sealed{
			Counter:    desc.FirstCounter + chunk,
			Epoch:      vrec.Epoch,
			Ciphertext: ct,
			Tag:        vrec.Tag,
		}, aad)
		if err != nil {
			return nil, false
		}
		c.duplicateRead()
		return pt, true
	}
	sealed := &secmem.Sealed{
		Counter:    desc.FirstCounter + chunk,
		Epoch:      rec.Epoch,
		Ciphertext: ct,
		Tag:        rec.Tag,
	}
	pt, err := stream.Open(sealed, aad)
	if errors.Is(err, secmem.ErrReplay) {
		c.mu.Lock()
		_, seen := c.verified[desc.ID].get(chunk)
		c.mu.Unlock()
		if seen {
			if pt, err2 := stream.OpenStateless(sealed, aad); err2 == nil {
				c.duplicateRead()
				return pt, true
			}
		}
	}
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.verifiedFor(desc.ID, chunkCount(desc)).put(chunk, rec)
	c.stats.DecryptedChunks++
	c.mu.Unlock()
	c.obs.decrypted.Inc()
	return pt, true
}

// decryptReadSpan services a multi-chunk H2D read: one host fetch for
// the whole span, then a batch decrypt straight into the completion
// payload. The span must start on a chunk boundary and stay inside the
// region; only its last chunk may be partial (region tail). When every
// tag is on hand and fresh, OpenBatchInto validates, decrypts in
// parallel and fail-closes as a unit; any wrinkle — a consumed tag, a
// reposted table behind the watermark — drops to the per-chunk policy
// in openChunk, which knows about duplicates and retransmits.
func (c *Controller) decryptReadSpan(p *pcie.Packet, desc Descriptor) *pcie.Packet {
	sp := c.obs.tracer.Begin(obsv.TrackSC, "decrypt_read_span",
		obsv.Hex("addr", p.Address), obsv.I64("bytes", int64(p.Length)),
		obsv.U64("region", uint64(desc.ID)))
	defer sp.End()
	cs := uint64(desc.ChunkSize)
	off := p.Address - desc.Base
	if off%cs != 0 || p.Address+uint64(p.Length) > desc.Base+desc.Len {
		c.authFailed()
		return c.reject(p)
	}
	first := uint32(off / cs)
	k := int((uint64(p.Length) + cs - 1) / cs)

	// Decrypt-ahead fast path: the span was fetched and batch-decrypted
	// while the device was still consuming the previous span's DMA
	// (pipeline.go). Serve the cached plaintext and keep the pipeline
	// primed with the next span.
	if pt, ok := c.takeCachedSpan(desc.ID, p.Address, p.Length); ok {
		sp.Attr(obsv.Bool("prefetched", true))
		c.prefetchSpan(desc, p.Address+uint64(p.Length))
		return c.pkts.CompletionOwned(p, c.id, pcie.CplSuccess, pt)
	}

	req := c.pkts.MemRead(c.id, p.Address, p.Length, p.Tag)
	cpl := c.hostBus.Route(req)
	if cpl == nil || cpl.Status != pcie.CplSuccess || staleCpl(req, cpl) {
		return c.reject(p)
	}
	// The bounce fetch is consumed on every path below (its ciphertext
	// is either decrypted into pt or abandoned on reject), so when it
	// came from the host bridge's arena pool it goes back on the way
	// out. Runs before the deferred putScratch clears the sealed views —
	// harmless, the views are rebuilt per span.
	defer func() {
		if c.recycleOn(c.hostBus) {
			arena.Put(cpl.Payload) // ciphertext: public bytes
		}
	}()
	stream, err := c.params.Stream(StreamH2D)
	if err != nil {
		c.authFailed()
		return c.reject(p)
	}
	// ctAt slices chunk i's ciphertext out of the span completion.
	ctAt := func(i int) []byte {
		lo := uint64(i) * cs
		hi := lo + cs
		if hi > uint64(p.Length) {
			hi = uint64(p.Length)
		}
		return cpl.Payload[lo:hi]
	}
	// A span covers at most MaxReadReq/ChunkSize chunks, so the tag
	// bookkeeping lives in the controller's reusable span scratch on
	// the common path.
	sc := c.takeScratch()
	defer c.putScratch(sc)
	recs, have := sc.recs[:], sc.have[:]
	if k > spanChunks {
		recs = make([]TagRecord, k)
		have = make([]bool, k)
	} else {
		recs, have = recs[:k], have[:k]
	}
	all := true
	for i := range recs {
		recs[i], have[i] = c.tagMatch(StreamH2D, desc.FirstCounter+first+uint32(i))
		all = all && have[i]
	}
	// Plaintext destined for the device-facing completion: arena-carved
	// when the device returns completion payloads to the pool, else
	// slab-carved (never recycled, so handing it to taps stays safe).
	pt := c.payloadBuf(int(p.Length), c.internal)
	if all {
		sealed, aads := sc.sealed[:], sc.aads[:]
		if k > spanChunks {
			sealed = make([]secmem.Sealed, k)
			aads = make([][]byte, k)
		} else {
			sealed, aads = sealed[:k], aads[:k]
		}
		aadBuf := sc.aadBuf[:]
		if 8*k > len(aadBuf) {
			aadBuf = arena.Get(8 * k)
			defer arena.Put(aadBuf)
		}
		for i := range sealed {
			chunk := first + uint32(i)
			sealed[i] = secmem.Sealed{
				Counter:    desc.FirstCounter + chunk,
				Epoch:      recs[i].Epoch,
				Ciphertext: ctAt(i),
				Tag:        recs[i].Tag,
			}
			ab := aadBuf[8*i : 8*i+8 : 8*i+8]
			desc.PutAAD((*[8]byte)(ab), chunk)
			aads[i] = ab
		}
		err := stream.OpenBatchInto(pt, sealed, aads, c.pool)
		if err == nil {
			c.mu.Lock()
			region := c.verifiedFor(desc.ID, chunkCount(desc))
			for i := range recs {
				region.put(first+uint32(i), recs[i])
			}
			c.stats.DecryptedChunks += uint64(k)
			c.mu.Unlock()
			c.obs.decrypted.Add(uint64(k))
			c.prefetchSpan(desc, p.Address+uint64(p.Length))
			return c.pkts.CompletionOwned(p, c.id, pcie.CplSuccess, pt)
		}
		if !errors.Is(err, secmem.ErrReplay) {
			// ErrAuth (dst already zeroed) or a fault-hook error: the
			// whole span fails closed, exactly like a single bad chunk.
			c.authFailed()
			return c.reject(p)
		}
		// A counter behind the watermark: some chunks are benign
		// retransmits. Nothing was consumed — the batch validates before
		// it decrypts — so sort it out chunk by chunk below.
	}
	for i := 0; i < k; i++ {
		cpt, good := c.openChunk(stream, desc, first+uint32(i), ctAt(i), recs[i], have[i])
		if !good {
			// Zero the partial plaintext before dropping it: fail-closed
			// spans never leak the chunks that did verify.
			for j := range pt {
				pt[j] = 0
			}
			c.authFailed()
			return c.reject(p)
		}
		copy(pt[uint64(i)*cs:], cpt)
	}
	return c.pkts.CompletionOwned(p, c.id, pcie.CplSuccess, pt)
}

// duplicateRead counts one benign retransmit.
func (c *Controller) duplicateRead() {
	c.mu.Lock()
	c.stats.DuplicateReads++
	c.mu.Unlock()
	c.obs.dupReads.Inc()
}

// verifiedRead services a device read of an A3 H2D region (e.g. the
// command ring): fetch plaintext, verify its one-shot MAC record.
func (c *Controller) verifiedRead(p *pcie.Packet, desc Descriptor) *pcie.Packet {
	sp := c.obs.tracer.Begin(obsv.TrackSC, "verified_read",
		obsv.Hex("addr", p.Address), obsv.I64("bytes", int64(p.Length)),
		obsv.U64("region", uint64(desc.ID)))
	defer sp.End()
	chunk, err := desc.ChunkOf(p.Address, p.Length)
	if err != nil {
		c.authFailed()
		return c.reject(p)
	}
	req := c.pkts.MemRead(c.id, p.Address, p.Length, p.Tag)
	cpl := c.hostBus.Route(req)
	if cpl == nil || cpl.Status != pcie.CplSuccess || staleCpl(req, cpl) {
		return c.reject(p)
	}
	rec, ok := c.tagMatch(StreamMMIO, desc.ID<<16|chunk)
	if !ok {
		c.authFailed()
		return c.reject(p)
	}
	var aad [8]byte
	desc.PutAAD(&aad, chunk)
	want, err := c.params.keys.MACSum(StreamMMIO, aad[:], cpl.Payload)
	if err != nil {
		c.authFailed()
		return c.reject(p)
	}
	for i := 0; i < secmem.TagSize; i++ {
		if want[i] != rec.Tag[i] {
			c.authFailed()
			return c.reject(p)
		}
	}
	c.mu.Lock()
	c.stats.VerifiedChunks++
	c.mu.Unlock()
	c.obs.verified.Inc()
	// The fetched completion's payload is immutable once routed, so the
	// device-facing completion may alias it instead of copying.
	return c.pkts.CompletionOwned(p, c.id, pcie.CplSuccess, cpl.Payload)
}

// encryptWrite services a device write into an A2 D2H region through
// the write-span pipeline (pipeline.go): the chunk is staged with its
// in-order neighbours and the span seals as one engine batch whose
// ciphertext DMA overlaps the remaining chunks' crypto. Flushes happen
// on a full span, a sequence break, the metadata publish cadence, and
// region completion, so host-visible progress never runs ahead of the
// ciphertext and tags backing it.
func (c *Controller) encryptWrite(p *pcie.Packet, desc Descriptor) *pcie.Packet {
	sp := c.obs.tracer.Begin(obsv.TrackSC, "encrypt_write",
		obsv.Hex("addr", p.Address), obsv.I64("bytes", int64(len(p.Payload))),
		obsv.U64("region", uint64(desc.ID)))
	defer sp.End()
	chunk, err := desc.ChunkOf(p.Address, uint32(len(p.Payload)))
	if err != nil {
		c.authFailed()
		return c.reject(p)
	}
	ok := true
	if c.needsSpanFlush(desc.ID, chunk) {
		ok = c.flushWriteSpan(desc)
	}
	if c.stageWrite(desc, chunk, p.Payload) {
		ok = c.flushWriteSpan(desc) && ok
	}
	if !ok {
		c.authFailed()
		return c.reject(p)
	}
	return nil
}

// tagSpanRecords is how many marshalled tag records fit one TLP payload.
const tagSpanRecords = pcie.MaxPayload / TagRecordSize

// metaPublishEvery is the metadata batch granularity (§5): progress
// counters reach the TVM-resident buffer every this many chunks and at
// region completion, not once per chunk.
const metaPublishEvery = 8

// tagSpan accumulates marshalled tag records for consecutive D2H chunks
// of one region. The tag table is contiguous and the device writes
// chunks in ascending order, so records coalesce into MaxPayload-sized
// table writes instead of one TLP per chunk.
type tagSpan struct {
	start uint32 // chunk index of the first buffered record
	next  uint32 // chunk index that extends the span
	buf   []byte // marshalled records (arena-backed, public bytes)
}

// depositTag buffers chunk's tag record for desc's tag table and
// advances the region's completion count. The span flushes to host
// memory when it fills a TLP, when the chunk sequence breaks (a lost
// chunk under fault injection), and — together with the batched
// metadata counter — every metaPublishEvery chunks and at region
// completion, so whenever the metadata buffer claims N chunks the tag
// table already holds their records. Packets are built under c.mu but
// routed after it is released (routing can reenter the controller).
func (c *Controller) depositTag(desc Descriptor, chunk uint32, rec TagRecord) {
	cs := uint64(desc.ChunkSize)
	if cs == 0 {
		cs = ChunkSize
	}
	c.mu.Lock()
	span := c.tagPend[desc.ID]
	var stale *pcie.Packet
	if span == nil {
		span = &tagSpan{start: chunk, buf: arena.Get(tagSpanRecords * TagRecordSize)[:0]}
		c.tagPend[desc.ID] = span
	} else if chunk != span.next {
		stale = c.tagFlushPacket(desc, span)
		span.start, span.buf = chunk, span.buf[:0]
	}
	span.buf = rec.AppendMarshal(span.buf)
	span.next = chunk + 1

	c.stats.EncryptedChunks++
	c.d2hChunks[desc.ID]++
	count := c.d2hChunks[desc.ID]
	publish := count >= (desc.Len+cs-1)/cs || count%metaPublishEvery == 0
	var flush, meta *pcie.Packet
	if publish || len(span.buf) >= tagSpanRecords*TagRecordSize {
		flush = c.tagFlushPacket(desc, span)
		span.start, span.buf = span.next, span.buf[:0]
	}
	if publish {
		meta = c.metadataPacketLocked(desc.ID, count)
	}
	c.mu.Unlock()
	if stale != nil {
		c.routeTagWrite(stale)
	}
	if flush != nil {
		c.routeTagWrite(flush)
	}
	if meta != nil {
		c.hostBus.Route(meta)
	}
}

// routeTagWrite delivers a tag-table write and, when the recycling loop
// is closed, reclaims its payload: the host bridge copies MWr bodies
// synchronously, so after Route the SC is the payload's last holder.
func (c *Controller) routeTagWrite(p *pcie.Packet) {
	payload := p.Payload
	c.hostBus.Route(p)
	if c.recycleOn(c.hostBus) {
		arena.Put(payload) // marshalled tags: public bytes
	}
}

// tagFlushPacket builds the tag-table write for a span's buffered
// records, or nil when the span is empty. The records are copied out of
// the span buffer (which refills immediately) into arena or slab memory
// via payloadBuf, so no per-flush heap allocation occurs.
func (c *Controller) tagFlushPacket(desc Descriptor, span *tagSpan) *pcie.Packet {
	if len(span.buf) == 0 {
		return nil
	}
	addr := desc.TagBase + uint64(span.start)*TagRecordSize
	body := c.payloadBuf(len(span.buf), c.hostBus)
	copy(body, span.buf)
	return c.pkts.MemWrite(c.id, addr, body)
}

// dropTagSpan discards a released region's pending tag records.
func (c *Controller) dropTagSpan(region uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if span, ok := c.tagPend[region]; ok {
		arena.Put(span.buf)
		delete(c.tagPend, region)
	}
}

// dropVerified forgets retained chunk records for a released region.
func (c *Controller) dropVerified(region uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.verified, region)
}

// metadataPacketLocked implements the §5 I/O-read optimization: instead
// of the Adaptor polling the SC for DMA metadata, the SC batches
// progress counters into a TVM-resident buffer (one 8-byte
// completed-chunk count per region) that the Adaptor reads as plain
// memory. Returns the counter write, or nil when no buffer is
// configured or the region falls outside the batch window. Callers
// hold c.mu and route the packet after releasing it.
func (c *Controller) metadataPacketLocked(region uint32, count uint64) *pcie.Packet {
	metaBase := c.regs[RegMetaBase]
	size := c.regs[RegMetaSize]
	if metaBase == 0 {
		return nil
	}
	slot := metaBase + uint64(region)*8
	if size > 0 && slot+8 > metaBase+size {
		return nil // region id outside the configured batch window
	}
	buf := c.slab.Take(8)
	binary.LittleEndian.PutUint64(buf, count)
	return c.pkts.MemWrite(c.id, slot, buf)
}

// D2HProgress reports completed chunks for a region — the MMIO-polled
// fallback the non-optimized ablation uses in place of the metadata
// batch buffer.
func (c *Controller) D2HProgress(region uint32) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.d2hChunks[region]
}

// AttestDevice runs the §6 software-based attestation fallback against
// the guarded xPU: write a fresh nonce to the device's attestation
// register over the internal bus, read back the response digest, and
// compare with the digest the verifier computes from the golden
// firmware measurement. expected is the response the caller derived
// (e.g. xpu.AttestDigest(goldenFirmware, nonce)); attestReg/respReg
// are BAR0-relative.
func (c *Controller) AttestDevice(nonce uint64, expected uint64, attestReg, respReg uint64) bool {
	if c.internal == nil {
		return false
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], nonce)
	c.internal.Route(pcie.NewMemWrite(c.id, c.xpuBar.Base+attestReg, buf[:]))
	req := pcie.NewMemRead(c.id, c.xpuBar.Base+respReg, 8, 0)
	cpl := c.internal.Route(req)
	if cpl == nil || cpl.Status != pcie.CplSuccess || staleCpl(req, cpl) || len(cpl.Payload) < 8 {
		return false
	}
	return binary.LittleEndian.Uint64(cpl.Payload) == expected
}

// Teardown destroys key material, drops regions and pending tags, and
// triggers the environment guard's device clean. The filter's static
// platform rules survive; per-session rules are the TVM's to reinstall.
func (c *Controller) Teardown() {
	c.mu.Lock()
	c.stats.Teardowns++
	c.mmioSeq = 0
	c.ringHead = 0
	c.cplWord = 0
	c.d2hChunks = make(map[uint32]uint64)
	for _, span := range c.tagPend {
		arena.Put(span.buf)
	}
	c.tagPend = make(map[uint32]*tagSpan)
	droppedSpans := c.wspans
	c.wspans = make(map[uint32]*writeSpan)
	c.verified = make(map[uint32]*verifiedSet)
	c.mu.Unlock()
	for _, span := range droppedSpans {
		c.recyclePts(span)
	}
	c.dropSpanCache(^uint32(0))
	c.obs.teardowns.Inc()
	c.obs.tracer.Instant(obsv.TrackSC, "teardown")
	c.params.DestroyAll()
	c.regions.clear()
	c.tags.Clear()
	// The hook routes reset MMIO to the device, so it must run with no
	// controller lock held.
	if c.onTeardown != nil {
		c.onTeardown()
	}
}
