package core

import (
	"ccai/internal/arena"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
)

// This file is the SC data-plane pipeline (DESIGN.md §15): the
// decrypt/DMA overlap machinery that turns the serial
// fetch→decrypt→serve / receive→seal→store chunk loops into the mirror
// image of the Adaptor's StageH2D seal-vs-submit pipeline.
//
// H2D: while the device consumes span i's completion DMA, the SC
// speculatively fetches and batch-decrypts span i+1 into a one-entry
// plaintext cache (spanCache). The device's strictly sequential
// MaxReadReq gulps make the next span perfectly predictable; a cache
// hit serves plaintext whose crypto already ran under the previous
// span's DMA shadow, so the steady-state per-span cost is
// max(crypto, DMA) plus one pipeline fill, not their sum.
//
// D2H: device writes are accumulated per region (writeSpan) and sealed
// as one engine batch when the span fills, the chunk sequence breaks,
// or the region completes. The batch runs through SealBatchStream, so
// chunk i's ciphertext DMA to host memory is issued from the emit
// callback while the engine is already sealing chunks > i — the same
// overlap, pointed the other way.
//
// Both sides are speculation-safe: a prefetch that cannot complete
// cleanly (missing tag, stale counter, corrupt fetch) backs out
// without consuming tag records or counting failures, and the demand
// path then runs the full acceptance ladder exactly as before.

// spanChunks is the pipeline granularity in chunks: one device read
// gulp (MaxReadReq) worth of MaxPayload chunks, for both the H2D
// prefetch spans and the D2H write-burst spans.
const spanChunks = pcie.MaxReadReq / ChunkSize

// spanScratch is the reusable per-span bookkeeping for the H2D batch
// paths. OpenBatchInto documents that the sealed records are taken by
// value, so the views may be rebuilt in place for every span.
type spanScratch struct {
	sealed [spanChunks]secmem.Sealed
	aads   [spanChunks][]byte
	aadBuf [8 * spanChunks]byte
	recs   [spanChunks]TagRecord
	have   [spanChunks]bool
}

// takeScratch grabs a span scratch from the pool, or allocates a
// fresh one if both slots are in use (re-entrant span handling).
func (c *Controller) takeScratch() *spanScratch {
	var s *spanScratch
	c.mu.Lock()
	for i, v := range c.scratchPool {
		if v != nil {
			s, c.scratchPool[i] = v, nil
			break
		}
	}
	c.mu.Unlock()
	if s == nil {
		s = new(spanScratch)
	}
	return s
}

// putScratch returns a span scratch, dropping payload references so
// the scratch does not pin completed span buffers.
func (c *Controller) putScratch(s *spanScratch) {
	for i := range s.sealed {
		s.sealed[i].Ciphertext = nil
	}
	c.mu.Lock()
	for i := range c.scratchPool {
		if c.scratchPool[i] == nil {
			c.scratchPool[i] = s
			break
		}
	}
	c.mu.Unlock()
}

// --- H2D decrypt-ahead ------------------------------------------------------

// spanCache is the one-entry plaintext cache behind the H2D overlap:
// the next span's decrypted bytes, keyed by exactly the (region, addr,
// length) triple the device must request for them.
type spanCache struct {
	valid  bool
	region uint32
	addr   uint64
	length uint32
	pt     []byte // slab-carved; ownership transfers to the hit's completion
}

// takeCachedSpan serves a span read from the decrypt-ahead cache. On a
// hit the plaintext's ownership moves to the caller (it becomes the
// completion payload) and the entry clears.
func (c *Controller) takeCachedSpan(region uint32, addr uint64, length uint32) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pf.valid || c.pf.region != region || c.pf.addr != addr || c.pf.length != length {
		return nil, false
	}
	pt := c.pf.pt
	c.pf = spanCache{}
	c.stats.PrefetchHits++
	return pt, true
}

// installCachedSpan publishes a prefetched span, zeroizing any entry
// it displaces (the cache holds decrypted secrets in SC-local memory).
func (c *Controller) installCachedSpan(region uint32, addr uint64, pt []byte) {
	c.mu.Lock()
	old := c.pf.pt
	c.pf = spanCache{valid: true, region: region, addr: addr, length: uint32(len(pt)), pt: pt}
	c.mu.Unlock()
	c.retireCachedPt(old)
}

// dropSpanCache invalidates the decrypt-ahead cache if it belongs to
// region (descriptor release or reinstall); region == ^0 drops any
// entry (rekey, teardown). The orphaned plaintext is zeroized.
func (c *Controller) dropSpanCache(region uint32) {
	c.mu.Lock()
	var old []byte
	if c.pf.valid && (region == ^uint32(0) || c.pf.region == region) {
		old = c.pf.pt
		c.pf = spanCache{}
	}
	c.mu.Unlock()
	c.retireCachedPt(old)
}

// retireCachedPt zeroizes an evicted decrypt-ahead plaintext and, when
// it provably came from the arena (payloadBuf carved it there, and the
// sticky Untapped gate cannot have flipped back), returns it to the
// pool instead of leaving it for the GC.
func (c *Controller) retireCachedPt(b []byte) {
	if b == nil {
		return
	}
	if c.recycleOn(c.internal) {
		arena.PutZero(b)
		return
	}
	zero(b)
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// payloadBuf carves an outbound payload (completion plaintext, MWr
// ciphertext): from the shared arena when the platform armed recycling
// and no tap has ever observed bus — the terminal consumer returns the
// buffer after copying — else from the never-reused slab, which is the
// only safe source once a tap may retain routed packets.
func (c *Controller) payloadBuf(n int, bus *pcie.Bus) []byte {
	if c.recycle && bus.Untapped() {
		return arena.Get(n)
	}
	return c.slab.Take(n)
}

// recycleOn reports whether payload buffers that crossed bus may be
// returned to the arena now. Sound only AFTER the route completed: a
// tap installed later never saw the packet (Bus.Untapped is sticky).
func (c *Controller) recycleOn(bus *pcie.Bus) bool {
	return c.recycle && bus.Untapped()
}

// prefetchSpan speculatively fetches and decrypts the span at addr —
// the read the device is predicted to issue next — into the cache.
// Every early return is silent: speculation must not consume tag
// records, advance failure counters, or reject anything; the demand
// path owns the acceptance ladder.
func (c *Controller) prefetchSpan(desc Descriptor, addr uint64) {
	end := desc.Base + desc.Len
	if addr < desc.Base || addr >= end {
		return
	}
	cs := uint64(desc.ChunkSize)
	if cs == 0 {
		cs = ChunkSize
	}
	if (addr-desc.Base)%cs != 0 {
		return
	}
	n := uint64(pcie.MaxReadReq)
	if end-addr < n {
		n = end - addr
	}
	first := uint32((addr - desc.Base) / cs)
	k := int((n + cs - 1) / cs)
	if k > spanChunks {
		return
	}
	// Probe before committing: if any tag is still in flight the span
	// is not ready, and taking a partial set would steal records the
	// demand path needs.
	if !c.tags.HasSpan(StreamH2D, desc.FirstCounter+first, k) {
		return
	}
	stream, err := c.params.Stream(StreamH2D)
	if err != nil {
		return
	}
	req := c.pkts.MemRead(c.id, addr, uint32(n), 0)
	cpl := c.hostBus.Route(req)
	if cpl == nil || cpl.Status != pcie.CplSuccess || staleCpl(req, cpl) {
		return
	}
	sc := c.takeScratch()
	defer c.putScratch(sc)
	for i := 0; i < k; i++ {
		rec, ok := c.tags.Take(StreamH2D, desc.FirstCounter+first+uint32(i))
		if !ok {
			// Raced away since the probe; put back what was taken.
			for j := 0; j < i; j++ {
				c.tags.Enqueue(sc.recs[j])
			}
			return
		}
		sc.recs[i] = rec
	}
	pt := c.payloadBuf(int(n), c.internal)
	for i := 0; i < k; i++ {
		chunk := first + uint32(i)
		lo := uint64(i) * cs
		hi := lo + cs
		if hi > n {
			hi = n
		}
		sc.sealed[i] = secmem.Sealed{
			Counter:    desc.FirstCounter + chunk,
			Epoch:      sc.recs[i].Epoch,
			Ciphertext: cpl.Payload[lo:hi],
			Tag:        sc.recs[i].Tag,
		}
		ab := sc.aadBuf[8*i : 8*i+8 : 8*i+8]
		desc.PutAAD((*[8]byte)(ab), chunk)
		sc.aads[i] = ab
	}
	err = stream.OpenBatchInto(pt, sc.sealed[:k], sc.aads[:k], c.pool)
	if c.recycleOn(c.hostBus) {
		// The bounce fetch came from the host bridge's arena pool and its
		// ciphertext has been consumed either way (public bytes: Put).
		arena.Put(cpl.Payload)
	}
	if err != nil {
		// Back out: the records return to the queue and the demand read
		// re-runs the full ladder (per-chunk fallback, fail-closed).
		for i := 0; i < k; i++ {
			c.tags.Enqueue(sc.recs[i])
		}
		return
	}
	c.mu.Lock()
	region := c.verifiedFor(desc.ID, chunkCount(desc))
	for i := 0; i < k; i++ {
		region.put(first+uint32(i), sc.recs[i])
	}
	c.stats.DecryptedChunks += uint64(k)
	c.stats.PrefetchedChunks += uint64(k)
	c.mu.Unlock()
	c.obs.decrypted.Add(uint64(k))
	c.installCachedSpan(desc.ID, addr, pt)
}

// --- D2H write-span batching ------------------------------------------------

// writeSpan accumulates consecutive device D2H plaintext chunks of one
// region. The payload slices come straight from the device's MWr
// packets; the device stages DMA payloads in never-reused slab memory
// (xpu.dmaWrite), so retaining them until the flush one Handle call
// later is safe and copy-free.
type writeSpan struct {
	start  uint32 // chunk index of pts[0]
	next   uint32 // chunk index that extends the span
	pts    [][]byte
	ptsArr [spanChunks][]byte
}

// needsSpanFlush reports whether the region's pending span cannot
// absorb chunk — a sequence break or a full span — so it must seal
// before the chunk is staged.
func (c *Controller) needsSpanFlush(region uint32, chunk uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	span := c.wspans[region]
	return span != nil && (chunk != span.next || len(span.pts) == spanChunks)
}

// stageWrite buffers one device D2H chunk and reports whether the span
// must flush now. The caller has already flushed any non-extendable
// span (needsSpanFlush), so the pending span — if any — continues at
// exactly this chunk.
func (c *Controller) stageWrite(desc Descriptor, chunk uint32, payload []byte) (flush bool) {
	cs := uint64(desc.ChunkSize)
	if cs == 0 {
		cs = ChunkSize
	}
	total := (desc.Len + cs - 1) / cs
	c.mu.Lock()
	span := c.wspans[desc.ID]
	if span == nil {
		if n := len(c.wsFree); n > 0 {
			span = c.wsFree[n-1]
			c.wsFree = c.wsFree[:n-1]
		} else {
			span = new(writeSpan)
		}
		span.start, span.next = chunk, chunk
		span.pts = span.ptsArr[:0]
		c.wspans[desc.ID] = span
	}
	span.pts = append(span.pts, payload)
	span.next = chunk + 1
	buffered := c.d2hChunks[desc.ID] + uint64(len(span.pts))
	// Flush when the span fills, when the region completes, and at the
	// metadata publish cadence — the progress counter must never claim
	// chunks whose ciphertext and tags are still buffered.
	flush = len(span.pts) == spanChunks ||
		buffered >= total ||
		buffered%metaPublishEvery == 0
	c.mu.Unlock()
	return flush
}

// flushWriteSpan seals the region's buffered chunks as one batch and
// moves them to host memory. SealBatchStream delivers sealed chunks in
// order to the emit callback, which routes chunk i's ciphertext DMA
// and tag deposit while the engine is already sealing chunks > i —
// the D2H half of the decrypt/DMA overlap. Returns false only when the
// batch failed (engine fault, missing stream): the buffered chunks are
// dropped and the caller fails closed.
func (c *Controller) flushWriteSpan(desc Descriptor) bool {
	c.mu.Lock()
	span := c.wspans[desc.ID]
	if span == nil || len(span.pts) == 0 {
		c.mu.Unlock()
		return true
	}
	delete(c.wspans, desc.ID)
	c.mu.Unlock()

	stream, err := c.params.Stream(StreamD2H)
	if err != nil {
		return false
	}
	k := len(span.pts)
	cs := uint64(desc.ChunkSize)
	if cs == 0 {
		cs = ChunkSize
	}
	base := desc.Base + uint64(span.start)*cs
	// The AAD views live in the controller's reusable span scratch —
	// local arrays here escape through the emit closure and cost a heap
	// allocation per flush.
	sc := c.takeScratch()
	defer c.putScratch(sc)
	for i := 0; i < k; i++ {
		ab := sc.aadBuf[8*i : 8*i+8 : 8*i+8]
		desc.PutAAD((*[8]byte)(ab), span.start+uint32(i))
		sc.aads[i] = ab
	}
	err = stream.SealBatchStream(span.pts, sc.aads[:k], c.pool, func(i int, chunk *secmem.Sealed) error {
		// The sealed ciphertext is engine-internal memory reclaimed when
		// emit returns; the copy into a buffer the host bridge cannot
		// still be sharing (arena when the recycling loop is closed,
		// never-recycled slab otherwise) is what makes the packet payload
		// safe to route.
		ctBuf := c.payloadBuf(len(chunk.Ciphertext), c.hostBus)
		copy(ctBuf, chunk.Ciphertext)
		c.hostBus.Route(c.pkts.MemWrite(c.id, base+uint64(i)*cs, ctBuf))
		if c.recycleOn(c.hostBus) {
			arena.Put(ctBuf) // ciphertext: public bytes
		}
		rec := TagRecord{Stream: StreamD2H, Chunk: chunk.Counter, Epoch: chunk.Epoch, Tag: chunk.Tag}
		c.depositTag(desc, span.start+uint32(i), rec)
		return nil
	})
	// The staged plaintext came from the device's arena-backed MWr
	// staging whenever the internal bus is still untapped (the platform
	// wires both ends of that contract); the SC is its last holder.
	if c.recycleOn(c.internal) {
		for _, pt := range span.pts {
			arena.PutZero(pt) // device plaintext
		}
	}
	c.putSpan(span)
	if err != nil {
		return false
	}
	c.mu.Lock()
	c.stats.BatchedD2HSpans++
	c.mu.Unlock()
	c.obs.encrypted.Add(uint64(k))
	return true
}

// putSpan drops a flushed span's payload references and returns the
// shell to the freelist so the next stageWrite reuses it.
func (c *Controller) putSpan(span *writeSpan) {
	for i := range span.pts {
		span.pts[i] = nil
	}
	span.pts = nil
	c.mu.Lock()
	if len(c.wsFree) < 4 {
		c.wsFree = append(c.wsFree, span)
	}
	c.mu.Unlock()
}

// dropWriteSpan discards a region's buffered, unsealed chunks
// (descriptor release or teardown). When the recycling loop is closed
// the SC is the plaintext's last holder and returns it zeroed;
// otherwise the slices belong to the device's never-reused slab and
// dropping the references is all the SC may do.
func (c *Controller) dropWriteSpan(region uint32) {
	c.mu.Lock()
	span := c.wspans[region]
	delete(c.wspans, region)
	c.mu.Unlock()
	c.recyclePts(span)
}

// dropAllWriteSpans resets the D2H pipeline (teardown).
func (c *Controller) dropAllWriteSpans() {
	c.mu.Lock()
	spans := c.wspans
	c.wspans = make(map[uint32]*writeSpan)
	c.mu.Unlock()
	for _, span := range spans {
		c.recyclePts(span)
	}
}

// recyclePts returns a dropped span's staged device plaintext to the
// arena when that is provably safe (see dropWriteSpan), then retires
// the shell to the freelist.
func (c *Controller) recyclePts(span *writeSpan) {
	if span == nil {
		return
	}
	if c.recycleOn(c.internal) {
		for _, pt := range span.pts {
			arena.PutZero(pt)
		}
	}
	c.putSpan(span)
}
