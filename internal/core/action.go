// Package core implements the paper's primary contribution: the PCIe
// Security Controller (PCIe-SC). The controller sits between the host
// PCIe bus and the xPU's private ("internal") bus, classifying every
// TLP with a two-stage Packet Filter (Figure 5) and processing
// authorized packets with Packet Handlers (Figure 4): AES-GCM
// de/encryption and tag matching for sensitive traffic, MAC-based
// integrity plus environment checks for control traffic, and
// transparent pass-through for general packets.
package core

import "fmt"

// Action is one of the four security actions of Table 1.
type Action uint8

const (
	// ActionDrop (A1) disallows the packet: it is discarded and, for
	// non-posted requests, answered with Unsupported Request.
	ActionDrop Action = iota + 1
	// ActionWriteReadProtect (A2) applies confidentiality and integrity:
	// payloads are de/encrypted with AES-GCM and tag-verified.
	ActionWriteReadProtect
	// ActionWriteProtect (A3) applies plain integrity checking plus
	// environment verification (e.g. page-table register values).
	ActionWriteProtect
	// ActionPassThrough (A4) transmits the packet unmodified.
	ActionPassThrough
	// actionToL2 is the internal L1 verdict that defers to the L2 table.
	actionToL2
)

func (a Action) String() string {
	switch a {
	case ActionDrop:
		return "A1:drop"
	case ActionWriteReadProtect:
		return "A2:write-read-protect"
	case ActionWriteProtect:
		return "A3:write-protect"
	case ActionPassThrough:
		return "A4:pass-through"
	case actionToL2:
		return "to-L2"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Permission names Table 1's access-permission categories; each maps
// 1:1 onto an Action.
type Permission uint8

const (
	// Prohibited packets are unauthorized (A1).
	Prohibited Permission = iota
	// WriteReadProtected packets carry sensitive payloads (A2).
	WriteReadProtected
	// WriteProtected packets affect the computing environment but carry
	// non-sensitive payloads (A3).
	WriteProtected
	// FullAccessible packets serve general functions (A4).
	FullAccessible
)

func (p Permission) String() string {
	switch p {
	case Prohibited:
		return "Prohibited"
	case WriteReadProtected:
		return "Write-Read Protected"
	case WriteProtected:
		return "Write Protected"
	case FullAccessible:
		return "Full Accessible"
	}
	return fmt.Sprintf("Permission(%d)", uint8(p))
}

// ActionFor maps a permission category to its security action (Table 1).
func (p Permission) Action() Action {
	switch p {
	case Prohibited:
		return ActionDrop
	case WriteReadProtected:
		return ActionWriteReadProtect
	case WriteProtected:
		return ActionWriteProtect
	case FullAccessible:
		return ActionPassThrough
	}
	panic(fmt.Sprintf("core: unknown permission %d", uint8(p)))
}
