package core

import (
	"encoding/binary"
	"fmt"

	"ccai/internal/secmem"
)

// SealedBlob frames an encrypted configuration payload (a Packet Filter
// policy or a transfer descriptor) for upload through the PCIe-SC's
// configuration window. The paper encrypts policies before they enter
// the configuration space so a privileged-software adversary cannot
// inject rules (§4.1 "dynamic and secure configuration"); the frame
// carries the stream counter, epoch, ciphertext and GCM tag.
type SealedBlob struct {
	Counter uint32
	Epoch   uint32
	Cipher  []byte
	Tag     [secmem.TagSize]byte
}

const blobHeader = 4 + 4 + 4 // counter, epoch, cipher length

// MarshalBlob frames a secmem.Sealed chunk for the wire.
func MarshalBlob(s *secmem.Sealed) []byte {
	buf := make([]byte, blobHeader+len(s.Ciphertext)+secmem.TagSize)
	binary.LittleEndian.PutUint32(buf[0:], s.Counter)
	binary.LittleEndian.PutUint32(buf[4:], s.Epoch)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(s.Ciphertext)))
	copy(buf[blobHeader:], s.Ciphertext)
	copy(buf[blobHeader+len(s.Ciphertext):], s.Tag[:])
	return buf
}

// UnmarshalBlob parses a framed configuration upload.
func UnmarshalBlob(buf []byte) (*secmem.Sealed, error) {
	if len(buf) < blobHeader+secmem.TagSize {
		return nil, fmt.Errorf("core: sealed blob too short (%d bytes)", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf[8:])
	if int(n) != len(buf)-blobHeader-secmem.TagSize {
		return nil, fmt.Errorf("core: sealed blob length field %d inconsistent with frame %d", n, len(buf))
	}
	s := &secmem.Sealed{
		Counter:    binary.LittleEndian.Uint32(buf[0:]),
		Epoch:      binary.LittleEndian.Uint32(buf[4:]),
		Ciphertext: append([]byte(nil), buf[blobHeader:blobHeader+int(n)]...),
	}
	copy(s.Tag[:], buf[blobHeader+int(n):])
	return s, nil
}
