package core

import (
	"testing"

	"ccai/internal/secmem"
)

func TestParamsManagerLifecycle(t *testing.T) {
	ks := secmem.NewKeyStore()
	pm := NewParamsManager(ks)
	if _, err := pm.Stream(StreamH2D); err == nil {
		t.Fatal("missing stream returned")
	}
	if err := ks.Install(StreamH2D, secmem.FreshKey(), secmem.FreshNonce()); err != nil {
		t.Fatal(err)
	}
	if err := pm.Activate(StreamH2D); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Stream(StreamH2D); err != nil {
		t.Fatal(err)
	}
	if pm.Active() != 1 {
		t.Fatalf("active = %d", pm.Active())
	}
	pm.DestroyAll()
	if pm.Active() != 0 || ks.Count() != 0 {
		t.Fatal("DestroyAll incomplete")
	}
}

func TestParamsManagerRekey(t *testing.T) {
	ks := secmem.NewKeyStore()
	pm := NewParamsManager(ks)
	if err := ks.Install(StreamD2H, secmem.FreshKey(), secmem.FreshNonce()); err != nil {
		t.Fatal(err)
	}
	if err := pm.Activate(StreamD2H); err != nil {
		t.Fatal(err)
	}
	s, _ := pm.Stream(StreamD2H)
	if s.Epoch() != 0 {
		t.Fatalf("initial epoch = %d", s.Epoch())
	}
	if err := pm.Rekey(StreamD2H, secmem.FreshKey(), secmem.FreshNonce()); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch after rekey = %d", s.Epoch())
	}
	if err := pm.Rekey("unknown", secmem.FreshKey(), secmem.FreshNonce()); err == nil {
		t.Fatal("rekey of unknown stream accepted")
	}
}

func TestTagManagerMatchAndConsume(t *testing.T) {
	tm := NewTagManager()
	rec := TagRecord{Stream: StreamH2D, Chunk: 42, Epoch: 1}
	rec.Tag[0] = 0xaa
	tm.Enqueue(rec)
	if tm.Depth() != 1 {
		t.Fatalf("depth = %d", tm.Depth())
	}
	got, ok := tm.Take(StreamH2D, 42)
	if !ok || got.Tag[0] != 0xaa || got.Epoch != 1 {
		t.Fatalf("Take = %+v, %v", got, ok)
	}
	// One-shot: a second Take misses (replay freshness).
	if _, ok := tm.Take(StreamH2D, 42); ok {
		t.Fatal("tag record consumed twice")
	}
	matched, missing := tm.Stats()
	if matched != 1 || missing != 1 {
		t.Fatalf("stats = %d/%d", matched, missing)
	}
}

func TestTagManagerKeysByStreamAndChunk(t *testing.T) {
	tm := NewTagManager()
	tm.Enqueue(TagRecord{Stream: StreamH2D, Chunk: 1})
	if _, ok := tm.Take(StreamD2H, 1); ok {
		t.Fatal("cross-stream tag matched")
	}
	if _, ok := tm.Take(StreamH2D, 2); ok {
		t.Fatal("cross-chunk tag matched")
	}
	if _, ok := tm.Take(StreamH2D, 1); !ok {
		t.Fatal("correct tag missed")
	}
}

func TestTagRecordMarshalShape(t *testing.T) {
	rec := TagRecord{Stream: StreamD2H, Chunk: 7, Epoch: 3}
	for i := range rec.Tag {
		rec.Tag[i] = byte(i)
	}
	buf := rec.Marshal()
	if len(buf) != TagRecordSize {
		t.Fatalf("record size = %d, want %d", len(buf), TagRecordSize)
	}
}

func TestEnvGuardChecks(t *testing.T) {
	g := NewEnvGuard()
	g.AddCheck(MMIOCheck{
		Name:  "page-table-in-range",
		Reg:   0x50,
		Valid: func(v uint64) bool { return v >= 0x1000 && v < 0x10000 },
	})
	if !g.VerifyMMIO(0x50, 0x2000) {
		t.Fatal("valid page table rejected")
	}
	if g.VerifyMMIO(0x50, 0xffff_0000) {
		t.Fatal("rogue page table accepted")
	}
	if !g.VerifyMMIO(0x99, 0xffff_0000) {
		t.Fatal("unguarded register blocked")
	}
	if len(g.Violations()) != 1 || g.Violations()[0] != "page-table-in-range" {
		t.Fatalf("violations = %v", g.Violations())
	}
}

func TestEnvGuardCleanPlan(t *testing.T) {
	g := NewEnvGuard()
	soft := g.CleanPlan(true, 0x58, 2, 3)
	if !soft.Soft || soft.Val != 2 {
		t.Fatalf("soft plan = %+v", soft)
	}
	cold := g.CleanPlan(false, 0x58, 2, 3)
	if cold.Soft || cold.Val != 3 {
		t.Fatalf("cold plan = %+v", cold)
	}
	if g.Cleans() != 2 {
		t.Fatalf("cleans = %d", g.Cleans())
	}
}

func TestSealedBlobRoundTrip(t *testing.T) {
	key, nonce := secmem.FreshKey(), secmem.FreshNonce()
	tx, _ := secmem.NewStream(key, nonce)
	rx, _ := secmem.NewStream(key, nonce)
	sealed, err := tx.Seal([]byte("policy payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	frame := MarshalBlob(sealed)
	got, err := UnmarshalBlob(frame)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := rx.Open(got, nil)
	if err != nil || string(pt) != "policy payload" {
		t.Fatalf("Open: %q, %v", pt, err)
	}
}

func TestSealedBlobRejectsMalformed(t *testing.T) {
	if _, err := UnmarshalBlob(make([]byte, 8)); err == nil {
		t.Fatal("short frame accepted")
	}
	frame := make([]byte, blobHeader+secmem.TagSize+10)
	frame[8] = 200 // length field inconsistent
	if _, err := UnmarshalBlob(frame); err == nil {
		t.Fatal("inconsistent length accepted")
	}
}

func TestDescriptorMarshalRoundTrip(t *testing.T) {
	d := Descriptor{
		ID: 9, Dir: DirD2H, Class: ActionWriteReadProtect,
		Base: 0x8000_0000, Len: 1 << 20, TagBase: 0x9000_0000,
		ChunkSize: 256, FirstCounter: 0x12345,
	}
	got, err := UnmarshalDescriptor(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	// Epoch isn't serialized; zero both for comparison.
	d.Epoch, got.Epoch = 0, 0
	if got != d {
		t.Fatalf("round trip: %+v vs %+v", got, d)
	}
}

func TestDescriptorValidation(t *testing.T) {
	bad := Descriptor{ID: 1, Class: ActionPassThrough, Len: 1, ChunkSize: 1}
	if _, err := UnmarshalDescriptor(bad.Marshal()); err == nil {
		t.Fatal("pass-through descriptor accepted")
	}
	empty := Descriptor{ID: 1, Class: ActionWriteReadProtect}
	if _, err := UnmarshalDescriptor(empty.Marshal()); err == nil {
		t.Fatal("empty descriptor accepted")
	}
}

func TestDescriptorChunkGeometry(t *testing.T) {
	d := Descriptor{ID: 1, Class: ActionWriteReadProtect, Base: 0x1000, Len: 0x1000, ChunkSize: 256}
	idx, err := d.ChunkOf(0x1100, 256)
	if err != nil || idx != 1 {
		t.Fatalf("chunk = %d, %v", idx, err)
	}
	if _, err := d.ChunkOf(0x1180, 256); err == nil {
		t.Fatal("boundary-crossing access accepted")
	}
	if aad := d.AAD(3); len(aad) != 8 {
		t.Fatalf("AAD length = %d", len(aad))
	}
	if string(d.AAD(3)) == string(d.AAD(4)) {
		t.Fatal("AAD not chunk-specific")
	}
}

func TestRegionTableOverlapAndRemove(t *testing.T) {
	var rt regionTable
	a := Descriptor{ID: 1, Class: ActionWriteReadProtect, Base: 0x1000, Len: 0x1000, ChunkSize: 256}
	b := Descriptor{ID: 2, Class: ActionWriteReadProtect, Base: 0x1800, Len: 0x1000, ChunkSize: 256}
	if err := rt.add(a); err != nil {
		t.Fatal(err)
	}
	if err := rt.add(b); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if _, ok := rt.find(0x1400); !ok {
		t.Fatal("lookup failed")
	}
	rt.remove(1)
	if _, ok := rt.find(0x1400); ok {
		t.Fatal("removed region found")
	}
}
