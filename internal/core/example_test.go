package core_test

import (
	"fmt"

	"ccai/internal/core"
	"ccai/internal/pcie"
)

// ExampleFilter_Classify reproduces the paper's Figure 5 walk-through:
// an L1 screen admits the TVM's memory traffic to the L2 table, which
// classifies by address-space sensitivity into Table 1's actions.
func ExampleFilter_Classify() {
	tvm := pcie.MakeID(0, 1, 0)
	f := core.NewFilter()
	for _, r := range core.L1Screen(1, tvm) {
		f.InstallL1(r)
	}
	// L2: data bounce buffer is Write-Read Protected; doorbells are
	// Write Protected; status reads pass through.
	f.InstallL2(core.Rule{ID: 3, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MWr, Requester: tvm, AddrLo: 0x1000, AddrHi: 0x5000,
		Action: core.ActionWriteReadProtect})
	f.InstallL2(core.Rule{ID: 2, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MWr, Requester: tvm, AddrLo: 0x8000, AddrHi: 0x9000,
		Action: core.ActionWriteProtect})
	f.InstallL2(core.Rule{ID: 4, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MRd, Requester: tvm, AddrLo: 0x1000, AddrHi: 0x5000,
		Action: core.ActionPassThrough})

	packets := []*pcie.Packet{
		pcie.NewMemWrite(tvm, 0x2000, []byte("model data")),         // sensitive
		pcie.NewMemWrite(tvm, 0x8010, []byte{1}),                    // doorbell
		pcie.NewMemRead(tvm, 0x2000, 64, 0),                         // status read
		pcie.NewMemWrite(pcie.MakeID(0, 9, 0), 0x2000, []byte("!")), // rogue
	}
	for _, p := range packets {
		fmt.Println(f.Classify(p).Action)
	}
	// Output:
	// A2:write-read-protect
	// A3:write-protect
	// A4:pass-through
	// A1:drop
}
