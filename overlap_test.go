package ccai

import (
	"testing"

	"ccai/internal/adaptor"
	"ccai/internal/xpu"
)

// These tests pin the ISSUE 9 data-plane overlap structurally: the SC
// must actually run decrypt ahead of the device's DMA (H2D), seal
// device write bursts as batches (D2H), and serve completion heads
// without MMIO round trips (batched reaping). The virtual-time side of
// the same claims lives in internal/bench's overlap test.

// TestDecryptDMAOverlapPipelined runs one 64 KiB protected task and
// checks both halves of the pipeline fired: every span read after the
// first was served from the decrypt-ahead cache (its crypto ran under
// the previous span's DMA shadow), and the D2H path sealed spans as
// engine batches rather than chunk-at-a-time.
func TestDecryptDMAOverlapPipelined(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	input := make([]byte, 64<<10)
	for i := range input {
		input[i] = byte(i * 13)
	}
	before := p.SC.Stats()
	if _, err := p.RunTask(Task{Input: input, Kernel: KernelXOR, Param: 0x5a}); err != nil {
		t.Fatal(err)
	}
	after := p.SC.Stats()

	// 64 KiB input = 16 MaxReadReq spans; the first span is a demand
	// miss, every later one must hit the cache filled while the prior
	// span's completion was in flight.
	const spans = 16
	hits := after.PrefetchHits - before.PrefetchHits
	if hits < spans-1 {
		t.Fatalf("prefetch hits = %d, want >= %d: H2D decrypt not overlapping DMA", hits, spans-1)
	}
	if pf := after.PrefetchedChunks - before.PrefetchedChunks; pf == 0 {
		t.Fatal("no chunks decrypted ahead of demand")
	}
	if d2h := after.BatchedD2HSpans - before.BatchedD2HSpans; d2h == 0 {
		t.Fatal("no D2H write spans sealed as batches")
	}
}

// TestCompletionReapHalvesMMIOReads pins the batched-reaping
// acceptance bar: completion MMIO reads per steady-state 64 KiB task
// must drop at least 2x when reaping is on. With the ring's completion
// word carrying the head, the optimized path should in fact need no
// MMIO reads at all.
func TestCompletionReapHalvesMMIOReads(t *testing.T) {
	perTask := func(reap bool) uint64 {
		opts := adaptor.Optimized()
		opts.CompletionReap = reap
		p, err := NewPlatform(Config{XPU: xpu.A100, Mode: Protected, Adaptor: &opts})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		if err := p.EstablishTrust(); err != nil {
			t.Fatal(err)
		}
		input := make([]byte, 64<<10)
		task := Task{Input: input, Kernel: KernelXOR, Param: 1}
		if _, err := p.RunTask(task); err != nil { // warm-up
			t.Fatal(err)
		}
		before := p.Adaptor.IO().MMIOReads
		if _, err := p.RunTask(task); err != nil {
			t.Fatal(err)
		}
		return p.Adaptor.IO().MMIOReads - before
	}

	legacy := perTask(false)
	reaped := perTask(true)
	if legacy == 0 {
		t.Fatal("legacy path issued no MMIO reads; comparison meaningless")
	}
	if reaped*2 > legacy {
		t.Fatalf("completion reaping reduced MMIO reads only %d -> %d, need >= 2x", legacy, reaped)
	}
	t.Logf("completion MMIO reads per 64 KiB task: %d legacy, %d reaped", legacy, reaped)
}

// TestCompletionReapCoversTenants pins that the multi-tenant assembly
// arms reaping too: a tenant's steady-state task must serve its
// completion polls from host memory, not MMIO. (The wiring lives in
// addTenant; before it existed, every tenant silently rode the MMIO
// fallback while the single-tenant platform reaped.)
func TestCompletionReapCoversTenants(t *testing.T) {
	mp := servingPlatform(t, 2)
	input := make([]byte, 64<<10)
	task := Task{Input: input, Kernel: KernelXOR, Param: 1}
	for _, tn := range mp.Tenants {
		if _, err := tn.RunTask(task); err != nil { // warm-up
			t.Fatal(err)
		}
		before := tn.Adaptor.IO().MMIOReads
		if _, err := tn.RunTask(task); err != nil {
			t.Fatal(err)
		}
		if reads := tn.Adaptor.IO().MMIOReads - before; reads != 0 {
			t.Fatalf("tenant %d: steady-state 64 KiB task issued %d completion MMIO reads, want 0 (reaping not armed)",
				tn.Index, reads)
		}
	}
}
