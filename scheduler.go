package ccai

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ccai/internal/fault"
	"ccai/internal/obsv"
	"ccai/internal/sched"
	"ccai/internal/telemetry"
)

// This file is the v2 serving frontend: a long-lived, admission-
// controlled scheduler over a MultiPlatform. Where RunTasks is a batch
// barrier (submit everything, wait for everything), the Scheduler is
// what the paper's §9 deployment actually needs — an always-on engine
// that admits requests one at a time under sustained load:
//
//   - Bounded per-tenant ingress queues with fail-fast backpressure:
//     Submit returns ErrQueueFull instead of buffering unboundedly.
//   - Weighted fair scheduling (deficit round-robin over bytes): a
//     flood from one tenant cannot starve another.
//   - Deadline/cancellation honored end-to-end: a request cancelled
//     while queued never occupies a pipeline slot; one cancelled in
//     flight drains safely through the Adaptor (the device run
//     completes, the result is discarded) so IV counters and tag
//     state are never left mid-protocol.
//   - Graceful Drain (stop admission, finish everything) and Shutdown
//     (stop admission, cancel the queue, finish what is in flight).
//
// RunTasks is now a thin synchronous wrapper over this engine.

// SchedulerConfig parameterizes a Scheduler. The zero value serves:
// 32-deep queues, equal weights, one execution slot per tenant.
type SchedulerConfig struct {
	// QueueDepth bounds each tenant's ingress queue (default 32).
	// Submissions beyond it fail fast with ErrQueueFull.
	QueueDepth int
	// Weights are per-tenant fair-share weights (default all 1): under
	// contention a tenant receives service proportional to its weight.
	Weights []int
	// Slots bounds concurrently executing requests across the chassis
	// (default: one per tenant). A tenant never uses more than one
	// slot at a time — its pipeline is serial.
	Slots int
	// Quantum is the fair-scheduler deficit quantum in bytes (default
	// 4096). Smaller values interleave tenants more finely.
	Quantum int64
}

// Scheduler lifecycle states.
const (
	schedRunning int32 = iota
	schedDraining
	schedClosed
)

// Handle is one submitted request's completion handle.
type Handle struct {
	// Tenant is the request's tenant index.
	Tenant int
	// Index is the request's position in its originating RunTasks batch,
	// or -1 for requests submitted directly through Submit.
	Index int

	done chan struct{}
	once sync.Once
	out  []byte
	err  error
	wait atomic.Int64 // queue wait in wall ns, set at dispatch
}

// Done returns a channel closed when the request completes (with a
// result, an error, or a cancellation).
func (h *Handle) Done() <-chan struct{} { return h.done }

// Result blocks until the request completes and returns its outcome.
func (h *Handle) Result() ([]byte, error) {
	<-h.done
	return h.out, h.err
}

// Wait blocks until the request completes or ctx expires, returning
// the request's full TenantResult. The result's Err mirrors the second
// return so callers can either branch on err or carry the record. An
// expired ctx abandons the wait only — the request itself continues
// under the context it was submitted with — and yields a result whose
// Err is the ctx error.
func (h *Handle) Wait(ctx context.Context) (TenantResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-h.done:
		return TenantResult{Tenant: h.Tenant, Index: h.Index, Output: h.out, Err: h.err}, h.err
	case <-ctx.Done():
		err := ctxErr(ctx.Err())
		return TenantResult{Tenant: h.Tenant, Index: h.Index, Err: err}, err
	}
}

// QueueWait reports how long the request waited between admission and
// dispatch (zero until dispatched).
func (h *Handle) QueueWait() time.Duration { return time.Duration(h.wait.Load()) }

// request is the queue payload behind a Handle.
type request struct {
	ctx   context.Context
	task  Task
	h     *Handle
	enq   time.Time
	qspan obsv.ActiveSpan
}

// Scheduler is the long-lived serving engine over a MultiPlatform.
// Construct with MultiPlatform.NewScheduler; all methods are safe for
// concurrent use.
type Scheduler struct {
	mp    *MultiPlatform
	q     *sched.Fair
	obs   *obsv.Hub
	slots chan struct{}

	mu       sync.Mutex
	state    int32
	inflight sync.WaitGroup
	stop     chan struct{} // closed by Shutdown to abort the dispatcher
	finished chan struct{} // closed when the dispatcher and all in-flight work end

	faultHook atomic.Pointer[func(point string) bool]
	// execGate, when set (tests only, before first Submit), runs at the
	// top of every execution slot — the hook the semantics table uses
	// to hold a slot open deterministically.
	execGate func(tenant int)
}

// NewScheduler starts a serving scheduler over the chassis. The
// dispatcher goroutine runs until Drain or Shutdown completes.
func (mp *MultiPlatform) NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	n := len(mp.Tenants)
	if n == 0 {
		return nil, fmt.Errorf("ccai: scheduler needs tenants: %w", ErrNoTenant)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = n
	}
	q, err := sched.New(sched.Config{
		Flows: n, Depth: cfg.QueueDepth, Weights: cfg.Weights, Quantum: cfg.Quantum,
	})
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		mp:       mp,
		q:        q,
		obs:      mp.Obs,
		slots:    make(chan struct{}, slots),
		stop:     make(chan struct{}),
		finished: make(chan struct{}),
	}
	go s.dispatch()
	return s, nil
}

// SetFaultHook installs the deterministic fault probe (see
// fault.Injector.SchedFault); nil clears it. Probed at every dispatch:
// SchedPointDequeue firing requeues the request (mid-queue stall),
// SchedPointCancel firing cancels it at the claim boundary.
func (s *Scheduler) SetFaultHook(fn func(point string) bool) {
	if fn == nil {
		s.faultHook.Store(nil)
		return
	}
	s.faultHook.Store(&fn)
}

func (s *Scheduler) probeFault(point string) bool {
	fn := s.faultHook.Load()
	return fn != nil && (*fn)(point)
}

func tenantLabel(i int) string { return strconv.Itoa(i) }

// Submit admits one request. It never blocks: the request is either
// queued (returning a Handle) or rejected immediately — ErrQueueFull
// when the tenant's queue is at capacity, ErrNoTenant for a bad index,
// ErrEmptyInput for an empty task, ErrSchedulerClosed after
// Drain/Shutdown, or the ctx's own error when it is already done.
// The returned Handle completes when the request finishes, fails, or
// is cancelled; errors.Is(err, context.Canceled) and
// errors.Is(err, ErrDeadlineExceeded) identify cancellations.
func (s *Scheduler) Submit(ctx context.Context, tt TenantTask) (*Handle, error) {
	return s.submit(ctx, tt, -1)
}

// submit is Submit with a batch index stamped on the handle — RunTasks
// uses it so Wait's TenantResult answers the original slice position.
func (s *Scheduler) submit(ctx context.Context, tt TenantTask, idx int) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reg := s.obs.Reg()
	reject := func(reason string, err error) (*Handle, error) {
		reg.Counter(obsv.Name("sched.rejected", "reason", reason)).Inc()
		s.monitor().RecordOutcome(false, 0)
		return nil, err
	}
	if atomic.LoadInt32(&s.state) != schedRunning {
		return reject("closed", fmt.Errorf("ccai: submit: %w", ErrSchedulerClosed))
	}
	if tt.Tenant < 0 || tt.Tenant >= len(s.mp.Tenants) {
		return reject("no_tenant", fmt.Errorf("ccai: tenant %d of %d: %w",
			tt.Tenant, len(s.mp.Tenants), ErrNoTenant))
	}
	if len(tt.Task.Input) == 0 {
		return reject("empty", fmt.Errorf("ccai: tenant %d: %w", tt.Tenant, ErrEmptyInput))
	}
	if err := ctx.Err(); err != nil {
		return reject("ctx_done", ctxErr(err))
	}

	tr := s.obs.T()
	label := tenantLabel(tt.Tenant)
	sp := tr.Begin(obsv.TrackSched, "admit",
		obsv.Str("tenant", label), obsv.I64("bytes", int64(len(tt.Task.Input))))
	h := &Handle{Tenant: tt.Tenant, Index: idx, done: make(chan struct{})}
	r := &request{ctx: ctx, task: tt.Task, h: h, enq: time.Now()}
	// The queue_wait span opens before Push: once the entry is visible
	// to the dispatcher, no field of r may be written again.
	r.qspan = tr.Begin(obsv.TrackSched, "queue_wait", obsv.Str("tenant", label))
	e, err := s.q.Push(tt.Tenant, int64(len(tt.Task.Input)), r)
	sp.End()
	if err != nil {
		r.qspan.End()
		switch {
		case errors.Is(err, sched.ErrQueueFull):
			return reject("queue_full", fmt.Errorf("ccai: tenant %d: %w", tt.Tenant, ErrQueueFull))
		case errors.Is(err, sched.ErrClosed):
			return reject("closed", fmt.Errorf("ccai: submit: %w", ErrSchedulerClosed))
		}
		return reject("invalid", err)
	}
	reg.Counter(obsv.Name("sched.admitted", "tenant", label)).Inc()
	reg.Gauge(obsv.Name("sched.queue_depth", "tenant", label)).Set(int64(s.q.Len(tt.Tenant)))

	// Cancellation while queued: win the claim race and the request
	// completes here, never having occupied a pipeline slot.
	context.AfterFunc(ctx, func() {
		if s.q.Cancel(e) {
			r.qspan.End()
			reg.Counter(obsv.Name("sched.canceled", "stage", "queued")).Inc()
			reg.Gauge(obsv.Name("sched.queue_depth", "tenant", label)).Set(int64(s.q.Len(tt.Tenant)))
			s.finish(r, nil, ctxErr(ctx.Err()))
		}
	})
	return h, nil
}

// monitor returns the chassis's rolling SLO monitor, nil when no
// telemetry plane is attached (every Monitor method no-ops on nil).
func (s *Scheduler) monitor() *telemetry.Monitor {
	if s.mp.Tel == nil {
		return nil
	}
	return s.mp.Tel.Monitor
}

// finish resolves the request's handle exactly once.
func (s *Scheduler) finish(r *request, out []byte, err error) {
	r.h.once.Do(func() {
		r.h.out, r.h.err = out, err
		close(r.h.done)
		status := "ok"
		if err != nil {
			status = "error"
		}
		s.obs.Reg().Counter(obsv.Name("sched.completed",
			"tenant", tenantLabel(r.h.Tenant), "status", status)).Inc()
		s.monitor().RecordOutcome(err == nil, r.h.wait.Load())
	})
}

// dispatch is the scheduler loop: acquire a slot, let the fair queue
// pick the next request at that instant, execute. It exits when the
// queue is closed and drained (Drain) or stop is signalled (Shutdown),
// then waits out in-flight work.
func (s *Scheduler) dispatch() {
	defer func() {
		s.inflight.Wait()
		close(s.finished)
	}()
	for {
		select {
		case s.slots <- struct{}{}:
		case <-s.stop:
			return
		}
		e, ok := s.q.Next(s.stop)
		if !ok {
			<-s.slots
			return
		}
		if s.probeFault(fault.SchedPointDequeue) {
			// Mid-queue stall: the claim is abandoned, the request goes
			// back to the head of its tenant's queue with its fair-share
			// deficit refunded, and dispatch retries.
			s.obs.Reg().Counter(obsv.Name("sched.faults", "class", "sched-stall")).Inc()
			s.q.Requeue(e)
			s.q.Release(e.Flow)
			<-s.slots
			continue
		}
		r := e.Value.(*request)
		if s.probeFault(fault.SchedPointCancel) {
			// Cancellation landing at the exact claim boundary: settle it
			// as a queue-side cancellation — the slot is returned unused.
			s.obs.Reg().Counter(obsv.Name("sched.faults", "class", "cancel-race")).Inc()
			r.qspan.End()
			s.obs.Reg().Counter(obsv.Name("sched.canceled", "stage", "claim")).Inc()
			s.finish(r, nil, ctxErr(context.Canceled))
			s.q.Release(e.Flow)
			<-s.slots
			continue
		}
		s.inflight.Add(1)
		go s.execute(r, e.Flow)
	}
}

// execute runs one dispatched request in its slot.
func (s *Scheduler) execute(r *request, flow int) {
	defer func() {
		s.q.Release(flow)
		<-s.slots
		s.inflight.Done()
	}()
	reg := s.obs.Reg()
	label := tenantLabel(r.h.Tenant)
	wait := time.Since(r.enq)
	r.h.wait.Store(int64(wait))
	r.qspan.End()
	// The request runs under a task scope so its pipeline spans share a
	// task ID, and the wait sample carries that ID as its bucket's
	// exemplar — a p99 outlier on the scrape page links straight to the
	// timeline spans that produced it. WaitBuckets (1 ms–10 s) rather
	// than DurationBuckets: real queue waits live in the ms–100 ms
	// range, far above the 10 ms ceiling of the pipeline-stage layout.
	tid := s.obs.T().StartTask()
	defer s.obs.T().EndTask()
	reg.Histogram(obsv.Name("sched.queue_wait_ns", "tenant", label),
		obsv.WaitBuckets()).ObserveExemplar(wait.Nanoseconds(), tid)
	reg.Gauge(obsv.Name("sched.queue_depth", "tenant", label)).Set(int64(s.q.Len(r.h.Tenant)))

	if s.execGate != nil {
		s.execGate(r.h.Tenant)
	}
	// A request whose context died between claim and here still never
	// touches the pipeline.
	if err := r.ctx.Err(); err != nil {
		reg.Counter(obsv.Name("sched.canceled", "stage", "claimed")).Inc()
		s.finish(r, nil, ctxErr(err))
		return
	}
	sp := s.obs.T().Begin(obsv.TrackSched, "execute",
		obsv.Str("tenant", label), obsv.I64("bytes", int64(len(r.task.Input))))
	out, err := s.mp.Tenants[r.h.Tenant].RunTaskCtx(r.ctx, r.task)
	status := "ok"
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, ErrDeadlineExceeded):
		status = "canceled"
		reg.Counter(obsv.Name("sched.canceled", "stage", "inflight")).Inc()
	default:
		status = "error"
	}
	sp.Attr(obsv.Str("status", status))
	sp.End()
	s.finish(r, out, err)
}

// Drain stops admission and waits for every queued and in-flight
// request to complete, bounded by ctx. The scheduler is finished
// afterwards — Submit keeps returning ErrSchedulerClosed.
func (s *Scheduler) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if atomic.LoadInt32(&s.state) == schedRunning {
		atomic.StoreInt32(&s.state, schedDraining)
		s.q.Close()
	}
	s.mu.Unlock()
	select {
	case <-s.finished:
		return nil
	case <-ctx.Done():
		return ctxErr(ctx.Err())
	}
}

// Shutdown stops admission, cancels everything still queued (their
// handles complete with ErrSchedulerClosed), waits for in-flight
// requests to drain, and stops the dispatcher — bounded by ctx.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if atomic.LoadInt32(&s.state) != schedClosed {
		atomic.StoreInt32(&s.state, schedClosed)
		s.q.Close()
		for _, e := range s.q.DrainQueued() {
			r := e.Value.(*request)
			r.qspan.End()
			s.finish(r, nil, fmt.Errorf("ccai: request dropped: %w", ErrSchedulerClosed))
		}
		close(s.stop)
	}
	s.mu.Unlock()
	select {
	case <-s.finished:
		return nil
	case <-ctx.Done():
		return ctxErr(ctx.Err())
	}
}

// Pending reports requests admitted but not yet dispatched, across
// all tenants.
func (s *Scheduler) Pending() int { return s.q.Pending() }
