package ccai

import (
	"crypto/ecdsa"
	"fmt"

	"ccai/internal/core"
	"ccai/internal/hrot"
)

// SecureBoot runs the platform's measured boot (§6): the HRoT-Blade
// verifies vendor signatures over the PCIe-SC bitstream, the
// controller firmware, the *actual* static packet-filter policy this
// platform installed, and the xPU firmware — extending each into its
// PCR. The returned blade is what remote attestation quotes against;
// the measured policy means a platform booted with different filter
// rules produces different PCRs and fails the verifier's golden check.
//
// vendorCA signs the shipped images; in deployment it lives with the
// hardware vendor, here the caller generates it (see
// examples/attestation).
func (p *Platform) SecureBoot(vendorCA *ecdsa.PrivateKey) (*hrot.Blade, error) {
	if p.Mode != Protected {
		return nil, fmt.Errorf("ccai: secure boot applies to protected platforms")
	}
	blade, err := hrot.NewBlade(vendorCA)
	if err != nil {
		return nil, err
	}
	images := []struct {
		name    string
		pcr     int
		content []byte
	}{
		{"pcie-sc-bitstream", hrot.PCRBitstream, []byte("ccai packet filter + handlers + aes-gcm-sha engine v1.0")},
		{"controller-firmware", hrot.PCRFirmware, []byte("pcie-sc fw 1.0")},
		{"boot-policy", hrot.PCRPolicy, p.BootPolicyImage()},
		{"xpu-firmware", hrot.PCRXPU, []byte(p.Device.Profile().FirmwareVersion)},
	}
	chain := make([]hrot.BootImage, 0, len(images))
	for _, im := range images {
		sig, err := hrot.SignImage(vendorCA, im.content)
		if err != nil {
			return nil, err
		}
		chain = append(chain, hrot.BootImage{Name: im.name, PCR: im.pcr, Content: im.content, Signature: sig})
	}
	if err := blade.SecureBoot(&vendorCA.PublicKey, chain); err != nil {
		return nil, err
	}
	blade.SetObserver(p.Obs)
	p.Blade = blade
	return blade, nil
}

// BootPolicyImage serializes the static packet-filter policy installed
// at assembly into the byte image measured during secure boot. Using
// the live rules (not a constant) is what makes the PCR sensitive to
// policy substitution.
func (p *Platform) BootPolicyImage() []byte {
	if p.SC == nil {
		return nil
	}
	var img []byte
	for _, r := range p.bootRules {
		img = append(img, r.Marshal()...)
	}
	return img
}

// bootRules records the rules installBootRules loaded, for measurement.
func (p *Platform) recordBootRule(r core.Rule) { p.bootRules = append(p.bootRules, r) }
