package ccai

// RQ2 (§8.2): the security analysis run as executable tests. Each test
// launches one attack class from the paper's threat model against a
// live platform and asserts the defence holds.

import (
	"bytes"
	"testing"

	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
	"ccai/internal/xpu"
)

var secret = []byte("TOP-SECRET-MODEL-WEIGHTS-0123456789")

// taskInput builds an input embedding the canary secret.
func taskInput() []byte {
	in := make([]byte, 900)
	for i := range in {
		in[i] = byte(i * 3)
	}
	copy(in[100:], secret)
	copy(in[700:], secret)
	return in
}

// TestRQ2_SnoopVanillaSeesPlaintext establishes the attack works at
// all: without ccAI, a bus snooper reads the workload directly.
func TestRQ2_SnoopVanillaSeesPlaintext(t *testing.T) {
	p := vanillaPlatform(t, xpu.A100)
	snoop := attack.NewSnooper()
	p.Host.AddTap(snoop)
	if _, err := p.RunTask(Task{Input: taskInput(), Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	if !snoop.SawPlaintext(secret) {
		t.Fatal("baseline broken: snooper missed plaintext on unprotected bus")
	}
}

// TestRQ2_SnoopProtectedSeesOnlyCiphertext is invariant 1 of DESIGN.md:
// no A2 plaintext on the untrusted segment.
func TestRQ2_SnoopProtectedSeesOnlyCiphertext(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	snoop := attack.NewSnooper()
	p.Host.AddTap(snoop)
	in := taskInput()
	out, err := p.RunTask(Task{Input: in, Kernel: KernelAdd, Param: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Param 0: output equals input, so the result also contains the
	// secret — and its D2H path must be encrypted too.
	if !bytes.Contains(out, secret) {
		t.Fatal("task did not round-trip the canary")
	}
	if snoop.SawPlaintext(secret) {
		t.Fatal("CONFIDENTIALITY BREACH: secret visible on untrusted bus")
	}
	if snoop.PayloadBytes() == 0 {
		t.Fatal("snooper saw no traffic; test not exercising the bus")
	}
	// On the internal (trusted, sealed-chassis) segment the xPU does
	// receive plaintext — that is by design.
	inner := attack.NewSnooper()
	p.Internal.AddTap(inner)
	if _, err := p.RunTask(Task{Input: in, Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	if !inner.SawPlaintext(secret) {
		t.Fatal("xPU never received plaintext; computation would be garbage")
	}
}

// TestRQ2_TamperedDataDetected flips bits in encrypted H2D traffic; the
// SC's integrity check must catch it — the tampered bytes never reach
// the device, and the recovered task (the retransmit re-verifies) must
// produce the exact untampered result.
func TestRQ2_TamperedDataDetected(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	tamper := &attack.Tamperer{
		Match: func(pk *pcie.Packet) bool {
			// Corrupt ciphertext completions returning bounce-buffer
			// data toward the SC. Submission-ring fetches are exact
			// RingSlotSize multiples and are skipped: tampering ring
			// framing is a separate fail-closed path (fault matrix).
			return pk.Kind == pcie.CplD && pk.Requester == SCID &&
				len(pk.Payload)%core.RingSlotSize != 0
		},
		Count: 1,
	}
	p.Host.AddTap(tamper)
	in := taskInput()
	out, err := p.RunTask(Task{Input: in, Kernel: KernelAdd, Param: 2})
	if tamper.Tampered() == 0 {
		t.Fatal("tamperer never fired; test vacuous")
	}
	if p.SC.Stats().AuthFailures == 0 {
		t.Fatal("SC did not record the integrity failure")
	}
	if err != nil {
		t.Fatalf("recovery should re-drive after a single tamper: %v", err)
	}
	for i := range in {
		if out[i] != in[i]+2 {
			t.Fatalf("output corrupted at byte %d: tampered data reached the computation", i)
		}
	}
}

// TestRQ2_TamperedResultDetected corrupts the encrypted D2H result in
// the bounce buffer; the Adaptor's decrypt must fail.
func TestRQ2_TamperedResultDetected(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	tamper := &attack.Tamperer{
		Match: func(pk *pcie.Packet) bool {
			// Corrupt SC→host encrypted result writes into the shared
			// window (skip the small tag-table writes).
			return pk.Kind == pcie.MWr && pk.Requester == SCID && len(pk.Payload) >= 64
		},
		Count: 1,
	}
	p.Host.AddTap(tamper)
	if _, err := p.RunTask(Task{Input: taskInput(), Kernel: KernelAdd, Param: 0}); err == nil {
		t.Fatal("Adaptor accepted a tampered result")
	}
}

// TestRQ2_TamperedDoorbellBlocked corrupts an A3 MMIO write; the MAC
// check must reject it and the device must never see the command.
func TestRQ2_TamperedDoorbellBlocked(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	tamper := &attack.Tamperer{
		Match: func(pk *pcie.Packet) bool {
			return pk.Kind == pcie.MWr && pk.Requester == TVMID && pk.Address >= 0xd000_0000 && pk.Address < 0xd000_1000
		},
		Count: 1,
	}
	p.Host.AddTap(tamper)
	in := []byte("cmd tamper")
	out, err := p.RunTask(Task{Input: in, Kernel: KernelAdd, Param: 0})
	if p.SC.Stats().AuthFailures == 0 {
		t.Fatal("A3 MAC failure not recorded")
	}
	// The tampered write itself must be blocked at the SC; recovery then
	// re-syncs the A3 sequence and re-issues it, so the task completes
	// with the correct result (or fails — never executes a forged write).
	if err != nil {
		t.Logf("task failed closed after tampered control write: %v", err)
		return
	}
	if !bytes.Equal(out, in) {
		t.Fatalf("recovered output %q != input %q", out, in)
	}
	if p.Adaptor.Recovery().Resyncs == 0 {
		t.Fatal("task succeeded without an A3 resync; tampered write was not actually blocked")
	}
}

// TestRQ2_ReplayRejected replays captured encrypted traffic; the IV
// counter discipline must reject every replayed chunk.
func TestRQ2_ReplayRejected(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	rec := &attack.Recorder{
		Match: func(pk *pcie.Packet) bool {
			return pk.Kind == pcie.MWr && pk.Requester == TVMID
		},
	}
	p.Host.AddTap(rec)
	if _, err := p.RunTask(Task{Input: taskInput(), Kernel: KernelAdd, Param: 0}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Captured) == 0 {
		t.Fatal("nothing captured to replay")
	}
	authBefore := p.SC.Stats().AuthFailures
	decBefore := p.SC.Stats().DecryptedChunks
	rec.Replay(p.Host)
	if p.SC.Stats().DecryptedChunks != decBefore {
		t.Fatal("replayed traffic caused fresh decryptions")
	}
	_ = authBefore // replayed control writes may or may not hit counters; decryption count is the oracle
}

// TestRQ2_RedirectedResultUnreadable redirects encrypted result chunks
// to a different shared-memory location; the stolen bytes must be
// ciphertext (adversary holds no keys), so secrecy is preserved even
// though the legitimate transfer is disturbed.
func TestRQ2_RedirectedResultUnreadable(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	// Attacker-readable landing zone inside shared memory.
	landing, err := p.Guest.Space.Alloc("shared", "attacker-landing", 4096)
	if err != nil {
		t.Fatal(err)
	}
	redir := &attack.Redirector{
		Match: func(pk *pcie.Packet) bool {
			return pk.Kind == pcie.MWr && pk.Requester == SCID && len(pk.Payload) >= 64
		},
		NewDst: landing.Base(),
	}
	p.Host.AddTap(redir)
	_, taskErr := p.RunTask(Task{Input: taskInput(), Kernel: KernelAdd, Param: 0})
	if redir.Hits() == 0 {
		t.Fatal("redirector never fired")
	}
	if taskErr == nil {
		t.Fatal("redirected transfer went unnoticed")
	}
	if bytes.Contains(landing.Bytes(), secret) {
		t.Fatal("redirected payload contained plaintext secret")
	}
}

// TestRQ2_DroppedPacketDetected deletes an encrypted chunk in flight.
// The stall is detected and the recovery ladder (tag repost + driver
// kick) re-drives the transfer; the task must either fail or complete
// with the correct result — never silently compute on a hole.
func TestRQ2_DroppedPacketDetected(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	drop := &attack.Dropper{
		Match: func(pk *pcie.Packet) bool {
			// Data completions only; ring fetches (RingSlotSize
			// multiples) self-heal via the SC's bounded re-read and
			// would absorb the drop.
			return pk.Kind == pcie.CplD && pk.Requester == SCID &&
				len(pk.Payload) >= 64 && len(pk.Payload)%core.RingSlotSize != 0
		},
		Count: 1,
	}
	p.Host.AddTap(drop)
	in := taskInput()
	out, err := p.RunTask(Task{Input: in, Kernel: KernelAdd, Param: 1})
	if drop.Dropped() == 0 {
		t.Fatal("dropper never fired")
	}
	if err != nil {
		t.Fatalf("recovery should re-drive the transfer after a single drop: %v", err)
	}
	for i := range in {
		if out[i] != in[i]+1 {
			t.Fatalf("recovered output wrong at byte %d: got %#x want %#x", i, out[i], in[i]+1)
		}
	}
	if rec := p.Adaptor.Recovery(); rec.Reposts == 0 {
		t.Fatalf("recovery never engaged: %+v", rec)
	}
}

// TestRQ2_RogueTVMBlockedByFilter sends forged requests from an
// unauthorized requester at the xPU window and the SC control BAR; the
// L1 table must drop all of them (Figure 5 ①).
func TestRQ2_RogueTVMBlockedByFilter(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	rogue := &attack.RogueRequester{ID: pcie.MakeID(0, 9, 0), Bus: p.Host}

	droppedBefore := p.SC.Stats().Filter.Dropped
	rogue.Write(0xd000_0000+xpu.RegDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	cpl := rogue.Read(0xd000_0000+xpu.RegStatus, 8)
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("rogue TVM read xPU state through the SC")
	}
	if p.SC.Stats().Filter.Dropped <= droppedBefore {
		t.Fatal("filter did not record the rogue drops")
	}
	// Control BAR: requester pinning rejects it.
	rejBefore := p.SC.Stats().ConfigRejects
	rogue.Write(scBARBase+core.RegTeardown, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	if p.SC.Stats().Teardowns != 0 {
		t.Fatal("rogue TVM triggered teardown")
	}
	if p.SC.Stats().ConfigRejects <= rejBefore {
		t.Fatal("control-BAR rejection not recorded")
	}
}

// TestRQ2_MaliciousDeviceBlockedByIOMMU aims a rogue peripheral at TVM
// private memory; default-deny IOMMU must fault it.
func TestRQ2_MaliciousDeviceBlockedByIOMMU(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	// Write a secret into TVM private memory.
	priv, err := p.Guest.Space.Alloc("private", "tvm-secret", 4096)
	if err != nil {
		t.Fatal(err)
	}
	copy(priv.Bytes(), secret)

	evil := &attack.RogueRequester{ID: pcie.MakeID(3, 0, 0), Bus: p.Host}
	cpl := evil.Read(priv.Base(), 64)
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("malicious device read TVM private memory")
	}
	evil.Write(priv.Base(), []byte("overwrite"))
	if !bytes.Equal(priv.Bytes()[:len(secret)], secret) {
		t.Fatal("malicious device modified TVM private memory")
	}
	if len(p.IOMMU.Faults) == 0 {
		t.Fatal("IOMMU recorded no faults")
	}
}

// TestRQ2_SCNeverReadsPrivateMemory: even the trusted SC holds no
// mapping for TVM-private pages (least privilege).
func TestRQ2_SCNeverReadsPrivateMemory(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	priv, err := p.Guest.Space.Alloc("private", "tvm-secret2", 4096)
	if err != nil {
		t.Fatal(err)
	}
	cpl := p.Host.Route(pcie.NewMemRead(SCID, priv.Base(), 64, 0))
	if cpl != nil && cpl.Status == pcie.CplSuccess {
		t.Fatal("SC mapping extends into private memory")
	}
}

// TestRQ2_ForgedConfigInjectionRejected writes unsealed / wrongly-keyed
// policy blobs into the SC configuration space; only config-stream
// sealed blobs may install rules (§4.1).
func TestRQ2_ForgedConfigInjectionRejected(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	l1Before, l2Before := p.SC.Filter().RuleCount()

	evil := core.Rule{ID: 99, Mask: 0, Action: core.ActionPassThrough} // match-all allow
	// Attempt 1: raw plaintext rule (no sealing) from the real TVM ID.
	p.Host.Route(pcie.NewMemWrite(TVMID, scBARBase+core.RegRuleWindow, evil.Marshal()))
	p.Host.Route(pcie.NewMemWrite(TVMID, scBARBase+core.RegRuleDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))

	// Attempt 2: sealed under an attacker-chosen key.
	wrongStream, _ := secmem.NewStream(secmem.FreshKey(), secmem.FreshNonce())
	sealed, _ := wrongStream.Seal(evil.Marshal(), nil)
	p.Host.Route(pcie.NewMemWrite(TVMID, scBARBase+core.RegRuleWindow, core.MarshalBlob(sealed)))
	p.Host.Route(pcie.NewMemWrite(TVMID, scBARBase+core.RegRuleDoorbell, []byte{1, 0, 0, 0, 0, 0, 0, 0}))

	l1After, l2After := p.SC.Filter().RuleCount()
	if l1After != l1Before || l2After != l2Before {
		t.Fatal("forged policy installed")
	}
	if p.SC.Stats().ConfigRejects < 2 {
		t.Fatalf("config rejects = %d, want >= 2", p.SC.Stats().ConfigRejects)
	}
}

// TestRQ2_EnvGuardBlocksRoguePageTable installs the paper's example
// environment check (page-table register validity) and verifies a
// malicious value is stopped even with a valid MAC.
func TestRQ2_EnvGuardBlocksRoguePageTable(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	p.SC.Guard().AddCheck(core.MMIOCheck{
		Name:  "page-table-range",
		Reg:   xpu.RegPageTable,
		Valid: func(v uint64) bool { return v < 1<<20 }, // must stay in device memory
	})
	// Legitimate write passes.
	if err := p.Adaptor.GuardedWrite(xpu.RegPageTable, 0x4000); err != nil {
		t.Fatal(err)
	}
	// The Adaptor is trusted, but suppose compromised guest software
	// convinced it to point the page table at host memory: the SC's
	// independent check still blocks the value.
	blocksBefore := p.SC.Stats().GuardBlocks
	_ = p.Adaptor.GuardedWrite(xpu.RegPageTable, 0xffff_0000_0000)
	if p.SC.Stats().GuardBlocks != blocksBefore+1 {
		t.Fatal("environment guard did not block the rogue page table")
	}
	// Device register must still hold the legitimate value.
	v, err := p.Adaptor.DeviceRead(xpu.RegPageTable)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x4000 {
		t.Fatalf("page table register = %#x, want 0x4000", v)
	}
}

// TestRQ2_IVExhaustionForcesRekey drives a stream to counter exhaustion
// and verifies the session refuses to reuse an IV and recovers after
// rekey (§6 key management).
func TestRQ2_IVExhaustionForcesRekey(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	// Exhaust the TVM-side h2d counter artificially.
	h2d, err := p.tvmKeys.Stream(core.StreamH2D)
	if err != nil {
		t.Fatal(err)
	}
	_ = h2d // direct stream replica; the Adaptor holds its own.
	// Force the Adaptor's stream near exhaustion via many small stages
	// is impractical; instead verify at the secmem layer with the same
	// material, then verify rekey on the SC's manager.
	key, nonce, err := p.scKeys.Material(core.StreamH2D)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := secmem.NewStream(key, nonce)
	s.ForceCounter(^uint32(0))
	if _, err := s.Seal([]byte("x"), nil); err == nil {
		t.Fatal("IV reuse permitted")
	}
	if err := p.SC.Params().Rekey(core.StreamH2D, secmem.FreshKey(), secmem.FreshNonce()); err != nil {
		t.Fatal(err)
	}
	scStream, _ := p.SC.Params().Stream(core.StreamH2D)
	if scStream.Epoch() != 1 {
		t.Fatalf("SC stream epoch = %d after rekey", scStream.Epoch())
	}
}

// TestRQ2_FilterStatsAccounting sanity-checks that a clean protected
// run drops nothing and classifies traffic into all three permit
// classes.
func TestRQ2_FilterStatsAccounting(t *testing.T) {
	p := protectedPlatform(t, xpu.A100)
	if _, err := p.RunTask(Task{Input: taskInput(), Kernel: KernelAdd, Param: 1}); err != nil {
		t.Fatal(err)
	}
	st := p.SC.Stats().Filter
	if st.Dropped != 0 {
		t.Fatalf("clean run dropped %d packets", st.Dropped)
	}
	if st.Protected == 0 || st.Verified == 0 || st.Passed == 0 {
		t.Fatalf("expected A2+A3+A4 traffic, got %+v", st)
	}
}
