//go:build !race

package ccai

const raceDetector = false
