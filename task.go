package ccai

import (
	"context"
	"fmt"

	"ccai/internal/adaptor"
	"ccai/internal/obsv"
	"ccai/internal/tvm"
	"ccai/internal/xpu"
)

// Kernel selects a functional reference kernel for task execution.
// Real model math is handled by the timing model (internal/bench);
// these kernels prove that data actually flows end-to-end through the
// protected path byte-for-byte.
type Kernel uint32

const (
	// KernelAdd computes out[i] = in[i] + param.
	KernelAdd Kernel = xpu.KernelVecAddConst
	// KernelChecksum computes an FNV-1a digest of the input.
	KernelChecksum Kernel = xpu.KernelChecksum
	// KernelXOR computes out[i] = in[i] ^ param.
	KernelXOR Kernel = xpu.KernelXORMask
)

func (k Kernel) String() string {
	switch k {
	case KernelAdd:
		return "add"
	case KernelChecksum:
		return "checksum"
	case KernelXOR:
		return "xor"
	}
	return fmt.Sprintf("kernel%d", uint32(k))
}

// Task is one confidential xPU job: input data, a kernel, and its
// parameter. Output size equals input size (KernelChecksum pads to 8).
type Task struct {
	Input  []byte
	Kernel Kernel
	Param  uint8
}

// RunTask executes a task on the platform's device using the native
// driver flow: stage input, submit copy/kernel/copy commands, collect
// the result. Under Protected mode the input crosses the host bus only
// as ciphertext and the result returns encrypted; under Vanilla it
// travels in the clear (which the adversary tests exploit).
//
// With observability on (Config.Observe) each run opens a task scope:
// every span recorded until the task returns carries the same task ID,
// and the run itself is one "run_task" span on the task track tagged
// with the kernel, input size and outcome — metadata only, never the
// data.
func (p *Platform) RunTask(t Task) ([]byte, error) {
	return p.RunTaskCtx(context.Background(), t)
}

// RunTaskCtx is RunTask with end-to-end cancellation: the context is
// honored at the pipeline's safe points (before staging, before the
// doorbell); once the submission is rung the run drains to completion
// and only then is the cancellation reported, so stream state is never
// left mid-protocol. Cancellation errors satisfy errors.Is on
// context.Canceled / ErrDeadlineExceeded.
func (p *Platform) RunTaskCtx(ctx context.Context, t Task) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := p.Obs.T()
	id := tr.StartTask()
	defer tr.EndTask()
	sp := tr.Begin(obsv.TrackTask, "run_task",
		obsv.U64("task", id),
		obsv.Str("kernel", t.Kernel.String()),
		obsv.I64("in_bytes", int64(len(t.Input))),
		obsv.Str("mode", p.Mode.String()))
	out, err := p.runTask(ctx, t)
	status := "ok"
	if err != nil {
		status = "error"
	}
	sp.Attr(obsv.Str("status", status), obsv.I64("out_bytes", int64(len(out))))
	sp.End()
	p.Obs.Reg().Counter(obsv.Name("task.runs", "mode", p.Mode.String(), "status", status)).Inc()
	return out, err
}

func (p *Platform) runTask(ctx context.Context, t Task) ([]byte, error) {
	if len(t.Input) == 0 {
		return nil, ErrEmptyInput
	}
	if p.Mode == Protected && !p.trusted {
		return nil, fmt.Errorf("%w; call EstablishTrust first", ErrNotTrusted)
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	outLen := int64(len(t.Input))
	if t.Kernel == KernelChecksum && outLen < 8 {
		outLen = 8
	}

	var inAddr, outAddr uint64
	var collect func() ([]byte, error)
	var release func()
	var inRegion *adaptor.Region

	if p.Mode == Protected {
		in, err := p.Adaptor.StageH2D("task-input", t.Input)
		if err != nil {
			return nil, err
		}
		out, err := p.Adaptor.PrepareD2H("task-output", outLen)
		if err != nil {
			p.Adaptor.ReleaseRegion(in)
			return nil, err
		}
		inRegion = in
		inAddr, outAddr = in.Buf.Base(), out.Buf.Base()
		collect = func() ([]byte, error) { return p.Adaptor.CollectD2H(out, outLen) }
		release = func() {
			p.Adaptor.ReleaseRegion(in)
			p.Adaptor.ReleaseRegion(out)
		}
	} else {
		in, err := p.Guest.Space.Alloc(tvm.SharedRegion, "task-input", int64(len(t.Input)))
		if err != nil {
			return nil, err
		}
		copy(in.Bytes(), t.Input)
		out, err := p.Guest.Space.Alloc(tvm.SharedRegion, "task-output", outLen)
		if err != nil {
			p.Guest.Space.Free(in)
			return nil, err
		}
		inAddr, outAddr = in.Base(), out.Base()
		collect = func() ([]byte, error) { return append([]byte(nil), out.Bytes()...), nil }
		release = func() {
			p.Guest.Space.Free(in)
			p.Guest.Space.Free(out)
		}
	}
	defer release()

	// The device-memory layout for the task: input at 0, output after.
	const devIn, devOut = 0x0, 0x40000
	cmds := []xpu.Command{
		{Op: xpu.OpCopyH2D, Src: inAddr, Dst: devIn, Len: uint64(len(t.Input))},
		{Op: xpu.OpKernel, Param: uint32(t.Kernel)<<16 | uint32(t.Param), Src: devIn, Dst: devOut, Len: uint64(outLen)},
		{Op: xpu.OpCopyD2H, Src: devOut, Dst: outAddr, Len: uint64(outLen)},
	}
	before := p.Driver.Tail()
	if err := p.Driver.Submit(cmds...); err != nil {
		return nil, err
	}
	want := before + uint64(len(cmds))
	head, err := p.Driver.Head()
	if err != nil && p.Mode != Protected {
		return nil, err
	}
	if err == nil && head == want {
		return collect()
	}
	if p.Mode != Protected {
		st, _ := p.Driver.Status()
		return nil, fmt.Errorf("ccai: device consumed %d/%d commands (status %#x)", head-before, len(cmds), st)
	}
	if err := p.recoverSubmission(inRegion, before, want); err != nil {
		return nil, err
	}
	return collect()
}

// submitRecoveryAttempts bounds the stalled-submission recovery loop.
const submitRecoveryAttempts = 3

// recoverSubmission drives the Protected-mode recovery ladder for a
// submission the device did not fully consume: re-align the A3 MMIO
// sequence (a lost guarded write desynchronises it permanently), repost
// the input region's tag table (tag-packet loss orphans chunks), then
// kick the driver (re-sync ring MACs, re-ring the doorbell). If the
// device still hasn't consumed everything after bounded attempts, the
// Adaptor tears the session down fail-closed: keys zeroized on both
// ends and the device cleaned through the environment guard, because a
// half-run confidential task must not leave a live session behind.
func (p *Platform) recoverSubmission(in *adaptor.Region, before, want uint64) error {
	for attempt := 0; attempt < submitRecoveryAttempts; attempt++ {
		if err := p.Adaptor.ResyncMMIO(); err != nil {
			break
		}
		if in != nil {
			p.Adaptor.RepostTags(in)
		}
		if err := p.Driver.Kick(); err != nil {
			continue
		}
		head, err := p.Driver.Head()
		if err == nil && head == want {
			return nil
		}
	}
	st, _ := p.Driver.Status()
	head, _ := p.Driver.Head()
	reason := fmt.Sprintf("submission stalled: device consumed %d/%d commands (status %#x)", head-before, want-before, st)
	p.Adaptor.FailClosed(reason)
	p.trusted = false
	return fmt.Errorf("ccai: %s; session torn down", reason)
}
