package ccai

// Concurrent multi-tenant serving tests: N tenant pipelines running
// simultaneously through the shared chassis (host bus, bridge, mux,
// IOMMU, address space), crossed with the deterministic fault classes.
// The invariants mirror the single-tenant fault matrix, plus the one
// only concurrency can break: nothing a faulted tenant suffers may
// ever corrupt a fault-free neighbor.

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"ccai/internal/attack"
	"ccai/internal/core"
	"ccai/internal/fault"
	"ccai/internal/xpu"
)

func servingPlatform(t *testing.T, n int) *MultiPlatform {
	t.Helper()
	profiles := make([]xpu.Profile, n)
	fleet := xpu.Fleet()
	for i := range profiles {
		profiles[i] = fleet[i%len(fleet)]
	}
	mp, err := NewMultiPlatform(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.EstablishTrustAll(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mp.Close)
	return mp
}

// TestConcurrentMultiTenantServing drives four tenants at once through
// RunTasks and byte-verifies every result against its own input: the
// serving engine must preserve request→response pairing and per-tenant
// data integrity while all pipelines interleave on the shared layers.
func TestConcurrentMultiTenantServing(t *testing.T) {
	const tenants, perTenant = 4, 6
	mp := servingPlatform(t, tenants)

	var tasks []TenantTask
	for round := 0; round < perTenant; round++ {
		for tn := 0; tn < tenants; tn++ {
			in := bytes.Repeat([]byte{byte(1 + tn*16 + round)}, 200+round*100)
			tasks = append(tasks, TenantTask{Tenant: tn, Task: Task{Input: in, Kernel: KernelXOR, Param: 0x37}})
		}
	}
	results := mp.RunTasks(tasks)
	if len(results) != len(tasks) {
		t.Fatalf("results = %d, want %d", len(results), len(tasks))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("task %d (tenant %d): %v", i, res.Tenant, res.Err)
		}
		if res.Index != i || res.Tenant != tasks[i].Tenant {
			t.Fatalf("result %d mislabelled: %+v", i, res)
		}
		in := tasks[i].Task.Input
		if len(res.Output) != len(in) {
			t.Fatalf("task %d: output %d bytes, want %d", i, len(res.Output), len(in))
		}
		for j := range in {
			if res.Output[j] != in[j]^0x37 {
				t.Fatalf("task %d (tenant %d): byte %d corrupted", i, res.Tenant, j)
			}
		}
	}
}

// TestRunTasksIndexingAndErrors: out-of-range tenants fail in their own
// result slot without disturbing valid tasks.
func TestRunTasksIndexingAndErrors(t *testing.T) {
	mp := servingPlatform(t, 2)
	tasks := []TenantTask{
		{Tenant: 0, Task: Task{Input: []byte("first"), Kernel: KernelAdd, Param: 1}},
		{Tenant: 7, Task: Task{Input: []byte("nobody"), Kernel: KernelAdd, Param: 1}},
		{Tenant: 1, Task: Task{Input: []byte("second"), Kernel: KernelAdd, Param: 2}},
		{Tenant: -1, Task: Task{Input: []byte("nobody"), Kernel: KernelAdd, Param: 1}},
	}
	results := mp.RunTasks(tasks)
	if results[0].Err != nil || results[0].Output[0] != 'f'+1 {
		t.Fatalf("valid task 0 failed: %+v", results[0])
	}
	if results[2].Err != nil || results[2].Output[0] != 's'+2 {
		t.Fatalf("valid task 2 failed: %+v", results[2])
	}
	for _, i := range []int{1, 3} {
		if results[i].Err == nil {
			t.Fatalf("out-of-range tenant %d accepted", tasks[i].Tenant)
		}
	}
}

// TestConcurrentServingThroughputSharesClock runs the same tenant from
// many goroutines: per-tenant serialization must make this safe (and
// ordered), not a data race.
func TestSameTenantConcurrentCallsSerialize(t *testing.T) {
	mp := servingPlatform(t, 1)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := bytes.Repeat([]byte{byte(g + 1)}, 64)
			out, err := mp.Tenants[0].RunTask(Task{Input: in, Kernel: KernelAdd, Param: 5})
			if err == nil && out[0] != byte(g+1)+5 {
				err = fmt.Errorf("goroutine %d corrupted output", g)
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// servingTaskMix builds rounds×tenants identical 64 KiB XOR tasks for
// throughput measurement.
func servingTaskMix(tenants, rounds int) []TenantTask {
	input := bytes.Repeat([]byte{0xab}, 64<<10)
	var tasks []TenantTask
	for r := 0; r < rounds; r++ {
		for tn := 0; tn < tenants; tn++ {
			tasks = append(tasks, TenantTask{Tenant: tn, Task: Task{Input: input, Kernel: KernelXOR, Param: 0x5a}})
		}
	}
	return tasks
}

// TestServingThroughputScales is the concurrent-serving acceptance
// gate: with four tenants and enough CPUs to overlap their pipelines,
// RunTasks must finish the same task mix at least 2× faster than
// running the tasks one at a time. The pipelines are pure CPU work, so
// the gate is only meaningful when the runtime can actually schedule
// them in parallel; on smaller machines the measurement still runs and
// is reported by cmd/ccai-bench, but a hard 2× wall-clock bound would
// be physically impossible and the gate skips.
func TestServingThroughputScales(t *testing.T) {
	const tenants = 4
	if testing.Short() {
		t.Skip("throughput measurement skipped in -short")
	}
	mp := servingPlatform(t, tenants)
	tasks := servingTaskMix(tenants, 4)
	for tn := 0; tn < tenants; tn++ { // warm-up
		if _, err := mp.Tenants[tn].RunTask(tasks[tn].Task); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	for _, tt := range tasks {
		if _, err := mp.Tenants[tt.Tenant].RunTask(tt.Task); err != nil {
			t.Fatal(err)
		}
	}
	serialized := time.Since(start)
	start = time.Now()
	for _, res := range mp.RunTasks(tasks) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	concurrent := time.Since(start)
	speedup := float64(serialized) / float64(concurrent)
	t.Logf("4-tenant serving: serialized %v, concurrent %v, speedup %.2fx (GOMAXPROCS=%d)",
		serialized, concurrent, speedup, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) < tenants {
		t.Skipf("need GOMAXPROCS >= %d to overlap %d CPU-bound pipelines (have %d)",
			tenants, tenants, runtime.GOMAXPROCS(0))
	}
	if speedup < 2 {
		t.Fatalf("concurrent serving speedup %.2fx, want >= 2x", speedup)
	}
}

// BenchmarkServingSerialized and BenchmarkServingConcurrent are the
// same comparison in testing.B form: ns/op is per 4-tenant round of
// 64 KiB protected tasks.
func BenchmarkServingSerialized(b *testing.B) {
	mp, err := NewMultiPlatform([]xpu.Profile{xpu.A100, xpu.A100, xpu.A100, xpu.A100})
	if err != nil {
		b.Fatal(err)
	}
	defer mp.Close()
	if err := mp.EstablishTrustAll(); err != nil {
		b.Fatal(err)
	}
	tasks := servingTaskMix(4, 1)
	b.SetBytes(int64(len(tasks) * len(tasks[0].Task.Input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tt := range tasks {
			if _, err := mp.Tenants[tt.Tenant].RunTask(tt.Task); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkServingConcurrent(b *testing.B) {
	mp, err := NewMultiPlatform([]xpu.Profile{xpu.A100, xpu.A100, xpu.A100, xpu.A100})
	if err != nil {
		b.Fatal(err)
	}
	defer mp.Close()
	if err := mp.EstablishTrustAll(); err != nil {
		b.Fatal(err)
	}
	tasks := servingTaskMix(4, 1)
	b.SetBytes(int64(len(tasks) * len(tasks[0].Task.Input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range mp.RunTasks(tasks) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// wireTenantFault threads an injector into one tenant's slice of the
// platform: its internal bus segment, device, crypto replicas, or tag
// manager — never a shared layer, so the blast radius is the tenant.
func wireTenantFault(tn *Tenant, inj *fault.Injector, class fault.Class) {
	switch class {
	case fault.DoorbellHang, fault.DropMSI:
		tn.Device.SetFaultHook(inj.DeviceFault)
	case fault.CryptoTransient:
		tn.Adaptor.InstallCryptoFault(inj.CryptoFault)
	case fault.TagLoss:
		tn.SC.Tags().SetFaultHook(inj.TagFault)
	default:
		tn.internal.AddTap(inj)
	}
}

// TestConcurrencyStressMatrix is the multi-tenant chaos suite: four
// concurrent tenant pipelines, tenants 1–3 under deterministic fault
// injection, tenant 0 fault-free as the isolation control. For every
// (class, seed) cell:
//
//   - every task result is correct or a clean error (never silently
//     wrong bytes),
//   - the control tenant completes all its tasks correctly — faults in
//     neighbors must not leak across the shared chassis,
//   - no plaintext crosses the shared host bus,
//   - no tenant's seal engines ever reuse an IV.
//
// Run under -race this doubles as the interleaving soundness proof for
// every shared lock introduced by the serving engine.
func TestConcurrencyStressMatrix(t *testing.T) {
	const tenants, perTenant = 4, 3
	for _, class := range fault.Classes() {
		if class == fault.SchedStall || class == fault.CancelRace {
			// Scheduler-level classes fire at dispatch, not on a bus or
			// device hook; TestSchedulerFaultMatrix crosses them with the
			// same seeds.
			continue
		}
		for _, seed := range matrixSeeds {
			class, seed := class, seed
			t.Run(fmt.Sprintf("%v/seed=%#x", class, seed), func(t *testing.T) {
				mp := servingPlatform(t, tenants)

				audit := newIVAuditor()
				for _, tn := range mp.Tenants {
					for _, s := range []string{core.StreamH2D, core.StreamConfig} {
						if err := tn.Adaptor.AuditIVs(s, audit.hook(fmt.Sprintf("t%d/%s", tn.Index, s))); err != nil {
							t.Fatal(err)
						}
					}
					if d2h, err := tn.SC.Params().Stream(core.StreamD2H); err == nil {
						d2h.SetIVAudit(audit.hook(fmt.Sprintf("t%d/%s", tn.Index, core.StreamD2H)))
					}
				}
				snoop := attack.NewSnooper()
				mp.Host.AddTap(snoop)

				// Tenants 1..3 get their own injector; tenant 0 is the
				// control.
				fired := make([]*fault.Injector, tenants)
				for i := 1; i < tenants; i++ {
					inj := fault.NewInjector(matrixEvent(class, seed+uint64(i)))
					fired[i] = inj
					wireTenantFault(mp.Tenants[i], inj, class)
				}

				var tasks []TenantTask
				secrets := make([][]byte, 0, tenants*perTenant)
				for round := 0; round < perTenant; round++ {
					for tn := 0; tn < tenants; tn++ {
						in := []byte(fmt.Sprintf("STRESS-SECRET-t%d-r%d-%032d", tn, round, tn*100+round))
						secrets = append(secrets, in)
						tasks = append(tasks, TenantTask{Tenant: tn, Task: Task{Input: in, Kernel: KernelXOR, Param: 0x5a}})
					}
				}
				results := mp.RunTasks(tasks)

				for i, res := range results {
					in := tasks[i].Task.Input
					if res.Err != nil {
						if res.Tenant == 0 {
							t.Fatalf("ISOLATION: control tenant failed under neighbor faults (%v): %v", class, res.Err)
						}
						continue // clean error on a faulted tenant is allowed
					}
					for j := range in {
						if res.Output[j] != in[j]^0x5a {
							t.Fatalf("task %d (tenant %d): silently corrupted byte %d under %v", i, res.Tenant, j, class)
						}
					}
				}
				for _, s := range secrets {
					if snoop.SawPlaintext(s) {
						t.Fatalf("plaintext on shared host bus under %v", class)
					}
				}
				if snoop.PayloadBytes() == 0 {
					t.Fatalf("snooper saw no traffic under %v; cell vacuous", class)
				}
				if r := audit.reuses(); len(r) != 0 {
					t.Fatalf("IV REUSE under %v: %v", class, r)
				}
			})
		}
	}
}
