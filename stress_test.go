package ccai

import (
	"bytes"
	"sync"
	"testing"

	"ccai/internal/xpu"
)

// TestParallelIndependentSessions runs many fully independent protected
// platforms concurrently. Each platform is single-threaded by design
// (one simulated machine), but nothing package-level may be shared
// mutable state — this test plus `go test -race` enforces that.
func TestParallelIndependentSessions(t *testing.T) {
	const sessions = 16
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			profile := xpu.Fleet()[i%len(xpu.Fleet())]
			p, err := NewPlatform(Config{XPU: profile, Mode: Protected})
			if err != nil {
				errs <- err
				return
			}
			defer p.Close()
			if err := p.EstablishTrust(); err != nil {
				errs <- err
				return
			}
			input := bytes.Repeat([]byte{byte(i + 1)}, 400+i*13)
			out, err := p.RunTask(Task{Input: input, Kernel: KernelXOR, Param: byte(i)})
			if err != nil {
				errs <- err
				return
			}
			for j := range input {
				if out[j] != input[j]^byte(i) {
					errs <- errByte{i, j}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errByte [2]int

func (e errByte) Error() string { return "wrong byte in parallel session" }

// TestManySequentialSessionsNoLeak cycles sessions on one machine
// image repeatedly; region/key bookkeeping must return to zero each
// time (no leak across the environment-guard teardown).
func TestManySequentialSessionsNoLeak(t *testing.T) {
	for i := 0; i < 20; i++ {
		p, err := NewPlatform(Config{XPU: xpu.A100, Mode: Protected})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.EstablishTrust(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunTask(Task{Input: []byte("cycle"), Kernel: KernelAdd, Param: 1}); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		p.Close()
		if p.SC.Regions() != 0 {
			t.Fatalf("cycle %d: %d regions leaked", i, p.SC.Regions())
		}
		if p.SC.Params().Active() != 0 {
			t.Fatalf("cycle %d: stream contexts leaked", i)
		}
		if p.Device.MemResidue() {
			t.Fatalf("cycle %d: device residue", i)
		}
	}
}
