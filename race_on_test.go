//go:build race

package ccai

// raceDetector reports whether this binary was built with -race; the
// detector's shadow-memory bookkeeping inflates allocation counts, so
// allocation-budget tests skip under it.
const raceDetector = true
