package ccai

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ccai/internal/adaptor"
	"ccai/internal/core"
	"ccai/internal/llm"
	"ccai/internal/mem"
	"ccai/internal/obsv"
	"ccai/internal/pcie"
	"ccai/internal/secmem"
	"ccai/internal/telemetry"
	"ccai/internal/tvm"
	"ccai/internal/xpu"
)

// MultiPlatform implements the paper's §9 deployment extension: one
// PCIe-SC chassis (a core.Mux) serving several (TVM, xPU) pairs with
// fully isolated keys, policies and transfer regions per tenant. Each
// tenant sees exactly the single-tenant programming model (an Adaptor,
// a native driver, RunTask); isolation between tenants is enforced by
// the mux's identifier-based dispatch plus the usual fail-closed
// filters.
type MultiPlatform struct {
	Host    *pcie.Bus
	Bridge  *HostBridge
	IOMMU   *mem.IOMMU
	Mux     *core.Mux
	Tenants []*Tenant
	space   *mem.Space

	// Obs is the chassis-wide observability hub (nil unless Observe was
	// called): one registry and tracer shared by every tenant's pipeline
	// and by any Scheduler serving the chassis.
	Obs *obsv.Hub
	// Tel is the live telemetry plane (nil unless WithTelemetry).
	Tel *telemetry.Plane

	// llmSrv is the chassis's continuous-batching inference server,
	// started lazily by the first OpenSession (see inference.go).
	llmMu    sync.Mutex
	llmSrv   *llmServer
	llmCfg   llm.EngineConfig
	llmFault atomic.Pointer[func(point string) bool]
}

// Telemetry returns the live telemetry plane, nil when not attached.
func (mp *MultiPlatform) Telemetry() *telemetry.Plane { return mp.Tel }

// Observe enables the observability layer for the whole chassis and
// wires it through every tenant's pipeline components. Call before
// EstablishTrust so the per-tenant drivers are instrumented too;
// calling it again is a no-op. It returns the hub for convenience.
func (mp *MultiPlatform) Observe() *obsv.Hub {
	if mp.Obs == nil {
		mp.Obs = obsv.NewHub()
		for _, t := range mp.Tenants {
			t.Device.SetObserver(mp.Obs)
			t.SC.SetObserver(mp.Obs)
			t.Adaptor.SetObserver(mp.Obs)
			if t.Driver != nil {
				t.Driver.SetObserver(mp.Obs)
			}
		}
	}
	return mp.Obs
}

// Observability returns the chassis hub, nil when observability is
// off. All obsv types no-op on nil, so callers may chain freely:
// mp.Observability().T().Spans() is safe either way.
func (mp *MultiPlatform) Observability() *obsv.Hub { return mp.Obs }

// MetricsSnapshot returns a point-in-time copy of every metric. The
// zero Snapshot is returned when observability is off.
func (mp *MultiPlatform) MetricsSnapshot() obsv.Snapshot { return mp.Obs.Reg().Snapshot() }

// WriteTimeline exports every recorded span as Chrome trace-event
// JSON. ErrObserveOff is returned when observability is off.
func (mp *MultiPlatform) WriteTimeline(w io.Writer) error {
	if mp.Obs == nil {
		return ErrObserveOff
	}
	return mp.Obs.Tracer.WriteChromeTrace(w)
}

// Tenant is one (TVM, xPU) slice of a MultiPlatform. A tenant's own
// pipeline (Adaptor → SC unit → device) is single-threaded: mu
// serializes EstablishTrust, RunTask, and Close. Distinct tenants run
// fully concurrently — the layers they share (host bus, bridge, mux,
// IOMMU, address space) are individually thread-safe.
type Tenant struct {
	mu      sync.Mutex
	Index   int
	TVMID   pcie.ID
	XPUID   pcie.ID
	Guest   *tvm.Guest
	Device  *xpu.Device
	SC      *core.Controller
	Adaptor *adaptor.Adaptor
	Driver  *tvm.Driver

	internal *pcie.Bus
	shared   pcie.Region
	ring     *adaptor.Region
	tvmKeys  *secmem.KeyStore
	trusted  bool
	gen      int // trust generation: 1 = first attest, 2+ = re-trust
	parent   *MultiPlatform
}

// Per-tenant address strides: tenant i's windows are offset by
// i*tenantStride from the base map.
const tenantStride = 0x0100_0000

// NewMultiPlatform assembles one chassis serving len(profiles) tenants,
// tenant i owning an instance of profiles[i]. Options are optional and
// backward-compatible: WithObserve enables the chassis hub (same as
// calling Observe()), WithTelemetry additionally attaches the live
// telemetry plane with one bearer token per tenant; device-shape
// options (WithXPU, WithMode, ...) do not apply here and are ignored.
func NewMultiPlatform(profiles []xpu.Profile, options ...Option) (*MultiPlatform, error) {
	if len(profiles) == 0 || len(profiles) > 8 {
		return nil, fmt.Errorf("ccai: 1-8 tenants supported, got %d", len(profiles))
	}
	var cfg Config
	for _, opt := range options {
		opt(&cfg)
	}
	mp := &MultiPlatform{
		Host:   pcie.NewBus("host"),
		IOMMU:  mem.NewIOMMU(),
		space:  mem.NewSpace(),
		Mux:    core.NewMux(SCID),
		llmCfg: cfg.LLM,
	}
	mp.Bridge = &HostBridge{id: HostBridgeID, space: mp.space, iommu: mp.IOMMU}
	mp.Host.Attach(mp.Bridge)
	mp.Host.Attach(mp.Mux)
	if err := mp.Host.Claim(HostBridgeID, pcie.Region{Base: msiBase, Size: msiSize, Name: "msi"}); err != nil {
		return nil, err
	}

	for i, profile := range profiles {
		if err := mp.addTenant(i, profile); err != nil {
			return nil, fmt.Errorf("ccai: tenant %d: %w", i, err)
		}
	}
	if cfg.Observe || cfg.Telemetry != nil {
		mp.Observe()
	}
	if cfg.Telemetry != nil {
		tel, err := telemetry.Attach(mp.Obs, *cfg.Telemetry)
		if err != nil {
			return nil, err
		}
		for i := range mp.Tenants {
			tel.RegisterTenant(tenantLabel(i))
		}
		mp.Tel = tel
	}
	return mp, nil
}

func (mp *MultiPlatform) addTenant(i int, profile xpu.Profile) error {
	stride := uint64(i) * tenantStride
	tvmID := pcie.MakeID(0, uint8(1+i), 0)
	xpuID := pcie.MakeID(uint8(2+i), 0, 0)
	scUnitID := pcie.MakeID(1, 0, uint8(i)) // virtual function per slice
	privBase := uint64(privateBase) + stride
	shBase := uint64(sharedBase) + stride
	xpuWin := pcie.Region{Base: uint64(xpuBARBase) + stride, Size: xpu.BAR0Size, Name: fmt.Sprintf("xpu%d-window", i)}
	scBar := pcie.Region{Base: uint64(scBARBase) + stride, Size: core.SCBarSize, Name: fmt.Sprintf("sc-unit%d", i)}

	if err := mp.space.AddRegion(fmt.Sprintf("private%d", i), privBase, privateSize/4); err != nil {
		return err
	}
	sharedName := fmt.Sprintf("shared%d", i)
	if err := mp.space.AddRegion(sharedName, shBase, sharedSize/4); err != nil {
		return err
	}
	shared := pcie.Region{Base: shBase, Size: sharedSize / 4, Name: sharedName}
	for _, r := range []pcie.Region{{Base: privBase, Size: privateSize / 4, Name: "ram"}, shared} {
		if err := mp.Host.Claim(HostBridgeID, r); err != nil {
			return err
		}
	}
	// Unit SC may master only its tenant's shared window.
	mp.IOMMU.Map(scUnitID, shared.Base, shared.Size, mem.PermRead|mem.PermWrite)

	guest := &tvm.Guest{ID: tvmID, Space: mp.space}
	device := xpu.NewDevice(profile, xpuID, xpuWin.Base, 1<<20)

	internal := pcie.NewBus(fmt.Sprintf("internal%d", i))
	internal.Attach(device)
	if err := internal.Claim(xpuID, device.BAR0()); err != nil {
		return err
	}

	scKeys := secmem.NewKeyStore()
	sc := core.NewController(scUnitID, scBar, scKeys)
	sc.AttachInternalBusOnly(internal, xpuID, xpuWin, mp.Host)
	// Batched completion reaping, identical to the single-tenant
	// assembly: after forwarding a guarded doorbell the SC reads the
	// device head once and DMA-writes it into the submission ring
	// header, so every tenant's completion poll is a host-memory read.
	sc.ConfigureCompletionReap(xpu.RegDoorbell, xpu.RegCmdHead)
	internal.Attach(sc.InternalPort())
	for _, r := range []pcie.Region{shared, {Base: msiBase, Size: msiSize, Name: "msi"}} {
		if err := internal.Claim(scUnitID, r); err != nil {
			return err
		}
	}
	device.SetUpstream(func(p *pcie.Packet) *pcie.Packet { return internal.Route(p) })
	sc.SetTeardownHook(func() {
		plan := sc.Guard().CleanPlan(profile.SupportsSoftReset, xpu.RegReset, xpu.ResetEnv, xpu.ResetCold)
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, plan.Val)
		internal.Route(pcie.NewMemWrite(scUnitID, xpuWin.Base+plan.Reg, buf))
	})

	// Boot rules scoped to this tenant's identifiers and windows only.
	f := sc.Filter()
	for _, r := range core.L1Screen(1, tvmID) {
		f.InstallL1(r)
	}
	for _, r := range core.L1Screen(10, xpuID) {
		f.InstallL1(r)
	}
	f.InstallL2(core.Rule{ID: 20, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MWr, Requester: tvmID, AddrLo: xpuWin.Base, AddrHi: xpuWin.End(), Action: core.ActionWriteProtect})
	f.InstallL2(core.Rule{ID: 21, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MRd, Requester: tvmID, AddrLo: xpuWin.Base, AddrHi: xpuWin.End(), Action: core.ActionPassThrough})
	for _, k := range []pcie.Kind{pcie.MRd, pcie.MWr} {
		f.InstallL2(core.Rule{ID: 22, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
			Kind: k, Requester: xpuID, AddrLo: shared.Base, AddrHi: shared.End(), Action: core.ActionWriteReadProtect})
	}
	f.InstallL2(core.Rule{ID: 24, Mask: core.MatchKind | core.MatchRequester | core.MatchAddr,
		Kind: pcie.MWr, Requester: xpuID, AddrLo: msiBase, AddrHi: msiBase + msiSize, Action: core.ActionPassThrough})

	if err := mp.Mux.AddUnit(&core.MuxUnit{Ctrl: sc, Bar: scBar, Window: xpuWin, XPU: xpuID, TVM: tvmID}); err != nil {
		return err
	}
	for _, r := range []pcie.Region{scBar, xpuWin} {
		if err := mp.Host.Claim(SCID, r); err != nil {
			return err
		}
	}

	t := &Tenant{
		Index: i, TVMID: tvmID, XPUID: xpuID,
		Guest: guest, Device: device, SC: sc,
		internal: internal, shared: shared,
		tvmKeys: secmem.NewKeyStore(),
		parent:  mp,
	}
	t.Adaptor = adaptor.NewScoped(tvmID, mp.Host, mp.space, t.tvmKeys, scBar.Base, xpuWin.Base, sharedName, adaptor.Optimized())
	mp.Tenants = append(mp.Tenants, t)
	return nil
}

// EstablishTrust provisions one tenant's session keys on its SC unit
// and Adaptor, then brings up the protected driver.
func (t *Tenant) EstablishTrust() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, stream := range []string{core.StreamH2D, core.StreamD2H, core.StreamConfig, core.StreamMMIO} {
		key, nonce := secmem.FreshKey(), secmem.FreshNonce()
		if err := t.SC.Keys().Install(stream, key, nonce); err != nil {
			return err
		}
		if err := t.tvmKeys.Install(stream, key, nonce); err != nil {
			return err
		}
		if stream != core.StreamMMIO {
			if err := t.SC.Params().Activate(stream); err != nil {
				return err
			}
		}
	}
	if err := t.Adaptor.HWInit(); err != nil {
		return err
	}
	const ringEntries = 64
	ring, err := t.Adaptor.StageVerified(fmt.Sprintf("cmdring%d", t.Index), ringEntries*xpu.CmdSize, xpu.CmdSize)
	if err != nil {
		return err
	}
	t.ring = ring
	port := &guardedPort{a: t.Adaptor}
	t.Driver, err = tvm.NewDriver(port, t.Guest.Space, ring.Buf, ringEntries)
	if err != nil {
		return err
	}
	t.Driver.SetPreDoorbell(func(chunks []uint32) error {
		return t.Adaptor.SyncVerified(t.ring, chunks)
	})
	if t.parent != nil && t.parent.Obs != nil {
		t.Driver.SetObserver(t.parent.Obs)
	}
	if err := t.Driver.ConfigureMSI(msiBase, 0x41); err != nil {
		return err
	}
	t.trusted = true
	t.gen++
	if t.parent != nil {
		kind := obsv.EvAttest
		if t.gen > 1 {
			// Keys are never reused across a teardown: a re-trust is a
			// fresh generation, and the audit log records it as such.
			kind = obsv.EvRetrust
		}
		t.parent.Obs.Eventf(kind, tenantLabel(t.Index), "gen=%d", t.gen)
	}
	return nil
}

// RunTask executes a confidential task on the tenant's xPU; semantics
// match Platform.RunTask. Safe to call concurrently with other
// tenants' RunTask; calls on the same tenant serialize.
func (t *Tenant) RunTask(task Task) ([]byte, error) {
	return t.RunTaskCtx(context.Background(), task)
}

// RunTaskCtx is RunTask with end-to-end cancellation. The context is
// honored at the pipeline's safe points — before staging and before
// the doorbell — so an early cancellation costs nothing on the device.
// Once the submission is rung the run is drained to completion and
// only then is the cancellation reported (result discarded): aborting
// a command mid-ring would leave IV counters and tag state
// mid-protocol, which no cancellation is worth. Cancellation errors
// satisfy errors.Is on context.Canceled / ErrDeadlineExceeded.
func (t *Tenant) RunTaskCtx(ctx context.Context, task Task) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	if !t.trusted {
		return nil, fmt.Errorf("ccai: tenant %d: %w", t.Index, ErrNotTrusted)
	}
	if len(task.Input) == 0 {
		return nil, fmt.Errorf("ccai: tenant %d: %w", t.Index, ErrEmptyInput)
	}
	outLen := int64(len(task.Input))
	if task.Kernel == KernelChecksum && outLen < 8 {
		outLen = 8
	}
	in, err := t.Adaptor.StageH2D("task-input", task.Input)
	if err != nil {
		return nil, err
	}
	defer t.Adaptor.ReleaseRegion(in)
	out, err := t.Adaptor.PrepareD2H("task-output", outLen)
	if err != nil {
		return nil, err
	}
	defer t.Adaptor.ReleaseRegion(out)
	// Last safe point: staging consumed IV counters (monotonically — a
	// released region is never re-sealed under the same IVs), but the
	// device has seen nothing, so abandoning here is free.
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}

	const devIn, devOut = 0x0, 0x40000
	cmds := []xpu.Command{
		{Op: xpu.OpCopyH2D, Src: in.Buf.Base(), Dst: devIn, Len: uint64(len(task.Input))},
		{Op: xpu.OpKernel, Param: uint32(task.Kernel)<<16 | uint32(task.Param), Src: devIn, Dst: devOut, Len: uint64(outLen)},
		{Op: xpu.OpCopyD2H, Src: devOut, Dst: out.Buf.Base(), Len: uint64(outLen)},
	}
	before := t.Driver.Tail()
	if err := t.Driver.Submit(cmds...); err != nil {
		return nil, err
	}
	want := before + uint64(len(cmds))
	head, err := t.Driver.Head()
	if err != nil || head != want {
		if rerr := t.recoverSubmission(in, before, want); rerr != nil {
			return nil, rerr
		}
	}
	res, err := t.Adaptor.CollectD2H(out, outLen)
	if err != nil {
		return nil, err
	}
	// Cancellation that landed mid-run: the pipeline drained cleanly
	// (collect included, so stream state is fully advanced); only the
	// result is withheld.
	if cerr := ctx.Err(); cerr != nil {
		return nil, ctxErr(cerr)
	}
	return res, nil
}

// recoverSubmission is the tenant-side port of the Protected-mode
// recovery ladder (see Platform.recoverSubmission): re-align the A3
// MMIO sequence, repost the input region's tag table, kick the driver.
// Without it a single dropped doorbell or lost guarded write would
// desynchronise the tenant's ring head from its tail permanently,
// failing every subsequent task on the tenant — the fail-closed
// teardown exists for exhausted recovery, not for one absorbed fault.
func (t *Tenant) recoverSubmission(in *adaptor.Region, before, want uint64) error {
	for attempt := 0; attempt < submitRecoveryAttempts; attempt++ {
		if err := t.Adaptor.ResyncMMIO(); err != nil {
			break
		}
		if in != nil {
			t.Adaptor.RepostTags(in)
		}
		if err := t.Driver.Kick(); err != nil {
			continue
		}
		head, err := t.Driver.Head()
		if err == nil && head == want {
			return nil
		}
	}
	st, _ := t.Driver.Status()
	head, _ := t.Driver.Head()
	reason := fmt.Sprintf("submission stalled: device consumed %d/%d commands (status %#x)", head-before, want-before, st)
	t.Adaptor.FailClosed(reason)
	t.trusted = false
	return fmt.Errorf("ccai: tenant %d: %s; session torn down", t.Index, reason)
}

// Close tears down one tenant's session.
func (t *Tenant) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.trusted {
		t.Adaptor.Teardown()
		t.trusted = false
	}
}

// Close tears down every tenant and stops the telemetry server.
func (mp *MultiPlatform) Close() {
	mp.llmMu.Lock()
	if mp.llmSrv != nil {
		mp.llmSrv.shutdown()
		mp.llmSrv = nil
	}
	mp.llmMu.Unlock()
	for _, t := range mp.Tenants {
		t.Close()
	}
	if mp.Tel != nil {
		mp.Tel.Close()
		mp.Tel = nil
	}
}
