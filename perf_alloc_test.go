package ccai

// Allocation budget for the protected hot path (ISSUE 8 acceptance
// gate). The seed measured 1817 allocs per 64 KiB protected task; the
// zero-alloc sweep — SerializeInto, the slab/packet arenas in the SC
// and device DMA engines, arena-backed AAD staging, and the submission
// ring — must hold the steady-state count at or below half of that.
// The gate is deliberately the acceptance ceiling, not the measured
// value, so scheduler noise cannot flake it; ccai-bench tracks the
// exact trajectory.

import (
	"runtime"
	"testing"

	"ccai/internal/xpu"
)

// taskAllocCeiling is the hard allocs/op budget for task/ccAI/64KiB.
// Trajectory: 1817 (seed) -> 908 (first halving) -> 480 after the
// overlapped-data-plane wave (measured ~330/op; the headroom absorbs
// GC-timing jitter without readmitting the per-chunk allocation
// patterns this ceiling exists to keep out).
const taskAllocCeiling = 480

// measureTaskAllocs reports steady-state heap allocations per 64 KiB
// protected task after a warm-up pass (arenas primed, pools filled).
func measureTaskAllocs(t *testing.T, iters int) uint64 {
	t.Helper()
	p := protectedPlatform(t, xpu.A100)
	input := make([]byte, 64<<10)
	for i := range input {
		input[i] = byte(i)
	}
	task := Task{Input: input, Kernel: KernelXOR, Param: 0x5a}
	if _, err := p.RunTask(task); err != nil { // warm-up
		t.Fatal(err)
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < iters; i++ {
		if _, err := p.RunTask(task); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&ms1)
	return (ms1.Mallocs - ms0.Mallocs) / uint64(iters)
}

// TestTaskAllocBudget fails the build when the protected 64 KiB task
// path regresses past its allocation ceiling.
func TestTaskAllocBudget(t *testing.T) {
	if raceDetector {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	got := measureTaskAllocs(t, 32)
	t.Logf("task/ccAI/64KiB: %d allocs/op (ceiling %d, seed baseline 1817)", got, taskAllocCeiling)
	if got > taskAllocCeiling {
		t.Fatalf("64 KiB protected task allocates %d/op; budget is %d/op", got, taskAllocCeiling)
	}
}
